/**
 * @file
 * Database shootout: the Section-3.3.3 evaluation that led the thesis
 * to Cassandra — boot each candidate store as the hotel application's
 * backend and compare boot cost and request latency (emulation mode,
 * as in the paper's QEMU study).
 *
 *   ./build/examples/database_shootout
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workloads/workloads.hh"

using namespace svb;

int
main()
{
    const db::DbKind kinds[] = {db::DbKind::Cassandra, db::DbKind::Mongo,
                                db::DbKind::Maria};
    FunctionSpec spec;
    for (const FunctionSpec &s : workloads::hotelSuite()) {
        if (s.name == "rate")
            spec = s;
    }

    std::printf("%-12s %14s %14s %14s\n", "database", "boot (cycles)",
                "cold req (ns)", "warm req (ns)");

    for (db::DbKind kind : kinds) {
        ClusterConfig cfg;
        cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
        cfg.dbKind = kind;
        cfg.startDb = true;
        cfg.startMemcached = true;

        // Boot cost: cycles until the stores report readiness.
        ExperimentRunner runner(cfg);
        runner.cluster().boot();
        const uint64_t boot_cycles = runner.cluster().system().cycle();

        RunSpec rs;
        rs.mode = RunMode::Emu;
        rs.spec = spec;
        rs.impl = &workloads::workloadImpl(spec.workload);
        rs.platform = cfg;
        const EmuResult res = std::get<EmuResult>(runner.run(rs));
        std::printf("%-12s %14lu %14lu %14lu%s\n", db::dbKindName(kind),
                    (unsigned long)boot_cycles,
                    (unsigned long)res.coldNs, (unsigned long)res.warmNs,
                    res.ok ? "" : "  [FAILED]");
    }

    std::printf(
        "\nCassandra's JVM-style bootstrap and LSM read amplification"
        " dominate\nits boot and cold-request costs (the thesis' 17-minute"
        " QEMU boots);\nMongoDB's hash-indexed store is light to boot and"
        " to query, but it\nhas no RISC-V port, which is why the thesis"
        " shipped Cassandra.\n");
    return 0;
}
