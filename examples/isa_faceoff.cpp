/**
 * @file
 * ISA face-off: the paper's central comparison for one function —
 * identical microarchitecture (Table 4.1), identical workload,
 * RISC-V software stack vs the heavier x86 one.
 *
 *   ./build/examples/isa_faceoff [function-name]
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "workloads/workloads.hh"

using namespace svb;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "aes-go";

    FunctionSpec spec;
    bool found = false;
    for (const FunctionSpec &s : workloads::allFunctions()) {
        if (s.name == name) {
            spec = s;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown function '%s'\n", name.c_str());
        return 1;
    }

    FunctionResult results[2];
    const IsaId isas[2] = {IsaId::Riscv, IsaId::Cx86};
    for (int i = 0; i < 2; ++i) {
        ClusterConfig cfg;
        cfg.system = SystemConfig::paperConfig(isas[i]);
        cfg.startDb = spec.usesDb;
        cfg.startMemcached = spec.usesMemcached;
        std::printf("measuring %s on %s...\n", spec.name.c_str(),
                    isaName(isas[i]));
        ExperimentRunner runner(cfg);
        RunSpec rs;
        rs.mode = RunMode::Detailed;
        rs.spec = spec;
        rs.impl = &workloads::workloadImpl(spec.workload);
        rs.platform = cfg;
        results[i] = std::get<FunctionResult>(runner.run(rs));
        if (!results[i].ok) {
            std::printf("experiment failed on %s\n", isaName(isas[i]));
            return 1;
        }
    }

    const FunctionResult &rv = results[0], &cx = results[1];
    auto line = [](const char *label, uint64_t rv_v, uint64_t cx_v) {
        std::printf("  %-24s %12lu %12lu   x86/riscv %5.2f\n", label,
                    (unsigned long)rv_v, (unsigned long)cx_v,
                    rv_v ? double(cx_v) / double(rv_v) : 0.0);
    };

    std::printf("\n%s, cold execution\n", spec.name.c_str());
    std::printf("  %-24s %12s %12s\n", "", "riscv64", "cx86-64");
    line("cycles", rv.cold.cycles, cx.cold.cycles);
    line("instructions", rv.cold.insts, cx.cold.insts);
    line("L1I misses", rv.cold.l1iMisses, cx.cold.l1iMisses);
    line("L2 misses", rv.cold.l2Misses, cx.cold.l2Misses);

    std::printf("\n%s, warm execution\n", spec.name.c_str());
    line("cycles", rv.warm.cycles, cx.warm.cycles);
    line("instructions", rv.warm.insts, cx.warm.insts);
    line("L1I misses", rv.warm.l1iMisses, cx.warm.l1iMisses);
    line("L2 misses", rv.warm.l2Misses, cx.warm.l2Misses);

    if (rv.cold.cycles < cx.warm.cycles) {
        std::printf("\n=> the RISC-V COLD run beats the x86 WARM run"
                    " (%lu < %lu cycles),\n   the paper's headline"
                    " observation (Section 4.2.3.1).\n",
                    (unsigned long)rv.cold.cycles,
                    (unsigned long)cx.warm.cycles);
    }
    return 0;
}
