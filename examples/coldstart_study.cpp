/**
 * @file
 * Cold-start study: run the paper's full Figure-4.1 protocol for one
 * serverless function and break the cold/warm gap down by
 * microarchitectural cause.
 *
 *   ./build/examples/coldstart_study [function-name]
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "workloads/workloads.hh"

using namespace svb;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "fibonacci-python";

    FunctionSpec spec;
    bool found = false;
    for (const FunctionSpec &s : workloads::allFunctions()) {
        if (s.name == name) {
            spec = s;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown function '%s'; available:\n", name.c_str());
        for (const FunctionSpec &s : workloads::allFunctions())
            std::printf("  %s\n", s.name.c_str());
        return 1;
    }

    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.startDb = spec.usesDb;
    cfg.startMemcached = spec.usesMemcached;

    std::printf("running the vSwarm-u protocol for %s (%s tier%s)...\n",
                spec.name.c_str(), tierName(spec.tier),
                spec.usesDb ? ", database-backed" : "");

    ExperimentRunner runner(cfg);
    RunSpec rs;
    rs.mode = RunMode::Detailed;
    rs.spec = spec;
    rs.impl = &workloads::workloadImpl(spec.workload);
    rs.platform = cfg;
    const FunctionResult res = std::get<FunctionResult>(runner.run(rs));
    if (!res.ok) {
        std::printf("experiment failed\n");
        return 1;
    }

    auto row = [](const char *label, uint64_t cold, uint64_t warm) {
        const double ratio = warm ? double(cold) / double(warm) : 0.0;
        std::printf("  %-22s %12lu %12lu   %5.2fx\n", label,
                    (unsigned long)cold, (unsigned long)warm, ratio);
    };
    std::printf("\n  %-22s %12s %12s   %s\n", "metric", "cold (req 1)",
                "warm (req 10)", "cold/warm");
    row("cycles", res.cold.cycles, res.warm.cycles);
    row("instructions", res.cold.insts, res.warm.insts);
    row("micro-ops", res.cold.uops, res.warm.uops);
    row("L1I misses", res.cold.l1iMisses, res.warm.l1iMisses);
    row("L1D misses", res.cold.l1dMisses, res.warm.l1dMisses);
    row("L2 misses", res.cold.l2Misses, res.warm.l2Misses);
    row("branch mispredicts", res.cold.branchMispredicts,
        res.warm.branchMispredicts);
    row("ITLB misses", res.cold.itlbMisses, res.warm.itlbMisses);
    row("DTLB misses", res.cold.dtlbMisses, res.warm.dtlbMisses);
    std::printf("  %-22s %12.2f %12.2f\n", "CPI", res.cold.cpi,
                res.warm.cpi);

    std::printf("\nThe cold request pays for the lazy runtime"
                " initialisation (module\nimports, store connections)"
                " and runs against empty caches, TLBs and\nbranch"
                " predictors; request 10 reuses all of that state.\n");
    return 0;
}
