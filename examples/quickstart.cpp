/**
 * @file
 * Quickstart: build a guest program with the portable IR, compile it
 * to real RV64 machine code, run it on the simulated platform, and
 * read back both architectural results and microarchitectural
 * statistics.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"

using namespace svb;

int
main()
{
    // 1. Author a guest program against the IR: sum the first N odd
    //    squares into a result cell in its data segment.
    gen::ProgramBuilder pb;
    const Addr result_addr = pb.addZeroData(8);

    auto f = pb.beginFunction("main", 0);
    const int n = f.imm(1000);
    const int i = f.newVreg(), acc = f.newVreg(), t = f.newVreg(),
              ptr = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 1);
    f.movi(acc, 0);
    f.label(loop);
    f.brcond(gen::CondOp::Gt, i, n, done);
    f.bin(gen::BinOp::Mul, t, i, i);
    f.bin(gen::BinOp::Add, acc, acc, t);
    f.addi(i, i, 2);
    f.br(loop);
    f.label(done);
    f.lea(ptr, result_addr);
    f.store(ptr, 0, acc, 8);
    f.ret();
    pb.setEntry("main");

    // 2. Compile for RV64 (swap in IsaId::Cx86 for the CISC stand-in).
    LoadableImage image = gen::compileProgram(pb.take(), IsaId::Riscv);
    std::printf("compiled %zu bytes of RV64 machine code, %zu symbols\n",
                image.code.size(), image.symbols.size());

    // 3. Build the simulated platform (Table 4.1 configuration) and
    //    load the program as a guest process.
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);
    LoadedProgram prog = loadProcess(sys.kernel(), image, "quickstart", 0);
    sys.scheduleIdleCores();

    // 4. Run on the detailed out-of-order CPU until the program exits.
    sys.switchCpu(0, CpuModel::O3);
    const uint64_t ran = sys.run(20'000'000);

    const AddressSpace &as = *sys.kernel().process(prog.pid).space;
    std::printf("guest finished in %lu cycles; result = %lu\n",
                (unsigned long)ran,
                (unsigned long)as.read(result_addr, 8));

    // 5. Inspect microarchitectural statistics.
    const auto snap = sys.stats().snapshotAll();
    for (const char *key :
         {"system.cpu0.o3.numInsts", "system.cpu0.o3.numCycles",
          "system.cpu0.o3.cpi", "system.cpu0.o3.branchMispredicts",
          "system.core0.l1d.misses", "system.core0.l1i.misses",
          "system.core0.l2.misses"}) {
        auto it = snap.find(key);
        if (it != snap.end())
            std::printf("  %-36s %12.2f\n", key, it->second);
    }

    // Expected: sum of odd squares 1..999 = 500*999*1001/3.
    return as.read(result_addr, 8) == 166666500 ? 0 : 1;
}
