/**
 * @file
 * Code inspector: build any suite function's container program for
 * either ISA and dump its symbols and disassembly — the svb-objdump
 * of the generated guest software stack.
 *
 *   ./build/examples/inspect_code [function-name] [riscv|x86] [max-lines]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/disasm.hh"
#include "stack/runtime.hh"
#include "workloads/workloads.hh"

using namespace svb;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "fibonacci-go";
    const IsaId isa = (argc > 2 && std::string(argv[2]) == "x86")
                          ? IsaId::Cx86
                          : IsaId::Riscv;
    const size_t max_lines =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 80;

    FunctionSpec spec;
    bool found = false;
    for (const FunctionSpec &s : workloads::allFunctions()) {
        if (s.name == name) {
            spec = s;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown function '%s'\n", name.c_str());
        return 1;
    }

    const LoadableImage image = buildServerProgram(
        spec, workloads::workloadImpl(spec.workload), isa);

    std::printf("%s server image for %s\n", spec.name.c_str(),
                isaName(isa));
    std::printf("  code %zu bytes, data %zu bytes, heap %lu KiB,"
                " %zu symbols\n\n",
                image.code.size(), image.rodata.size(),
                (unsigned long)(image.heapBytes / 1024),
                image.symbols.size());

    std::printf("symbols:\n");
    size_t shown = 0;
    for (const auto &[sym, off] : image.symbols) {
        // Skip the bulk of the generated runtime layers in the listing.
        if (sym.rfind("rt.", 0) == 0 && sym.find("0") == std::string::npos)
            continue;
        if (++shown > 24) {
            std::printf("  ... (%zu more)\n", image.symbols.size() - shown);
            break;
        }
        std::printf("  %6lu  %s\n", (unsigned long)off, sym.c_str());
    }

    std::printf("\ndisassembly (first %zu instructions):\n", max_lines);
    const auto lines =
        disassembleBuffer(image.code, isa, image.symbols, 0x10000);
    for (size_t i = 0; i < lines.size() && i < max_lines; ++i) {
        if (!lines[i].symbol.empty())
            std::printf("\n<%s>:\n", lines[i].symbol.c_str());
        std::printf("  %6lx:  %s\n",
                    (unsigned long)(0x10000 + lines[i].offset),
                    lines[i].text.c_str());
    }
    std::printf("\n(%zu instructions total)\n", lines.size());
    return 0;
}
