# Empty compiler generated dependencies file for coldstart_study.
# This may be replaced when dependencies are built.
