file(REMOVE_RECURSE
  "CMakeFiles/coldstart_study.dir/coldstart_study.cpp.o"
  "CMakeFiles/coldstart_study.dir/coldstart_study.cpp.o.d"
  "coldstart_study"
  "coldstart_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
