# Empty compiler generated dependencies file for isa_faceoff.
# This may be replaced when dependencies are built.
