file(REMOVE_RECURSE
  "CMakeFiles/isa_faceoff.dir/isa_faceoff.cpp.o"
  "CMakeFiles/isa_faceoff.dir/isa_faceoff.cpp.o.d"
  "isa_faceoff"
  "isa_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
