file(REMOVE_RECURSE
  "CMakeFiles/database_shootout.dir/database_shootout.cpp.o"
  "CMakeFiles/database_shootout.dir/database_shootout.cpp.o.d"
  "database_shootout"
  "database_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
