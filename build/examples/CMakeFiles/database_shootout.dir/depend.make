# Empty dependencies file for database_shootout.
# This may be replaced when dependencies are built.
