# Empty compiler generated dependencies file for inspect_code.
# This may be replaced when dependencies are built.
