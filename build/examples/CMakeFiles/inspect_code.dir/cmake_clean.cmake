file(REMOVE_RECURSE
  "CMakeFiles/inspect_code.dir/inspect_code.cpp.o"
  "CMakeFiles/inspect_code.dir/inspect_code.cpp.o.d"
  "inspect_code"
  "inspect_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
