# Empty compiler generated dependencies file for svb_core.
# This may be replaced when dependencies are built.
