file(REMOVE_RECURSE
  "libsvb_core.a"
)
