file(REMOVE_RECURSE
  "CMakeFiles/svb_core.dir/cluster.cc.o"
  "CMakeFiles/svb_core.dir/cluster.cc.o.d"
  "CMakeFiles/svb_core.dir/experiment.cc.o"
  "CMakeFiles/svb_core.dir/experiment.cc.o.d"
  "CMakeFiles/svb_core.dir/report.cc.o"
  "CMakeFiles/svb_core.dir/report.cc.o.d"
  "CMakeFiles/svb_core.dir/result_cache.cc.o"
  "CMakeFiles/svb_core.dir/result_cache.cc.o.d"
  "CMakeFiles/svb_core.dir/system.cc.o"
  "CMakeFiles/svb_core.dir/system.cc.o.d"
  "libsvb_core.a"
  "libsvb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
