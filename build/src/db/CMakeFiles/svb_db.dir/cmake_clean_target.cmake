file(REMOVE_RECURSE
  "libsvb_db.a"
)
