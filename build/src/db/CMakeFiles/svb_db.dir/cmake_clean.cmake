file(REMOVE_RECURSE
  "CMakeFiles/svb_db.dir/store_gen.cc.o"
  "CMakeFiles/svb_db.dir/store_gen.cc.o.d"
  "libsvb_db.a"
  "libsvb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
