# Empty compiler generated dependencies file for svb_db.
# This may be replaced when dependencies are built.
