# Empty dependencies file for svb_db.
# This may be replaced when dependencies are built.
