# Empty dependencies file for svb_workloads.
# This may be replaced when dependencies are built.
