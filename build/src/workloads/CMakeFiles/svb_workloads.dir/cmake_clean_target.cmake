file(REMOVE_RECURSE
  "libsvb_workloads.a"
)
