file(REMOVE_RECURSE
  "CMakeFiles/svb_workloads.dir/extended.cc.o"
  "CMakeFiles/svb_workloads.dir/extended.cc.o.d"
  "CMakeFiles/svb_workloads.dir/hotel.cc.o"
  "CMakeFiles/svb_workloads.dir/hotel.cc.o.d"
  "CMakeFiles/svb_workloads.dir/registry.cc.o"
  "CMakeFiles/svb_workloads.dir/registry.cc.o.d"
  "CMakeFiles/svb_workloads.dir/shop.cc.o"
  "CMakeFiles/svb_workloads.dir/shop.cc.o.d"
  "CMakeFiles/svb_workloads.dir/standalone.cc.o"
  "CMakeFiles/svb_workloads.dir/standalone.cc.o.d"
  "libsvb_workloads.a"
  "libsvb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
