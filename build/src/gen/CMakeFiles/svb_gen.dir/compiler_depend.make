# Empty compiler generated dependencies file for svb_gen.
# This may be replaced when dependencies are built.
