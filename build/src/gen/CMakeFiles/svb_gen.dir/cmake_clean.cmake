file(REMOVE_RECURSE
  "CMakeFiles/svb_gen.dir/backend_cx86.cc.o"
  "CMakeFiles/svb_gen.dir/backend_cx86.cc.o.d"
  "CMakeFiles/svb_gen.dir/backend_riscv.cc.o"
  "CMakeFiles/svb_gen.dir/backend_riscv.cc.o.d"
  "CMakeFiles/svb_gen.dir/guestlib.cc.o"
  "CMakeFiles/svb_gen.dir/guestlib.cc.o.d"
  "CMakeFiles/svb_gen.dir/ir.cc.o"
  "CMakeFiles/svb_gen.dir/ir.cc.o.d"
  "libsvb_gen.a"
  "libsvb_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
