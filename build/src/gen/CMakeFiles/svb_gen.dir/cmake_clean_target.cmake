file(REMOVE_RECURSE
  "libsvb_gen.a"
)
