
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/backend_cx86.cc" "src/gen/CMakeFiles/svb_gen.dir/backend_cx86.cc.o" "gcc" "src/gen/CMakeFiles/svb_gen.dir/backend_cx86.cc.o.d"
  "/root/repo/src/gen/backend_riscv.cc" "src/gen/CMakeFiles/svb_gen.dir/backend_riscv.cc.o" "gcc" "src/gen/CMakeFiles/svb_gen.dir/backend_riscv.cc.o.d"
  "/root/repo/src/gen/guestlib.cc" "src/gen/CMakeFiles/svb_gen.dir/guestlib.cc.o" "gcc" "src/gen/CMakeFiles/svb_gen.dir/guestlib.cc.o.d"
  "/root/repo/src/gen/ir.cc" "src/gen/CMakeFiles/svb_gen.dir/ir.cc.o" "gcc" "src/gen/CMakeFiles/svb_gen.dir/ir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/svb_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/svb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
