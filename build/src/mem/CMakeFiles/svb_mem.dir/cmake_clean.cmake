file(REMOVE_RECURSE
  "CMakeFiles/svb_mem.dir/cache.cc.o"
  "CMakeFiles/svb_mem.dir/cache.cc.o.d"
  "CMakeFiles/svb_mem.dir/dram.cc.o"
  "CMakeFiles/svb_mem.dir/dram.cc.o.d"
  "CMakeFiles/svb_mem.dir/hierarchy.cc.o"
  "CMakeFiles/svb_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/svb_mem.dir/phys_memory.cc.o"
  "CMakeFiles/svb_mem.dir/phys_memory.cc.o.d"
  "libsvb_mem.a"
  "libsvb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
