# Empty dependencies file for svb_mem.
# This may be replaced when dependencies are built.
