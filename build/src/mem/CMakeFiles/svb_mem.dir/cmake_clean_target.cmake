file(REMOVE_RECURSE
  "libsvb_mem.a"
)
