file(REMOVE_RECURSE
  "libsvb_guest.a"
)
