# Empty dependencies file for svb_guest.
# This may be replaced when dependencies are built.
