file(REMOVE_RECURSE
  "CMakeFiles/svb_guest.dir/address_space.cc.o"
  "CMakeFiles/svb_guest.dir/address_space.cc.o.d"
  "CMakeFiles/svb_guest.dir/kernel.cc.o"
  "CMakeFiles/svb_guest.dir/kernel.cc.o.d"
  "CMakeFiles/svb_guest.dir/loader.cc.o"
  "CMakeFiles/svb_guest.dir/loader.cc.o.d"
  "CMakeFiles/svb_guest.dir/ring.cc.o"
  "CMakeFiles/svb_guest.dir/ring.cc.o.d"
  "libsvb_guest.a"
  "libsvb_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
