
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cx86/assembler.cc" "src/isa/CMakeFiles/svb_isa.dir/cx86/assembler.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/cx86/assembler.cc.o.d"
  "/root/repo/src/isa/cx86/decoder.cc" "src/isa/CMakeFiles/svb_isa.dir/cx86/decoder.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/cx86/decoder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/isa/CMakeFiles/svb_isa.dir/disasm.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/disasm.cc.o.d"
  "/root/repo/src/isa/isa_info.cc" "src/isa/CMakeFiles/svb_isa.dir/isa_info.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/isa_info.cc.o.d"
  "/root/repo/src/isa/microop.cc" "src/isa/CMakeFiles/svb_isa.dir/microop.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/microop.cc.o.d"
  "/root/repo/src/isa/riscv/assembler.cc" "src/isa/CMakeFiles/svb_isa.dir/riscv/assembler.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/riscv/assembler.cc.o.d"
  "/root/repo/src/isa/riscv/decoder.cc" "src/isa/CMakeFiles/svb_isa.dir/riscv/decoder.cc.o" "gcc" "src/isa/CMakeFiles/svb_isa.dir/riscv/decoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/svb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
