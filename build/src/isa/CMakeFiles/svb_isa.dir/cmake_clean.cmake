file(REMOVE_RECURSE
  "CMakeFiles/svb_isa.dir/cx86/assembler.cc.o"
  "CMakeFiles/svb_isa.dir/cx86/assembler.cc.o.d"
  "CMakeFiles/svb_isa.dir/cx86/decoder.cc.o"
  "CMakeFiles/svb_isa.dir/cx86/decoder.cc.o.d"
  "CMakeFiles/svb_isa.dir/disasm.cc.o"
  "CMakeFiles/svb_isa.dir/disasm.cc.o.d"
  "CMakeFiles/svb_isa.dir/isa_info.cc.o"
  "CMakeFiles/svb_isa.dir/isa_info.cc.o.d"
  "CMakeFiles/svb_isa.dir/microop.cc.o"
  "CMakeFiles/svb_isa.dir/microop.cc.o.d"
  "CMakeFiles/svb_isa.dir/riscv/assembler.cc.o"
  "CMakeFiles/svb_isa.dir/riscv/assembler.cc.o.d"
  "CMakeFiles/svb_isa.dir/riscv/decoder.cc.o"
  "CMakeFiles/svb_isa.dir/riscv/decoder.cc.o.d"
  "libsvb_isa.a"
  "libsvb_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
