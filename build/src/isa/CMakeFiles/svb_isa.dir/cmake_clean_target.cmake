file(REMOVE_RECURSE
  "libsvb_isa.a"
)
