# Empty compiler generated dependencies file for svb_isa.
# This may be replaced when dependencies are built.
