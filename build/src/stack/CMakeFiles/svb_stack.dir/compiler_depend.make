# Empty compiler generated dependencies file for svb_stack.
# This may be replaced when dependencies are built.
