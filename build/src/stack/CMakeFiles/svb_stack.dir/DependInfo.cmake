
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/calibration.cc" "src/stack/CMakeFiles/svb_stack.dir/calibration.cc.o" "gcc" "src/stack/CMakeFiles/svb_stack.dir/calibration.cc.o.d"
  "/root/repo/src/stack/image.cc" "src/stack/CMakeFiles/svb_stack.dir/image.cc.o" "gcc" "src/stack/CMakeFiles/svb_stack.dir/image.cc.o.d"
  "/root/repo/src/stack/kvproto.cc" "src/stack/CMakeFiles/svb_stack.dir/kvproto.cc.o" "gcc" "src/stack/CMakeFiles/svb_stack.dir/kvproto.cc.o.d"
  "/root/repo/src/stack/runtime.cc" "src/stack/CMakeFiles/svb_stack.dir/runtime.cc.o" "gcc" "src/stack/CMakeFiles/svb_stack.dir/runtime.cc.o.d"
  "/root/repo/src/stack/vm.cc" "src/stack/CMakeFiles/svb_stack.dir/vm.cc.o" "gcc" "src/stack/CMakeFiles/svb_stack.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/svb_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/svb_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/svb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
