file(REMOVE_RECURSE
  "libsvb_stack.a"
)
