file(REMOVE_RECURSE
  "CMakeFiles/svb_stack.dir/calibration.cc.o"
  "CMakeFiles/svb_stack.dir/calibration.cc.o.d"
  "CMakeFiles/svb_stack.dir/image.cc.o"
  "CMakeFiles/svb_stack.dir/image.cc.o.d"
  "CMakeFiles/svb_stack.dir/kvproto.cc.o"
  "CMakeFiles/svb_stack.dir/kvproto.cc.o.d"
  "CMakeFiles/svb_stack.dir/runtime.cc.o"
  "CMakeFiles/svb_stack.dir/runtime.cc.o.d"
  "CMakeFiles/svb_stack.dir/vm.cc.o"
  "CMakeFiles/svb_stack.dir/vm.cc.o.d"
  "libsvb_stack.a"
  "libsvb_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
