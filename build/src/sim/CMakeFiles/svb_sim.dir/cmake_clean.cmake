file(REMOVE_RECURSE
  "CMakeFiles/svb_sim.dir/eventq.cc.o"
  "CMakeFiles/svb_sim.dir/eventq.cc.o.d"
  "CMakeFiles/svb_sim.dir/logging.cc.o"
  "CMakeFiles/svb_sim.dir/logging.cc.o.d"
  "CMakeFiles/svb_sim.dir/rng.cc.o"
  "CMakeFiles/svb_sim.dir/rng.cc.o.d"
  "CMakeFiles/svb_sim.dir/serialize.cc.o"
  "CMakeFiles/svb_sim.dir/serialize.cc.o.d"
  "CMakeFiles/svb_sim.dir/stats.cc.o"
  "CMakeFiles/svb_sim.dir/stats.cc.o.d"
  "libsvb_sim.a"
  "libsvb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
