file(REMOVE_RECURSE
  "libsvb_sim.a"
)
