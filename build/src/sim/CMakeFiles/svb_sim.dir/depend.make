# Empty dependencies file for svb_sim.
# This may be replaced when dependencies are built.
