# Empty compiler generated dependencies file for svb_sim.
# This may be replaced when dependencies are built.
