file(REMOVE_RECURSE
  "CMakeFiles/svb_cpu.dir/atomic_cpu.cc.o"
  "CMakeFiles/svb_cpu.dir/atomic_cpu.cc.o.d"
  "CMakeFiles/svb_cpu.dir/branch_pred.cc.o"
  "CMakeFiles/svb_cpu.dir/branch_pred.cc.o.d"
  "CMakeFiles/svb_cpu.dir/o3_cpu.cc.o"
  "CMakeFiles/svb_cpu.dir/o3_cpu.cc.o.d"
  "CMakeFiles/svb_cpu.dir/tlb.cc.o"
  "CMakeFiles/svb_cpu.dir/tlb.cc.o.d"
  "libsvb_cpu.a"
  "libsvb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
