# Empty compiler generated dependencies file for svb_cpu.
# This may be replaced when dependencies are built.
