file(REMOVE_RECURSE
  "libsvb_cpu.a"
)
