
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/atomic_cpu.cc" "src/cpu/CMakeFiles/svb_cpu.dir/atomic_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/svb_cpu.dir/atomic_cpu.cc.o.d"
  "/root/repo/src/cpu/branch_pred.cc" "src/cpu/CMakeFiles/svb_cpu.dir/branch_pred.cc.o" "gcc" "src/cpu/CMakeFiles/svb_cpu.dir/branch_pred.cc.o.d"
  "/root/repo/src/cpu/o3_cpu.cc" "src/cpu/CMakeFiles/svb_cpu.dir/o3_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/svb_cpu.dir/o3_cpu.cc.o.d"
  "/root/repo/src/cpu/tlb.cc" "src/cpu/CMakeFiles/svb_cpu.dir/tlb.cc.o" "gcc" "src/cpu/CMakeFiles/svb_cpu.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/svb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
