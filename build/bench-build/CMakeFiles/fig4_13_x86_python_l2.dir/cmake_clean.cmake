file(REMOVE_RECURSE
  "../bench/fig4_13_x86_python_l2"
  "../bench/fig4_13_x86_python_l2.pdb"
  "CMakeFiles/fig4_13_x86_python_l2.dir/fig4_13_x86_python_l2.cc.o"
  "CMakeFiles/fig4_13_x86_python_l2.dir/fig4_13_x86_python_l2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_13_x86_python_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
