# Empty compiler generated dependencies file for fig4_13_x86_python_l2.
# This may be replaced when dependencies are built.
