# Empty dependencies file for ablation_design_space.
# This may be replaced when dependencies are built.
