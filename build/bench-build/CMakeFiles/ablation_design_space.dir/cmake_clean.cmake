file(REMOVE_RECURSE
  "../bench/ablation_design_space"
  "../bench/ablation_design_space.pdb"
  "CMakeFiles/ablation_design_space.dir/ablation_design_space.cc.o"
  "CMakeFiles/ablation_design_space.dir/ablation_design_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
