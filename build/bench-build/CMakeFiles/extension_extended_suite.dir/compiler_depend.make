# Empty compiler generated dependencies file for extension_extended_suite.
# This may be replaced when dependencies are built.
