file(REMOVE_RECURSE
  "../bench/extension_extended_suite"
  "../bench/extension_extended_suite.pdb"
  "CMakeFiles/extension_extended_suite.dir/extension_extended_suite.cc.o"
  "CMakeFiles/extension_extended_suite.dir/extension_extended_suite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_extended_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
