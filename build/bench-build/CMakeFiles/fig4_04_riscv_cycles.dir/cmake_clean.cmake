file(REMOVE_RECURSE
  "../bench/fig4_04_riscv_cycles"
  "../bench/fig4_04_riscv_cycles.pdb"
  "CMakeFiles/fig4_04_riscv_cycles.dir/fig4_04_riscv_cycles.cc.o"
  "CMakeFiles/fig4_04_riscv_cycles.dir/fig4_04_riscv_cycles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_04_riscv_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
