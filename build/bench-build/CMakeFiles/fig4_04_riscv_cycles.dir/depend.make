# Empty dependencies file for fig4_04_riscv_cycles.
# This may be replaced when dependencies are built.
