# Empty compiler generated dependencies file for fig4_19_isa_hotel.
# This may be replaced when dependencies are built.
