file(REMOVE_RECURSE
  "../bench/fig4_19_isa_hotel"
  "../bench/fig4_19_isa_hotel.pdb"
  "CMakeFiles/fig4_19_isa_hotel.dir/fig4_19_isa_hotel.cc.o"
  "CMakeFiles/fig4_19_isa_hotel.dir/fig4_19_isa_hotel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_19_isa_hotel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
