file(REMOVE_RECURSE
  "../bench/extension_lukewarm"
  "../bench/extension_lukewarm.pdb"
  "CMakeFiles/extension_lukewarm.dir/extension_lukewarm.cc.o"
  "CMakeFiles/extension_lukewarm.dir/extension_lukewarm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_lukewarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
