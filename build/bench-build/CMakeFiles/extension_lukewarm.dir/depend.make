# Empty dependencies file for extension_lukewarm.
# This may be replaced when dependencies are built.
