# Empty compiler generated dependencies file for fig4_05_riscv_hotel_cycles.
# This may be replaced when dependencies are built.
