file(REMOVE_RECURSE
  "../bench/fig4_05_riscv_hotel_cycles"
  "../bench/fig4_05_riscv_hotel_cycles.pdb"
  "CMakeFiles/fig4_05_riscv_hotel_cycles.dir/fig4_05_riscv_hotel_cycles.cc.o"
  "CMakeFiles/fig4_05_riscv_hotel_cycles.dir/fig4_05_riscv_hotel_cycles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_05_riscv_hotel_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
