# Empty dependencies file for fig4_10_11_go_funcs.
# This may be replaced when dependencies are built.
