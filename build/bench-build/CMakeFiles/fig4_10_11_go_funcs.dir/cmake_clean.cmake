file(REMOVE_RECURSE
  "../bench/fig4_10_11_go_funcs"
  "../bench/fig4_10_11_go_funcs.pdb"
  "CMakeFiles/fig4_10_11_go_funcs.dir/fig4_10_11_go_funcs.cc.o"
  "CMakeFiles/fig4_10_11_go_funcs.dir/fig4_10_11_go_funcs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_10_11_go_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
