file(REMOVE_RECURSE
  "../bench/fig4_08_09_hotel_l1_pct"
  "../bench/fig4_08_09_hotel_l1_pct.pdb"
  "CMakeFiles/fig4_08_09_hotel_l1_pct.dir/fig4_08_09_hotel_l1_pct.cc.o"
  "CMakeFiles/fig4_08_09_hotel_l1_pct.dir/fig4_08_09_hotel_l1_pct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_08_09_hotel_l1_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
