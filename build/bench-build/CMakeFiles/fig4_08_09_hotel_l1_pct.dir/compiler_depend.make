# Empty compiler generated dependencies file for fig4_08_09_hotel_l1_pct.
# This may be replaced when dependencies are built.
