# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_08_09_hotel_l1_pct.
