# Empty compiler generated dependencies file for fig4_14_x86_hotel_cycles.
# This may be replaced when dependencies are built.
