# Empty dependencies file for fig4_12_x86_cycles.
# This may be replaced when dependencies are built.
