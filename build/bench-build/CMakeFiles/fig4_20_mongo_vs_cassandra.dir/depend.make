# Empty dependencies file for fig4_20_mongo_vs_cassandra.
# This may be replaced when dependencies are built.
