file(REMOVE_RECURSE
  "../bench/fig4_20_mongo_vs_cassandra"
  "../bench/fig4_20_mongo_vs_cassandra.pdb"
  "CMakeFiles/fig4_20_mongo_vs_cassandra.dir/fig4_20_mongo_vs_cassandra.cc.o"
  "CMakeFiles/fig4_20_mongo_vs_cassandra.dir/fig4_20_mongo_vs_cassandra.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_20_mongo_vs_cassandra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
