# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_20_mongo_vs_cassandra.
