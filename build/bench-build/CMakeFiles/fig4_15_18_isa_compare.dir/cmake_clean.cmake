file(REMOVE_RECURSE
  "../bench/fig4_15_18_isa_compare"
  "../bench/fig4_15_18_isa_compare.pdb"
  "CMakeFiles/fig4_15_18_isa_compare.dir/fig4_15_18_isa_compare.cc.o"
  "CMakeFiles/fig4_15_18_isa_compare.dir/fig4_15_18_isa_compare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_15_18_isa_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
