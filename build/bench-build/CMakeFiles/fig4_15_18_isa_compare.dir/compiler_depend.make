# Empty compiler generated dependencies file for fig4_15_18_isa_compare.
# This may be replaced when dependencies are built.
