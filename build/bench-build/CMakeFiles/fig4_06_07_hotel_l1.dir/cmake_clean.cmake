file(REMOVE_RECURSE
  "../bench/fig4_06_07_hotel_l1"
  "../bench/fig4_06_07_hotel_l1.pdb"
  "CMakeFiles/fig4_06_07_hotel_l1.dir/fig4_06_07_hotel_l1.cc.o"
  "CMakeFiles/fig4_06_07_hotel_l1.dir/fig4_06_07_hotel_l1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_06_07_hotel_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
