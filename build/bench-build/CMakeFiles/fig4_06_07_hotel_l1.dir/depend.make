# Empty dependencies file for fig4_06_07_hotel_l1.
# This may be replaced when dependencies are built.
