file(REMOVE_RECURSE
  "../bench/table4_4_container_sizes"
  "../bench/table4_4_container_sizes.pdb"
  "CMakeFiles/table4_4_container_sizes.dir/table4_4_container_sizes.cc.o"
  "CMakeFiles/table4_4_container_sizes.dir/table4_4_container_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_4_container_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
