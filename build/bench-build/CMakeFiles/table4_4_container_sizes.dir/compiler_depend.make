# Empty compiler generated dependencies file for table4_4_container_sizes.
# This may be replaced when dependencies are built.
