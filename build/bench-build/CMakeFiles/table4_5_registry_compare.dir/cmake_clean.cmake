file(REMOVE_RECURSE
  "../bench/table4_5_registry_compare"
  "../bench/table4_5_registry_compare.pdb"
  "CMakeFiles/table4_5_registry_compare.dir/table4_5_registry_compare.cc.o"
  "CMakeFiles/table4_5_registry_compare.dir/table4_5_registry_compare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_5_registry_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
