# Empty dependencies file for table4_5_registry_compare.
# This may be replaced when dependencies are built.
