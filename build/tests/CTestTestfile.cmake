# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa_riscv[1]_include.cmake")
include("/root/repo/build/tests/test_isa_cx86[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_differential[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_guest[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_micro[1]_include.cmake")
include("/root/repo/build/tests/test_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_features[1]_include.cmake")
include("/root/repo/build/tests/test_core_system[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
