file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_micro.dir/test_cpu_micro.cc.o"
  "CMakeFiles/test_cpu_micro.dir/test_cpu_micro.cc.o.d"
  "test_cpu_micro"
  "test_cpu_micro.pdb"
  "test_cpu_micro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
