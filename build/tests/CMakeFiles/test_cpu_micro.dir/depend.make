# Empty dependencies file for test_cpu_micro.
# This may be replaced when dependencies are built.
