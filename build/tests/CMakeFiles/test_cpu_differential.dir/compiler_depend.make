# Empty compiler generated dependencies file for test_cpu_differential.
# This may be replaced when dependencies are built.
