file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_differential.dir/test_cpu_differential.cc.o"
  "CMakeFiles/test_cpu_differential.dir/test_cpu_differential.cc.o.d"
  "test_cpu_differential"
  "test_cpu_differential.pdb"
  "test_cpu_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
