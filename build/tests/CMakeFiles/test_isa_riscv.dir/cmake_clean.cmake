file(REMOVE_RECURSE
  "CMakeFiles/test_isa_riscv.dir/test_isa_riscv.cc.o"
  "CMakeFiles/test_isa_riscv.dir/test_isa_riscv.cc.o.d"
  "test_isa_riscv"
  "test_isa_riscv.pdb"
  "test_isa_riscv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
