# Empty dependencies file for test_isa_riscv.
# This may be replaced when dependencies are built.
