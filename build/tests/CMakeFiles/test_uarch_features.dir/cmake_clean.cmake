file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_features.dir/test_uarch_features.cc.o"
  "CMakeFiles/test_uarch_features.dir/test_uarch_features.cc.o.d"
  "test_uarch_features"
  "test_uarch_features.pdb"
  "test_uarch_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
