file(REMOVE_RECURSE
  "CMakeFiles/test_isa_cx86.dir/test_isa_cx86.cc.o"
  "CMakeFiles/test_isa_cx86.dir/test_isa_cx86.cc.o.d"
  "test_isa_cx86"
  "test_isa_cx86.pdb"
  "test_isa_cx86[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_cx86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
