# Empty compiler generated dependencies file for test_isa_cx86.
# This may be replaced when dependencies are built.
