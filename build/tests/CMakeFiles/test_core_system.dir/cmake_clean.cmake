file(REMOVE_RECURSE
  "CMakeFiles/test_core_system.dir/test_core_system.cc.o"
  "CMakeFiles/test_core_system.dir/test_core_system.cc.o.d"
  "test_core_system"
  "test_core_system.pdb"
  "test_core_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
