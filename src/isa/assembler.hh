/**
 * @file
 * Common machinery for the programmatic assemblers.
 *
 * Both backends emit raw machine-code bytes into a growable buffer and
 * use integer-id labels with forward-reference fixups. The generated
 * bytes are loaded into guest memory and later fetched and decoded by
 * the simulated CPUs, so code footprint and layout are real.
 */

#ifndef SVB_ISA_ASSEMBLER_HH
#define SVB_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace svb
{

/** An assembler label; resolves to a code offset when bound. */
struct AsmLabel
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * Base class providing the byte buffer, label table and fixup list.
 */
class AssemblerBase
{
  public:
    virtual ~AssemblerBase() = default;

    /** Allocate a fresh unbound label. */
    AsmLabel
    newLabel()
    {
        labelOffsets.push_back(-1);
        return AsmLabel{int(labelOffsets.size()) - 1};
    }

    /** Bind @p label to the current position. */
    void
    bind(AsmLabel label)
    {
        svb_assert(label.valid(), "binding invalid label");
        svb_assert(labelOffsets.at(size_t(label.id)) < 0,
                   "label bound twice");
        labelOffsets[size_t(label.id)] = int64_t(buf.size());
    }

    /** Current emission offset, in bytes from the code start. */
    size_t here() const { return buf.size(); }

    /**
     * Resolve all fixups and return the finished code bytes.
     * The assembler must not be used for emission afterwards.
     */
    const std::vector<uint8_t> &
    finish()
    {
        for (const auto &fix : fixups) {
            int64_t off = labelOffsets.at(size_t(fix.labelId));
            svb_assert(off >= 0, "unbound label ", fix.labelId);
            applyFixup(fix.instOffset, fix.patchOffset, fix.kind,
                       off - int64_t(fix.instOffset));
        }
        fixups.clear();
        finished = true;
        return buf;
    }

    /** @return the code buffer (must be finished). */
    const std::vector<uint8_t> &
    code() const
    {
        svb_assert(finished, "code() before finish()");
        return buf;
    }

    /** Emit raw data bytes (jump tables, constants). */
    void
    emitBytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf.insert(buf.end(), p, p + len);
    }

    /** Pad with ISA-neutral zero bytes up to @p alignment. */
    void
    align(size_t alignment)
    {
        while (buf.size() % alignment != 0)
            buf.push_back(0);
    }

  protected:
    struct Fixup
    {
        size_t instOffset;  ///< offset of the branch instruction
        size_t patchOffset; ///< offset of the bytes to patch
        int labelId;
        int kind;           ///< ISA-specific relocation kind
    };

    void emit8(uint8_t v) { buf.push_back(v); }

    void
    emit16(uint16_t v)
    {
        emit8(uint8_t(v));
        emit8(uint8_t(v >> 8));
    }

    void
    emit32(uint32_t v)
    {
        emit16(uint16_t(v));
        emit16(uint16_t(v >> 16));
    }

    void
    emit64(uint64_t v)
    {
        emit32(uint32_t(v));
        emit32(uint32_t(v >> 32));
    }

    void
    patch32(size_t offset, uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.at(offset + size_t(i)) = uint8_t(v >> (8 * i));
    }

    uint32_t
    read32(size_t offset) const
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(buf.at(offset + size_t(i))) << (8 * i);
        return v;
    }

    void
    recordFixup(size_t inst_offset, size_t patch_offset, AsmLabel label,
                int kind)
    {
        svb_assert(label.valid(), "fixup against invalid label");
        fixups.push_back({inst_offset, patch_offset, label.id, kind});
    }

    /**
     * Patch a branch displacement.
     *
     * @param inst_offset  offset of the instruction being patched
     * @param patch_offset offset of the displacement field
     * @param kind         ISA-specific relocation kind
     * @param delta        target offset minus instruction offset
     */
    virtual void applyFixup(size_t inst_offset, size_t patch_offset,
                            int kind, int64_t delta) = 0;

    std::vector<uint8_t> buf;

  private:
    std::vector<int64_t> labelOffsets;
    std::vector<Fixup> fixups;
    bool finished = false;
};

} // namespace svb

#endif // SVB_ISA_ASSEMBLER_HH
