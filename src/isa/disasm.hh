/**
 * @file
 * Disassembly of decoded instructions to readable text, for both
 * guest ISAs.
 */

#ifndef SVB_ISA_DISASM_HH
#define SVB_ISA_DISASM_HH

#include <string>
#include <vector>

#include "isa_info.hh"
#include "static_inst.hh"

namespace svb
{

/**
 * Render one decoded instruction.
 *
 * @param inst decoded macro instruction
 * @param isa  the ISA it was decoded from (register naming)
 * @param pc   its address (resolves direct targets); 0 keeps targets
 *             relative
 */
std::string disassemble(const StaticInst &inst, IsaId isa, Addr pc = 0);

/** One line of a disassembly listing. */
struct DisasmLine
{
    Addr offset = 0;       ///< code offset of the instruction
    unsigned length = 0;   ///< encoded bytes
    std::string text;      ///< rendered instruction
    std::string symbol;    ///< non-empty when a symbol starts here
};

/**
 * Disassemble a whole code buffer sequentially.
 *
 * @param code    machine code bytes
 * @param isa     guest ISA
 * @param symbols optional (name, offset) pairs to annotate
 * @param base    address of code[0] (for target resolution)
 */
std::vector<DisasmLine>
disassembleBuffer(const std::vector<uint8_t> &code, IsaId isa,
                  const std::vector<std::pair<std::string, Addr>> &symbols =
                      {},
                  Addr base = 0);

} // namespace svb

#endif // SVB_ISA_DISASM_HH
