#include "isa_info.hh"

#include "sim/logging.hh"

namespace svb
{

namespace
{

const IsaInfo riscvInfo{
    IsaId::Riscv, "riscv64", 32, /*zeroReg=*/0, /*flagReg=*/-1,
    /*minInstLength=*/4, /*maxInstLength=*/4,
};

const IsaInfo cx86Info{
    IsaId::Cx86, "cx86-64", cx::numRegs, /*zeroReg=*/-1,
    /*flagReg=*/int(cx::rflags), /*minInstLength=*/1, /*maxInstLength=*/12,
};

} // namespace

const IsaInfo &
isaInfo(IsaId id)
{
    switch (id) {
      case IsaId::Riscv: return riscvInfo;
      case IsaId::Cx86: return cx86Info;
    }
    svb_panic("unknown ISA id ", int(id));
}

} // namespace svb
