#include "microop.hh"

#include "sim/logging.hh"

namespace svb
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::MemRead: return "MemRead";
      case OpClass::MemWrite: return "MemWrite";
      case OpClass::Branch: return "Branch";
      case OpClass::No_OpClass: return "No_OpClass";
    }
    return "?";
}

namespace
{

int64_t s64(uint64_t v) { return int64_t(v); }
int32_t s32(uint64_t v) { return int32_t(uint32_t(v)); }

uint64_t sextW(uint64_t v) { return uint64_t(int64_t(int32_t(uint32_t(v)))); }

/** 64-bit signed high multiply. */
uint64_t
mulh64(int64_t a, int64_t b)
{
    return uint64_t(uint64_t((__int128(a) * __int128(b)) >> 64));
}

uint64_t
mulhu64(uint64_t a, uint64_t b)
{
    using U128 = unsigned __int128;
    return uint64_t((U128(a) * U128(b)) >> 64);
}

} // namespace

uint64_t
computeCmpFlags(uint64_t a, uint64_t b)
{
    uint64_t r = a - b;
    uint64_t flags = 0;
    if (r == 0)
        flags |= flag::zf;
    if (s64(r) < 0)
        flags |= flag::sf;
    if (a < b)
        flags |= flag::cf;
    // Signed overflow of a - b.
    if (((a ^ b) & (a ^ r)) >> 63)
        flags |= flag::of;
    return flags;
}

bool
flagCondTaken(FlagCond cond, uint64_t flags)
{
    const bool zf = flags & flag::zf;
    const bool sf = flags & flag::sf;
    const bool cf = flags & flag::cf;
    const bool of = flags & flag::of;
    switch (cond) {
      case FlagCond::Eq: return zf;
      case FlagCond::Ne: return !zf;
      case FlagCond::Lt: return sf != of;
      case FlagCond::Ge: return sf == of;
      case FlagCond::Le: return zf || (sf != of);
      case FlagCond::Gt: return !zf && (sf == of);
      case FlagCond::Ltu: return cf;
      case FlagCond::Geu: return !cf;
      case FlagCond::Leu: return cf || zf;
      case FlagCond::Gtu: return !cf && !zf;
    }
    return false;
}

uint64_t
loadExtend(uint64_t raw, unsigned size, bool sgn)
{
    switch (size) {
      case 1:
        return sgn ? uint64_t(int64_t(int8_t(raw))) : (raw & 0xff);
      case 2:
        return sgn ? uint64_t(int64_t(int16_t(raw))) : (raw & 0xffff);
      case 4:
        return sgn ? uint64_t(int64_t(int32_t(raw))) : (raw & 0xffffffff);
      case 8:
        return raw;
      default:
        svb_panic("bad load size ", size);
    }
}

uint64_t
aluCompute(const MicroOp &uop, uint64_t a, uint64_t b, Addr pc)
{
    if (uop.useImm)
        b = uint64_t(uop.imm);

    switch (uop.op) {
      case UopOp::Add: return a + b;
      case UopOp::Sub: return a - b;
      case UopOp::And: return a & b;
      case UopOp::Or: return a | b;
      case UopOp::Xor: return a ^ b;
      case UopOp::Sll: return a << (b & 63);
      case UopOp::Srl: return a >> (b & 63);
      case UopOp::Sra: return uint64_t(s64(a) >> (b & 63));
      case UopOp::Slt: return s64(a) < s64(b) ? 1 : 0;
      case UopOp::Sltu: return a < b ? 1 : 0;
      case UopOp::AddW: return sextW(a + b);
      case UopOp::SubW: return sextW(a - b);
      case UopOp::SllW: return sextW(a << (b & 31));
      case UopOp::SrlW: return sextW(uint32_t(a) >> (b & 31));
      case UopOp::SraW: return sextW(uint64_t(s32(a) >> (b & 31)));
      case UopOp::Mul: return a * b;
      case UopOp::Mulh: return mulh64(s64(a), s64(b));
      case UopOp::Mulhu: return mulhu64(a, b);
      case UopOp::Div:
        if (b == 0)
            return ~uint64_t(0);
        if (s64(a) == INT64_MIN && s64(b) == -1)
            return a;
        return uint64_t(s64(a) / s64(b));
      case UopOp::Divu: return b == 0 ? ~uint64_t(0) : a / b;
      case UopOp::Rem:
        if (b == 0)
            return a;
        if (s64(a) == INT64_MIN && s64(b) == -1)
            return 0;
        return uint64_t(s64(a) % s64(b));
      case UopOp::Remu: return b == 0 ? a : a % b;
      case UopOp::MulW: return sextW(uint64_t(s32(a)) * uint64_t(s32(b)));
      case UopOp::DivW: {
        int32_t ia = s32(a), ib = s32(b);
        if (ib == 0)
            return ~uint64_t(0);
        if (ia == INT32_MIN && ib == -1)
            return sextW(uint64_t(uint32_t(ia)));
        return sextW(uint64_t(uint32_t(ia / ib)));
      }
      case UopOp::DivuW: {
        uint32_t ua = uint32_t(a), ub = uint32_t(b);
        return ub == 0 ? ~uint64_t(0) : sextW(ua / ub);
      }
      case UopOp::RemW: {
        int32_t ia = s32(a), ib = s32(b);
        if (ib == 0)
            return sextW(uint64_t(uint32_t(ia)));
        if (ia == INT32_MIN && ib == -1)
            return 0;
        return sextW(uint64_t(uint32_t(ia % ib)));
      }
      case UopOp::RemuW: {
        uint32_t ua = uint32_t(a), ub = uint32_t(b);
        return ub == 0 ? sextW(ua) : sextW(ua % ub);
      }
      case UopOp::MovImm: return uint64_t(uop.imm);
      case UopOp::Auipc: return pc + uint64_t(uop.imm);
      case UopOp::CmpFlags: return computeCmpFlags(a, b);
      case UopOp::TestFlags: {
        uint64_t r = a & b;
        uint64_t flags = 0;
        if (r == 0)
            flags |= flag::zf;
        if (s64(r) < 0)
            flags |= flag::sf;
        return flags;
      }
      case UopOp::Nop: return 0;
      default:
        svb_panic("aluCompute on non-ALU uop ", int(uop.op));
    }
}

BranchEval
branchEval(const MicroOp &uop, uint64_t a, uint64_t b, Addr pc)
{
    BranchEval ev;
    switch (uop.op) {
      case UopOp::BranchEq: ev.taken = a == b; break;
      case UopOp::BranchNe: ev.taken = a != b; break;
      case UopOp::BranchLt: ev.taken = s64(a) < s64(b); break;
      case UopOp::BranchGe: ev.taken = s64(a) >= s64(b); break;
      case UopOp::BranchLtu: ev.taken = a < b; break;
      case UopOp::BranchGeu: ev.taken = a >= b; break;
      case UopOp::BranchFlags: ev.taken = flagCondTaken(uop.cond, a); break;
      case UopOp::Jump: ev.taken = true; break;
      case UopOp::JumpReg:
        ev.taken = true;
        // Note: RISC-V JALR clears bit 0 of the target; our generated
        // code is always 4-byte aligned there, and CX86 instructions
        // are byte-aligned, so the raw sum is correct for both.
        ev.target = a + uint64_t(uop.imm);
        return ev;
      default:
        svb_panic("branchEval on non-control uop ", int(uop.op));
    }
    ev.target = pc + uint64_t(uop.imm);
    return ev;
}

} // namespace svb
