/**
 * @file
 * Decoded macro instructions.
 */

#ifndef SVB_ISA_STATIC_INST_HH
#define SVB_ISA_STATIC_INST_HH

#include <array>
#include <cstdint>
#include <string>

#include "microop.hh"
#include "sim/types.hh"

namespace svb
{

/** Maximum micro-ops per macro instruction (CX86 op-store / call). */
constexpr unsigned maxUopsPerInst = 4;

/**
 * One decoded macro instruction: its micro-op expansion plus the
 * summary flags the front-end (branch prediction) needs.
 */
struct StaticInst
{
    std::array<MicroOp, maxUopsPerInst> uops{};
    uint8_t numUops = 0;
    uint8_t length = 0;   ///< encoded length in bytes

    bool valid = false;   ///< decoded successfully
    bool isControl = false;
    bool isCondCtrl = false;
    bool isCall = false;
    bool isReturn = false;
    bool isDirectCtrl = false;
    bool isSyscall = false;
    bool isHalt = false;

    /** Target of a direct control transfer, pc-relative offset. */
    int64_t directOffset = 0;

    std::string mnemonic; ///< disassembly text for debugging

    /** Append a micro-op to the expansion. */
    void
    addUop(const MicroOp &uop)
    {
        uops.at(numUops++) = uop;
    }

    /** @return absolute direct target given the instruction's pc. */
    Addr directTarget(Addr pc) const { return pc + uint64_t(directOffset); }
};

} // namespace svb

#endif // SVB_ISA_STATIC_INST_HH
