/**
 * @file
 * The micro-op intermediate form shared by both guest ISAs.
 *
 * Macro instructions decode into one or more MicroOps. All functional
 * semantics (ALU computation, branch evaluation, flag generation) are
 * expressed as pure functions over operand values, so the Atomic CPU
 * and the renamed out-of-order pipeline share one implementation.
 */

#ifndef SVB_ISA_MICROOP_HH
#define SVB_ISA_MICROOP_HH

#include <cstdint>

#include "op_class.hh"
#include "sim/types.hh"

namespace svb
{

/** Sentinel for "no register operand". */
constexpr uint8_t invalidReg = 0xff;

/** Micro-operations understood by the execution core. */
enum class UopOp : uint8_t
{
    // Integer ALU.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    AddW, SubW, SllW, SrlW, SraW,
    // Multiply / divide.
    Mul, Mulh, Mulhu, Div, Divu, Rem, Remu,
    MulW, DivW, DivuW, RemW, RemuW,
    // Immediates & PC-relative materialisation.
    MovImm,   ///< rd = imm
    Auipc,    ///< rd = pc + imm
    // CX86 condition flags.
    CmpFlags, ///< rd(FLAGS) = flags(rs1 - rs2)
    TestFlags,///< rd(FLAGS) = flags(rs1 & rs2)
    // Memory.
    Load,     ///< rd = mem[rs1 + imm]
    Store,    ///< mem[rs1 + imm] = rs2
    // Control.
    BranchEq, BranchNe, BranchLt, BranchGe, BranchLtu, BranchGeu,
    BranchFlags, ///< conditional on FLAGS (rs1), condition in 'cond'
    Jump,        ///< direct jump, target = pc + imm, optional link rd
    JumpReg,     ///< indirect jump, target = (rs1 + imm) & ~1, link rd
    // System.
    Syscall, Halt, Nop,
};

/** Condition codes for BranchFlags (CX86 Jcc). */
enum class FlagCond : uint8_t
{
    Eq, Ne, Lt, Ge, Le, Gt, Ltu, Geu, Leu, Gtu
};

/** FLAGS register bit layout produced by CmpFlags/TestFlags. */
namespace flag
{
constexpr uint64_t zf = 1 << 0; ///< zero
constexpr uint64_t sf = 1 << 1; ///< sign
constexpr uint64_t cf = 1 << 2; ///< carry (unsigned borrow)
constexpr uint64_t of = 1 << 3; ///< signed overflow
} // namespace flag

/**
 * One executable micro-operation.
 */
struct MicroOp
{
    UopOp op = UopOp::Nop;
    uint8_t rd = invalidReg;
    uint8_t rs1 = invalidReg;
    uint8_t rs2 = invalidReg;
    int64_t imm = 0;
    uint8_t memSize = 0;       ///< access size in bytes (loads/stores)
    bool memSigned = false;    ///< sign-extend loaded value
    FlagCond cond = FlagCond::Eq;
    OpClass cls = OpClass::IntAlu;
    bool useImm = false;       ///< second ALU source is 'imm', not rs2

    bool isLoad() const { return op == UopOp::Load; }
    bool isStore() const { return op == UopOp::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isSyscall() const { return op == UopOp::Syscall; }
    bool isHalt() const { return op == UopOp::Halt; }

    bool
    isControl() const
    {
        return (op >= UopOp::BranchEq && op <= UopOp::JumpReg);
    }

    bool
    isCondCtrl() const
    {
        return (op >= UopOp::BranchEq && op <= UopOp::BranchFlags);
    }

    bool isIndirectCtrl() const { return op == UopOp::JumpReg; }
};

/** Outcome of evaluating a control micro-op. */
struct BranchEval
{
    bool taken = false;
    Addr target = 0;
};

/**
 * Compute the result of a non-memory, non-control micro-op.
 *
 * @param uop the micro-op (MovImm/Auipc/ALU/flag ops)
 * @param a   value of rs1
 * @param b   value of rs2 (ignored when useImm)
 * @param pc  pc of the containing macro instruction (for Auipc)
 * @return the value to write to rd
 */
uint64_t aluCompute(const MicroOp &uop, uint64_t a, uint64_t b, Addr pc);

/**
 * Evaluate a control micro-op.
 *
 * @param uop control micro-op
 * @param a   value of rs1 (FLAGS for BranchFlags, base for JumpReg)
 * @param b   value of rs2
 * @param pc  pc of the containing macro instruction
 * @return taken flag and target address
 */
BranchEval branchEval(const MicroOp &uop, uint64_t a, uint64_t b, Addr pc);

/**
 * Sign/zero-extend a raw little-endian loaded value.
 *
 * @param raw    raw loaded bytes in the low bits
 * @param size   access size (1/2/4/8 bytes)
 * @param sgn    sign-extend when true
 */
uint64_t loadExtend(uint64_t raw, unsigned size, bool sgn);

/** @return the effective address of a memory micro-op. */
inline Addr
memEffAddr(const MicroOp &uop, uint64_t base)
{
    return Addr(base + uint64_t(uop.imm));
}

/** Evaluate a FlagCond against a FLAGS word. */
bool flagCondTaken(FlagCond cond, uint64_t flags);

/** Compute the FLAGS word for a compare (a - b). */
uint64_t computeCmpFlags(uint64_t a, uint64_t b);

} // namespace svb

#endif // SVB_ISA_MICROOP_HH
