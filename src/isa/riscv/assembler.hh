/**
 * @file
 * Programmatic RV64IM assembler.
 *
 * Emits genuine RISC-V machine code (RV64I base + M extension) into a
 * byte buffer. Pseudo-instructions (li/mv/j/ret/call) expand to the
 * standard sequences.
 */

#ifndef SVB_ISA_RISCV_ASSEMBLER_HH
#define SVB_ISA_RISCV_ASSEMBLER_HH

#include "isa/assembler.hh"
#include "isa/isa_info.hh"

namespace svb::riscv
{

/** Relocation kinds used by the assembler's fixups. */
enum RelocKind { relocBType, relocJType, relocCallAuipc };

/**
 * RV64IM assembler.
 */
class Assembler : public AssemblerBase
{
  public:
    using Reg = uint8_t;

    // --- R-type ALU -----------------------------------------------------
    void add(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 0, 0x00, rd, rs1, rs2); }
    void sub(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 0, 0x20, rd, rs1, rs2); }
    void sll(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 1, 0x00, rd, rs1, rs2); }
    void slt(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 2, 0x00, rd, rs1, rs2); }
    void sltu(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 3, 0x00, rd, rs1, rs2); }
    void xor_(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 4, 0x00, rd, rs1, rs2); }
    void srl(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 5, 0x00, rd, rs1, rs2); }
    void sra(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 5, 0x20, rd, rs1, rs2); }
    void or_(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 6, 0x00, rd, rs1, rs2); }
    void and_(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 7, 0x00, rd, rs1, rs2); }
    void addw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 0, 0x00, rd, rs1, rs2); }
    void subw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 0, 0x20, rd, rs1, rs2); }
    void sllw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 1, 0x00, rd, rs1, rs2); }
    void srlw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 5, 0x00, rd, rs1, rs2); }
    void sraw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 5, 0x20, rd, rs1, rs2); }

    // --- M extension ----------------------------------------------------
    void mul(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 0, 0x01, rd, rs1, rs2); }
    void mulh(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 1, 0x01, rd, rs1, rs2); }
    void mulhu(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 3, 0x01, rd, rs1, rs2); }
    void div(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 4, 0x01, rd, rs1, rs2); }
    void divu(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 5, 0x01, rd, rs1, rs2); }
    void rem(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 6, 0x01, rd, rs1, rs2); }
    void remu(Reg rd, Reg rs1, Reg rs2) { rtype(0x33, 7, 0x01, rd, rs1, rs2); }
    void mulw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 0, 0x01, rd, rs1, rs2); }
    void divw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 4, 0x01, rd, rs1, rs2); }
    void divuw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 5, 0x01, rd, rs1, rs2); }
    void remw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 6, 0x01, rd, rs1, rs2); }
    void remuw(Reg rd, Reg rs1, Reg rs2) { rtype(0x3b, 7, 0x01, rd, rs1, rs2); }

    // --- I-type ALU -----------------------------------------------------
    void addi(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 0, rd, rs1, imm); }
    void slti(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 2, rd, rs1, imm); }
    void sltiu(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 3, rd, rs1, imm); }
    void xori(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 4, rd, rs1, imm); }
    void ori(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 6, rd, rs1, imm); }
    void andi(Reg rd, Reg rs1, int32_t imm) { itype(0x13, 7, rd, rs1, imm); }
    void addiw(Reg rd, Reg rs1, int32_t imm) { itype(0x1b, 0, rd, rs1, imm); }

    void
    slli(Reg rd, Reg rs1, unsigned shamt)
    {
        itype(0x13, 1, rd, rs1, int32_t(shamt & 63));
    }

    void
    srli(Reg rd, Reg rs1, unsigned shamt)
    {
        itype(0x13, 5, rd, rs1, int32_t(shamt & 63));
    }

    void
    srai(Reg rd, Reg rs1, unsigned shamt)
    {
        itype(0x13, 5, rd, rs1, int32_t(0x400 | (shamt & 63)));
    }

    // --- Upper immediates -------------------------------------------------
    void
    lui(Reg rd, int32_t imm20)
    {
        emit32(uint32_t(imm20) << 12 | uint32_t(rd) << 7 | 0x37);
    }

    void
    auipc(Reg rd, int32_t imm20)
    {
        emit32(uint32_t(imm20) << 12 | uint32_t(rd) << 7 | 0x17);
    }

    // --- Loads / stores ---------------------------------------------------
    void lb(Reg rd, Reg rs1, int32_t off) { itype(0x03, 0, rd, rs1, off); }
    void lh(Reg rd, Reg rs1, int32_t off) { itype(0x03, 1, rd, rs1, off); }
    void lw(Reg rd, Reg rs1, int32_t off) { itype(0x03, 2, rd, rs1, off); }
    void ld(Reg rd, Reg rs1, int32_t off) { itype(0x03, 3, rd, rs1, off); }
    void lbu(Reg rd, Reg rs1, int32_t off) { itype(0x03, 4, rd, rs1, off); }
    void lhu(Reg rd, Reg rs1, int32_t off) { itype(0x03, 5, rd, rs1, off); }
    void lwu(Reg rd, Reg rs1, int32_t off) { itype(0x03, 6, rd, rs1, off); }
    void sb(Reg rs2, Reg rs1, int32_t off) { stype(0, rs1, rs2, off); }
    void sh(Reg rs2, Reg rs1, int32_t off) { stype(1, rs1, rs2, off); }
    void sw(Reg rs2, Reg rs1, int32_t off) { stype(2, rs1, rs2, off); }
    void sd(Reg rs2, Reg rs1, int32_t off) { stype(3, rs1, rs2, off); }

    // --- Control ----------------------------------------------------------
    void beq(Reg rs1, Reg rs2, AsmLabel l) { btype(0, rs1, rs2, l); }
    void bne(Reg rs1, Reg rs2, AsmLabel l) { btype(1, rs1, rs2, l); }
    void blt(Reg rs1, Reg rs2, AsmLabel l) { btype(4, rs1, rs2, l); }
    void bge(Reg rs1, Reg rs2, AsmLabel l) { btype(5, rs1, rs2, l); }
    void bltu(Reg rs1, Reg rs2, AsmLabel l) { btype(6, rs1, rs2, l); }
    void bgeu(Reg rs1, Reg rs2, AsmLabel l) { btype(7, rs1, rs2, l); }

    void
    jal(Reg rd, AsmLabel l)
    {
        recordFixup(here(), here(), l, relocJType);
        emit32(uint32_t(rd) << 7 | 0x6f);
    }

    void
    jalr(Reg rd, Reg rs1, int32_t off)
    {
        itype(0x67, 0, rd, rs1, off);
    }

    // --- System -----------------------------------------------------------
    void ecall() { emit32(0x00000073); }
    void ebreak() { emit32(0x00100073); }
    void fence() { emit32(0x0000000f); }
    void nop() { addi(0, 0, 0); }

    // --- Pseudo-instructions ------------------------------------------------
    /** Load an arbitrary 64-bit constant (expands as needed). */
    void li(Reg rd, int64_t value);
    void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
    void j(AsmLabel l) { jal(0, l); }
    void ret() { jalr(0, rv::ra, 0); }
    void call(AsmLabel l) { jal(rv::ra, l); }

    /**
     * Far call: auipc ra, %hi + jalr ra, ra, %lo — the standard
     * medany-model call sequence, reaching +-2 GiB.
     */
    void
    callFar(AsmLabel l)
    {
        recordFixup(here(), here(), l, relocCallAuipc);
        auipc(rv::ra, 0);
        jalr(rv::ra, rv::ra, 0);
    }
    /** Two's-complement negate. */
    void neg(Reg rd, Reg rs) { sub(rd, 0, rs); }

  protected:
    void applyFixup(size_t inst_offset, size_t patch_offset, int kind,
                    int64_t delta) override;

  private:
    void
    rtype(uint8_t opcode, uint8_t funct3, uint8_t funct7, Reg rd, Reg rs1,
          Reg rs2)
    {
        emit32(uint32_t(funct7) << 25 | uint32_t(rs2) << 20 |
               uint32_t(rs1) << 15 | uint32_t(funct3) << 12 |
               uint32_t(rd) << 7 | opcode);
    }

    void
    itype(uint8_t opcode, uint8_t funct3, Reg rd, Reg rs1, int32_t imm)
    {
        svb_assert(imm >= -2048 && imm < 2048, "I-type imm out of range: ",
                   imm);
        emit32(uint32_t(imm & 0xfff) << 20 | uint32_t(rs1) << 15 |
               uint32_t(funct3) << 12 | uint32_t(rd) << 7 | opcode);
    }

    void
    stype(uint8_t funct3, Reg rs1, Reg rs2, int32_t imm)
    {
        svb_assert(imm >= -2048 && imm < 2048, "S-type imm out of range");
        uint32_t u = uint32_t(imm & 0xfff);
        emit32((u >> 5) << 25 | uint32_t(rs2) << 20 | uint32_t(rs1) << 15 |
               uint32_t(funct3) << 12 | (u & 0x1f) << 7 | 0x23);
    }

    void
    btype(uint8_t funct3, Reg rs1, Reg rs2, AsmLabel l)
    {
        recordFixup(here(), here(), l, relocBType);
        emit32(uint32_t(rs2) << 20 | uint32_t(rs1) << 15 |
               uint32_t(funct3) << 12 | 0x63);
    }
};

} // namespace svb::riscv

#endif // SVB_ISA_RISCV_ASSEMBLER_HH
