#include "decoder.hh"

#include "isa/isa_info.hh"

namespace svb::riscv
{

namespace
{

int64_t
immI(uint32_t w)
{
    return int64_t(int32_t(w)) >> 20;
}

int64_t
immS(uint32_t w)
{
    return ((int64_t(int32_t(w)) >> 25) << 5) | int64_t((w >> 7) & 0x1f);
}

int64_t
immB(uint32_t w)
{
    int64_t imm = 0;
    imm |= int64_t((w >> 8) & 0xf) << 1;
    imm |= int64_t((w >> 25) & 0x3f) << 5;
    imm |= int64_t((w >> 7) & 0x1) << 11;
    imm |= (int64_t(int32_t(w)) >> 31) << 12;
    return imm;
}

int64_t
immU(uint32_t w)
{
    return int64_t(int32_t(w & 0xfffff000));
}

int64_t
immJ(uint32_t w)
{
    int64_t imm = 0;
    imm |= int64_t((w >> 21) & 0x3ff) << 1;
    imm |= int64_t((w >> 20) & 0x1) << 11;
    imm |= int64_t((w >> 12) & 0xff) << 12;
    imm |= (int64_t(int32_t(w)) >> 31) << 20;
    return imm;
}

/** Build a single-uop ALU instruction. */
StaticInst
aluInst(UopOp op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm,
        bool use_imm, OpClass cls, const char *mnem)
{
    StaticInst inst;
    inst.valid = true;
    inst.length = 4;
    inst.mnemonic = mnem;
    MicroOp uop;
    uop.op = op;
    uop.rd = (rd == 0) ? invalidReg : rd; // writes to x0 are discarded
    uop.rs1 = rs1;
    uop.rs2 = use_imm ? invalidReg : rs2;
    uop.imm = imm;
    uop.useImm = use_imm;
    uop.cls = cls;
    inst.addUop(uop);
    return inst;
}

} // namespace

StaticInst
decode(uint32_t w)
{
    const uint8_t opcode = w & 0x7f;
    const uint8_t rd = (w >> 7) & 0x1f;
    const uint8_t funct3 = (w >> 12) & 0x7;
    const uint8_t rs1 = (w >> 15) & 0x1f;
    const uint8_t rs2 = (w >> 20) & 0x1f;
    const uint8_t funct7 = (w >> 25) & 0x7f;

    StaticInst inst;

    switch (opcode) {
      case 0x37: // LUI
        return aluInst(UopOp::MovImm, rd, invalidReg, invalidReg, immU(w),
                       true, OpClass::IntAlu, "lui");
      case 0x17: // AUIPC
        return aluInst(UopOp::Auipc, rd, invalidReg, invalidReg, immU(w),
                       true, OpClass::IntAlu, "auipc");
      case 0x13: { // OP-IMM
        switch (funct3) {
          case 0:
            return aluInst(UopOp::Add, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "addi");
          case 1:
            return aluInst(UopOp::Sll, rd, rs1, 0, immI(w) & 63, true,
                           OpClass::IntAlu, "slli");
          case 2:
            return aluInst(UopOp::Slt, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "slti");
          case 3:
            return aluInst(UopOp::Sltu, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "sltiu");
          case 4:
            return aluInst(UopOp::Xor, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "xori");
          case 5:
            if ((immI(w) >> 10) & 1) {
                return aluInst(UopOp::Sra, rd, rs1, 0, immI(w) & 63, true,
                               OpClass::IntAlu, "srai");
            }
            return aluInst(UopOp::Srl, rd, rs1, 0, immI(w) & 63, true,
                           OpClass::IntAlu, "srli");
          case 6:
            return aluInst(UopOp::Or, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "ori");
          case 7:
            return aluInst(UopOp::And, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "andi");
        }
        break;
      }
      case 0x1b: { // OP-IMM-32
        switch (funct3) {
          case 0:
            return aluInst(UopOp::AddW, rd, rs1, 0, immI(w), true,
                           OpClass::IntAlu, "addiw");
          case 1:
            return aluInst(UopOp::SllW, rd, rs1, 0, immI(w) & 31, true,
                           OpClass::IntAlu, "slliw");
          case 5:
            if ((immI(w) >> 10) & 1) {
                return aluInst(UopOp::SraW, rd, rs1, 0, immI(w) & 31, true,
                               OpClass::IntAlu, "sraiw");
            }
            return aluInst(UopOp::SrlW, rd, rs1, 0, immI(w) & 31, true,
                           OpClass::IntAlu, "srliw");
        }
        break;
      }
      case 0x33: { // OP
        if (funct7 == 0x01) { // M extension
            static constexpr UopOp mulOps[8] = {
                UopOp::Mul, UopOp::Mulh, UopOp::Mulh, UopOp::Mulhu,
                UopOp::Div, UopOp::Divu, UopOp::Rem, UopOp::Remu};
            static constexpr const char *mulNames[8] = {
                "mul", "mulh", "mulhsu", "mulhu",
                "div", "divu", "rem", "remu"};
            OpClass cls = funct3 < 4 ? OpClass::IntMult : OpClass::IntDiv;
            return aluInst(mulOps[funct3], rd, rs1, rs2, 0, false, cls,
                           mulNames[funct3]);
        }
        const bool alt = funct7 == 0x20;
        switch (funct3) {
          case 0:
            return aluInst(alt ? UopOp::Sub : UopOp::Add, rd, rs1, rs2, 0,
                           false, OpClass::IntAlu, alt ? "sub" : "add");
          case 1:
            return aluInst(UopOp::Sll, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "sll");
          case 2:
            return aluInst(UopOp::Slt, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "slt");
          case 3:
            return aluInst(UopOp::Sltu, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "sltu");
          case 4:
            return aluInst(UopOp::Xor, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "xor");
          case 5:
            return aluInst(alt ? UopOp::Sra : UopOp::Srl, rd, rs1, rs2, 0,
                           false, OpClass::IntAlu, alt ? "sra" : "srl");
          case 6:
            return aluInst(UopOp::Or, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "or");
          case 7:
            return aluInst(UopOp::And, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "and");
        }
        break;
      }
      case 0x3b: { // OP-32
        if (funct7 == 0x01) {
            switch (funct3) {
              case 0:
                return aluInst(UopOp::MulW, rd, rs1, rs2, 0, false,
                               OpClass::IntMult, "mulw");
              case 4:
                return aluInst(UopOp::DivW, rd, rs1, rs2, 0, false,
                               OpClass::IntDiv, "divw");
              case 5:
                return aluInst(UopOp::DivuW, rd, rs1, rs2, 0, false,
                               OpClass::IntDiv, "divuw");
              case 6:
                return aluInst(UopOp::RemW, rd, rs1, rs2, 0, false,
                               OpClass::IntDiv, "remw");
              case 7:
                return aluInst(UopOp::RemuW, rd, rs1, rs2, 0, false,
                               OpClass::IntDiv, "remuw");
            }
            break;
        }
        const bool alt = funct7 == 0x20;
        switch (funct3) {
          case 0:
            return aluInst(alt ? UopOp::SubW : UopOp::AddW, rd, rs1, rs2, 0,
                           false, OpClass::IntAlu, alt ? "subw" : "addw");
          case 1:
            return aluInst(UopOp::SllW, rd, rs1, rs2, 0, false,
                           OpClass::IntAlu, "sllw");
          case 5:
            return aluInst(alt ? UopOp::SraW : UopOp::SrlW, rd, rs1, rs2, 0,
                           false, OpClass::IntAlu, alt ? "sraw" : "srlw");
        }
        break;
      }
      case 0x03: { // LOAD
        static constexpr uint8_t sizes[8] = {1, 2, 4, 8, 1, 2, 4, 0};
        static constexpr bool sgn[8] = {true, true, true, true,
                                        false, false, false, false};
        static constexpr const char *names[8] = {"lb", "lh", "lw", "ld",
                                                 "lbu", "lhu", "lwu", "?"};
        if (sizes[funct3] == 0)
            break;
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = names[funct3];
        MicroOp uop;
        uop.op = UopOp::Load;
        uop.rd = (rd == 0) ? invalidReg : rd;
        uop.rs1 = rs1;
        uop.imm = immI(w);
        uop.memSize = sizes[funct3];
        uop.memSigned = sgn[funct3];
        uop.cls = OpClass::MemRead;
        inst.addUop(uop);
        return inst;
      }
      case 0x23: { // STORE
        static constexpr uint8_t sizes[4] = {1, 2, 4, 8};
        static constexpr const char *names[4] = {"sb", "sh", "sw", "sd"};
        if (funct3 > 3)
            break;
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = names[funct3];
        MicroOp uop;
        uop.op = UopOp::Store;
        uop.rs1 = rs1;
        uop.rs2 = rs2;
        uop.imm = immS(w);
        uop.memSize = sizes[funct3];
        uop.cls = OpClass::MemWrite;
        inst.addUop(uop);
        return inst;
      }
      case 0x63: { // BRANCH
        static constexpr UopOp ops[8] = {
            UopOp::BranchEq, UopOp::BranchNe, UopOp::Nop, UopOp::Nop,
            UopOp::BranchLt, UopOp::BranchGe, UopOp::BranchLtu,
            UopOp::BranchGeu};
        static constexpr const char *names[8] = {
            "beq", "bne", "?", "?", "blt", "bge", "bltu", "bgeu"};
        if (funct3 == 2 || funct3 == 3)
            break;
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = names[funct3];
        inst.isControl = true;
        inst.isCondCtrl = true;
        inst.isDirectCtrl = true;
        inst.directOffset = immB(w);
        MicroOp uop;
        uop.op = ops[funct3];
        uop.rs1 = rs1;
        uop.rs2 = rs2;
        uop.imm = immB(w);
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case 0x6f: { // JAL
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = "jal";
        inst.isControl = true;
        inst.isDirectCtrl = true;
        inst.directOffset = immJ(w);
        inst.isCall = (rd == rv::ra);
        MicroOp uop;
        uop.op = UopOp::Jump;
        uop.rd = (rd == 0) ? invalidReg : rd;
        uop.imm = immJ(w);
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case 0x67: { // JALR
        if (funct3 != 0)
            break;
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = "jalr";
        inst.isControl = true;
        inst.isCall = (rd == rv::ra);
        inst.isReturn = (rd == 0 && rs1 == rv::ra);
        MicroOp uop;
        uop.op = UopOp::JumpReg;
        uop.rd = (rd == 0) ? invalidReg : rd;
        uop.rs1 = rs1;
        uop.imm = immI(w);
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case 0x73: { // SYSTEM
        if (w == 0x00000073) { // ECALL
            inst.valid = true;
            inst.length = 4;
            inst.mnemonic = "ecall";
            inst.isSyscall = true;
            MicroOp uop;
            uop.op = UopOp::Syscall;
            uop.cls = OpClass::No_OpClass;
            inst.addUop(uop);
            return inst;
        }
        if (w == 0x00100073) { // EBREAK (used as halt)
            inst.valid = true;
            inst.length = 4;
            inst.mnemonic = "ebreak";
            inst.isHalt = true;
            MicroOp uop;
            uop.op = UopOp::Halt;
            uop.cls = OpClass::No_OpClass;
            inst.addUop(uop);
            return inst;
        }
        break;
      }
      case 0x0f: { // FENCE -> nop
        inst.valid = true;
        inst.length = 4;
        inst.mnemonic = "fence";
        MicroOp uop;
        uop.op = UopOp::Nop;
        uop.cls = OpClass::No_OpClass;
        inst.addUop(uop);
        return inst;
      }
    }

    inst.valid = false;
    inst.length = 4;
    inst.mnemonic = "<invalid>";
    return inst;
}

} // namespace svb::riscv
