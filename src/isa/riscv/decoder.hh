/**
 * @file
 * RV64IM instruction decoder.
 */

#ifndef SVB_ISA_RISCV_DECODER_HH
#define SVB_ISA_RISCV_DECODER_HH

#include <cstdint>

#include "isa/static_inst.hh"

namespace svb::riscv
{

/**
 * Decode one 32-bit RV64IM instruction word.
 *
 * @param word the instruction encoding
 * @return the decoded macro instruction; inst.valid == false for
 *         undecodable encodings
 */
StaticInst decode(uint32_t word);

} // namespace svb::riscv

#endif // SVB_ISA_RISCV_DECODER_HH
