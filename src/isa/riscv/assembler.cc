#include "assembler.hh"

namespace svb::riscv
{

void
Assembler::li(Reg rd, int64_t value)
{
    // Fits a 12-bit signed immediate: single addi.
    if (value >= -2048 && value < 2048) {
        addi(rd, 0, int32_t(value));
        return;
    }
    // Fits 32 bits signed: lui + addiw.
    if (value >= INT32_MIN && value <= INT32_MAX) {
        int32_t v = int32_t(value);
        int32_t hi = (v + 0x800) >> 12;
        int32_t lo = v - (hi << 12);
        lui(rd, hi & 0xfffff);
        if (lo != 0 || hi == 0)
            addiw(rd, rd, lo);
        return;
    }
    // General 64-bit constant: materialise the upper part recursively,
    // then shift in 12-bit chunks (standard GNU-as expansion shape).
    int64_t lo12 = value << 52 >> 52;
    int64_t hi = (value - lo12) >> 12;
    li(rd, hi);
    slli(rd, rd, 12);
    if (lo12 != 0)
        addi(rd, rd, int32_t(lo12));
}

void
Assembler::applyFixup(size_t inst_offset, size_t patch_offset, int kind,
                      int64_t delta)
{
    if (kind == relocCallAuipc) {
        svb_assert(delta >= INT32_MIN && delta <= INT32_MAX,
                   "far call out of range");
        const int32_t d = int32_t(delta);
        const int32_t hi = (d + 0x800) >> 12;
        const int32_t lo = d - (hi << 12);
        uint32_t auipc_word = read32(patch_offset);
        auipc_word |= uint32_t(hi) << 12;
        patch32(patch_offset, auipc_word);
        uint32_t jalr_word = read32(patch_offset + 4);
        jalr_word |= uint32_t(lo & 0xfff) << 20;
        patch32(patch_offset + 4, jalr_word);
        return;
    }
    uint32_t word = read32(patch_offset);
    if (kind == relocBType) {
        svb_assert(delta >= -4096 && delta < 4096 && (delta & 1) == 0,
                   "B-type branch target out of range: ", delta,
                   " at offset ", inst_offset);
        uint32_t imm = uint32_t(delta) & 0x1fff;
        word |= ((imm >> 12) & 1) << 31;
        word |= ((imm >> 5) & 0x3f) << 25;
        word |= ((imm >> 1) & 0xf) << 8;
        word |= ((imm >> 11) & 1) << 7;
    } else {
        svb_assert(kind == relocJType, "bad riscv reloc kind");
        svb_assert(delta >= -(1 << 20) && delta < (1 << 20) &&
                   (delta & 1) == 0,
                   "J-type jump target out of range: ", delta);
        uint32_t imm = uint32_t(delta) & 0x1fffff;
        word |= ((imm >> 20) & 1) << 31;
        word |= ((imm >> 1) & 0x3ff) << 21;
        word |= ((imm >> 11) & 1) << 20;
        word |= ((imm >> 12) & 0xff) << 12;
    }
    patch32(patch_offset, word);
}

} // namespace svb::riscv
