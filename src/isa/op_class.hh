/**
 * @file
 * Functional-unit operation classes.
 *
 * Each micro-op carries an OpClass; the O3 CPU's functional-unit pool
 * maps op classes to issue latencies and unit counts.
 */

#ifndef SVB_ISA_OP_CLASS_HH
#define SVB_ISA_OP_CLASS_HH

#include <cstdint>

namespace svb
{

/** Coarse classification of micro-ops for FU scheduling. */
enum class OpClass : uint8_t
{
    IntAlu,    ///< single-cycle integer ALU op
    IntMult,   ///< integer multiply
    IntDiv,    ///< integer divide / remainder
    MemRead,   ///< load
    MemWrite,  ///< store
    Branch,    ///< control transfer
    No_OpClass ///< nop / internal
};

/** @return a short printable name for @p cls. */
const char *opClassName(OpClass cls);

} // namespace svb

#endif // SVB_ISA_OP_CLASS_HH
