#include "disasm.hh"

#include <sstream>

#include "cx86/decoder.hh"
#include "riscv/decoder.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

const char *riscvRegNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3",
    "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6"};

const char *cx86RegNames[cx::numRegs] = {
    "r0", "r1", "r2", "r3", "rsp", "rbp", "r6", "r7", "r8", "r9",
    "r10", "r11", "r12", "r13", "r14", "r15", "rflags", "ut0", "ut1"};

std::string
regName(uint8_t reg, IsaId isa)
{
    if (reg == invalidReg)
        return "-";
    if (isa == IsaId::Riscv)
        return reg < 32 ? riscvRegNames[reg] : "?";
    return reg < cx::numRegs ? cx86RegNames[reg] : "?";
}

const char *
condName(FlagCond cond)
{
    switch (cond) {
      case FlagCond::Eq: return "e";
      case FlagCond::Ne: return "ne";
      case FlagCond::Lt: return "l";
      case FlagCond::Ge: return "ge";
      case FlagCond::Le: return "le";
      case FlagCond::Gt: return "g";
      case FlagCond::Ltu: return "b";
      case FlagCond::Geu: return "ae";
      case FlagCond::Leu: return "be";
      case FlagCond::Gtu: return "a";
    }
    return "?";
}

/** Render one micro-op (used for multi-uop CX86 instructions). */
std::string
renderUop(const MicroOp &u, IsaId isa, Addr pc)
{
    std::ostringstream os;
    if (u.isLoad()) {
        os << "ld" << int(u.memSize) * 8 << (u.memSigned ? "s " : " ")
           << regName(u.rd, isa) << ", [" << regName(u.rs1, isa);
        if (u.imm != 0)
            os << (u.imm > 0 ? "+" : "") << u.imm;
        os << "]";
    } else if (u.isStore()) {
        os << "st" << int(u.memSize) * 8 << " [" << regName(u.rs1, isa);
        if (u.imm != 0)
            os << (u.imm > 0 ? "+" : "") << u.imm;
        os << "], " << regName(u.rs2, isa);
    } else if (u.op == UopOp::BranchFlags) {
        os << "j" << condName(u.cond) << " 0x" << std::hex
           << pc + uint64_t(u.imm);
    } else if (u.isCondCtrl()) {
        os << "b? " << regName(u.rs1, isa) << ", " << regName(u.rs2, isa)
           << ", 0x" << std::hex << pc + uint64_t(u.imm);
    } else if (u.op == UopOp::Jump) {
        os << "jmp 0x" << std::hex << pc + uint64_t(u.imm);
    } else if (u.op == UopOp::JumpReg) {
        os << "jmpr " << regName(u.rs1, isa);
    } else if (u.op == UopOp::MovImm) {
        os << "mov " << regName(u.rd, isa) << ", " << u.imm;
    } else if (u.op == UopOp::Syscall) {
        os << "syscall";
    } else if (u.op == UopOp::Halt) {
        os << "halt";
    } else if (u.op == UopOp::Nop) {
        os << "nop";
    } else {
        os << "op" << int(u.op) << " " << regName(u.rd, isa) << ", "
           << regName(u.rs1, isa) << ", ";
        if (u.useImm)
            os << u.imm;
        else
            os << regName(u.rs2, isa);
    }
    return os.str();
}

} // namespace

std::string
disassemble(const StaticInst &inst, IsaId isa, Addr pc)
{
    if (!inst.valid)
        return "<invalid>";

    std::ostringstream os;
    os << inst.mnemonic;

    if (inst.numUops == 1) {
        const MicroOp &u = inst.uops[0];
        if (inst.isControl && inst.isDirectCtrl) {
            os << " ";
            if (u.rs1 != invalidReg) {
                os << regName(u.rs1, isa) << ", ";
                if (u.rs2 != invalidReg)
                    os << regName(u.rs2, isa) << ", ";
            }
            os << "0x" << std::hex << inst.directTarget(pc);
        } else if (u.isMem() || u.isControl()) {
            os << " " << renderUop(u, isa, pc).substr(
                             renderUop(u, isa, pc).find(' ') + 1);
        } else if (u.rd != invalidReg || u.rs1 != invalidReg) {
            if (u.rd != invalidReg)
                os << " " << regName(u.rd, isa);
            if (u.rs1 != invalidReg)
                os << ", " << regName(u.rs1, isa);
            if (u.useImm)
                os << ", " << u.imm;
            else if (u.rs2 != invalidReg)
                os << ", " << regName(u.rs2, isa);
        }
        return os.str();
    }

    // Multi-uop (CX86 cracked): show the expansion.
    os << "  {";
    for (unsigned i = 0; i < inst.numUops; ++i) {
        if (i > 0)
            os << "; ";
        os << renderUop(inst.uops[i], isa, pc);
    }
    os << "}";
    return os.str();
}

std::vector<DisasmLine>
disassembleBuffer(const std::vector<uint8_t> &code, IsaId isa,
                  const std::vector<std::pair<std::string, Addr>> &symbols,
                  Addr base)
{
    std::vector<DisasmLine> lines;
    size_t sym_idx = 0;
    Addr off = 0;
    while (off < code.size()) {
        DisasmLine line;
        line.offset = off;
        while (sym_idx < symbols.size() && symbols[sym_idx].second <= off) {
            line.symbol = symbols[sym_idx].first;
            ++sym_idx;
        }

        StaticInst inst;
        if (isa == IsaId::Riscv) {
            if (off + 4 > code.size())
                break;
            uint32_t w = 0;
            for (int i = 0; i < 4; ++i)
                w |= uint32_t(code[off + Addr(i)]) << (8 * i);
            inst = riscv::decode(w);
        } else {
            inst = cx86::decode(code.data() + off, code.size() - off);
        }
        line.length = inst.valid ? inst.length : 1;
        line.text = disassemble(inst, isa, base + off);
        lines.push_back(std::move(line));
        off += lines.back().length;
    }
    return lines;
}

} // namespace svb
