/**
 * @file
 * CX86 variable-length decoder with micro-op cracking.
 */

#ifndef SVB_ISA_CX86_DECODER_HH
#define SVB_ISA_CX86_DECODER_HH

#include <cstddef>
#include <cstdint>

#include "isa/static_inst.hh"

namespace svb::cx86
{

/**
 * Decode one CX86 instruction from a byte window.
 *
 * @param bytes pointer to the first instruction byte
 * @param avail number of valid bytes at @p bytes (>= 1)
 * @return the decoded macro instruction; valid == false when the
 *         opcode is unknown or the window is too short
 */
StaticInst decode(const uint8_t *bytes, size_t avail);

} // namespace svb::cx86

#endif // SVB_ISA_CX86_DECODER_HH
