#include "decoder.hh"

#include "encoding.hh"
#include "isa/isa_info.hh"

namespace svb::cx86
{

namespace
{

int32_t
readI32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(p[i]) << (8 * i);
    return int32_t(v);
}

int64_t
readI64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return int64_t(v);
}

MicroOp
aluUop(UopOp op, uint8_t rd, uint8_t rs1, uint8_t rs2, OpClass cls)
{
    MicroOp uop;
    uop.op = op;
    uop.rd = rd;
    uop.rs1 = rs1;
    uop.rs2 = rs2;
    uop.cls = cls;
    return uop;
}

MicroOp
aluImmUop(UopOp op, uint8_t rd, uint8_t rs1, int64_t imm, OpClass cls)
{
    MicroOp uop;
    uop.op = op;
    uop.rd = rd;
    uop.rs1 = rs1;
    uop.imm = imm;
    uop.useImm = true;
    uop.cls = cls;
    return uop;
}

MicroOp
loadUop(uint8_t rd, uint8_t base, int64_t disp, uint8_t size, bool sgn)
{
    MicroOp uop;
    uop.op = UopOp::Load;
    uop.rd = rd;
    uop.rs1 = base;
    uop.imm = disp;
    uop.memSize = size;
    uop.memSigned = sgn;
    uop.cls = OpClass::MemRead;
    return uop;
}

MicroOp
storeUop(uint8_t src, uint8_t base, int64_t disp, uint8_t size)
{
    MicroOp uop;
    uop.op = UopOp::Store;
    uop.rs1 = base;
    uop.rs2 = src;
    uop.imm = disp;
    uop.memSize = size;
    uop.cls = OpClass::MemWrite;
    return uop;
}

/** Append the push-link micro-ops of a call (link = pc + inst length). */
void
addCallLinkUops(StaticInst &inst, uint8_t length)
{
    MicroOp link;
    link.op = UopOp::Auipc;
    link.rd = cx::ut0;
    link.imm = length;
    link.useImm = true;
    link.cls = OpClass::IntAlu;
    inst.addUop(link);
    inst.addUop(aluImmUop(UopOp::Sub, cx::rsp, cx::rsp, 8,
                          OpClass::IntAlu));
    inst.addUop(storeUop(cx::ut0, cx::rsp, 0, 8));
}

} // namespace

StaticInst
decode(const uint8_t *bytes, size_t avail)
{
    StaticInst inst;
    inst.valid = false;
    inst.length = 1;
    if (avail == 0)
        return inst;

    const uint8_t op = bytes[0];

    auto need = [&](size_t n) { return avail >= n; };
    auto modrmHi = [&]() { return uint8_t(bytes[1] >> 4); };
    auto modrmLo = [&]() { return uint8_t(bytes[1] & 0xf); };

    // --- Jcc family (0x80 .. 0x89) --------------------------------------
    if (op >= opJcc && op < opJcc + 10) {
        if (!need(5))
            return inst;
        inst.valid = true;
        inst.length = 5;
        inst.mnemonic = "jcc";
        inst.isControl = true;
        inst.isCondCtrl = true;
        inst.isDirectCtrl = true;
        inst.directOffset = readI32(bytes + 1);
        MicroOp uop;
        uop.op = UopOp::BranchFlags;
        uop.rs1 = cx::rflags;
        uop.cond = FlagCond(op - opJcc);
        uop.imm = inst.directOffset;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
    }

    // --- Memory short forms (disp8) --------------------------------------
    if (op >= opLd8d8 && op <= opSt64d8 && op != 0xc7) {
        if (!need(3))
            return inst;
        const int64_t disp = int64_t(int8_t(bytes[2]));
        inst.valid = true;
        inst.length = 3;
        if (op <= opLd32sd8) {
            static constexpr uint8_t sizes[7] = {1, 2, 4, 8, 1, 2, 4};
            const unsigned idx = op - opLd8d8;
            inst.mnemonic = "ld.d8";
            inst.addUop(loadUop(modrmHi(), modrmLo(), disp, sizes[idx],
                                idx >= 4));
        } else {
            static constexpr uint8_t sizes[4] = {1, 2, 4, 8};
            inst.mnemonic = "st.d8";
            inst.addUop(storeUop(modrmLo(), modrmHi(), disp,
                                 sizes[op - opSt8d8]));
        }
        return inst;
    }

    switch (op) {
      case opNop:
        inst.valid = true;
        inst.length = 1;
        inst.mnemonic = "nop";
        inst.addUop(aluUop(UopOp::Nop, invalidReg, invalidReg, invalidReg,
                           OpClass::No_OpClass));
        return inst;
      case opHlt:
        inst.valid = true;
        inst.length = 1;
        inst.mnemonic = "hlt";
        inst.isHalt = true;
        {
            MicroOp uop;
            uop.op = UopOp::Halt;
            uop.cls = OpClass::No_OpClass;
            inst.addUop(uop);
        }
        return inst;
      case opSyscall:
        inst.valid = true;
        inst.length = 1;
        inst.mnemonic = "syscall";
        inst.isSyscall = true;
        {
            MicroOp uop;
            uop.op = UopOp::Syscall;
            uop.cls = OpClass::No_OpClass;
            inst.addUop(uop);
        }
        return inst;
      case opRet: {
        inst.valid = true;
        inst.length = 1;
        inst.mnemonic = "ret";
        inst.isControl = true;
        inst.isReturn = true;
        inst.addUop(loadUop(cx::ut0, cx::rsp, 0, 8, false));
        inst.addUop(aluImmUop(UopOp::Add, cx::rsp, cx::rsp, 8,
                              OpClass::IntAlu));
        MicroOp uop;
        uop.op = UopOp::JumpReg;
        uop.rs1 = cx::ut0;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case opMovRR:
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "mov";
        inst.addUop(aluImmUop(UopOp::Add, modrmHi(), modrmLo(), 0,
                              OpClass::IntAlu));
        return inst;
      case opMovRI32:
        if (!need(6))
            return inst;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "movi";
        inst.addUop(aluImmUop(UopOp::MovImm, bytes[1] & 0xf, invalidReg,
                              readI32(bytes + 2), OpClass::IntAlu));
        return inst;
      case opMovRI64:
        if (!need(10))
            return inst;
        inst.valid = true;
        inst.length = 10;
        inst.mnemonic = "movabs";
        inst.addUop(aluImmUop(UopOp::MovImm, bytes[1] & 0xf, invalidReg,
                              readI64(bytes + 2), OpClass::IntAlu));
        return inst;
      case opLea:
        if (!need(6))
            return inst;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "lea";
        inst.addUop(aluImmUop(UopOp::Add, modrmHi(), modrmLo(),
                              readI32(bytes + 2), OpClass::IntAlu));
        return inst;
      case opAddRR: case opSubRR: case opAndRR: case opOrRR:
      case opXorRR: case opImulRR: case opIdivRR: case opIremRR:
      case opDivuRR: case opRemuRR: {
        if (!need(2))
            return inst;
        static constexpr UopOp ops[] = {
            UopOp::Add, UopOp::Sub, UopOp::And, UopOp::Or, UopOp::Xor,
            UopOp::Nop /*cmp handled below*/, UopOp::Nop /*test*/,
            UopOp::Mul, UopOp::Div, UopOp::Rem, UopOp::Divu, UopOp::Remu};
        const UopOp uopOp = ops[op - opAddRR];
        OpClass cls = OpClass::IntAlu;
        if (uopOp == UopOp::Mul)
            cls = OpClass::IntMult;
        else if (uopOp == UopOp::Div || uopOp == UopOp::Rem ||
                 uopOp == UopOp::Divu || uopOp == UopOp::Remu)
            cls = OpClass::IntDiv;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "alu.rr";
        inst.addUop(aluUop(uopOp, modrmHi(), modrmHi(), modrmLo(), cls));
        return inst;
      }
      case opCmpRR:
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "cmp";
        inst.addUop(aluUop(UopOp::CmpFlags, cx::rflags, modrmHi(),
                           modrmLo(), OpClass::IntAlu));
        return inst;
      case opTestRR:
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "test";
        inst.addUop(aluUop(UopOp::TestFlags, cx::rflags, modrmHi(),
                           modrmLo(), OpClass::IntAlu));
        return inst;
      case opAddRI: case opSubRI: case opAndRI: case opOrRI:
      case opXorRI: case opImulRI: {
        if (!need(6))
            return inst;
        static constexpr UopOp ops[] = {UopOp::Add, UopOp::Sub, UopOp::And,
                                        UopOp::Or, UopOp::Xor, UopOp::Nop,
                                        UopOp::Mul};
        const UopOp uopOp = ops[op - opAddRI];
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "alu.ri";
        inst.addUop(aluImmUop(uopOp, bytes[1] & 0xf, bytes[1] & 0xf,
                              readI32(bytes + 2),
                              uopOp == UopOp::Mul ? OpClass::IntMult
                                                  : OpClass::IntAlu));
        return inst;
      }
      case opCmpRI:
        if (!need(6))
            return inst;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "cmpi";
        inst.addUop(aluImmUop(UopOp::CmpFlags, cx::rflags, bytes[1] & 0xf,
                              readI32(bytes + 2), OpClass::IntAlu));
        return inst;
      case opShlRI: case opShrRI: case opSarRI: {
        if (!need(3))
            return inst;
        static constexpr UopOp ops[] = {UopOp::Sll, UopOp::Srl, UopOp::Sra};
        inst.valid = true;
        inst.length = 3;
        inst.mnemonic = "shift.ri";
        inst.addUop(aluImmUop(ops[op - opShlRI], bytes[1] & 0xf,
                              bytes[1] & 0xf, bytes[2] & 63,
                              OpClass::IntAlu));
        return inst;
      }
      case opShlRR: case opShrRR: case opSarRR: {
        if (!need(2))
            return inst;
        static constexpr UopOp ops[] = {UopOp::Sll, UopOp::Srl, UopOp::Sra};
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "shift.rr";
        inst.addUop(aluUop(ops[op - opShlRR], modrmHi(), modrmHi(),
                           modrmLo(), OpClass::IntAlu));
        return inst;
      }
      case opLd8: case opLd16: case opLd32: case opLd64:
      case opLd8s: case opLd16s: case opLd32s: {
        if (!need(6))
            return inst;
        static constexpr uint8_t sizes[7] = {1, 2, 4, 8, 1, 2, 4};
        const unsigned idx = op - opLd8;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "ld";
        inst.addUop(loadUop(modrmHi(), modrmLo(), readI32(bytes + 2),
                            sizes[idx], idx >= 4));
        return inst;
      }
      case opSt8: case opSt16: case opSt32: case opSt64: {
        if (!need(6))
            return inst;
        static constexpr uint8_t sizes[4] = {1, 2, 4, 8};
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "st";
        inst.addUop(storeUop(modrmLo(), modrmHi(), readI32(bytes + 2),
                             sizes[op - opSt8]));
        return inst;
      }
      case opAddM:
        if (!need(6))
            return inst;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "add.m";
        inst.addUop(loadUop(cx::ut0, modrmLo(), readI32(bytes + 2), 8,
                            false));
        inst.addUop(aluUop(UopOp::Add, modrmHi(), modrmHi(), cx::ut0,
                           OpClass::IntAlu));
        return inst;
      case opCmpM:
        if (!need(6))
            return inst;
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "cmp.m";
        inst.addUop(loadUop(cx::ut0, modrmLo(), readI32(bytes + 2), 8,
                            false));
        inst.addUop(aluUop(UopOp::CmpFlags, cx::rflags, modrmHi(), cx::ut0,
                           OpClass::IntAlu));
        return inst;
      case opAddS: {
        if (!need(6))
            return inst;
        const int32_t disp = readI32(bytes + 2);
        inst.valid = true;
        inst.length = 6;
        inst.mnemonic = "add.s";
        inst.addUop(loadUop(cx::ut0, modrmHi(), disp, 8, false));
        inst.addUop(aluUop(UopOp::Add, cx::ut0, cx::ut0, modrmLo(),
                           OpClass::IntAlu));
        inst.addUop(storeUop(cx::ut0, modrmHi(), disp, 8));
        return inst;
      }
      case opPush:
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "push";
        inst.addUop(aluImmUop(UopOp::Sub, cx::rsp, cx::rsp, 8,
                              OpClass::IntAlu));
        inst.addUop(storeUop(bytes[1] & 0xf, cx::rsp, 0, 8));
        return inst;
      case opPop:
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "pop";
        inst.addUop(loadUop(bytes[1] & 0xf, cx::rsp, 0, 8, false));
        inst.addUop(aluImmUop(UopOp::Add, cx::rsp, cx::rsp, 8,
                              OpClass::IntAlu));
        return inst;
      case opJmp: {
        if (!need(5))
            return inst;
        inst.valid = true;
        inst.length = 5;
        inst.mnemonic = "jmp";
        inst.isControl = true;
        inst.isDirectCtrl = true;
        inst.directOffset = readI32(bytes + 1);
        MicroOp uop;
        uop.op = UopOp::Jump;
        uop.imm = inst.directOffset;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case opCall: {
        if (!need(5))
            return inst;
        inst.valid = true;
        inst.length = 5;
        inst.mnemonic = "call";
        inst.isControl = true;
        inst.isCall = true;
        inst.isDirectCtrl = true;
        inst.directOffset = readI32(bytes + 1);
        addCallLinkUops(inst, 5);
        MicroOp uop;
        uop.op = UopOp::Jump;
        uop.imm = inst.directOffset;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case opJmpR: {
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "jmpr";
        inst.isControl = true;
        MicroOp uop;
        uop.op = UopOp::JumpReg;
        uop.rs1 = bytes[1] & 0xf;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      case opCallR: {
        if (!need(2))
            return inst;
        inst.valid = true;
        inst.length = 2;
        inst.mnemonic = "callr";
        inst.isControl = true;
        inst.isCall = true;
        addCallLinkUops(inst, 2);
        MicroOp uop;
        uop.op = UopOp::JumpReg;
        uop.rs1 = bytes[1] & 0xf;
        uop.cls = OpClass::Branch;
        inst.addUop(uop);
        return inst;
      }
      default:
        break;
    }

    inst.mnemonic = "<invalid>";
    return inst;
}

} // namespace svb::cx86
