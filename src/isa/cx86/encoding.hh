/**
 * @file
 * CX86 instruction encoding definition.
 *
 * CX86 is the synthetic variable-length CISC ISA that stands in for
 * x86-64 (see DESIGN.md). Encodings:
 *
 *   [opcode:1]                          bare ops (NOP/HLT/SYSCALL/RET)
 *   [opcode:1][modrm:1]                 reg-reg ops; modrm = dst<<4|src
 *   [opcode:1][reg:1][imm32]            reg-imm ALU / MOV
 *   [opcode:1][reg:1][imm64]            MOVABS
 *   [opcode:1][reg:1][imm8]             shifts
 *   [opcode:1][modrm:1][disp32|disp8]   memory forms (load/store/load-op)
 *   [opcode:1][rel32]                   JMP/CALL/Jcc
 *
 * Memory-operand instructions crack into multiple micro-ops using the
 * hidden temporaries cx::ut0/ut1, like real x86 decoders do.
 */

#ifndef SVB_ISA_CX86_ENCODING_HH
#define SVB_ISA_CX86_ENCODING_HH

#include <cstdint>

namespace svb::cx86
{

enum Op : uint8_t
{
    opNop = 0x00,
    opHlt = 0x01,
    opSyscall = 0x02,
    opRet = 0x03,

    opMovRR = 0x10,
    opMovRI32 = 0x11,  ///< sign-extended imm32
    opMovRI64 = 0x12,
    opLea = 0x13,      ///< rd = rs + disp32

    opAddRR = 0x20,
    opSubRR = 0x21,
    opAndRR = 0x22,
    opOrRR = 0x23,
    opXorRR = 0x24,
    opCmpRR = 0x25,    ///< sets FLAGS
    opTestRR = 0x26,   ///< sets FLAGS
    opImulRR = 0x27,
    opIdivRR = 0x28,
    opIremRR = 0x29,
    opDivuRR = 0x2a,
    opRemuRR = 0x2b,

    opAddRI = 0x30,
    opSubRI = 0x31,
    opAndRI = 0x32,
    opOrRI = 0x33,
    opXorRI = 0x34,
    opCmpRI = 0x35,    ///< sets FLAGS
    opImulRI = 0x36,

    opShlRI = 0x38,
    opShrRI = 0x39,
    opSarRI = 0x3a,
    opShlRR = 0x3b,
    opShrRR = 0x3c,
    opSarRR = 0x3d,

    // Loads, disp32 forms. Unsigned then signed.
    opLd8 = 0x40, opLd16 = 0x41, opLd32 = 0x42, opLd64 = 0x43,
    opLd8s = 0x44, opLd16s = 0x45, opLd32s = 0x46,
    // Stores, disp32 forms.
    opSt8 = 0x48, opSt16 = 0x49, opSt32 = 0x4a, opSt64 = 0x4b,

    // Read-modify forms (the CISC-y ones).
    opAddM = 0x50,     ///< rd += mem64[base+disp32]      (2 uops)
    opCmpM = 0x51,     ///< FLAGS = cmp(rd, mem64[...])   (2 uops)
    opAddS = 0x58,     ///< mem64[base+disp32] += src     (3 uops)

    opPush = 0x60,     ///< (2 uops)
    opPop = 0x61,      ///< (2 uops)

    opJmp = 0x70,
    opCall = 0x71,     ///< (4 uops)
    opJmpR = 0x72,
    opCallR = 0x73,

    opJcc = 0x80,      ///< opJcc + FlagCond (10 variants, 0x80..0x89)

    // Short-displacement (disp8) memory forms.
    opLd8d8 = 0xc0, opLd16d8 = 0xc1, opLd32d8 = 0xc2, opLd64d8 = 0xc3,
    opLd8sd8 = 0xc4, opLd16sd8 = 0xc5, opLd32sd8 = 0xc6,
    opSt8d8 = 0xc8, opSt16d8 = 0xc9, opSt32d8 = 0xca, opSt64d8 = 0xcb,
};

} // namespace svb::cx86

#endif // SVB_ISA_CX86_ENCODING_HH
