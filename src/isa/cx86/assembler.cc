#include "assembler.hh"

namespace svb::cx86
{

void
Assembler::movImm(Reg rd, int64_t imm)
{
    if (imm >= INT32_MIN && imm <= INT32_MAX) {
        ri32(opMovRI32, rd, int32_t(imm));
    } else {
        emit8(opMovRI64);
        emit8(rd);
        emit64(uint64_t(imm));
    }
}

void
Assembler::load(Reg rd, Reg base, int32_t disp, unsigned size, bool sgn)
{
    static constexpr uint8_t unsOps[9] = {0, opLd8, opLd16, 0, opLd32,
                                          0, 0, 0, opLd64};
    static constexpr uint8_t sgnOps[9] = {0, opLd8s, opLd16s, 0, opLd32s,
                                          0, 0, 0, opLd64};
    uint8_t op = sgn ? sgnOps[size] : unsOps[size];
    svb_assert(op != 0, "bad load size ", size);
    if (disp >= -128 && disp < 128) {
        memD8(uint8_t(op + 0x80), rd, base, int8_t(disp));
    } else {
        mem(op, rd, base, disp);
    }
}

void
Assembler::store(Reg src, Reg base, int32_t disp, unsigned size)
{
    static constexpr uint8_t ops[9] = {0, opSt8, opSt16, 0, opSt32,
                                       0, 0, 0, opSt64};
    uint8_t op = ops[size];
    svb_assert(op != 0, "bad store size ", size);
    // Store modrm: base in the high nibble, data source in the low.
    if (disp >= -128 && disp < 128) {
        memD8(uint8_t(op + 0x80), base, src, int8_t(disp));
    } else {
        mem(op, base, src, disp);
    }
}

void
Assembler::applyFixup(size_t inst_offset, size_t patch_offset, int kind,
                      int64_t delta)
{
    svb_assert(kind == relocRel32, "bad cx86 reloc kind");
    svb_assert(delta >= INT32_MIN && delta <= INT32_MAX,
               "rel32 out of range at ", inst_offset);
    patch32(patch_offset, uint32_t(int32_t(delta)));
}

} // namespace svb::cx86
