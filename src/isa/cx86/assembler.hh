/**
 * @file
 * Programmatic CX86 assembler.
 */

#ifndef SVB_ISA_CX86_ASSEMBLER_HH
#define SVB_ISA_CX86_ASSEMBLER_HH

#include "encoding.hh"
#include "isa/assembler.hh"
#include "isa/isa_info.hh"
#include "isa/microop.hh"

namespace svb::cx86
{

/** Relocation kind: rel32 displacement measured from instruction start. */
enum RelocKind { relocRel32 };

/**
 * CX86 assembler.
 */
class Assembler : public AssemblerBase
{
  public:
    using Reg = uint8_t;

    // --- Moves ----------------------------------------------------------
    void mov(Reg rd, Reg rs) { rr(opMovRR, rd, rs); }
    void movImm(Reg rd, int64_t imm);
    void lea(Reg rd, Reg base, int32_t disp) { mem(opLea, rd, base, disp); }

    // --- ALU ------------------------------------------------------------
    void add(Reg rd, Reg rs) { rr(opAddRR, rd, rs); }
    void sub(Reg rd, Reg rs) { rr(opSubRR, rd, rs); }
    void and_(Reg rd, Reg rs) { rr(opAndRR, rd, rs); }
    void or_(Reg rd, Reg rs) { rr(opOrRR, rd, rs); }
    void xor_(Reg rd, Reg rs) { rr(opXorRR, rd, rs); }
    void cmp(Reg ra, Reg rb) { rr(opCmpRR, ra, rb); }
    void test(Reg ra, Reg rb) { rr(opTestRR, ra, rb); }
    void imul(Reg rd, Reg rs) { rr(opImulRR, rd, rs); }
    void idiv(Reg rd, Reg rs) { rr(opIdivRR, rd, rs); }
    void irem(Reg rd, Reg rs) { rr(opIremRR, rd, rs); }
    void divu(Reg rd, Reg rs) { rr(opDivuRR, rd, rs); }
    void remu(Reg rd, Reg rs) { rr(opRemuRR, rd, rs); }

    void addImm(Reg rd, int32_t imm) { ri32(opAddRI, rd, imm); }
    void subImm(Reg rd, int32_t imm) { ri32(opSubRI, rd, imm); }
    void andImm(Reg rd, int32_t imm) { ri32(opAndRI, rd, imm); }
    void orImm(Reg rd, int32_t imm) { ri32(opOrRI, rd, imm); }
    void xorImm(Reg rd, int32_t imm) { ri32(opXorRI, rd, imm); }
    void cmpImm(Reg rd, int32_t imm) { ri32(opCmpRI, rd, imm); }
    void imulImm(Reg rd, int32_t imm) { ri32(opImulRI, rd, imm); }

    void shl(Reg rd, uint8_t sh) { ri8(opShlRI, rd, sh); }
    void shr(Reg rd, uint8_t sh) { ri8(opShrRI, rd, sh); }
    void sar(Reg rd, uint8_t sh) { ri8(opSarRI, rd, sh); }
    void shlr(Reg rd, Reg rs) { rr(opShlRR, rd, rs); }
    void shrr(Reg rd, Reg rs) { rr(opShrRR, rd, rs); }
    void sarr(Reg rd, Reg rs) { rr(opSarRR, rd, rs); }

    // --- Memory -----------------------------------------------------------
    /** Load with size/sign selection; uses the disp8 form when possible. */
    void load(Reg rd, Reg base, int32_t disp, unsigned size, bool sgn);
    /** Store with size selection; uses the disp8 form when possible. */
    void store(Reg src, Reg base, int32_t disp, unsigned size);
    void addMem(Reg rd, Reg base, int32_t disp) { mem(opAddM, rd, base, disp); }
    void cmpMem(Reg rd, Reg base, int32_t disp) { mem(opCmpM, rd, base, disp); }
    void addStore(Reg src, Reg base, int32_t disp)
    {
        mem(opAddS, base, src, disp);
    }
    void push(Reg r) { emit8(opPush); emit8(r); }
    void pop(Reg r) { emit8(opPop); emit8(r); }

    // --- Control ----------------------------------------------------------
    void jmp(AsmLabel l) { rel(opJmp, l); }
    void call(AsmLabel l) { rel(opCall, l); }
    void jmpReg(Reg r) { emit8(opJmpR); emit8(r); }
    void callReg(Reg r) { emit8(opCallR); emit8(r); }
    void ret() { emit8(opRet); }

    void
    jcc(FlagCond cond, AsmLabel l)
    {
        rel(uint8_t(opJcc + uint8_t(cond)), l);
    }

    // --- System -----------------------------------------------------------
    void syscall() { emit8(opSyscall); }
    void hlt() { emit8(opHlt); }
    void nop() { emit8(opNop); }

  protected:
    void applyFixup(size_t inst_offset, size_t patch_offset, int kind,
                    int64_t delta) override;

  private:
    void
    rr(uint8_t op, Reg rd, Reg rs)
    {
        svb_assert(rd < cx::numGprs && rs < cx::numGprs, "bad cx86 reg");
        emit8(op);
        emit8(uint8_t(rd << 4 | rs));
    }

    void
    ri32(uint8_t op, Reg rd, int32_t imm)
    {
        emit8(op);
        emit8(rd);
        emit32(uint32_t(imm));
    }

    void
    ri8(uint8_t op, Reg rd, uint8_t imm)
    {
        emit8(op);
        emit8(rd);
        emit8(imm);
    }

    void
    mem(uint8_t op, Reg a, Reg b, int32_t disp)
    {
        emit8(op);
        emit8(uint8_t(a << 4 | b));
        emit32(uint32_t(disp));
    }

    void
    memD8(uint8_t op, Reg a, Reg b, int8_t disp)
    {
        emit8(op);
        emit8(uint8_t(a << 4 | b));
        emit8(uint8_t(disp));
    }

    void
    rel(uint8_t op, AsmLabel l)
    {
        size_t inst = here();
        emit8(op);
        recordFixup(inst, here(), l, relocRel32);
        emit32(0);
    }
};

} // namespace svb::cx86

#endif // SVB_ISA_CX86_ASSEMBLER_HH
