/**
 * @file
 * Per-ISA descriptors.
 */

#ifndef SVB_ISA_ISA_INFO_HH
#define SVB_ISA_ISA_INFO_HH

#include <cstdint>

namespace svb
{

/** The two guest instruction sets supported by the simulator. */
enum class IsaId : uint8_t
{
    Riscv, ///< RV64IM, real RISC-V encodings
    Cx86,  ///< synthetic variable-length CISC (the x86 stand-in)
};

/**
 * Static properties of a guest ISA that the machine-independent CPU
 * models need to know.
 */
struct IsaInfo
{
    IsaId id;
    const char *name;
    /** Number of renameable integer architectural registers. */
    unsigned numIntRegs;
    /** Index of the hardwired zero register, or -1 if none. */
    int zeroReg;
    /** Index of the condition-flag register, or -1 if none. */
    int flagReg;
    /** Smallest encoded instruction length in bytes. */
    unsigned minInstLength;
    /** Largest encoded instruction length in bytes. */
    unsigned maxInstLength;
};

/** @return the descriptor for @p id. */
const IsaInfo &isaInfo(IsaId id);

/** @return the printable name of @p id. */
inline const char *isaName(IsaId id) { return isaInfo(id).name; }

namespace rv
{
/** RISC-V ABI register aliases (x-register indices). */
constexpr uint8_t zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
constexpr uint8_t t0 = 5, t1 = 6, t2 = 7;
constexpr uint8_t s0 = 8, s1 = 9;
constexpr uint8_t a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                  a6 = 16, a7 = 17;
constexpr uint8_t s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                  s8 = 24, s9 = 25, s10 = 26, s11 = 27;
constexpr uint8_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;
} // namespace rv

namespace cx
{
/**
 * CX86 register file: 16 GPRs, a FLAGS register, and two hidden
 * micro-op temporaries used by the decoder's uop cracking.
 */
constexpr uint8_t r0 = 0;   ///< return value / first argument ("rax")
constexpr uint8_t r1 = 1, r2 = 2, r3 = 3;
constexpr uint8_t rsp = 4;  ///< stack pointer
constexpr uint8_t rbp = 5;
constexpr uint8_t r6 = 6, r7 = 7, r8 = 8, r9 = 9, r10 = 10, r11 = 11,
                  r12 = 12, r13 = 13, r14 = 14, r15 = 15;
constexpr uint8_t rflags = 16;
constexpr uint8_t ut0 = 17; ///< hidden cracking temporary 0
constexpr uint8_t ut1 = 18; ///< hidden cracking temporary 1
constexpr unsigned numRegs = 19;
constexpr unsigned numGprs = 16;
} // namespace cx

} // namespace svb

#endif // SVB_ISA_ISA_INFO_HH
