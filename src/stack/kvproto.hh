/**
 * @file
 * The key-value wire protocol spoken between the hotel functions and
 * the database/memcached containers, plus the guest-side client
 * helpers.
 *
 * Request:  [0]=op (1 get, 2 put), [8]=key, [16..]=value (put only)
 * Reply:    get  -> value bytes (empty on miss)
 *           put  -> 8 bytes of status
 */

#ifndef SVB_STACK_KVPROTO_HH
#define SVB_STACK_KVPROTO_HH

#include "gen/guestlib.hh"
#include "gen/ir.hh"

namespace svb::kv
{

constexpr uint64_t opGet = 1;
constexpr uint64_t opPut = 2;
constexpr int64_t headerBytes = 16;

/** Guest-side KV client helper function indices. */
struct KvClient
{
    /** len = kvGet(reqRingVa, key, outBuf) */
    int get = -1;
    /** status = kvPut(reqRingVa, key, valBuf, valLen) */
    int put = -1;
    /** key = keyOf(id) — the record-id to key mix shared with the DBs */
    int keyOf = -1;
};

/**
 * Emit the KV client helpers into @p pb. The response ring is derived
 * from the request ring via the +0x1000 layout invariant.
 */
KvClient emitKvClient(gen::ProgramBuilder &pb, const gen::GuestLib &lib);

/** Emit only the keyOf(id) mixer (used by the DB programs too). */
int emitKeyOf(gen::ProgramBuilder &pb);

} // namespace svb::kv

#endif // SVB_STACK_KVPROTO_HH
