#include "calibration.hh"

#include "sim/logging.hh"

namespace svb
{

const char *
tierName(RuntimeTier tier)
{
    switch (tier) {
      case RuntimeTier::Go: return "go";
      case RuntimeTier::Node: return "nodejs";
      case RuntimeTier::Python: return "python";
    }
    return "?";
}

TierParams
tierParams(RuntimeTier tier, IsaId isa)
{
    TierParams p{};
    p.layerUnroll = 200;
    p.jitThreshold = 1 << 30;

    if (isa == IsaId::Riscv) {
        // The lean, hand-ported RISC-V images (Section 3.3).
        switch (tier) {
          case RuntimeTier::Go:
            p.preMainTouchBytes = 64 * 1024;
            p.preMainAluIters = 3000;
            p.wrapperLayers = 192;       // 768 KiB steady-state data
            p.wrapperSlabBytes = 1024;
            p.initLayers = 64;           // 384 KiB one-time import
            p.initSlabBytes = 6144;
            p.profilingLayers = 0;
            p.wrapperAluIters = 2000;
            p.lazyInitAluIters = 4000;
            p.jitThreshold = 0;
            break;
          case RuntimeTier::Node:
            p.preMainTouchBytes = 128 * 1024;
            p.preMainAluIters = 6000;
            p.wrapperLayers = 208;
            p.wrapperSlabBytes = 1024;
            p.initLayers = 96;
            p.initSlabBytes = 8192;
            p.profilingLayers = 96;      // V8-style interpreter profiling
            p.wrapperAluIters = 2600;
            p.lazyInitAluIters = 8000;
            p.jitThreshold = 4;
            break;
          case RuntimeTier::Python:
            p.preMainTouchBytes = 96 * 1024;
            p.preMainAluIters = 4000;
            p.wrapperLayers = 144;       // lean steady-state call path
            p.wrapperSlabBytes = 1024;
            p.initLayers = 320;          // the huge module import
            p.initSlabBytes = 12288;
            p.profilingLayers = 0;
            p.wrapperAluIters = 3200;
            p.lazyInitAluIters = 24000;
            break;
        }
        return p;
    }

    // CX86 ("x86"): the stock Ubuntu base images the thesis used are
    // much heavier than its hand-built RISC-V ones; the layer counts
    // below reproduce the measured instruction-count gap (Fig 4.16)
    // and the extreme x86 Python cold starts (Fig 4.12). The larger
    // unroll keeps the x86 code footprint above the RISC-V one even
    // though CX86 encodes straight-line arithmetic more densely
    // (Fig 4.17: x86 suffers more L1I misses).
    p.layerUnroll = 256;
    switch (tier) {
      case RuntimeTier::Go:
        p.preMainTouchBytes = 128 * 1024;
        p.preMainAluIters = 6000;
        p.wrapperLayers = 480;
        p.wrapperSlabBytes = 1024;
        p.initLayers = 128;
        p.initSlabBytes = 8192;
        p.profilingLayers = 0;
        p.wrapperAluIters = 3600;
        p.lazyInitAluIters = 9000;
        p.jitThreshold = 0;
        break;
      case RuntimeTier::Node:
        p.preMainTouchBytes = 256 * 1024;
        p.preMainAluIters = 12000;
        p.wrapperLayers = 1000;
        p.wrapperSlabBytes = 1024;
        p.initLayers = 192;
        p.initSlabBytes = 10240;
        p.profilingLayers = 160;
        p.wrapperAluIters = 5000;
        p.lazyInitAluIters = 18000;
        p.jitThreshold = 4;
        break;
      case RuntimeTier::Python:
        p.preMainTouchBytes = 224 * 1024;
        p.preMainAluIters = 10000;
        p.wrapperLayers = 440;
        p.wrapperSlabBytes = 1024;
        p.initLayers = 640;
        p.initSlabBytes = 12288;
        p.profilingLayers = 0;
        p.wrapperAluIters = 7000;
        p.lazyInitAluIters = 80000;
        break;
    }
    return p;
}

} // namespace svb
