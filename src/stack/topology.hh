/**
 * @file
 * Cluster topology constants.
 *
 * Figure 4.3: core 0 hosts the client (and the database/memcached
 * containers, time-shared by the cooperative scheduler); core 1 hosts
 * the serverless function container under measurement. All RPC rings
 * live in one shared physical region mapped at identical virtual
 * addresses in every participating process.
 */

#ifndef SVB_STACK_TOPOLOGY_HH
#define SVB_STACK_TOPOLOGY_HH

#include "guest/loader.hh"
#include "guest/ring.hh"

namespace svb::topo
{

/** Core pinning (Figure 4.3). */
constexpr int clientCore = 0;
constexpr int serverCore = 1;

/** Virtual addresses of the rings (identical in every process). */
constexpr Addr clientReqRingVa = layout::sharedBase + 0x0000;
constexpr Addr clientRespRingVa = layout::sharedBase + 0x1000;
constexpr Addr dbReqRingVa = layout::sharedBase + 0x2000;
constexpr Addr dbRespRingVa = layout::sharedBase + 0x3000;
constexpr Addr mcReqRingVa = layout::sharedBase + 0x4000;
constexpr Addr mcRespRingVa = layout::sharedBase + 0x5000;
/** Second function slot (lukewarm/interleaving studies). */
constexpr Addr client2ReqRingVa = layout::sharedBase + 0x6000;
constexpr Addr client2RespRingVa = layout::sharedBase + 0x7000;

/** Number of rings in the shared region. */
constexpr unsigned numRings = 8;

/** Client ring-pair base of deployment slot 0 or 1. */
constexpr Addr
clientRingOfSlot(unsigned slot)
{
    return slot == 0 ? clientReqRingVa : client2ReqRingVa;
}

/** Bytes of shared region backing all rings (page granular). */
constexpr Addr sharedRegionBytes = numRings * 0x1000;

/** Response ring of a request ring (fixed +0x1000 layout invariant). */
constexpr Addr
respRingOf(Addr req_ring_va)
{
    return req_ring_va + 0x1000;
}

} // namespace svb::topo

#endif // SVB_STACK_TOPOLOGY_HH
