#include "kvproto.hh"

namespace svb::kv
{

using gen::BinOp;
using gen::CondOp;

int
emitKeyOf(gen::ProgramBuilder &pb)
{
    // key = ((id + 1) * 0x9e3779b97f4a7c15) ^ (that >> 29), never zero.
    auto f = pb.beginFunction("kv.keyOf", 1);
    const int id = f.arg(0);
    const int k = f.newVreg(), m = f.newVreg(), t = f.newVreg();
    f.bini(BinOp::Add, k, id, 1);
    f.movi(m, int64_t(0x9e3779b97f4a7c15ULL));
    f.bin(BinOp::Mul, k, k, m);
    f.bini(BinOp::Shr, t, k, 29);
    f.bin(BinOp::Xor, k, k, t);
    f.bini(BinOp::Or, k, k, 1); // keys are never zero
    f.ret(k);
    return pb.functionIndex("kv.keyOf");
}

KvClient
emitKvClient(gen::ProgramBuilder &pb, const gen::GuestLib &lib)
{
    KvClient kvc;
    kvc.keyOf = emitKeyOf(pb);

    {
        // kvGet(reqRing, key, outBuf) -> valueLen
        auto f = pb.beginFunction("kv.get", 3);
        const int rg = f.arg(0), key = f.arg(1), out = f.arg(2);
        const int64_t req_off = f.localBytes(24);
        const int req = f.newVreg(), resp_ring = f.newVreg(),
                  op = f.newVreg(), len = f.newVreg();
        f.leaLocal(req, req_off);
        f.movi(op, int64_t(opGet));
        f.store(req, 0, op, 8);
        f.store(req, 8, key, 8);
        f.movi(len, headerBytes);
        f.callVoid(lib.ringSend, {rg, req, len});
        f.bini(BinOp::Add, resp_ring, rg, 0x1000);
        const int got = f.call(lib.ringRecv, {resp_ring, out});
        f.ret(got);
    }

    {
        // kvPut(reqRing, key, valBuf, valLen) -> status
        auto f = pb.beginFunction("kv.put", 4);
        const int rg = f.arg(0), key = f.arg(1), val = f.arg(2),
                  vlen = f.arg(3);
        const int64_t req_off = f.localBytes(232);
        const int req = f.newVreg(), resp_ring = f.newVreg(),
                  op = f.newVreg(), body = f.newVreg(),
                  total = f.newVreg();
        f.leaLocal(req, req_off);
        f.movi(op, int64_t(opPut));
        f.store(req, 0, op, 8);
        f.store(req, 8, key, 8);
        f.bini(BinOp::Add, body, req, headerBytes);
        f.callVoid(lib.memCopy, {body, val, vlen});
        f.bini(BinOp::Add, total, vlen, headerBytes);
        f.callVoid(lib.ringSend, {rg, req, total});
        f.bini(BinOp::Add, resp_ring, rg, 0x1000);
        const int64_t resp_off = f.localBytes(16);
        const int resp = f.newVreg();
        f.leaLocal(resp, resp_off);
        f.callVoid(lib.ringRecv, {resp_ring, resp});
        const int status = f.newVreg();
        f.load(status, resp, 0, 8, false);
        f.ret(status);
    }

    kvc.get = pb.functionIndex("kv.get");
    kvc.put = pb.functionIndex("kv.put");
    return kvc;
}

} // namespace svb::kv
