/**
 * @file
 * Serverless function runtime tiers: assembles complete server and
 * client guest programs from a workload implementation.
 *
 * A server program is the container's payload: eager runtime init,
 * then an RPC serve loop with lazy first-request initialisation,
 * marshalling wrappers, and a tier-specific dispatch (compiled
 * handler, interpreted bytecode, or tiered Node-style JIT).
 */

#ifndef SVB_STACK_RUNTIME_HH
#define SVB_STACK_RUNTIME_HH

#include <functional>
#include <string>
#include <vector>

#include "calibration.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "kvproto.hh"
#include "topology.hh"
#include "vm.hh"

namespace svb
{

/** One deployable serverless function (Table 3.2/3.3/3.4 rows). */
struct FunctionSpec
{
    std::string name;     ///< e.g. "fibonacci-go"
    std::string workload; ///< registry key, e.g. "fibonacci"
    RuntimeTier tier = RuntimeTier::Go;
    bool usesDb = false;
    bool usesMemcached = false;
};

/** Everything a compiled-handler emitter may use. */
struct ServerEnv
{
    gen::GuestLib lib;
    kv::KvClient kvc;
    Addr moduleArenaVa = 0; ///< big runtime arena (read/write freely)
    Addr vmHeapVa = 0;      ///< bytecode VM arena
};

/**
 * A workload implementation: the compiled handler emitter, the
 * bytecode form for interpreted tiers, and the client request shape.
 *
 * Compiled handler guest ABI: respLen = handler(reqBuf, reqLen, respBuf).
 */
struct WorkloadImpl
{
    /** Emit the compiled handler; returns its function index. */
    std::function<int(gen::ProgramBuilder &, const ServerEnv &)>
        emitCompiled;
    /** Produce the bytecode form (empty when Go-only). */
    std::function<std::vector<uint8_t>()> makeBytecode;
    /** Initial request payload; byte 40 carries the request sequence. */
    std::vector<uint8_t> requestTemplate;
    /** Client pacing between requests (ALU iterations). */
    uint64_t clientGapIters = 300;
    /**
     * Scale on the tier's module-import size. The email service ships
     * far fewer dependencies than its Python siblings — the paper's
     * "emailservice exception" with its low L2 miss count (Fig 4.13).
     */
    double initScale = 1.0;
};

/** Byte offset in every request where the client writes the sequence. */
constexpr int64_t requestSeqOffset = 40;

/** m5Event payload announcing a booted container. */
constexpr uint64_t containerReadyEvent = 0xC0;

/** Function-container heap layout (offsets from layout::heapBase). */
namespace serverheap
{
constexpr int64_t initFlag = 0;
constexpr int64_t requestCounter = 8;
constexpr int64_t vmCtx = 64;
/** Layer slabs begin here; the exact layout is computed per tier. */
constexpr int64_t slabsStart = 4096;
constexpr int64_t vmHeapBytes = 512 * 1024;
} // namespace serverheap

/**
 * Build the container's server program.
 *
 * @param ring_slot which client ring pair to serve (0 default; 1 for
 *                  the second function of interleaving studies)
 */
LoadableImage buildServerProgram(const FunctionSpec &spec,
                                 const WorkloadImpl &impl, IsaId isa,
                                 unsigned ring_slot = 0);

/** Build the matching load-generator (client) program. */
LoadableImage buildClientProgram(const FunctionSpec &spec,
                                 const WorkloadImpl &impl, IsaId isa,
                                 unsigned ring_slot = 0);

} // namespace svb

#endif // SVB_STACK_RUNTIME_HH
