/**
 * @file
 * Container image registry model (Tables 4.4 and 4.5).
 *
 * Image sizes are static registry artifacts, not simulation outputs:
 * this module models each image as a stack of layers (base OS,
 * language runtime, dependency libraries, application) whose sizes
 * were calibrated against the compressed sizes the thesis measured on
 * Docker Hub for its own images ("GPour") and for the independently
 * ported "Natheesan" images it compares against.
 */

#ifndef SVB_STACK_IMAGE_HH
#define SVB_STACK_IMAGE_HH

#include <optional>
#include <string>

#include "runtime.hh"

namespace svb
{

/** Whose registry the image comes from (Section 4.2.6). */
enum class RegistryProfile
{
    GPour,     ///< the thesis' own ported images
    Natheesan, ///< the independently published RISC-V port
};

/** Layered decomposition of one container image (compressed MB). */
struct ImageBreakdown
{
    double baseOsMb = 0;
    double runtimeMb = 0;  ///< language runtime layer
    double libsMb = 0;     ///< gRPC and friends
    double appMb = 0;      ///< the function itself

    double
    totalMb() const
    {
        return baseOsMb + runtimeMb + libsMb + appMb;
    }
};

/**
 * Look up the image for @p spec on @p isa in @p profile.
 *
 * @return nullopt when the profile does not publish that image (the
 *         Natheesan registry has no runnable hotel images — they
 *         require MongoDB, which has no RISC-V port; Section 4.2.6)
 */
std::optional<ImageBreakdown> containerImage(const FunctionSpec &spec,
                                             IsaId isa,
                                             RegistryProfile profile);

} // namespace svb

#endif // SVB_STACK_IMAGE_HH
