#include "runtime.hh"

#include "guest/syscall_abi.hh"
#include "sim/logging.hh"

namespace svb
{

using gen::BinOp;
using gen::CondOp;

namespace
{

/**
 * Emit one runtime layer: a distinct function with a private data
 * slab. The unrolled arithmetic gives each layer a real code
 * footprint; the slab walk gives it a real data footprint. Every
 * fourth layer also writes its slab, so warm executions produce
 * dirty-line writebacks.
 */
int
emitLayer(gen::ProgramBuilder &pb, const std::string &name, Addr slab_va,
          uint64_t slab_bytes, uint64_t unroll, uint64_t seed)
{
    auto f = pb.beginFunction(name, 1);
    const int x = f.arg(0);
    const int sum = f.newVreg(), ptr = f.newVreg(), end = f.newVreg(),
              v = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();

    f.mov(sum, x);
    // Distinct straight-line arithmetic per layer (code footprint).
    uint64_t c = seed * 0x9e3779b97f4a7c15ULL + 12345;
    for (uint64_t u = 0; u < unroll; ++u) {
        c = c * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto k = int64_t(c >> 33);
        switch (u % 3) {
          case 0: f.bini(BinOp::Xor, sum, sum, k); break;
          case 1: f.bini(BinOp::Add, sum, sum, k); break;
          default: f.bini(BinOp::Mul, sum, sum, (k | 1) & 0xffff); break;
        }
    }

    // Slab walk (data footprint), one access per cache line.
    f.movi(ptr, int64_t(slab_va));
    f.movi(end, int64_t(slab_va + slab_bytes));
    f.label(loop);
    f.brcond(CondOp::GeU, ptr, end, done);
    f.load(v, ptr, 0, 8, false);
    f.bin(BinOp::Add, sum, sum, v);
    if (seed % 4 == 0)
        f.store(ptr, 8, sum, 8);
    f.addi(ptr, ptr, 64);
    f.br(loop);
    f.label(done);
    f.ret(sum);
    return pb.functionIndex(name);
}

/** Emit a chain of layers; returns their function indices. */
std::vector<int>
emitLayerChain(gen::ProgramBuilder &pb, const std::string &prefix,
               Addr slabs_base, uint64_t count, uint64_t slab_bytes,
               uint64_t unroll)
{
    std::vector<int> fns;
    fns.reserve(count);
    const uint64_t stride = slab_bytes + calib::slabStagger;
    for (uint64_t i = 0; i < count; ++i) {
        fns.push_back(emitLayer(pb, prefix + std::to_string(i),
                                slabs_base + i * stride, slab_bytes,
                                unroll, i));
    }
    return fns;
}

/** Call every layer in a chain, threading a value through. */
void
callChain(gen::FunctionBuilder &f, const std::vector<int> &chain, int x)
{
    for (int fn : chain) {
        const int r = f.call(fn, {x});
        f.mov(x, r);
    }
}

} // namespace

LoadableImage
buildServerProgram(const FunctionSpec &spec, const WorkloadImpl &impl,
                   IsaId isa, unsigned ring_slot)
{
    const Addr req_ring_va = topo::clientRingOfSlot(ring_slot);
    const Addr resp_ring_va = topo::respRingOf(req_ring_va);
    TierParams tp = tierParams(spec.tier, isa);
    tp.initLayers = uint64_t(double(tp.initLayers) * impl.initScale);
    if (tp.initLayers == 0)
        tp.initLayers = 1;

    gen::ProgramBuilder pb;

    // ---- heap layout -----------------------------------------------------
    const uint64_t wrap_stride =
        tp.wrapperSlabBytes + calib::slabStagger;
    const uint64_t init_stride = tp.initSlabBytes + calib::slabStagger;
    const Addr wrap_base = layout::heapBase + serverheap::slabsStart;
    const Addr prof_base =
        wrap_base + tp.wrapperLayers * wrap_stride;
    const Addr init_base =
        prof_base + tp.profilingLayers * wrap_stride;
    const uint64_t conn_layers =
        (spec.usesDb ? calib::dbConnectLayers : 0) +
        (spec.usesMemcached ? calib::mcConnectLayers : 0);
    const uint64_t conn_slab =
        spec.usesDb ? calib::dbConnectSlabBytes
                    : calib::mcConnectSlabBytes;
    const uint64_t conn_stride = conn_slab + calib::slabStagger;
    const Addr conn_base = init_base + tp.initLayers * init_stride;
    const Addr vm_heap = conn_base + conn_layers * conn_stride;
    const Addr heap_end =
        vm_heap + serverheap::vmHeapBytes + 64 * 1024;
    pb.setHeapBytes(heap_end - layout::heapBase);

    // Embed the bytecode for the interpreted tiers.
    std::vector<uint8_t> bytecode;
    Addr bytecode_addr = 0;
    const bool wants_interp = spec.tier != RuntimeTier::Go;
    if (wants_interp) {
        svb_assert(bool(impl.makeBytecode),
                   spec.name, ": interpreted tier without bytecode");
        bytecode = impl.makeBytecode();
        bytecode_addr = pb.addData(bytecode.data(), bytecode.size());
    }

    ServerEnv env;
    env.lib = gen::GuestLib::addTo(pb);
    env.kvc = kv::emitKvClient(pb, env.lib);
    env.moduleArenaVa = wrap_base;
    env.vmHeapVa = vm_heap;

    int vm_run = -1;
    if (wants_interp)
        vm_run = vm::emitVmInterpreter(pb, env.lib);

    // Compiled handler: Go always, Node for its JIT tier; Python never
    // compiles (CPython-style).
    int compiled = -1;
    if (spec.tier != RuntimeTier::Python) {
        svb_assert(bool(impl.emitCompiled),
                   spec.name, ": missing compiled handler");
        compiled = impl.emitCompiled(pb, env);
    }

    // ---- the runtime layer chains -----------------------------------------
    const std::vector<int> wrapper_chain =
        emitLayerChain(pb, "rt.wrap", wrap_base, tp.wrapperLayers,
                       tp.wrapperSlabBytes, tp.layerUnroll);
    const std::vector<int> profiling_chain =
        emitLayerChain(pb, "rt.prof", prof_base, tp.profilingLayers,
                       tp.wrapperSlabBytes, tp.layerUnroll);
    const std::vector<int> init_chain =
        emitLayerChain(pb, "rt.init", init_base, tp.initLayers,
                       tp.initSlabBytes, tp.layerUnroll);
    // Store-client connection setup (hotel functions): driver init,
    // handshakes, connection pools. One-time, on the first request.
    const std::vector<int> connect_chain =
        emitLayerChain(pb, "rt.conn", conn_base, conn_layers, conn_slab,
                       tp.layerUnroll);

    // ---- the serve loop -------------------------------------------------
    auto f = pb.beginFunction("server.main", 0);
    const int64_t req_off = f.localBytes(256);
    const int64_t resp_off = f.localBytes(256);

    const int heap = f.newVreg(), arena = f.newVreg(), t = f.newVreg();
    f.movi(heap, int64_t(layout::heapBase));
    f.movi(arena, int64_t(env.moduleArenaVa));

    // Eager runtime init (container boot).
    {
        const int bytes = f.imm(int64_t(tp.preMainTouchBytes));
        const int stride = f.imm(64);
        f.callVoid(env.lib.touchWrite, {arena, bytes, stride});
        const int iters = f.imm(int64_t(tp.preMainAluIters));
        f.callVoid(env.lib.burnAlu, {iters});
    }
    // Report container readiness to the harness (vSwarm's readiness
    // probe equivalent).
    {
        const int m5op = f.imm(int64_t(sys::m5Event));
        const int code = f.imm(int64_t(containerReadyEvent));
        f.syscall(sys::sysM5, {m5op, code});
    }

    const int serve = f.newLabel();
    const int inited = f.newLabel();
    const int req_buf = f.newVreg(), resp_buf = f.newVreg();
    const int len = f.newVreg(), resp_len = f.newVreg();
    const int ring = f.newVreg(), x = f.newVreg();

    f.label(serve);
    f.leaLocal(req_buf, req_off);
    f.leaLocal(resp_buf, resp_off);
    f.movi(ring, int64_t(req_ring_va));
    {
        const int got = f.call(env.lib.ringRecv, {ring, req_buf});
        f.mov(len, got);
    }

    // Lazy first-request initialisation: the module import.
    f.load(t, heap, serverheap::initFlag, 8, false);
    f.brcondi(CondOp::Ne, t, 0, inited);
    {
        f.mov(x, len);
        callChain(f, init_chain, x);
        callChain(f, connect_chain, x);
        const int iters = f.imm(int64_t(tp.lazyInitAluIters));
        f.callVoid(env.lib.burnAlu, {iters});
        const int one = f.imm(1);
        f.store(heap, serverheap::initFlag, one, 8);
    }
    f.label(inited);

    // Inbound wrapper: transport + middleware layer chain.
    f.mov(x, len);
    callChain(f, wrapper_chain, x);
    {
        const int iters = f.imm(int64_t(tp.wrapperAluIters / 2));
        f.callVoid(env.lib.burnAlu, {iters});
        f.callVoid(env.lib.fnvHash, {req_buf, len});
    }

    // Dispatch (tier-specific).
    const int cnt = f.newVreg();
    f.load(cnt, heap, serverheap::requestCounter, 8, false);
    f.bini(BinOp::Add, t, cnt, 1);
    f.store(heap, serverheap::requestCounter, t, 8);

    auto emitInterpCall = [&]() {
        const int ctx = f.newVreg(), v = f.newVreg();
        f.bini(BinOp::Add, ctx, heap, serverheap::vmCtx);
        f.store(ctx, vm::ctxoff::reqBuf, req_buf, 8);
        f.store(ctx, vm::ctxoff::reqLen, len, 8);
        f.store(ctx, vm::ctxoff::respBuf, resp_buf, 8);
        f.movi(v, int64_t(env.vmHeapVa));
        f.store(ctx, vm::ctxoff::heap, v, 8);
        const int codep = f.newVreg(), ninsts = f.newVreg();
        f.lea(codep, bytecode_addr);
        f.movi(ninsts, int64_t(bytecode.size() / vm::instBytes));
        const int r = f.call(vm_run, {codep, ninsts, ctx});
        f.mov(resp_len, r);
    };
    auto emitCompiledCall = [&]() {
        const int r = f.call(compiled, {req_buf, len, resp_buf});
        f.mov(resp_len, r);
    };

    switch (spec.tier) {
      case RuntimeTier::Go:
        emitCompiledCall();
        break;
      case RuntimeTier::Python:
        emitInterpCall();
        break;
      case RuntimeTier::Node: {
        // Tiered execution: while interpreting, V8-style profiling
        // layers run too; once hot, the compiled handler takes over.
        const int use_jit = f.newLabel(), dispatched = f.newLabel();
        f.brcondi(CondOp::Ge, cnt, tp.jitThreshold, use_jit);
        f.mov(x, len);
        callChain(f, profiling_chain, x);
        emitInterpCall();
        f.br(dispatched);
        f.label(use_jit);
        emitCompiledCall();
        f.label(dispatched);
        break;
      }
    }

    // Outbound wrapper: serialisation + transport.
    {
        const int iters = f.imm(int64_t(tp.wrapperAluIters / 2));
        f.callVoid(env.lib.burnAlu, {iters});
        f.callVoid(env.lib.fnvHash, {resp_buf, resp_len});
    }
    f.movi(ring, int64_t(resp_ring_va));
    f.callVoid(env.lib.ringSend, {ring, resp_buf, resp_len});
    f.br(serve);

    pb.setEntry("server.main");
    return gen::compileProgram(pb.take(), isa);
}

LoadableImage
buildClientProgram(const FunctionSpec &spec, const WorkloadImpl &impl,
                   IsaId isa, unsigned ring_slot)
{
    (void)spec;
    const Addr req_ring_va = topo::clientRingOfSlot(ring_slot);
    const Addr resp_ring_va = topo::respRingOf(req_ring_va);
    gen::ProgramBuilder pb;
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);

    svb_assert(!impl.requestTemplate.empty(), "empty request template");
    svb_assert(impl.requestTemplate.size() <= 248,
               "request template exceeds one ring slot");
    const Addr tmpl = pb.addData(impl.requestTemplate.data(),
                                 impl.requestTemplate.size());

    auto f = pb.beginFunction("client.main", 0);
    const int64_t buf_off = f.localBytes(256);

    const int buf = f.newVreg(), i = f.newVreg(), ring = f.newVreg();
    const int tp = f.newVreg(), tl = f.newVreg();
    const int m5op = f.newVreg(), m5arg = f.newVreg();
    const int loop = f.newLabel();

    // Gate: wait for the harness to open the experiment (it pokes the
    // flag at the bottom of this process's heap).
    {
        const int gate = f.newLabel(), go = f.newLabel();
        const int flag_addr = f.newVreg(), v = f.newVreg();
        f.movi(flag_addr, int64_t(layout::heapBase));
        f.label(gate);
        f.load(v, flag_addr, 0, 8, false);
        f.brcondi(CondOp::Ne, v, 0, go);
        f.syscall(sys::sysYield, {});
        f.br(gate);
        f.label(go);
    }

    f.movi(i, 0);
    f.label(loop);

    // Pacing gap between invocations.
    {
        const int gap = f.imm(int64_t(impl.clientGapIters));
        f.callVoid(lib.burnAlu, {gap});
    }

    f.movi(m5op, int64_t(sys::m5WorkBegin));
    f.bini(BinOp::Or, m5arg, i, int64_t(uint64_t(ring_slot) << 32));
    f.syscall(sys::sysM5, {m5op, m5arg});

    f.leaLocal(buf, buf_off);
    f.lea(tp, tmpl);
    f.movi(tl, int64_t(impl.requestTemplate.size()));
    f.callVoid(lib.memCopy, {buf, tp, tl});
    f.store(buf, requestSeqOffset, i, 8);

    f.movi(ring, int64_t(req_ring_va));
    f.callVoid(lib.ringSend, {ring, buf, tl});
    f.movi(ring, int64_t(resp_ring_va));
    f.callVoid(lib.ringRecv, {ring, buf});

    f.movi(m5op, int64_t(sys::m5WorkEnd));
    f.bini(BinOp::Or, m5arg, i, int64_t(uint64_t(ring_slot) << 32));
    f.syscall(sys::sysM5, {m5op, m5arg});

    f.addi(i, i, 1);
    f.br(loop);

    pb.setEntry("client.main");
    return gen::compileProgram(pb.take(), isa);
}

} // namespace svb
