#include "vm.hh"

#include "sim/logging.hh"

namespace svb::vm
{

using gen::BinOp;
using gen::CondOp;

int
VmAsm::newLabel()
{
    labels.push_back(-1);
    return int(labels.size()) - 1;
}

void
VmAsm::bind(int label)
{
    svb_assert(label >= 0 && size_t(label) < labels.size(), "bad vm label");
    labels[size_t(label)] = int64_t(code.size() / instBytes);
}

void
VmAsm::emit(VmOp op, uint8_t a, uint8_t b, uint8_t c, int32_t imm)
{
    code.push_back(uint8_t(op));
    code.push_back(a);
    code.push_back(b);
    code.push_back(c);
    for (int i = 0; i < 4; ++i)
        code.push_back(uint8_t(uint32_t(imm) >> (8 * i)));
}

void
VmAsm::emitBranch(VmOp op, uint8_t a, uint8_t b, uint8_t c, int label)
{
    fixups.push_back({code.size() / instBytes, label});
    emit(op, a, b, c, 0);
}

std::vector<uint8_t>
VmAsm::finish()
{
    for (const Fixup &fix : fixups) {
        const int64_t target = labels.at(size_t(fix.label));
        svb_assert(target >= 0, "unbound vm label ", fix.label);
        // Displacement relative to the next instruction.
        const int64_t disp = target - int64_t(fix.instIndex) - 1;
        const auto imm = int32_t(disp);
        for (int i = 0; i < 4; ++i) {
            code[fix.instIndex * instBytes + 4 + size_t(i)] =
                uint8_t(uint32_t(imm) >> (8 * i));
        }
    }
    fixups.clear();
    return std::move(code);
}

int
emitVmInterpreter(gen::ProgramBuilder &pb, const gen::GuestLib &lib)
{
    (void)lib;
    auto f = pb.beginFunction("vm.run", 3);
    const int code = f.arg(0);
    const int code_len = f.arg(1); // in instructions (bounds guard)
    const int ctx = f.arg(2);

    const int req_buf = f.newVreg(), req_len = f.newVreg(),
              resp_buf = f.newVreg(), heap = f.newVreg(),
              regs = f.newVreg();
    const int pc = f.newVreg(), inst = f.newVreg(), op = f.newVreg();
    const int ra = f.newVreg(), rb = f.newVreg(), rc = f.newVreg(),
              imm = f.newVreg();
    const int va = f.newVreg(), vb = f.newVreg(), vc = f.newVreg();
    const int t0 = f.newVreg(), t1 = f.newVreg();
    const int end_pc = f.newVreg();

    const int loop = f.newLabel();

    f.load(req_buf, ctx, ctxoff::reqBuf, 8, false);
    f.load(req_len, ctx, ctxoff::reqLen, 8, false);
    f.load(resp_buf, ctx, ctxoff::respBuf, 8, false);
    f.load(heap, ctx, ctxoff::heap, 8, false);
    f.bini(BinOp::Add, regs, ctx, ctxoff::regs);
    f.mov(pc, code);
    f.bini(BinOp::Shl, end_pc, code_len, 3);
    f.bin(BinOp::Add, end_pc, code, end_pc);

    // Per-op labels.
    std::vector<int> opLabels(33);
    for (int i = 0; i < 33; ++i)
        opLabels[size_t(i)] = f.newLabel();
    const int bad = f.newLabel();

    f.label(loop);
    f.brcond(CondOp::GeU, pc, end_pc, bad); // ran off the end

    // Fetch and crack one 8-byte instruction.
    f.load(inst, pc, 0, 8, false);
    f.addi(pc, pc, int64_t(instBytes));
    f.bini(BinOp::And, op, inst, 0xff);
    f.bini(BinOp::Shr, ra, inst, 8);
    f.bini(BinOp::And, ra, ra, 0xff);
    f.bini(BinOp::Shr, rb, inst, 16);
    f.bini(BinOp::And, rb, rb, 0xff);
    f.bini(BinOp::Shr, rc, inst, 24);
    f.bini(BinOp::And, rc, rc, 0xff);
    f.bini(BinOp::Sar, imm, inst, 32);

    // Register-file addressing helpers (memory traffic on purpose).
    auto loadReg = [&](int dst, int idx_vreg) {
        f.bini(BinOp::Shl, t0, idx_vreg, 3);
        f.bin(BinOp::Add, t0, regs, t0);
        f.load(dst, t0, 0, 8, false);
    };
    auto storeReg = [&](int idx_vreg, int src) {
        f.bini(BinOp::Shl, t0, idx_vreg, 3);
        f.bin(BinOp::Add, t0, regs, t0);
        f.store(t0, 0, src, 8);
    };

    // Dispatch: a cascade of compares, hottest ops first. This models
    // the switch-style dispatch of a real interpreter loop.
    static constexpr VmOp dispatchOrder[] = {
        vmAddi, vmJlt, vmLd8, vmAdd, vmHashStep, vmJnz, vmMul, vmSt8,
        vmJge, vmMov, vmLdi, vmXor, vmAnd, vmInB, vmOutB, vmJmp,
        vmSub, vmJeq, vmJne, vmJz, vmShri, vmShli, vmAndi, vmMuli,
        vmLd1, vmSt1, vmIn8, vmOut8, vmInLen, vmOr, vmShl, vmShr,
        vmHalt,
    };
    for (VmOp dop : dispatchOrder)
        f.brcondi(CondOp::Eq, op, int64_t(dop), opLabels[size_t(dop)]);
    f.br(bad);

    auto nextInst = [&]() { f.br(loop); };

    // --- ALU three-register ops ----------------------------------------
    auto bin3 = [&](VmOp vop, BinOp bop) {
        f.label(opLabels[size_t(vop)]);
        loadReg(vb, rb);
        loadReg(vc, rc);
        f.bin(bop, va, vb, vc);
        storeReg(ra, va);
        nextInst();
    };
    bin3(vmAdd, BinOp::Add);
    bin3(vmSub, BinOp::Sub);
    bin3(vmMul, BinOp::Mul);
    bin3(vmAnd, BinOp::And);
    bin3(vmOr, BinOp::Or);
    bin3(vmXor, BinOp::Xor);
    bin3(vmShl, BinOp::Shl);
    bin3(vmShr, BinOp::Shr);

    // --- immediates -------------------------------------------------------
    f.label(opLabels[vmLdi]);
    storeReg(ra, imm);
    nextInst();

    f.label(opLabels[vmMov]);
    loadReg(vb, rb);
    storeReg(ra, vb);
    nextInst();

    auto binImm = [&](VmOp vop, BinOp bop) {
        f.label(opLabels[size_t(vop)]);
        loadReg(vb, rb);
        f.bin(bop, va, vb, imm);
        storeReg(ra, va);
        nextInst();
    };
    binImm(vmAddi, BinOp::Add);
    binImm(vmMuli, BinOp::Mul);
    binImm(vmAndi, BinOp::And);
    binImm(vmShri, BinOp::Shr);
    binImm(vmShli, BinOp::Shl);

    // --- VM heap accesses ----------------------------------------------
    f.label(opLabels[vmLd8]);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, heap, vb);
    f.bin(BinOp::Add, t1, t1, imm);
    f.load(va, t1, 0, 8, false);
    storeReg(ra, va);
    nextInst();

    f.label(opLabels[vmSt8]);
    loadReg(vb, rb);
    loadReg(va, ra);
    f.bin(BinOp::Add, t1, heap, vb);
    f.bin(BinOp::Add, t1, t1, imm);
    f.store(t1, 0, va, 8);
    nextInst();

    f.label(opLabels[vmLd1]);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, heap, vb);
    f.bin(BinOp::Add, t1, t1, imm);
    f.load(va, t1, 0, 1, false);
    storeReg(ra, va);
    nextInst();

    f.label(opLabels[vmSt1]);
    loadReg(vb, rb);
    loadReg(va, ra);
    f.bin(BinOp::Add, t1, heap, vb);
    f.bin(BinOp::Add, t1, t1, imm);
    f.store(t1, 0, va, 1);
    nextInst();

    // --- request / response buffers ----------------------------------------
    f.label(opLabels[vmInB]);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, req_buf, vb);
    f.load(va, t1, 0, 1, false);
    storeReg(ra, va);
    nextInst();

    f.label(opLabels[vmIn8]);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, req_buf, vb);
    f.load(va, t1, 0, 8, false);
    storeReg(ra, va);
    nextInst();

    f.label(opLabels[vmOutB]);
    loadReg(va, ra);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, resp_buf, va);
    f.store(t1, 0, vb, 1);
    nextInst();

    f.label(opLabels[vmOut8]);
    loadReg(va, ra);
    loadReg(vb, rb);
    f.bin(BinOp::Add, t1, resp_buf, va);
    f.store(t1, 0, vb, 8);
    nextInst();

    f.label(opLabels[vmInLen]);
    storeReg(ra, req_len);
    nextInst();

    // --- control -------------------------------------------------------------
    auto pcAdd = [&]() {
        // pc += imm * 8 (imm is relative to the already-advanced pc).
        f.bini(BinOp::Shl, t1, imm, 3);
        f.bin(BinOp::Add, pc, pc, t1);
    };

    f.label(opLabels[vmJmp]);
    pcAdd();
    nextInst();

    f.label(opLabels[vmJnz]);
    loadReg(va, ra);
    {
        const int skip = f.newLabel();
        f.brcondi(CondOp::Eq, va, 0, skip);
        pcAdd();
        f.label(skip);
    }
    nextInst();

    f.label(opLabels[vmJz]);
    loadReg(va, ra);
    {
        const int skip = f.newLabel();
        f.brcondi(CondOp::Ne, va, 0, skip);
        pcAdd();
        f.label(skip);
    }
    nextInst();

    auto condJump = [&](VmOp vop, CondOp inverse) {
        f.label(opLabels[size_t(vop)]);
        loadReg(vb, rb);
        loadReg(vc, rc);
        const int skip = f.newLabel();
        f.brcond(inverse, vb, vc, skip);
        pcAdd();
        f.label(skip);
        nextInst();
    };
    condJump(vmJlt, CondOp::Ge);
    condJump(vmJge, CondOp::Lt);
    condJump(vmJeq, CondOp::Ne);
    condJump(vmJne, CondOp::Eq);

    // --- misc --------------------------------------------------------------
    f.label(opLabels[vmHashStep]);
    loadReg(va, ra);
    loadReg(vb, rb);
    f.bin(BinOp::Xor, va, va, vb);
    f.bini(BinOp::Mul, va, va, 0x01000193); // 32-bit FNV prime
    storeReg(ra, va);
    nextInst();

    f.label(opLabels[vmHalt]);
    loadReg(va, ra);
    f.ret(va);

    f.label(bad);
    // Undecodable bytecode or runaway pc: return length 0.
    f.movi(va, 0);
    f.ret(va);

    return pb.functionIndex("vm.run");
}

} // namespace svb::vm
