/**
 * @file
 * The guest bytecode VM used by the interpreted runtime tiers.
 *
 * Handlers for the Node- and Python-tier functions are expressed in
 * this bytecode and executed by an interpreter that itself runs as
 * guest machine code (emitted by emitVmInterpreter). Every bytecode
 * step costs tens of real guest instructions — loads for fetch,
 * register-file traffic, a branchy dispatch — which is precisely the
 * interpreter overhead the paper's Python results exhibit.
 *
 * Instruction format: 8 bytes, little endian:
 *   [op:1][a:1][b:1][c:1][imm:4 signed]
 * 32 virtual registers live in a memory-resident register file.
 */

#ifndef SVB_STACK_VM_HH
#define SVB_STACK_VM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gen/guestlib.hh"
#include "gen/ir.hh"

namespace svb::vm
{

/** Bytecode operations. */
enum VmOp : uint8_t
{
    vmHalt = 0,  ///< return r[a] as the response length
    vmLdi = 1,   ///< r[a] = imm
    vmMov = 2,   ///< r[a] = r[b]
    vmAdd = 3,   ///< r[a] = r[b] + r[c]
    vmSub = 4,
    vmMul = 5,
    vmAnd = 6,
    vmOr = 7,
    vmXor = 8,
    vmShl = 9,
    vmShr = 10,
    vmAddi = 11, ///< r[a] = r[b] + imm
    vmMuli = 12,
    vmAndi = 13,
    vmShri = 14,
    vmShli = 15,
    vmLd8 = 16,  ///< r[a] = heap64[r[b] + imm]
    vmSt8 = 17,  ///< heap64[r[b] + imm] = r[a]
    vmLd1 = 18,  ///< r[a] = heap8[r[b] + imm]
    vmSt1 = 19,
    vmInB = 20,  ///< r[a] = request byte at r[b]
    vmIn8 = 21,  ///< r[a] = request u64 at r[b]
    vmOutB = 22, ///< response byte at r[a] = r[b]
    vmOut8 = 23, ///< response u64 at r[a] = r[b]
    vmInLen = 24,///< r[a] = request length
    vmJmp = 25,  ///< pc += imm (instructions, relative to next)
    vmJnz = 26,  ///< if (r[a] != 0) pc += imm
    vmJz = 27,
    vmJlt = 28,  ///< if (r[b] < r[c]) signed
    vmJge = 29,
    vmJeq = 30,
    vmJne = 31,
    vmHashStep = 32, ///< r[a] = (r[a] ^ r[b]) * FNV_PRIME
};

constexpr unsigned numVmRegs = 32;
constexpr uint64_t instBytes = 8;

/** Offsets within the interpreter context block (see emitter). */
namespace ctxoff
{
constexpr int64_t reqBuf = 0;
constexpr int64_t reqLen = 8;
constexpr int64_t respBuf = 16;
constexpr int64_t heap = 24;
constexpr int64_t regs = 32; ///< 32 * 8 bytes follow
constexpr int64_t totalBytes = 32 + int64_t(numVmRegs) * 8;
} // namespace ctxoff

/**
 * Host-side bytecode assembler with label support.
 */
class VmAsm
{
  public:
    /** A label in instruction units. */
    int newLabel();
    void bind(int label);

    void emit(VmOp op, uint8_t a = 0, uint8_t b = 0, uint8_t c = 0,
              int32_t imm = 0);
    /** Branch forms take a label instead of a raw displacement. */
    void emitBranch(VmOp op, uint8_t a, uint8_t b, uint8_t c, int label);

    // Convenience wrappers.
    void ldi(uint8_t a, int32_t imm) { emit(vmLdi, a, 0, 0, imm); }
    void mov(uint8_t a, uint8_t b) { emit(vmMov, a, b); }
    void add(uint8_t a, uint8_t b, uint8_t c) { emit(vmAdd, a, b, c); }
    void sub(uint8_t a, uint8_t b, uint8_t c) { emit(vmSub, a, b, c); }
    void mul(uint8_t a, uint8_t b, uint8_t c) { emit(vmMul, a, b, c); }
    void xor_(uint8_t a, uint8_t b, uint8_t c) { emit(vmXor, a, b, c); }
    void and_(uint8_t a, uint8_t b, uint8_t c) { emit(vmAnd, a, b, c); }
    void or_(uint8_t a, uint8_t b, uint8_t c) { emit(vmOr, a, b, c); }
    void addi(uint8_t a, uint8_t b, int32_t i) { emit(vmAddi, a, b, 0, i); }
    void muli(uint8_t a, uint8_t b, int32_t i) { emit(vmMuli, a, b, 0, i); }
    void andi(uint8_t a, uint8_t b, int32_t i) { emit(vmAndi, a, b, 0, i); }
    void shri(uint8_t a, uint8_t b, int32_t i) { emit(vmShri, a, b, 0, i); }
    void shli(uint8_t a, uint8_t b, int32_t i) { emit(vmShli, a, b, 0, i); }
    void jmp(int l) { emitBranch(vmJmp, 0, 0, 0, l); }
    void jnz(uint8_t a, int l) { emitBranch(vmJnz, a, 0, 0, l); }
    void jz(uint8_t a, int l) { emitBranch(vmJz, a, 0, 0, l); }
    void jlt(uint8_t b, uint8_t c, int l) { emitBranch(vmJlt, 0, b, c, l); }
    void jge(uint8_t b, uint8_t c, int l) { emitBranch(vmJge, 0, b, c, l); }
    void jeq(uint8_t b, uint8_t c, int l) { emitBranch(vmJeq, 0, b, c, l); }
    void jne(uint8_t b, uint8_t c, int l) { emitBranch(vmJne, 0, b, c, l); }
    void halt(uint8_t len_reg) { emit(vmHalt, len_reg); }

    /** Resolve labels and return the finished bytecode. */
    std::vector<uint8_t> finish();

  private:
    struct Fixup
    {
        size_t instIndex;
        int label;
    };
    std::vector<uint8_t> code;
    std::vector<int64_t> labels;
    std::vector<Fixup> fixups;
};

/**
 * Emit the interpreter into @p pb.
 *
 * Guest signature: respLen = vmRun(codePtr, codeLenInsts, ctxPtr)
 * where ctxPtr points at a ctxoff-formatted block.
 *
 * @return the function index of vmRun
 */
int emitVmInterpreter(gen::ProgramBuilder &pb, const gen::GuestLib &lib);

} // namespace svb::vm

#endif // SVB_STACK_VM_HH
