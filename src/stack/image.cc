#include "image.hh"

#include <map>

#include "sim/logging.hh"

namespace svb
{

namespace
{

/** Calibrated total compressed sizes, MB: {x86, riscv}. */
struct Totals
{
    double x86;
    double riscv;
};

const std::map<std::string, Totals> &
gpourTotals()
{
    static const std::map<std::string, Totals> totals = {
        {"fibonacci-go", {8.39, 7.76}},
        {"fibonacci-python", {99.40, 132.62}},
        {"fibonacci-nodejs", {58.43, 35.16}},
        {"aes-go", {8.67, 8.04}},
        {"aes-python", {99.45, 132.67}},
        {"aes-nodejs", {57.11, 35.42}},
        {"auth-go", {8.67, 8.04}},
        {"auth-python", {99.40, 132.62}},
        {"auth-nodejs", {70.50, 48.81}},
        {"productcatalog-go", {10.81, 10.33}},
        {"shipping-go", {10.80, 10.30}},
        {"rec/service-P&G", {108.09, 114.68}},
        {"emailservice-P", {107.70, 114.46}},
        {"currency-nodejs", {60.12, 38.44}},
        {"payment-nodejs", {59.04, 80.64}},
        {"geo", {8.17, 7.76}},
        {"recommendation", {8.14, 7.74}},
        {"user", {8.12, 7.73}},
        {"reservation", {8.18, 7.79}},
        {"rate", {8.18, 7.79}},
        {"profile", {8.19, 7.79}},
    };
    return totals;
}

/** Natheesan publishes RISC-V images only (Table 4.5). */
const std::map<std::string, double> &
natheesanTotals()
{
    static const std::map<std::string, double> totals = {
        {"fibonacci-go", 6.72},
        {"fibonacci-python", 299.56},
        {"fibonacci-nodejs", 107.74},
        {"aes-go", 6.95},
        {"aes-python", 299.62},
        {"aes-nodejs", 107.81},
        {"auth-go", 6.95},
        {"auth-python", 299.57},
        {"auth-nodejs", 121.21},
        {"productcatalog-go", 26.15},
        {"shipping-go", 26.14},
        {"rec/service-P&G", 401.46},
        {"emailservice-P", 313.06},
        {"currency-nodejs", 58.16},
        {"payment-nodejs", 57.07},
    };
    return totals;
}

/** Nominal layer sizes below the app layer, per tier and ISA. */
ImageBreakdown
nominalLayers(RuntimeTier tier, IsaId isa, RegistryProfile profile)
{
    ImageBreakdown b;
    const bool riscv = isa == IsaId::Riscv;
    if (profile == RegistryProfile::Natheesan) {
        // Stock full-fat base images.
        b.baseOsMb = 5.0;
        switch (tier) {
          case RuntimeTier::Go: b.runtimeMb = 1.2; b.libsMb = 0.4; break;
          case RuntimeTier::Node: b.runtimeMb = 78.0; b.libsMb = 20.0; break;
          case RuntimeTier::Python: b.runtimeMb = 210.0; b.libsMb = 80.0; break;
        }
        return b;
    }
    b.baseOsMb = riscv ? 2.30 : 2.50;
    switch (tier) {
      case RuntimeTier::Go:
        b.runtimeMb = riscv ? 4.50 : 4.80;
        b.libsMb = 0.60;
        break;
      case RuntimeTier::Node:
        b.runtimeMb = riscv ? 25.0 : 44.0;
        b.libsMb = riscv ? 5.0 : 8.0;
        break;
      case RuntimeTier::Python:
        b.runtimeMb = riscv ? 95.0 : 72.0;
        b.libsMb = riscv ? 30.0 : 24.0;
        break;
    }
    return b;
}

/** Fit the app layer so the stack sums to the calibrated total. */
ImageBreakdown
fitBreakdown(double total, RuntimeTier tier, IsaId isa,
             RegistryProfile profile)
{
    ImageBreakdown b = nominalLayers(tier, isa, profile);
    double app = total - b.totalMb();
    if (app < 0.05) {
        // Slimmer-than-nominal runtime build: shrink the runtime/libs
        // layers proportionally and keep a token app layer.
        const double scale = (total - b.baseOsMb - 0.05) /
                             (b.runtimeMb + b.libsMb);
        b.runtimeMb *= scale;
        b.libsMb *= scale;
        app = 0.05;
    }
    b.appMb = app;
    return b;
}

} // namespace

std::optional<ImageBreakdown>
containerImage(const FunctionSpec &spec, IsaId isa,
               RegistryProfile profile)
{
    if (profile == RegistryProfile::Natheesan) {
        if (isa != IsaId::Riscv)
            return std::nullopt; // RISC-V-only registry
        auto it = natheesanTotals().find(spec.name);
        if (it == natheesanTotals().end())
            return std::nullopt; // no runnable hotel images (MongoDB)
        return fitBreakdown(it->second, spec.tier, isa, profile);
    }

    auto it = gpourTotals().find(spec.name);
    if (it == gpourTotals().end())
        return std::nullopt;
    const double total =
        isa == IsaId::Riscv ? it->second.riscv : it->second.x86;
    return fitBreakdown(total, spec.tier, isa, profile);
}

} // namespace svb
