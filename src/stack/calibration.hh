/**
 * @file
 * Calibration constants for the synthetic serverless software stack.
 *
 * The paper measures real vSwarm containers (Go / NodeJS / Python
 * runtimes on Ubuntu images that differ per ISA). We rebuild that
 * stack synthetically; this header is the single place where the
 * synthetic layers' footprints and instruction budgets are set so
 * that the measured regime matches the paper's *shape*:
 *
 *  - Go containers have the smallest runtimes: tiny eager init, no
 *    interpreter, lean per-request wrappers.
 *  - NodeJS interprets the handler until a tiered JIT kicks in, so
 *    warm invocations run the compiled handler (~50% faster warm,
 *    Fig 4.4).
 *  - Python always interprets and performs a large lazy module-import
 *    on the first request (long cold starts, Figs 4.4/4.12).
 *  - The CX86 ("x86") images carry heavier base layers than the
 *    hand-ported RISC-V ones, exactly as the thesis found its x86
 *    containers executed far more instructions than its lean RISC-V
 *    ports (Fig 4.16). The multipliers below encode that observation.
 *
 * All sizes are scaled down ~4-10x from the paper's absolute cycle
 * counts so the whole evaluation reruns in minutes; EXPERIMENTS.md
 * records measured-vs-paper values.
 */

#ifndef SVB_STACK_CALIBRATION_HH
#define SVB_STACK_CALIBRATION_HH

#include <cstdint>

#include "isa/isa_info.hh"

namespace svb
{

/** The three vSwarm runtime tiers we model (Table 3.2). */
enum class RuntimeTier { Go, Node, Python };

/** @return printable tier name ("go", "nodejs", "python"). */
const char *tierName(RuntimeTier tier);

/**
 * Per-tier, per-ISA stack calibration.
 *
 * The runtime's code/data footprint is modelled as *layer chains*:
 * distinct generated guest functions, each with a private data slab.
 * Wrapper layers run on every request (transport, middleware,
 * (de)serialisation); init layers run once, on the first request
 * (module loading); profiling layers run only while the Node tier
 * still interprets (JIT warm-up bookkeeping). Working sets are sized
 * so the steady state exceeds the L2, as the real runtimes' do.
 */
struct TierParams
{
    /** Bytes touched by eager runtime init at container boot. */
    uint64_t preMainTouchBytes;
    /** ALU iterations burned by eager init. */
    uint64_t preMainAluIters;

    /** Per-request middleware layer chain. */
    uint64_t wrapperLayers;
    uint64_t wrapperSlabBytes;

    /** First-request module-import layer chain. */
    uint64_t initLayers;
    uint64_t initSlabBytes;

    /** Extra layers run while the Node tier interprets (profiling). */
    uint64_t profilingLayers;

    /** Arithmetic ops unrolled in each layer body (code footprint). */
    uint64_t layerUnroll;

    /** Extra ALU iterations per request / at init. */
    uint64_t wrapperAluIters;
    uint64_t lazyInitAluIters;

    /** Requests interpreted before the tiered JIT takes over (Node). */
    int jitThreshold;
};

/** @return the calibration for @p tier on @p isa. */
TierParams tierParams(RuntimeTier tier, IsaId isa);

namespace calib
{

/** Gap between consecutive layer slabs (avoids set aliasing). */
constexpr uint64_t slabStagger = 64;

/** Heap given to the database containers (bytes). */
constexpr uint64_t dbHeapBytes = 24 * 1024 * 1024;

/** Heap given to the memcached container (bytes). */
constexpr uint64_t memcachedHeapBytes = 4 * 1024 * 1024;

/** Number of records seeded into the hotel database. */
constexpr uint64_t hotelDbRecords = 512;

/** Value payload size for hotel database records (bytes). */
constexpr uint64_t hotelValueBytes = 160;

/** Cassandra LSM shape: memtable entries and SSTable levels. */
constexpr uint64_t cassMemtableEntries = 48;
constexpr uint64_t cassLevels = 3;
/**
 * Bytes of index/bloom/page traffic touched per Cassandra level probe
 * (read amplification + JVM page-cache churn). Sized so each GET's
 * working set exceeds the L2, which is what makes the hotel functions
 * an order of magnitude heavier than the standalone ones (Fig 4.5).
 */
constexpr uint64_t cassProbeBytes = 512 * 1024;
/** Mongo per-get index traffic (hash index: much lighter). */
constexpr uint64_t mongoProbeBytes = 24 * 1024;

/** Mongo-like store: two-level index fanout. */
constexpr uint64_t mongoIndexFanout = 32;

/** Cassandra boot-time write amplification vs Mongo (Fig 4.20 cold). */
constexpr uint64_t cassBootTouchBytes = 12 * 1024 * 1024;
constexpr uint64_t mongoBootTouchBytes = 2 * 1024 * 1024;
constexpr uint64_t mariaBootTouchBytes = 4 * 1024 * 1024;
constexpr uint64_t memcachedBootTouchBytes = 256 * 1024;

/** Profiles fetched by the hotel 'profile' function per request. */
constexpr uint64_t profileFanout = 6;

/** Availability days checked by the hotel 'reservation' function. */
constexpr uint64_t reservationChecks = 4;

/** Rate plans fetched by the hotel 'rate' function. */
constexpr uint64_t rateChecks = 5;

/**
 * Database/memcached client connection setup, paid once on the first
 * request (cold): session handshake, driver initialisation, connection
 * pools. This is the dominant cold-vs-warm differentiator of the
 * hotel functions (Fig 4.5 / 4.19).
 */
constexpr uint64_t dbConnectLayers = 64;
constexpr uint64_t dbConnectSlabBytes = 32 * 1024;
constexpr uint64_t mcConnectLayers = 16;
constexpr uint64_t mcConnectSlabBytes = 16 * 1024;

} // namespace calib

} // namespace svb

#endif // SVB_STACK_CALIBRATION_HH
