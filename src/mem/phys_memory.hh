/**
 * @file
 * Guest physical memory.
 *
 * A flat little-endian byte array. Functional data always lives here;
 * the cache models are tag-only timing structures (see cache.hh), so
 * correctness never depends on cache state.
 */

#ifndef SVB_MEM_PHYS_MEMORY_HH
#define SVB_MEM_PHYS_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace svb
{

/**
 * The guest's physical DRAM contents.
 */
class PhysMemory : public Serializable
{
  public:
    /** @param size_bytes capacity; accesses beyond it are a bug */
    explicit PhysMemory(size_t size_bytes);

    size_t size() const { return mem.size(); }

    /** Read @p len bytes at @p addr into @p dst. */
    void readBytes(Addr addr, void *dst, size_t len) const;

    /** Write @p len bytes from @p src at @p addr. */
    void writeBytes(Addr addr, const void *src, size_t len);

    /** Read a little-endian integer of @p len (1/2/4/8) bytes. */
    uint64_t read(Addr addr, unsigned len) const;

    /** Write the low @p len bytes of @p value at @p addr. */
    void write(Addr addr, uint64_t value, unsigned len);

    uint8_t read8(Addr a) const { return uint8_t(read(a, 1)); }
    uint16_t read16(Addr a) const { return uint16_t(read(a, 2)); }
    uint32_t read32(Addr a) const { return uint32_t(read(a, 4)); }
    uint64_t read64(Addr a) const { return read(a, 8); }
    void write8(Addr a, uint8_t v) { write(a, v, 1); }
    void write16(Addr a, uint16_t v) { write(a, v, 2); }
    void write32(Addr a, uint32_t v) { write(a, v, 4); }
    void write64(Addr a, uint64_t v) { write(a, v, 8); }

    /** Zero-fill a range. */
    void clearRange(Addr addr, size_t len);

    /** Direct pointer for bulk loading (loader use only). */
    uint8_t *data() { return mem.data(); }
    const uint8_t *data() const { return mem.data(); }

    void serializeState(const std::string &prefix,
                        Checkpoint &cp) const override;
    void unserializeState(const std::string &prefix,
                          const Checkpoint &cp) override;

  private:
    std::vector<uint8_t> mem;
};

} // namespace svb

#endif // SVB_MEM_PHYS_MEMORY_HH
