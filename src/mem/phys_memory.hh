/**
 * @file
 * Guest physical memory.
 *
 * A flat little-endian byte array. Functional data always lives here;
 * the cache models are tag-only timing structures (see cache.hh), so
 * correctness never depends on cache state.
 *
 * Checkpoints are page-granular (format v2): a table of content-hashed
 * 4 KiB pages with in-image deduplication, instead of a flat dump.
 * Two extensions ride on the page table:
 *
 *  - Working-set recording: a lightweight touch hook on the access
 *    path records the set of pages the first (cold) request actually
 *    reaches; the CheckpointStore persists it in the checkpoint as
 *    the function's working set ("mem.ws").
 *
 *  - Lazy (REAP-style) restore: restoreLazy() eagerly copies in only
 *    the recorded working set and materialises every other snapshot
 *    page on first touch, from a shared refcounted PageImage
 *    (page_store.hh). Materialisation copies into this instance's
 *    private flat backing, so sharing is copy-on-write and a guest
 *    write is never visible to a sibling instance. The restored
 *    contents are byte-identical to a full restore by construction —
 *    every guest access flows through the accessors below.
 *
 * The touch hook costs one predictable branch per access when armed
 * and nothing at all otherwise (hooksActive gates it).
 */

#ifndef SVB_MEM_PHYS_MEMORY_HH
#define SVB_MEM_PHYS_MEMORY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "page_store.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace svb
{

class StatGroup;

/**
 * The guest's physical DRAM contents.
 */
class PhysMemory : public Serializable
{
  public:
    /** @param size_bytes capacity; accesses beyond it are a bug */
    explicit PhysMemory(size_t size_bytes);

    size_t size() const { return mem.size(); }

    /** Read @p len bytes at @p addr into @p dst. */
    void
    readBytes(Addr addr, void *dst, size_t len) const
    {
        if (hooksActive)
            touch(addr, len);
        readBytesRaw(addr, dst, len);
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    writeBytes(Addr addr, const void *src, size_t len)
    {
        if (hooksActive)
            touch(addr, len);
        writeBytesRaw(addr, src, len);
    }

    /** Read a little-endian integer of @p len (1/2/4/8) bytes. */
    uint64_t
    read(Addr addr, unsigned len) const
    {
        if (hooksActive)
            touch(addr, len);
        return readRaw(addr, len);
    }

    /** Write the low @p len bytes of @p value at @p addr. */
    void
    write(Addr addr, uint64_t value, unsigned len)
    {
        if (hooksActive)
            touch(addr, len);
        writeRaw(addr, value, len);
    }

    uint8_t read8(Addr a) const { return uint8_t(read(a, 1)); }
    uint16_t read16(Addr a) const { return uint16_t(read(a, 2)); }
    uint32_t read32(Addr a) const { return uint32_t(read(a, 4)); }
    uint64_t read64(Addr a) const { return read(a, 8); }
    void write8(Addr a, uint8_t v) { write(a, v, 1); }
    void write16(Addr a, uint16_t v) { write(a, v, 2); }
    void write32(Addr a, uint32_t v) { write(a, v, 4); }
    void write64(Addr a, uint64_t v) { write(a, v, 8); }

    /** Zero-fill a range. */
    void clearRange(Addr addr, size_t len);

    /** Direct pointer for bulk loading (loader use only). Forces any
     *  pending lazy pages in, since raw-pointer accesses bypass the
     *  materialise-on-touch hook. */
    uint8_t *data();
    const uint8_t *data() const;

    // --- working-set recording ---------------------------------------------
    /** Arm the touch hook: record every page accessed from now on. */
    void startTouchRecording();

    /** Disarm and return the sorted accessed-page indices. */
    std::vector<uint64_t> stopTouchRecording();

    bool touchRecording() const { return recording; }

    // --- lazy (working-set-aware) restore ----------------------------------
    /**
     * Restore from @p image instead of a full copy-in: zero the
     * backing, eagerly materialise the image's recorded working set,
     * and leave every other snapshot page to materialise on first
     * touch. @p image->memSize must match size().
     */
    void restoreLazy(std::shared_ptr<const PageImage> image);

    /** Copy in every still-pending snapshot page (serialisation and
     *  raw-pointer paths need the flat backing complete). */
    void materializeAll() const;

    /** Snapshot pages not yet materialised. */
    uint64_t pendingLazyPages() const { return remainingLazy; }

    // --- restore/page counters (host observability, cumulative) -----------
    /** Pages in the image of the last lazy restore. */
    uint64_t imagePages() const { return nImagePages; }
    /** Pages eagerly copied in by restoreLazy() working-set prefetch. */
    uint64_t prefetchedPages() const { return nPrefetched; }
    /** Pages materialised on demand after a lazy restore. */
    uint64_t lazyFaults() const { return nFaults; }
    /** Image pages currently resident (prefetched + faulted in) since
     *  the last lazy restore. */
    uint64_t residentImagePages() const { return nResident; }
    uint64_t lazyRestores() const { return nLazyRestores; }
    uint64_t fullRestores() const { return nFullRestores; }

    /** Register the counters above on a (host-only) stat group. */
    void attachStats(StatGroup &g);

    // --- checkpointing ------------------------------------------------------
    void serializeState(const std::string &prefix,
                        Checkpoint &cp) const override;
    void unserializeState(const std::string &prefix,
                          const Checkpoint &cp) override;

    /**
     * Structural validation of a checkpoint's memory image (both the
     * legacy flat-sparse v1 and the page-table v2 encodings): page
     * count, every page index/offset and every blob length are
     * checked against the recorded memory size, so a corrupt or
     * hostile file can never index out of bounds. Returns false and
     * fills @p err (warn-and-fail; the CheckpointStore treats an
     * invalid image as a corrupt file, i.e. a miss).
     */
    static bool validateCheckpoint(const std::string &prefix,
                                   const Checkpoint &cp, std::string *err);

    /**
     * Does @p cp carry any trace of a memory image under @p prefix?
     * Synthetic checkpoints (store-level tests, pure-scalar state)
     * legitimately have none and skip validation; once any memory
     * key is present the full validateCheckpoint() contract applies.
     */
    static bool hasMemoryImage(const std::string &prefix,
                               const Checkpoint &cp);

    /** Does @p cp carry a page-table (v2) memory image under
     *  @p prefix (the only format a PageImage can be built from)? */
    static bool hasPageTable(const std::string &prefix,
                             const Checkpoint &cp);

    /**
     * Build the shared PageImage of a (validated) v2 checkpoint,
     * interning every unique page into PageStore::global() — identical
     * pages across checkpoints dedup here. Includes the working set
     * when the checkpoint carries one (@c prefix+"ws").
     */
    static std::shared_ptr<const PageImage>
    buildImage(const std::string &prefix, const Checkpoint &cp);

  private:
    // Raw accessors: bounds-checked flat-array paths, no hook.
    void readBytesRaw(Addr addr, void *dst, size_t len) const;
    void writeBytesRaw(Addr addr, const void *src, size_t len);
    uint64_t readRaw(Addr addr, unsigned len) const;
    void writeRaw(Addr addr, uint64_t value, unsigned len);

    /** Per-access slow path: materialise pending pages and/or record
     *  touches over [addr, addr+len). */
    void touch(Addr addr, size_t len) const;

    /** Copy snapshot page @p page into the flat backing.
     *  @param prefetch working-set prefetch (vs on-demand fault) */
    void materializePage(uint64_t page, bool prefetch) const;

    /** Recompute hooksActive from the recording/lazy state. */
    void updateHooks() const;

    size_t numPages() const
    {
        return (mem.size() + snapshotPageBytes - 1) / snapshotPageBytes;
    }

    /** Mutable: const readers materialise lazily-restored pages. */
    mutable std::vector<uint8_t> mem;

    // Touch-recording state.
    bool recording = false;
    mutable std::vector<bool> touched;

    // Lazy-restore state.
    mutable std::shared_ptr<const PageImage> lazyImage;
    /** Per page: false while its snapshot copy is still pending. */
    mutable std::vector<bool> pageReady;
    mutable uint64_t remainingLazy = 0;

    /** Single gate on the accessor fast path. */
    mutable bool hooksActive = false;

    // Counters (cumulative across restores; host observability).
    mutable uint64_t nImagePages = 0;
    mutable uint64_t nPrefetched = 0;
    mutable uint64_t nFaults = 0;
    mutable uint64_t nResident = 0;
    mutable uint64_t nLazyRestores = 0;
    uint64_t nFullRestores = 0;
};

} // namespace svb

#endif // SVB_MEM_PHYS_MEMORY_HH
