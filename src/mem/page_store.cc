#include "page_store.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace svb
{

uint64_t
hashSnapshotPage(const uint8_t *data, size_t len)
{
    // FNV-1a 64-bit over the padded page: the zero-padding bytes of a
    // short tail page hash exactly like a stored full page, so hashes
    // computed from guest memory and from stored pages agree.
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < snapshotPageBytes; ++i) {
        h ^= i < len ? data[i] : 0;
        h *= 1099511628211ull;
    }
    return h;
}

PageStore &
PageStore::global()
{
    static PageStore store;
    return store;
}

std::shared_ptr<const SnapshotPage>
PageStore::intern(const uint8_t *data, size_t len)
{
    const uint64_t h = hashSnapshotPage(data, len);
    std::lock_guard<std::mutex> lk(mtx);
    std::vector<std::weak_ptr<const SnapshotPage>> &cands = index[h];
    // Scan live candidates, pruning expired ones as we go.
    for (size_t i = 0; i < cands.size();) {
        std::shared_ptr<const SnapshotPage> live = cands[i].lock();
        if (!live) {
            cands[i] = std::move(cands.back());
            cands.pop_back();
            continue;
        }
        // Same hash is not enough: verify the bytes, so a (however
        // unlikely) collision yields two distinct pages, not aliasing.
        if (std::memcmp(live->bytes.data(), data, len) == 0 &&
            (len == snapshotPageBytes ||
             std::count(live->bytes.begin() + long(len),
                        live->bytes.end(), 0) ==
                 long(snapshotPageBytes - len))) {
            ++hits;
            return live;
        }
        ++i;
    }
    auto page = std::make_shared<SnapshotPage>();
    page->hash = h;
    std::memcpy(page->bytes.data(), data, len);
    if (len < snapshotPageBytes)
        std::memset(page->bytes.data() + len, 0, snapshotPageBytes - len);
    cands.push_back(page);
    ++misses;
    return page;
}

uint64_t
PageStore::internHits() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return hits;
}

uint64_t
PageStore::internMisses() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return misses;
}

size_t
PageStore::liveUniquePages() const
{
    std::lock_guard<std::mutex> lk(mtx);
    size_t n = 0;
    for (const auto &[h, cands] : index)
        for (const auto &w : cands)
            n += w.expired() ? 0 : 1;
    return n;
}

void
PageStore::resetForTest()
{
    std::lock_guard<std::mutex> lk(mtx);
    index.clear();
    hits = 0;
    misses = 0;
}

bool
reapEnvEnabled()
{
    const char *env = std::getenv("SVBENCH_REAP");
    return env == nullptr || env[0] != '0';
}

} // namespace svb
