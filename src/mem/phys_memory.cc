#include "phys_memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace svb
{

PhysMemory::PhysMemory(size_t size_bytes) : mem(size_bytes, 0)
{
}

void
PhysMemory::readBytes(Addr addr, void *dst, size_t len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr,
               " len=", len);
    std::memcpy(dst, mem.data() + addr, len);
}

void
PhysMemory::writeBytes(Addr addr, const void *src, size_t len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr,
               " len=", len);
    std::memcpy(mem.data() + addr, src, len);
}

uint64_t
PhysMemory::read(Addr addr, unsigned len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr);
    uint64_t v = 0;
    for (unsigned i = 0; i < len; ++i)
        v |= uint64_t(mem[addr + i]) << (8 * i);
    return v;
}

void
PhysMemory::write(Addr addr, uint64_t value, unsigned len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr);
    for (unsigned i = 0; i < len; ++i)
        mem[addr + i] = uint8_t(value >> (8 * i));
}

void
PhysMemory::clearRange(Addr addr, size_t len)
{
    svb_assert(addr + len <= mem.size(), "phys clear OOB");
    std::memset(mem.data() + addr, 0, len);
}

void
PhysMemory::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    cp.setScalar(prefix + "size", mem.size());
    cp.setBlob(prefix + "contents", mem);
}

void
PhysMemory::unserializeState(const std::string &prefix,
                             const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "size") == mem.size(),
               "checkpoint memory size mismatch");
    const auto &blob = cp.getBlob(prefix + "contents");
    mem.assign(blob.begin(), blob.end());
}

} // namespace svb
