#include "phys_memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace svb
{

PhysMemory::PhysMemory(size_t size_bytes) : mem(size_bytes, 0)
{
}

void
PhysMemory::readBytes(Addr addr, void *dst, size_t len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr,
               " len=", len);
    std::memcpy(dst, mem.data() + addr, len);
}

void
PhysMemory::writeBytes(Addr addr, const void *src, size_t len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr,
               " len=", len);
    std::memcpy(mem.data() + addr, src, len);
}

uint64_t
PhysMemory::read(Addr addr, unsigned len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr);
    uint64_t v = 0;
    for (unsigned i = 0; i < len; ++i)
        v |= uint64_t(mem[addr + i]) << (8 * i);
    return v;
}

void
PhysMemory::write(Addr addr, uint64_t value, unsigned len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr);
    for (unsigned i = 0; i < len; ++i)
        mem[addr + i] = uint8_t(value >> (8 * i));
}

void
PhysMemory::clearRange(Addr addr, size_t len)
{
    svb_assert(addr + len <= mem.size(), "phys clear OOB");
    std::memset(mem.data() + addr, 0, len);
}

void
PhysMemory::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    // Sparse page encoding: the backing allocation is much larger than
    // the footprint the guest actually touches, so storing only the
    // non-zero 4 KiB pages keeps checkpoints small enough to hold one
    // per experiment tuple on disk. Format: repeated (u64 page index,
    // pageBytes raw bytes) records.
    constexpr size_t pageBytes = 4096;
    cp.setScalar(prefix + "size", mem.size());
    cp.setScalar(prefix + "pageBytes", pageBytes);
    BlobWriter w;
    uint64_t stored = 0;
    for (size_t page = 0; page * pageBytes < mem.size(); ++page) {
        const size_t off = page * pageBytes;
        const size_t len = std::min(pageBytes, mem.size() - off);
        bool nonzero = false;
        for (size_t i = 0; i < len && !nonzero; ++i)
            nonzero = mem[off + i] != 0;
        if (!nonzero)
            continue;
        w.putU64(page);
        for (size_t i = 0; i < len; ++i)
            w.putU8(mem[off + i]);
        ++stored;
    }
    cp.setScalar(prefix + "pages", stored);
    cp.setBlob(prefix + "data", w.take());
}

void
PhysMemory::unserializeState(const std::string &prefix,
                             const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "size") == mem.size(),
               "checkpoint memory size mismatch");
    const size_t pageBytes = cp.getScalar(prefix + "pageBytes");
    const uint64_t pages = cp.getScalar(prefix + "pages");
    std::fill(mem.begin(), mem.end(), 0);
    BlobReader r(cp.getBlob(prefix + "data"));
    for (uint64_t i = 0; i < pages; ++i) {
        const uint64_t page = r.getU64();
        const size_t off = size_t(page) * pageBytes;
        svb_assert(off < mem.size(), "checkpoint page index OOB");
        const size_t len = std::min(pageBytes, mem.size() - off);
        for (size_t b = 0; b < len; ++b)
            mem[off + b] = r.getU8();
    }
    svb_assert(r.done(), "checkpoint memory blob has trailing bytes");
}

} // namespace svb
