#include "phys_memory.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace svb
{

PhysMemory::PhysMemory(size_t size_bytes) : mem(size_bytes, 0)
{
}

// --- raw flat-array accessors ----------------------------------------------

void
PhysMemory::readBytesRaw(Addr addr, void *dst, size_t len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr,
               " len=", len);
    std::memcpy(dst, mem.data() + addr, len);
}

void
PhysMemory::writeBytesRaw(Addr addr, const void *src, size_t len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr,
               " len=", len);
    std::memcpy(mem.data() + addr, src, len);
}

uint64_t
PhysMemory::readRaw(Addr addr, unsigned len) const
{
    svb_assert(addr + len <= mem.size(), "phys read OOB: addr=", addr);
    uint64_t v = 0;
    for (unsigned i = 0; i < len; ++i)
        v |= uint64_t(mem[addr + i]) << (8 * i);
    return v;
}

void
PhysMemory::writeRaw(Addr addr, uint64_t value, unsigned len)
{
    svb_assert(addr + len <= mem.size(), "phys write OOB: addr=", addr);
    for (unsigned i = 0; i < len; ++i)
        mem[addr + i] = uint8_t(value >> (8 * i));
}

void
PhysMemory::clearRange(Addr addr, size_t len)
{
    if (hooksActive && len > 0)
        touch(addr, len);
    svb_assert(addr + len <= mem.size(), "phys clear OOB");
    std::memset(mem.data() + addr, 0, len);
}

uint8_t *
PhysMemory::data()
{
    materializeAll();
    return mem.data();
}

const uint8_t *
PhysMemory::data() const
{
    materializeAll();
    return mem.data();
}

// --- touch hook -------------------------------------------------------------

void
PhysMemory::updateHooks() const
{
    hooksActive = recording || remainingLazy > 0;
}

void
PhysMemory::touch(Addr addr, size_t len) const
{
    if (len == 0)
        return;
    // An OOB access still reaches the raw accessor's bounds assert;
    // the explicit clamps here only keep the bitmaps safe until then.
    const uint64_t p0 = addr / snapshotPageBytes;
    const uint64_t p1 = (addr + len - 1) / snapshotPageBytes;
    for (uint64_t p = p0; p <= p1; ++p) {
        if (remainingLazy > 0 && p < pageReady.size() && !pageReady[p])
            materializePage(p, /*prefetch=*/false);
        if (recording && p < touched.size() && !touched[p])
            touched[p] = true;
    }
}

void
PhysMemory::materializePage(uint64_t page, bool prefetch) const
{
    const auto it = lazyImage->pages.find(page);
    svb_assert(it != lazyImage->pages.end(),
               "materialise of a page absent from the image");
    const size_t off = size_t(page) * snapshotPageBytes;
    const size_t len = std::min(snapshotPageBytes, mem.size() - off);
    // Copy-on-write: the shared snapshot page is copied into this
    // instance's private backing; later guest writes land there.
    std::memcpy(mem.data() + off, it->second->bytes.data(), len);
    pageReady[page] = true;
    --remainingLazy;
    ++nResident;
    if (prefetch)
        ++nPrefetched;
    else
        ++nFaults;
    if (remainingLazy == 0)
        updateHooks();
}

void
PhysMemory::materializeAll() const
{
    if (remainingLazy == 0)
        return;
    for (const auto &[page, sp] : lazyImage->pages)
        if (!pageReady[page])
            materializePage(page, /*prefetch=*/false);
}

// --- working-set recording ---------------------------------------------------

void
PhysMemory::startTouchRecording()
{
    touched.assign(numPages(), false);
    recording = true;
    updateHooks();
}

std::vector<uint64_t>
PhysMemory::stopTouchRecording()
{
    std::vector<uint64_t> pages;
    for (uint64_t p = 0; p < touched.size(); ++p)
        if (touched[p])
            pages.push_back(p);
    recording = false;
    touched.clear();
    updateHooks();
    return pages;
}

// --- lazy restore -------------------------------------------------------------

void
PhysMemory::restoreLazy(std::shared_ptr<const PageImage> image)
{
    svb_assert(image != nullptr, "restoreLazy without an image");
    svb_assert(image->memSize == mem.size(),
               "page image memory size mismatch");
    std::fill(mem.begin(), mem.end(), 0);
    recording = false;
    touched.clear();
    lazyImage = std::move(image);
    // Pages absent from the image are all-zero, which the fill above
    // already produced: only snapshot pages stay pending.
    pageReady.assign(numPages(), true);
    remainingLazy = 0;
    for (const auto &[page, sp] : lazyImage->pages) {
        svb_assert(page < pageReady.size(), "image page index OOB");
        pageReady[page] = false;
        ++remainingLazy;
    }
    nImagePages = lazyImage->pages.size();
    nResident = 0;
    ++nLazyRestores;
    // Eager part: the recorded cold-request working set.
    for (uint64_t p : lazyImage->workingSet)
        if (p < pageReady.size() && !pageReady[p])
            materializePage(p, /*prefetch=*/true);
    updateHooks();
}

void
PhysMemory::attachStats(StatGroup &g)
{
    g.addFormula("imagePages",
                 "snapshot pages in the last restored image (host work)",
                 [this] { return double(nImagePages); });
    g.addFormula("prefetchedPages",
                 "pages eagerly restored from the working set (host work)",
                 [this] { return double(nPrefetched); });
    g.addFormula("lazyFaults",
                 "pages materialised on first touch (host work)",
                 [this] { return double(nFaults); });
    g.addFormula("residentPages",
                 "image pages resident since the last lazy restore",
                 [this] { return double(nResident); });
    g.addFormula("lazyRestores", "working-set-aware restores (host work)",
                 [this] { return double(nLazyRestores); });
    g.addFormula("fullRestores", "full-image restores (host work)",
                 [this] { return double(nFullRestores); });
}

// --- checkpointing ------------------------------------------------------------

namespace
{

/** Little-endian u64 at @p p (validation-path reads). */
uint64_t
leU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

} // namespace

void
PhysMemory::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    // Page-table encoding (format v2): guest memory becomes a table
    // of content-hashed 4 KiB pages with in-image deduplication —
    // (page index, unique page id) mappings over a pool of unique
    // page payloads. Zero pages are omitted entirely (the backing
    // allocation is much larger than the touched footprint), and the
    // unique-page pool is what the CheckpointStore's shared PageImage
    // and the cross-instance CoW page store are built from.
    materializeAll();
    static const std::array<uint8_t, snapshotPageBytes> zeroPage{};
    cp.setScalar(prefix + "format", 2);
    cp.setScalar(prefix + "size", mem.size());
    cp.setScalar(prefix + "pageBytes", snapshotPageBytes);

    BlobWriter table;
    std::vector<uint8_t> pagedata;
    // In-image dedup by content hash, verified by memcmp so a hash
    // collision still yields two distinct unique pages.
    std::unordered_map<uint64_t, std::vector<uint64_t>> byHash;
    uint64_t nMappings = 0;
    uint64_t nUnique = 0;
    std::array<uint8_t, snapshotPageBytes> padded;
    for (size_t page = 0; page * snapshotPageBytes < mem.size(); ++page) {
        const size_t off = page * snapshotPageBytes;
        const size_t len = std::min(snapshotPageBytes, mem.size() - off);
        // Zero-page detection via word-wise memcmp against a static
        // zero page (not a byte-at-a-time scan): this runs over every
        // page of every checkpoint save.
        if (std::memcmp(mem.data() + off, zeroPage.data(), len) == 0)
            continue;
        const uint8_t *payload = mem.data() + off;
        if (len < snapshotPageBytes) {
            // Short tail page: compare and store zero-padded, so its
            // hash and bytes behave exactly like a full page.
            std::memcpy(padded.data(), payload, len);
            std::memset(padded.data() + len, 0, snapshotPageBytes - len);
            payload = padded.data();
        }
        const uint64_t h = hashSnapshotPage(payload, snapshotPageBytes);
        uint64_t uid = ~uint64_t(0);
        for (uint64_t cand : byHash[h]) {
            if (std::memcmp(pagedata.data() + cand * snapshotPageBytes,
                            payload, snapshotPageBytes) == 0) {
                uid = cand;
                break;
            }
        }
        if (uid == ~uint64_t(0)) {
            uid = nUnique++;
            pagedata.insert(pagedata.end(), payload,
                            payload + snapshotPageBytes);
            byHash[h].push_back(uid);
        }
        table.putU64(page);
        table.putU64(uid);
        ++nMappings;
    }
    cp.setScalar(prefix + "pages", nMappings);
    cp.setScalar(prefix + "uniquePages", nUnique);
    cp.setBlob(prefix + "table", table.take());
    cp.setBlob(prefix + "pagedata", std::move(pagedata));
}

void
PhysMemory::unserializeState(const std::string &prefix, const Checkpoint &cp)
{
    // Defence in depth: the CheckpointStore pre-validates disk images
    // and treats a bad one as a miss; reaching here with one is fatal.
    std::string err;
    if (!validateCheckpoint(prefix, cp, &err))
        svb_fatal("refusing corrupt checkpoint memory image: ", err);
    svb_assert(cp.getScalar(prefix + "size") == mem.size(),
               "checkpoint memory size mismatch");

    // A full restore replaces the contents wholesale: any pending
    // lazy pages and any in-flight touch recording die with them.
    lazyImage.reset();
    pageReady.clear();
    remainingLazy = 0;
    recording = false;
    touched.clear();
    updateHooks();

    std::fill(mem.begin(), mem.end(), 0);
    if (cp.hasScalar(prefix + "format")) {
        // v2: page table over the unique-page pool.
        const std::vector<uint8_t> &pd = cp.getBlob(prefix + "pagedata");
        BlobReader r(cp.getBlob(prefix + "table"));
        while (!r.done()) {
            const uint64_t page = r.getU64();
            const uint64_t uid = r.getU64();
            const size_t off = size_t(page) * snapshotPageBytes;
            const size_t len =
                std::min(snapshotPageBytes, mem.size() - off);
            std::memcpy(mem.data() + off,
                        pd.data() + size_t(uid) * snapshotPageBytes, len);
        }
    } else {
        // Legacy v1: repeated (page index, raw bytes) records.
        const size_t pageBytes = cp.getScalar(prefix + "pageBytes");
        const uint64_t pages = cp.getScalar(prefix + "pages");
        BlobReader r(cp.getBlob(prefix + "data"));
        for (uint64_t i = 0; i < pages; ++i) {
            const uint64_t page = r.getU64();
            const size_t off = size_t(page) * pageBytes;
            const size_t len = std::min(pageBytes, mem.size() - off);
            for (size_t b = 0; b < len; ++b)
                mem[off + b] = r.getU8();
        }
        svb_assert(r.done(), "checkpoint memory blob has trailing bytes");
    }
    ++nFullRestores;
}

bool
PhysMemory::validateCheckpoint(const std::string &prefix,
                               const Checkpoint &cp, std::string *err)
{
    const auto fail = [&](const std::string &msg) {
        if (err != nullptr)
            *err = prefix + ": " + msg;
        return false;
    };
    for (const char *key : {"size", "pageBytes", "pages"}) {
        if (!cp.hasScalar(prefix + key))
            return fail(std::string(key) + " scalar missing");
    }
    const uint64_t size = cp.getScalar(prefix + "size");
    if (size == 0)
        return fail("zero memory size");
    const uint64_t pageBytes = cp.getScalar(prefix + "pageBytes");
    if (pageBytes != snapshotPageBytes)
        return fail("unsupported pageBytes " + std::to_string(pageBytes));
    const uint64_t nPages = (size + pageBytes - 1) / pageBytes;
    const uint64_t pages = cp.getScalar(prefix + "pages");
    if (pages > nPages)
        return fail("page count " + std::to_string(pages) +
                    " exceeds the " + std::to_string(nPages) +
                    "-page memory");

    if (cp.hasScalar(prefix + "format")) {
        // --- v2: page table + unique-page pool -------------------------
        if (cp.getScalar(prefix + "format") != 2)
            return fail("unknown format");
        if (!cp.hasScalar(prefix + "uniquePages"))
            return fail("uniquePages scalar missing");
        if (!cp.hasBlob(prefix + "table") ||
            !cp.hasBlob(prefix + "pagedata"))
            return fail("page-table blobs missing");
        const uint64_t nUnique = cp.getScalar(prefix + "uniquePages");
        const std::vector<uint8_t> &table = cp.getBlob(prefix + "table");
        const std::vector<uint8_t> &pd = cp.getBlob(prefix + "pagedata");
        if (table.size() != pages * 16)
            return fail("page-table length mismatch");
        if (nUnique > pages || pd.size() != nUnique * snapshotPageBytes)
            return fail("unique-page pool length mismatch");
        uint64_t prev = ~uint64_t(0);
        for (uint64_t i = 0; i < pages; ++i) {
            const uint64_t page = leU64(table.data() + i * 16);
            const uint64_t uid = leU64(table.data() + i * 16 + 8);
            if (page >= nPages)
                return fail("page index OOB");
            if (prev != ~uint64_t(0) && page <= prev)
                return fail("page table not strictly increasing");
            if (uid >= nUnique)
                return fail("unique page id OOB");
            prev = page;
        }
    } else {
        // --- legacy v1: repeated (index, raw bytes) records ------------
        if (!cp.hasBlob(prefix + "data"))
            return fail("data blob missing");
        const std::vector<uint8_t> &blob = cp.getBlob(prefix + "data");
        size_t pos = 0;
        for (uint64_t i = 0; i < pages; ++i) {
            if (pos + 8 > blob.size())
                return fail("truncated page record");
            const uint64_t page = leU64(blob.data() + pos);
            pos += 8;
            if (page >= nPages)
                return fail("page index OOB");
            const size_t len = std::min<size_t>(
                pageBytes, size_t(size) - size_t(page) * pageBytes);
            if (pos + len > blob.size())
                return fail("truncated page payload");
            pos += len;
        }
        if (pos != blob.size())
            return fail("trailing bytes in memory blob");
    }

    if (cp.hasBlob(prefix + "ws")) {
        const std::vector<uint8_t> &ws = cp.getBlob(prefix + "ws");
        if (ws.size() % 8 != 0)
            return fail("working-set blob length not a multiple of 8");
        uint64_t prev = ~uint64_t(0);
        for (size_t i = 0; i < ws.size(); i += 8) {
            const uint64_t page = leU64(ws.data() + i);
            if (page >= nPages)
                return fail("working-set page index OOB");
            if (prev != ~uint64_t(0) && page <= prev)
                return fail("working set not strictly increasing");
            prev = page;
        }
    }
    return true;
}

bool
PhysMemory::hasMemoryImage(const std::string &prefix, const Checkpoint &cp)
{
    for (const char *key :
         {"size", "pageBytes", "pages", "format", "uniquePages"})
        if (cp.hasScalar(prefix + key))
            return true;
    for (const char *key : {"data", "table", "pagedata", "ws"})
        if (cp.hasBlob(prefix + key))
            return true;
    return false;
}

bool
PhysMemory::hasPageTable(const std::string &prefix, const Checkpoint &cp)
{
    return cp.hasScalar(prefix + "format") &&
           cp.getScalar(prefix + "format") == 2 &&
           cp.hasScalar(prefix + "uniquePages") &&
           cp.hasBlob(prefix + "table") && cp.hasBlob(prefix + "pagedata");
}

std::shared_ptr<const PageImage>
PhysMemory::buildImage(const std::string &prefix, const Checkpoint &cp)
{
    svb_assert(hasPageTable(prefix, cp),
               "buildImage of a checkpoint without a page table");
    auto img = std::make_shared<PageImage>();
    img->memSize = size_t(cp.getScalar(prefix + "size"));
    const std::vector<uint8_t> &pd = cp.getBlob(prefix + "pagedata");
    const uint64_t nUnique = cp.getScalar(prefix + "uniquePages");
    // Intern every unique page once: identical pages across images
    // (and across functions) dedup into the global CoW store here.
    std::vector<std::shared_ptr<const SnapshotPage>> uniq(nUnique);
    for (uint64_t u = 0; u < nUnique; ++u)
        uniq[u] = PageStore::global().intern(
            pd.data() + size_t(u) * snapshotPageBytes, snapshotPageBytes);
    BlobReader r(cp.getBlob(prefix + "table"));
    while (!r.done()) {
        const uint64_t page = r.getU64();
        const uint64_t uid = r.getU64();
        img->pages.emplace(page, uniq[uid]);
    }
    if (cp.hasBlob(prefix + "ws")) {
        BlobReader w(cp.getBlob(prefix + "ws"));
        while (!w.done())
            img->workingSet.push_back(w.getU64());
    }
    return img;
}

} // namespace svb
