/**
 * @file
 * Set-associative tag-only cache timing model.
 *
 * Caches here are "dataless": they track tags, LRU order and dirty
 * bits to produce hit/miss/writeback timing and statistics, while the
 * functional data always lives in PhysMemory. This is the classic
 * trace-style cache model and keeps functional correctness decoupled
 * from the timing model.
 *
 * Thread-safety: instance-scoped, like all of mem/ (PhysMemory,
 * Cache, DramCtrl, hierarchies). Every object belongs to exactly one
 * System; nothing in this layer is global, so concurrent experiment
 * workers (core/parallel.hh) need no locks here.
 */

#ifndef SVB_MEM_CACHE_HH
#define SVB_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace svb
{

/** Interface of anything a cache can miss to. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Timed access used on miss fill / writeback.
     *
     * @param line_addr line-aligned physical address
     * @param is_write  true for writebacks
     * @param now       cycle at which the access starts
     * @return total latency in cycles
     */
    virtual Cycles access(Addr line_addr, bool is_write, Cycles now) = 0;

    /** Untimed tag update for functional warming. */
    virtual void warm(Addr line_addr, bool is_write) = 0;
};

/** Cache geometry and latency parameters. */
struct CacheParams
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineSize = 64;
    Cycles hitLatency = 2;
    /**
     * Next-line prefetch on miss (a design-space axis from the
     * thesis' future work). The prefetch fill happens off the demand
     * path: it occupies downstream bandwidth but adds no latency to
     * the triggering access.
     */
    bool nextLinePrefetch = false;
};

/**
 * One level of tag-only set-associative cache with true-LRU
 * replacement and writeback policy.
 */
class Cache : public MemLevel
{
  public:
    /**
     * @param params geometry/latency
     * @param next   the level this cache misses to (not owned)
     * @param stats  parent stat group; a child named params.name is added
     */
    Cache(const CacheParams &params, MemLevel &next, StatGroup &stats);

    /** Timed lookup; fills on miss, writes back dirty victims. */
    Cycles access(Addr addr, bool is_write, Cycles now) override;

    /** Untimed functional-warming lookup (updates tags and stats). */
    void warm(Addr addr, bool is_write) override;

    /**
     * Invalidate a line if present (coherence snoop).
     * @return true when the line was present
     */
    bool invalidate(Addr line_addr);

    /** Drop every line (cold-start modelling). */
    void flushAll();

    /** @return true when the line is currently resident. */
    bool contains(Addr line_addr) const;

    uint64_t hits() const { return statHits.value(); }
    uint64_t misses() const { return statMisses.value(); }
    const CacheParams &params() const { return p; }

    /** Serialize tag/LRU/dirty warm state (checkpoint-once pipeline). */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Restore warm state saved on a cache of identical geometry. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0; ///< LRU timestamp
    };

    /** Look up a line; returns nullptr on miss. */
    Line *findLine(Addr line_addr);

    /** Choose a victim way in the set containing @p line_addr. */
    Line &victimLine(Addr line_addr);

    Addr lineAddr(Addr addr) const { return addr & ~Addr(p.lineSize - 1); }
    size_t setIndex(Addr line_addr) const;

    CacheParams p;
    MemLevel &next;
    std::vector<Line> lines;
    size_t numSets;
    uint64_t useCounter = 0;

    Scalar &statHits;
    Scalar &statMisses;
    Scalar &statEvictions;
    Scalar &statWritebacks;
    Scalar &statInvalidations;
    Scalar &statPrefetches;
};

/** Terminal MemLevel backed by a DRAM controller (see dram.hh). */
class DramCtrl;

} // namespace svb

#endif // SVB_MEM_CACHE_HH
