#include "hierarchy.hh"

namespace svb
{

void
CoherenceBus::writeSnoop(int writer_id, Addr line_addr)
{
    for (CoreMemSystem *core : cores) {
        if (core->coreId() != writer_id)
            core->snoopInvalidate(line_addr);
    }
}

CoreMemSystem::CoreMemSystem(int core_id, const CoreMemParams &params,
                             DramCtrl &dram, CoherenceBus &bus_,
                             StatGroup &stats)
    : id(core_id), bus(bus_), lineSize(params.l1d.lineSize)
{
    StatGroup &g = stats.childGroup("core" + std::to_string(core_id));
    l2Cache = std::make_unique<Cache>(params.l2, dram, g);
    l1iCache = std::make_unique<Cache>(params.l1i, *l2Cache, g);
    l1dCache = std::make_unique<Cache>(params.l1d, *l2Cache, g);
    bus.registerCore(this);
}

template <typename Fn>
void
CoreMemSystem::forEachLine(Addr addr, unsigned len, Fn &&fn)
{
    Addr first = addr & ~Addr(lineSize - 1);
    Addr last = (addr + (len ? len - 1 : 0)) & ~Addr(lineSize - 1);
    for (Addr line = first; line <= last; line += lineSize)
        fn(line);
}

Cycles
CoreMemSystem::fetchAccess(Addr paddr, unsigned len, Cycles now)
{
    Cycles worst = 0;
    forEachLine(paddr, len, [&](Addr line) {
        worst = std::max(worst, l1iCache->access(line, false, now));
    });
    return worst;
}

Cycles
CoreMemSystem::dataAccess(Addr paddr, unsigned len, bool is_write,
                          Cycles now)
{
    Cycles worst = 0;
    forEachLine(paddr, len, [&](Addr line) {
        worst = std::max(worst, l1dCache->access(line, is_write, now));
        if (is_write)
            bus.writeSnoop(id, line);
    });
    return worst;
}

void
CoreMemSystem::warmFetch(Addr paddr, unsigned len)
{
    forEachLine(paddr, len, [&](Addr line) {
        l1iCache->warm(line, false);
    });
}

void
CoreMemSystem::warmData(Addr paddr, unsigned len, bool is_write)
{
    forEachLine(paddr, len, [&](Addr line) {
        l1dCache->warm(line, is_write);
        if (is_write)
            bus.writeSnoop(id, line);
    });
}

void
CoreMemSystem::snoopInvalidate(Addr line_addr)
{
    l1iCache->invalidate(line_addr);
    l1dCache->invalidate(line_addr);
    l2Cache->invalidate(line_addr);
}

void
CoreMemSystem::flushAll()
{
    l1iCache->flushAll();
    l1dCache->flushAll();
    l2Cache->flushAll();
}

void
CoreMemSystem::serializeState(const std::string &prefix,
                              Checkpoint &cp) const
{
    l1iCache->serializeState(prefix + "l1i.", cp);
    l1dCache->serializeState(prefix + "l1d.", cp);
    l2Cache->serializeState(prefix + "l2.", cp);
}

void
CoreMemSystem::unserializeState(const std::string &prefix,
                                const Checkpoint &cp)
{
    l1iCache->unserializeState(prefix + "l1i.", cp);
    l1dCache->unserializeState(prefix + "l1d.", cp);
    l2Cache->unserializeState(prefix + "l2.", cp);
}

} // namespace svb
