#include "cache.hh"

#include "sim/logging.hh"

namespace svb
{

Cache::Cache(const CacheParams &params, MemLevel &next_level,
             StatGroup &stats)
    : p(params), next(next_level),
      numSets(params.sizeBytes / (params.lineSize * params.assoc)),
      statHits(stats.childGroup(p.name).addScalar("hits", "cache hits")),
      statMisses(
          stats.childGroup(p.name).addScalar("misses", "cache misses")),
      statEvictions(
          stats.childGroup(p.name).addScalar("evictions", "lines evicted")),
      statWritebacks(stats.childGroup(p.name).addScalar(
          "writebacks", "dirty lines written back")),
      statInvalidations(stats.childGroup(p.name).addScalar(
          "invalidations", "lines invalidated by snoops")),
      statPrefetches(stats.childGroup(p.name).addScalar(
          "prefetches", "next-line prefetch fills"))
{
    svb_assert(numSets > 0 && (numSets & (numSets - 1)) == 0,
               p.name, ": number of sets must be a power of two");
    lines.resize(numSets * p.assoc);
    StatGroup &g = stats.childGroup(p.name);
    g.addFormula("missRate", "misses / (hits+misses)", [this]() {
        uint64_t total = statHits.value() + statMisses.value();
        return total ? double(statMisses.value()) / double(total) : 0.0;
    });
}

size_t
Cache::setIndex(Addr line_addr) const
{
    return size_t(line_addr / p.lineSize) & (numSets - 1);
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    Line *base = &lines[setIndex(line_addr) * p.assoc];
    for (uint32_t w = 0; w < p.assoc; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return &base[w];
    }
    return nullptr;
}

Cache::Line &
Cache::victimLine(Addr line_addr)
{
    Line *base = &lines[setIndex(line_addr) * p.assoc];
    Line *victim = base;
    for (uint32_t w = 0; w < p.assoc; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

Cycles
Cache::access(Addr addr, bool is_write, Cycles now)
{
    const Addr la = lineAddr(addr);
    if (Line *line = findLine(la)) {
        ++statHits;
        line->lastUse = ++useCounter;
        line->dirty |= is_write;
        return p.hitLatency;
    }

    ++statMisses;
    Cycles latency = p.hitLatency;

    Line &victim = victimLine(la);
    if (victim.valid) {
        ++statEvictions;
        if (victim.dirty) {
            ++statWritebacks;
            // Writeback happens off the critical path; charge the next
            // level's occupancy but not this access's latency.
            next.access(victim.tag, true, now + latency);
        }
    }
    latency += next.access(la, false, now + latency);

    victim.tag = la;
    victim.valid = true;
    victim.dirty = is_write;
    victim.lastUse = ++useCounter;

    if (p.nextLinePrefetch) {
        const Addr next_line = la + p.lineSize;
        if (findLine(next_line) == nullptr) {
            ++statPrefetches;
            Line &pf_victim = victimLine(next_line);
            if (pf_victim.valid) {
                ++statEvictions;
                if (pf_victim.dirty) {
                    ++statWritebacks;
                    next.access(pf_victim.tag, true, now + latency);
                }
            }
            next.access(next_line, false, now + latency);
            pf_victim.tag = next_line;
            pf_victim.valid = true;
            pf_victim.dirty = false;
            // Inserted below MRU so useless prefetches evict first.
            pf_victim.lastUse = useCounter;
        }
    }
    return latency;
}

void
Cache::warm(Addr addr, bool is_write)
{
    const Addr la = lineAddr(addr);
    if (Line *line = findLine(la)) {
        ++statHits;
        line->lastUse = ++useCounter;
        line->dirty |= is_write;
        return;
    }
    ++statMisses;
    Line &victim = victimLine(la);
    if (victim.valid) {
        ++statEvictions;
        if (victim.dirty) {
            ++statWritebacks;
            next.warm(victim.tag, true);
        }
    }
    next.warm(la, false);
    victim.tag = la;
    victim.valid = true;
    victim.dirty = is_write;
    victim.lastUse = ++useCounter;
}

bool
Cache::invalidate(Addr line_addr)
{
    if (Line *line = findLine(lineAddr(line_addr))) {
        line->valid = false;
        line->dirty = false;
        ++statInvalidations;
        return true;
    }
    return false;
}

void
Cache::flushAll()
{
    for (auto &line : lines)
        line = Line{};
}

bool
Cache::contains(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(
               line_addr & ~Addr(p.lineSize - 1)) != nullptr;
}

void
Cache::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    cp.setScalar(prefix + "lines", lines.size());
    cp.setScalar(prefix + "lineSize", p.lineSize);
    cp.setScalar(prefix + "assoc", p.assoc);
    cp.setScalar(prefix + "useCounter", useCounter);
    BlobWriter w;
    for (const Line &line : lines) {
        w.putU64(line.tag);
        w.putU64(line.lastUse);
        w.putU8(uint8_t((line.valid ? 1 : 0) | (line.dirty ? 2 : 0)));
    }
    cp.setBlob(prefix + "state", w.take());
}

void
Cache::unserializeState(const std::string &prefix, const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "lines") == lines.size() &&
                   cp.getScalar(prefix + "lineSize") == p.lineSize &&
                   cp.getScalar(prefix + "assoc") == p.assoc,
               "checkpoint cache geometry mismatch (", p.name, ")");
    useCounter = cp.getScalar(prefix + "useCounter");
    BlobReader r(cp.getBlob(prefix + "state"));
    for (Line &line : lines) {
        line.tag = r.getU64();
        line.lastUse = r.getU64();
        const uint8_t flags = r.getU8();
        line.valid = (flags & 1) != 0;
        line.dirty = (flags & 2) != 0;
    }
    svb_assert(r.done(), "checkpoint cache blob has trailing bytes");
}

} // namespace svb
