/**
 * @file
 * DRAM controller timing model.
 *
 * Models a single-channel DDR3-1600-style device (Table 4.1): per-bank
 * open-row tracking (row hits are cheap, row conflicts pay
 * precharge+activate) plus a channel busy window for queueing delay.
 */

#ifndef SVB_MEM_DRAM_HH
#define SVB_MEM_DRAM_HH

#include "cache.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace svb
{

/** DRAM timing parameters, in CPU cycles (1 GHz: 1 cycle == 1 ns). */
struct DramParams
{
    std::string name = "dram";
    uint32_t numBanks = 8;
    uint32_t rowBytes = 2048;      ///< row-buffer size per bank
    Cycles frontendLatency = 20;   ///< controller + bus hop
    Cycles rowHitLatency = 28;     ///< CAS only
    Cycles rowMissLatency = 76;    ///< precharge + activate + CAS
    Cycles burstCycles = 8;        ///< channel occupancy per 64B burst
};

/**
 * The memory controller at the bottom of the hierarchy.
 */
class DramCtrl : public MemLevel
{
  public:
    DramCtrl(const DramParams &params, StatGroup &stats);

    Cycles access(Addr line_addr, bool is_write, Cycles now) override;
    void warm(Addr line_addr, bool is_write) override;

    uint64_t reads() const { return statReads.value(); }
    uint64_t writes() const { return statWrites.value(); }

    /**
     * Serialize open-row and channel state. The open rows survive the
     * cold-start flush (real DRAM keeps rows open across a process
     * switch), so byte-identical restore requires capturing them.
     */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Restore state saved on an identically configured controller. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

  private:
    uint32_t bankOf(Addr line_addr) const;
    uint64_t rowOf(Addr line_addr) const;

    DramParams p;
    std::vector<uint64_t> openRow;
    std::vector<bool> rowValid;
    Cycles channelFreeAt = 0;

    Scalar &statReads;
    Scalar &statWrites;
    Scalar &statRowHits;
    Scalar &statRowMisses;
    Scalar &statQueueCycles;
};

} // namespace svb

#endif // SVB_MEM_DRAM_HH
