#include "dram.hh"

namespace svb
{

DramCtrl::DramCtrl(const DramParams &params, StatGroup &stats)
    : p(params), openRow(params.numBanks, 0),
      rowValid(params.numBanks, false),
      statReads(stats.childGroup(p.name).addScalar("reads",
                                                   "read bursts serviced")),
      statWrites(stats.childGroup(p.name).addScalar(
          "writes", "write bursts serviced")),
      statRowHits(stats.childGroup(p.name).addScalar("rowHits",
                                                     "row-buffer hits")),
      statRowMisses(stats.childGroup(p.name).addScalar(
          "rowMisses", "row-buffer conflicts")),
      statQueueCycles(stats.childGroup(p.name).addScalar(
          "queueCycles", "cycles spent queued on the channel"))
{
}

uint32_t
DramCtrl::bankOf(Addr line_addr) const
{
    // Bank interleaving on row-buffer-sized chunks.
    return uint32_t(line_addr / p.rowBytes) % p.numBanks;
}

uint64_t
DramCtrl::rowOf(Addr line_addr) const
{
    return line_addr / (uint64_t(p.rowBytes) * p.numBanks);
}

Cycles
DramCtrl::access(Addr line_addr, bool is_write, Cycles now)
{
    if (is_write)
        ++statWrites;
    else
        ++statReads;

    // Channel queueing.
    Cycles queue = 0;
    if (channelFreeAt > now) {
        queue = channelFreeAt - now;
        statQueueCycles += queue;
    }

    const uint32_t bank = bankOf(line_addr);
    const uint64_t row = rowOf(line_addr);
    Cycles device;
    if (rowValid[bank] && openRow[bank] == row) {
        ++statRowHits;
        device = p.rowHitLatency;
    } else {
        ++statRowMisses;
        device = p.rowMissLatency;
        openRow[bank] = row;
        rowValid[bank] = true;
    }

    channelFreeAt = now + queue + device + p.burstCycles;
    return p.frontendLatency + queue + device + p.burstCycles;
}

void
DramCtrl::warm(Addr line_addr, bool is_write)
{
    if (is_write)
        ++statWrites;
    else
        ++statReads;
    const uint32_t bank = bankOf(line_addr);
    const uint64_t row = rowOf(line_addr);
    if (rowValid[bank] && openRow[bank] == row) {
        ++statRowHits;
    } else {
        ++statRowMisses;
        openRow[bank] = row;
        rowValid[bank] = true;
    }
}

} // namespace svb
