#include "dram.hh"

#include "sim/logging.hh"

namespace svb
{

DramCtrl::DramCtrl(const DramParams &params, StatGroup &stats)
    : p(params), openRow(params.numBanks, 0),
      rowValid(params.numBanks, false),
      statReads(stats.childGroup(p.name).addScalar("reads",
                                                   "read bursts serviced")),
      statWrites(stats.childGroup(p.name).addScalar(
          "writes", "write bursts serviced")),
      statRowHits(stats.childGroup(p.name).addScalar("rowHits",
                                                     "row-buffer hits")),
      statRowMisses(stats.childGroup(p.name).addScalar(
          "rowMisses", "row-buffer conflicts")),
      statQueueCycles(stats.childGroup(p.name).addScalar(
          "queueCycles", "cycles spent queued on the channel"))
{
}

uint32_t
DramCtrl::bankOf(Addr line_addr) const
{
    // Bank interleaving on row-buffer-sized chunks.
    return uint32_t(line_addr / p.rowBytes) % p.numBanks;
}

uint64_t
DramCtrl::rowOf(Addr line_addr) const
{
    return line_addr / (uint64_t(p.rowBytes) * p.numBanks);
}

Cycles
DramCtrl::access(Addr line_addr, bool is_write, Cycles now)
{
    if (is_write)
        ++statWrites;
    else
        ++statReads;

    // Channel queueing.
    Cycles queue = 0;
    if (channelFreeAt > now) {
        queue = channelFreeAt - now;
        statQueueCycles += queue;
    }

    const uint32_t bank = bankOf(line_addr);
    const uint64_t row = rowOf(line_addr);
    Cycles device;
    if (rowValid[bank] && openRow[bank] == row) {
        ++statRowHits;
        device = p.rowHitLatency;
    } else {
        ++statRowMisses;
        device = p.rowMissLatency;
        openRow[bank] = row;
        rowValid[bank] = true;
    }

    channelFreeAt = now + queue + device + p.burstCycles;
    return p.frontendLatency + queue + device + p.burstCycles;
}

void
DramCtrl::warm(Addr line_addr, bool is_write)
{
    if (is_write)
        ++statWrites;
    else
        ++statReads;
    const uint32_t bank = bankOf(line_addr);
    const uint64_t row = rowOf(line_addr);
    if (rowValid[bank] && openRow[bank] == row) {
        ++statRowHits;
    } else {
        ++statRowMisses;
        openRow[bank] = row;
        rowValid[bank] = true;
    }
}

void
DramCtrl::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    cp.setScalar(prefix + "banks", openRow.size());
    cp.setScalar(prefix + "channelFreeAt", channelFreeAt);
    BlobWriter w;
    for (size_t b = 0; b < openRow.size(); ++b) {
        w.putU64(openRow[b]);
        w.putU8(rowValid[b] ? 1 : 0);
    }
    cp.setBlob(prefix + "rows", w.take());
}

void
DramCtrl::unserializeState(const std::string &prefix, const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "banks") == openRow.size(),
               "checkpoint DRAM bank-count mismatch");
    channelFreeAt = cp.getScalar(prefix + "channelFreeAt");
    BlobReader r(cp.getBlob(prefix + "rows"));
    for (size_t b = 0; b < openRow.size(); ++b) {
        openRow[b] = r.getU64();
        rowValid[b] = r.getU8() != 0;
    }
    svb_assert(r.done(), "checkpoint DRAM blob has trailing bytes");
}

} // namespace svb
