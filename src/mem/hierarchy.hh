/**
 * @file
 * Per-core cache hierarchy plus the write-invalidate coherence bus.
 *
 * Topology (Figure 4.3 of the paper): each core has private L1I, L1D
 * and a private L2; both L2s share one DRAM controller. Cross-core
 * shared data (the RPC rings) stays functionally consistent because
 * data lives in PhysMemory; the bus provides write-invalidate snoops
 * so the timing model sees coherence misses.
 */

#ifndef SVB_MEM_HIERARCHY_HH
#define SVB_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache.hh"
#include "dram.hh"

namespace svb
{

class CoreMemSystem;

/**
 * Broadcast medium connecting the per-core hierarchies.
 */
class CoherenceBus
{
  public:
    /** Attach a core's hierarchy (called by CoreMemSystem). */
    void registerCore(CoreMemSystem *core) { cores.push_back(core); }

    /**
     * Invalidate @p line_addr in every core except @p writer_id.
     */
    void writeSnoop(int writer_id, Addr line_addr);

  private:
    std::vector<CoreMemSystem *> cores;
};

/** Geometry for one core's private hierarchy. */
struct CoreMemParams
{
    CacheParams l1i{"l1i", 32 * 1024, 8, 64, 2};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64, 2};
    CacheParams l2{"l2", 512 * 1024, 4, 64, 20};
};

/**
 * One core's private L1I/L1D/L2 stack.
 */
class CoreMemSystem
{
  public:
    /**
     * @param core_id  index used for snoop filtering
     * @param params   cache geometry
     * @param dram     the shared memory controller
     * @param bus      the coherence bus (this core self-registers)
     * @param stats    parent stat group (a "coreN" child is created)
     */
    CoreMemSystem(int core_id, const CoreMemParams &params, DramCtrl &dram,
                  CoherenceBus &bus, StatGroup &stats);

    /** Timed instruction fetch of @p len bytes at @p paddr. */
    Cycles fetchAccess(Addr paddr, unsigned len, Cycles now);

    /** Timed data access of @p len bytes at @p paddr. */
    Cycles dataAccess(Addr paddr, unsigned len, bool is_write, Cycles now);

    /** Untimed warming variants used by the Atomic CPU. */
    void warmFetch(Addr paddr, unsigned len);
    void warmData(Addr paddr, unsigned len, bool is_write);

    /** Invalidate a line everywhere in this core (snoop target). */
    void snoopInvalidate(Addr line_addr);

    /** Drop all cached state in this core. */
    void flushAll();

    /** Serialize the warm state of every level (checkpoint pipeline). */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Restore warm state saved on an identical hierarchy. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Cache; }
    int coreId() const { return id; }

  private:
    /** Split an access that may straddle a line boundary. */
    template <typename Fn>
    void forEachLine(Addr addr, unsigned len, Fn &&fn);

    int id;
    CoherenceBus &bus;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    uint32_t lineSize;
};

} // namespace svb

#endif // SVB_MEM_HIERARCHY_HH
