/**
 * @file
 * Content-hashed snapshot page store (REAP-style restores).
 *
 * Checkpointed guest memory is page-granular: every non-zero 4 KiB
 * page of a snapshot is content-hashed and interned here, so
 * identical pages — across concurrent instances of one function, and
 * across functions sharing a runtime image — exist once on the host.
 * A PageImage is the page table of one published checkpoint: a sparse
 * map from guest page index to a shared, refcounted SnapshotPage,
 * plus the recorded cold-request working set.
 *
 * Sharing is copy-on-write by construction: a lazily restored
 * PhysMemory materialises a page by *copying* it into its private
 * flat backing on first touch, so a guest write never reaches the
 * shared page. Refcounts are the shared_ptr counts themselves; the
 * store only holds weak references, so dropping the last image/lease
 * (pool eviction, instance kill) frees the host memory.
 */

#ifndef SVB_MEM_PAGE_STORE_HH
#define SVB_MEM_PAGE_STORE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace svb
{

/** Snapshot page granularity (bytes). */
constexpr size_t snapshotPageBytes = 4096;

/** FNV-1a 64-bit over @p len bytes, zero-padded to a full page, so a
 *  short tail page hashes equal to its padded image. */
uint64_t hashSnapshotPage(const uint8_t *data, size_t len);

/** One immutable, shared 4 KiB snapshot page. */
struct SnapshotPage
{
    uint64_t hash = 0;
    std::array<uint8_t, snapshotPageBytes> bytes{};
};

/**
 * Process-wide interning store for snapshot pages.
 *
 * Thread-safe. Holds only weak references: a page lives exactly as
 * long as some PageImage / PhysMemory / InstancePool lease holds it.
 */
class PageStore
{
  public:
    static PageStore &global();

    /**
     * Intern @p len bytes (zero-padded to a full page). Returns the
     * existing shared page when an identical one is live (hash match
     * verified by memcmp, so colliding contents never alias), else a
     * fresh one.
     */
    std::shared_ptr<const SnapshotPage> intern(const uint8_t *data,
                                               size_t len);

    /** Interns answered by an already-live identical page. */
    uint64_t internHits() const;
    /** Interns that had to create a fresh page. */
    uint64_t internMisses() const;
    /** Unique pages currently kept alive by some holder. */
    size_t liveUniquePages() const;

    /** Test hook: drop bookkeeping and counters (live pages keep
     *  their holders; only the intern index forgets them). */
    void resetForTest();

  private:
    PageStore() = default;

    mutable std::mutex mtx;
    /** hash -> live candidates (collision-safe: verified by bytes). */
    std::unordered_map<uint64_t,
                       std::vector<std::weak_ptr<const SnapshotPage>>>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/**
 * The page table of one published checkpoint: what a lazy restore
 * materialises from. Immutable once built; shared by every concurrent
 * instance restored from the same fingerprint.
 */
struct PageImage
{
    /** Guest memory size the image was taken of. */
    size_t memSize = 0;
    /** Sparse guest-page-index -> shared page (absent pages are
     *  all-zero). Ordered for deterministic walks. */
    std::map<uint64_t, std::shared_ptr<const SnapshotPage>> pages;
    /** Cold-request working set (sorted page indices), empty until a
     *  first execution recorded it. */
    std::vector<uint64_t> workingSet;

    size_t imagePages() const { return pages.size(); }
};

/** SVBENCH_REAP environment gate: set to "0" to force full restores
 *  (default on, mirroring SVBENCH_FASTWARM). ANDed with
 *  SystemConfig::reapRestore. */
bool reapEnvEnabled();

} // namespace svb

#endif // SVB_MEM_PAGE_STORE_HH
