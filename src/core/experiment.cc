#include "experiment.hh"

#include "sim/logging.hh"
#include "stack/topology.hh"

namespace svb
{

ExperimentRunner::ExperimentRunner(const ClusterConfig &config)
    : cfg(config), clusterPtr(std::make_unique<ServerlessCluster>(config))
{
}

ExperimentRunner::~ExperimentRunner() = default;

ServerlessCluster::Deployment
ExperimentRunner::prepare(const FunctionSpec &spec,
                          const WorkloadImpl &impl, bool &ok)
{
    ServerlessCluster &cl = *clusterPtr;
    cl.boot();
    cl.resetToBaseline();
    auto dep = cl.deploy(spec, impl);
    // Container boot on the Atomic CPU, up to the readiness report.
    ok = cl.runUntilReady(1);
    // Let the server settle into its receive loop.
    cl.system().run(5'000);
    return dep;
}

RequestStats
ExperimentRunner::snapshotServerCore() const
{
    const auto snap = clusterPtr->system().stats().snapshotAll();
    auto get = [&](const std::string &key) {
        auto it = snap.find(key);
        return it == snap.end() ? 0.0 : it->second;
    };
    const std::string cpu = "system.cpu1.o3.";
    const std::string mem = "system.core1.";

    RequestStats rs;
    rs.cycles = uint64_t(get(cpu + "numCycles"));
    rs.insts = uint64_t(get(cpu + "numInsts"));
    rs.uops = uint64_t(get(cpu + "numUops"));
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    rs.l1iMisses = uint64_t(get(mem + "l1i.misses"));
    rs.l1dMisses = uint64_t(get(mem + "l1d.misses"));
    rs.l2Misses = uint64_t(get(mem + "l2.misses"));
    rs.branches = uint64_t(get(cpu + "numBranches"));
    rs.branchMispredicts = uint64_t(get(cpu + "branchMispredicts"));
    rs.itlbMisses = uint64_t(get(cpu + "itlb.misses"));
    rs.dtlbMisses = uint64_t(get(cpu + "dtlb.misses"));
    return rs;
}

FunctionResult
ExperimentRunner::runFunction(const FunctionSpec &spec,
                              const WorkloadImpl &impl)
{
    FunctionResult result;
    result.name = spec.name;

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok) {
        warn(spec.name, ": container failed to boot");
        return result;
    }
    System &m = cl.system();

    // --- Evaluation mode, request 1 (cold) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    // Checkpoint-restore semantics: detailed runs start with cold
    // caches, TLBs and branch predictors, exactly as in gem5.
    m.flushMicroarchState();
    cl.armStatResetOnWorkBegin();
    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1)) {
        warn(spec.name, ": cold request did not complete");
        return result;
    }
    result.cold = snapshotServerCore();

    // --- Setup mode: functional warming through requests 2..9 ------------
    m.switchCpu(topo::clientCore, CpuModel::Atomic);
    m.switchCpu(topo::serverCore, CpuModel::Atomic);
    if (!cl.runUntilWorkEnds(9)) {
        warn(spec.name, ": warming requests did not complete");
        return result;
    }

    // --- Evaluation mode, request 10 (warm) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin();
    if (!cl.runUntilWorkEnds(10)) {
        warn(spec.name, ": warm request did not complete");
        return result;
    }
    result.warm = snapshotServerCore();
    result.ok = true;
    return result;
}

LukewarmResult
ExperimentRunner::runLukewarm(const FunctionSpec &spec,
                              const WorkloadImpl &impl,
                              const FunctionSpec &interferer,
                              const WorkloadImpl &interferer_impl)
{
    LukewarmResult result;
    result.name = spec.name;
    result.interferer = interferer.name;

    // Baseline: the function's clean warm request.
    const FunctionResult solo = runFunction(spec, impl);
    if (!solo.ok)
        return result;
    result.warm = solo.warm;

    // Interleaved run: both functions share the server core.
    ServerlessCluster &cl = *clusterPtr;
    cl.resetToBaseline();
    auto dep = cl.deploy(spec, impl, /*ring_slot=*/0);
    cl.deploy(interferer, interferer_impl, /*ring_slot=*/1);
    if (!cl.runUntilReady(2)) {
        warn(spec.name, ": lukewarm containers failed to boot");
        return result;
    }
    cl.system().run(5'000);

    System &m = cl.system();
    // Warm both functions on the Atomic CPU with their requests
    // interleaving freely through the cooperative scheduler.
    cl.openClientGate(dep);
    {
        // The interferer's client is the most recent process.
        AddressSpace &as =
            *m.kernel()
                 .process(int(m.kernel().numProcesses()) - 1)
                 .space;
        as.write(layout::heapBase, 1, 8);
    }
    if (!cl.runUntilSlotWorkEnds(0, 9) ||
        !cl.runUntilSlotWorkEnds(1, 9)) {
        warn(spec.name, ": lukewarm warming did not complete");
        return result;
    }

    // Measure the next request of the function under test, detailed.
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin(/*slot=*/0);
    const uint64_t done = cl.slotWorkEnds(0);
    if (!cl.runUntilSlotWorkEnds(0, done + 1)) {
        warn(spec.name, ": lukewarm measurement did not complete");
        return result;
    }
    result.lukewarm = snapshotServerCore();
    result.ok = true;
    return result;
}

EmuResult
ExperimentRunner::runFunctionEmu(const FunctionSpec &spec,
                                 const WorkloadImpl &impl,
                                 unsigned warm_request)
{
    EmuResult result;
    result.name = spec.name;

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok)
        return result;

    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1))
        return result;
    result.coldNs = cl.lastWorkEndCycle() - cl.lastWorkBeginCycle();

    if (!cl.runUntilWorkEnds(warm_request))
        return result;
    result.warmNs = cl.lastWorkEndCycle() - cl.lastWorkBeginCycle();
    result.ok = true;
    return result;
}

} // namespace svb
