#include "experiment.hh"

#include <sstream>

#include "checkpoint_store.hh"
#include "isa/isa_info.hh"
#include "sim/logging.hh"
#include "stack/topology.hh"

namespace svb
{

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Detailed: return "o3";
      case RunMode::Emu:      return "emu";
      case RunMode::Lukewarm: return "lukewarm";
      case RunMode::LoadCal:  return "ldcal";
    }
    return "?";
}

bool
runResultOk(const RunResult &result)
{
    return std::visit([](const auto &r) { return r.ok; }, result);
}

RequestStats
RequestStats::fromStatDelta(const obs::StatSnapshot &delta,
                            const std::string &cpu_prefix,
                            const std::string &mem_prefix)
{
    auto get = [&](const std::string &key) {
        return uint64_t(obs::statValue(delta, key));
    };

    RequestStats rs;
    rs.cycles = get(cpu_prefix + "numCycles");
    rs.insts = get(cpu_prefix + "numInsts");
    rs.uops = get(cpu_prefix + "numUops");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    rs.l1iMisses = get(mem_prefix + "l1i.misses");
    rs.l1dMisses = get(mem_prefix + "l1d.misses");
    rs.l2Misses = get(mem_prefix + "l2.misses");
    rs.branches = get(cpu_prefix + "numBranches");
    rs.branchMispredicts = get(cpu_prefix + "branchMispredicts");
    rs.itlbMisses = get(cpu_prefix + "itlb.misses");
    rs.dtlbMisses = get(cpu_prefix + "dtlb.misses");
    for (unsigned c = 0; c < numStallCauses; ++c)
        rs.stalls[c] =
            get(cpu_prefix + "stall." + stallCauseName(c));
    return rs;
}

ExperimentRunner::ExperimentRunner(const ClusterConfig &config)
    : cfg(config), clusterPtr(std::make_unique<ServerlessCluster>(config))
{
}

ExperimentRunner::~ExperimentRunner() = default;

std::string
ExperimentRunner::experimentName(const FunctionSpec &spec,
                                 const char *mode) const
{
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "/" << db::dbKindName(cfg.dbKind)
       << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0) << "/"
       << spec.name << "/" << mode;
    return os.str();
}

void
ExperimentRunner::beginTrace(const FunctionSpec &spec, const char *mode)
{
    curName = experimentName(spec, mode);
    curTrack = obs::Tracer::global().track(curName);
    clusterPtr->setTraceTrack(curTrack);
}

void
ExperimentRunner::span(const std::string &name, const std::string &cat,
                       uint64_t start, uint64_t end)
{
    if (curTrack != obs::badTrack && end >= start)
        obs::Tracer::global().record(curTrack, name, cat, start,
                                     end - start);
}

ServerlessCluster::Deployment
ExperimentRunner::prepareFresh(const FunctionSpec &spec,
                               const WorkloadImpl &impl, bool &ok)
{
    ServerlessCluster &cl = *clusterPtr;
    // A runner reused across experiments keeps its booted baseline;
    // only record a boot span when the bootstrap actually runs.
    const bool fresh_boot = !cl.booted();
    cl.boot();
    if (fresh_boot)
        span("boot", "phase", 0, cl.system().cycle());
    cl.resetToBaseline();
    auto dep = cl.deploy(spec, impl);
    // Container boot on the Atomic CPU, up to the readiness report.
    const uint64_t start_begin = cl.system().cycle();
    ok = cl.runUntilReady(1);
    span("container-start", "phase", start_begin, cl.system().cycle());
    // Let the server settle into its receive loop.
    const uint64_t settle_begin = cl.system().cycle();
    cl.system().run(5'000);
    span("settle", "phase", settle_begin, cl.system().cycle());
    return dep;
}

ServerlessCluster::Deployment
ExperimentRunner::prepare(const FunctionSpec &spec,
                          const WorkloadImpl &impl, bool &ok)
{
    ServerlessCluster &cl = *clusterPtr;
    CheckpointStore &store = CheckpointStore::global();
    pendingWsFp.clear();
    if (!store.enabled())
        return prepareFresh(spec, impl, ok);

    const std::string fp = CheckpointStore::fingerprint(cfg, spec);
    bool claimed = false;
    if (auto cp = store.acquire(fp, &claimed)) {
        // Restore-many: rebuild the platform, re-issue the same
        // deployments (the kernel restore checks the process table),
        // then overwrite everything with the prepared snapshot —
        // working-set-aware when the REAP gate is on and the snapshot
        // carries a page table.
        cl.beginRestore();
        auto dep = cl.deploy(spec, impl);
        std::shared_ptr<const PageImage> img;
        if (cl.system().reapEnabled())
            img = store.imageFor(fp, *cp);
        cl.finishRestore(*cp, img);
        PhysMemory &phys = cl.system().phys();
        if (curTrack != obs::badTrack) {
            obs::Tracer::global().record(
                curTrack, "restore", "phase", cl.system().cycle(), 0,
                {{"mode", img != nullptr ? "reap" : "full"},
                 {"imagePages", std::to_string(phys.imagePages())},
                 {"prefetchedPages",
                  std::to_string(phys.prefetchedPages())},
                 {"residentPages",
                  std::to_string(phys.residentImagePages())}});
        }
        armWorkingSetCapture(fp, cp.get());
        ok = true;
        return dep;
    }
    // First preparation of this tuple anywhere: do the real work once
    // and publish the settle-point snapshot for everyone else.
    auto dep = prepareFresh(spec, impl, ok);
    if (ok) {
        store.publish(fp, cl.savePrepared());
        armWorkingSetCapture(fp, nullptr);
    } else {
        store.release(fp);
    }
    return dep;
}

void
ExperimentRunner::armWorkingSetCapture(const std::string &fp,
                                       const Checkpoint *cp)
{
    // Only fingerprints without a recorded working set need one; the
    // capture costs a bitmap update per touched page until the cold
    // request completes.
    if (cp != nullptr && cp->hasBlob("mem.ws"))
        return;
    pendingWsFp = fp;
    clusterPtr->system().phys().startTouchRecording();
}

void
ExperimentRunner::noteColdRequestDone()
{
    if (pendingWsFp.empty())
        return;
    PhysMemory &phys = clusterPtr->system().phys();
    CheckpointStore::global().attachWorkingSet(pendingWsFp,
                                               phys.stopTouchRecording());
    pendingWsFp.clear();
}

uint64_t
ExperimentRunner::cyclesToNs(uint64_t cycles) const
{
    // One cycle is 1000/clockMHz ns (exactly 1 ns at the default
    // 1 GHz, so results cached before this conversion stay valid).
    return cycles * 1000 / cfg.system.clockMHz;
}

RequestStats
ExperimentRunner::measureServerCore(const char *phase) const
{
    ServerlessCluster &cl = *clusterPtr;
    const obs::StatSnapshot now = obs::snapshot(cl.system().stats());
    const obs::StatSnapshot delta =
        obs::delta(cl.workBeginSnapshot(), now);

    const std::string cpu = "system.cpu1.o3.";
    const std::string mem = "system.core1.";
    RequestStats rs = RequestStats::fromStatDelta(delta, cpu, mem);
    // The stall taxonomy partitions the measured cycles: a hole here
    // means a tick path missed its accountCycle() call.
    svb_assert(rs.stallTotal() == rs.cycles,
               "stall-cause attribution does not sum to numCycles");
    obs::dumpRequestStats(curName + "." + phase, delta);
    return rs;
}

FunctionResult
ExperimentRunner::runFunction(const FunctionSpec &spec,
                              const WorkloadImpl &impl)
{
    FunctionResult result;
    result.name = spec.name;
    beginTrace(spec, runModeName(RunMode::Detailed));

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok) {
        warn(spec.name, ": container failed to boot");
        return result;
    }
    System &m = cl.system();

    // --- Evaluation mode, request 1 (cold) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    // Checkpoint-restore semantics: detailed runs start with cold
    // caches, TLBs and branch predictors, exactly as in gem5.
    m.flushMicroarchState();
    cl.armStatResetOnWorkBegin();
    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1)) {
        warn(spec.name, ": cold request did not complete");
        return result;
    }
    noteColdRequestDone();
    result.cold = measureServerCore("cold");
    span("cold", "measure", cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());

    // --- Setup mode: functional warming through requests 2..9 ------------
    m.switchCpu(topo::clientCore, CpuModel::Atomic);
    m.switchCpu(topo::serverCore, CpuModel::Atomic);
    const uint64_t warming_begin = cl.lastWorkEndCycle();
    if (!cl.runUntilWorkEnds(9)) {
        warn(spec.name, ": warming requests did not complete");
        return result;
    }
    span("warming", "phase", warming_begin, cl.lastWorkEndCycle());

    // --- Evaluation mode, request 10 (warm) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin();
    if (!cl.runUntilWorkEnds(10)) {
        warn(spec.name, ": warm request did not complete");
        return result;
    }
    result.warm = measureServerCore("warm");
    span("warm", "measure", cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());
    result.ok = true;
    return result;
}

LukewarmResult
ExperimentRunner::runLukewarm(const FunctionSpec &spec,
                              const WorkloadImpl &impl,
                              const FunctionSpec &interferer,
                              const WorkloadImpl &interferer_impl)
{
    LukewarmResult result;
    result.name = spec.name;
    result.interferer = interferer.name;

    // Baseline: the function's clean warm request.
    const FunctionResult solo = runFunction(spec, impl);
    if (!solo.ok)
        return result;
    result.warm = solo.warm;

    beginTrace(spec, runModeName(RunMode::Lukewarm));

    // Interleaved run: both functions share the server core. The
    // two-function settle point gets its own checkpoint, keyed by the
    // (function, interferer) pair.
    ServerlessCluster &cl = *clusterPtr;
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp =
        CheckpointStore::fingerprint(cfg, spec, &interferer);
    bool claimed = false;
    std::shared_ptr<const Checkpoint> cp;
    if (store.enabled())
        cp = store.acquire(fp, &claimed);

    ServerlessCluster::Deployment dep;
    ServerlessCluster::Deployment dep2;
    pendingWsFp.clear();
    if (cp) {
        cl.beginRestore();
        dep = cl.deploy(spec, impl, /*ring_slot=*/0);
        dep2 = cl.deploy(interferer, interferer_impl, /*ring_slot=*/1);
        std::shared_ptr<const PageImage> img;
        if (cl.system().reapEnabled())
            img = store.imageFor(fp, *cp);
        cl.finishRestore(*cp, img);
        span("restore", "phase", cl.system().cycle(), cl.system().cycle());
        armWorkingSetCapture(fp, cp.get());
    } else {
        cl.boot();
        cl.resetToBaseline();
        dep = cl.deploy(spec, impl, /*ring_slot=*/0);
        dep2 = cl.deploy(interferer, interferer_impl, /*ring_slot=*/1);
        const uint64_t start_begin = cl.system().cycle();
        if (!cl.runUntilReady(2)) {
            if (claimed)
                store.release(fp);
            warn(spec.name, ": lukewarm containers failed to boot");
            return result;
        }
        span("container-start", "phase", start_begin, cl.system().cycle());
        cl.system().run(5'000);
        if (claimed) {
            store.publish(fp, cl.savePrepared());
            armWorkingSetCapture(fp, nullptr);
        }
    }

    System &m = cl.system();
    // Warm both functions on the Atomic CPU with their requests
    // interleaving freely through the cooperative scheduler. Both
    // clients start through the explicit per-deployment gate.
    cl.openClientGate(dep);
    cl.openClientGate(dep2);
    const uint64_t warming_begin = cl.system().cycle();
    if (!cl.runUntilSlotWorkEnds(0, 9) ||
        !cl.runUntilSlotWorkEnds(1, 9)) {
        warn(spec.name, ": lukewarm warming did not complete");
        return result;
    }
    // The pair checkpoint's working set covers the whole interleaved
    // warming phase — a superset of the cold path, so a later REAP
    // restore prefetches everything the study touches.
    noteColdRequestDone();
    span("warming", "phase", warming_begin, cl.lastWorkEndCycle());

    // Measure the next request of the function under test, detailed.
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin(/*slot=*/0);
    const uint64_t done = cl.slotWorkEnds(0);
    if (!cl.runUntilSlotWorkEnds(0, done + 1)) {
        warn(spec.name, ": lukewarm measurement did not complete");
        return result;
    }
    result.lukewarm = measureServerCore("lukewarm");
    span("lukewarm", "measure", cl.lastWorkBeginCycle(),
         cl.lastWorkEndCycle());
    result.ok = true;
    return result;
}

LoadCalibration
ExperimentRunner::runLoadCalibration(const FunctionSpec &spec,
                                     const WorkloadImpl &impl)
{
    LoadCalibration result;
    result.name = spec.name;
    beginTrace(spec, runModeName(RunMode::LoadCal));

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok) {
        warn(spec.name, ": load calibration failed to prepare");
        return result;
    }

    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1))
        return result;
    noteColdRequestDone();
    result.coldNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());
    span("cold", "measure", cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());

    for (unsigned k = 0; k < loadWarmSamples; ++k) {
        if (!cl.runUntilWorkEnds(2 + k))
            return result;
        result.warmNs[k] = cyclesToNs(cl.lastWorkEndCycle() -
                                      cl.lastWorkBeginCycle());
        span("warm" + std::to_string(1 + k), "measure",
             cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());
    }
    result.ok = true;
    return result;
}

EmuResult
ExperimentRunner::runFunctionEmu(const FunctionSpec &spec,
                                 const WorkloadImpl &impl,
                                 unsigned warm_request)
{
    EmuResult result;
    result.name = spec.name;
    beginTrace(spec, runModeName(RunMode::Emu));

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok)
        return result;

    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1))
        return result;
    noteColdRequestDone();
    result.coldNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());
    span("cold", "measure", cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());

    if (!cl.runUntilWorkEnds(warm_request))
        return result;
    result.warmNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());
    span("warm", "measure", cl.lastWorkBeginCycle(), cl.lastWorkEndCycle());
    result.ok = true;
    return result;
}

RunResult
ExperimentRunner::run(const RunSpec &rs)
{
    svb_assert(rs.impl != nullptr, "RunSpec without a workload impl");
    switch (rs.mode) {
      case RunMode::Detailed:
        return runFunction(rs.spec, *rs.impl);
      case RunMode::Emu:
        return runFunctionEmu(rs.spec, *rs.impl, rs.options.warmRequest);
      case RunMode::Lukewarm:
        svb_assert(rs.options.interferer != nullptr &&
                       rs.options.interfererImpl != nullptr,
                   "Lukewarm RunSpec without an interferer");
        return runLukewarm(rs.spec, *rs.impl, *rs.options.interferer,
                           *rs.options.interfererImpl);
      case RunMode::LoadCal:
        return runLoadCalibration(rs.spec, *rs.impl);
    }
    svb_fatal("unreachable RunMode");
}

} // namespace svb
