#include "experiment.hh"

#include "checkpoint_store.hh"
#include "sim/logging.hh"
#include "stack/topology.hh"

namespace svb
{

ExperimentRunner::ExperimentRunner(const ClusterConfig &config)
    : cfg(config), clusterPtr(std::make_unique<ServerlessCluster>(config))
{
}

ExperimentRunner::~ExperimentRunner() = default;

ServerlessCluster::Deployment
ExperimentRunner::prepareFresh(const FunctionSpec &spec,
                               const WorkloadImpl &impl, bool &ok)
{
    ServerlessCluster &cl = *clusterPtr;
    cl.boot();
    cl.resetToBaseline();
    auto dep = cl.deploy(spec, impl);
    // Container boot on the Atomic CPU, up to the readiness report.
    ok = cl.runUntilReady(1);
    // Let the server settle into its receive loop.
    cl.system().run(5'000);
    return dep;
}

ServerlessCluster::Deployment
ExperimentRunner::prepare(const FunctionSpec &spec,
                          const WorkloadImpl &impl, bool &ok)
{
    ServerlessCluster &cl = *clusterPtr;
    CheckpointStore &store = CheckpointStore::global();
    if (!store.enabled())
        return prepareFresh(spec, impl, ok);

    const std::string fp = CheckpointStore::fingerprint(cfg, spec);
    bool claimed = false;
    if (auto cp = store.acquire(fp, &claimed)) {
        // Restore-many: rebuild the platform, re-issue the same
        // deployments (the kernel restore checks the process table),
        // then overwrite everything with the prepared snapshot.
        cl.beginRestore();
        auto dep = cl.deploy(spec, impl);
        cl.finishRestore(*cp);
        ok = true;
        return dep;
    }
    // First preparation of this tuple anywhere: do the real work once
    // and publish the settle-point snapshot for everyone else.
    auto dep = prepareFresh(spec, impl, ok);
    if (ok)
        store.publish(fp, cl.savePrepared());
    else
        store.release(fp);
    return dep;
}

uint64_t
ExperimentRunner::cyclesToNs(uint64_t cycles) const
{
    // One cycle is 1000/clockMHz ns (exactly 1 ns at the default
    // 1 GHz, so results cached before this conversion stay valid).
    return cycles * 1000 / cfg.system.clockMHz;
}

RequestStats
ExperimentRunner::snapshotServerCore() const
{
    const auto snap = clusterPtr->system().stats().snapshotAll();
    auto get = [&](const std::string &key) {
        auto it = snap.find(key);
        return it == snap.end() ? 0.0 : it->second;
    };
    const std::string cpu = "system.cpu1.o3.";
    const std::string mem = "system.core1.";

    RequestStats rs;
    rs.cycles = uint64_t(get(cpu + "numCycles"));
    rs.insts = uint64_t(get(cpu + "numInsts"));
    rs.uops = uint64_t(get(cpu + "numUops"));
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    rs.l1iMisses = uint64_t(get(mem + "l1i.misses"));
    rs.l1dMisses = uint64_t(get(mem + "l1d.misses"));
    rs.l2Misses = uint64_t(get(mem + "l2.misses"));
    rs.branches = uint64_t(get(cpu + "numBranches"));
    rs.branchMispredicts = uint64_t(get(cpu + "branchMispredicts"));
    rs.itlbMisses = uint64_t(get(cpu + "itlb.misses"));
    rs.dtlbMisses = uint64_t(get(cpu + "dtlb.misses"));
    return rs;
}

FunctionResult
ExperimentRunner::runFunction(const FunctionSpec &spec,
                              const WorkloadImpl &impl)
{
    FunctionResult result;
    result.name = spec.name;

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok) {
        warn(spec.name, ": container failed to boot");
        return result;
    }
    System &m = cl.system();

    // --- Evaluation mode, request 1 (cold) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    // Checkpoint-restore semantics: detailed runs start with cold
    // caches, TLBs and branch predictors, exactly as in gem5.
    m.flushMicroarchState();
    cl.armStatResetOnWorkBegin();
    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1)) {
        warn(spec.name, ": cold request did not complete");
        return result;
    }
    result.cold = snapshotServerCore();

    // --- Setup mode: functional warming through requests 2..9 ------------
    m.switchCpu(topo::clientCore, CpuModel::Atomic);
    m.switchCpu(topo::serverCore, CpuModel::Atomic);
    if (!cl.runUntilWorkEnds(9)) {
        warn(spec.name, ": warming requests did not complete");
        return result;
    }

    // --- Evaluation mode, request 10 (warm) -------------------------------
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin();
    if (!cl.runUntilWorkEnds(10)) {
        warn(spec.name, ": warm request did not complete");
        return result;
    }
    result.warm = snapshotServerCore();
    result.ok = true;
    return result;
}

LukewarmResult
ExperimentRunner::runLukewarm(const FunctionSpec &spec,
                              const WorkloadImpl &impl,
                              const FunctionSpec &interferer,
                              const WorkloadImpl &interferer_impl)
{
    LukewarmResult result;
    result.name = spec.name;
    result.interferer = interferer.name;

    // Baseline: the function's clean warm request.
    const FunctionResult solo = runFunction(spec, impl);
    if (!solo.ok)
        return result;
    result.warm = solo.warm;

    // Interleaved run: both functions share the server core. The
    // two-function settle point gets its own checkpoint, keyed by the
    // (function, interferer) pair.
    ServerlessCluster &cl = *clusterPtr;
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp =
        CheckpointStore::fingerprint(cfg, spec, &interferer);
    bool claimed = false;
    std::shared_ptr<const Checkpoint> cp;
    if (store.enabled())
        cp = store.acquire(fp, &claimed);

    ServerlessCluster::Deployment dep;
    ServerlessCluster::Deployment dep2;
    if (cp) {
        cl.beginRestore();
        dep = cl.deploy(spec, impl, /*ring_slot=*/0);
        dep2 = cl.deploy(interferer, interferer_impl, /*ring_slot=*/1);
        cl.finishRestore(*cp);
    } else {
        cl.boot();
        cl.resetToBaseline();
        dep = cl.deploy(spec, impl, /*ring_slot=*/0);
        dep2 = cl.deploy(interferer, interferer_impl, /*ring_slot=*/1);
        if (!cl.runUntilReady(2)) {
            if (claimed)
                store.release(fp);
            warn(spec.name, ": lukewarm containers failed to boot");
            return result;
        }
        cl.system().run(5'000);
        if (claimed)
            store.publish(fp, cl.savePrepared());
    }

    System &m = cl.system();
    // Warm both functions on the Atomic CPU with their requests
    // interleaving freely through the cooperative scheduler. Both
    // clients start through the explicit per-deployment gate.
    cl.openClientGate(dep);
    cl.openClientGate(dep2);
    if (!cl.runUntilSlotWorkEnds(0, 9) ||
        !cl.runUntilSlotWorkEnds(1, 9)) {
        warn(spec.name, ": lukewarm warming did not complete");
        return result;
    }

    // Measure the next request of the function under test, detailed.
    m.switchCpu(topo::clientCore, CpuModel::O3);
    m.switchCpu(topo::serverCore, CpuModel::O3);
    cl.armStatResetOnWorkBegin(/*slot=*/0);
    const uint64_t done = cl.slotWorkEnds(0);
    if (!cl.runUntilSlotWorkEnds(0, done + 1)) {
        warn(spec.name, ": lukewarm measurement did not complete");
        return result;
    }
    result.lukewarm = snapshotServerCore();
    result.ok = true;
    return result;
}

LoadCalibration
ExperimentRunner::runLoadCalibration(const FunctionSpec &spec,
                                     const WorkloadImpl &impl)
{
    LoadCalibration result;
    result.name = spec.name;

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok) {
        warn(spec.name, ": load calibration failed to prepare");
        return result;
    }

    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1))
        return result;
    result.coldNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());

    for (unsigned k = 0; k < loadWarmSamples; ++k) {
        if (!cl.runUntilWorkEnds(2 + k))
            return result;
        result.warmNs[k] = cyclesToNs(cl.lastWorkEndCycle() -
                                      cl.lastWorkBeginCycle());
    }
    result.ok = true;
    return result;
}

EmuResult
ExperimentRunner::runFunctionEmu(const FunctionSpec &spec,
                                 const WorkloadImpl &impl,
                                 unsigned warm_request)
{
    EmuResult result;
    result.name = spec.name;

    bool ok = false;
    ServerlessCluster &cl = *clusterPtr;
    auto dep = prepare(spec, impl, ok);
    if (!ok)
        return result;

    cl.openClientGate(dep);
    if (!cl.runUntilWorkEnds(1))
        return result;
    result.coldNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());

    if (!cl.runUntilWorkEnds(warm_request))
        return result;
    result.warmNs = cyclesToNs(cl.lastWorkEndCycle() -
                               cl.lastWorkBeginCycle());
    result.ok = true;
    return result;
}

} // namespace svb
