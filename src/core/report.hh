/**
 * @file
 * Figure/table emission: prints the same rows and series the paper's
 * Chapter-4 figures report, as aligned text tables with ASCII bars.
 */

#ifndef SVB_CORE_REPORT_HH
#define SVB_CORE_REPORT_HH

#include <string>
#include <vector>

#include "system_config.hh"

namespace svb::report
{

/** One row of a figure: a label plus one value per series. */
struct Row
{
    std::string label;
    std::vector<double> values;
};

/**
 * One figure series (column): its display name, the unit printed in
 * the column header, and a scale factor applied to every value before
 * printing (e.g. 1e-6 to plot cycles as Mcycles). Figures take one
 * SeriesSpec per column instead of parallel name/unit vectors, so a
 * column's description travels as one value.
 */
struct SeriesSpec
{
    std::string name;
    std::string unit;
    double scale = 1.0;
};

/** Print the experiment banner (figure id, caption, platform). */
void figureHeader(const std::string &figure_id, const std::string &caption,
                  const std::vector<SystemConfig> &platforms);

/**
 * Print a grouped-bar figure: one row per benchmark, one column per
 * series, with a scaled ASCII bar for the first series. Every row
 * must carry exactly one value per series.
 */
void barFigure(const std::vector<SeriesSpec> &series,
               const std::vector<Row> &rows);

/** Print a percentage-stacked figure (Figs 4.8/4.9 style); the
 *  series' units are unused (columns print as "name %"). */
void stackedPercentFigure(const std::vector<SeriesSpec> &series,
                          const std::vector<Row> &rows);

// Legacy parallel-vector spellings; thin wrappers over the
// SeriesSpec forms (every series shares @p unit, scale 1).
void barFigure(const std::vector<std::string> &series,
               const std::string &unit, const std::vector<Row> &rows);
void stackedPercentFigure(const std::vector<std::string> &series,
                          const std::vector<Row> &rows);

/**
 * Print the O3 stall-cause breakdown panel: one row per measured
 * request, one column per cause from the stall taxonomy
 * (cpu/stall_cause.hh), as percentages of the request's cycles. Row
 * values must be ordered by StallCause; the total column equals the
 * request's cycle count because the causes partition it.
 */
void stallPanel(const std::vector<Row> &rows);

/** Print a plain table (Tables 4.4/4.5 style). */
void table(const std::vector<std::string> &columns,
           const std::vector<Row> &rows, int precision = 2);

/** Print Tables 4.1-4.3: the platform configuration. */
void configTables(const SystemConfig &riscv_cfg,
                  const SystemConfig &x86_cfg);

} // namespace svb::report

#endif // SVB_CORE_REPORT_HH
