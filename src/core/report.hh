/**
 * @file
 * Figure/table emission: prints the same rows and series the paper's
 * Chapter-4 figures report, as aligned text tables with ASCII bars.
 */

#ifndef SVB_CORE_REPORT_HH
#define SVB_CORE_REPORT_HH

#include <string>
#include <vector>

#include "system_config.hh"

namespace svb::report
{

/** One row of a figure: a label plus one value per series. */
struct Row
{
    std::string label;
    std::vector<double> values;
};

/** Print the experiment banner (figure id, caption, platform). */
void figureHeader(const std::string &figure_id, const std::string &caption,
                  const std::vector<SystemConfig> &platforms);

/**
 * Print a grouped-bar figure: one row per benchmark, one column per
 * series, with a scaled ASCII bar for the first series pair.
 *
 * @param series column names (e.g. {"cold", "warm"})
 * @param unit   printed in the column header (e.g. "cycles")
 */
void barFigure(const std::vector<std::string> &series,
               const std::string &unit, const std::vector<Row> &rows);

/** Print a percentage-stacked figure (Figs 4.8/4.9 style). */
void stackedPercentFigure(const std::vector<std::string> &series,
                          const std::vector<Row> &rows);

/** Print a plain table (Tables 4.4/4.5 style). */
void table(const std::vector<std::string> &columns,
           const std::vector<Row> &rows, int precision = 2);

/** Print Tables 4.1-4.3: the platform configuration. */
void configTables(const SystemConfig &riscv_cfg,
                  const SystemConfig &x86_cfg);

} // namespace svb::report

#endif // SVB_CORE_REPORT_HH
