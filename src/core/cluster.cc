#include "cluster.hh"

#include "guest/syscall_abi.hh"
#include "sim/logging.hh"
#include "stack/topology.hh"

namespace svb
{

ServerlessCluster::ServerlessCluster(const ClusterConfig &config)
    : cfg(config)
{
    buildSystem();
}

void
ServerlessCluster::buildSystem()
{
    machine = std::make_unique<System>(cfg.system);
    machine->setM5Listener(this);

    // Shared ring region: one allocation, identical across rebuilds
    // because the frame allocator is deterministic.
    ringsPhys = machine->frames().allocFrames(topo::sharedRegionBytes /
                                          paging::pageSize);
    machine->phys().clearRange(ringsPhys, topo::sharedRegionBytes);

    createStoreContainers();
}

void
ServerlessCluster::createStoreContainers()
{
    dbPid = -1;
    mcPid = -1;
    if (cfg.startDb) {
        db::DbParams params;
        params.kind = cfg.dbKind;
        params.reqRingVa = topo::dbReqRingVa;
        LoadableImage image = db::buildDbProgram(params, cfg.system.isa);
        LoadedProgram lp =
            loadProcess(machine->kernel(), image,
                        std::string(db::dbKindName(cfg.dbKind)),
                        topo::clientCore);
        dbPid = lp.pid;
        mapSharedInto(machine->kernel(), dbPid, layout::sharedBase, ringsPhys,
                      topo::sharedRegionBytes);
    }
    if (cfg.startMemcached) {
        db::DbParams params;
        params.kind = db::DbKind::Memcached;
        params.reqRingVa = topo::mcReqRingVa;
        LoadableImage image = db::buildDbProgram(params, cfg.system.isa);
        LoadedProgram lp = loadProcess(machine->kernel(), image, "memcached",
                                       topo::clientCore);
        mcPid = lp.pid;
        mapSharedInto(machine->kernel(), mcPid, layout::sharedBase, ringsPhys,
                      topo::sharedRegionBytes);
    }
}

void
ServerlessCluster::boot()
{
    if (baseline.has_value())
        return;

    // A runner whose first experiments all restored from prepared
    // checkpoints never booted; its machine has run (deployments,
    // advanced clock) and must be rebuilt before the store bootstraps
    // execute on it.
    if (machine->cycle() != 0)
        buildSystem();

    const uint64_t expected_ready =
        (cfg.startDb ? 1u : 0u) + (cfg.startMemcached ? 1u : 0u);
    machine->scheduleIdleCores();
    if (expected_ready > 0) {
        if (!runUntilReady(expected_ready))
            svb_fatal("store containers failed to boot");
        // Drain until both stores are parked in their receive loops.
        machine->run(20'000);
    }
    baseline = machine->saveCheckpoint();
}

void
ServerlessCluster::resetToBaseline()
{
    svb_assert(baseline.has_value(), "resetToBaseline before boot()");
    nWorkBegin = nWorkEnd = nReady = 0;
    nSlotWorkEnd[0] = nSlotWorkEnd[1] = 0;
    workBeginCycle = workEndCycle = 0;
    stopAtWorkEnds = ~uint64_t(0);
    stopSlot = -1;
    resetOnBegin = false;
    resetOnBeginSlot = -1;
    beginSnap.clear();
    buildSystem();
    machine->restoreCheckpoint(*baseline);
}

Checkpoint
ServerlessCluster::savePrepared() const
{
    Checkpoint cp = machine->saveCheckpoint(/*include_uarch=*/true);
    cp.setScalar("cluster.nWorkBegin", nWorkBegin);
    cp.setScalar("cluster.nWorkEnd", nWorkEnd);
    cp.setScalar("cluster.nSlotWorkEnd0", nSlotWorkEnd[0]);
    cp.setScalar("cluster.nSlotWorkEnd1", nSlotWorkEnd[1]);
    cp.setScalar("cluster.nReady", nReady);
    cp.setScalar("cluster.workBeginCycle", workBeginCycle);
    cp.setScalar("cluster.workEndCycle", workEndCycle);
    return cp;
}

void
ServerlessCluster::beginRestore()
{
    nWorkBegin = nWorkEnd = nReady = 0;
    nSlotWorkEnd[0] = nSlotWorkEnd[1] = 0;
    workBeginCycle = workEndCycle = 0;
    stopAtWorkEnds = ~uint64_t(0);
    stopSlot = -1;
    resetOnBegin = false;
    resetOnBeginSlot = -1;
    beginSnap.clear();
    buildSystem();
}

void
ServerlessCluster::finishRestore(const Checkpoint &cp,
                                 std::shared_ptr<const PageImage> image)
{
    machine->restoreCheckpoint(cp, std::move(image));
    nWorkBegin = cp.getScalar("cluster.nWorkBegin");
    nWorkEnd = cp.getScalar("cluster.nWorkEnd");
    nSlotWorkEnd[0] = cp.getScalar("cluster.nSlotWorkEnd0");
    nSlotWorkEnd[1] = cp.getScalar("cluster.nSlotWorkEnd1");
    nReady = cp.getScalar("cluster.nReady");
    workBeginCycle = cp.getScalar("cluster.workBeginCycle");
    workEndCycle = cp.getScalar("cluster.workEndCycle");
}

ServerlessCluster::Deployment
ServerlessCluster::deploy(const FunctionSpec &spec,
                          const WorkloadImpl &impl, unsigned ring_slot)
{
    Deployment dep;
    {
        LoadableImage image =
            buildServerProgram(spec, impl, cfg.system.isa, ring_slot);
        LoadedProgram lp = loadProcess(machine->kernel(), image,
                                       spec.name + (ring_slot ? "#1" : ""),
                                       topo::serverCore);
        dep.serverPid = lp.pid;
        mapSharedInto(machine->kernel(), dep.serverPid, layout::sharedBase,
                      ringsPhys, topo::sharedRegionBytes);
    }
    {
        LoadableImage image =
            buildClientProgram(spec, impl, cfg.system.isa, ring_slot);
        LoadedProgram lp = loadProcess(machine->kernel(), image,
                                       spec.name + "-client" +
                                           (ring_slot ? "#1" : ""),
                                       topo::clientCore);
        dep.clientPid = lp.pid;
        mapSharedInto(machine->kernel(), dep.clientPid, layout::sharedBase,
                      ringsPhys, topo::sharedRegionBytes);
    }
    resetFunctionRings();
    machine->scheduleIdleCores();
    return dep;
}

void
ServerlessCluster::openClientGate(const Deployment &deployment)
{
    AddressSpace &as = *machine->kernel().process(deployment.clientPid).space;
    as.write(layout::heapBase, 1, 8);
}

void
ServerlessCluster::resetFunctionRings()
{
    // Client<->server ring pairs: pages 0-1 (slot 0) and 6-7 (slot 1).
    machine->phys().clearRange(ringsPhys, 2 * 0x1000);
    machine->phys().clearRange(ringsPhys + 6 * 0x1000, 2 * 0x1000);
}

bool
ServerlessCluster::runUntilSlotWorkEnds(unsigned slot, uint64_t target)
{
    stopAtWorkEnds = target;
    stopSlot = int(slot & 1);
    while (nSlotWorkEnd[slot & 1] < target) {
        const uint64_t ran = machine->run(cfg.phaseCycleLimit);
        if (nSlotWorkEnd[slot & 1] >= target)
            break;
        if (ran >= cfg.phaseCycleLimit)
            return false;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.system.numCores; ++c)
            any_active |= !machine->cpu(c).halted();
        if (!any_active)
            return false;
    }
    stopAtWorkEnds = ~uint64_t(0);
    stopSlot = -1;
    return true;
}

bool
ServerlessCluster::runUntilWorkEnds(uint64_t target)
{
    stopAtWorkEnds = target;
    stopSlot = -1;
    while (nWorkEnd < target) {
        const uint64_t ran = machine->run(cfg.phaseCycleLimit);
        if (nWorkEnd >= target)
            break;
        if (ran >= cfg.phaseCycleLimit)
            return false; // hung
        // run() returned because of a requestStop from an earlier
        // target or because everything halted.
        bool any_active = false;
        for (unsigned c = 0; c < cfg.system.numCores; ++c)
            any_active |= !machine->cpu(c).halted();
        if (!any_active)
            return false;
    }
    stopAtWorkEnds = ~uint64_t(0);
    return true;
}

bool
ServerlessCluster::runUntilReady(uint64_t target_events)
{
    while (nReady < target_events) {
        const uint64_t ran = machine->run(cfg.phaseCycleLimit);
        if (nReady >= target_events)
            break;
        if (ran >= cfg.phaseCycleLimit)
            return false;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.system.numCores; ++c)
            any_active |= !machine->cpu(c).halted();
        if (!any_active)
            return false;
    }
    return true;
}

void
ServerlessCluster::m5Op(int core_id, uint64_t op, uint64_t arg)
{
    (void)core_id;
    switch (op) {
      case sys::m5WorkBegin: {
        ++nWorkBegin;
        workBeginCycle = machine->cycle();
        const int slot = int(arg >> 32) & 1;
        if (resetOnBegin &&
            (resetOnBeginSlot < 0 || resetOnBeginSlot == slot)) {
            machine->stats().resetAll();
            // Post-reset snapshot: the measured request's stats are a
            // delta against this (an all-zero baseline, so the delta
            // reproduces the legacy absolute readings bit-for-bit).
            beginSnap = machine->stats().snapshotAll();
            resetOnBegin = false;
        }
        break;
      }
      case sys::m5WorkEnd: {
        ++nWorkEnd;
        const unsigned slot = unsigned(arg >> 32) & 1;
        ++nSlotWorkEnd[slot];
        workEndCycle = machine->cycle();
        if (traceTrack != obs::badTrack) {
            obs::Tracer::global().record(
                traceTrack, "request#" + std::to_string(nWorkEnd), "request",
                workBeginCycle, workEndCycle - workBeginCycle);
        }
        const uint64_t relevant =
            stopSlot < 0 ? nWorkEnd : nSlotWorkEnd[unsigned(stopSlot)];
        if ((stopSlot < 0 || stopSlot == int(slot)) &&
            relevant >= stopAtWorkEnds)
            machine->requestStop();
        break;
      }
      case sys::m5Event:
        if (arg == db::dbReadyEvent || arg == containerReadyEvent) {
            ++nReady;
            machine->requestStop();
        }
        break;
      default:
        break;
    }
}

} // namespace svb
