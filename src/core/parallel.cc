#include "parallel.hh"

#include <cstdlib>
#include <map>
#include <type_traits>

#include "checkpoint_store.hh"
#include "sim/logging.hh"

namespace svb
{

// Results are merged across threads by copying into a pre-sized
// vector slot per submission index.
static_assert(std::is_copy_assignable_v<FunctionResult>,
              "parallel merge requires copyable results");

// The shared-state audit for this scheduler rests on stat trees being
// impossible to alias across clusters: keep StatGroup non-copyable.
static_assert(!std::is_copy_constructible_v<StatGroup> &&
                  !std::is_copy_assignable_v<StatGroup>,
              "StatGroup must stay instance-scoped per System");

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    taskReady.notify_all();
    for (std::thread &t : workers)
        t.join();
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("SVBENCH_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return unsigned(v);
        warn("ignoring SVBENCH_JOBS='", env, "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        svb_assert(!stopping, "submit() on a stopping ThreadPool");
        tasks.push_back(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mtx);
    allDone.wait(lk, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lk(mtx);
            taskReady.wait(lk,
                           [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mtx);
            --inFlight;
            if (inFlight == 0)
                allDone.notify_all();
        }
    }
}

std::vector<FunctionResult>
parallelSweep(ResultCache &cache, const std::vector<SweepJob> &jobs,
              unsigned jobs_override)
{
    std::vector<FunctionResult> results(jobs.size());

    // Partition into cache hits (answered inline), primary misses
    // (one per distinct cache key; these run on the pool) and
    // duplicate misses (same key as an earlier job; resolved from the
    // primary's result, exactly as a serial sweep would hit the row
    // the primary just recorded).
    std::map<std::string, size_t> primaryForKey;
    std::vector<size_t> primaries;
    std::vector<char> isHit(jobs.size(), 0);
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (cache.lookupDetailed(jobs[i].cfg, jobs[i].spec, results[i])) {
            isHit[i] = 1;
            continue;
        }
        const std::string key = cache.detailedKey(jobs[i].cfg, jobs[i].spec);
        if (primaryForKey.emplace(key, i).second)
            primaries.push_back(i);
    }

    if (!primaries.empty()) {
        // One task per prepared-state checkpoint key, not per job:
        // jobs sharing a key run sequentially on one worker, so the
        // tuple's expensive setup happens exactly once and groupmates
        // restore from the snapshot it just published, instead of
        // blocking in the store's claim/wait on other threads.
        std::map<std::string, std::vector<size_t>> groups;
        std::vector<const std::vector<size_t> *> groupOrder;
        for (size_t idx : primaries) {
            const std::string ck =
                cache.checkpointKeyOf(jobs[idx].cfg, jobs[idx].spec);
            auto [it, inserted] = groups.try_emplace(ck);
            if (inserted)
                groupOrder.push_back(&it->second);
            it->second.push_back(idx);
        }
        ThreadPool pool(jobs_override);
        for (const std::vector<size_t> *members : groupOrder) {
            pool.submit([&cache, &jobs, &results, members] {
                for (size_t idx : *members)
                    results[idx] = cache.computeDetailed(
                        jobs[idx].cfg, jobs[idx].spec, *jobs[idx].impl);
            });
        }
        pool.wait();
        // Single-writer CSV append, in submission order: the cache
        // file is byte-identical to what a serial sweep writes.
        for (size_t idx : primaries)
            cache.recordDetailed(jobs[idx].cfg, jobs[idx].spec,
                                 results[idx]);
    }

    for (size_t i = 0; i < jobs.size(); ++i) {
        if (isHit[i])
            continue;
        const std::string key = cache.detailedKey(jobs[i].cfg, jobs[i].spec);
        const size_t primary = primaryForKey.at(key);
        if (primary != i)
            results[i] = results[primary];
    }
    return results;
}

std::vector<FunctionResult>
parallelRun(const std::vector<SweepJob> &jobs, unsigned jobs_override)
{
    std::vector<FunctionResult> results(jobs.size());
    // Ablation points usually differ only in backend parameters
    // (latencies, O3 geometry, predictors), which the prepared-state
    // fingerprint deliberately ignores — so whole ablation series
    // share one checkpoint. Group by that key: the first job of a
    // group prepares and publishes, its groupmates restore in-memory.
    std::map<std::string, std::vector<size_t>> groups;
    std::vector<const std::vector<size_t> *> groupOrder;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const std::string ck =
            CheckpointStore::fingerprint(jobs[i].cfg, jobs[i].spec);
        auto [it, inserted] = groups.try_emplace(ck);
        if (inserted)
            groupOrder.push_back(&it->second);
        it->second.push_back(i);
    }
    ThreadPool pool(jobs_override);
    for (const std::vector<size_t> *members : groupOrder) {
        pool.submit([&jobs, &results, members] {
            for (size_t i : *members) {
                ExperimentRunner runner(jobs[i].cfg);
                results[i] =
                    runner.runFunction(jobs[i].spec, *jobs[i].impl);
            }
        });
    }
    pool.wait();
    return results;
}

} // namespace svb
