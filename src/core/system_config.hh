/**
 * @file
 * System configuration mirroring Tables 4.1-4.3 of the paper.
 */

#ifndef SVB_CORE_SYSTEM_CONFIG_HH
#define SVB_CORE_SYSTEM_CONFIG_HH

#include <string>

#include "cpu/o3_cpu.hh"
#include "isa/isa_info.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"

namespace svb
{

/**
 * Full configuration of one simulated platform.
 *
 * Defaults reproduce Table 4.1: 2 cores, 32 KiB 8-way L1I/L1D,
 * 512 KiB 4-way private L2, DDR3-1600-style single-channel DRAM,
 * 192-entry ROB, 32+32 LSQ, 256 physical integer registers, 1 GHz.
 */
struct SystemConfig
{
    IsaId isa = IsaId::Riscv;
    unsigned numCores = 2;
    uint64_t clockMHz = 1000;

    /**
     * Backing store actually allocated by the simulator. The modelled
     * platform is 2 GB (Table 4.1); the scaled-down workloads fit
     * comfortably in this backing allocation.
     */
    size_t memBytes = 96 * 1024 * 1024;

    CoreMemParams caches;
    DramParams dram;
    O3Params o3;

    uint64_t seed = 0x5eed;

    /**
     * Route boot/warming (Atomic-model) execution through the
     * superblock fast path (cpu/superblock.hh). Byte-identical to the
     * per-instruction path; disable to force the oracle interpreter.
     * ANDed with the SVBENCH_FASTWARM environment override ("0"
     * disables), so either side can force the slow path.
     */
    bool fastWarm = true;

    /**
     * Restore prepared-state checkpoints working-set-aware (REAP
     * style): prefetch the recorded cold-request working set from the
     * shared CoW page store and materialise every other snapshot page
     * on first touch. Byte-identical guest state and statistics to a
     * full restore; disable to force the full-copy oracle. ANDed with
     * the SVBENCH_REAP environment override ("0" disables), so either
     * side can force the slow path.
     */
    bool reapRestore = true;

    /** Table 4.2 / 4.3 provenance strings (reporting only). */
    std::string osLabel;
    std::string compilerLabel;

    /** @return the configuration used throughout Chapter 4. */
    static SystemConfig
    paperConfig(IsaId isa)
    {
        SystemConfig cfg;
        cfg.isa = isa;
        if (isa == IsaId::Riscv) {
            cfg.osLabel = "Ubuntu Jammy 22.04.3 Preinstalled Server";
            cfg.compilerLabel = "riscv64-unknown-linux-gnu-gcc 13.2.0";
        } else {
            cfg.osLabel = "Ubuntu Jammy 22.04.4 Live Server";
            cfg.compilerLabel = "gcc 11.4.0";
        }
        return cfg;
    }
};

} // namespace svb

#endif // SVB_CORE_SYSTEM_CONFIG_HH
