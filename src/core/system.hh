/**
 * @file
 * The simulated platform: memory, cores, kernel, and run control.
 *
 * A System is the gem5-full-system equivalent: it owns the physical
 * memory, the cache hierarchies, one Atomic and one O3 CPU per core
 * (switchable, as in the vSwarm-u setup/evaluation methodology), and
 * the guest kernel.
 */

#ifndef SVB_CORE_SYSTEM_HH
#define SVB_CORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <ostream>

#include "cpu/atomic_cpu.hh"
#include "cpu/o3_cpu.hh"
#include "cpu/superblock.hh"
#include "guest/kernel.hh"
#include "sim/eventq.hh"
#include "sim/rng.hh"
#include "system_config.hh"

namespace svb
{

/** Which CPU model currently drives a core. */
enum class CpuModel { Atomic, O3 };

/**
 * One simulated machine.
 */
class System : public M5Listener
{
  public:
    explicit System(const SystemConfig &config);

    // --- accessors ---------------------------------------------------------
    const SystemConfig &config() const { return cfg; }
    PhysMemory &phys() { return *physMem; }
    FrameAllocator &frames() { return *frameAlloc; }
    GuestKernel &kernel() { return *guestKernel; }
    EventQueue &events() { return eventq; }
    Rng &rng() { return rngState; }
    StatGroup &stats() { return rootStats; }
    CoreMemSystem &coreMem(unsigned core) { return *coreMems.at(core); }
    AtomicCpu &atomicCpu(unsigned core) { return *atomics.at(core); }
    O3Cpu &o3Cpu(unsigned core) { return *o3s.at(core); }
    BaseCpu &cpu(unsigned core);
    CpuModel cpuModel(unsigned core) const { return models.at(core); }
    uint64_t cycle() const { return globalCycle; }
    SuperblockCache &superblocks() { return *sblocks; }

    /** True when Atomic-model cores run through the superblock tier
     *  (config AND SVBENCH_FASTWARM both enabled). */
    bool fastPathEnabled() const { return fastWarm; }

    /** True when checkpoint restores may take the working-set-aware
     *  lazy path (config AND SVBENCH_REAP both enabled). */
    bool reapEnabled() const { return reapRestore; }

    // --- CPU control --------------------------------------------------------
    /** Hand the core's architectural state to the other CPU model. */
    void switchCpu(unsigned core, CpuModel model);

    /** Put runnable processes onto idle cores. */
    void scheduleIdleCores();

    /** Drop all cached microarchitectural state (cold start). */
    void flushMicroarchState();

    // --- execution -----------------------------------------------------------
    /**
     * Run for at most @p max_cycles; stops early when requestStop() is
     * called or every core is halted.
     *
     * @return cycles actually run
     */
    uint64_t run(uint64_t max_cycles);

    /** Run until @p cond returns true (checked each cycle). */
    uint64_t runUntil(const std::function<bool()> &cond,
                      uint64_t max_cycles);

    /** Ask the run loop to return at the end of the current cycle. */
    void requestStop() { stopRequested = true; }

    // --- magic-operation plumbing ---------------------------------------------
    /** Install the downstream listener (the experiment harness). */
    void setM5Listener(M5Listener *listener) { chainedListener = listener; }

    /**
     * Stream that receives a gem5-style stats listing on every guest
     * m5DumpStats; nullptr (default) disables dumping.
     */
    void setStatsDumpStream(std::ostream *os) { statsDumpStream = os; }

    void m5Op(int core_id, uint64_t op, uint64_t arg) override;

    // --- checkpointing ----------------------------------------------------------
    /**
     * Serialise the full functional state. Every core must currently
     * run its Atomic CPU (detailed state is not checkpointable, as in
     * gem5).
     *
     * With @p include_uarch the warm microarchitectural state rides
     * along too: caches, TLBs, DRAM open rows, decode cache, trained
     * branch predictors and in-flight atomic-CPU stall cycles. Such a
     * snapshot restores to a machine byte-identical to the one it was
     * taken on, so measurements after a restore match an uninterrupted
     * run exactly.
     */
    Checkpoint saveCheckpoint(bool include_uarch = false) const;

    /**
     * Restore a checkpoint taken on an identically built system.
     * Checkpoints without microarchitectural state (the default above)
     * flush caches/TLBs/predictors afterwards; checkpoints carrying it
     * restore that warm state instead. Restore must happen on a
     * freshly built system (detailed-CPU structures in their
     * constructed state), which the cluster's restore path guarantees.
     *
     * With a non-null @p image (the CheckpointStore's shared page
     * image of @p cp) and reapEnabled(), guest memory restores
     * working-set-aware: the recorded working set is prefetched and
     * the remaining snapshot pages materialise copy-on-write on first
     * touch — byte-identical guest state either way.
     */
    void restoreCheckpoint(const Checkpoint &cp,
                           std::shared_ptr<const PageImage> image = nullptr);

  private:
    /** One cycle for core @p c through the appropriate engine. */
    void tickCore(unsigned c);

    SystemConfig cfg;
    StatGroup rootStats{"system"};
    Rng rngState;
    EventQueue eventq;

    std::unique_ptr<PhysMemory> physMem;
    std::unique_ptr<FrameAllocator> frameAlloc;
    std::unique_ptr<DramCtrl> dram;
    CoherenceBus bus;
    std::vector<std::unique_ptr<CoreMemSystem>> coreMems;
    std::unique_ptr<DecodeCache> decoder;
    std::unique_ptr<SuperblockCache> sblocks;
    std::unique_ptr<GuestKernel> guestKernel;
    std::vector<std::unique_ptr<AtomicCpu>> atomics;
    std::vector<std::unique_ptr<O3Cpu>> o3s;
    std::vector<CpuModel> models;

    uint64_t globalCycle = 0;
    bool fastWarm = true;
    bool reapRestore = true;
    bool stopRequested = false;
    M5Listener *chainedListener = nullptr;
    std::ostream *statsDumpStream = nullptr;
};

} // namespace svb

#endif // SVB_CORE_SYSTEM_HH
