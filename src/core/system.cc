#include "system.hh"

#include "guest/syscall_abi.hh"
#include "sim/logging.hh"

namespace svb
{

System::System(const SystemConfig &config)
    : cfg(config), rngState(config.seed)
{
    physMem = std::make_unique<PhysMemory>(cfg.memBytes);
    // Reserve the first 64 KiB as a null-guard region.
    frameAlloc = std::make_unique<FrameAllocator>(0x10000, cfg.memBytes);
    dram = std::make_unique<DramCtrl>(cfg.dram, rootStats);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        coreMems.push_back(std::make_unique<CoreMemSystem>(
            int(c), cfg.caches, *dram, bus, rootStats));
    }
    decoder = std::make_unique<DecodeCache>(cfg.isa, *physMem);
    guestKernel = std::make_unique<GuestKernel>(
        *physMem, *frameAlloc, cfg.isa, int(cfg.numCores), rootStats);
    guestKernel->setM5Listener(this);

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        StatGroup &core_group =
            rootStats.childGroup("cpu" + std::to_string(c));
        atomics.push_back(std::make_unique<AtomicCpu>(
            int(c), cfg.isa, *physMem, *coreMems[c], *decoder,
            *guestKernel, core_group));
        o3s.push_back(std::make_unique<O3Cpu>(
            cfg.o3, int(c), cfg.isa, *physMem, *coreMems[c], *decoder,
            *guestKernel, core_group));
        models.push_back(CpuModel::Atomic);
    }
}

BaseCpu &
System::cpu(unsigned core)
{
    return models.at(core) == CpuModel::Atomic
               ? static_cast<BaseCpu &>(*atomics.at(core))
               : static_cast<BaseCpu &>(*o3s.at(core));
}

void
System::switchCpu(unsigned core, CpuModel model)
{
    if (models.at(core) == model)
        return;
    const HwContext ctx = cpu(core).getContext();
    models[core] = model;
    cpu(core).setContext(ctx);
}

void
System::scheduleIdleCores()
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!cpu(c).halted())
            continue;
        HwContext ctx;
        if (guestKernel->scheduleCore(int(c), ctx))
            cpu(c).setContext(ctx);
    }
}

void
System::flushMicroarchState()
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        coreMems[c]->flushAll();
        cpu(c).itlb().flush();
        cpu(c).dtlb().flush();
        o3s[c]->branchPredictor().reset();
    }
}

uint64_t
System::run(uint64_t max_cycles)
{
    stopRequested = false;
    uint64_t ran = 0;
    for (; ran < max_cycles && !stopRequested; ++ran) {
        ++globalCycle;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            BaseCpu &core = cpu(c);
            core.tick();
            any_active |= !core.halted();
        }
        eventq.serviceUpTo(globalCycle);
        if (!any_active && eventq.pending() == 0) {
            ++ran;
            break;
        }
    }
    return ran;
}

uint64_t
System::runUntil(const std::function<bool()> &cond, uint64_t max_cycles)
{
    stopRequested = false;
    uint64_t ran = 0;
    while (ran < max_cycles && !stopRequested && !cond()) {
        ++globalCycle;
        ++ran;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            BaseCpu &core = cpu(c);
            core.tick();
            any_active |= !core.halted();
        }
        eventq.serviceUpTo(globalCycle);
        if (!any_active && eventq.pending() == 0)
            break;
    }
    return ran;
}

void
System::m5Op(int core_id, uint64_t op, uint64_t arg)
{
    switch (op) {
      case sys::m5ResetStats:
        rootStats.resetAll();
        break;
      case sys::m5DumpStats:
        if (statsDumpStream != nullptr) {
            *statsDumpStream << "---------- Begin Simulation Statistics"
                             << " (cycle " << globalCycle
                             << ") ----------\n";
            rootStats.printAll(*statsDumpStream);
            *statsDumpStream << "---------- End Simulation Statistics"
                             << " ----------\n";
        }
        break;
      case sys::m5ExitSim:
        requestStop();
        break;
      default:
        break;
    }
    if (chainedListener != nullptr)
        chainedListener->m5Op(core_id, op, arg);
}

Checkpoint
System::saveCheckpoint(bool include_uarch) const
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        svb_assert(models[c] == CpuModel::Atomic,
                   "checkpoints require the Atomic CPU (core ", c, ")");
    }
    Checkpoint cp;
    cp.setString("system.isa", isaName(cfg.isa));
    cp.setScalar("system.cycle", globalCycle);
    physMem->serializeState("mem.", cp);
    frameAlloc->serializeState("frames.", cp);
    guestKernel->serializeState("kernel.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const HwContext ctx = atomics[c]->getContext();
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        cp.setScalar(prefix + "pc", ctx.pc);
        cp.setScalar(prefix + "ptRoot", ctx.ptRoot);
        cp.setScalar(prefix + "processId",
                     uint64_t(int64_t(ctx.processId)));
        cp.setScalar(prefix + "halted", ctx.halted ? 1 : 0);
        for (unsigned r = 0; r < maxArchRegs; ++r)
            cp.setScalar(prefix + "reg" + std::to_string(r), ctx.regs[r]);
    }
    if (include_uarch) {
        cp.setScalar("uarch.present", 1);
        decoder->serializeState("decode.", cp);
        dram->serializeState("dram.", cp);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            const std::string prefix = "cpu" + std::to_string(c) + ".";
            coreMems[c]->serializeState(prefix + "mem.", cp);
            atomics[c]->itlb().serializeState(prefix + "itlb.", cp);
            atomics[c]->dtlb().serializeState(prefix + "dtlb.", cp);
            cp.setScalar(prefix + "stall", atomics[c]->stallCycles());
            // Setup mode runs the Atomic CPU, which never trains the
            // predictor; a cold predictor is recorded as a flag, not
            // tables, so the snapshot stays valid (and shareable)
            // across branch-predictor-geometry ablation points.
            const BranchPredictor &bp = o3s[c]->branchPredictor();
            const bool warm = !bp.isReset();
            cp.setScalar(prefix + "bpWarm", warm ? 1 : 0);
            if (warm)
                bp.serializeState(prefix + "bp.", cp);
        }
    }
    return cp;
}

void
System::restoreCheckpoint(const Checkpoint &cp)
{
    svb_assert(cp.getString("system.isa") == isaName(cfg.isa),
               "checkpoint ISA mismatch");
    globalCycle = cp.getScalar("system.cycle");
    eventq.clear();
    physMem->unserializeState("mem.", cp);
    frameAlloc->unserializeState("frames.", cp);
    guestKernel->unserializeState("kernel.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        HwContext ctx;
        ctx.pc = cp.getScalar(prefix + "pc");
        ctx.ptRoot = cp.getScalar(prefix + "ptRoot");
        ctx.processId = int(int64_t(cp.getScalar(prefix + "processId")));
        ctx.halted = cp.getScalar(prefix + "halted") != 0;
        for (unsigned r = 0; r < maxArchRegs; ++r)
            ctx.regs[r] = cp.getScalar(prefix + "reg" + std::to_string(r));
        models[c] = CpuModel::Atomic;
        atomics[c]->setContext(ctx);
    }
    if (!cp.hasScalar("uarch.present")) {
        flushMicroarchState();
        return;
    }
    // Warm-state restore. Order matters: setContext() above flushed
    // the Atomic TLBs, so they are repopulated here; physical memory
    // is already restored, so the decode cache can re-decode.
    decoder->unserializeState("decode.", cp);
    dram->unserializeState("dram.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        coreMems[c]->unserializeState(prefix + "mem.", cp);
        atomics[c]->itlb().unserializeState(prefix + "itlb.", cp);
        atomics[c]->dtlb().unserializeState(prefix + "dtlb.", cp);
        atomics[c]->setStallCycles(cp.getScalar(prefix + "stall"));
        if (cp.getScalar(prefix + "bpWarm") != 0)
            o3s[c]->branchPredictor().unserializeState(prefix + "bp.", cp);
        else
            o3s[c]->branchPredictor().reset();
    }
}

} // namespace svb
