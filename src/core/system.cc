#include "system.hh"

#include "guest/syscall_abi.hh"
#include "sim/logging.hh"

namespace svb
{

System::System(const SystemConfig &config)
    : cfg(config), rngState(config.seed)
{
    physMem = std::make_unique<PhysMemory>(cfg.memBytes);
    // Reserve the first 64 KiB as a null-guard region.
    frameAlloc = std::make_unique<FrameAllocator>(0x10000, cfg.memBytes);
    dram = std::make_unique<DramCtrl>(cfg.dram, rootStats);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        coreMems.push_back(std::make_unique<CoreMemSystem>(
            int(c), cfg.caches, *dram, bus, rootStats));
    }
    decoder = std::make_unique<DecodeCache>(cfg.isa, *physMem);
    // Host-observability groups: they count simulator work, which
    // legitimately differs across emulation tiers and checkpoint
    // restores, so they stay outside the snapshot identity surface.
    StatGroup &decode_grp = rootStats.childGroup("decode");
    decode_grp.markHostOnly();
    decoder->attachStats(decode_grp);
    sblocks = std::make_unique<SuperblockCache>(*decoder);
    StatGroup &sblock_grp = rootStats.childGroup("superblock");
    sblock_grp.markHostOnly();
    sblocks->attachStats(sblock_grp);
    fastWarm = cfg.fastWarm && SuperblockCache::envEnabled();
    reapRestore = cfg.reapRestore && reapEnvEnabled();
    // Page/restore accounting is simulator work (restore mode changes
    // it, guest-visible behavior doesn't), so it stays host-only like
    // the decode and superblock groups.
    StatGroup &mempage_grp = rootStats.childGroup("mempage");
    mempage_grp.markHostOnly();
    physMem->attachStats(mempage_grp);
    guestKernel = std::make_unique<GuestKernel>(
        *physMem, *frameAlloc, cfg.isa, int(cfg.numCores), rootStats);
    guestKernel->setM5Listener(this);

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        StatGroup &core_group =
            rootStats.childGroup("cpu" + std::to_string(c));
        atomics.push_back(std::make_unique<AtomicCpu>(
            int(c), cfg.isa, *physMem, *coreMems[c], *decoder,
            *guestKernel, core_group, sblocks.get()));
        o3s.push_back(std::make_unique<O3Cpu>(
            cfg.o3, int(c), cfg.isa, *physMem, *coreMems[c], *decoder,
            *guestKernel, core_group));
        models.push_back(CpuModel::Atomic);
    }
}

BaseCpu &
System::cpu(unsigned core)
{
    return models.at(core) == CpuModel::Atomic
               ? static_cast<BaseCpu &>(*atomics.at(core))
               : static_cast<BaseCpu &>(*o3s.at(core));
}

void
System::switchCpu(unsigned core, CpuModel model)
{
    if (models.at(core) == model)
        return;
    const HwContext ctx = cpu(core).getContext();
    models[core] = model;
    cpu(core).setContext(ctx);
}

void
System::scheduleIdleCores()
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!cpu(c).halted())
            continue;
        HwContext ctx;
        if (guestKernel->scheduleCore(int(c), ctx))
            cpu(c).setContext(ctx);
    }
}

void
System::flushMicroarchState()
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        coreMems[c]->flushAll();
        cpu(c).itlb().flush();
        cpu(c).dtlb().flush();
        // The superblock cursor caches an instruction-page translation
        // made before this flush; drop it so the fast path re-walks.
        atomics[c]->resetFastPath();
        o3s[c]->branchPredictor().reset();
    }
}

void
System::tickCore(unsigned c)
{
    // Atomic-model cores step through the superblock engine when the
    // fast tier is enabled and no trace sink needs per-retirement
    // callbacks; tickFast() is cycle-for-cycle identical to tick().
    if (fastWarm && models[c] == CpuModel::Atomic && !atomics[c]->tracing())
        atomics[c]->tickFast();
    else
        cpu(c).tick();
}

uint64_t
System::run(uint64_t max_cycles)
{
    stopRequested = false;
    uint64_t ran = 0;
    while (ran < max_cycles && !stopRequested) {
        // Fast-path eligibility, re-evaluated every iteration: model
        // switches, halts and trace sinks only change inside trap
        // handlers or between run() calls, both of which end the
        // chained batch below.
        bool all_atomic_fast = fastWarm;
        unsigned n_active = 0;
        unsigned active_core = 0;
        for (unsigned c = 0; c < cfg.numCores && all_atomic_fast; ++c) {
            if (models[c] != CpuModel::Atomic || atomics[c]->tracing()) {
                all_atomic_fast = false;
            } else if (!atomics[c]->halted()) {
                ++n_active;
                active_core = c;
            }
        }

        if (all_atomic_fast && n_active == 1) {
            // Chained superblock execution on the single runnable
            // core: stay inside the dispatch loop until the budget, a
            // trap, or the next pending event — nothing inside a batch
            // schedules events, so the clamp below keeps event
            // delivery on its exact per-cycle tick. Halted cores are
            // credited idle cycles in bulk; the mid-cycle interleaving
            // a trap handler could observe is reconstructed by
            // pre_trap before the handler runs.
            uint64_t budget = max_cycles - ran;
            if (eventq.pending() > 0) {
                const Tick next_ev = eventq.nextEventTick();
                svb_assert(next_ev > globalCycle, "overdue event");
                budget =
                    std::min<uint64_t>(budget, next_ev - globalCycle);
            }
            const unsigned k = active_core;
            const uint64_t g0 = globalCycle;
            bool trapped = false;
            const AtomicCpu::PreTrap pre_trap = [&](uint64_t batch) {
                // On the per-cycle path, cycle g0+batch would have
                // ticked cores 0..k-1 (idle) before core k traps and
                // cores k+1.. only on the batch's earlier cycles.
                trapped = true;
                globalCycle = g0 + batch;
                for (unsigned c = 0; c < cfg.numCores; ++c) {
                    if (c < k)
                        atomics[c]->addIdleCycles(batch);
                    else if (c > k)
                        atomics[c]->addIdleCycles(batch - 1);
                }
            };
            const uint64_t consumed =
                atomics[k]->runFast(budget, &pre_trap);
            globalCycle = g0 + consumed;
            ran += consumed;
            // Idle top-up to exactly `consumed` per halted core: after
            // a trap, cores above k still owe the trapping cycle; with
            // no trap, pre_trap never ran and everyone owes the batch.
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                if (c == k)
                    continue;
                if (trapped) {
                    if (c > k)
                        atomics[c]->addIdleCycles(1);
                } else {
                    atomics[c]->addIdleCycles(consumed);
                }
            }
            eventq.serviceUpTo(globalCycle);
            bool any_active = false;
            for (unsigned c = 0; c < cfg.numCores; ++c)
                any_active |= !cpu(c).halted();
            if (!any_active && eventq.pending() == 0)
                break;
            continue;
        }

        if (all_atomic_fast && n_active == 0 && eventq.pending() > 0) {
            // Everyone is halted but an event is due: jump straight to
            // it, crediting the skipped cycles as idle — byte-identical
            // to ticking every core through its halted branch.
            const Tick next_ev = eventq.nextEventTick();
            svb_assert(next_ev > globalCycle, "overdue event");
            const uint64_t skip = std::min<uint64_t>(max_cycles - ran,
                                                     next_ev - globalCycle);
            globalCycle += skip;
            ran += skip;
            for (unsigned c = 0; c < cfg.numCores; ++c)
                atomics[c]->addIdleCycles(skip);
            eventq.serviceUpTo(globalCycle);
            bool any_active = false;
            for (unsigned c = 0; c < cfg.numCores; ++c)
                any_active |= !cpu(c).halted();
            if (!any_active && eventq.pending() == 0)
                break;
            continue;
        }

        // Per-cycle path: detailed cores present, several Atomic cores
        // runnable at once (shared-ring polling needs cycle-accurate
        // interleaving), or the final all-idle drain.
        ++globalCycle;
        ++ran;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            tickCore(c);
            any_active |= !cpu(c).halted();
        }
        eventq.serviceUpTo(globalCycle);
        if (!any_active && eventq.pending() == 0)
            break;
    }
    return ran;
}

uint64_t
System::runUntil(const std::function<bool()> &cond, uint64_t max_cycles)
{
    stopRequested = false;
    uint64_t ran = 0;
    while (ran < max_cycles && !stopRequested && !cond()) {
        // @p cond must be evaluated between cycles, so no chaining
        // here; the superblock engine still accelerates each step.
        ++globalCycle;
        ++ran;
        bool any_active = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            tickCore(c);
            any_active |= !cpu(c).halted();
        }
        eventq.serviceUpTo(globalCycle);
        if (!any_active && eventq.pending() == 0)
            break;
    }
    return ran;
}

void
System::m5Op(int core_id, uint64_t op, uint64_t arg)
{
    switch (op) {
      case sys::m5ResetStats:
        rootStats.resetAll();
        break;
      case sys::m5DumpStats:
        if (statsDumpStream != nullptr) {
            *statsDumpStream << "---------- Begin Simulation Statistics"
                             << " (cycle " << globalCycle
                             << ") ----------\n";
            rootStats.printAll(*statsDumpStream);
            *statsDumpStream << "---------- End Simulation Statistics"
                             << " ----------\n";
        }
        break;
      case sys::m5ExitSim:
        requestStop();
        break;
      default:
        break;
    }
    if (chainedListener != nullptr)
        chainedListener->m5Op(core_id, op, arg);
}

Checkpoint
System::saveCheckpoint(bool include_uarch) const
{
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        svb_assert(models[c] == CpuModel::Atomic,
                   "checkpoints require the Atomic CPU (core ", c, ")");
    }
    Checkpoint cp;
    cp.setString("system.isa", isaName(cfg.isa));
    cp.setScalar("system.cycle", globalCycle);
    physMem->serializeState("mem.", cp);
    frameAlloc->serializeState("frames.", cp);
    guestKernel->serializeState("kernel.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const HwContext ctx = atomics[c]->getContext();
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        cp.setScalar(prefix + "pc", ctx.pc);
        cp.setScalar(prefix + "ptRoot", ctx.ptRoot);
        cp.setScalar(prefix + "processId",
                     uint64_t(int64_t(ctx.processId)));
        cp.setScalar(prefix + "halted", ctx.halted ? 1 : 0);
        for (unsigned r = 0; r < maxArchRegs; ++r)
            cp.setScalar(prefix + "reg" + std::to_string(r), ctx.regs[r]);
    }
    if (include_uarch) {
        cp.setScalar("uarch.present", 1);
        decoder->serializeState("decode.", cp);
        sblocks->serializeState("superblock.", cp);
        dram->serializeState("dram.", cp);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            const std::string prefix = "cpu" + std::to_string(c) + ".";
            coreMems[c]->serializeState(prefix + "mem.", cp);
            atomics[c]->itlb().serializeState(prefix + "itlb.", cp);
            atomics[c]->dtlb().serializeState(prefix + "dtlb.", cp);
            cp.setScalar(prefix + "stall", atomics[c]->stallCycles());
            // Setup mode runs the Atomic CPU, which never trains the
            // predictor; a cold predictor is recorded as a flag, not
            // tables, so the snapshot stays valid (and shareable)
            // across branch-predictor-geometry ablation points.
            const BranchPredictor &bp = o3s[c]->branchPredictor();
            const bool warm = !bp.isReset();
            cp.setScalar(prefix + "bpWarm", warm ? 1 : 0);
            if (warm)
                bp.serializeState(prefix + "bp.", cp);
        }
    }
    return cp;
}

void
System::restoreCheckpoint(const Checkpoint &cp,
                          std::shared_ptr<const PageImage> image)
{
    svb_assert(cp.getString("system.isa") == isaName(cfg.isa),
               "checkpoint ISA mismatch");
    globalCycle = cp.getScalar("system.cycle");
    eventq.clear();
    // Superblocks lower code from the pre-restore physical memory;
    // drop them all. setContext() below resets every core's cursor.
    sblocks->clear();
    if (image != nullptr && reapRestore)
        physMem->restoreLazy(std::move(image));
    else
        physMem->unserializeState("mem.", cp);
    frameAlloc->unserializeState("frames.", cp);
    guestKernel->unserializeState("kernel.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        HwContext ctx;
        ctx.pc = cp.getScalar(prefix + "pc");
        ctx.ptRoot = cp.getScalar(prefix + "ptRoot");
        ctx.processId = int(int64_t(cp.getScalar(prefix + "processId")));
        ctx.halted = cp.getScalar(prefix + "halted") != 0;
        for (unsigned r = 0; r < maxArchRegs; ++r)
            ctx.regs[r] = cp.getScalar(prefix + "reg" + std::to_string(r));
        models[c] = CpuModel::Atomic;
        atomics[c]->setContext(ctx);
    }
    if (!cp.hasScalar("uarch.present")) {
        flushMicroarchState();
        return;
    }
    // Warm-state restore. Order matters: setContext() above flushed
    // the Atomic TLBs, so they are repopulated here; physical memory
    // is already restored, so the decode cache can re-decode.
    decoder->unserializeState("decode.", cp);
    // Older (or published, see CheckpointStore) snapshots carry no
    // superblock anchors; the cache then re-forms lazily, which is
    // functionally identical — blocks hold no guest state.
    if (cp.hasBlob("superblock.paddrs"))
        sblocks->unserializeState("superblock.", cp);
    dram->unserializeState("dram.", cp);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const std::string prefix = "cpu" + std::to_string(c) + ".";
        coreMems[c]->unserializeState(prefix + "mem.", cp);
        atomics[c]->itlb().unserializeState(prefix + "itlb.", cp);
        atomics[c]->dtlb().unserializeState(prefix + "dtlb.", cp);
        atomics[c]->setStallCycles(cp.getScalar(prefix + "stall"));
        if (cp.getScalar(prefix + "bpWarm") != 0)
            o3s[c]->branchPredictor().unserializeState(prefix + "bp.", cp);
        else
            o3s[c]->branchPredictor().reset();
    }
}

} // namespace svb
