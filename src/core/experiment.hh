/**
 * @file
 * The vSwarm-u-style experiment runner (Figure 4.1).
 *
 * Per function: restore the post-boot checkpoint, start the container
 * (Atomic CPU), switch to the detailed O3 CPU with cold
 * microarchitectural state, measure request 1 (cold), functionally
 * warm through requests 2-9 on the Atomic CPU, then measure request
 * 10 (warm). Statistics are collected from the server core, reset at
 * each measured request's workBegin and sampled at its workEnd.
 */

#ifndef SVB_CORE_EXPERIMENT_HH
#define SVB_CORE_EXPERIMENT_HH

#include <memory>
#include <string>

#include "cluster.hh"

namespace svb
{

/** Server-core statistics over one measured request. */
struct RequestStats
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t uops = 0;
    double cpi = 0.0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t itlbMisses = 0;
    uint64_t dtlbMisses = 0;
};

/** Cold and warm measurements for one function. */
struct FunctionResult
{
    std::string name;
    RequestStats cold;
    RequestStats warm;
    bool ok = false;
};

/** Lukewarm study result (Section 2.1's interleaving phenomenon). */
struct LukewarmResult
{
    std::string name;       ///< the measured function
    std::string interferer; ///< the co-located function
    RequestStats warm;      ///< isolated warm request (baseline)
    RequestStats lukewarm;  ///< warm request with interleaving
    bool ok = false;
};

/** Emulation-mode (QEMU-equivalent) latency result. */
struct EmuResult
{
    std::string name;
    uint64_t coldNs = 0;
    uint64_t warmNs = 0;
    bool ok = false;
};

/** Warm-request samples a load calibration measures (requests 2..5). */
constexpr unsigned loadWarmSamples = 4;

/**
 * Per-function service-time calibration for the load subsystem
 * (src/load): the measured cold-path latency (request 1 on a freshly
 * restored instance) and a cycle of warm-path latencies the load
 * simulation replays per warm invocation.
 */
struct LoadCalibration
{
    std::string name;
    uint64_t coldNs = 0;
    uint64_t warmNs[loadWarmSamples] = {0, 0, 0, 0};
    bool ok = false;
};

/**
 * Drives full cold/warm experiments over a cluster.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const ClusterConfig &config);
    ~ExperimentRunner();

    /** Run the Figure 4.1 protocol for one function. */
    FunctionResult runFunction(const FunctionSpec &spec,
                               const WorkloadImpl &impl);

    /**
     * The lukewarm study (paper Section 2.1): co-locate @p interferer
     * on the same server core and interleave its invocations with
     * @p spec's, then measure spec's request 10. Its microarchitectural
     * state has been thrashed between invocations, so it lands between
     * cold and warm — "behaving as if called for the first time".
     */
    LukewarmResult runLukewarm(const FunctionSpec &spec,
                               const WorkloadImpl &impl,
                               const FunctionSpec &interferer,
                               const WorkloadImpl &interferer_impl);

    /**
     * Functional-emulation variant (the paper's QEMU studies):
     * Atomic CPU, one cycle per instruction at 1 GHz, reporting the
     * request latency in nanoseconds.
     */
    EmuResult runFunctionEmu(const FunctionSpec &spec,
                             const WorkloadImpl &impl,
                             unsigned warm_request = 10);

    /**
     * Calibrate @p spec for the load subsystem: prepare the instance
     * (restoring the prepared-state checkpoint when the store has
     * one — a cold start under load restores the post-boot snapshot
     * rather than re-booting), then measure request 1 (the cold path)
     * and requests 2..1+loadWarmSamples (the warm path) on the Atomic
     * CPU at the configured clock.
     */
    LoadCalibration runLoadCalibration(const FunctionSpec &spec,
                                       const WorkloadImpl &impl);

    ServerlessCluster &cluster() { return *clusterPtr; }

  private:
    /**
     * Prepare a deployment: restore the prepared-state checkpoint for
     * this (function, config) tuple when the CheckpointStore has one,
     * else boot/settle from scratch and publish the snapshot.
     */
    ServerlessCluster::Deployment prepare(const FunctionSpec &spec,
                                          const WorkloadImpl &impl,
                                          bool &ok);

    /** The checkpoint-free preparation path: reset, deploy, boot the
     *  container to readiness, settle. */
    ServerlessCluster::Deployment prepareFresh(const FunctionSpec &spec,
                                               const WorkloadImpl &impl,
                                               bool &ok);

    /** Convert a cycle delta to nanoseconds at the configured clock. */
    uint64_t cyclesToNs(uint64_t cycles) const;

    RequestStats snapshotServerCore() const;

    ClusterConfig cfg;
    std::unique_ptr<ServerlessCluster> clusterPtr;
};

} // namespace svb

#endif // SVB_CORE_EXPERIMENT_HH
