/**
 * @file
 * The vSwarm-u-style experiment runner (Figure 4.1).
 *
 * Per function: restore the post-boot checkpoint, start the container
 * (Atomic CPU), switch to the detailed O3 CPU with cold
 * microarchitectural state, measure request 1 (cold), functionally
 * warm through requests 2-9 on the Atomic CPU, then measure request
 * 10 (warm). Statistics are collected from the server core, reset at
 * each measured request's workBegin and sampled at its workEnd.
 *
 * Run/Result API: every mode (detailed O3, emulation, lukewarm
 * interleaving, load calibration) flows through one entry point —
 * ExperimentRunner::run(RunSpec) returning a RunResult variant — so
 * callers describe *what* to measure instead of hand-wiring per-mode
 * call sequences. The per-mode methods remain as the implementations
 * behind the dispatch.
 *
 * Observability: each run records simulated-time spans (boot /
 * restore / container-start / settle / cold / warming / warm) onto an
 * obs::Tracer track named <isa>/<db><flags>/<function>/<mode>, and
 * every measured request's RequestStats is a view over an
 * obs::StatSnapshot delta of the server core's stat tree (workBegin
 * snapshot vs workEnd snapshot) rather than fields plumbed one by
 * one. SVBENCH_TRACE and SVBENCH_STATDUMP enable the exports.
 */

#ifndef SVB_CORE_EXPERIMENT_HH
#define SVB_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <variant>

#include "cluster.hh"
#include "cpu/stall_cause.hh"
#include "obs/stat_export.hh"
#include "obs/trace.hh"

namespace svb
{

/** Server-core statistics over one measured request. */
struct RequestStats
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t uops = 0;
    double cpi = 0.0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t itlbMisses = 0;
    uint64_t dtlbMisses = 0;
    /** Per-cause cycle attribution (cpu/stall_cause.hh); the causes
     *  partition the request's cycles, so the entries sum to
     *  @ref cycles on every measured request. */
    uint64_t stalls[numStallCauses] = {};

    uint64_t
    stallTotal() const
    {
        uint64_t sum = 0;
        for (unsigned c = 0; c < numStallCauses; ++c)
            sum += stalls[c];
        return sum;
    }

    /**
     * Build the view over a named-stat delta: @p cpu_prefix names the
     * server core's O3 group ("system.cpu1.o3."), @p mem_prefix its
     * memory hierarchy ("system.core1."). CPI is recomputed from the
     * cycle/instruction deltas (formula deltas are meaningless).
     */
    static RequestStats fromStatDelta(const obs::StatSnapshot &delta,
                                      const std::string &cpu_prefix,
                                      const std::string &mem_prefix);
};

/** Cold and warm measurements for one function. */
struct FunctionResult
{
    std::string name;
    RequestStats cold;
    RequestStats warm;
    bool ok = false;
};

/** Lukewarm study result (Section 2.1's interleaving phenomenon). */
struct LukewarmResult
{
    std::string name;       ///< the measured function
    std::string interferer; ///< the co-located function
    RequestStats warm;      ///< isolated warm request (baseline)
    RequestStats lukewarm;  ///< warm request with interleaving
    bool ok = false;
};

/** Emulation-mode (QEMU-equivalent) latency result. */
struct EmuResult
{
    std::string name;
    uint64_t coldNs = 0;
    uint64_t warmNs = 0;
    bool ok = false;
};

/** Warm-request samples a load calibration measures (requests 2..5). */
constexpr unsigned loadWarmSamples = 4;

/**
 * Per-function service-time calibration for the load subsystem
 * (src/load): the measured cold-path latency (request 1 on a freshly
 * restored instance) and a cycle of warm-path latencies the load
 * simulation replays per warm invocation.
 */
struct LoadCalibration
{
    std::string name;
    uint64_t coldNs = 0;
    uint64_t warmNs[loadWarmSamples] = {0, 0, 0, 0};
    bool ok = false;
};

/** The measurement protocol a RunSpec selects. */
enum class RunMode
{
    Detailed, ///< Figure-4.1 cold+warm O3 measurement -> FunctionResult
    Emu,      ///< functional-emulation latencies      -> EmuResult
    Lukewarm, ///< interleaved-interferer study        -> LukewarmResult
    LoadCal,  ///< load-subsystem calibration          -> LoadCalibration
};

/** Stable mode tag used in trace-track names and result-cache keys. */
const char *runModeName(RunMode mode);

/** Mode-specific knobs; fields are read only by the noted modes. */
struct RunOptions
{
    /** Emu: which request is reported as the warm latency. */
    unsigned warmRequest = 10;
    /** Lukewarm: the co-located interfering function. */
    const FunctionSpec *interferer = nullptr;
    const WorkloadImpl *interfererImpl = nullptr;
};

/**
 * One complete experiment description: what to run, on which
 * platform, under which protocol. The unified entry points
 * (ExperimentRunner::run, ResultCache::run) consume this instead of
 * per-mode argument lists.
 */
struct RunSpec
{
    RunMode mode = RunMode::Detailed;
    FunctionSpec spec;
    const WorkloadImpl *impl = nullptr;
    /** The cluster to run on; used by cache-level entry points that
     *  own runner construction (a runner's own config wins). */
    ClusterConfig platform;
    RunOptions options;
};

/** The per-mode outcome, tagged by the RunSpec's mode. */
using RunResult =
    std::variant<FunctionResult, EmuResult, LukewarmResult, LoadCalibration>;

/** @return the variant's ok flag, whatever the mode. */
bool runResultOk(const RunResult &result);

/**
 * Drives full cold/warm experiments over a cluster.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const ClusterConfig &config);
    ~ExperimentRunner();

    /**
     * The unified entry point: dispatch @p rs to its mode's protocol
     * on this runner's cluster (rs.platform is informational here —
     * cache-level callers use it to pick the runner).
     */
    RunResult run(const RunSpec &rs);

    /** Run the Figure 4.1 protocol for one function. */
    FunctionResult runFunction(const FunctionSpec &spec,
                               const WorkloadImpl &impl);

    /**
     * The lukewarm study (paper Section 2.1): co-locate @p interferer
     * on the same server core and interleave its invocations with
     * @p spec's, then measure spec's request 10. Its microarchitectural
     * state has been thrashed between invocations, so it lands between
     * cold and warm — "behaving as if called for the first time".
     */
    LukewarmResult runLukewarm(const FunctionSpec &spec,
                               const WorkloadImpl &impl,
                               const FunctionSpec &interferer,
                               const WorkloadImpl &interferer_impl);

    /**
     * Functional-emulation variant (the paper's QEMU studies):
     * Atomic CPU, one cycle per instruction at 1 GHz, reporting the
     * request latency in nanoseconds.
     */
    EmuResult runFunctionEmu(const FunctionSpec &spec,
                             const WorkloadImpl &impl,
                             unsigned warm_request = 10);

    /**
     * Calibrate @p spec for the load subsystem: prepare the instance
     * (restoring the prepared-state checkpoint when the store has
     * one — a cold start under load restores the post-boot snapshot
     * rather than re-booting), then measure request 1 (the cold path)
     * and requests 2..1+loadWarmSamples (the warm path) on the Atomic
     * CPU at the configured clock.
     */
    LoadCalibration runLoadCalibration(const FunctionSpec &spec,
                                       const WorkloadImpl &impl);

    ServerlessCluster &cluster() { return *clusterPtr; }

  private:
    /**
     * Prepare a deployment: restore the prepared-state checkpoint for
     * this (function, config) tuple when the CheckpointStore has one,
     * else boot/settle from scratch and publish the snapshot.
     */
    ServerlessCluster::Deployment prepare(const FunctionSpec &spec,
                                          const WorkloadImpl &impl,
                                          bool &ok);

    /** The checkpoint-free preparation path: reset, deploy, boot the
     *  container to readiness, settle. */
    ServerlessCluster::Deployment prepareFresh(const FunctionSpec &spec,
                                               const WorkloadImpl &impl,
                                               bool &ok);

    /**
     * Arm cold-request working-set capture for fingerprint @p fp when
     * the published checkpoint does not carry one yet (@p cp nullptr
     * means "just published by this runner"): the touch hook records
     * every page the first request reaches, and noteColdRequestDone()
     * attaches the set to the store (first writer wins).
     */
    void armWorkingSetCapture(const std::string &fp, const Checkpoint *cp);

    /** Stop an armed capture and attach the recorded working set. */
    void noteColdRequestDone();

    /** Convert a cycle delta to nanoseconds at the configured clock. */
    uint64_t cyclesToNs(uint64_t cycles) const;

    /** The trace-track / stat-dump stem of one experiment. */
    std::string experimentName(const FunctionSpec &spec,
                               const char *mode) const;

    /** Open the experiment's trace track and point the cluster at it. */
    void beginTrace(const FunctionSpec &spec, const char *mode);

    /** Record a completed span onto the current experiment's track. */
    void span(const std::string &name, const std::string &cat,
              uint64_t start, uint64_t end);

    /**
     * Measure the server core over the request that just ended: delta
     * the stat tree against the armed workBegin snapshot, build the
     * RequestStats view, check the stall-cycle partition, and dump
     * the per-request stat tree when SVBENCH_STATDUMP is set.
     * @param phase dump-file tag ("cold", "warm", "lukewarm")
     */
    RequestStats measureServerCore(const char *phase) const;

    ClusterConfig cfg;
    std::unique_ptr<ServerlessCluster> clusterPtr;
    obs::TrackId curTrack = obs::badTrack;
    std::string curName; ///< current experiment's name (dump stem)
    /** Fingerprint whose working set the armed touch recording will
     *  feed; empty when no capture is in flight. */
    std::string pendingWsFp;
};

} // namespace svb

#endif // SVB_CORE_EXPERIMENT_HH
