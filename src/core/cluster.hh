/**
 * @file
 * The serverless cluster: a System plus the booted database and
 * memcached containers, the shared RPC rings, and per-experiment
 * function deployment.
 *
 * Boot follows the paper's image-preparation step: construct the
 * platform, create the store containers, run their bootstrap on the
 * Atomic CPU, then take the baseline checkpoint every experiment
 * restores from (Figure 4.1).
 */

#ifndef SVB_CORE_CLUSTER_HH
#define SVB_CORE_CLUSTER_HH

#include <memory>
#include <optional>

#include "db/store_gen.hh"
#include "obs/stat_export.hh"
#include "obs/trace.hh"
#include "stack/runtime.hh"
#include "system.hh"

namespace svb
{

/** Cluster-level configuration. */
struct ClusterConfig
{
    SystemConfig system;
    db::DbKind dbKind = db::DbKind::Cassandra;
    bool startDb = true;
    bool startMemcached = true;
    /** Upper bound for any single run phase (cycles). */
    uint64_t phaseCycleLimit = 400'000'000;
    /** Node-class tag (load::NodeClass name) when this cluster is the
     *  calibration platform of one fleet class; empty for the plain
     *  per-ISA platform. Non-empty tags namespace result-cache keys
     *  and checkpoint fingerprints as "<isa>@<tag>", so two classes
     *  sharing an ISA but differing in clock or cache budget never
     *  share calibration rows. Must be free of the result-cache
     *  metacharacters (',', '|', '='). */
    std::string classTag;
};

/**
 * One bootable serverless platform instance.
 */
class ServerlessCluster : public M5Listener
{
  public:
    explicit ServerlessCluster(const ClusterConfig &config);

    System &system() { return *machine; }
    const ClusterConfig &config() const { return cfg; }

    /**
     * Boot the platform: create store containers, run their
     * bootstrap to readiness (Atomic CPU), save the baseline
     * checkpoint. Idempotent.
     */
    void boot();

    /** Has boot() completed (i.e. does a baseline checkpoint exist)? */
    bool booted() const { return baseline.has_value(); }

    /**
     * Reset to the post-boot baseline: tears the System down,
     * rebuilds it identically, and restores the checkpoint. Fast
     * relative to re-running the store bootstraps.
     */
    void resetToBaseline();

    // --- prepared-state checkpointing (checkpoint-once/restore-many) -----
    /**
     * Serialise the fully prepared platform — functional AND warm
     * microarchitectural state, plus this cluster's run-control
     * counters — for the CheckpointStore. Call at the post-readiness
     * settle point, before any client gate opens.
     */
    Checkpoint savePrepared() const;

    /**
     * First half of a prepared-state restore: rebuild the System from
     * scratch and zero the run-control counters. The caller then
     * re-issues the same deploy() calls (the kernel restore checks
     * that the process table matches the checkpointed one) and
     * finishes with finishRestore().
     */
    void beginRestore();

    /** Second half: overwrite the rebuilt platform with @p cp. With a
     *  non-null @p image (the store's shared page image of @p cp) and
     *  the system's REAP gate on, guest memory restores working-set
     *  aware instead of via a full copy-in (see System). */
    void finishRestore(const Checkpoint &cp,
                       std::shared_ptr<const PageImage> image = nullptr);

    /** A deployed function-under-test. */
    struct Deployment
    {
        int serverPid = -1;
        int clientPid = -1;
    };

    /**
     * Load the function container and the load generator. The client
     * stays gated until openClientGate(). @p ring_slot selects the
     * client ring pair (slot 1 co-deploys a second function for the
     * lukewarm/interleaving studies).
     */
    Deployment deploy(const FunctionSpec &spec, const WorkloadImpl &impl,
                      unsigned ring_slot = 0);

    /** Release the client's start gate. */
    void openClientGate(const Deployment &deployment);

    /** Zero the client<->server ring cursors. */
    void resetFunctionRings();

    // --- run-control counters (fed by the m5 plumbing) ------------------
    uint64_t workBegins() const { return nWorkBegin; }
    uint64_t workEnds() const { return nWorkEnd; }
    uint64_t slotWorkEnds(unsigned slot) const
    {
        return nSlotWorkEnd[slot & 1];
    }
    uint64_t readyEvents() const { return nReady; }

    /** Cycle at which the most recent workBegin / workEnd arrived. */
    uint64_t lastWorkBeginCycle() const { return workBeginCycle; }
    uint64_t lastWorkEndCycle() const { return workEndCycle; }

    /** Run until total workEnds reach @p target. @return success */
    bool runUntilWorkEnds(uint64_t target);

    /** Run until deployment slot @p slot has completed @p target
     *  requests (interleaving studies). @return success */
    bool runUntilSlotWorkEnds(unsigned slot, uint64_t target);

    /** Run until the store containers report ready. @return success */
    bool runUntilReady(uint64_t target_events);

    /**
     * Reset stats exactly when the next workBegin arrives, and
     * capture the post-reset stat snapshot the request's measurement
     * deltas against (see workBeginSnapshot()).
     * @param slot restrict to one deployment slot, or -1 for any
     */
    void
    armStatResetOnWorkBegin(int slot = -1)
    {
        resetOnBegin = true;
        resetOnBeginSlot = slot;
    }

    /** The stat snapshot captured at the last armed workBegin. */
    const obs::StatSnapshot &workBeginSnapshot() const { return beginSnap; }

    /**
     * Point the m5 plumbing at a trace track: every workEnd then
     * records a "request#N" span covering [workBegin, workEnd] in
     * simulated cycles. obs::badTrack (the default) disables it.
     */
    void setTraceTrack(obs::TrackId track) { traceTrack = track; }

    void m5Op(int core_id, uint64_t op, uint64_t arg) override;

  private:
    void buildSystem();
    void createStoreContainers();

    ClusterConfig cfg;
    std::unique_ptr<System> machine;
    std::optional<Checkpoint> baseline;
    Addr ringsPhys = 0;

    int dbPid = -1;
    int mcPid = -1;

    uint64_t nWorkBegin = 0;
    uint64_t nWorkEnd = 0;
    uint64_t nSlotWorkEnd[2] = {0, 0};
    uint64_t nReady = 0;
    uint64_t workBeginCycle = 0;
    uint64_t workEndCycle = 0;
    uint64_t stopAtWorkEnds = ~uint64_t(0);
    int stopSlot = -1; ///< -1: total count; 0/1: per-slot count
    bool resetOnBegin = false;
    int resetOnBeginSlot = -1;
    obs::StatSnapshot beginSnap;
    obs::TrackId traceTrack = obs::badTrack;
};

} // namespace svb

#endif // SVB_CORE_CLUSTER_HH
