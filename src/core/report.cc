#include "report.hh"

#include <algorithm>
#include <cstdio>

#include "cpu/stall_cause.hh"
#include "sim/logging.hh"

namespace svb::report
{

namespace
{

void
printBar(double value, double max_value, int width)
{
    const int n =
        max_value > 0 ? int(double(width) * value / max_value) : 0;
    std::printf(" |");
    for (int i = 0; i < n && i < width; ++i)
        std::printf("#");
    std::printf("\n");
}

} // namespace

void
figureHeader(const std::string &figure_id, const std::string &caption,
             const std::vector<SystemConfig> &platforms)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s: %s\n", figure_id.c_str(), caption.c_str());
    for (const SystemConfig &cfg : platforms) {
        std::printf("  platform: %-8s  %u cores @ %lu MHz | L1 %uKB/%u-way"
                    " L2 %uKB/%u-way | ROB %u LSQ %u+%u\n",
                    isaName(cfg.isa), cfg.numCores,
                    (unsigned long)cfg.clockMHz,
                    cfg.caches.l1d.sizeBytes / 1024, cfg.caches.l1d.assoc,
                    cfg.caches.l2.sizeBytes / 1024, cfg.caches.l2.assoc,
                    cfg.o3.robEntries, cfg.o3.lqEntries, cfg.o3.sqEntries);
    }
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
}

void
barFigure(const std::vector<SeriesSpec> &series, const std::vector<Row> &rows)
{
    double max_value = 0;
    for (const Row &row : rows) {
        svb_assert(row.values.size() == series.size(),
                   "figure row has a different arity than its series");
        for (size_t i = 0; i < row.values.size(); ++i)
            max_value = std::max(max_value, row.values[i] * series[i].scale);
    }

    std::printf("%-26s", "benchmark");
    for (const SeriesSpec &s : series)
        std::printf(" %14s", (s.name + " (" + s.unit + ")").c_str());
    std::printf("\n");

    for (const Row &row : rows) {
        std::printf("%-26s", row.label.c_str());
        for (size_t i = 0; i < row.values.size(); ++i)
            std::printf(" %14.0f", row.values[i] * series[i].scale);
        printBar(row.values.empty() ? 0 : row.values[0] * series[0].scale,
                 max_value, 28);
    }
}

void
stackedPercentFigure(const std::vector<SeriesSpec> &series,
                     const std::vector<Row> &rows)
{
    std::printf("%-26s", "benchmark");
    for (const SeriesSpec &s : series)
        std::printf(" %12s", (s.name + " %").c_str());
    std::printf(" %16s\n", "total");

    for (const Row &row : rows) {
        svb_assert(row.values.size() == series.size(),
                   "figure row has a different arity than its series");
        double total = 0;
        for (size_t i = 0; i < row.values.size(); ++i)
            total += row.values[i] * series[i].scale;
        std::printf("%-26s", row.label.c_str());
        for (size_t i = 0; i < row.values.size(); ++i) {
            const double v = row.values[i] * series[i].scale;
            std::printf(" %12.1f", total > 0 ? 100.0 * v / total : 0.0);
        }
        std::printf(" %16.0f\n", total);
    }
}

void
barFigure(const std::vector<std::string> &series, const std::string &unit,
          const std::vector<Row> &rows)
{
    std::vector<SeriesSpec> specs;
    for (const std::string &s : series)
        specs.push_back({s, unit, 1.0});
    barFigure(specs, rows);
}

void
stackedPercentFigure(const std::vector<std::string> &series,
                     const std::vector<Row> &rows)
{
    std::vector<SeriesSpec> specs;
    for (const std::string &s : series)
        specs.push_back({s, "", 1.0});
    stackedPercentFigure(specs, rows);
}

void
stallPanel(const std::vector<Row> &rows)
{
    std::vector<SeriesSpec> series;
    for (unsigned c = 0; c < numStallCauses; ++c)
        series.push_back({stallCauseName(c), "cycles"});
    stackedPercentFigure(series, rows);
}

void
table(const std::vector<std::string> &columns, const std::vector<Row> &rows,
      int precision)
{
    std::printf("%-30s", columns.empty() ? "" : columns[0].c_str());
    for (size_t i = 1; i < columns.size(); ++i)
        std::printf(" %12s", columns[i].c_str());
    std::printf("\n");
    for (const Row &row : rows) {
        std::printf("%-30s", row.label.c_str());
        for (double v : row.values) {
            if (v < 0)
                std::printf(" %12s", "n/a");
            else
                std::printf(" %12.*f", precision, v);
        }
        std::printf("\n");
    }
}

void
configTables(const SystemConfig &riscv_cfg, const SystemConfig &x86_cfg)
{
    const SystemConfig &c = riscv_cfg;
    std::printf("Table 4.1 — common simulated-platform configuration\n");
    std::printf("  L1 I Cache   %u cores x %uKB, %u-way\n", c.numCores,
                c.caches.l1i.sizeBytes / 1024, c.caches.l1i.assoc);
    std::printf("  L1 D Cache   %u cores x %uKB, %u-way\n", c.numCores,
                c.caches.l1d.sizeBytes / 1024, c.caches.l1d.assoc);
    std::printf("  L2 Cache     %u cores x %uKB, %u-way\n", c.numCores,
                c.caches.l2.sizeBytes / 1024, c.caches.l2.assoc);
    std::printf("  RAM          2GB DDR3-1600 model, single channel\n");
    std::printf("  Page-walk $  %u cores x 8KB (I + D)\n", c.numCores);
    std::printf("  ROB          %u entries\n", c.o3.robEntries);
    std::printf("  LSQs         %u load + %u store entries\n",
                c.o3.lqEntries, c.o3.sqEntries);
    std::printf("  Registers    %u Int + 256 Float (FP unused: integer"
                " suite)\n", c.o3.numPhysIntRegs);
    std::printf("  Cores        %u @ %lu MHz\n", c.numCores,
                (unsigned long)c.clockMHz);
    std::printf("Table 4.2 — RISC-V platform: %s / %s\n",
                riscv_cfg.osLabel.c_str(), riscv_cfg.compilerLabel.c_str());
    std::printf("Table 4.3 — x86 platform:    %s / %s\n",
                x86_cfg.osLabel.c_str(), x86_cfg.compilerLabel.c_str());
}

} // namespace svb::report
