/**
 * @file
 * Checkpoint-once / restore-many store for prepared experiments.
 *
 * Booting a cluster and settling a deployed function is by far the
 * most expensive part of a measurement, and it is identical across
 * every measurement variant (cold, warming, warm, lukewarm baseline,
 * ablation points that share the frontend configuration). This store
 * keys a full prepared-system snapshot — functional state plus warm
 * microarchitectural state — by a content fingerprint of the
 * configuration, persists it on disk, and hands it to every later
 * preparation of the same tuple.
 *
 * The invariant the whole design serves: a restored run produces
 * byte-identical statistics to an uninterrupted run
 * (tests/test_checkpoint_restore.cc enforces this).
 *
 * Environment:
 *  - SVBENCH_CKPT_DIR  directory for .ckpt files (default
 *    "build/svbench_ckpts" under the working directory — machine
 *    output never lands at the repo root; created on first publish)
 *  - SVBENCH_NO_CKPT=1 disables the store entirely (every prepare
 *    boots from scratch)
 *
 * Thread-safety: every public member may be called concurrently. A
 * pending-set plus condition variable deduplicates in-flight
 * preparations exactly like ResultCache deduplicates simulations.
 */

#ifndef SVB_CORE_CHECKPOINT_STORE_HH
#define SVB_CORE_CHECKPOINT_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cluster.hh"
#include "mem/page_store.hh"

namespace svb
{

/**
 * Process-wide cache of prepared-system checkpoints.
 */
class CheckpointStore
{
  public:
    /** The shared instance every ExperimentRunner consults. */
    static CheckpointStore &global();

    /**
     * Content fingerprint of everything that shapes the prepared
     * state: ISA, core count, clock, memory size, seed, cache and
     * DRAM geometry, store-container selection and the deployed
     * function(s). Deliberately EXCLUDED: cache/DRAM latencies,
     * prefetcher and O3/branch-predictor parameters — none of them
     * influence functional warming, so ablation points differing only
     * in those fields share one checkpoint.
     *
     * @param interferer co-deployed function for the lukewarm study,
     *                   or nullptr for a solo deployment
     */
    static std::string fingerprint(const ClusterConfig &cfg,
                                   const FunctionSpec &spec,
                                   const FunctionSpec *interferer = nullptr);

    /** @return false when SVBENCH_NO_CKPT disabled the store. */
    bool enabled() const { return !disabled; }

    /**
     * Look up @p fp, blocking while another thread prepares it.
     *
     * @return the checkpoint (memory- or disk-cached), or nullptr with
     *         @p *claimed set: the caller must prepare the system and
     *         then publish() on success or release() on failure. A
     *         corrupt on-disk file is treated as a miss (with a
     *         warning), never a crash.
     */
    std::shared_ptr<const Checkpoint> acquire(const std::string &fp,
                                              bool *claimed);

    /** Store a freshly prepared checkpoint under @p fp (atomic file
     *  write + in-memory publication) and wake any waiters. */
    void publish(const std::string &fp, Checkpoint cp);

    /**
     * The shared page-granular image of @p cp (the checkpoint
     * acquire() returned for @p fp): built once per fingerprint,
     * cached weakly (pages live exactly as long as some restored
     * instance or pool lease holds them) and interned into the global
     * CoW PageStore. Returns nullptr when @p cp predates the
     * page-table format — the caller then restores fully.
     */
    std::shared_ptr<const PageImage> imageFor(const std::string &fp,
                                              const Checkpoint &cp);

    /**
     * Record the cold-request page working set of @p fp (sorted page
     * indices from PhysMemory::stopTouchRecording()): stored into the
     * cached checkpoint as "mem.ws" and rewritten to disk atomically.
     * First writer wins — a fingerprint's working set is recorded by
     * whichever runner completes the first cold request.
     * @return true when this call attached the set
     */
    bool attachWorkingSet(const std::string &fp,
                          const std::vector<uint64_t> &pages);

    /** Drop a claim whose preparation failed; waiters re-claim. */
    void release(const std::string &fp);

    /** Test hook: forget all state (fault hook included) and redirect
     *  the store to @p dir (re-enabling it regardless of
     *  SVBENCH_NO_CKPT). */
    void resetForTest(const std::string &dir);

    /**
     * Fault injection (resilience tests): when set, a checkpoint
     * successfully loaded from disk for which @p hook returns true is
     * discarded as if the file were corrupt — the caller re-prepares
     * from scratch, exercising the restore-failure recovery path
     * deterministically. Pass nullptr to clear.
     */
    void setRestoreFaultHook(std::function<bool(const std::string &)> hook);

    /** Disk restores discarded by the fault hook so far. */
    uint64_t restoreFaultsInjected() const;

    /** On-disk path for a fingerprint (hash-named .ckpt file). */
    std::string pathFor(const std::string &fp) const;

  private:
    CheckpointStore();

    std::string dir;
    bool disabled = false;

    mutable std::mutex mtx;
    /** Guarded by mtx. */
    std::function<bool(const std::string &)> restoreFaultHook;
    /** Guarded by mtx. */
    uint64_t restoreFaults = 0;
    std::condition_variable pendingCv;
    std::set<std::string> pending;
    std::map<std::string, std::shared_ptr<const Checkpoint>> cache;
    /** Weak per-fingerprint PageImage cache (guarded by mtx): holds
     *  no refcount of its own, so pool evictions/kills dropping the
     *  last lease genuinely free the shared pages. */
    std::map<std::string, std::weak_ptr<const PageImage>> images;
};

} // namespace svb

#endif // SVB_CORE_CHECKPOINT_STORE_HH
