#include "checkpoint_store.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "db/store_gen.hh"
#include "mem/phys_memory.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

/** FNV-1a 64-bit, printed as 16 hex digits: stable file names that
 *  stay valid across runs and processes. */
std::string
hashHex(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (char ch : s) {
        h ^= uint8_t(ch);
        h *= 1099511628211ull;
    }
    std::ostringstream os;
    os << std::hex;
    for (int i = 60; i >= 0; i -= 4)
        os << "0123456789abcdef"[(h >> i) & 0xf];
    return os.str();
}

void
appendSpec(std::ostringstream &os, const FunctionSpec &spec)
{
    os << spec.name << "/" << spec.workload << "/" << int(spec.tier) << "/"
       << spec.usesDb << spec.usesMemcached;
}

} // namespace

CheckpointStore::CheckpointStore()
{
    const char *d = std::getenv("SVBENCH_CKPT_DIR");
    // Default beside the result cache under build/ — machine output
    // never lands at the repo root (the pre-PR-3 "svbench_ckpts"
    // location is stale and gitignored).
    dir = (d != nullptr && d[0] != '\0') ? d : "build/svbench_ckpts";
    const char *off = std::getenv("SVBENCH_NO_CKPT");
    disabled = off != nullptr && off[0] == '1';
}

CheckpointStore &
CheckpointStore::global()
{
    static CheckpointStore store;
    return store;
}

std::string
CheckpointStore::fingerprint(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const FunctionSpec *interferer)
{
    const SystemConfig &sys = cfg.system;
    std::ostringstream os;
    os << "prepared-v1;" << isaName(sys.isa) << ";cores=" << sys.numCores
       << ";mhz=" << sys.clockMHz << ";mem=" << sys.memBytes
       << ";seed=" << sys.seed;
    auto geom = [&os](const CacheParams &c) {
        os << ";" << c.name << "=" << c.sizeBytes << "/" << c.assoc << "/"
           << c.lineSize;
    };
    geom(sys.caches.l1i);
    geom(sys.caches.l1d);
    geom(sys.caches.l2);
    os << ";dram=" << sys.dram.numBanks << "/" << sys.dram.rowBytes;
    os << ";db=" << db::dbKindName(cfg.dbKind) << "/" << cfg.startDb
       << cfg.startMemcached;
    // Node-class calibration platforms carry their class tag, so two
    // classes sharing every geometry above still checkpoint apart;
    // untagged clusters keep the legacy fingerprint byte-for-byte.
    if (!cfg.classTag.empty())
        os << ";class=" << cfg.classTag;
    os << ";fn=";
    appendSpec(os, spec);
    if (interferer != nullptr) {
        os << ";vs=";
        appendSpec(os, *interferer);
    }
    return os.str();
}

std::string
CheckpointStore::pathFor(const std::string &fp) const
{
    return dir + "/" + hashHex(fp) + ".ckpt";
}

std::shared_ptr<const Checkpoint>
CheckpointStore::acquire(const std::string &fp, bool *claimed)
{
    *claimed = false;
    std::unique_lock<std::mutex> lk(mtx);
    for (;;) {
        auto it = cache.find(fp);
        if (it != cache.end())
            return it->second;
        if (!pending.count(fp))
            break;
        // Another thread is preparing this tuple; share its work.
        pendingCv.wait(lk);
    }
    pending.insert(fp);
    const std::function<bool(const std::string &)> faultHook =
        restoreFaultHook;
    lk.unlock();

    // Disk probe outside the lock: loading a checkpoint is slow and
    // the pending entry already guards this fingerprint.
    std::string err;
    std::optional<Checkpoint> from_disk =
        Checkpoint::tryLoadFromFile(pathFor(fp), &err);
    if (from_disk.has_value()) {
        // Guard against hash collisions and stale files from another
        // configuration: the stored fingerprint must match exactly.
        if (!from_disk->hasString("meta.fingerprint") ||
            from_disk->getString("meta.fingerprint") != fp) {
            warn("checkpoint ", pathFor(fp),
                 " belongs to a different configuration; re-preparing");
            from_disk.reset();
        } else if (std::string verr;
                   PhysMemory::hasMemoryImage("mem.", *from_disk) &&
                   !PhysMemory::validateCheckpoint("mem.", *from_disk,
                                                   &verr)) {
            // A doctored/corrupt memory image is a miss, never a
            // crash: the restore path must not index out of bounds
            // from hostile page counts or offsets.
            warn("ignoring corrupt checkpoint ", pathFor(fp), ": ", verr);
            from_disk.reset();
        }
    } else if (!err.empty() && std::filesystem::exists(pathFor(fp))) {
        warn("ignoring corrupt checkpoint ", pathFor(fp), ": ", err);
    }

    bool faultInjected = false;
    if (from_disk.has_value() && faultHook && faultHook(fp)) {
        // Injected restore corruption: behave exactly like a corrupt
        // file — drop the snapshot and make the caller re-prepare.
        warn("fault injection: discarding restored checkpoint ",
             pathFor(fp), "; re-preparing");
        from_disk.reset();
        faultInjected = true;
    }

    lk.lock();
    if (faultInjected)
        ++restoreFaults;
    if (!from_disk.has_value()) {
        *claimed = true; // caller prepares, then publish()/release()
        return nullptr;
    }
    auto cp = std::make_shared<const Checkpoint>(std::move(*from_disk));
    cache[fp] = cp;
    pending.erase(fp);
    lk.unlock();
    pendingCv.notify_all();
    return cp;
}

void
CheckpointStore::publish(const std::string &fp, Checkpoint cp)
{
    // Published prepared images must not depend on which emulation
    // tier produced them: strip the superblock anchors (host-side
    // acceleration state) so an image prepared with SVBENCH_FASTWARM=1
    // is byte-equal in content to one restored and re-used with =0.
    // Restore re-forms superblocks lazily from the decode cache.
    cp.erasePrefix("superblock.");
    cp.setString("meta.fingerprint", fp);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        warn("cannot create checkpoint directory ", dir, ": ", ec.message());
    else
        cp.saveToFile(pathFor(fp));
    {
        std::lock_guard<std::mutex> lk(mtx);
        cache[fp] = std::make_shared<const Checkpoint>(std::move(cp));
        pending.erase(fp);
        images.erase(fp);
    }
    pendingCv.notify_all();
}

std::shared_ptr<const PageImage>
CheckpointStore::imageFor(const std::string &fp, const Checkpoint &cp)
{
    if (!PhysMemory::hasPageTable("mem.", cp))
        return nullptr; // pre-page-table snapshot: full restore only
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (auto img = images[fp].lock())
            return img;
    }
    // Build outside the lock (interning a large image is slow). Two
    // racing builders both produce valid images whose pages dedup in
    // the global PageStore; the second insert simply wins.
    std::shared_ptr<const PageImage> img = PhysMemory::buildImage("mem.", cp);
    std::lock_guard<std::mutex> lk(mtx);
    images[fp] = img;
    return img;
}

bool
CheckpointStore::attachWorkingSet(const std::string &fp,
                                  const std::vector<uint64_t> &pages)
{
    std::lock_guard<std::mutex> lk(mtx);
    const auto it = cache.find(fp);
    if (it == cache.end() || it->second->hasBlob("mem.ws"))
        return false; // unknown tuple, or first writer already won
    Checkpoint cp = *it->second;
    BlobWriter w;
    for (uint64_t p : pages)
        w.putU64(p);
    cp.setBlob("mem.ws", w.take());
    // Atomic rewrite (unique-tmp + rename), so concurrent readers of
    // the .ckpt file still only ever see a complete checkpoint.
    if (std::filesystem::exists(dir))
        cp.saveToFile(pathFor(fp));
    it->second = std::make_shared<const Checkpoint>(std::move(cp));
    // Images built before the working set existed prefetch nothing;
    // rebuild on next use.
    images.erase(fp);
    return true;
}

void
CheckpointStore::release(const std::string &fp)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        pending.erase(fp);
    }
    pendingCv.notify_all();
}

void
CheckpointStore::setRestoreFaultHook(
    std::function<bool(const std::string &)> hook)
{
    std::lock_guard<std::mutex> lk(mtx);
    restoreFaultHook = std::move(hook);
}

uint64_t
CheckpointStore::restoreFaultsInjected() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return restoreFaults;
}

void
CheckpointStore::resetForTest(const std::string &test_dir)
{
    std::lock_guard<std::mutex> lk(mtx);
    cache.clear();
    pending.clear();
    images.clear();
    dir = test_dir;
    disabled = false;
    restoreFaultHook = nullptr;
    restoreFaults = 0;
}

} // namespace svb
