/**
 * @file
 * On-disk memoisation of experiment results.
 *
 * The figures of Chapter 4 reuse each other's measurements (e.g.,
 * Figs 4.15-4.18 replot the data of Figs 4.4 and 4.12). Simulation is
 * bit-deterministic, so results are cached in a CSV file keyed by
 * (ISA, database, function, mode); every bench binary transparently
 * shares it. Delete the file (or set SVBENCH_FRESH=1) to re-measure.
 */

#ifndef SVB_CORE_RESULT_CACHE_HH
#define SVB_CORE_RESULT_CACHE_HH

#include <map>
#include <memory>
#include <string>

#include "experiment.hh"

namespace svb
{

/**
 * Lazily-populated store of detailed and emulation results.
 */
class ResultCache
{
  public:
    /** @param path CSV backing file (created on first write) */
    explicit ResultCache(std::string path = "svbench_results.csv");

    /**
     * Fetch (or run and record) the detailed cold/warm result for
     * @p spec on a cluster configured by @p cfg.
     */
    FunctionResult detailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const WorkloadImpl &impl);

    /** Fetch (or run and record) the emulation-mode result. */
    EmuResult emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                       const WorkloadImpl &impl);

    /** Forget everything (and remove the backing file). */
    void clear();

  private:
    std::string keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const std::string &mode) const;
    ExperimentRunner &runnerFor(const ClusterConfig &cfg);
    void load();
    void append(const std::string &key,
                const std::map<std::string, uint64_t> &fields);

    std::string path;
    bool fresh = false;
    /** key -> field -> value. */
    std::map<std::string, std::map<std::string, uint64_t>> rows;
    /** One live runner per distinct cluster configuration. */
    std::map<std::string, std::unique_ptr<ExperimentRunner>> runners;
};

} // namespace svb

#endif // SVB_CORE_RESULT_CACHE_HH
