/**
 * @file
 * On-disk memoisation of experiment results.
 *
 * The figures of Chapter 4 reuse each other's measurements (e.g.,
 * Figs 4.15-4.18 replot the data of Figs 4.4 and 4.12). Simulation is
 * bit-deterministic, so results are cached in a CSV file keyed by
 * (ISA, database, function, mode); every bench binary transparently
 * shares it. Delete the file (or set SVBENCH_FRESH=1) to re-measure.
 *
 * Backing file location: SVBENCH_RESULTS when set, otherwise
 * build/svbench_results.csv under the working directory (machine
 * output never lands at the repo root).
 *
 * Row modes and schemas: each row's key ends in a mode tag ("o3",
 * "emu", "ldcal", "load", "wflow", "coldrs") and each mode is described by a RowSchema
 * descriptor (tag, version, field set) — the single source of truth
 * for the "v" version stamp and for completeness validation. Loading
 * a row whose mode is unknown or whose version does not match warns
 * and skips it (the row is re-measured) instead of silently
 * misparsing fields written by a different tool generation.
 *
 * Thread-safety: every public member may be called concurrently. The
 * row map and CSV append are guarded by one mutex; a "pending" set
 * plus condition variable guarantees that two threads asking for the
 * same key never duplicate a simulation (the second waits for the
 * first's row). Runners are constructed per (configuration, calling
 * thread), never shared across threads — an ExperimentRunner owns a
 * whole ServerlessCluster and is not itself thread-safe.
 */

#ifndef SVB_CORE_RESULT_CACHE_HH
#define SVB_CORE_RESULT_CACHE_HH

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "experiment.hh"

namespace svb
{

/**
 * The on-disk schema of one row mode: its key tag, its schema version
 * (written to and checked against every row's "v" field) and the
 * exact set of data fields a complete row carries. The descriptor
 * table in result_cache.cc is the single source of truth — version
 * checks, completeness validation and the field enumeration all read
 * it, so adding a field to a mode is a one-place change (plus the
 * version bump).
 */
struct RowSchema
{
    const char *mode;   ///< key tag: "o3", "emu", "ldcal", "load", "wflow", "coldrs"
    uint64_t version;   ///< current generation, stored as "v"
    std::vector<std::string> fields; ///< data fields (excluding "v")

    /** @return the descriptor for @p mode, or nullptr if unknown. */
    static const RowSchema *find(const std::string &mode);

    /** Does @p row carry exactly this schema's fields (plus "v")? */
    bool complete(const std::map<std::string, uint64_t> &row) const;
};

/**
 * Lazily-populated store of detailed and emulation results.
 */
class ResultCache
{
  public:
    /**
     * @param path CSV backing file (created on first write); empty
     *             selects SVBENCH_RESULTS, falling back to
     *             build/svbench_results.csv
     */
    explicit ResultCache(std::string path = "");

    /**
     * The unified cache-aware entry point: fetch the row for @p rs
     * (keyed by rs.platform, rs.spec and the mode tag), or run it on
     * this thread's runner and record the row. Lukewarm runs are not
     * cached (their identity includes the interferer, which the key
     * does not carry) and always execute. The legacy per-mode methods
     * below are thin wrappers over this.
     */
    RunResult run(const RunSpec &rs);

    /** The CSV row key of (@p cfg, @p spec) under @p mode. */
    std::string rowKey(const ClusterConfig &cfg, const FunctionSpec &spec,
                       RunMode mode) const;

    /** @return true and fill @p out when @p key has a complete row. */
    bool lookupRow(const std::string &key,
                   std::map<std::string, uint64_t> &out);

    /**
     * Store a row: stamps the mode's schema version into "v",
     * validates the field set against the RowSchema descriptor, then
     * appends to the CSV.
     */
    void recordRow(const std::string &key,
                   const std::map<std::string, uint64_t> &fields);

    /**
     * Fetch (or run and record) the detailed cold/warm result for
     * @p spec on a cluster configured by @p cfg.
     */
    FunctionResult detailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const WorkloadImpl &impl);

    /** Fetch (or run and record) the emulation-mode result. */
    EmuResult emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                       const WorkloadImpl &impl);

    // --- split-phase API for the parallel scheduler ----------------------
    // parallelSweep() computes misses concurrently but records them in
    // submission order, keeping the CSV byte-identical to a serial
    // sweep; hence lookup, compute and record are exposed separately.

    /** @return true and fill @p out when the detailed row is cached. */
    bool lookupDetailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                        FunctionResult &out);

    /**
     * Run the detailed experiment on this thread's runner for @p cfg
     * WITHOUT recording the row (the caller will recordDetailed()).
     */
    FunctionResult computeDetailed(const ClusterConfig &cfg,
                                   const FunctionSpec &spec,
                                   const WorkloadImpl &impl);

    /** Store @p res in the row map and append it to the CSV file. */
    void recordDetailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                        const FunctionResult &res);

    /** The row key of the detailed result for (@p cfg, @p spec). */
    std::string detailedKey(const ClusterConfig &cfg,
                            const FunctionSpec &spec) const;

    /**
     * The CheckpointStore fingerprint of (@p cfg, @p spec)'s prepared
     * state. parallelSweep() groups jobs by this key so each prepared
     * tuple is set up by exactly one worker and shared by the rest.
     */
    std::string checkpointKeyOf(const ClusterConfig &cfg,
                                const FunctionSpec &spec) const;

    // --- load-calibration rows (mode "ldcal") ----------------------------
    // Same split-phase shape as the detailed API, used by
    // load::loadSweep() to calibrate service times in submission
    // order before the scenario simulations run.

    /** Fetch (or run and record) the load calibration; blocking. */
    LoadCalibration loadCalibration(const ClusterConfig &cfg,
                                    const FunctionSpec &spec,
                                    const WorkloadImpl &impl);

    /** @return true and fill @p out when the calibration is cached. */
    bool lookupLoadCal(const ClusterConfig &cfg, const FunctionSpec &spec,
                       LoadCalibration &out);

    /** Run the calibration on this thread's runner, no recording. */
    LoadCalibration computeLoadCal(const ClusterConfig &cfg,
                                   const FunctionSpec &spec,
                                   const WorkloadImpl &impl);

    /** Store @p cal in the row map and append it to the CSV file. */
    void recordLoadCal(const ClusterConfig &cfg, const FunctionSpec &spec,
                       const LoadCalibration &cal);

    /** The row key of the load calibration for (@p cfg, @p spec). */
    std::string loadCalKey(const ClusterConfig &cfg,
                           const FunctionSpec &spec) const;

    // --- load-scenario summary rows (mode "load") ------------------------
    // The load subsystem owns the semantics of these fields; the
    // cache validates the schema (field set + version) on load.

    /** Key of a load-scenario row. @p scenario must not contain the
     *  CSV metacharacters ',', '|' or '='. */
    std::string loadKey(const ClusterConfig &cfg,
                        const std::string &scenario) const;

    /** @return true and fill @p out when the load row is cached. */
    bool lookupLoadRow(const std::string &key,
                       std::map<std::string, uint64_t> &out);

    /** Store a load-scenario summary row (schema-checked). */
    void recordLoadRow(const std::string &key,
                       const std::map<std::string, uint64_t> &fields);

    // --- workflow-scenario summary rows (mode "wflow") -------------------
    // The workflow engine (load/workflow.hh) owns the field semantics;
    // rows travel through the generic lookupRow()/recordRow() pair.

    /** Key of a workflow-scenario row. @p scenario must not contain
     *  the CSV metacharacters ',', '|' or '='. */
    std::string workflowKey(const ClusterConfig &cfg,
                            const std::string &scenario) const;

    // --- cold-start restore-mode rows (mode "coldrs") --------------------
    // bench/coldstart_restore.cc owns the field semantics (cold/warm
    // latencies plus REAP/CoW page accounting per restore mode).

    /** Key of a cold-start restore row. @p scenario must not contain
     *  the CSV metacharacters ',', '|' or '='. */
    std::string coldRestoreKey(const ClusterConfig &cfg,
                               const std::string &scenario) const;

    /** Forget everything (and remove the backing file). */
    void clear();

  private:
    std::string keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const std::string &mode) const;
    ExperimentRunner &runnerFor(const ClusterConfig &cfg);
    void load();
    /** Caller must hold @ref mtx. */
    void appendLocked(const std::string &key,
                      const std::map<std::string, uint64_t> &fields);

    std::string path;
    bool fresh = false;

    /** Guards rows, pending, and the CSV append. */
    std::mutex mtx;
    std::condition_variable pendingCv;
    /** Keys whose simulation is in flight on some thread. */
    std::set<std::string> pending;
    /** key -> field -> value. */
    std::map<std::string, std::map<std::string, uint64_t>> rows;

    /** Guards runners (map mutation only; runner use is unsynchronised
     *  and safe because entries are keyed by constructing thread). */
    std::mutex runnersMtx;
    /** One live runner per (cluster configuration, thread). */
    std::map<std::string, std::unique_ptr<ExperimentRunner>> runners;
};

} // namespace svb

#endif // SVB_CORE_RESULT_CACHE_HH
