/**
 * @file
 * Deterministic parallel experiment scheduler.
 *
 * Chapter 4's figure sweeps are grids of fully independent
 * simulations — (function x ISA x cold/warm x DB) — and every
 * simulation is bit-deterministic and instance-scoped (per-cluster
 * System, object-scoped Rng, no global tick state). This module fans
 * those simulations out across host cores with a fixed-size thread
 * pool and merges the results back in submission order, so figure
 * tables and the CSV result cache are byte-identical to a serial run
 * regardless of completion order.
 *
 * Worker count comes from the SVBENCH_JOBS environment variable
 * (default: hardware_concurrency). SVBENCH_JOBS=1 degrades to the
 * serial behaviour.
 */

#ifndef SVB_CORE_PARALLEL_HH
#define SVB_CORE_PARALLEL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "result_cache.hh"

namespace svb
{

/**
 * A fixed-size pool of worker threads servicing a FIFO task queue.
 *
 * Deliberately work-stealing-free: tasks are picked up in submission
 * order from a single queue, which keeps scheduling easy to reason
 * about. Determinism of *results* does not depend on the pool at all —
 * callers merge by submission index, never by completion order.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param jobs worker count; 0 selects defaultJobs() */
    explicit ThreadPool(unsigned jobs = 0);

    /** Drains nothing: joins after finishing already-queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Worker count implied by the environment: SVBENCH_JOBS if set to
     * a positive integer, otherwise std::thread::hardware_concurrency
     * (or 1 when that reports 0).
     */
    static unsigned defaultJobs();

    /** Enqueue @p task for execution on some worker. */
    void submit(Task task);

    /** Block until every submitted task has finished running. */
    void wait();

    unsigned size() const { return unsigned(workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<Task> tasks;
    std::mutex mtx;
    std::condition_variable taskReady; ///< signals workers
    std::condition_variable allDone;   ///< signals wait()
    size_t inFlight = 0;               ///< queued + currently running
    bool stopping = false;
};

/** One independent experiment: a cluster configuration, the function
 *  to run on it, and the function's workload implementation. */
struct SweepJob
{
    ClusterConfig cfg;
    FunctionSpec spec;
    const WorkloadImpl *impl = nullptr;
};

/**
 * Run every job through the ResultCache across the pool.
 *
 * Cache hits are answered inline. Misses are deduplicated by cache
 * key, computed concurrently on worker threads (each worker builds
 * its own ExperimentRunner / ServerlessCluster via the cache's
 * per-thread runner table), and then *recorded in submission order*
 * from the calling thread — the CSV backing file ends up
 * byte-identical to a serial sweep of the same job list.
 *
 * @param jobs_override worker count; 0 selects ThreadPool::defaultJobs()
 * @return one FunctionResult per job, in submission order
 */
std::vector<FunctionResult>
parallelSweep(ResultCache &cache, const std::vector<SweepJob> &jobs,
              unsigned jobs_override = 0);

/**
 * Cache-free variant for design-space ablations, whose configurations
 * differ in fields the cache key does not cover. Each job gets a
 * fresh ExperimentRunner on a worker thread; results are merged in
 * submission order.
 */
std::vector<FunctionResult>
parallelRun(const std::vector<SweepJob> &jobs, unsigned jobs_override = 0);

/**
 * The submission-order merge that parallelSweep applies to
 * experiments, generalised to any indexed computation: run
 * @p compute(i) for every i in [0, n) across the pool and return the
 * results in index order, regardless of completion order. The load
 * subsystem's scenario sweep is the main client. @p compute must be
 * safe to call concurrently from multiple workers; determinism of
 * each result is the callee's responsibility.
 */
template <typename Result, typename Fn>
std::vector<Result>
parallelIndexed(size_t n, Fn &&compute, unsigned jobs_override = 0)
{
    std::vector<Result> results(n);
    ThreadPool pool(jobs_override);
    for (size_t i = 0; i < n; ++i)
        pool.submit([&results, &compute, i] { results[i] = compute(i); });
    pool.wait();
    return results;
}

} // namespace svb

#endif // SVB_CORE_PARALLEL_HH
