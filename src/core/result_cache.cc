#include "result_cache.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "db/store_gen.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

std::map<std::string, uint64_t>
packStats(const RequestStats &rs, const std::string &prefix)
{
    return {
        {prefix + "cycles", rs.cycles},
        {prefix + "insts", rs.insts},
        {prefix + "uops", rs.uops},
        {prefix + "l1i", rs.l1iMisses},
        {prefix + "l1d", rs.l1dMisses},
        {prefix + "l2", rs.l2Misses},
        {prefix + "branches", rs.branches},
        {prefix + "mispredicts", rs.branchMispredicts},
        {prefix + "itlb", rs.itlbMisses},
        {prefix + "dtlb", rs.dtlbMisses},
    };
}

RequestStats
unpackStats(const std::map<std::string, uint64_t> &fields,
            const std::string &prefix)
{
    auto get = [&](const std::string &name) {
        auto it = fields.find(prefix + name);
        return it == fields.end() ? 0ull : it->second;
    };
    RequestStats rs;
    rs.cycles = get("cycles");
    rs.insts = get("insts");
    rs.uops = get("uops");
    rs.l1iMisses = get("l1i");
    rs.l1dMisses = get("l1d");
    rs.l2Misses = get("l2");
    rs.branches = get("branches");
    rs.branchMispredicts = get("mispredicts");
    rs.itlbMisses = get("itlb");
    rs.dtlbMisses = get("dtlb");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    return rs;
}

} // namespace

ResultCache::ResultCache(std::string path_arg) : path(std::move(path_arg))
{
    const char *env = std::getenv("SVBENCH_FRESH");
    fresh = env != nullptr && env[0] == '1';
    if (!fresh)
        load();
}

void
ResultCache::load()
{
    std::ifstream is(path);
    if (!is)
        return;
    std::string line;
    while (std::getline(is, line)) {
        // Format: key|field=value|field=value|...
        std::istringstream ls(line);
        std::string key;
        if (!std::getline(ls, key, '|'))
            continue;
        std::string kv;
        auto &row = rows[key];
        while (std::getline(ls, kv, '|')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos)
                continue;
            row[kv.substr(0, eq)] =
                std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
        }
    }
}

void
ResultCache::append(const std::string &key,
                    const std::map<std::string, uint64_t> &fields)
{
    rows[key] = fields;
    std::ofstream os(path, std::ios::app);
    os << key;
    for (const auto &[name, value] : fields)
        os << "|" << name << "=" << value;
    os << "\n";
}

std::string
ResultCache::keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                   const std::string &mode) const
{
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "," << db::dbKindName(cfg.dbKind)
       << "," << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0)
       << "," << spec.name << "," << mode;
    return os.str();
}

ExperimentRunner &
ResultCache::runnerFor(const ClusterConfig &cfg)
{
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "/" << db::dbKindName(cfg.dbKind)
       << "/" << cfg.startDb << cfg.startMemcached;
    auto &slot = runners[os.str()];
    if (!slot)
        slot = std::make_unique<ExperimentRunner>(cfg);
    return *slot;
}

FunctionResult
ResultCache::detailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = keyOf(cfg, spec, "o3");
    auto it = rows.find(key);
    if (it != rows.end() && it->second.count("ok")) {
        FunctionResult res;
        res.name = spec.name;
        res.ok = it->second.at("ok") != 0;
        res.cold = unpackStats(it->second, "cold.");
        res.warm = unpackStats(it->second, "warm.");
        return res;
    }

    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (detailed O3, cold+warm)...");
    FunctionResult res = runnerFor(cfg).runFunction(spec, impl);
    std::map<std::string, uint64_t> fields = packStats(res.cold, "cold.");
    for (const auto &[k, v] : packStats(res.warm, "warm."))
        fields[k] = v;
    fields["ok"] = res.ok ? 1 : 0;
    append(key, fields);
    return res;
}

EmuResult
ResultCache::emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = keyOf(cfg, spec, "emu");
    auto it = rows.find(key);
    if (it != rows.end() && it->second.count("ok")) {
        EmuResult res;
        res.name = spec.name;
        res.ok = it->second.at("ok") != 0;
        res.coldNs = it->second.at("coldNs");
        res.warmNs = it->second.at("warmNs");
        return res;
    }

    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (emulation)...");
    EmuResult res = runnerFor(cfg).runFunctionEmu(spec, impl);
    append(key, {{"coldNs", res.coldNs},
                 {"warmNs", res.warmNs},
                 {"ok", res.ok ? 1u : 0u}});
    return res;
}

void
ResultCache::clear()
{
    rows.clear();
    std::remove(path.c_str());
}

} // namespace svb
