#include "result_cache.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "checkpoint_store.hh"
#include "db/store_gen.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

/** The per-request stat fields under one prefix ("cold." / "warm."). */
std::vector<std::string>
statFields(const std::string &prefix)
{
    std::vector<std::string> fields;
    for (const char *n :
         {"cycles", "insts", "uops", "l1i", "l1d", "l2", "branches",
          "mispredicts", "itlb", "dtlb"})
        fields.push_back(prefix + n);
    for (unsigned c = 0; c < numStallCauses; ++c)
        fields.push_back(prefix + "stall." + stallCauseName(c));
    return fields;
}

std::string
modeOfKey(const std::string &key)
{
    const size_t comma = key.rfind(',');
    return comma == std::string::npos ? "" : key.substr(comma + 1);
}

/**
 * The platform component of a row/runner key: the ISA name, plus
 * "@<classTag>" when the cluster is the calibration platform of one
 * fleet node class (cluster.hh). The tag keeps two classes that share
 * an ISA but differ in clock or cache budget from ever sharing rows,
 * runners or checkpoints; untagged clusters keep the plain per-ISA
 * keys byte-for-byte.
 */
std::string
platformTag(const ClusterConfig &cfg)
{
    std::string tag = isaName(cfg.system.isa);
    if (!cfg.classTag.empty()) {
        svb_assert(cfg.classTag.find_first_of(",|=") == std::string::npos,
                   "cluster classTag contains a CSV metacharacter");
        tag += "@";
        tag += cfg.classTag;
    }
    return tag;
}

} // namespace

/**
 * The schema descriptor table: one entry per row mode, carrying the
 * mode tag, the current schema version and the complete ordered field
 * set. Bump a mode's version whenever its field set or meaning
 * changes; old rows are then skipped (and re-measured) instead of
 * misparsed. o3 is at v2: v1 predates the stall-cause fields.
 */
const RowSchema *
RowSchema::find(const std::string &mode)
{
    static const std::vector<RowSchema> schemas = [] {
        std::vector<RowSchema> s;
        {
            RowSchema o3{"o3", 2, statFields("cold.")};
            const std::vector<std::string> warm = statFields("warm.");
            o3.fields.insert(o3.fields.end(), warm.begin(), warm.end());
            o3.fields.push_back("ok");
            s.push_back(std::move(o3));
        }
        s.push_back({"emu", 1, {"coldNs", "warmNs", "ok"}});
        {
            RowSchema ld{"ldcal", 1, {"coldNs"}};
            for (unsigned k = 0; k < loadWarmSamples; ++k)
                ld.fields.push_back("warm" + std::to_string(k) + "Ns");
            ld.fields.push_back("ok");
            s.push_back(std::move(ld));
        }
        // load v5: v1 predates the resilience fields (availability,
        // retry/fault counters, goodput/error percentiles), v2 the
        // fleet fields (node count, routing policy, autoscaler peak,
        // throttles, node faults, utilisation), v3 the node-class
        // fields (class count, provisioned fleet power/cost weights);
        // v4 rows were computed before the inclusive keep-alive TTL
        // (an instance idle exactly keepAliveNs is now evicted), which
        // shifts cold/warm splits at TTL boundaries.
        s.push_back({"load", 5,
                     {"invocations", "coldStarts", "warmHits", "evictions",
                      "p50Ns", "p90Ns", "p99Ns", "p999Ns", "maxNs",
                      "throughputMrps", "histoFp", "succeeded",
                      "failedInv", "sheds", "retries", "crashes",
                      "timeouts", "coldFails", "corruptRestores",
                      "stragglers", "breakerOpens", "goodP50Ns",
                      "goodP99Ns", "errP99Ns", "goodFp", "nodes",
                      "policy", "maxActive", "throttles", "nodeFaults",
                      "utilPermil", "classes", "powerMw", "costMilli",
                      "ok"}});
        // wflow v3: workflow-scenario summaries (workflow.hh); v1
        // predates the node-class fields (classes/powerMw/costMilli)
        // and the placement-hint hit/miss counters; v2 predates the
        // inclusive keep-alive TTL (see the load v5 note). The critN
        // slots memoise per-stage critical-path permil shares for the
        // first kMaxCritSlots stages (unused slots store 0).
        {
            RowSchema wf{"wflow", 3,
                         {"invocations", "succeeded", "failedWf", "sheds",
                          "throttles", "retries", "crashes", "timeouts",
                          "coldFails", "corruptRestores", "stragglers",
                          "breakerOpens", "nodeFaults", "coldStarts",
                          "warmHits", "evictions", "stages", "tasks",
                          "p50Ns", "p90Ns", "p99Ns", "p999Ns", "maxNs",
                          "throughputMrps", "histoFp", "goodP50Ns",
                          "goodP99Ns", "errP99Ns", "goodFp", "critFp",
                          "xferLocal", "xferRemote", "xferLocalBytes",
                          "xferRemoteBytes", "xferNs", "nodes", "policy",
                          "maxActive", "utilPermil", "classes", "powerMw",
                          "costMilli", "prefHits", "prefMisses", "ok"}};
            for (unsigned k = 0; k < 12; ++k)
                wf.fields.push_back("crit" + std::to_string(k));
            s.push_back(std::move(wf));
        }
        // coldrs v1: cold-start restore-mode sweeps
        // (bench/coldstart_restore.cc) — per (runtime tier, ISA,
        // restore mode, function) cold/warm latencies plus the page
        // accounting of the REAP/CoW restore path.
        s.push_back({"coldrs", 1,
                     {"coldNs", "warmNs", "imagePages", "uniquePages",
                      "wsPages", "prefetched", "faults", "residentEnd",
                      "ok"}});
        return s;
    }();
    for (const RowSchema &schema : schemas)
        if (mode == schema.mode)
            return &schema;
    return nullptr;
}

bool
RowSchema::complete(const std::map<std::string, uint64_t> &row) const
{
    if (row.size() != fields.size() + 1) // +1: the "v" stamp
        return false;
    for (const std::string &f : fields)
        if (!row.count(f))
            return false;
    return true;
}

namespace
{

/** Current schema version of @p mode (0 when unknown). */
uint64_t
modeSchemaVersion(const std::string &mode)
{
    const RowSchema *schema = RowSchema::find(mode);
    return schema != nullptr ? schema->version : 0;
}

std::map<std::string, uint64_t>
packStats(const RequestStats &rs, const std::string &prefix)
{
    std::map<std::string, uint64_t> fields = {
        {prefix + "cycles", rs.cycles},
        {prefix + "insts", rs.insts},
        {prefix + "uops", rs.uops},
        {prefix + "l1i", rs.l1iMisses},
        {prefix + "l1d", rs.l1dMisses},
        {prefix + "l2", rs.l2Misses},
        {prefix + "branches", rs.branches},
        {prefix + "mispredicts", rs.branchMispredicts},
        {prefix + "itlb", rs.itlbMisses},
        {prefix + "dtlb", rs.dtlbMisses},
    };
    for (unsigned c = 0; c < numStallCauses; ++c)
        fields[prefix + "stall." + stallCauseName(c)] = rs.stalls[c];
    return fields;
}

RequestStats
unpackStats(const std::map<std::string, uint64_t> &fields,
            const std::string &prefix)
{
    auto get = [&](const std::string &name) {
        auto it = fields.find(prefix + name);
        return it == fields.end() ? 0ull : it->second;
    };
    RequestStats rs;
    rs.cycles = get("cycles");
    rs.insts = get("insts");
    rs.uops = get("uops");
    rs.l1iMisses = get("l1i");
    rs.l1dMisses = get("l1d");
    rs.l2Misses = get("l2");
    rs.branches = get("branches");
    rs.branchMispredicts = get("mispredicts");
    rs.itlbMisses = get("itlb");
    rs.dtlbMisses = get("dtlb");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    for (unsigned c = 0; c < numStallCauses; ++c)
        rs.stalls[c] = get(std::string("stall.") + stallCauseName(c));
    return rs;
}

std::map<std::string, uint64_t>
packResult(const FunctionResult &res)
{
    std::map<std::string, uint64_t> fields = packStats(res.cold, "cold.");
    for (const auto &[k, v] : packStats(res.warm, "warm."))
        fields[k] = v;
    fields["ok"] = res.ok ? 1 : 0;
    fields["v"] = modeSchemaVersion("o3");
    return fields;
}

std::map<std::string, uint64_t>
packLoadCal(const LoadCalibration &cal)
{
    std::map<std::string, uint64_t> fields;
    fields["coldNs"] = cal.coldNs;
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        fields["warm" + std::to_string(k) + "Ns"] = cal.warmNs[k];
    fields["ok"] = cal.ok ? 1 : 0;
    fields["v"] = modeSchemaVersion("ldcal");
    return fields;
}

LoadCalibration
unpackLoadCal(const std::string &name,
              const std::map<std::string, uint64_t> &fields)
{
    LoadCalibration cal;
    cal.name = name;
    cal.ok = fields.at("ok") != 0;
    cal.coldNs = fields.at("coldNs");
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        cal.warmNs[k] = fields.at("warm" + std::to_string(k) + "Ns");
    return cal;
}

FunctionResult
unpackResult(const std::string &name,
             const std::map<std::string, uint64_t> &fields)
{
    FunctionResult res;
    res.name = name;
    res.ok = fields.at("ok") != 0;
    res.cold = unpackStats(fields, "cold.");
    res.warm = unpackStats(fields, "warm.");
    return res;
}

std::map<std::string, uint64_t>
packEmu(const EmuResult &res)
{
    return {{"coldNs", res.coldNs},
            {"warmNs", res.warmNs},
            {"ok", res.ok ? 1u : 0u},
            {"v", modeSchemaVersion("emu")}};
}

EmuResult
unpackEmu(const std::string &name,
          const std::map<std::string, uint64_t> &fields)
{
    EmuResult res;
    res.name = name;
    res.ok = fields.at("ok") != 0;
    res.coldNs = fields.at("coldNs");
    res.warmNs = fields.at("warmNs");
    return res;
}

/** Serialise whichever result the variant holds under its schema. */
std::map<std::string, uint64_t>
packRunResult(const RunResult &res)
{
    if (const auto *fr = std::get_if<FunctionResult>(&res))
        return packResult(*fr);
    if (const auto *er = std::get_if<EmuResult>(&res))
        return packEmu(*er);
    if (const auto *lc = std::get_if<LoadCalibration>(&res))
        return packLoadCal(*lc);
    svb_fatal("packRunResult: lukewarm results are not cacheable");
}

RunResult
unpackRunResult(RunMode mode, const std::string &name,
                const std::map<std::string, uint64_t> &fields)
{
    switch (mode) {
      case RunMode::Detailed:
        return unpackResult(name, fields);
      case RunMode::Emu:
        return unpackEmu(name, fields);
      case RunMode::LoadCal:
        return unpackLoadCal(name, fields);
      case RunMode::Lukewarm:
        break;
    }
    svb_fatal("unpackRunResult: lukewarm rows do not exist");
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Validation outcome of a loaded CSV row. */
enum class RowCheck { Ok, Malformed, UnknownMode, VersionMismatch };

/**
 * Every field a valid row of @p key's mode must carry, plus the
 * mode's schema version. The CSV is append-only and a crash can
 * truncate the final line anywhere; because fields serialise in
 * alphabetical order, "ok" lands BEFORE the "warm.*" block, so a
 * truncated detailed row can look complete ("ok=1") while silently
 * missing its warm measurements. Validating the full field set closes
 * that hole; the version check stops rows written by an older or
 * newer tool generation from being misparsed field-by-field.
 */
RowCheck
rowComplete(const std::string &key,
            const std::map<std::string, uint64_t> &row)
{
    const RowSchema *schema = RowSchema::find(modeOfKey(key));
    if (schema == nullptr)
        return RowCheck::UnknownMode;
    auto vit = row.find("v");
    if (vit == row.end() || vit->second != schema->version)
        return RowCheck::VersionMismatch;
    return schema->complete(row) ? RowCheck::Ok : RowCheck::Malformed;
}

} // namespace

namespace
{

/**
 * Default backing path: SVBENCH_RESULTS when set, otherwise
 * build/svbench_results.csv so machine output stays out of the
 * repository root (the directory is created on demand).
 */
std::string
defaultResultPath()
{
    if (const char *env = std::getenv("SVBENCH_RESULTS")) {
        if (env[0] != '\0')
            return env;
    }
    std::error_code ec;
    std::filesystem::create_directories("build", ec);
    if (ec)
        warn("cannot create build/ for the result cache: ",
             ec.message(), "; falling back to the working directory");
    return ec ? "svbench_results.csv" : "build/svbench_results.csv";
}

} // namespace

ResultCache::ResultCache(std::string path_arg)
    : path(path_arg.empty() ? defaultResultPath() : std::move(path_arg))
{
    const char *env = std::getenv("SVBENCH_FRESH");
    fresh = env != nullptr && env[0] == '1';
    if (!fresh)
        load();
}

void
ResultCache::load()
{
    std::ifstream is(path);
    if (!is)
        return;
    std::string line;
    size_t lineno = 0;
    size_t skipped = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Format: key|field=value|field=value|...
        std::istringstream ls(line);
        std::string key;
        if (!std::getline(ls, key, '|') || key.empty()) {
            ++skipped;
            continue;
        }
        std::map<std::string, uint64_t> row;
        bool malformed = false;
        std::string kv;
        while (std::getline(ls, kv, '|')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0 ||
                !allDigits(kv.substr(eq + 1))) {
                malformed = true;
                break;
            }
            row[kv.substr(0, eq)] =
                std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
        }
        const RowCheck check =
            malformed ? RowCheck::Malformed : rowComplete(key, row);
        if (check != RowCheck::Ok) {
            if (check == RowCheck::UnknownMode) {
                warn(path, ":", lineno, ": skipping row of unknown mode '",
                     modeOfKey(key),
                     "' (written by a different tool generation?)");
            } else if (check == RowCheck::VersionMismatch) {
                warn(path, ":", lineno, ": skipping '", modeOfKey(key),
                     "' row with stale schema version; it will be "
                     "re-measured");
            } else {
                warn(path, ":", lineno,
                     ": skipping malformed result row (key '", key, "')");
            }
            ++skipped;
            continue;
        }
        rows[key] = std::move(row);
    }
    if (skipped > 0)
        warn(path, ": ignored ", skipped,
             " unusable line(s); those results will be re-measured");
}

void
ResultCache::appendLocked(const std::string &key,
                          const std::map<std::string, uint64_t> &fields)
{
    rows[key] = fields;
    std::ofstream os(path, std::ios::app);
    os << key;
    for (const auto &[name, value] : fields)
        os << "|" << name << "=" << value;
    os << "\n";
}

std::string
ResultCache::keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                   const std::string &mode) const
{
    std::ostringstream os;
    os << platformTag(cfg) << "," << db::dbKindName(cfg.dbKind) << ","
       << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0) << ","
       << spec.name << "," << mode;
    return os.str();
}

std::string
ResultCache::detailedKey(const ClusterConfig &cfg,
                         const FunctionSpec &spec) const
{
    return keyOf(cfg, spec, "o3");
}

std::string
ResultCache::checkpointKeyOf(const ClusterConfig &cfg,
                             const FunctionSpec &spec) const
{
    return CheckpointStore::fingerprint(cfg, spec);
}

ExperimentRunner &
ResultCache::runnerFor(const ClusterConfig &cfg)
{
    // Keyed by (configuration, calling thread): a runner owns a whole
    // ServerlessCluster with no internal locking, so it must never be
    // driven from two threads. Within one thread it is reused across
    // functions, preserving the serial path's boot-once behaviour.
    std::ostringstream os;
    os << platformTag(cfg) << "/" << db::dbKindName(cfg.dbKind) << "/"
       << cfg.startDb << cfg.startMemcached << "/tid"
       << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string key = os.str();

    {
        std::lock_guard<std::mutex> lk(runnersMtx);
        auto it = runners.find(key);
        if (it != runners.end())
            return *it->second;
    }
    // Construct outside the lock: booting a cluster is expensive and
    // concurrent boots are the whole point. No other thread inserts
    // this key (it embeds our thread id), so the slot stays ours.
    auto runner = std::make_unique<ExperimentRunner>(cfg);
    std::lock_guard<std::mutex> lk(runnersMtx);
    auto &slot = runners[key];
    slot = std::move(runner);
    return *slot;
}

bool
ResultCache::lookupDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec, FunctionResult &out)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = unpackResult(spec.name, it->second);
    return true;
}

FunctionResult
ResultCache::computeDetailed(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const WorkloadImpl &impl)
{
    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (detailed O3, cold+warm)...");
    return runnerFor(cfg).runFunction(spec, impl);
}

void
ResultCache::recordDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const FunctionResult &res)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, packResult(res));
}

std::string
ResultCache::rowKey(const ClusterConfig &cfg, const FunctionSpec &spec,
                    RunMode mode) const
{
    return keyOf(cfg, spec, runModeName(mode));
}

RunResult
ResultCache::run(const RunSpec &rs)
{
    svb_assert(rs.impl != nullptr, "RunSpec without a workload impl");
    // Lukewarm results are keyed by an interferer the row key cannot
    // carry; they always execute.
    if (rs.mode == RunMode::Lukewarm)
        return runnerFor(rs.platform).run(rs);

    const std::string key = rowKey(rs.platform, rs.spec, rs.mode);
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpackRunResult(rs.mode, rs.spec.name, it->second);
            if (!pending.count(key))
                break;
            // Another thread is simulating this key; wait for its row
            // rather than duplicating the run.
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    switch (rs.mode) {
      case RunMode::Detailed:
        inform("measuring ", rs.spec.name, " on ",
               isaName(rs.platform.system.isa),
               " (detailed O3, cold+warm)...");
        break;
      case RunMode::Emu:
        inform("measuring ", rs.spec.name, " on ",
               isaName(rs.platform.system.isa), " (emulation)...");
        break;
      case RunMode::LoadCal:
        inform("calibrating ", rs.spec.name, " on ",
               isaName(rs.platform.system.isa), " for load (cold + ",
               loadWarmSamples, " warm samples)...");
        break;
      case RunMode::Lukewarm:
        break;
    }
    const RunResult res = runnerFor(rs.platform).run(rs);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, packRunResult(res));
        pending.erase(key);
    }
    pendingCv.notify_all();
    return res;
}

FunctionResult
ResultCache::detailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    RunSpec rs;
    rs.mode = RunMode::Detailed;
    rs.spec = spec;
    rs.impl = &impl;
    rs.platform = cfg;
    return std::get<FunctionResult>(run(rs));
}

EmuResult
ResultCache::emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    RunSpec rs;
    rs.mode = RunMode::Emu;
    rs.spec = spec;
    rs.impl = &impl;
    rs.platform = cfg;
    return std::get<EmuResult>(run(rs));
}

std::string
ResultCache::loadCalKey(const ClusterConfig &cfg,
                        const FunctionSpec &spec) const
{
    return keyOf(cfg, spec, "ldcal");
}

bool
ResultCache::lookupLoadCal(const ClusterConfig &cfg,
                           const FunctionSpec &spec, LoadCalibration &out)
{
    const std::string key = keyOf(cfg, spec, "ldcal");
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = unpackLoadCal(spec.name, it->second);
    return true;
}

LoadCalibration
ResultCache::computeLoadCal(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const WorkloadImpl &impl)
{
    inform("calibrating ", spec.name, " on ", isaName(cfg.system.isa),
           " for load (cold + ", loadWarmSamples, " warm samples)...");
    return runnerFor(cfg).runLoadCalibration(spec, impl);
}

void
ResultCache::recordLoadCal(const ClusterConfig &cfg,
                           const FunctionSpec &spec,
                           const LoadCalibration &cal)
{
    const std::string key = keyOf(cfg, spec, "ldcal");
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, packLoadCal(cal));
}

LoadCalibration
ResultCache::loadCalibration(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const WorkloadImpl &impl)
{
    RunSpec rs;
    rs.mode = RunMode::LoadCal;
    rs.spec = spec;
    rs.impl = &impl;
    rs.platform = cfg;
    return std::get<LoadCalibration>(run(rs));
}

std::string
ResultCache::loadKey(const ClusterConfig &cfg,
                     const std::string &scenario) const
{
    svb_assert(scenario.find_first_of(",|=") == std::string::npos,
               "scenario name contains a CSV metacharacter");
    std::ostringstream os;
    os << platformTag(cfg) << "," << db::dbKindName(cfg.dbKind) << ","
       << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0) << ","
       << scenario << ",load";
    return os.str();
}

std::string
ResultCache::workflowKey(const ClusterConfig &cfg,
                         const std::string &scenario) const
{
    svb_assert(scenario.find_first_of(",|=") == std::string::npos,
               "scenario name contains a CSV metacharacter");
    std::ostringstream os;
    os << platformTag(cfg) << "," << db::dbKindName(cfg.dbKind) << ","
       << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0) << ","
       << scenario << ",wflow";
    return os.str();
}

std::string
ResultCache::coldRestoreKey(const ClusterConfig &cfg,
                            const std::string &scenario) const
{
    svb_assert(scenario.find_first_of(",|=") == std::string::npos,
               "scenario name contains a CSV metacharacter");
    std::ostringstream os;
    os << platformTag(cfg) << "," << db::dbKindName(cfg.dbKind) << ","
       << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0) << ","
       << scenario << ",coldrs";
    return os.str();
}

bool
ResultCache::lookupRow(const std::string &key,
                       std::map<std::string, uint64_t> &out)
{
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = it->second;
    return true;
}

void
ResultCache::recordRow(const std::string &key,
                       const std::map<std::string, uint64_t> &fields)
{
    std::map<std::string, uint64_t> row = fields;
    row["v"] = modeSchemaVersion(modeOfKey(key));
    svb_assert(rowComplete(key, row) == RowCheck::Ok,
               "row does not match its mode's schema");
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, row);
}

bool
ResultCache::lookupLoadRow(const std::string &key,
                           std::map<std::string, uint64_t> &out)
{
    return lookupRow(key, out);
}

void
ResultCache::recordLoadRow(const std::string &key,
                           const std::map<std::string, uint64_t> &fields)
{
    recordRow(key, fields);
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lk(mtx);
    rows.clear();
    std::remove(path.c_str());
}

} // namespace svb
