#include "result_cache.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "checkpoint_store.hh"
#include "db/store_gen.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

std::map<std::string, uint64_t>
packStats(const RequestStats &rs, const std::string &prefix)
{
    return {
        {prefix + "cycles", rs.cycles},
        {prefix + "insts", rs.insts},
        {prefix + "uops", rs.uops},
        {prefix + "l1i", rs.l1iMisses},
        {prefix + "l1d", rs.l1dMisses},
        {prefix + "l2", rs.l2Misses},
        {prefix + "branches", rs.branches},
        {prefix + "mispredicts", rs.branchMispredicts},
        {prefix + "itlb", rs.itlbMisses},
        {prefix + "dtlb", rs.dtlbMisses},
    };
}

RequestStats
unpackStats(const std::map<std::string, uint64_t> &fields,
            const std::string &prefix)
{
    auto get = [&](const std::string &name) {
        auto it = fields.find(prefix + name);
        return it == fields.end() ? 0ull : it->second;
    };
    RequestStats rs;
    rs.cycles = get("cycles");
    rs.insts = get("insts");
    rs.uops = get("uops");
    rs.l1iMisses = get("l1i");
    rs.l1dMisses = get("l1d");
    rs.l2Misses = get("l2");
    rs.branches = get("branches");
    rs.branchMispredicts = get("mispredicts");
    rs.itlbMisses = get("itlb");
    rs.dtlbMisses = get("dtlb");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    return rs;
}

std::map<std::string, uint64_t>
packResult(const FunctionResult &res)
{
    std::map<std::string, uint64_t> fields = packStats(res.cold, "cold.");
    for (const auto &[k, v] : packStats(res.warm, "warm."))
        fields[k] = v;
    fields["ok"] = res.ok ? 1 : 0;
    return fields;
}

FunctionResult
unpackResult(const std::string &name,
             const std::map<std::string, uint64_t> &fields)
{
    FunctionResult res;
    res.name = name;
    res.ok = fields.at("ok") != 0;
    res.cold = unpackStats(fields, "cold.");
    res.warm = unpackStats(fields, "warm.");
    return res;
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/**
 * Every field a valid row of @p key's mode must carry. The CSV is
 * append-only and a crash can truncate the final line anywhere;
 * because fields serialise in alphabetical order, "ok" lands BEFORE
 * the "warm.*" block, so a truncated detailed row can look complete
 * ("ok=1") while silently missing its warm measurements. Validating
 * the full field set closes that hole.
 */
bool
rowComplete(const std::string &key,
            const std::map<std::string, uint64_t> &row)
{
    const size_t comma = key.rfind(',');
    const std::string mode =
        comma == std::string::npos ? "" : key.substr(comma + 1);
    auto hasStats = [&row](const std::string &prefix) {
        static const char *names[] = {"cycles", "insts",       "uops",
                                      "l1i",    "l1d",         "l2",
                                      "branches", "mispredicts", "itlb",
                                      "dtlb"};
        for (const char *n : names)
            if (!row.count(prefix + n))
                return false;
        return true;
    };
    if (mode == "o3")
        return row.count("ok") && row.size() == 21 && hasStats("cold.") &&
               hasStats("warm.");
    if (mode == "emu")
        return row.size() == 3 && row.count("ok") && row.count("coldNs") &&
               row.count("warmNs");
    return false; // unrecognisable key: treat as corruption
}

} // namespace

ResultCache::ResultCache(std::string path_arg) : path(std::move(path_arg))
{
    const char *env = std::getenv("SVBENCH_FRESH");
    fresh = env != nullptr && env[0] == '1';
    if (!fresh)
        load();
}

void
ResultCache::load()
{
    std::ifstream is(path);
    if (!is)
        return;
    std::string line;
    size_t lineno = 0;
    size_t skipped = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Format: key|field=value|field=value|...
        std::istringstream ls(line);
        std::string key;
        if (!std::getline(ls, key, '|') || key.empty()) {
            ++skipped;
            continue;
        }
        std::map<std::string, uint64_t> row;
        bool malformed = false;
        std::string kv;
        while (std::getline(ls, kv, '|')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0 ||
                !allDigits(kv.substr(eq + 1))) {
                malformed = true;
                break;
            }
            row[kv.substr(0, eq)] =
                std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
        }
        if (malformed || !rowComplete(key, row)) {
            warn(path, ":", lineno,
                 ": skipping malformed result row (key '", key, "')");
            ++skipped;
            continue;
        }
        rows[key] = std::move(row);
    }
    if (skipped > 0)
        warn(path, ": ignored ", skipped,
             " unusable line(s); those results will be re-measured");
}

void
ResultCache::appendLocked(const std::string &key,
                          const std::map<std::string, uint64_t> &fields)
{
    rows[key] = fields;
    std::ofstream os(path, std::ios::app);
    os << key;
    for (const auto &[name, value] : fields)
        os << "|" << name << "=" << value;
    os << "\n";
}

std::string
ResultCache::keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                   const std::string &mode) const
{
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "," << db::dbKindName(cfg.dbKind)
       << "," << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0)
       << "," << spec.name << "," << mode;
    return os.str();
}

std::string
ResultCache::detailedKey(const ClusterConfig &cfg,
                         const FunctionSpec &spec) const
{
    return keyOf(cfg, spec, "o3");
}

std::string
ResultCache::checkpointKeyOf(const ClusterConfig &cfg,
                             const FunctionSpec &spec) const
{
    return CheckpointStore::fingerprint(cfg, spec);
}

ExperimentRunner &
ResultCache::runnerFor(const ClusterConfig &cfg)
{
    // Keyed by (configuration, calling thread): a runner owns a whole
    // ServerlessCluster with no internal locking, so it must never be
    // driven from two threads. Within one thread it is reused across
    // functions, preserving the serial path's boot-once behaviour.
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "/" << db::dbKindName(cfg.dbKind)
       << "/" << cfg.startDb << cfg.startMemcached << "/tid"
       << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string key = os.str();

    {
        std::lock_guard<std::mutex> lk(runnersMtx);
        auto it = runners.find(key);
        if (it != runners.end())
            return *it->second;
    }
    // Construct outside the lock: booting a cluster is expensive and
    // concurrent boots are the whole point. No other thread inserts
    // this key (it embeds our thread id), so the slot stays ours.
    auto runner = std::make_unique<ExperimentRunner>(cfg);
    std::lock_guard<std::mutex> lk(runnersMtx);
    auto &slot = runners[key];
    slot = std::move(runner);
    return *slot;
}

bool
ResultCache::lookupDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec, FunctionResult &out)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = unpackResult(spec.name, it->second);
    return true;
}

FunctionResult
ResultCache::computeDetailed(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const WorkloadImpl &impl)
{
    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (detailed O3, cold+warm)...");
    return runnerFor(cfg).runFunction(spec, impl);
}

void
ResultCache::recordDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const FunctionResult &res)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, packResult(res));
}

FunctionResult
ResultCache::detailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = detailedKey(cfg, spec);
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpackResult(spec.name, it->second);
            if (!pending.count(key))
                break;
            // Another thread is simulating this key; wait for its row
            // rather than duplicating the run.
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    const FunctionResult res = computeDetailed(cfg, spec, impl);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, packResult(res));
        pending.erase(key);
    }
    pendingCv.notify_all();
    return res;
}

EmuResult
ResultCache::emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = keyOf(cfg, spec, "emu");
    auto unpack = [&](const std::map<std::string, uint64_t> &fields) {
        EmuResult res;
        res.name = spec.name;
        res.ok = fields.at("ok") != 0;
        res.coldNs = fields.at("coldNs");
        res.warmNs = fields.at("warmNs");
        return res;
    };
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpack(it->second);
            if (!pending.count(key))
                break;
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (emulation)...");
    EmuResult res = runnerFor(cfg).runFunctionEmu(spec, impl);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, {{"coldNs", res.coldNs},
                           {"warmNs", res.warmNs},
                           {"ok", res.ok ? 1u : 0u}});
        pending.erase(key);
    }
    pendingCv.notify_all();
    return res;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lk(mtx);
    rows.clear();
    std::remove(path.c_str());
}

} // namespace svb
