#include "result_cache.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "checkpoint_store.hh"
#include "db/store_gen.hh"
#include "sim/logging.hh"

namespace svb
{

namespace
{

/**
 * Schema version of a row mode, carried in every row's "v" field.
 * Bump a mode's version whenever its field set or meaning changes;
 * old rows are then skipped (and re-measured) instead of misparsed.
 * 0 means the mode is unknown to this build.
 */
uint64_t
modeSchemaVersion(const std::string &mode)
{
    if (mode == "o3")
        return 1;
    if (mode == "emu")
        return 1;
    if (mode == "ldcal")
        return 1;
    if (mode == "load")
        return 1;
    return 0;
}

std::string
modeOfKey(const std::string &key)
{
    const size_t comma = key.rfind(',');
    return comma == std::string::npos ? "" : key.substr(comma + 1);
}

std::map<std::string, uint64_t>
packStats(const RequestStats &rs, const std::string &prefix)
{
    return {
        {prefix + "cycles", rs.cycles},
        {prefix + "insts", rs.insts},
        {prefix + "uops", rs.uops},
        {prefix + "l1i", rs.l1iMisses},
        {prefix + "l1d", rs.l1dMisses},
        {prefix + "l2", rs.l2Misses},
        {prefix + "branches", rs.branches},
        {prefix + "mispredicts", rs.branchMispredicts},
        {prefix + "itlb", rs.itlbMisses},
        {prefix + "dtlb", rs.dtlbMisses},
    };
}

RequestStats
unpackStats(const std::map<std::string, uint64_t> &fields,
            const std::string &prefix)
{
    auto get = [&](const std::string &name) {
        auto it = fields.find(prefix + name);
        return it == fields.end() ? 0ull : it->second;
    };
    RequestStats rs;
    rs.cycles = get("cycles");
    rs.insts = get("insts");
    rs.uops = get("uops");
    rs.l1iMisses = get("l1i");
    rs.l1dMisses = get("l1d");
    rs.l2Misses = get("l2");
    rs.branches = get("branches");
    rs.branchMispredicts = get("mispredicts");
    rs.itlbMisses = get("itlb");
    rs.dtlbMisses = get("dtlb");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    return rs;
}

std::map<std::string, uint64_t>
packResult(const FunctionResult &res)
{
    std::map<std::string, uint64_t> fields = packStats(res.cold, "cold.");
    for (const auto &[k, v] : packStats(res.warm, "warm."))
        fields[k] = v;
    fields["ok"] = res.ok ? 1 : 0;
    fields["v"] = modeSchemaVersion("o3");
    return fields;
}

std::map<std::string, uint64_t>
packLoadCal(const LoadCalibration &cal)
{
    std::map<std::string, uint64_t> fields;
    fields["coldNs"] = cal.coldNs;
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        fields["warm" + std::to_string(k) + "Ns"] = cal.warmNs[k];
    fields["ok"] = cal.ok ? 1 : 0;
    fields["v"] = modeSchemaVersion("ldcal");
    return fields;
}

LoadCalibration
unpackLoadCal(const std::string &name,
              const std::map<std::string, uint64_t> &fields)
{
    LoadCalibration cal;
    cal.name = name;
    cal.ok = fields.at("ok") != 0;
    cal.coldNs = fields.at("coldNs");
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        cal.warmNs[k] = fields.at("warm" + std::to_string(k) + "Ns");
    return cal;
}

FunctionResult
unpackResult(const std::string &name,
             const std::map<std::string, uint64_t> &fields)
{
    FunctionResult res;
    res.name = name;
    res.ok = fields.at("ok") != 0;
    res.cold = unpackStats(fields, "cold.");
    res.warm = unpackStats(fields, "warm.");
    return res;
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Validation outcome of a loaded CSV row. */
enum class RowCheck { Ok, Malformed, UnknownMode, VersionMismatch };

/**
 * Every field a valid row of @p key's mode must carry, plus the
 * mode's schema version. The CSV is append-only and a crash can
 * truncate the final line anywhere; because fields serialise in
 * alphabetical order, "ok" lands BEFORE the "warm.*" block, so a
 * truncated detailed row can look complete ("ok=1") while silently
 * missing its warm measurements. Validating the full field set closes
 * that hole; the version check stops rows written by an older or
 * newer tool generation from being misparsed field-by-field.
 */
RowCheck
rowComplete(const std::string &key,
            const std::map<std::string, uint64_t> &row)
{
    const std::string mode = modeOfKey(key);
    const uint64_t version = modeSchemaVersion(mode);
    if (version == 0)
        return RowCheck::UnknownMode;
    auto vit = row.find("v");
    if (vit == row.end() || vit->second != version)
        return RowCheck::VersionMismatch;

    auto hasStats = [&row](const std::string &prefix) {
        static const char *names[] = {"cycles", "insts",       "uops",
                                      "l1i",    "l1d",         "l2",
                                      "branches", "mispredicts", "itlb",
                                      "dtlb"};
        for (const char *n : names)
            if (!row.count(prefix + n))
                return false;
        return true;
    };
    auto hasAll = [&row](std::initializer_list<const char *> names) {
        for (const char *n : names)
            if (!row.count(n))
                return false;
        return true;
    };
    bool ok = false;
    if (mode == "o3") {
        ok = row.size() == 22 && row.count("ok") && hasStats("cold.") &&
             hasStats("warm.");
    } else if (mode == "emu") {
        ok = row.size() == 4 && hasAll({"ok", "coldNs", "warmNs"});
    } else if (mode == "ldcal") {
        ok = row.size() == 3 + loadWarmSamples &&
             hasAll({"ok", "coldNs"});
        for (unsigned k = 0; ok && k < loadWarmSamples; ++k)
            ok = row.count("warm" + std::to_string(k) + "Ns") != 0;
    } else if (mode == "load") {
        ok = row.size() == 13 &&
             hasAll({"ok", "invocations", "coldStarts", "warmHits",
                     "evictions", "p50Ns", "p90Ns", "p99Ns", "p999Ns",
                     "maxNs", "throughputMrps", "histoFp"});
    }
    return ok ? RowCheck::Ok : RowCheck::Malformed;
}

} // namespace

namespace
{

/**
 * Default backing path: SVBENCH_RESULTS when set, otherwise
 * build/svbench_results.csv so machine output stays out of the
 * repository root (the directory is created on demand).
 */
std::string
defaultResultPath()
{
    if (const char *env = std::getenv("SVBENCH_RESULTS")) {
        if (env[0] != '\0')
            return env;
    }
    std::error_code ec;
    std::filesystem::create_directories("build", ec);
    if (ec)
        warn("cannot create build/ for the result cache: ",
             ec.message(), "; falling back to the working directory");
    return ec ? "svbench_results.csv" : "build/svbench_results.csv";
}

} // namespace

ResultCache::ResultCache(std::string path_arg)
    : path(path_arg.empty() ? defaultResultPath() : std::move(path_arg))
{
    const char *env = std::getenv("SVBENCH_FRESH");
    fresh = env != nullptr && env[0] == '1';
    if (!fresh)
        load();
}

void
ResultCache::load()
{
    std::ifstream is(path);
    if (!is)
        return;
    std::string line;
    size_t lineno = 0;
    size_t skipped = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Format: key|field=value|field=value|...
        std::istringstream ls(line);
        std::string key;
        if (!std::getline(ls, key, '|') || key.empty()) {
            ++skipped;
            continue;
        }
        std::map<std::string, uint64_t> row;
        bool malformed = false;
        std::string kv;
        while (std::getline(ls, kv, '|')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0 ||
                !allDigits(kv.substr(eq + 1))) {
                malformed = true;
                break;
            }
            row[kv.substr(0, eq)] =
                std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
        }
        const RowCheck check =
            malformed ? RowCheck::Malformed : rowComplete(key, row);
        if (check != RowCheck::Ok) {
            if (check == RowCheck::UnknownMode) {
                warn(path, ":", lineno, ": skipping row of unknown mode '",
                     modeOfKey(key),
                     "' (written by a different tool generation?)");
            } else if (check == RowCheck::VersionMismatch) {
                warn(path, ":", lineno, ": skipping '", modeOfKey(key),
                     "' row with stale schema version; it will be "
                     "re-measured");
            } else {
                warn(path, ":", lineno,
                     ": skipping malformed result row (key '", key, "')");
            }
            ++skipped;
            continue;
        }
        rows[key] = std::move(row);
    }
    if (skipped > 0)
        warn(path, ": ignored ", skipped,
             " unusable line(s); those results will be re-measured");
}

void
ResultCache::appendLocked(const std::string &key,
                          const std::map<std::string, uint64_t> &fields)
{
    rows[key] = fields;
    std::ofstream os(path, std::ios::app);
    os << key;
    for (const auto &[name, value] : fields)
        os << "|" << name << "=" << value;
    os << "\n";
}

std::string
ResultCache::keyOf(const ClusterConfig &cfg, const FunctionSpec &spec,
                   const std::string &mode) const
{
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "," << db::dbKindName(cfg.dbKind)
       << "," << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0)
       << "," << spec.name << "," << mode;
    return os.str();
}

std::string
ResultCache::detailedKey(const ClusterConfig &cfg,
                         const FunctionSpec &spec) const
{
    return keyOf(cfg, spec, "o3");
}

std::string
ResultCache::checkpointKeyOf(const ClusterConfig &cfg,
                             const FunctionSpec &spec) const
{
    return CheckpointStore::fingerprint(cfg, spec);
}

ExperimentRunner &
ResultCache::runnerFor(const ClusterConfig &cfg)
{
    // Keyed by (configuration, calling thread): a runner owns a whole
    // ServerlessCluster with no internal locking, so it must never be
    // driven from two threads. Within one thread it is reused across
    // functions, preserving the serial path's boot-once behaviour.
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "/" << db::dbKindName(cfg.dbKind)
       << "/" << cfg.startDb << cfg.startMemcached << "/tid"
       << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string key = os.str();

    {
        std::lock_guard<std::mutex> lk(runnersMtx);
        auto it = runners.find(key);
        if (it != runners.end())
            return *it->second;
    }
    // Construct outside the lock: booting a cluster is expensive and
    // concurrent boots are the whole point. No other thread inserts
    // this key (it embeds our thread id), so the slot stays ours.
    auto runner = std::make_unique<ExperimentRunner>(cfg);
    std::lock_guard<std::mutex> lk(runnersMtx);
    auto &slot = runners[key];
    slot = std::move(runner);
    return *slot;
}

bool
ResultCache::lookupDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec, FunctionResult &out)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = unpackResult(spec.name, it->second);
    return true;
}

FunctionResult
ResultCache::computeDetailed(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const WorkloadImpl &impl)
{
    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (detailed O3, cold+warm)...");
    return runnerFor(cfg).runFunction(spec, impl);
}

void
ResultCache::recordDetailed(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const FunctionResult &res)
{
    const std::string key = detailedKey(cfg, spec);
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, packResult(res));
}

FunctionResult
ResultCache::detailed(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = detailedKey(cfg, spec);
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpackResult(spec.name, it->second);
            if (!pending.count(key))
                break;
            // Another thread is simulating this key; wait for its row
            // rather than duplicating the run.
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    const FunctionResult res = computeDetailed(cfg, spec, impl);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, packResult(res));
        pending.erase(key);
    }
    pendingCv.notify_all();
    return res;
}

EmuResult
ResultCache::emulated(const ClusterConfig &cfg, const FunctionSpec &spec,
                      const WorkloadImpl &impl)
{
    const std::string key = keyOf(cfg, spec, "emu");
    auto unpack = [&](const std::map<std::string, uint64_t> &fields) {
        EmuResult res;
        res.name = spec.name;
        res.ok = fields.at("ok") != 0;
        res.coldNs = fields.at("coldNs");
        res.warmNs = fields.at("warmNs");
        return res;
    };
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpack(it->second);
            if (!pending.count(key))
                break;
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    inform("measuring ", spec.name, " on ", isaName(cfg.system.isa),
           " (emulation)...");
    EmuResult res = runnerFor(cfg).runFunctionEmu(spec, impl);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, {{"coldNs", res.coldNs},
                           {"warmNs", res.warmNs},
                           {"ok", res.ok ? 1u : 0u},
                           {"v", modeSchemaVersion("emu")}});
        pending.erase(key);
    }
    pendingCv.notify_all();
    return res;
}

std::string
ResultCache::loadCalKey(const ClusterConfig &cfg,
                        const FunctionSpec &spec) const
{
    return keyOf(cfg, spec, "ldcal");
}

bool
ResultCache::lookupLoadCal(const ClusterConfig &cfg,
                           const FunctionSpec &spec, LoadCalibration &out)
{
    const std::string key = keyOf(cfg, spec, "ldcal");
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = unpackLoadCal(spec.name, it->second);
    return true;
}

LoadCalibration
ResultCache::computeLoadCal(const ClusterConfig &cfg,
                            const FunctionSpec &spec,
                            const WorkloadImpl &impl)
{
    inform("calibrating ", spec.name, " on ", isaName(cfg.system.isa),
           " for load (cold + ", loadWarmSamples, " warm samples)...");
    return runnerFor(cfg).runLoadCalibration(spec, impl);
}

void
ResultCache::recordLoadCal(const ClusterConfig &cfg,
                           const FunctionSpec &spec,
                           const LoadCalibration &cal)
{
    const std::string key = keyOf(cfg, spec, "ldcal");
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, packLoadCal(cal));
}

LoadCalibration
ResultCache::loadCalibration(const ClusterConfig &cfg,
                             const FunctionSpec &spec,
                             const WorkloadImpl &impl)
{
    const std::string key = keyOf(cfg, spec, "ldcal");
    {
        std::unique_lock<std::mutex> lk(mtx);
        for (;;) {
            auto it = rows.find(key);
            if (it != rows.end() && it->second.count("ok"))
                return unpackLoadCal(spec.name, it->second);
            if (!pending.count(key))
                break;
            pendingCv.wait(lk);
        }
        pending.insert(key);
    }

    const LoadCalibration cal = computeLoadCal(cfg, spec, impl);

    {
        std::lock_guard<std::mutex> lk(mtx);
        appendLocked(key, packLoadCal(cal));
        pending.erase(key);
    }
    pendingCv.notify_all();
    return cal;
}

std::string
ResultCache::loadKey(const ClusterConfig &cfg,
                     const std::string &scenario) const
{
    svb_assert(scenario.find_first_of(",|=") == std::string::npos,
               "scenario name contains a CSV metacharacter");
    std::ostringstream os;
    os << isaName(cfg.system.isa) << "," << db::dbKindName(cfg.dbKind)
       << "," << (cfg.startDb ? 1 : 0) << (cfg.startMemcached ? 1 : 0)
       << "," << scenario << ",load";
    return os.str();
}

bool
ResultCache::lookupLoadRow(const std::string &key,
                           std::map<std::string, uint64_t> &out)
{
    std::lock_guard<std::mutex> lk(mtx);
    auto it = rows.find(key);
    if (it == rows.end() || !it->second.count("ok"))
        return false;
    out = it->second;
    return true;
}

void
ResultCache::recordLoadRow(const std::string &key,
                           const std::map<std::string, uint64_t> &fields)
{
    std::map<std::string, uint64_t> row = fields;
    row["v"] = modeSchemaVersion("load");
    svb_assert(rowComplete(key, row) == RowCheck::Ok,
               "load row does not match the 'load' schema");
    std::lock_guard<std::mutex> lk(mtx);
    appendLocked(key, row);
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lk(mtx);
    rows.clear();
    std::remove(path.c_str());
}

} // namespace svb
