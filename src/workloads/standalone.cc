/**
 * @file
 * The vSwarm standalone functions: fibonacci, aes, auth (Table 3.2).
 *
 * Each exists in a compiled (Go/Node-JIT) form emitted as IR and a
 * bytecode form for the interpreted tiers. Both forms implement the
 * same algorithm over the same request layout.
 *
 * Request layout: [0]=param0, [8]=param1, [40]=sequence, 48+ payload.
 */

#include <cstring>

#include "registry_impl.hh"
#include "stack/vm.hh"

namespace svb::workloads::detail
{

using gen::BinOp;
using gen::CondOp;

namespace
{

// --------------------------------------------------------------------------
// fibonacci
// --------------------------------------------------------------------------

int
emitFibCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    (void)env;
    auto f = pb.beginFunction("wl.fib", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int n = f.newVreg(), a = f.newVreg(), b = f.newVreg(),
              t = f.newVreg(), i = f.newVreg(), rl = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();

    f.load(n, req, 0, 8, false);
    f.movi(a, 0);
    f.movi(b, 1);
    f.movi(i, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, n, done);
    f.bin(BinOp::Add, t, a, b);
    f.mov(a, b);
    f.mov(b, t);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.store(resp, 0, a, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.fib");
}

std::vector<uint8_t>
makeFibBytecode()
{
    vm::VmAsm a;
    const uint8_t rOff = 1, rN = 2, rA = 3, rB = 4, rT = 5, rI = 6,
                  rLen = 7;
    const int loop = a.newLabel(), done = a.newLabel();
    a.ldi(rOff, 0);
    a.emit(vm::vmIn8, rN, rOff);
    a.ldi(rA, 0);
    a.ldi(rB, 1);
    a.ldi(rI, 0);
    a.bind(loop);
    a.jge(rI, rN, done);
    a.add(rT, rA, rB);
    a.mov(rA, rB);
    a.mov(rB, rT);
    a.addi(rI, rI, 1);
    a.jmp(loop);
    a.bind(done);
    a.ldi(rOff, 0);
    a.emit(vm::vmOut8, rOff, rA);
    a.ldi(rLen, 8);
    a.halt(rLen);
    return a.finish();
}

// --------------------------------------------------------------------------
// aes: a 10-round sbox cipher over a 64-byte payload at req+48.
// --------------------------------------------------------------------------

constexpr int64_t aesBlockBytes = 64;
constexpr int aesRounds = 10;

/** sbox[i] = (i * 167 + 13) & 0xff — identical in both forms. */
std::vector<uint8_t>
makeSbox()
{
    std::vector<uint8_t> sbox(256);
    for (int i = 0; i < 256; ++i)
        sbox[size_t(i)] = uint8_t((i * 167 + 13) & 0xff);
    return sbox;
}

int
emitAesCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    (void)env;
    const std::vector<uint8_t> sbox = makeSbox();
    const Addr sbox_addr = pb.addData(sbox.data(), sbox.size());

    auto f = pb.beginFunction("wl.aes", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int sb = f.newVreg(), j = f.newVreg(), r = f.newVreg(),
              s = f.newVreg(), t = f.newVreg(), addr = f.newVreg(),
              rl = f.newVreg();
    const int jloop = f.newLabel(), jdone = f.newLabel();
    const int rloop = f.newLabel(), rdone = f.newLabel();

    f.lea(sb, sbox_addr);
    f.movi(j, 0);
    f.label(jloop);
    f.brcondi(CondOp::GeU, j, aesBlockBytes, jdone);
    f.bin(BinOp::Add, addr, req, j);
    f.load(s, addr, 48, 1, false);
    f.movi(r, 0);
    f.label(rloop);
    f.brcondi(CondOp::GeU, r, aesRounds, rdone);
    f.bin(BinOp::Xor, t, s, r);
    f.bin(BinOp::Xor, t, t, j);
    f.bini(BinOp::And, t, t, 0xff);
    f.bin(BinOp::Add, addr, sb, t);
    f.load(s, addr, 0, 1, false);
    f.addi(r, r, 1);
    f.br(rloop);
    f.label(rdone);
    f.bin(BinOp::Add, addr, resp, j);
    f.store(addr, 0, s, 1);
    f.addi(j, j, 1);
    f.br(jloop);
    f.label(jdone);
    f.movi(rl, aesBlockBytes);
    f.ret(rl);
    return pb.functionIndex("wl.aes");
}

std::vector<uint8_t>
makeAesBytecode()
{
    vm::VmAsm a;
    // VM heap layout: sbox at [0..255], init flag at [256].
    const uint8_t rZ = 1, rFlag = 2, rI = 3, rV = 4, rJ = 5, rS = 6,
                  rR = 7, rT = 8, rLen = 9, rC = 10;

    const int gen_done = a.newLabel(), gen_loop = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmLd8, rFlag, rZ, 0, 256);
    a.jnz(rFlag, gen_done);
    a.ldi(rI, 0);
    a.bind(gen_loop);
    a.muli(rV, rI, 167);
    a.addi(rV, rV, 13);
    a.andi(rV, rV, 0xff);
    a.emit(vm::vmSt1, rV, rI, 0, 0); // heap8[rI] = rV
    a.addi(rI, rI, 1);
    a.ldi(rC, 256);
    a.jlt(rI, rC, gen_loop);
    a.ldi(rFlag, 1);
    a.emit(vm::vmSt8, rFlag, rZ, 0, 256);
    a.bind(gen_done);

    const int jloop = a.newLabel(), jdone = a.newLabel();
    const int rloop = a.newLabel(), rdone = a.newLabel();
    a.ldi(rJ, 0);
    a.bind(jloop);
    a.ldi(rC, int32_t(aesBlockBytes));
    a.jge(rJ, rC, jdone);
    a.addi(rT, rJ, 48);
    a.emit(vm::vmInB, rS, rT);
    a.ldi(rR, 0);
    a.bind(rloop);
    a.ldi(rC, aesRounds);
    a.jge(rR, rC, rdone);
    a.xor_(rT, rS, rR);
    a.xor_(rT, rT, rJ);
    a.andi(rT, rT, 0xff);
    a.emit(vm::vmLd1, rS, rT, 0, 0); // rS = sbox[rT]
    a.addi(rR, rR, 1);
    a.jmp(rloop);
    a.bind(rdone);
    a.emit(vm::vmOutB, rJ, rS);
    a.addi(rJ, rJ, 1);
    a.jmp(jloop);
    a.bind(jdone);
    a.ldi(rLen, int32_t(aesBlockBytes));
    a.halt(rLen);
    return a.finish();
}

// --------------------------------------------------------------------------
// auth: FNV over a 32-byte token + scan of a 64-entry credential table.
// --------------------------------------------------------------------------

constexpr uint64_t authUsers = 64;
constexpr int64_t tokenBytes = 32;

/** Credential hash for uid, identical host/guest: 32-bit FNV step. */
uint64_t
credentialOf(uint64_t uid)
{
    return ((0xabcULL ^ uid) * 0x01000193ULL) & 0xffffffffULL;
}

int
emitAuthCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    std::vector<uint8_t> table(authUsers * 8);
    for (uint64_t u = 0; u < authUsers; ++u) {
        const uint64_t h = credentialOf(u);
        std::memcpy(table.data() + u * 8, &h, 8);
    }
    const Addr table_addr = pb.addData(table.data(), table.size());

    auto f = pb.beginFunction("wl.auth", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int uid = f.newVreg(), expect = f.newVreg(), tok = f.newVreg(),
              h = f.newVreg(), tbl = f.newVreg(), i = f.newVreg(),
              v = f.newVreg(), t = f.newVreg(), ok = f.newVreg(),
              rl = f.newVreg();
    const int scan = f.newLabel(), hit = f.newLabel(),
              done = f.newLabel();

    f.load(uid, req, 0, 8, false);
    // expect = ((0xabc ^ uid) * fnv32prime) & 0xffffffff
    f.bini(BinOp::Xor, expect, uid, 0xabc);
    f.bini(BinOp::Mul, expect, expect, 0x01000193);
    f.movi(t, int64_t(0xffffffffULL));
    f.bin(BinOp::And, expect, expect, t);

    // Hash the token (work the real function does).
    f.bini(BinOp::Add, tok, req, 48);
    const int tlen = f.imm(tokenBytes);
    {
        const int th = f.call(env.lib.fnvHash, {tok, tlen});
        f.mov(h, th);
    }

    f.lea(tbl, table_addr);
    f.movi(i, 0);
    f.movi(ok, 0);
    f.label(scan);
    f.brcondi(CondOp::GeU, i, int64_t(authUsers), done);
    f.bini(BinOp::Shl, t, i, 3);
    f.bin(BinOp::Add, t, tbl, t);
    f.load(v, t, 0, 8, false);
    f.brcond(CondOp::Eq, v, expect, hit);
    f.addi(i, i, 1);
    f.br(scan);
    f.label(hit);
    f.movi(ok, 1);
    f.label(done);
    f.store(resp, 0, ok, 8);
    f.store(resp, 8, h, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.auth");
}

std::vector<uint8_t>
makeAuthBytecode()
{
    vm::VmAsm a;
    // VM heap: credential table at [1024 + u*8], init flag at [512].
    const uint8_t rZ = 1, rFlag = 2, rU = 3, rH = 4, rT = 5, rC = 6,
                  rUid = 7, rExp = 8, rI = 9, rV = 10, rOk = 11,
                  rLen = 12, rOff = 13;

    const int gen_done = a.newLabel(), gen_loop = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmLd8, rFlag, rZ, 0, 512);
    a.jnz(rFlag, gen_done);
    a.ldi(rU, 0);
    a.bind(gen_loop);
    // h = ((0xabc ^ u) * fnv32prime) & 0xffffffff — via HashStep then mask.
    a.ldi(rH, 0xabc);
    a.emit(vm::vmHashStep, rH, rU); // rH = (rH ^ rU) * prime
    a.ldi(rT, -1);                  // 0xffffffff via shr
    a.shri(rT, rT, 32);
    a.and_(rH, rH, rT);
    a.shli(rT, rU, 3);
    a.emit(vm::vmSt8, rH, rT, 0, 1024);
    a.addi(rU, rU, 1);
    a.ldi(rC, int32_t(authUsers));
    a.jlt(rU, rC, gen_loop);
    a.ldi(rFlag, 1);
    a.emit(vm::vmSt8, rFlag, rZ, 0, 512);
    a.bind(gen_done);

    // expect = credentialOf(uid).
    a.ldi(rOff, 0);
    a.emit(vm::vmIn8, rUid, rOff);
    a.ldi(rExp, 0xabc);
    a.emit(vm::vmHashStep, rExp, rUid);
    a.ldi(rT, -1);
    a.shri(rT, rT, 32);
    a.and_(rExp, rExp, rT);

    // Token hash work (byte loop over req[48..79]).
    const int tok_loop = a.newLabel(), tok_done = a.newLabel();
    a.ldi(rH, 0x811c9dc5);
    a.ldi(rI, 0);
    a.bind(tok_loop);
    a.ldi(rC, int32_t(tokenBytes));
    a.jge(rI, rC, tok_done);
    a.addi(rT, rI, 48);
    a.emit(vm::vmInB, rV, rT);
    a.emit(vm::vmHashStep, rH, rV);
    a.addi(rI, rI, 1);
    a.jmp(tok_loop);
    a.bind(tok_done);

    // Scan the table.
    const int scan = a.newLabel(), hit = a.newLabel(), done = a.newLabel();
    a.ldi(rI, 0);
    a.ldi(rOk, 0);
    a.bind(scan);
    a.ldi(rC, int32_t(authUsers));
    a.jge(rI, rC, done);
    a.shli(rT, rI, 3);
    a.emit(vm::vmLd8, rV, rT, 0, 1024);
    a.jeq(rV, rExp, hit);
    a.addi(rI, rI, 1);
    a.jmp(scan);
    a.bind(hit);
    a.ldi(rOk, 1);
    a.bind(done);
    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rOk);
    a.ldi(rT, 8);
    a.emit(vm::vmOut8, rT, rH);
    a.ldi(rLen, 16);
    a.halt(rLen);
    return a.finish();
}

} // namespace

void
registerStandalone(std::map<std::string, WorkloadImpl> &reg)
{
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitFibCompiled;
        impl.makeBytecode = makeFibBytecode;
        impl.requestTemplate = requestHeader(/*n=*/24);
        reg["fibonacci"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitAesCompiled;
        impl.makeBytecode = makeAesBytecode;
        std::vector<uint8_t> req = requestHeader(0);
        std::vector<uint8_t> payload(aesBlockBytes);
        for (size_t i = 0; i < payload.size(); ++i)
            payload[i] = uint8_t(i * 31 + 7);
        appendBytes(req, payload.data(), payload.size());
        impl.requestTemplate = std::move(req);
        reg["aes"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitAuthCompiled;
        impl.makeBytecode = makeAuthBytecode;
        std::vector<uint8_t> req = requestHeader(/*uid=*/7);
        std::vector<uint8_t> token(tokenBytes);
        for (size_t i = 0; i < token.size(); ++i)
            token[i] = uint8_t(0x41 + (i % 23));
        appendBytes(req, token.data(), token.size());
        impl.requestTemplate = std::move(req);
        reg["auth"] = std::move(impl);
    }
}

} // namespace svb::workloads::detail
