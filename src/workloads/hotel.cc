/**
 * @file
 * The Hotel application (Table 3.4), after DeathStarBench's Hotel
 * Reservation. All six functions are Go-tier and talk to the database
 * container; reservation/rate/profile consult memcached first and
 * populate it on a miss — the "back and forth" the paper identifies
 * as the cause of their cold-execution slowdown (Sections 4.2.1.2,
 * 4.2.3.2).
 */

#include "registry_impl.hh"
#include "stack/topology.hh"

namespace svb::workloads::detail
{

using gen::BinOp;
using gen::CondOp;

namespace
{

constexpr int64_t records = int64_t(calib::hotelDbRecords);

/** Emit: key = kv.keyOf(id % records). */
int
emitKeyForId(gen::FunctionBuilder &f, const ServerEnv &env, int id_vreg)
{
    const int m = f.newVreg();
    f.bini(BinOp::Urem, m, id_vreg, records);
    return f.call(env.kvc.keyOf, {m});
}

/**
 * Emit the memcached-or-db fetch idiom shared by reservation/rate/
 * profile: look in memcached under key^ns; on miss fetch from the
 * database and populate memcached.
 *
 * @return vreg holding the value length fetched into @p vbuf
 */
int
emitCachedGet(gen::FunctionBuilder &f, const ServerEnv &env, int key,
              int64_t ns, int vbuf)
{
    const int mc_ring = f.newVreg(), db_ring = f.newVreg(),
              mckey = f.newVreg(), vlen = f.newVreg();
    const int have = f.newLabel();
    f.movi(mc_ring, int64_t(topo::mcReqRingVa));
    f.movi(db_ring, int64_t(topo::dbReqRingVa));
    f.bini(BinOp::Xor, mckey, key, ns);
    {
        const int got = f.call(env.kvc.get, {mc_ring, mckey, vbuf});
        f.mov(vlen, got);
    }
    f.brcondi(CondOp::Ne, vlen, 0, have);
    {
        const int got = f.call(env.kvc.get, {db_ring, key, vbuf});
        f.mov(vlen, got);
        // Populate the middle base for later usage (paper 4.2.1.2).
        f.callVoid(env.kvc.put, {mc_ring, mckey, vbuf, vlen});
    }
    f.label(have);
    return vlen;
}

// --------------------------------------------------------------------------
// geo: fetch 3 geo cells, compute Manhattan-ish distances.
// --------------------------------------------------------------------------

int
emitGeo(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hotelgeo", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);

    const int base = f.newVreg(), target = f.newVreg(), q = f.newVreg(),
              vbuf = f.newVreg(), db_ring = f.newVreg(),
              vlen = f.newVreg(), j = f.newVreg(), w = f.newVreg(),
              d = f.newVreg(), acc = f.newVreg(), best = f.newVreg(),
              besti = f.newVreg(), t = f.newVreg(), id = f.newVreg(),
              rl = f.newVreg();
    const int qloop = f.newLabel(), qdone = f.newLabel();

    f.load(base, req, 0, 8, false);
    f.load(target, req, 8, 8, false);
    f.movi(db_ring, int64_t(topo::dbReqRingVa));
    f.movi(best, int64_t(INT64_MAX));
    f.movi(besti, 0);
    f.movi(q, 0);

    f.label(qloop);
    f.brcondi(CondOp::Ge, q, 3, qdone);
    f.bin(BinOp::Add, id, base, q);
    const int key = emitKeyForId(f, env, id);
    f.leaLocal(vbuf, vbuf_off);
    {
        const int got = f.call(env.kvc.get, {db_ring, key, vbuf});
        f.mov(vlen, got);
    }
    // Distance over the value words.
    f.movi(acc, 0);
    f.movi(j, 0);
    {
        const int jloop = f.newLabel(), jdone = f.newLabel(),
                  positive = f.newLabel();
        f.label(jloop);
        f.brcond(CondOp::GeU, j, vlen, jdone);
        f.bin(BinOp::Add, t, vbuf, j);
        f.load(w, t, 0, 8, false);
        f.bini(BinOp::And, w, w, 0xffff); // coordinate field
        f.bin(BinOp::Sub, d, w, target);
        f.brcondi(CondOp::Ge, d, 0, positive);
        f.bin(BinOp::Sub, d, target, w);
        f.label(positive);
        f.bin(BinOp::Add, acc, acc, d);
        f.addi(j, j, 8);
        f.br(jloop);
        f.label(jdone);
    }
    {
        const int keep = f.newLabel();
        f.brcond(CondOp::Ge, acc, best, keep);
        f.mov(best, acc);
        f.mov(besti, q);
        f.label(keep);
    }
    f.addi(q, q, 1);
    f.br(qloop);
    f.label(qdone);

    f.store(resp, 0, besti, 8);
    f.store(resp, 8, best, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.hotelgeo");
}

// --------------------------------------------------------------------------
// recommendation: 2 fetches + a scoring pass.
// --------------------------------------------------------------------------

int
emitHotelRec(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hotelrec", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);

    const int base = f.newVreg(), q = f.newVreg(), vbuf = f.newVreg(),
              db_ring = f.newVreg(), vlen = f.newVreg(),
              score = f.newVreg(), id = f.newVreg(), rl = f.newVreg();
    const int qloop = f.newLabel(), qdone = f.newLabel();

    f.load(base, req, 0, 8, false);
    f.movi(db_ring, int64_t(topo::dbReqRingVa));
    f.movi(score, 0);
    f.movi(q, 0);
    f.label(qloop);
    f.brcondi(CondOp::Ge, q, 2, qdone);
    f.bin(BinOp::Add, id, base, q);
    const int key = emitKeyForId(f, env, id);
    f.leaLocal(vbuf, vbuf_off);
    {
        const int got = f.call(env.kvc.get, {db_ring, key, vbuf});
        f.mov(vlen, got);
    }
    {
        const int h = f.call(env.lib.fnvHash, {vbuf, vlen});
        f.bin(BinOp::Xor, score, score, h);
    }
    f.addi(q, q, 1);
    f.br(qloop);
    f.label(qdone);

    f.store(resp, 0, score, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.hotelrec");
}

// --------------------------------------------------------------------------
// user: credential check against the stored user record.
// --------------------------------------------------------------------------

int
emitHotelUser(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hoteluser", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);

    const int uid = f.newVreg(), vbuf = f.newVreg(),
              db_ring = f.newVreg(), vlen = f.newVreg(),
              pw = f.newVreg(), t = f.newVreg(), ok = f.newVreg(),
              rl = f.newVreg();

    f.load(uid, req, 0, 8, false);
    f.movi(db_ring, int64_t(topo::dbReqRingVa));
    const int key = emitKeyForId(f, env, uid);
    f.leaLocal(vbuf, vbuf_off);
    {
        const int got = f.call(env.kvc.get, {db_ring, key, vbuf});
        f.mov(vlen, got);
    }
    // Hash the supplied password and the stored record.
    f.bini(BinOp::Add, pw, req, 48);
    const int pwlen = f.imm(32);
    const int h1 = f.call(env.lib.fnvHash, {pw, pwlen});
    const int h2 = f.call(env.lib.fnvHash, {vbuf, vlen});
    f.bin(BinOp::Xor, t, h1, h2);
    f.bini(BinOp::And, ok, t, 1);
    f.store(resp, 0, ok, 8);
    f.store(resp, 8, t, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.hoteluser");
}

// --------------------------------------------------------------------------
// reservation: cached availability check + booking write.
// --------------------------------------------------------------------------

int
emitReservation(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hotelresv", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);
    const int64_t book_off = f.localBytes(64);

    const int id = f.newVreg(), vbuf = f.newVreg(),
              db_ring = f.newVreg(), book = f.newVreg(),
              bkey = f.newVreg(), t = f.newVreg(), rl = f.newVreg();

    f.load(id, req, 0, 8, false);
    f.movi(db_ring, int64_t(topo::dbReqRingVa));

    // Availability check across the stay's days (cached).
    const int day = f.newVreg(), did = f.newVreg(), vlen = f.newVreg();
    const int dloop = f.newLabel(), ddone = f.newLabel();
    f.movi(vlen, 0);
    f.movi(day, 0);
    f.label(dloop);
    f.brcondi(CondOp::Ge, day, int64_t(calib::reservationChecks), ddone);
    f.bin(BinOp::Add, did, id, day);
    {
        const int k = f.call(env.kvc.keyOf, {did});
        f.leaLocal(vbuf, vbuf_off);
        const int got = emitCachedGet(f, env, k, 0x5555, vbuf);
        f.bin(BinOp::Add, vlen, vlen, got);
    }
    f.addi(day, day, 1);
    f.br(dloop);
    f.label(ddone);
    const int key = emitKeyForId(f, env, id);

    // Build the booking record and write it through to the database.
    f.leaLocal(book, book_off);
    {
        const int sz = f.imm(48);
        f.callVoid(env.lib.memCopy, {book, req, sz});
    }
    f.store(book, 48, vlen, 8);
    f.bini(BinOp::Xor, bkey, key, 0x9999);
    {
        const int blen = f.imm(56);
        f.callVoid(env.kvc.put, {db_ring, bkey, book, blen});
    }

    f.movi(t, 1);
    f.store(resp, 0, t, 8);
    f.store(resp, 8, vlen, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.hotelresv");
}

// --------------------------------------------------------------------------
// rate: cached rate-plan lookup (3 plans on a miss).
// --------------------------------------------------------------------------

int
emitRate(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hotelrate", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);

    const int id = f.newVreg(), vbuf = f.newVreg(), acc = f.newVreg(),
              q = f.newVreg(), tid = f.newVreg(), rl = f.newVreg();
    const int qloop = f.newLabel(), qdone = f.newLabel();

    f.load(id, req, 0, 8, false);
    f.movi(acc, 0);
    f.movi(q, 0);
    f.label(qloop);
    f.brcondi(CondOp::Ge, q, int64_t(calib::rateChecks), qdone);
    f.bin(BinOp::Add, tid, id, q);
    const int key = emitKeyForId(f, env, tid);
    f.leaLocal(vbuf, vbuf_off);
    const int vlen = emitCachedGet(f, env, key, 0x3333, vbuf);
    {
        const int h = f.call(env.lib.fnvHash, {vbuf, vlen});
        f.bin(BinOp::Add, acc, acc, h);
    }
    f.addi(q, q, 1);
    f.br(qloop);
    f.label(qdone);

    f.store(resp, 0, acc, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.hotelrate");
}

// --------------------------------------------------------------------------
// profile: fan-out of cached profile fetches (the heaviest function).
// --------------------------------------------------------------------------

int
emitProfile(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.hotelprofile", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int64_t vbuf_off = f.localBytes(240);

    const int base = f.newVreg(), vbuf = f.newVreg(), acc = f.newVreg(),
              i = f.newVreg(), pid = f.newVreg(), rl = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();

    f.load(base, req, 0, 8, false);
    f.movi(acc, 0);
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(CondOp::Ge, i, int64_t(calib::profileFanout), done);
    f.bin(BinOp::Add, pid, base, i);
    const int key = emitKeyForId(f, env, pid);
    f.leaLocal(vbuf, vbuf_off);
    const int vlen = emitCachedGet(f, env, key, 0x7777, vbuf);
    {
        const int h = f.call(env.lib.fnvHash, {vbuf, vlen});
        f.bin(BinOp::Xor, acc, acc, h);
    }
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);

    f.store(resp, 0, acc, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.hotelprofile");
}

} // namespace

void
registerHotel(std::map<std::string, WorkloadImpl> &reg)
{
    auto add = [&](const char *wl, int (*emit)(gen::ProgramBuilder &,
                                               const ServerEnv &),
                   uint64_t param0, uint64_t param1) {
        WorkloadImpl impl;
        impl.emitCompiled = emit;
        impl.requestTemplate = requestHeader(param0, param1);
        reg[wl] = std::move(impl);
    };
    add("hotelgeo", emitGeo, /*baseCell=*/11, /*target=*/7777);
    add("hotelrecommendation", emitHotelRec, 23, 0);
    add("hotelrate", emitRate, 15, 0);
    add("hotelprofile", emitProfile, 3, 0);

    {
        WorkloadImpl impl;
        impl.emitCompiled = emitHotelUser;
        std::vector<uint8_t> req = requestHeader(/*uid=*/5);
        std::vector<uint8_t> pw(32);
        for (size_t i = 0; i < pw.size(); ++i)
            pw[i] = uint8_t(0x30 + (i % 10));
        appendBytes(req, pw.data(), pw.size());
        impl.requestTemplate = std::move(req);
        reg["hoteluser"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitReservation;
        impl.requestTemplate = requestHeader(/*hotel=*/9, /*user=*/5);
        reg["hotelreservation"] = std::move(impl);
    }
}

} // namespace svb::workloads::detail
