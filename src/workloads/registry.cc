#include "registry_impl.hh"

#include <cstring>

#include "sim/logging.hh"

namespace svb::workloads
{

namespace detail
{

std::map<std::string, WorkloadImpl> &
registry()
{
    // The one function-local static in the simulator. Initialisation
    // is thread-safe (C++11 magic static) and the map is never
    // mutated afterwards, so concurrent sweep workers may read it
    // freely.
    static std::map<std::string, WorkloadImpl> reg = [] {
        std::map<std::string, WorkloadImpl> r;
        registerStandalone(r);
        registerShop(r);
        registerHotel(r);
        registerExtended(r);
        return r;
    }();
    return reg;
}

std::vector<uint8_t>
requestHeader(uint64_t param0, uint64_t param1)
{
    std::vector<uint8_t> req(48, 0);
    std::memcpy(req.data(), &param0, 8);
    std::memcpy(req.data() + 8, &param1, 8);
    return req;
}

void
appendBytes(std::vector<uint8_t> &req, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    req.insert(req.end(), p, p + len);
}

} // namespace detail

const WorkloadImpl &
workloadImpl(const std::string &name)
{
    auto &reg = detail::registry();
    auto it = reg.find(name);
    if (it == reg.end())
        svb_fatal("unknown workload '", name, "'");
    return it->second;
}

bool
hasWorkload(const std::string &name)
{
    return detail::registry().count(name) != 0;
}

std::vector<FunctionSpec>
standaloneSuite()
{
    std::vector<FunctionSpec> out;
    for (const char *wl : {"fibonacci", "aes", "auth"}) {
        for (RuntimeTier tier :
             {RuntimeTier::Go, RuntimeTier::Python, RuntimeTier::Node}) {
            FunctionSpec spec;
            spec.name = std::string(wl) + "-" + tierName(tier);
            spec.workload = wl;
            spec.tier = tier;
            out.push_back(spec);
        }
    }
    return out;
}

std::vector<FunctionSpec>
onlineShopSuite()
{
    auto mk = [](const char *name, const char *wl, RuntimeTier tier) {
        FunctionSpec spec;
        spec.name = name;
        spec.workload = wl;
        spec.tier = tier;
        return spec;
    };
    return {
        mk("productcatalog-go", "productcatalog", RuntimeTier::Go),
        mk("shipping-go", "shipping", RuntimeTier::Go),
        mk("rec/service-P&G", "shoprecommendation", RuntimeTier::Python),
        mk("emailservice-P", "email", RuntimeTier::Python),
        mk("currency-nodejs", "currency", RuntimeTier::Node),
        mk("payment-nodejs", "payment", RuntimeTier::Node),
    };
}

std::vector<FunctionSpec>
hotelSuite()
{
    auto mk = [](const char *name, const char *wl, bool memcached) {
        FunctionSpec spec;
        spec.name = name;
        spec.workload = wl;
        spec.tier = RuntimeTier::Go;
        spec.usesDb = true;
        spec.usesMemcached = memcached;
        return spec;
    };
    return {
        mk("geo", "hotelgeo", false),
        mk("recommendation", "hotelrecommendation", false),
        mk("user", "hoteluser", false),
        mk("reservation", "hotelreservation", true),
        mk("rate", "hotelrate", true),
        mk("profile", "hotelprofile", true),
    };
}

std::vector<FunctionSpec>
extendedSuite()
{
    std::vector<FunctionSpec> out;
    for (const char *wl : {"compression", "jsonserdes"}) {
        for (RuntimeTier tier :
             {RuntimeTier::Go, RuntimeTier::Python, RuntimeTier::Node}) {
            FunctionSpec spec;
            spec.name = std::string(wl) + "-" + tierName(tier);
            spec.workload = wl;
            spec.tier = tier;
            out.push_back(spec);
        }
    }
    return out;
}

std::vector<FunctionSpec>
allFunctions()
{
    std::vector<FunctionSpec> out = standaloneSuite();
    for (const FunctionSpec &spec : onlineShopSuite())
        out.push_back(spec);
    for (const FunctionSpec &spec : hotelSuite())
        out.push_back(spec);
    return out;
}

std::vector<FunctionSpec>
goFunctions()
{
    std::vector<FunctionSpec> out;
    for (const FunctionSpec &spec : allFunctions()) {
        if (spec.tier == RuntimeTier::Go)
            out.push_back(spec);
    }
    return out;
}

std::vector<FunctionSpec>
pythonFunctions()
{
    std::vector<FunctionSpec> out;
    for (const FunctionSpec &spec : allFunctions()) {
        if (spec.tier == RuntimeTier::Python)
            out.push_back(spec);
    }
    return out;
}

} // namespace svb::workloads
