/**
 * @file
 * Internal registration interface shared by the workload translation
 * units.
 */

#ifndef SVB_WORKLOADS_REGISTRY_IMPL_HH
#define SVB_WORKLOADS_REGISTRY_IMPL_HH

#include <map>
#include <string>

#include "workloads.hh"

namespace svb::workloads::detail
{

/** The mutable registry (populated once, lazily). */
std::map<std::string, WorkloadImpl> &registry();

void registerStandalone(std::map<std::string, WorkloadImpl> &reg);
void registerShop(std::map<std::string, WorkloadImpl> &reg);
void registerHotel(std::map<std::string, WorkloadImpl> &reg);
void registerExtended(std::map<std::string, WorkloadImpl> &reg);

/** Build a 48-byte request header [param0][param1][..][seq@40]. */
std::vector<uint8_t> requestHeader(uint64_t param0, uint64_t param1 = 0);

/** Append raw bytes to a request. */
void appendBytes(std::vector<uint8_t> &req, const void *data, size_t len);

} // namespace svb::workloads::detail

#endif // SVB_WORKLOADS_REGISTRY_IMPL_HH
