/**
 * @file
 * Extended suite: the thesis' first stated future work is porting the
 * rest of the vSwarm applications. Two more of its standalone
 * workloads are provided here in the same dual (compiled + bytecode)
 * form as the core suite:
 *
 *  - compression: run-length encoding of a 160-byte payload,
 *  - jsonserdes: scan a key:value text, extract integer fields,
 *    checksum them and re-emit a compact form.
 *
 * Request layout: [0]=param0, [8]=param1, [40]=sequence, 48+ payload.
 */

#include <cstring>

#include "registry_impl.hh"
#include "stack/vm.hh"

namespace svb::workloads::detail
{

using gen::BinOp;
using gen::CondOp;

namespace
{

// --------------------------------------------------------------------------
// compression: run-length encode payload[48..48+len) into the response.
// Output: [0]=encoded length, bytes follow as (count,value) pairs.
// --------------------------------------------------------------------------

constexpr int64_t compressInputBytes = 160;

int
emitCompressionCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    (void)env;
    auto f = pb.beginFunction("wl.compress", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int i = f.newVreg(), out = f.newVreg(), cur = f.newVreg(),
              run = f.newVreg(), b = f.newVreg(), addr = f.newVreg(),
              rl = f.newVreg();
    const int loop = f.newLabel(), flush = f.newLabel(),
              same = f.newLabel(), done = f.newLabel();

    // cur = payload[0], run = 1, i = 1, out = 8 (length header first).
    f.load(cur, req, 48, 1, false);
    f.movi(run, 1);
    f.movi(i, 1);
    f.movi(out, 8);

    f.label(loop);
    f.brcondi(CondOp::GeU, i, compressInputBytes, done);
    f.bin(BinOp::Add, addr, req, i);
    f.load(b, addr, 48, 1, false);
    f.brcond(CondOp::Eq, b, cur, same);

    f.label(flush); // emit (run, cur)
    f.bin(BinOp::Add, addr, resp, out);
    f.store(addr, 0, run, 1);
    f.store(addr, 1, cur, 1);
    f.bini(BinOp::Add, out, out, 2);
    f.mov(cur, b);
    f.movi(run, 0);

    f.label(same);
    f.bini(BinOp::Add, run, run, 1);
    f.addi(i, i, 1);
    f.br(loop);

    f.label(done);
    // Final run.
    f.bin(BinOp::Add, addr, resp, out);
    f.store(addr, 0, run, 1);
    f.store(addr, 1, cur, 1);
    f.bini(BinOp::Add, out, out, 2);
    f.store(resp, 0, out, 8);
    f.mov(rl, out);
    f.ret(rl);
    return pb.functionIndex("wl.compress");
}

std::vector<uint8_t>
makeCompressionBytecode()
{
    vm::VmAsm a;
    const uint8_t rI = 1, rOut = 2, rCur = 3, rRun = 4, rB = 5, rT = 6,
                  rC = 7;
    const int loop = a.newLabel(), same = a.newLabel(),
              done = a.newLabel();

    a.ldi(rT, 48);
    a.emit(vm::vmInB, rCur, rT);
    a.ldi(rRun, 1);
    a.ldi(rI, 1);
    a.ldi(rOut, 8);

    a.bind(loop);
    a.ldi(rC, int32_t(compressInputBytes));
    a.jge(rI, rC, done);
    a.addi(rT, rI, 48);
    a.emit(vm::vmInB, rB, rT);
    a.jeq(rB, rCur, same);
    // flush (run, cur)
    a.emit(vm::vmOutB, rOut, rRun);
    a.addi(rOut, rOut, 1);
    a.emit(vm::vmOutB, rOut, rCur);
    a.addi(rOut, rOut, 1);
    a.mov(rCur, rB);
    a.ldi(rRun, 0);
    a.bind(same);
    a.addi(rRun, rRun, 1);
    a.addi(rI, rI, 1);
    a.jmp(loop);

    a.bind(done);
    a.emit(vm::vmOutB, rOut, rRun);
    a.addi(rOut, rOut, 1);
    a.emit(vm::vmOutB, rOut, rCur);
    a.addi(rOut, rOut, 1);
    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rOut);
    a.halt(rOut);
    return a.finish();
}

// --------------------------------------------------------------------------
// jsonserdes: scan "k=vvv;" records, sum the integer values, count the
// fields, and emit [count][sum][hash of the text].
// --------------------------------------------------------------------------

constexpr int64_t jsonTextBytes = 128;

int
emitJsonCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.json", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int i = f.newVreg(), b = f.newVreg(), addr = f.newVreg(),
              sum = f.newVreg(), val = f.newVreg(), fields = f.newVreg(),
              t = f.newVreg(), rl = f.newVreg();
    const int loop = f.newLabel(), digit = f.newLabel(),
              sep = f.newLabel(), next = f.newLabel(),
              done = f.newLabel();

    f.movi(i, 0);
    f.movi(sum, 0);
    f.movi(val, 0);
    f.movi(fields, 0);

    f.label(loop);
    f.brcondi(CondOp::GeU, i, jsonTextBytes, done);
    f.bin(BinOp::Add, addr, req, i);
    f.load(b, addr, 48, 1, false);
    // ';' terminates a field.
    f.brcondi(CondOp::Eq, b, ';', sep);
    // digits accumulate into val.
    f.brcondi(CondOp::Lt, b, '0', next);
    f.brcondi(CondOp::Gt, b, '9', next);
    f.br(digit);

    f.label(digit);
    f.bini(BinOp::Mul, val, val, 10);
    f.bini(BinOp::Sub, t, b, '0');
    f.bin(BinOp::Add, val, val, t);
    f.br(next);

    f.label(sep);
    f.bin(BinOp::Add, sum, sum, val);
    f.movi(val, 0);
    f.bini(BinOp::Add, fields, fields, 1);

    f.label(next);
    f.addi(i, i, 1);
    f.br(loop);

    f.label(done);
    f.store(resp, 0, fields, 8);
    f.store(resp, 8, sum, 8);
    f.bini(BinOp::Add, addr, req, 48);
    const int len = f.imm(jsonTextBytes);
    const int h = f.call(env.lib.fnvHash, {addr, len});
    f.store(resp, 16, h, 8);
    f.movi(rl, 24);
    f.ret(rl);
    return pb.functionIndex("wl.json");
}

std::vector<uint8_t>
makeJsonBytecode()
{
    vm::VmAsm a;
    const uint8_t rI = 1, rB = 2, rT = 3, rSum = 4, rVal = 5,
                  rFields = 6, rC = 7, rH = 8;
    const int loop = a.newLabel(), digit = a.newLabel(),
              sep = a.newLabel(), next = a.newLabel(),
              done = a.newLabel();

    a.ldi(rI, 0);
    a.ldi(rSum, 0);
    a.ldi(rVal, 0);
    a.ldi(rFields, 0);
    a.ldi(rH, 0x811c9dc5);

    a.bind(loop);
    a.ldi(rC, int32_t(jsonTextBytes));
    a.jge(rI, rC, done);
    a.addi(rT, rI, 48);
    a.emit(vm::vmInB, rB, rT);
    a.emit(vm::vmHashStep, rH, rB);
    a.ldi(rC, ';');
    a.jeq(rB, rC, sep);
    a.ldi(rC, '0');
    a.jlt(rB, rC, next);
    a.ldi(rC, '9' + 1);
    a.jlt(rB, rC, digit);
    a.jmp(next);

    a.bind(digit);
    a.muli(rVal, rVal, 10);
    a.addi(rT, rB, -'0');
    a.add(rVal, rVal, rT);
    a.jmp(next);

    a.bind(sep);
    a.add(rSum, rSum, rVal);
    a.ldi(rVal, 0);
    a.addi(rFields, rFields, 1);

    a.bind(next);
    a.addi(rI, rI, 1);
    a.jmp(loop);

    a.bind(done);
    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rFields);
    a.ldi(rT, 8);
    a.emit(vm::vmOut8, rT, rSum);
    a.ldi(rT, 16);
    a.emit(vm::vmOut8, rT, rH);
    a.ldi(rT, 24);
    a.halt(rT);
    return a.finish();
}

} // namespace

void
registerExtended(std::map<std::string, WorkloadImpl> &reg)
{
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitCompressionCompiled;
        impl.makeBytecode = makeCompressionBytecode;
        std::vector<uint8_t> req = requestHeader(0);
        std::vector<uint8_t> payload(static_cast<size_t>(compressInputBytes));
        // Runs of 1-8 repeated bytes: compressible but not trivial.
        uint64_t x = 0x1234;
        size_t pos = 0;
        while (pos < payload.size()) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const size_t run = 1 + size_t((x >> 33) % 8);
            const auto value = uint8_t(x >> 17);
            for (size_t k = 0; k < run && pos < payload.size(); ++k)
                payload[pos++] = value;
        }
        appendBytes(req, payload.data(), payload.size());
        impl.requestTemplate = std::move(req);
        reg["compression"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitJsonCompiled;
        impl.makeBytecode = makeJsonBytecode;
        std::vector<uint8_t> req = requestHeader(0);
        std::string text;
        for (int k = 0; text.size() + 8 < size_t(jsonTextBytes); ++k)
            text += std::string(1, char('a' + k % 26)) + "=" +
                    std::to_string(100 + k * 7) + ";";
        text.resize(size_t(jsonTextBytes), ' ');
        appendBytes(req, text.data(), text.size());
        impl.requestTemplate = std::move(req);
        reg["jsonserdes"] = std::move(impl);
    }
}

} // namespace svb::workloads::detail
