/**
 * @file
 * The Online-Shop services (Table 3.3), derived from the paper's
 * Google Online Boutique port: product catalog, shipping quotes,
 * recommendations, email rendering, currency conversion and payment
 * validation.
 */

#include <cstring>

#include "registry_impl.hh"
#include "stack/vm.hh"

namespace svb::workloads::detail
{

using gen::BinOp;
using gen::CondOp;

namespace
{

// --------------------------------------------------------------------------
// productcatalog (Go): linear catalog scan + record copy.
// --------------------------------------------------------------------------

constexpr uint64_t catalogProducts = 128;
constexpr int64_t productBytes = 64;

std::vector<uint8_t>
makeCatalogBlob()
{
    std::vector<uint8_t> blob(catalogProducts * productBytes);
    for (uint64_t i = 0; i < catalogProducts; ++i) {
        uint64_t *rec =
            reinterpret_cast<uint64_t *>(blob.data() + i * productBytes);
        rec[0] = i;                       // product id
        rec[1] = 990 + i * 37;            // price (cents)
        for (int w = 2; w < 8; ++w)
            rec[w] = (i * 2654435761ULL) ^ uint64_t(w); // description
    }
    return blob;
}

int
emitCatalogCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    const std::vector<uint8_t> blob = makeCatalogBlob();
    const Addr cat = pb.addData(blob.data(), blob.size());

    auto f = pb.beginFunction("wl.catalog", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int id = f.newVreg(), base = f.newVreg(), i = f.newVreg(),
              rec = f.newVreg(), k = f.newVreg(), t = f.newVreg(),
              rl = f.newVreg();
    const int scan = f.newLabel(), found = f.newLabel(),
              miss = f.newLabel();

    f.load(id, req, 0, 8, false);
    f.lea(base, cat);
    f.movi(i, 0);
    f.label(scan);
    f.brcondi(CondOp::GeU, i, int64_t(catalogProducts), miss);
    f.bini(BinOp::Shl, t, i, 6); // * productBytes
    f.bin(BinOp::Add, rec, base, t);
    f.load(k, rec, 0, 8, false);
    f.brcond(CondOp::Eq, k, id, found);
    f.addi(i, i, 1);
    f.br(scan);

    f.label(found);
    {
        const int sz = f.imm(productBytes);
        f.callVoid(env.lib.memCopy, {resp, rec, sz});
    }
    f.movi(rl, productBytes);
    f.ret(rl);

    f.label(miss);
    f.movi(t, 0);
    f.store(resp, 0, t, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.catalog");
}

// --------------------------------------------------------------------------
// shipping (Go): quote = f(weights in the request).
// --------------------------------------------------------------------------

int
emitShippingCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    (void)env;
    auto f = pb.beginFunction("wl.shipping", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int n = f.newVreg(), i = f.newVreg(), w = f.newVreg(),
              addr = f.newVreg(), cost = f.newVreg(), t = f.newVreg(),
              rl = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();

    f.load(n, req, 0, 8, false);
    f.movi(cost, 499); // base fee (cents)
    f.movi(i, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, n, done);
    f.bini(BinOp::Shl, t, i, 3);
    f.bin(BinOp::Add, addr, req, t);
    f.load(w, addr, 48, 8, false);
    // cost += weight * 3 + (weight >> 4)
    f.bini(BinOp::Mul, t, w, 3);
    f.bin(BinOp::Add, cost, cost, t);
    f.bini(BinOp::Shr, t, w, 4);
    f.bin(BinOp::Add, cost, cost, t);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.store(resp, 0, cost, 8);
    f.movi(rl, 8);
    f.ret(rl);
    return pb.functionIndex("wl.shipping");
}

// --------------------------------------------------------------------------
// shoprecommendation (Python): score the catalog, pick the best.
// --------------------------------------------------------------------------

std::vector<uint8_t>
makeShopRecBytecode()
{
    vm::VmAsm a;
    // VM heap: product features at [4096 + i*8]; flag at [0].
    const uint8_t rZ = 1, rFlag = 2, rI = 3, rV = 4, rC = 5, rT = 6,
                  rTarget = 7, rScore = 8, rBest = 9, rBestI = 10,
                  rLen = 11;

    const int gen_done = a.newLabel(), gen_loop = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmLd8, rFlag, rZ, 0, 0);
    a.jnz(rFlag, gen_done);
    a.ldi(rI, 0);
    a.bind(gen_loop);
    a.muli(rV, rI, 2654435761);
    a.addi(rV, rV, 12345);
    a.shli(rT, rI, 3);
    a.emit(vm::vmSt8, rV, rT, 0, 4096);
    a.addi(rI, rI, 1);
    a.ldi(rC, int32_t(catalogProducts));
    a.jlt(rI, rC, gen_loop);
    a.ldi(rFlag, 1);
    a.emit(vm::vmSt8, rFlag, rZ, 0, 0);
    a.bind(gen_done);

    const int loop = a.newLabel(), done = a.newLabel(),
              no_better = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmIn8, rTarget, rZ);
    a.ldi(rBest, -1);
    a.ldi(rBestI, 0);
    a.ldi(rI, 0);
    a.bind(loop);
    a.ldi(rC, int32_t(catalogProducts));
    a.jge(rI, rC, done);
    a.shli(rT, rI, 3);
    a.emit(vm::vmLd8, rScore, rT, 0, 4096);
    a.emit(vm::vmHashStep, rScore, rTarget);
    a.andi(rScore, rScore, 0x7fffffff);
    a.jge(rBest, rScore, no_better);
    a.mov(rBest, rScore);
    a.mov(rBestI, rI);
    a.bind(no_better);
    a.addi(rI, rI, 1);
    a.jmp(loop);
    a.bind(done);
    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rBestI);
    a.ldi(rT, 8);
    a.emit(vm::vmOut8, rT, rBest);
    a.ldi(rLen, 16);
    a.halt(rLen);
    return a.finish();
}

// --------------------------------------------------------------------------
// email (Python): render a ~192-byte template with substitutions.
// --------------------------------------------------------------------------

constexpr int32_t emailTemplateBytes = 192;

std::vector<uint8_t>
makeEmailBytecode()
{
    vm::VmAsm a;
    // VM heap: template at [8192..]; flag at [8].
    const uint8_t rZ = 1, rFlag = 2, rI = 3, rV = 4, rC = 5, rT = 6,
                  rLen = 7;

    const int gen_done = a.newLabel(), gen_loop = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmLd8, rFlag, rZ, 0, 8);
    a.jnz(rFlag, gen_done);
    a.ldi(rI, 0);
    a.bind(gen_loop);
    // template[i] = 'a' + (i % 26), via i - (i/26)*26 using shifts:
    // cheap approximation: v = (i * 5 + 11) & 0x1f then clamp.
    a.muli(rV, rI, 5);
    a.addi(rV, rV, 11);
    a.andi(rV, rV, 0x1f);
    a.addi(rV, rV, 97);
    a.emit(vm::vmSt1, rV, rI, 0, 8192);
    a.addi(rI, rI, 1);
    a.ldi(rC, emailTemplateBytes);
    a.jlt(rI, rC, gen_loop);
    a.ldi(rFlag, 1);
    a.emit(vm::vmSt8, rFlag, rZ, 0, 8);
    a.bind(gen_done);

    // Render: copy template to the response byte by byte; splice the
    // 8-byte customer name from req[48..] at position 10.
    const int copy = a.newLabel(), copy_done = a.newLabel(),
              plain = a.newLabel(), next = a.newLabel();
    a.ldi(rI, 0);
    a.bind(copy);
    a.ldi(rC, emailTemplateBytes);
    a.jge(rI, rC, copy_done);
    a.ldi(rT, 10);
    a.jlt(rI, rT, plain);
    a.ldi(rT, 18);
    a.jge(rI, rT, plain);
    // name byte
    a.addi(rT, rI, 48 - 10);
    a.emit(vm::vmInB, rV, rT);
    a.jmp(next);
    a.bind(plain);
    a.emit(vm::vmLd1, rV, rI, 0, 8192);
    a.bind(next);
    a.emit(vm::vmOutB, rI, rV);
    a.addi(rI, rI, 1);
    a.jmp(copy);
    a.bind(copy_done);
    a.ldi(rLen, emailTemplateBytes);
    a.halt(rLen);
    return a.finish();
}

// --------------------------------------------------------------------------
// currency (Node): fixed-point conversion via a 32-entry rate table.
// --------------------------------------------------------------------------

constexpr uint64_t numCurrencies = 32;

uint64_t
rateOf(uint64_t c)
{
    return 900000 + c * 3571;
}

int
emitCurrencyCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    (void)env;
    std::vector<uint8_t> table(numCurrencies * 8);
    for (uint64_t c = 0; c < numCurrencies; ++c) {
        const uint64_t r = rateOf(c);
        std::memcpy(table.data() + c * 8, &r, 8);
    }
    const Addr rates = pb.addData(table.data(), table.size());

    auto f = pb.beginFunction("wl.currency", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int amount = f.newVreg(), from = f.newVreg(), to = f.newVreg(),
              tbl = f.newVreg(), r1 = f.newVreg(), r2 = f.newVreg(),
              t = f.newVreg(), out = f.newVreg(), rl = f.newVreg();

    f.load(amount, req, 0, 8, false);
    f.load(from, req, 8, 8, false);
    f.bini(BinOp::And, from, from, int64_t(numCurrencies - 1));
    f.bini(BinOp::Add, to, from, 7);
    f.bini(BinOp::And, to, to, int64_t(numCurrencies - 1));
    f.lea(tbl, rates);
    f.bini(BinOp::Shl, t, from, 3);
    f.bin(BinOp::Add, t, tbl, t);
    f.load(r1, t, 0, 8, false);
    f.bini(BinOp::Shl, t, to, 3);
    f.bin(BinOp::Add, t, tbl, t);
    f.load(r2, t, 0, 8, false);
    // out = ((amount * r1) >> 20) * r2 >> 20 (fixed point).
    f.bin(BinOp::Mul, out, amount, r1);
    f.bini(BinOp::Shr, out, out, 20);
    f.bin(BinOp::Mul, out, out, r2);
    f.bini(BinOp::Shr, out, out, 20);
    f.store(resp, 0, out, 8);
    f.store(resp, 8, to, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.currency");
}

std::vector<uint8_t>
makeCurrencyBytecode()
{
    vm::VmAsm a;
    // VM heap: rate table at [2048 + c*8]; flag at [16].
    const uint8_t rZ = 1, rFlag = 2, rI = 3, rV = 4, rC = 5, rT = 6,
                  rAmt = 7, rFrom = 8, rTo = 9, rOut = 10, rLen = 11;

    const int gen_done = a.newLabel(), gen_loop = a.newLabel();
    a.ldi(rZ, 0);
    a.emit(vm::vmLd8, rFlag, rZ, 0, 16);
    a.jnz(rFlag, gen_done);
    a.ldi(rI, 0);
    a.bind(gen_loop);
    a.muli(rV, rI, 3571);
    a.addi(rV, rV, 900000);
    a.shli(rT, rI, 3);
    a.emit(vm::vmSt8, rV, rT, 0, 2048);
    a.addi(rI, rI, 1);
    a.ldi(rC, int32_t(numCurrencies));
    a.jlt(rI, rC, gen_loop);
    a.ldi(rFlag, 1);
    a.emit(vm::vmSt8, rFlag, rZ, 0, 16);
    a.bind(gen_done);

    a.ldi(rZ, 0);
    a.emit(vm::vmIn8, rAmt, rZ);
    a.ldi(rZ, 8);
    a.emit(vm::vmIn8, rFrom, rZ);
    a.andi(rFrom, rFrom, int32_t(numCurrencies - 1));
    a.addi(rTo, rFrom, 7);
    a.andi(rTo, rTo, int32_t(numCurrencies - 1));
    a.shli(rT, rFrom, 3);
    a.emit(vm::vmLd8, rV, rT, 0, 2048);
    a.mul(rOut, rAmt, rV);
    a.shri(rOut, rOut, 20);
    a.shli(rT, rTo, 3);
    a.emit(vm::vmLd8, rV, rT, 0, 2048);
    a.mul(rOut, rOut, rV);
    a.shri(rOut, rOut, 20);
    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rOut);
    a.ldi(rT, 8);
    a.emit(vm::vmOut8, rT, rTo);
    a.ldi(rLen, 16);
    a.halt(rLen);
    return a.finish();
}

// --------------------------------------------------------------------------
// payment (Node): Luhn checksum over a 16-digit card + txid hash.
// --------------------------------------------------------------------------

constexpr int64_t cardDigits = 16;

int
emitPaymentCompiled(gen::ProgramBuilder &pb, const ServerEnv &env)
{
    auto f = pb.beginFunction("wl.payment", 3);
    const int req = f.arg(0), resp = f.arg(2);
    const int i = f.newVreg(), d = f.newVreg(), sum = f.newVreg(),
              addr = f.newVreg(), t = f.newVreg(), ok = f.newVreg(),
              rl = f.newVreg();
    const int loop = f.newLabel(), no_double = f.newLabel(),
              no_adjust = f.newLabel(), done = f.newLabel();

    f.movi(sum, 0);
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(CondOp::GeU, i, cardDigits, done);
    f.bin(BinOp::Add, addr, req, i);
    f.load(d, addr, 48, 1, false);
    // Double every second digit (from the right: even i here).
    f.bini(BinOp::And, t, i, 1);
    f.brcondi(CondOp::Ne, t, 0, no_double);
    f.bini(BinOp::Mul, d, d, 2);
    f.brcondi(CondOp::Le, d, 9, no_adjust);
    f.bini(BinOp::Sub, d, d, 9);
    f.label(no_adjust);
    f.label(no_double);
    f.bin(BinOp::Add, sum, sum, d);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);

    f.bini(BinOp::Urem, t, sum, 10);
    f.movi(ok, 0);
    const int invalid = f.newLabel();
    f.brcondi(CondOp::Ne, t, 0, invalid);
    f.movi(ok, 1);
    f.label(invalid);

    // Transaction id: hash the card bytes.
    f.bini(BinOp::Add, addr, req, 48);
    const int clen = f.imm(cardDigits);
    const int txid = f.call(env.lib.fnvHash, {addr, clen});
    f.store(resp, 0, ok, 8);
    f.store(resp, 8, txid, 8);
    f.movi(rl, 16);
    f.ret(rl);
    return pb.functionIndex("wl.payment");
}

std::vector<uint8_t>
makePaymentBytecode()
{
    vm::VmAsm a;
    const uint8_t rI = 1, rD = 2, rSum = 3, rT = 4, rC = 5, rOk = 6,
                  rH = 7, rLen = 8;
    const int loop = a.newLabel(), no_double = a.newLabel(),
              no_adjust = a.newLabel(), done = a.newLabel();

    a.ldi(rSum, 0);
    a.ldi(rI, 0);
    a.bind(loop);
    a.ldi(rC, int32_t(cardDigits));
    a.jge(rI, rC, done);
    a.addi(rT, rI, 48);
    a.emit(vm::vmInB, rD, rT);
    a.andi(rT, rI, 1);
    a.jnz(rT, no_double);
    a.muli(rD, rD, 2);
    a.ldi(rC, 10);
    a.jlt(rD, rC, no_adjust);
    a.addi(rD, rD, -9);
    a.bind(no_adjust);
    a.bind(no_double);
    a.add(rSum, rSum, rD);
    a.addi(rI, rI, 1);
    a.jmp(loop);
    a.bind(done);

    // ok = (sum % 10 == 0) — via repeated subtraction (no div op).
    const int mod_loop = a.newLabel(), mod_done = a.newLabel();
    a.bind(mod_loop);
    a.ldi(rC, 10);
    a.jlt(rSum, rC, mod_done);
    a.addi(rSum, rSum, -10);
    a.jmp(mod_loop);
    a.bind(mod_done);
    a.ldi(rOk, 0);
    const int invalid = a.newLabel();
    a.jnz(rSum, invalid);
    a.ldi(rOk, 1);
    a.bind(invalid);

    // txid hash over the card bytes.
    const int hloop = a.newLabel(), hdone = a.newLabel();
    a.ldi(rH, 0x811c9dc5);
    a.ldi(rI, 0);
    a.bind(hloop);
    a.ldi(rC, int32_t(cardDigits));
    a.jge(rI, rC, hdone);
    a.addi(rT, rI, 48);
    a.emit(vm::vmInB, rD, rT);
    a.emit(vm::vmHashStep, rH, rD);
    a.addi(rI, rI, 1);
    a.jmp(hloop);
    a.bind(hdone);

    a.ldi(rT, 0);
    a.emit(vm::vmOut8, rT, rOk);
    a.ldi(rT, 8);
    a.emit(vm::vmOut8, rT, rH);
    a.ldi(rLen, 16);
    a.halt(rLen);
    return a.finish();
}

} // namespace

void
registerShop(std::map<std::string, WorkloadImpl> &reg)
{
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitCatalogCompiled;
        impl.requestTemplate = requestHeader(/*productId=*/37);
        reg["productcatalog"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitShippingCompiled;
        std::vector<uint8_t> req = requestHeader(/*items=*/5);
        for (uint64_t w : {120ULL, 340ULL, 55ULL, 900ULL, 210ULL})
            appendBytes(req, &w, 8);
        impl.requestTemplate = std::move(req);
        reg["shipping"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.makeBytecode = makeShopRecBytecode;
        impl.requestTemplate = requestHeader(/*productId=*/37);
        reg["shoprecommendation"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.makeBytecode = makeEmailBytecode;
        // The email service ships a fraction of its siblings'
        // dependencies: the paper's low-L2-miss exception (Fig 4.13).
        impl.initScale = 0.18;
        std::vector<uint8_t> req = requestHeader(/*orderId=*/3);
        const char name[8] = {'C', 'U', 'S', 'T', 'O', 'M', 'E', 'R'};
        appendBytes(req, name, sizeof(name));
        impl.requestTemplate = std::move(req);
        reg["email"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitCurrencyCompiled;
        impl.makeBytecode = makeCurrencyBytecode;
        impl.requestTemplate = requestHeader(/*amount=*/123456789,
                                             /*from=*/12);
        reg["currency"] = std::move(impl);
    }
    {
        WorkloadImpl impl;
        impl.emitCompiled = emitPaymentCompiled;
        impl.makeBytecode = makePaymentBytecode;
        std::vector<uint8_t> req = requestHeader(0);
        // A Luhn-valid 16-digit number: 4539 1488 0343 6467.
        const uint8_t card[16] = {4, 5, 3, 9, 1, 4, 8, 8,
                                  0, 3, 4, 3, 6, 4, 6, 7};
        appendBytes(req, card, sizeof(card));
        impl.requestTemplate = std::move(req);
        reg["payment"] = std::move(impl);
    }
}

} // namespace svb::workloads::detail
