/**
 * @file
 * The ported benchmark suite (Tables 3.2, 3.3, 3.4).
 *
 * Standalone functions (fibonacci / aes / auth, in Go-, NodeJS- and
 * Python-tier variants), the Online-Shop services, and the Hotel
 * application backed by the database and memcached containers.
 */

#ifndef SVB_WORKLOADS_WORKLOADS_HH
#define SVB_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "stack/runtime.hh"

namespace svb::workloads
{

/** @return the implementation registered under @p name. */
const WorkloadImpl &workloadImpl(const std::string &name);

/** @return true when a workload named @p name exists. */
bool hasWorkload(const std::string &name);

/** Standalone functions x all runtimes (Table 3.2): 9 functions. */
std::vector<FunctionSpec> standaloneSuite();

/** Online-Shop services (Table 3.3): 6 functions. */
std::vector<FunctionSpec> onlineShopSuite();

/** Hotel application (Table 3.4): 6 Go functions with DB deps. */
std::vector<FunctionSpec> hotelSuite();

/** The full evaluation set in the paper's figure order. */
std::vector<FunctionSpec> allFunctions();

/**
 * Extra ported workloads beyond the paper's evaluation set (its first
 * stated future work): compression and jsonserdes, in all runtimes.
 */
std::vector<FunctionSpec> extendedSuite();

/** Every Go-tier function (Figs 4.10/4.11). */
std::vector<FunctionSpec> goFunctions();

/** Every Python-tier function (Fig 4.13). */
std::vector<FunctionSpec> pythonFunctions();

} // namespace svb::workloads

#endif // SVB_WORKLOADS_WORKLOADS_HH
