/**
 * @file
 * Database container generators.
 *
 * Each database kind is a complete guest program serving the KV
 * protocol on a ring pair. The data-structure shapes reproduce the
 * behavioural contrasts the paper observed:
 *
 *  - Cassandra-like: JVM-style boot arena + LSM (memtable scan, then
 *    binary-searched sorted runs with read amplification); very
 *    expensive bootstrap (the thesis' 17-minute QEMU boots, scaled).
 *  - Mongo-like: hash-indexed document store; light boot, cheap gets.
 *  - MariaDB-like: single sorted table with binary search (the
 *    relational alternative the thesis evaluated and rejected).
 *  - Memcached: open-addressing in-memory cache.
 */

#ifndef SVB_DB_STORE_GEN_HH
#define SVB_DB_STORE_GEN_HH

#include "gen/ir.hh"
#include "stack/calibration.hh"

namespace svb::db
{

/** The database flavours of Section 3.3.3. */
enum class DbKind
{
    Cassandra,
    Mongo,
    Maria,
    Memcached,
};

/** @return printable name. */
const char *dbKindName(DbKind kind);

/** m5Event payload announcing a booted store. */
constexpr uint64_t dbReadyEvent = 0xD0;

/** Parameters of a database container build. */
struct DbParams
{
    DbKind kind = DbKind::Cassandra;
    /** Ring-pair base VA the store serves on (resp = +0x1000). */
    Addr reqRingVa = 0;
    /** Records seeded at boot (hotel dataset). */
    uint64_t seedRecords = calib::hotelDbRecords;
    /** Value payload bytes per record. */
    uint64_t valueBytes = calib::hotelValueBytes;
};

/** Build the database container program. */
LoadableImage buildDbProgram(const DbParams &params, IsaId isa);

} // namespace svb::db

#endif // SVB_DB_STORE_GEN_HH
