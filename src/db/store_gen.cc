#include "store_gen.hh"

#include "gen/guestlib.hh"
#include "sim/logging.hh"
#include "guest/syscall_abi.hh"
#include "stack/kvproto.hh"

namespace svb::db
{

using gen::BinOp;
using gen::CondOp;

namespace
{

/** Slot format shared by every store: [key u64][vlen u64][value 240]. */
constexpr int64_t slotBytes = 256;
constexpr int64_t slotValOff = 16;

/** Heap offsets (from layout::heapBase). */
namespace off
{
constexpr int64_t scratch = 64;
constexpr int64_t arena = 0x1000;
// Cassandra.
constexpr int64_t cassMemtable = 13 * 1024 * 1024;
constexpr int64_t cassLevel0 = 14 * 1024 * 1024;
constexpr int64_t cassLevel1 = 16 * 1024 * 1024;
constexpr int64_t cassLevel2 = 18 * 1024 * 1024;
// Mongo.
constexpr int64_t mongoIndex = 2 * 1024 * 1024 + 0x10000;
constexpr int64_t mongoRecords = 3 * 1024 * 1024;
// Maria.
constexpr int64_t mariaTable = 6 * 1024 * 1024;
// Memcached.
constexpr int64_t mcTable = 2 * 1024 * 1024;
} // namespace off

constexpr int64_t mongoBuckets = 1024;
constexpr int64_t mcSlots = 4096;

/** Sorted-run layout: [count u64][pad..63][slots]. */
constexpr int64_t runHeader = 64;

struct Emitters
{
    gen::GuestLib lib;
    int keyOf = -1;
    int genValue = -1;
    int insertSorted = -1;
    int lookupSorted = -1;
};

/** genValue(key, dst, len): deterministic value bytes for a key. */
void
emitGenValue(gen::ProgramBuilder &pb)
{
    auto f = pb.beginFunction("db.genValue", 3);
    const int key = f.arg(0), dst = f.arg(1), len = f.arg(2);
    const int j = f.newVreg(), w = f.newVreg(), addr = f.newVreg(),
              m = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(m, int64_t(0xff51afd7ed558ccdULL));
    f.movi(j, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, j, len, done);
    f.bini(BinOp::Mul, w, j, 0x9e37);
    f.bin(BinOp::Add, w, w, key);
    f.bin(BinOp::Mul, w, w, m);
    f.bin(BinOp::Add, addr, dst, j);
    f.store(addr, 0, w, 8);
    f.addi(j, j, 8);
    f.br(loop);
    f.label(done);
    f.ret();
}

/**
 * insertSorted(base, key) -> new slot address. base points at the
 * run's count; slots follow at base+runHeader, sorted ascending.
 * Shifts greater entries one slot to the right (real LSM/B-tree
 * insertion traffic).
 */
void
emitInsertSorted(gen::ProgramBuilder &pb, const gen::GuestLib &lib)
{
    auto f = pb.beginFunction("db.insertSorted", 2);
    const int base = f.arg(0), key = f.arg(1);
    const int count = f.newVreg(), idx = f.newVreg(),
              slots = f.newVreg(), prev = f.newVreg(), t = f.newVreg(),
              dst = f.newVreg(), src = f.newVreg(), sz = f.newVreg();
    const int find = f.newLabel(), place = f.newLabel();

    f.load(count, base, 0, 8, false);
    f.bini(BinOp::Add, slots, base, runHeader);
    f.mov(idx, count);
    f.label(find);
    f.brcondi(CondOp::Eq, idx, 0, place);
    f.bini(BinOp::Sub, t, idx, 1);
    f.bini(BinOp::Shl, t, t, 8); // * slotBytes
    f.bin(BinOp::Add, src, slots, t);
    f.load(prev, src, 0, 8, false);
    f.brcond(CondOp::GeU, key, prev, place);
    f.bini(BinOp::Add, dst, src, slotBytes);
    f.movi(sz, slotBytes);
    f.callVoid(lib.memCopy, {dst, src, sz});
    f.bini(BinOp::Sub, idx, idx, 1);
    f.br(find);

    f.label(place);
    f.bini(BinOp::Add, t, count, 1);
    f.store(base, 0, t, 8);
    f.bini(BinOp::Shl, t, idx, 8);
    f.bin(BinOp::Add, dst, slots, t);
    f.ret(dst);
}

/** lookupSorted(base, key) -> slot address or 0 (binary search). */
void
emitLookupSorted(gen::ProgramBuilder &pb)
{
    auto f = pb.beginFunction("db.lookupSorted", 2);
    const int base = f.arg(0), key = f.arg(1);
    const int lo = f.newVreg(), hi = f.newVreg(), mid = f.newVreg(),
              slots = f.newVreg(), addr = f.newVreg(), k = f.newVreg(),
              t = f.newVreg();
    const int loop = f.newLabel(), miss = f.newLabel(),
              below = f.newLabel();

    f.load(hi, base, 0, 8, false);
    f.bini(BinOp::Add, slots, base, runHeader);
    f.movi(lo, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, lo, hi, miss);
    f.bin(BinOp::Add, mid, lo, hi);
    f.bini(BinOp::Shr, mid, mid, 1);
    f.bini(BinOp::Shl, t, mid, 8);
    f.bin(BinOp::Add, addr, slots, t);
    f.load(k, addr, 0, 8, false);
    const int found = f.newLabel();
    f.brcond(CondOp::Eq, k, key, found);
    f.brcond(CondOp::LtU, k, key, below);
    f.mov(hi, mid);
    f.br(loop);
    f.label(below);
    f.bini(BinOp::Add, lo, mid, 1);
    f.br(loop);
    f.label(found);
    f.ret(addr);
    f.label(miss);
    const int zero = f.imm(0);
    f.ret(zero);
}

Addr
topoResp(const DbParams &p)
{
    return p.reqRingVa + 0x1000;
}

/** Append a get/put serve loop. The handlers are kind-specific. */
void
emitServeLoop(gen::ProgramBuilder &pb, const Emitters &em,
              const DbParams &p, int get_fn, int put_fn, int boot_fn)
{
    auto f = pb.beginFunction("db.main", 0);
    const int64_t req_off = f.localBytes(256);
    const int64_t resp_off = f.localBytes(256);

    f.callVoid(boot_fn, {});
    // Signal readiness to the harness.
    {
        const int m5op = f.imm(int64_t(sys::m5Event));
        const int code = f.imm(int64_t(dbReadyEvent));
        f.syscall(sys::sysM5, {m5op, code});
    }

    const int serve = f.newLabel(), is_put = f.newLabel(),
              send = f.newLabel();
    const int req = f.newVreg(), resp = f.newVreg(), ring = f.newVreg(),
              len = f.newVreg(), op = f.newVreg(), key = f.newVreg(),
              out_len = f.newVreg(), t = f.newVreg();

    f.label(serve);
    f.leaLocal(req, req_off);
    f.leaLocal(resp, resp_off);
    f.movi(ring, int64_t(p.reqRingVa));
    {
        const int got = f.call(em.lib.ringRecv, {ring, req});
        f.mov(len, got);
    }
    f.load(op, req, 0, 8, false);
    f.load(key, req, 8, 8, false);

    f.brcondi(CondOp::Eq, op, int64_t(kv::opPut), is_put);
    {
        const int got = f.call(get_fn, {key, resp});
        f.mov(out_len, got);
    }
    f.br(send);

    f.label(is_put);
    {
        const int val = f.newVreg(), vlen = f.newVreg();
        f.bini(BinOp::Add, val, req, kv::headerBytes);
        f.bini(BinOp::Sub, vlen, len, kv::headerBytes);
        const int st = f.call(put_fn, {key, val, vlen});
        f.store(resp, 0, st, 8);
        f.movi(out_len, 8);
    }

    f.label(send);
    f.movi(t, int64_t(topoResp(p)));
    f.callVoid(em.lib.ringSend, {t, resp, out_len});
    f.br(serve);

    pb.setEntry("db.main");
}

} // namespace

const char *
dbKindName(DbKind kind)
{
    switch (kind) {
      case DbKind::Cassandra: return "cassandra";
      case DbKind::Mongo: return "mongodb";
      case DbKind::Maria: return "mariadb";
      case DbKind::Memcached: return "memcached";
    }
    return "?";
}

LoadableImage
buildDbProgram(const DbParams &p, IsaId isa)
{
    gen::ProgramBuilder pb;
    pb.setHeapBytes(p.kind == DbKind::Cassandra
                        ? calib::dbHeapBytes
                        : (p.kind == DbKind::Memcached
                               ? calib::memcachedHeapBytes
                               : calib::dbHeapBytes / 2));

    Emitters em;
    em.lib = gen::GuestLib::addTo(pb);
    em.keyOf = kv::emitKeyOf(pb);
    emitGenValue(pb);
    em.genValue = pb.functionIndex("db.genValue");
    emitInsertSorted(pb, em.lib);
    em.insertSorted = pb.functionIndex("db.insertSorted");
    emitLookupSorted(pb);
    em.lookupSorted = pb.functionIndex("db.lookupSorted");

    const Addr H = layout::heapBase;
    int get_fn = -1, put_fn = -1, boot_fn = -1;

    switch (p.kind) {
      case DbKind::Cassandra: {
        // --- get: memtable scan, then levels with read amplification.
        {
            auto f = pb.beginFunction("cass.get", 2);
            const int key = f.arg(0), out = f.arg(1);
            const int mt = f.newVreg(), cnt = f.newVreg(),
                      i = f.newVreg(), slot = f.newVreg(),
                      k = f.newVreg(), vlen = f.newVreg(),
                      t = f.newVreg(), lvl = f.newVreg();
            const int scan = f.newLabel(), scan_done = f.newLabel(),
                      hit = f.newLabel();

            f.movi(mt, int64_t(H + off::cassMemtable));
            f.load(cnt, mt, 0, 8, false);
            f.movi(i, 0);
            f.label(scan);
            f.brcond(CondOp::GeU, i, cnt, scan_done);
            f.bini(BinOp::Shl, t, i, 8);
            f.bin(BinOp::Add, slot, mt, t);
            f.bini(BinOp::Add, slot, slot, runHeader);
            f.load(k, slot, 0, 8, false);
            f.brcond(CondOp::Eq, k, key, hit);
            f.addi(i, i, 1);
            f.br(scan);
            f.label(scan_done);

            // Levels: bloom-ish probe traffic then binary search.
            static constexpr int64_t levels[3] = {
                off::cassLevel0, off::cassLevel1, off::cassLevel2};
            for (int64_t lvl_off : levels) {
                const int next = f.newLabel();
                f.movi(lvl, int64_t(H + lvl_off));
                const int probe_bytes =
                    f.imm(int64_t(calib::cassProbeBytes));
                const int stride = f.imm(64);
                const int probe_base = f.newVreg();
                f.bini(BinOp::Add, probe_base, lvl, runHeader);
                f.callVoid(em.lib.touchRead,
                           {probe_base, probe_bytes, stride});
                const int s = f.call(em.lookupSorted, {lvl, key});
                f.brcondi(CondOp::Eq, s, 0, next);
                f.mov(slot, s);
                f.br(hit);
                f.label(next);
            }
            const int zero = f.imm(0);
            f.ret(zero);

            f.label(hit);
            f.load(vlen, slot, 8, 8, false);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {out, t, vlen});
            f.ret(vlen);
        }
        get_fn = pb.functionIndex("cass.get");

        // --- put: append to the memtable; flush when full.
        {
            auto f = pb.beginFunction("cass.put", 3);
            const int key = f.arg(0), val = f.arg(1), vlen = f.arg(2);
            const int mt = f.newVreg(), cnt = f.newVreg(),
                      slot = f.newVreg(), t = f.newVreg();
            const int no_flush = f.newLabel();

            f.movi(mt, int64_t(H + off::cassMemtable));
            f.load(cnt, mt, 0, 8, false);
            f.bini(BinOp::Shl, t, cnt, 8);
            f.bin(BinOp::Add, slot, mt, t);
            f.bini(BinOp::Add, slot, slot, runHeader);
            f.store(slot, 0, key, 8);
            f.store(slot, 8, vlen, 8);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {t, val, vlen});
            f.bini(BinOp::Add, cnt, cnt, 1);
            f.store(mt, 0, cnt, 8);

            f.brcondi(CondOp::Lt, cnt,
                      int64_t(calib::cassMemtableEntries), no_flush);
            // Flush: merge every memtable entry into level 0.
            {
                const int i = f.newVreg(), src = f.newVreg(),
                          k = f.newVreg(), dst = f.newVreg(),
                          lvl = f.newVreg(), sz = f.newVreg();
                const int loop = f.newLabel(), done = f.newLabel();
                f.movi(lvl, int64_t(H + off::cassLevel0));
                f.movi(i, 0);
                f.label(loop);
                f.brcond(CondOp::GeU, i, cnt, done);
                f.bini(BinOp::Shl, t, i, 8);
                f.bin(BinOp::Add, src, mt, t);
                f.bini(BinOp::Add, src, src, runHeader);
                f.load(k, src, 0, 8, false);
                const int d = f.call(em.insertSorted, {lvl, k});
                f.mov(dst, d);
                f.movi(sz, slotBytes);
                f.callVoid(em.lib.memCopy, {dst, src, sz});
                f.addi(i, i, 1);
                f.br(loop);
                f.label(done);
                const int zero = f.imm(0);
                f.store(mt, 0, zero, 8);
            }
            f.label(no_flush);
            const int one = f.imm(1);
            f.ret(one);
        }
        put_fn = pb.functionIndex("cass.put");

        // --- boot: JVM-style arena init + seeding the sorted runs.
        {
            auto f = pb.beginFunction("cass.boot", 0);
            const int arena = f.newVreg();
            f.movi(arena, int64_t(H + off::arena));
            const int bytes = f.imm(int64_t(calib::cassBootTouchBytes));
            const int stride = f.imm(64);
            f.callVoid(em.lib.touchWrite, {arena, bytes, stride});
            const int iters = f.imm(60000);
            f.callVoid(em.lib.burnAlu, {iters});

            const int id = f.newVreg(), key = f.newVreg(),
                      lvl = f.newVreg(), slot = f.newVreg(),
                      t = f.newVreg(), vlen = f.newVreg();
            const int loop = f.newLabel(), done = f.newLabel();
            f.movi(id, 0);
            f.label(loop);
            f.brcondi(CondOp::GeU, id, int64_t(p.seedRecords), done);
            {
                const int k = f.call(em.keyOf, {id});
                f.mov(key, k);
            }
            // Round-robin across the three levels.
            f.bini(BinOp::Urem, t, id, 3);
            const int l1 = f.newLabel(), l2 = f.newLabel(),
                      pick_done = f.newLabel();
            f.brcondi(CondOp::Eq, t, 1, l1);
            f.brcondi(CondOp::Eq, t, 2, l2);
            f.movi(lvl, int64_t(H + off::cassLevel0));
            f.br(pick_done);
            f.label(l1);
            f.movi(lvl, int64_t(H + off::cassLevel1));
            f.br(pick_done);
            f.label(l2);
            f.movi(lvl, int64_t(H + off::cassLevel2));
            f.label(pick_done);

            {
                const int s = f.call(em.insertSorted, {lvl, key});
                f.mov(slot, s);
            }
            f.store(slot, 0, key, 8);
            f.movi(vlen, int64_t(p.valueBytes));
            f.store(slot, 8, vlen, 8);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.genValue, {key, t, vlen});
            f.addi(id, id, 1);
            f.br(loop);
            f.label(done);
            f.ret();
        }
        boot_fn = pb.functionIndex("cass.boot");
        break;
      }

      case DbKind::Mongo:
      case DbKind::Memcached: {
        // Both are open-addressing hash stores; Mongo adds a bucket
        // indirection (index -> record) and a bigger boot.
        const bool is_mongo = p.kind == DbKind::Mongo;
        const int64_t table =
            is_mongo ? off::mongoRecords : off::mcTable;
        const int64_t nbuckets = is_mongo ? mongoBuckets : mcSlots;

        // probe(key, for_insert) -> slot address (or 0 when absent).
        {
            auto f = pb.beginFunction("hash.probe", 2);
            const int key = f.arg(0), for_insert = f.arg(1);
            const int b = f.newVreg(), slot = f.newVreg(),
                      k = f.newVreg(), t = f.newVreg(),
                      base = f.newVreg();
            const int loop = f.newLabel(), empty = f.newLabel();
            f.movi(base, int64_t(H + table));
            f.bini(BinOp::And, b, key, nbuckets - 1);
            f.label(loop);
            f.bini(BinOp::Shl, t, b, 8);
            f.bin(BinOp::Add, slot, base, t);
            f.load(k, slot, 0, 8, false);
            f.brcondi(CondOp::Eq, k, 0, empty);
            const int found = f.newLabel();
            f.brcond(CondOp::Eq, k, key, found);
            f.bini(BinOp::Add, b, b, 1);
            f.bini(BinOp::And, b, b, nbuckets - 1);
            f.br(loop);
            f.label(found);
            f.ret(slot);
            f.label(empty);
            // Empty slot: usable only when inserting.
            const int miss = f.newLabel();
            f.brcondi(CondOp::Eq, for_insert, 0, miss);
            f.ret(slot);
            f.label(miss);
            const int zero = f.imm(0);
            f.ret(zero);
        }
        const int probe = pb.functionIndex("hash.probe");

        {
            auto f = pb.beginFunction("hash.get", 2);
            const int key = f.arg(0), out = f.arg(1);
            const int t = f.newVreg(), vlen = f.newVreg();
            const int zero_arg = f.imm(0);
            const int slot = f.call(probe, {key, zero_arg});
            const int miss = f.newLabel();
            f.brcondi(CondOp::Eq, slot, 0, miss);
            // Mongo pays index-node traffic (far lighter than the
            // Cassandra LSM probes).
            if (is_mongo) {
                const int idx = f.newVreg();
                f.movi(idx, int64_t(H + off::mongoIndex));
                const int bytes = f.imm(int64_t(calib::mongoProbeBytes));
                const int stride = f.imm(64);
                f.callVoid(em.lib.touchRead, {idx, bytes, stride});
            }
            f.load(vlen, slot, 8, 8, false);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {out, t, vlen});
            f.ret(vlen);
            f.label(miss);
            const int zero = f.imm(0);
            f.ret(zero);
        }
        get_fn = pb.functionIndex("hash.get");

        {
            auto f = pb.beginFunction("hash.put", 3);
            const int key = f.arg(0), val = f.arg(1), vlen = f.arg(2);
            const int t = f.newVreg();
            const int one_arg = f.imm(1);
            const int slot = f.call(probe, {key, one_arg});
            f.store(slot, 0, key, 8);
            f.store(slot, 8, vlen, 8);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {t, val, vlen});
            const int one = f.imm(1);
            f.ret(one);
        }
        put_fn = pb.functionIndex("hash.put");

        {
            auto f = pb.beginFunction("hash.boot", 0);
            const int arena = f.newVreg();
            f.movi(arena, int64_t(H + off::arena));
            const int bytes =
                f.imm(int64_t(is_mongo ? calib::mongoBootTouchBytes
                                       : calib::memcachedBootTouchBytes));
            const int stride = f.imm(64);
            f.callVoid(em.lib.touchWrite, {arena, bytes, stride});
            const int iters = f.imm(is_mongo ? 8000 : 2000);
            f.callVoid(em.lib.burnAlu, {iters});
            // Zero the table.
            const int tbl = f.newVreg(), tbytes = f.newVreg();
            f.movi(tbl, int64_t(H + table));
            f.movi(tbytes, nbuckets * slotBytes);
            f.callVoid(em.lib.memZero, {tbl, tbytes});

            if (is_mongo) {
                // Seed the dataset.
                const int id = f.newVreg(), vlen = f.newVreg();
                const int64_t vbuf_off = f.localBytes(240);
                const int vbuf = f.newVreg();
                const int loop = f.newLabel(), done = f.newLabel();
                f.movi(id, 0);
                f.label(loop);
                f.brcondi(CondOp::GeU, id, int64_t(p.seedRecords), done);
                const int k = f.call(em.keyOf, {id});
                f.movi(vlen, int64_t(p.valueBytes));
                f.leaLocal(vbuf, vbuf_off);
                f.callVoid(em.genValue, {k, vbuf, vlen});
                f.callVoid(put_fn, {k, vbuf, vlen});
                f.addi(id, id, 1);
                f.br(loop);
                f.label(done);
            }
            f.ret();
        }
        boot_fn = pb.functionIndex("hash.boot");
        break;
      }

      case DbKind::Maria: {
        {
            auto f = pb.beginFunction("maria.get", 2);
            const int key = f.arg(0), out = f.arg(1);
            const int tbl = f.newVreg(), t = f.newVreg(),
                      vlen = f.newVreg();
            f.movi(tbl, int64_t(H + off::mariaTable));
            const int slot = f.call(em.lookupSorted, {tbl, key});
            const int miss = f.newLabel();
            f.brcondi(CondOp::Eq, slot, 0, miss);
            f.load(vlen, slot, 8, 8, false);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {out, t, vlen});
            f.ret(vlen);
            f.label(miss);
            const int zero = f.imm(0);
            f.ret(zero);
        }
        get_fn = pb.functionIndex("maria.get");

        {
            auto f = pb.beginFunction("maria.put", 3);
            const int key = f.arg(0), val = f.arg(1), vlen = f.arg(2);
            const int tbl = f.newVreg(), t = f.newVreg();
            f.movi(tbl, int64_t(H + off::mariaTable));
            const int slot = f.call(em.insertSorted, {tbl, key});
            f.store(slot, 0, key, 8);
            f.store(slot, 8, vlen, 8);
            f.bini(BinOp::Add, t, slot, slotValOff);
            f.callVoid(em.lib.memCopy, {t, val, vlen});
            const int one = f.imm(1);
            f.ret(one);
        }
        put_fn = pb.functionIndex("maria.put");

        {
            auto f = pb.beginFunction("maria.boot", 0);
            const int arena = f.newVreg();
            f.movi(arena, int64_t(H + off::arena));
            const int bytes = f.imm(int64_t(calib::mariaBootTouchBytes));
            const int stride = f.imm(64);
            f.callVoid(em.lib.touchWrite, {arena, bytes, stride});
            const int iters = f.imm(15000);
            f.callVoid(em.lib.burnAlu, {iters});

            const int id = f.newVreg(), vlen = f.newVreg();
            const int64_t vbuf_off = f.localBytes(240);
            const int vbuf = f.newVreg();
            const int loop = f.newLabel(), done = f.newLabel();
            f.movi(id, 0);
            f.label(loop);
            f.brcondi(CondOp::GeU, id, int64_t(p.seedRecords), done);
            const int k = f.call(em.keyOf, {id});
            f.movi(vlen, int64_t(p.valueBytes));
            f.leaLocal(vbuf, vbuf_off);
            f.callVoid(em.genValue, {k, vbuf, vlen});
            f.callVoid(put_fn, {k, vbuf, vlen});
            f.addi(id, id, 1);
            f.br(loop);
            f.label(done);
            f.ret();
        }
        boot_fn = pb.functionIndex("maria.boot");
        break;
      }
    }

    emitServeLoop(pb, em, p, get_fn, put_fn, boot_fn);
    return gen::compileProgram(pb.take(), isa);
}

} // namespace svb::db
