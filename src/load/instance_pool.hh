/**
 * @file
 * Keep-alive instance pool for the invocation-load subsystem.
 *
 * The pool decides, per invocation, whether the cold path (fresh
 * container start) or the warm path is exercised — the keep-alive
 * policy is what turns an arrival stream into a cold-start *rate*
 * (Ustiugov et al.: the policy decides how often the cold path is
 * paid). Capacity is bounded: when every slot is busy, a request
 * queues on the earliest-free instance, which is how queueing delay
 * enters the tail.
 *
 * Policies:
 *  - AlwaysCold: every invocation boots a fresh instance (no reuse);
 *    the serverless worst case and the Figure-4.1 cold column.
 *  - AlwaysWarm: provisioned concurrency; no invocation ever pays the
 *    cold path.
 *  - FixedTtl: an idle instance is evicted keepAliveNs after its last
 *    request completes (the fixed-keep-alive policy of commercial
 *    FaaS platforms).
 *  - Lru: instances live until capacity pressure evicts the least
 *    recently used idle one (cache-style keep-alive).
 *
 * Placement is greedy in arrival order and fully deterministic: ties
 * are broken by slot index, so identical invocation streams produce
 * identical cold/warm decisions on every host and worker count.
 */

#ifndef SVB_LOAD_INSTANCE_POOL_HH
#define SVB_LOAD_INSTANCE_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace svb::load
{

/** Keep-alive / eviction policy of a pool. */
enum class KeepAlivePolicy
{
    AlwaysCold,
    AlwaysWarm,
    FixedTtl,
    Lru,
};

/** Pool parameters. */
struct PoolConfig
{
    KeepAlivePolicy policy = KeepAlivePolicy::FixedTtl;
    /** Instance slots: the concurrency limit of the deployment. */
    unsigned maxInstances = 4;
    /** FixedTtl only: idle lifetime after the last completion. */
    uint64_t keepAliveNs = 100'000'000; // 100 ms
};

/** Aggregate pool outcomes over a run. */
struct PoolStats
{
    uint64_t coldStarts = 0;
    uint64_t warmHits = 0;
    uint64_t evictions = 0;
    /** Instances torn down by kill() (fault layer: crashes and failed
     *  cold starts). Every crash is also counted as an eviction. */
    uint64_t crashes = 0;
};

/**
 * A bounded pool of function instances with keep-alive.
 *
 * Usage per invocation (in arrival order): acquire() chooses the
 * slot and the cold/warm path and the start time; the caller computes
 * the service time and release()s the slot with the completion time.
 * acquire() *reserves* the slot (busy flag + fnId) until the matching
 * release()/kill(), so two acquires at the same timestamp — or an
 * acquire landing before the matching release event fires — can never
 * double-book one slot as a warm hit.
 */
class InstancePool
{
  public:
    explicit InstancePool(const PoolConfig &config);

    /** acquire()'s decision for one invocation. */
    struct Placement
    {
        unsigned slot = 0;
        bool cold = false;
        /** Service start: the arrival time, or the queued-behind
         *  instance's free time when every slot is busy. */
        uint64_t startNs = 0;
    };

    /** Place an invocation of function @p fn_id arriving at @p now_ns. */
    Placement acquire(uint32_t fn_id, uint64_t now_ns);

    /** Complete the invocation on @p slot at @p end_ns. */
    void release(unsigned slot, uint64_t end_ns);

    /**
     * Tear @p slot down at @p at_ns without a completion: the fault
     * layer's instance crash / failed cold start. The slot goes dead
     * immediately (a later request pays a fresh cold start) and the
     * teardown counts as both a crash and an eviction. Called instead
     * of release() for the affected invocation.
     */
    void kill(unsigned slot, uint64_t at_ns);

    /**
     * Tear every slot down at @p at_ns: the fleet layer's node crash.
     * Reserved or still-busy slots count as crashes (plus evictions,
     * matching kill()); idle live instances count as plain evictions.
     * @return the number of busy/reserved slots killed.
     */
    unsigned crashAll(uint64_t at_ns);

    /**
     * Evict every live idle instance at @p at_ns: the autoscaler's
     * scale-to-zero teardown. The caller guarantees the pool is
     * quiescent (no reserved or busy slot).
     */
    void evictAll(uint64_t at_ns);

    const PoolStats &stats() const { return poolStats; }

    /** Live (kept-alive) instances right now. */
    unsigned liveInstances() const;

    /** Slots reserved or still busy at @p now_ns. */
    unsigned busySlots(uint64_t now_ns) const;

    /** Total queued work: sum over slots of (busyUntilNs - now_ns)
     *  clamped at 0 — the fleet scheduler's load metric. */
    uint64_t backlogNs(uint64_t now_ns) const;

    /** Slot metadata, exposed for tests (recycle-reset regression). */
    uint64_t slotLastUsedNs(unsigned slot) const;
    uint64_t slotBusyUntilNs(unsigned slot) const;

    // --- snapshot-page leases --------------------------------------------
    /**
     * Attach an opaque resource lease to @p slot's current instance —
     * in practice a shared_ptr keeping the instance's snapshot
     * PageImage (and through it the refcounted CoW pages in the
     * PageStore) alive. The pool drops the lease at every point the
     * instance dies: TTL expiry, LRU recycling, kill()/crashAll(),
     * evictAll(), and AlwaysCold teardown on release(). That makes
     * pool density observable as live page refcounts: once the last
     * lease on an image goes, its pages become reclaimable.
     */
    void setLease(unsigned slot, std::shared_ptr<const void> lease);

    /** Does @p slot's instance still hold a lease? (test hook) */
    bool slotHasLease(unsigned slot) const;

  private:
    struct Instance
    {
        bool live = false;
        /** Handed out by acquire(), not yet release()d/kill()ed. */
        bool reserved = false;
        uint32_t fnId = 0;
        uint64_t busyUntilNs = 0;
        uint64_t lastUsedNs = 0;
        /** Dies with the instance (see setLease()). */
        std::shared_ptr<const void> lease;
    };

    /** Apply TTL expiry to idle instances at @p now_ns. */
    void expireIdle(uint64_t now_ns);

    PoolConfig cfg;
    std::vector<Instance> slots;
    PoolStats poolStats;
};

} // namespace svb::load

#endif // SVB_LOAD_INSTANCE_POOL_HH
