/**
 * @file
 * Deterministic fault injection and client-side resilience machinery
 * for the invocation-load subsystem.
 *
 * The Figure-4.1 methodology assumes every invocation succeeds; real
 * FaaS platforms do not (SeBS benchmarks reliability alongside
 * performance, and Wang et al. show cold-start failures and
 * stragglers dominate user-visible tails). This header models the
 * failure side of that literature while keeping every number a pure
 * function of the scenario seed:
 *
 *  - FaultConfig / FaultInjector: per-attempt fault draws (failed
 *    cold starts, mid-request instance crashes, straggler slowdowns,
 *    corrupt checkpoint restores) from a dedicated Rng::split
 *    substream — enabling faults never perturbs the arrival, mix or
 *    warm-sample streams, so a zero-rate config is byte-identical to
 *    no fault layer at all.
 *  - RetryPolicy / BackoffSchedule: client-side retries with
 *    per-attempt timeouts and exponential backoff with decorrelated
 *    jitter (sleep_k = min(cap, uniform[base, 3*sleep_{k-1}])), all
 *    in simulated time.
 *  - CircuitBreaker: a per-function closed/open/half-open breaker
 *    that sheds to a degraded fast-path response while open and
 *    closes again after successful half-open probes.
 *
 * Everything here is plain value-semantics state driven by the load
 * engine (load_runner.cc); nothing reads clocks or global state, so
 * SVBENCH_JOBS worker count cannot influence an outcome.
 */

#ifndef SVB_LOAD_FAULT_HH
#define SVB_LOAD_FAULT_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace svb::load
{

/** Fault-model rates and shape parameters (all off by default). */
struct FaultConfig
{
    /** P(a cold start fails after consuming its full cold latency);
     *  the instance never comes up and the slot goes dead. */
    double coldStartFailProb = 0.0;
    /** P(the instance crashes mid-request); the crash point is a
     *  uniform fraction of the service time. */
    double crashProb = 0.0;
    /** P(a request is a straggler: service time multiplied). */
    double stragglerProb = 0.0;
    /** Straggler slowdown multiplier. */
    double stragglerFactor = 8.0;
    /** P(a cold start restores a corrupt checkpoint: the restore is
     *  discarded and the instance boots from scratch instead). */
    double restoreCorruptProb = 0.0;
    /** Boot-from-scratch penalty multiplier on the cold latency paid
     *  when a restore came up corrupt. */
    double restoreBootFactor = 3.0;

    /** @return true when any fault rate is nonzero. */
    bool any() const
    {
        return coldStartFailProb > 0.0 || crashProb > 0.0 ||
               stragglerProb > 0.0 || restoreCorruptProb > 0.0;
    }

    /** Every rate multiplied by @p scale (clamped to [0, 1]). */
    FaultConfig scaled(double scale) const;
};

/**
 * Parse SVBENCH_FAULTS into a FaultConfig.
 *
 * Unset, empty or "0" disables every fault; "1" selects a moderate
 * default preset (cold=0.05, crash=0.02, straggler=0.05,
 * restore=0.02); anything else is a comma-separated key=value list
 * over {cold, crash, straggler, straggler-factor, restore,
 * restore-boot}. Unknown keys warn and are ignored.
 */
FaultConfig faultsFromEnv();

/** The "1" preset of faultsFromEnv(), for benches that want faults
 *  even without the environment variable. */
FaultConfig defaultFaultPreset();

/** Client-side retry behaviour (all times simulated nanoseconds). */
struct RetryPolicy
{
    /** Total attempts per invocation; 1 = no retry. */
    unsigned maxAttempts = 1;
    /** Per-attempt client timeout from attempt start; 0 = none. The
     *  abandoned instance still finishes its work server-side. */
    uint64_t timeoutNs = 0;
    /** First backoff delay; 0 = retry immediately. */
    uint64_t backoffBaseNs = 0;
    /** Backoff delays never exceed this. */
    uint64_t backoffCapNs = 1'000'000'000; // 1 s
};

/**
 * Stateful decorrelated-jitter backoff: delay 1 is exactly
 * backoffBaseNs, delay k is uniform in [base, 3 * delay_{k-1}]
 * clamped to backoffCapNs. One schedule per invocation's retry
 * chain; randomness comes from the caller's dedicated substream.
 */
class BackoffSchedule
{
  public:
    explicit BackoffSchedule(const RetryPolicy &policy) : pol(policy) {}

    /** @return the next simulated-time delay before a retry. */
    uint64_t nextDelayNs(Rng &rng);

  private:
    RetryPolicy pol;
    uint64_t prevNs = 0;
};

/** Circuit-breaker parameters (disabled by default). */
struct BreakerConfig
{
    bool enabled = false;
    /** Consecutive client-visible failures that open the breaker. */
    unsigned failureThreshold = 5;
    /** How long an open breaker sheds before probing again. */
    uint64_t openCooldownNs = 50'000'000; // 50 ms
    /** Half-open probe successes required to close again. */
    unsigned halfOpenSuccesses = 2;
    /** Latency of the degraded fast-path response a shed request
     *  receives while the breaker is open. */
    uint64_t degradedNs = 50'000; // 50 us
};

/**
 * Per-function circuit breaker.
 *
 * Closed admits everything; failureThreshold consecutive failures
 * open it. Open sheds every request until openCooldownNs elapsed,
 * then admits a single half-open probe at a time: halfOpenSuccesses
 * successful probes close the breaker, any probe failure re-opens it
 * (with a fresh cooldown). All decisions are pure functions of the
 * call sequence — the engine calls admit/onSuccess/onFailure in
 * simulated-time order, so the state machine is deterministic.
 */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(const BreakerConfig &config) : cfg(config) {}

    /** @return true to admit the request at @p now_ns, false to shed
     *  it to the degraded fast path. */
    bool admit(uint64_t now_ns);

    /** A client-visible success completed at @p now_ns. */
    void onSuccess(uint64_t now_ns);

    /** A client-visible failure completed at @p now_ns. */
    void onFailure(uint64_t now_ns);

    State state() const { return st; }

    /** How many times the breaker has transitioned to Open. */
    uint64_t timesOpened() const { return opens; }

    /** When the breaker last opened (valid after the first open). */
    uint64_t lastOpenedAtNs() const { return openedAtNs; }

  private:
    void open(uint64_t now_ns);

    BreakerConfig cfg;
    State st = State::Closed;
    unsigned consecFailures = 0;
    unsigned probeSuccesses = 0;
    bool probeInFlight = false;
    uint64_t openedAtNs = 0;
    uint64_t opens = 0;
};

const char *breakerStateName(CircuitBreaker::State state);

/**
 * Per-attempt fault draws from one dedicated substream.
 *
 * A disabled config (no nonzero rate) never touches the stream, so
 * fault-off runs replay the exact byte sequence of a build without
 * the fault layer.
 */
class FaultInjector
{
  public:
    /** The outcome dice for one attempt. */
    struct Draw
    {
        bool restoreCorrupt = false; ///< cold only
        bool coldFail = false;       ///< cold only
        bool straggler = false;
        bool crash = false;
        /** Fraction of the service time before the crash, in
         *  [0.1, 0.9) — a crash always lands mid-request. */
        double crashFrac = 0.5;
    };

    /** @param rng substream dedicated to this injector (Rng::split). */
    FaultInjector(const FaultConfig &config, Rng rng_arg)
        : cfg(config), rng(rng_arg)
    {}

    /** Roll the fault dice for one attempt on the cold or warm path. */
    Draw draw(bool cold);

    bool enabled() const { return cfg.any(); }
    const FaultConfig &config() const { return cfg; }

  private:
    FaultConfig cfg;
    Rng rng;
};

} // namespace svb::load

#endif // SVB_LOAD_FAULT_HH
