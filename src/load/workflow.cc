#include "workflow.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <sstream>

#include "core/parallel.hh"
#include "isa/isa_info.hh"
#include "names.hh"
#include "obs/stat_export.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace svb::load
{

uint64_t
TransferModel::costNs(uint64_t bytes, bool local) const
{
    if (bytes == 0)
        return 0;
    const uint64_t base = local ? localBaseNs : remoteBaseNs;
    const uint64_t rate = local ? localNsPerKib : remoteNsPerKib;
    return base + bytes * rate / 1024;
}

namespace
{

/** FNV-1a over a vector of counters: the determinism probe for the
 *  per-stage critical-path attribution. */
uint64_t
fnvOver(const std::vector<uint64_t> &values)
{
    uint64_t fp = 1469598103934665603ull;
    auto mix = [&fp](uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            fp ^= (v >> (8 * b)) & 0xff;
            fp *= 1099511628211ull;
        }
    };
    mix(values.size());
    for (const uint64_t v : values)
        mix(v);
    return fp;
}

std::map<std::string, uint64_t>
packWorkflowResult(const WorkflowResult &res)
{
    std::map<std::string, uint64_t> f = {
        {"invocations", res.invocations},
        {"succeeded", res.succeeded},
        {"failedWf", res.failedWorkflows},
        {"sheds", res.sheds},
        {"throttles", res.throttles},
        {"retries", res.retries},
        {"crashes", res.crashes},
        {"timeouts", res.timeouts},
        {"coldFails", res.coldStartFailures},
        {"corruptRestores", res.corruptRestores},
        {"stragglers", res.stragglers},
        {"breakerOpens", res.breakerOpens},
        {"nodeFaults", res.nodeFaults},
        {"coldStarts", res.coldStarts},
        {"warmHits", res.warmHits},
        {"evictions", res.evictions},
        {"stages", res.stages},
        {"tasks", res.tasksPerWorkflow},
        {"p50Ns", res.p50Ns},
        {"p90Ns", res.p90Ns},
        {"p99Ns", res.p99Ns},
        {"p999Ns", res.p999Ns},
        {"maxNs", res.maxNs},
        {"throughputMrps",
         uint64_t(std::llround(res.throughputRps * 1000.0))},
        {"histoFp", res.histoFingerprint},
        {"goodP50Ns", res.goodP50Ns},
        {"goodP99Ns", res.goodP99Ns},
        {"errP99Ns", res.errP99Ns},
        {"goodFp", res.goodFingerprint},
        {"critFp", res.critFingerprint},
        {"xferLocal", res.transfersLocal},
        {"xferRemote", res.transfersRemote},
        {"xferLocalBytes", res.bytesLocal},
        {"xferRemoteBytes", res.bytesRemote},
        {"xferNs", res.transferNs},
        {"nodes", res.nodes},
        {"policy", res.policyId},
        {"maxActive", res.maxActiveNodes},
        {"utilPermil",
         uint64_t(std::llround(res.fleetUtilisation * 1000.0))},
        {"classes", res.classes},
        {"powerMw", res.fleetPowerMw},
        {"costMilli", res.fleetCostMilli},
        {"prefHits", res.preferredHits},
        {"prefMisses", res.preferredMisses},
        {"ok", res.ok ? 1u : 0u},
    };
    for (size_t k = 0; k < kMaxCritSlots; ++k)
        f["crit" + std::to_string(k)] =
            k < res.critPermil.size() ? res.critPermil[k] : 0;
    return f;
}

WorkflowResult
unpackWorkflowResult(const std::string &scenario,
                     const std::map<std::string, uint64_t> &f)
{
    WorkflowResult res;
    res.scenario = scenario;
    res.invocations = f.at("invocations");
    res.succeeded = f.at("succeeded");
    res.failedWorkflows = f.at("failedWf");
    res.sheds = f.at("sheds");
    res.throttles = f.at("throttles");
    res.retries = f.at("retries");
    res.crashes = f.at("crashes");
    res.timeouts = f.at("timeouts");
    res.coldStartFailures = f.at("coldFails");
    res.corruptRestores = f.at("corruptRestores");
    res.stragglers = f.at("stragglers");
    res.breakerOpens = f.at("breakerOpens");
    res.nodeFaults = f.at("nodeFaults");
    res.coldStarts = f.at("coldStarts");
    res.warmHits = f.at("warmHits");
    res.evictions = f.at("evictions");
    res.stages = f.at("stages");
    res.tasksPerWorkflow = f.at("tasks");
    res.p50Ns = f.at("p50Ns");
    res.p90Ns = f.at("p90Ns");
    res.p99Ns = f.at("p99Ns");
    res.p999Ns = f.at("p999Ns");
    res.maxNs = f.at("maxNs");
    res.throughputRps = double(f.at("throughputMrps")) / 1000.0;
    res.histoFingerprint = f.at("histoFp");
    res.goodP50Ns = f.at("goodP50Ns");
    res.goodP99Ns = f.at("goodP99Ns");
    res.errP99Ns = f.at("errP99Ns");
    res.goodFingerprint = f.at("goodFp");
    res.critFingerprint = f.at("critFp");
    res.transfersLocal = f.at("xferLocal");
    res.transfersRemote = f.at("xferRemote");
    res.bytesLocal = f.at("xferLocalBytes");
    res.bytesRemote = f.at("xferRemoteBytes");
    res.transferNs = f.at("xferNs");
    res.nodes = f.at("nodes");
    res.policyId = f.at("policy");
    res.maxActiveNodes = f.at("maxActive");
    res.fleetUtilisation = double(f.at("utilPermil")) / 1000.0;
    res.classes = f.at("classes");
    res.fleetPowerMw = f.at("powerMw");
    res.fleetCostMilli = f.at("costMilli");
    res.preferredHits = f.at("prefHits");
    res.preferredMisses = f.at("prefMisses");
    res.ok = f.at("ok") != 0;
    // Attribution shares survive the round-trip for the first
    // kMaxCritSlots stages; anything beyond reads as 0 from a cached
    // row (fresh runs carry the full vector).
    res.critPermil.assign(res.stages, 0);
    for (size_t k = 0; k < std::min<size_t>(res.stages, kMaxCritSlots);
         ++k)
        res.critPermil[k] = f.at("crit" + std::to_string(k));
    return res;
}

/** Server-visible outcome of one task attempt (the load engine's
 *  attempt taxonomy, applied per stage task). */
enum class TaskOutcome
{
    Success,
    ColdFail,
    Crash,
    Timeout,
};

enum class EvKind : uint8_t
{
    TaskStart,
    TaskEnd,
    NodeFault,
};

/**
 * One timeline event. Events are processed in (time, seq) order with
 * seq assigned at push, so ties resolve deterministically at any
 * SVBENCH_JOBS. NodeFault events reuse `wf` as the index into the
 * scenario's nodeFaults list.
 */
struct WfEvent
{
    uint64_t timeNs = 0;
    uint64_t seq = 0;
    uint32_t wf = 0;   ///< workflow instance
    uint32_t task = 0; ///< flat task index within the instance
    unsigned attempt = 0;
    EvKind kind = EvKind::TaskStart;
    TaskOutcome outcome = TaskOutcome::Success;
    unsigned node = 0;
    /** A TaskEnd synthesised by a node crash, replacing the cancelled
     *  original end of the same attempt. */
    bool synthetic = false;
};

struct WfEventLater
{
    bool operator()(const WfEvent &a, const WfEvent &b) const
    {
        if (a.timeNs != b.timeNs)
            return a.timeNs > b.timeNs;
        return a.seq > b.seq;
    }
};

/**
 * The DAG simulation: schedule every stage task of every workflow
 * instance onto the fleet, on one event-driven timeline, mirroring
 * simulateStream() (load_runner.cc) attempt-for-attempt.
 *
 * Byte-identity contract with the load engine: the substream ids,
 * event push order (instance-major source tasks first, node faults
 * after) and per-attempt operation sequence (breaker.admit ->
 * fleet.route -> pool.acquire -> fault draw -> warm-sample draw) are
 * exactly simulateStream's, so a single-stage one-task workflow
 * reproduces the single-function load numbers bit-for-bit (the mix
 * substream goes unused; split substreams are independent, so
 * skipping it perturbs nothing).
 *
 * Critical path: when a task's predecessor countdown reaches zero,
 * the finishing predecessor is recorded as its *determining*
 * predecessor (events resolve in time order, so that is the
 * last-finishing one) and the task's ready time is that instant.
 * Each task's critical contribution is finish - ready, which
 * telescopes along the determining chain to exactly the end-to-end
 * latency; summing per stage over all succeeded instances yields the
 * attribution the bench reports.
 */
WorkflowResult
simulateWorkflow(const WorkflowScenario &s,
                 const std::vector<std::vector<LoadCalibration>> &cals)
{
    WorkflowResult res;
    res.scenario = s.name;
    res.invocations = s.invocations;
    res.policyId = uint64_t(s.fleet.routing);
    res.stages = s.dag.stages.size();
    res.tasksPerWorkflow = s.dag.totalTasks();

    // --- static task layout ---------------------------------------------
    const size_t numStages = s.dag.stages.size();
    const unsigned T = unsigned(s.dag.totalTasks());
    std::vector<unsigned> stageOffset(numStages, 0);
    std::vector<uint32_t> taskStage(T, 0);
    {
        unsigned off = 0;
        for (size_t st = 0; st < numStages; ++st) {
            stageOffset[st] = off;
            for (unsigned k = 0; k < s.dag.stages[st].parallelism; ++k)
                taskStage[off + k] = uint32_t(st);
            off += s.dag.stages[st].parallelism;
        }
    }
    // All-to-all task dataflow across stage edges: every task of every
    // predecessor stage feeds every task of the consumer stage.
    const auto preds = stagePredecessors(s.dag);
    std::vector<std::vector<uint32_t>> predTasks(T);
    std::vector<std::vector<uint32_t>> succTasks(T);
    for (uint32_t t = 0; t < T; ++t) {
        for (const unsigned ps : preds[taskStage[t]]) {
            for (unsigned k = 0; k < s.dag.stages[ps].parallelism; ++k) {
                const uint32_t p = stageOffset[ps] + k;
                predTasks[t].push_back(p);
                succTasks[p].push_back(t);
            }
        }
    }

    // --- per-instance state ---------------------------------------------
    // Substream ids come from the StreamId claim table (load_runner.hh);
    // the mix stream (1) is unused here and the workflow stream (6) is
    // reserved — the current placement policies draw nothing.
    const Rng master(s.seed);
    ArrivalProcess arrivals(s.arrival, master.split(kStreamArrival));
    Rng warmRng = master.split(kStreamWarm);
    FaultInjector faults(s.fault, master.split(kStreamFault));
    Rng retryRng = master.split(kStreamRetry);
    Rng routeRng = master.split(kStreamRoute);
    Fleet fleet(s.fleet, s.pool, unsigned(s.functions.size()));
    const bool fleetOn = s.fleet.engaged();
    svb_assert(cals.size() == fleet.groupCount(),
               "calibration matrix does not match the fleet's classes");
    res.nodes = fleet.nodeCount();
    res.classes = fleet.groupCount();
    res.fleetPowerMw = fleet.fleetPowerMw();
    res.fleetCostMilli = fleet.fleetCostMilli();
    std::vector<CircuitBreaker> breakers(s.functions.size(),
                                         CircuitBreaker(s.breaker));

    obs::Tracer &tracer = obs::Tracer::global();
    obs::TrackId track = obs::badTrack;
    if (tracer.enabled()) {
        std::ostringstream os;
        os << isaName(s.cluster.system.isa) << "/"
           << db::dbKindName(s.cluster.dbKind)
           << (s.cluster.startDb ? 1 : 0)
           << (s.cluster.startMemcached ? 1 : 0) << "/" << s.name
           << "/wflow";
        track = tracer.track(os.str());
    }

    svb_assert(s.retry.maxAttempts >= 1, "retry policy needs >= 1 attempt");

    struct Task
    {
        bool done = false;
        uint64_t readyNs = 0;
        uint64_t finishNs = 0;
        unsigned node = 0;
        /** Predecessor tasks still outstanding before this task can
         *  start. */
        unsigned waiting = 0;
        /** The predecessor whose completion zeroed `waiting` (the
         *  last-finishing one); ~0u for source tasks. */
        uint32_t critPred = ~0u;
        /** Transfer ns charged on the (latest) attempt; read for the
         *  critical-path transfer attribution. */
        uint64_t xferNs = 0;
        BackoffSchedule backoff;
    };
    struct Instance
    {
        uint64_t arrivalNs = 0;
        /** Tasks completed; the instance succeeds at == T. */
        unsigned completed = 0;
        /** A shed / throttle / retry exhaustion already finished this
         *  instance (terminally); siblings still in flight complete
         *  server-side but cannot resurrect it. */
        bool finished = false;
        std::vector<Task> tasks;
    };
    std::vector<Instance> insts(s.invocations);
    for (Instance &in : insts) {
        in.arrivalNs = arrivals.nextArrivalNs();
        in.tasks.assign(T, Task{false, in.arrivalNs, 0, 0, 0, ~0u, 0,
                                BackoffSchedule(s.retry)});
        for (uint32_t t = 0; t < T; ++t)
            in.tasks[t].waiting = unsigned(predTasks[t].size());
    }

    std::priority_queue<WfEvent, std::vector<WfEvent>, WfEventLater>
        events;
    uint64_t seq = 0;
    // Source tasks enter the timeline instance-major (instance i's
    // sources get seq before instance i+1's) — for a single-task DAG
    // this is exactly the load engine's one-event-per-invocation push.
    for (uint32_t i = 0; i < s.invocations; ++i) {
        for (uint32_t t = 0; t < T; ++t) {
            if (predTasks[t].empty())
                events.push({insts[i].arrivalNs, seq++, i, t, 0,
                             EvKind::TaskStart, TaskOutcome::Success, 0,
                             false});
        }
    }
    for (size_t f = 0; f < s.fleet.nodeFaults.size(); ++f)
        events.push({s.fleet.nodeFaults[f].atNs, seq++, uint32_t(f), 0, 0,
                     EvKind::NodeFault, TaskOutcome::Success,
                     s.fleet.nodeFaults[f].node, false});

    std::vector<uint8_t> cancelled(
        size_t(s.invocations) * T * s.retry.maxAttempts, 0);
    auto cancelKey = [&](uint32_t wf, uint32_t task, unsigned attempt) {
        return (size_t(wf) * T + task) * s.retry.maxAttempts + attempt;
    };
    struct Pending
    {
        uint32_t wf;
        uint32_t task;
        unsigned attempt;
        uint64_t serverEndNs;
    };
    std::vector<std::vector<Pending>> pending(fleet.nodeCount());

    auto tag = [&](uint32_t wf, uint32_t task, unsigned attempt) {
        const uint32_t st = taskStage[task];
        std::string t = "w" + std::to_string(wf) + "/" +
                        s.dag.stages[st].name + "." +
                        std::to_string(task - stageOffset[st]);
        if (attempt > 0)
            t += "~" + std::to_string(attempt);
        return t;
    };

    std::vector<uint64_t> critNs(numStages, 0);
    std::vector<uint64_t> critXferNs(numStages, 0);

    uint64_t lastEndNs = 0;
    auto finish = [&](uint64_t end_ns, uint64_t arrival_ns, bool good) {
        res.latency.record(end_ns - arrival_ns);
        (good ? res.goodLatency : res.errorLatency)
            .record(end_ns - arrival_ns);
        if (end_ns > lastEndNs)
            lastEndNs = end_ns;
    };

    while (!events.empty()) {
        const WfEvent ev = events.top();
        events.pop();

        if (ev.kind == EvKind::NodeFault) {
            // ---- node-level fault at ev.timeNs -----------------------
            const NodeFaultEvent &nf = s.fleet.nodeFaults[ev.wf];
            ++res.nodeFaults;
            fleet.applyNodeFault(nf);
            if (track != obs::badTrack)
                tracer.record(track,
                              std::string("node-") +
                                  nodeFaultKindName(nf.kind) + "#" +
                                  std::to_string(ev.wf) + "@n" +
                                  std::to_string(nf.node),
                              "node", ev.timeNs, nf.durationNs);
            if (nf.kind == NodeFaultEvent::Kind::Crash) {
                for (const Pending &p : pending[nf.node]) {
                    cancelled[cancelKey(p.wf, p.task, p.attempt)] = 1;
                    if (p.serverEndNs > ev.timeNs)
                        fleet.truncateBusy(nf.node,
                                           p.serverEndNs - ev.timeNs);
                    fleet.onAttemptEnd(
                        nf.node, s.dag.stages[taskStage[p.task]].fn);
                    ++res.crashes;
                    events.push({ev.timeNs, seq++, p.wf, p.task,
                                 p.attempt, EvKind::TaskEnd,
                                 TaskOutcome::Crash, nf.node, true});
                }
                pending[nf.node].clear();
            }
            continue;
        }

        Instance &in = insts[ev.wf];
        const StageSpec &stage = s.dag.stages[taskStage[ev.task]];
        Task &task = in.tasks[ev.task];
        CircuitBreaker &breaker = breakers[stage.fn];

        if (ev.kind == EvKind::TaskStart) {
            // ---- task attempt start at ev.timeNs ---------------------
            if (in.finished)
                continue; // the workflow already failed terminally

            if (!breaker.admit(ev.timeNs)) {
                // Shed: terminal for the whole workflow instance.
                ++res.sheds;
                in.finished = true;
                const uint64_t end = ev.timeNs + s.breaker.degradedNs;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "shed#" + tag(ev.wf, ev.task,
                                                ev.attempt),
                                  "breaker", ev.timeNs,
                                  s.breaker.degradedNs);
                finish(end, in.arrivalNs, false);
                continue;
            }

            // Payload-affinity placement: prefer the node of the
            // largest-payload predecessor task (ties break on the
            // lowest pred task index — strict-greater replacement).
            unsigned preferred = Fleet::badNode;
            if (stage.placement == StagePlacement::PayloadAffinity) {
                uint64_t bestBytes = 0;
                bool have = false;
                for (const uint32_t p : predTasks[ev.task]) {
                    const uint64_t b =
                        s.dag.stages[taskStage[p]].payloadBytes;
                    if (!have || b > bestBytes) {
                        have = true;
                        bestBytes = b;
                        preferred = in.tasks[p].node;
                    }
                }
            }

            const Fleet::Route rt =
                fleet.route(stage.fn, ev.timeNs, routeRng, preferred);
            if (rt.throttled) {
                // Concurrency limit: fast 429, terminal for the
                // instance (counted in both sheds and throttles).
                ++res.throttles;
                ++res.sheds;
                in.finished = true;
                const uint64_t end = ev.timeNs + s.fleet.throttleNs;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "throttle#" + tag(ev.wf, ev.task,
                                                    ev.attempt),
                                  "throttle", ev.timeNs,
                                  s.fleet.throttleNs);
                finish(end, in.arrivalNs, false);
                continue;
            }
            if (rt.node == Fleet::badNode) {
                svb_assert(rt.retryAtNs >= ev.timeNs,
                           "unroutable task scheduled into the past");
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "scale-wait#" + tag(ev.wf, ev.task,
                                                      ev.attempt),
                                  "scale", ev.timeNs,
                                  rt.retryAtNs - ev.timeNs);
                events.push({rt.retryAtNs, seq++, ev.wf, ev.task,
                             ev.attempt, EvKind::TaskStart,
                             TaskOutcome::Success, 0, false});
                continue;
            }

            // Inter-stage transfer: the consumer pulls every
            // predecessor task's payload, local hand-offs at DRAM
            // cost, cross-node hops at network cost. A retried task
            // re-pulls its inputs (the new attempt may land on a
            // different node).
            uint64_t xferNs = 0;
            for (const uint32_t p : predTasks[ev.task]) {
                const uint64_t bytes =
                    s.dag.stages[taskStage[p]].payloadBytes;
                if (bytes == 0)
                    continue;
                const bool local = in.tasks[p].node == rt.node;
                xferNs += s.transfer.costNs(bytes, local);
                if (local) {
                    ++res.transfersLocal;
                    res.bytesLocal += bytes;
                } else {
                    ++res.transfersRemote;
                    res.bytesRemote += bytes;
                }
            }
            res.transferNs += xferNs;
            task.xferNs = xferNs;
            const uint64_t execStart = ev.timeNs + xferNs;

            InstancePool &pool = fleet.pool(rt.node);
            const InstancePool::Placement pl =
                pool.acquire(stage.fn, execStart);
            // The landed node's CLASS picks the calibrated service
            // model (mixed-ISA fleets replay per-class measurements).
            const LoadCalibration &cal =
                cals[fleet.groupOf(rt.node)][stage.fn];
            const FaultInjector::Draw dice = faults.draw(pl.cold);

            uint64_t service =
                pl.cold ? cal.coldNs
                        : cal.warmNs[warmRng.nextBounded(loadWarmSamples)];
            if (pl.cold && dice.restoreCorrupt) {
                service = uint64_t(double(service) *
                                   s.fault.restoreBootFactor);
                ++res.corruptRestores;
            }
            if (dice.straggler) {
                service =
                    uint64_t(double(service) * s.fault.stragglerFactor);
                ++res.stragglers;
            }
            const double speed = fleet.speedFactor(rt.node);
            if (speed != 1.0)
                service = uint64_t(double(service) * speed);
            service = std::max<uint64_t>(1, service);
            const uint64_t end = pl.startNs + service;

            if (track != obs::badTrack) {
                const std::string t = tag(ev.wf, ev.task, ev.attempt);
                // Class-structured fleets tag route spans with the
                // node's class (legacy traces stay byte-identical).
                if (fleetOn && fleet.classed())
                    tracer.record(
                        track,
                        "route#" + t + "@n" + std::to_string(rt.node),
                        "route", ev.timeNs, 0,
                        {{"class",
                          fleet.nodeClass(fleet.groupOf(rt.node)).name}});
                else if (fleetOn)
                    tracer.record(track,
                                  "route#" + t + "@n" +
                                      std::to_string(rt.node),
                                  "route", ev.timeNs, 0);
                if (xferNs > 0)
                    tracer.record(track, "xfer#" + t, "xfer", ev.timeNs,
                                  xferNs,
                                  {{"stage", stage.name},
                                   {"bytes",
                                    std::to_string(stage.payloadBytes)}});
                if (pl.startNs > execStart)
                    tracer.record(track, "queue#" + t, "queue", execStart,
                                  pl.startNs - execStart);
                tracer.record(track, (pl.cold ? "cold#" : "warm#") + t,
                              pl.cold ? "cold" : "warm", pl.startNs,
                              end - pl.startNs,
                              {{"stage", stage.name}});
            }

            TaskOutcome outcome = TaskOutcome::Success;
            uint64_t clientEnd = end;
            uint64_t serverEnd = end;
            if (pl.cold && dice.coldFail) {
                outcome = TaskOutcome::ColdFail;
                pool.kill(pl.slot, end);
                ++res.coldStartFailures;
            } else if (dice.crash) {
                const uint64_t crashAt =
                    pl.startNs +
                    std::max<uint64_t>(
                        1, uint64_t(double(service) * dice.crashFrac));
                outcome = TaskOutcome::Crash;
                clientEnd = crashAt;
                serverEnd = crashAt;
                pool.kill(pl.slot, crashAt);
                ++res.crashes;
            } else {
                pool.release(pl.slot, end);
            }
            if (s.retry.timeoutNs > 0 &&
                clientEnd > ev.timeNs + s.retry.timeoutNs) {
                outcome = TaskOutcome::Timeout;
                clientEnd = ev.timeNs + s.retry.timeoutNs;
                ++res.timeouts;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "timeout#" + tag(ev.wf, ev.task,
                                                   ev.attempt),
                                  "timeout", ev.timeNs, s.retry.timeoutNs);
            }
            fleet.onAttemptStart(rt.node, stage.fn, pl.startNs, serverEnd);
            pending[rt.node].push_back(
                {ev.wf, ev.task, ev.attempt, serverEnd});
            events.push({clientEnd, seq++, ev.wf, ev.task, ev.attempt,
                         EvKind::TaskEnd, outcome, rt.node, false});
        } else {
            // ---- task attempt end at ev.timeNs -----------------------
            if (!ev.synthetic) {
                if (cancelled[cancelKey(ev.wf, ev.task, ev.attempt)])
                    continue; // superseded by a node-crash end
                std::vector<Pending> &inflight = pending[ev.node];
                for (auto it = inflight.begin(); it != inflight.end();
                     ++it) {
                    if (it->wf == ev.wf && it->task == ev.task &&
                        it->attempt == ev.attempt) {
                        inflight.erase(it);
                        break;
                    }
                }
                fleet.onAttemptEnd(ev.node, stage.fn);
            }
            if (ev.outcome == TaskOutcome::Success) {
                breaker.onSuccess(ev.timeNs);
                task.done = true;
                task.finishNs = ev.timeNs;
                task.node = ev.node;
                if (in.finished)
                    continue; // a sibling already failed the instance
                ++in.completed;
                // Fire consumers whose predecessor countdown reaches
                // zero: this completion is their determining (last)
                // predecessor and their ready instant.
                for (const uint32_t u : succTasks[ev.task]) {
                    Task &next = in.tasks[u];
                    svb_assert(next.waiting > 0,
                               "task fired with no outstanding preds");
                    if (--next.waiting == 0) {
                        next.critPred = ev.task;
                        next.readyNs = ev.timeNs;
                        events.push({ev.timeNs, seq++, ev.wf, u, 0,
                                     EvKind::TaskStart,
                                     TaskOutcome::Success, 0, false});
                    }
                }
                if (in.completed == T) {
                    // Workflow complete: this task finished last. Walk
                    // the determining-predecessor chain; per-task
                    // contributions (finish - ready) telescope to
                    // exactly the end-to-end latency.
                    ++res.succeeded;
                    finish(ev.timeNs, in.arrivalNs, true);
                    uint32_t cur = ev.task;
                    while (cur != ~0u) {
                        const Task &ct = in.tasks[cur];
                        const uint32_t cst = taskStage[cur];
                        svb_assert(ct.finishNs >= ct.readyNs,
                                   "critical task finishes before ready");
                        critNs[cst] += ct.finishNs - ct.readyNs;
                        critXferNs[cst] += ct.xferNs;
                        if (track != obs::badTrack)
                            tracer.record(
                                track, "crit#" + tag(ev.wf, cur, 0),
                                "crit", ct.readyNs,
                                ct.finishNs - ct.readyNs,
                                {{"stage", s.dag.stages[cst].name},
                                 {"xferNs",
                                  std::to_string(ct.xferNs)}});
                        cur = ct.critPred;
                    }
                }
                continue;
            }
            const uint64_t opensBefore = breaker.timesOpened();
            breaker.onFailure(ev.timeNs);
            if (track != obs::badTrack &&
                breaker.timesOpened() > opensBefore)
                tracer.record(track,
                              "breaker-open#" +
                                  std::to_string(breaker.timesOpened()),
                              "breaker", ev.timeNs,
                              s.breaker.openCooldownNs);
            if (in.finished)
                continue; // instance already failed; no further retries
            if (ev.attempt + 1 < s.retry.maxAttempts) {
                // Retry the failed task alone — its completed
                // predecessors are NOT re-run (their outputs are
                // re-pulled at the new attempt's transfer step).
                const uint64_t delay = task.backoff.nextDelayNs(retryRng);
                ++res.retries;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "retry#" + tag(ev.wf, ev.task,
                                                 ev.attempt + 1),
                                  "retry", ev.timeNs, delay);
                events.push({ev.timeNs + delay, seq++, ev.wf, ev.task,
                             ev.attempt + 1, EvKind::TaskStart,
                             TaskOutcome::Success, 0, false});
            } else {
                ++res.failedWorkflows;
                in.finished = true;
                finish(ev.timeNs, in.arrivalNs, false);
            }
        }
    }

    // --- aggregation (the load engine's, plus the attribution) ----------
    uint64_t fleetBusyNs = 0;
    for (unsigned n = 0; n < fleet.nodeCount(); ++n) {
        const PoolStats &ps = fleet.pool(n).stats();
        res.coldStarts += ps.coldStarts;
        res.warmHits += ps.warmHits;
        res.evictions += ps.evictions;
        fleetBusyNs += fleet.nodeStats(n).busyNs;
    }
    for (const CircuitBreaker &breaker : breakers)
        res.breakerOpens += breaker.timesOpened();
    res.p50Ns = res.latency.percentile(50.0);
    res.p90Ns = res.latency.percentile(90.0);
    res.p99Ns = res.latency.percentile(99.0);
    res.p999Ns = res.latency.percentile(99.9);
    res.maxNs = res.latency.maxValue();
    res.goodP50Ns = res.goodLatency.percentile(50.0);
    res.goodP99Ns = res.goodLatency.percentile(99.0);
    res.errP99Ns = res.errorLatency.percentile(99.0);
    res.throughputRps = safeRatePerSec(s.invocations, lastEndNs);
    res.histoFingerprint = res.latency.fingerprint();
    res.goodFingerprint = res.goodLatency.fingerprint();
    res.maxActiveNodes = fleet.maxActiveNodes();
    res.preferredHits = fleet.preferredHits();
    res.preferredMisses = fleet.preferredMisses();
    const uint64_t nodeCapacityNs = lastEndNs * s.pool.maxInstances;
    res.fleetUtilisation =
        safeShare(fleetBusyNs, nodeCapacityNs * fleet.nodeCount());

    // Per-stage attribution: integer permil of the total critical
    // time (floor division — shares sum to <= 1000 deterministically).
    uint64_t critTotal = 0;
    for (const uint64_t v : critNs)
        critTotal += v;
    res.critPermil.assign(numStages, 0);
    for (size_t st = 0; st < numStages; ++st)
        res.critPermil[st] =
            critTotal ? critNs[st] * 1000 / critTotal : 0;
    res.critNsByStage = critNs;
    res.critXferNsByStage = critXferNs;
    res.critFingerprint = fnvOver(critNs);
    res.ok = true;

    // wflow.* StatGroup counters through the observability layer,
    // dumped wherever SVBENCH_STATDUMP points.
    if (!obs::statDumpDir().empty()) {
        StatGroup wstats("wflow");
        auto set = [&wstats](const std::string &name,
                             const std::string &desc, uint64_t v) {
            wstats.addScalar(name, desc) += v;
        };
        set("shape.stages", "stages per workflow", res.stages);
        set("shape.tasks", "tasks per workflow instance",
            res.tasksPerWorkflow);
        set("outcome.succeeded", "workflow instances completed",
            res.succeeded);
        set("outcome.failed", "workflow instances failed",
            res.failedWorkflows);
        set("outcome.sheds", "workflow instances shed/throttled",
            res.sheds);
        set("xfer.local", "same-node payload hand-offs",
            res.transfersLocal);
        set("xfer.remote", "cross-node payload copies",
            res.transfersRemote);
        set("xfer.totalNs", "modelled transfer time charged",
            res.transferNs);
        set("sched.prefHits", "placement hints honoured",
            res.preferredHits);
        set("sched.prefMisses",
            "placement hints that fell back to the routing policy",
            res.preferredMisses);
        if (fleet.classed()) {
            for (unsigned g = 0; g < fleet.groupCount(); ++g) {
                uint64_t routed = 0;
                for (unsigned n = 0; n < fleet.nodeCount(); ++n)
                    if (fleet.groupOf(n) == g)
                        routed += fleet.nodeStats(n).routed;
                set("class." + fleet.nodeClass(g).name + ".routed",
                    "task attempts routed to the class", routed);
            }
        }
        for (size_t st = 0; st < numStages; ++st)
            set("crit." + s.dag.stages[st].name,
                "critical-path ns attributed to the stage", critNs[st]);
        obs::dumpRequestStats("wflow_" + s.name + "_engine",
                              obs::snapshot(wstats));
    }
    return res;
}

} // namespace

WorkflowResult
WorkflowRunner::run(const WorkflowScenario &scenario)
{
    validateScenarioName(scenario.name);
    svb_assert(!scenario.functions.empty(),
               "workflow scenario with no functions");
    svb_assert(scenario.invocations > 0,
               "workflow scenario with no traffic");
    scenario.dag.validate(scenario.functions.size());

    // One calibration pass per fleet class (see load_runner.hh): the
    // [group][fn] matrix the DAG engine indexes by the class of the
    // node each task actually lands on.
    const std::vector<ClusterConfig> clusters =
        calibrationClusters(scenario.cluster, scenario.fleet);
    std::vector<std::vector<LoadCalibration>> cals(clusters.size());
    for (size_t g = 0; g < clusters.size(); ++g) {
        cals[g].reserve(scenario.functions.size());
        for (const LoadMixEntry &entry : scenario.functions) {
            svb_assert(entry.impl != nullptr,
                       "workflow function without workload");
            cals[g].push_back(cache.loadCalibration(clusters[g],
                                                    entry.spec,
                                                    *entry.impl));
            if (!cals[g].back().ok) {
                warn(scenario.name, ": calibration of ", entry.spec.name,
                     " failed; scenario skipped");
                WorkflowResult res;
                res.scenario = scenario.name;
                return res;
            }
        }
    }
    return simulateWorkflow(scenario, cals);
}

std::vector<WorkflowResult>
workflowSweep(ResultCache &cache,
              const std::vector<WorkflowScenario> &scenarios,
              unsigned jobs_override)
{
    for (const WorkflowScenario &s : scenarios) {
        validateScenarioName(s.name);
        s.dag.validate(s.functions.size());
    }

    // --- Phase 1: calibrate every distinct (cluster, function) ----------
    // Class-structured fleets contribute one cluster per class (the
    // clusters are synthesised per scenario, so jobs store the config
    // by value).
    struct CalJob
    {
        ClusterConfig cfg;
        const FunctionSpec *spec;
        const WorkloadImpl *impl;
    };
    std::vector<CalJob> calJobs;
    std::map<std::string, char> seenCal;
    for (const WorkflowScenario &s : scenarios) {
        for (const ClusterConfig &cluster :
             calibrationClusters(s.cluster, s.fleet)) {
            for (const LoadMixEntry &entry : s.functions) {
                const std::string key =
                    cache.loadCalKey(cluster, entry.spec);
                if (!seenCal.emplace(key, 1).second)
                    continue;
                LoadCalibration cached;
                if (!cache.lookupLoadCal(cluster, entry.spec, cached))
                    calJobs.push_back({cluster, &entry.spec, entry.impl});
            }
        }
    }
    if (!calJobs.empty()) {
        const auto cals = parallelIndexed<LoadCalibration>(
            calJobs.size(),
            [&](size_t i) {
                return cache.computeLoadCal(calJobs[i].cfg,
                                            *calJobs[i].spec,
                                            *calJobs[i].impl);
            },
            jobs_override);
        for (size_t i = 0; i < calJobs.size(); ++i)
            cache.recordLoadCal(calJobs[i].cfg, *calJobs[i].spec,
                                cals[i]);
    }

    // --- Phase 2: simulate the scenarios --------------------------------
    std::vector<WorkflowResult> results(scenarios.size());
    std::map<std::string, size_t> primaryForKey;
    std::vector<size_t> primaries;
    std::vector<char> isHit(scenarios.size(), 0);
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const std::string key =
            cache.workflowKey(scenarios[i].cluster, scenarios[i].name);
        std::map<std::string, uint64_t> row;
        if (cache.lookupRow(key, row)) {
            results[i] = unpackWorkflowResult(scenarios[i].name, row);
            isHit[i] = 1;
            continue;
        }
        if (primaryForKey.emplace(key, i).second)
            primaries.push_back(i);
    }
    if (!primaries.empty()) {
        const auto fresh = parallelIndexed<WorkflowResult>(
            primaries.size(),
            [&](size_t k) {
                return WorkflowRunner(cache).run(scenarios[primaries[k]]);
            },
            jobs_override);
        for (size_t k = 0; k < primaries.size(); ++k) {
            const size_t idx = primaries[k];
            results[idx] = fresh[k];
            cache.recordRow(cache.workflowKey(scenarios[idx].cluster,
                                              scenarios[idx].name),
                            packWorkflowResult(fresh[k]));
        }
    }
    for (size_t i = 0; i < scenarios.size(); ++i) {
        if (isHit[i])
            continue;
        const size_t primary = primaryForKey.at(
            cache.workflowKey(scenarios[i].cluster, scenarios[i].name));
        if (primary != i)
            results[i] = results[primary];
    }
    return results;
}

} // namespace svb::load
