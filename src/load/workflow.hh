/**
 * @file
 * The workflow engine: composed serverless functions scheduled as
 * DAGs over the invocation-load timeline.
 *
 * SeBS-Flow (PAPERS.md) benchmarks serverless *workflows* — chains,
 * fan-out/fan-in, map-reduce — and finds end-to-end latency is
 * governed by inter-function payload transfer and stage scheduling,
 * not just per-function service time. This engine composes the
 * existing substrate into exactly that shape:
 *
 *  - a WorkflowSpec (dag.hh) names stages over the scenario's
 *    calibrated functions; an open-loop ArrivalProcess emits workflow
 *    *instances*, each executing every stage task of the DAG;
 *  - stage tasks are scheduled onto the PR-7 Fleet: per-stage
 *    placement is pluggable — Inherit routes through the fleet's
 *    policy, PayloadAffinity co-locates a task with its
 *    largest-payload producer (warm-cache hand-off);
 *  - inter-stage payloads are priced through a modelled transfer
 *    cost: a local (same node) hand-off is a DRAM-speed copy, a
 *    cross-node hop pays network base latency plus a far slower
 *    per-byte rate;
 *  - the fault/retry/breaker layer (fault.hh) applies per stage
 *    task: a failed task retries with backoff WITHOUT re-running its
 *    completed predecessors; exhausted retries fail the workflow;
 *  - per-task spans land on the scenario's obs track, and each
 *    completed workflow's critical path is computed by walking the
 *    last-finishing task's determining-predecessor chain — the
 *    per-stage attribution sums exactly to the end-to-end latency.
 *
 * Determinism contract: all randomness comes from the StreamId
 * substreams of the scenario seed (load_runner.hh) and events resolve
 * in (time, push-seq) order, so results are byte-identical at any
 * SVBENCH_JOBS. A single-stage workflow performs the identical
 * arrival / warm-sample / fault / routing draw sequence and pool
 * operations as the plain load engine, so it reproduces the
 * single-function load-path numbers exactly (tests/test_workflow.cc
 * pins this).
 *
 * Results are memoised in the ResultCache as mode-"wflow" rows
 * (RowSchema-registered); workflowSweep() fans scenarios across
 * SVBENCH_JOBS workers with submission-order recording, keeping the
 * backing CSV byte-identical to a serial sweep.
 */

#ifndef SVB_LOAD_WORKFLOW_HH
#define SVB_LOAD_WORKFLOW_HH

#include <string>
#include <vector>

#include "dag.hh"
#include "load_runner.hh"

namespace svb::load
{

/**
 * Inter-stage payload transfer cost: ns = base + bytes * nsPerKib /
 * 1024, on the local (consumer lands on the producer's node: the
 * payload is handed off through the node's warm cache/DRAM) or remote
 * (cross-node copy over the interconnect) tier. A zero-byte payload
 * moves nothing and costs nothing.
 */
struct TransferModel
{
    /** Same-node hand-off setup (cache-line ownership transfer). */
    uint64_t localBaseNs = 2'000; // 2 us
    /** Same-node per-KiB rate: ~100 GB/s DRAM-resident copy. */
    uint64_t localNsPerKib = 10;
    /** Cross-node setup (RPC + serialisation). */
    uint64_t remoteBaseNs = 60'000; // 60 us
    /** Cross-node per-KiB rate: ~3.2 GB/s network copy. */
    uint64_t remoteNsPerKib = 320;

    /** The modelled cost of moving @p bytes (0 when bytes == 0). */
    uint64_t costNs(uint64_t bytes, bool local) const;
};

/** A complete workflow-scenario description. */
struct WorkflowScenario
{
    /** Row-key component; same contract as LoadScenario::name (no
     *  ',', '|' or '='; must encode every knob that varies within a
     *  sweep — the cache keys rows by (cluster, name) alone). */
    std::string name;
    ClusterConfig cluster;
    /** Calibrated functions the DAG's stages index into. */
    std::vector<LoadMixEntry> functions;
    /** The DAG (validated against functions.size() on run). */
    WorkflowSpec dag;
    /** Arrival process of workflow instances (not of stage tasks). */
    ArrivalConfig arrival;
    PoolConfig pool;
    FaultConfig fault;
    RetryPolicy retry;
    BreakerConfig breaker;
    FleetConfig fleet;
    TransferModel transfer;
    /** Workflow instances to run. */
    uint64_t invocations = 500;
    uint64_t seed = 0xdafULL;
};

/** Per-stage slots the "wflow" cache row reserves for critical-path
 *  attribution; stages beyond this are simulated fine but their
 *  attribution shares are not memoised. */
constexpr size_t kMaxCritSlots = 12;

/** Scenario outcome: end-to-end distributions plus the critical-path
 *  attribution and transfer accounting. */
struct WorkflowResult
{
    std::string scenario;
    /** Workflow instances (NOT stage tasks). */
    uint64_t invocations = 0;
    /** Instances whose every task completed successfully. */
    uint64_t succeeded = 0;
    /** Instances that exhausted a task's retries. */
    uint64_t failedWorkflows = 0;
    /** Instances terminated by a breaker shed or a throttle. */
    uint64_t sheds = 0;
    uint64_t throttles = 0;
    uint64_t retries = 0;
    uint64_t crashes = 0;
    uint64_t timeouts = 0;
    uint64_t coldStartFailures = 0;
    uint64_t corruptRestores = 0;
    uint64_t stragglers = 0;
    uint64_t breakerOpens = 0;
    uint64_t nodeFaults = 0;
    uint64_t coldStarts = 0;
    uint64_t warmHits = 0;
    uint64_t evictions = 0;
    /** DAG shape echoed for cached rows. */
    uint64_t stages = 0;
    uint64_t tasksPerWorkflow = 0;

    /** End-to-end (arrival -> last task completion) percentiles over
     *  all instances, successes and failures alike. */
    uint64_t p50Ns = 0;
    uint64_t p90Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t p999Ns = 0;
    uint64_t maxNs = 0;
    uint64_t goodP50Ns = 0;
    uint64_t goodP99Ns = 0;
    uint64_t errP99Ns = 0;
    /** Completed workflow instances per second of simulated time. */
    double throughputRps = 0.0;
    uint64_t histoFingerprint = 0;
    uint64_t goodFingerprint = 0;
    /** FNV over the per-stage critical-path totals: the determinism
     *  probe for the attribution itself. */
    uint64_t critFingerprint = 0;

    // --- inter-stage transfer accounting --------------------------------
    /** Payload hops served as same-node hand-offs / cross-node copies. */
    uint64_t transfersLocal = 0;
    uint64_t transfersRemote = 0;
    uint64_t bytesLocal = 0;
    uint64_t bytesRemote = 0;
    /** Total modelled transfer time charged. */
    uint64_t transferNs = 0;

    // --- fleet echo (as in LoadResult) ----------------------------------
    uint64_t nodes = 1;
    uint64_t policyId = 0;
    uint64_t maxActiveNodes = 1;
    double fleetUtilisation = 0.0;
    /** Node-class groups of the fleet (1 for a class-less fleet). */
    uint64_t classes = 1;
    /** Provisioned fleet power (milliwatts) / cost (milli-$/h). */
    uint64_t fleetPowerMw = 1000;
    uint64_t fleetCostMilli = 1000;
    /** Placement hints honoured vs fallen back to the routing policy
     *  (PayloadAffinity stages asking for an unroutable producer
     *  node): the observable cost of affinity misses. */
    uint64_t preferredHits = 0;
    uint64_t preferredMisses = 0;

    /**
     * Critical-path attribution: per-stage share (permil of the
     * summed critical time over all succeeded instances; sums to
     * ~1000). Sized to the DAG's stage count; the first kMaxCritSlots
     * survive the cache round-trip, the rest only on fresh runs.
     */
    std::vector<uint64_t> critPermil;
    /** Raw per-stage critical-path nanosecond totals (fresh runs
     *  only; empty when the result came from the CSV cache). */
    std::vector<uint64_t> critNsByStage;
    /** Per-stage transfer ns charged on critical tasks (fresh only). */
    std::vector<uint64_t> critXferNsByStage;

    /** Successful instances as a share of all, in percent. */
    double availabilityPct() const
    {
        return invocations
                   ? 100.0 * double(succeeded) / double(invocations)
                   : 0.0;
    }

    /** Full distributions; empty when served from the CSV cache. */
    LatencyHistogram latency;
    LatencyHistogram goodLatency;
    LatencyHistogram errorLatency;
    bool ok = false;
};

/**
 * Runs one workflow scenario at a time against a shared ResultCache
 * (calibration rows are memoised; the DAG simulation always runs so
 * the full histograms and attribution vectors are populated).
 */
class WorkflowRunner
{
  public:
    explicit WorkflowRunner(ResultCache &cache_arg) : cache(cache_arg) {}

    WorkflowResult run(const WorkflowScenario &scenario);

  private:
    ResultCache &cache;
};

/**
 * Run every scenario, fanned out across SVBENCH_JOBS workers: phase 1
 * calibrates every distinct (cluster, function) in submission order,
 * phase 2 simulates the scenarios concurrently with cached "wflow"
 * rows answered inline and fresh summaries recorded in submission
 * order. The backing CSV is byte-identical to a serial sweep.
 */
std::vector<WorkflowResult>
workflowSweep(ResultCache &cache,
              const std::vector<WorkflowScenario> &scenarios,
              unsigned jobs_override = 0);

} // namespace svb::load

#endif // SVB_LOAD_WORKFLOW_HH
