/**
 * @file
 * The invocation-load runner: sustained request streams against the
 * simulated serverless platform.
 *
 * The Figure-4.1 protocol measures one cold and one warm request per
 * function; production platforms are characterised by *streams* —
 * an arrival rate, a keep-alive policy, and the latency distribution
 * they induce. This runner composes the pieces:
 *
 *  1. Service times are CALIBRATED on the real simulated cluster
 *     (ExperimentRunner::runLoadCalibration): the measured cold-path
 *     latency of request 1 on a freshly restored instance, and a
 *     cycle of measured warm-path latencies. Each cold start restores
 *     the PR-2 prepared-state checkpoint instead of re-booting, so a
 *     warm CheckpointStore makes calibration cheap; rows are memoised
 *     in the ResultCache (mode "ldcal").
 *  2. An open-loop ArrivalProcess emits invocation timestamps; an
 *     InstancePool maps each invocation to the cold or warm path and
 *     to a start time (queueing included); the per-invocation
 *     latency (completion - arrival) feeds a LatencyHistogram.
 *  3. Scenario summaries land in the ResultCache as mode-"load" rows;
 *     loadSweep() fans scenarios out across SVBENCH_JOBS workers and
 *     records rows in submission order, so the CSV is byte-identical
 *     to a serial sweep.
 *
 * Everything downstream of calibration is a pure function of the
 * scenario (seed included): identical seeds give byte-identical
 * histograms and cold-start counts at any worker count.
 */

#ifndef SVB_LOAD_LOAD_RUNNER_HH
#define SVB_LOAD_LOAD_RUNNER_HH

#include <string>
#include <vector>

#include "arrival.hh"
#include "core/result_cache.hh"
#include "histogram.hh"
#include "instance_pool.hh"

namespace svb::load
{

/** One function of a scenario's traffic mix. */
struct LoadMixEntry
{
    FunctionSpec spec;
    const WorkloadImpl *impl = nullptr;
    double weight = 1.0;
};

/** A complete load-scenario description. */
struct LoadScenario
{
    /** Row-key component; no ',', '|' or '=' characters. */
    std::string name;
    ClusterConfig cluster;
    std::vector<LoadMixEntry> mix;
    ArrivalConfig arrival;
    PoolConfig pool;
    uint64_t invocations = 2000;
    uint64_t seed = 0x10adULL;
};

/** Scenario outcome: pool stats plus the latency distribution. */
struct LoadResult
{
    std::string scenario;
    uint64_t invocations = 0;
    uint64_t coldStarts = 0;
    uint64_t warmHits = 0;
    uint64_t evictions = 0;
    uint64_t p50Ns = 0;
    uint64_t p90Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t p999Ns = 0;
    uint64_t maxNs = 0;
    /** Completed invocations per second of simulated load time. */
    double throughputRps = 0.0;
    uint64_t histoFingerprint = 0;
    /** Full distribution; empty when the result came from the CSV
     *  cache (summary fields are always populated). */
    LatencyHistogram latency;
    bool ok = false;
};

/**
 * Runs one scenario at a time against a shared ResultCache.
 */
class LoadRunner
{
  public:
    explicit LoadRunner(ResultCache &cache_arg) : cache(cache_arg) {}

    /**
     * Calibrate (through the cache) and simulate @p scenario. Always
     * simulates the stream — only calibration is memoised — so the
     * full histogram is populated.
     */
    LoadResult run(const LoadScenario &scenario);

  private:
    ResultCache &cache;
};

/**
 * Run every scenario, fanned out across SVBENCH_JOBS workers.
 *
 * Phase 1 calibrates every distinct (cluster, function) of the
 * scenario mixes — concurrently, but recorded in submission order.
 * Phase 2 simulates the scenarios concurrently; cached scenario rows
 * are answered inline, fresh summaries are recorded in submission
 * order. The CSV backing file ends up byte-identical to a serial
 * sweep of the same scenario list.
 */
std::vector<LoadResult> loadSweep(ResultCache &cache,
                                  const std::vector<LoadScenario> &scenarios,
                                  unsigned jobs_override = 0);

} // namespace svb::load

#endif // SVB_LOAD_LOAD_RUNNER_HH
