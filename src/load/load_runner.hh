/**
 * @file
 * The invocation-load runner: sustained request streams against the
 * simulated serverless platform.
 *
 * The Figure-4.1 protocol measures one cold and one warm request per
 * function; production platforms are characterised by *streams* —
 * an arrival rate, a keep-alive policy, and the latency distribution
 * they induce. This runner composes the pieces:
 *
 *  1. Service times are CALIBRATED on the real simulated cluster
 *     (ExperimentRunner::runLoadCalibration): the measured cold-path
 *     latency of request 1 on a freshly restored instance, and a
 *     cycle of measured warm-path latencies. Each cold start restores
 *     the PR-2 prepared-state checkpoint instead of re-booting, so a
 *     warm CheckpointStore makes calibration cheap; rows are memoised
 *     in the ResultCache (mode "ldcal").
 *  2. An open-loop ArrivalProcess emits invocation timestamps; an
 *     InstancePool maps each invocation to the cold or warm path and
 *     to a start time (queueing included); the per-invocation
 *     latency (completion - arrival) feeds a LatencyHistogram.
 *  3. Scenario summaries land in the ResultCache as mode-"load" rows;
 *     loadSweep() fans scenarios out across SVBENCH_JOBS workers and
 *     records rows in submission order, so the CSV is byte-identical
 *     to a serial sweep.
 *
 * Everything downstream of calibration is a pure function of the
 * scenario (seed included): identical seeds give byte-identical
 * histograms and cold-start counts at any worker count.
 *
 * Resilience (fault.hh): a scenario may additionally carry a fault
 * model (failed cold starts, instance crashes, stragglers, corrupt
 * restores), a client retry policy (timeouts, decorrelated-jitter
 * backoff) and a per-function circuit breaker. The stream engine is
 * event-driven — attempt starts and completions interleave on one
 * simulated timeline, failed attempts re-enter it after their
 * backoff, crashed instances go dead in the pool — and splits the
 * latency accounting into goodput vs. error distributions plus an
 * availability figure. With all fault rates zero (the default) the
 * engine replays the exact pre-fault byte stream.
 *
 * Fleet (fleet.hh): a scenario may scale out to N nodes, each with
 * its own InstancePool built from the scenario's PoolConfig, behind
 * a cluster scheduler (random / power-of-two-choices / least-loaded /
 * affinity / cost- and power-weighted routing), per-function
 * concurrency limits, a reactive autoscaler with scale-to-zero and
 * scale-up lag, and scheduled node-level crashes/partitions that
 * compose with the fault layer. Every timeline event carries its node
 * id. The default single-node fleet performs the identical
 * pool-operation and RNG-draw sequence as the pre-fleet engine —
 * byte-identical outputs.
 *
 * Node classes (fleet.hh FleetSpec): a mixed-ISA fleet calibrates one
 * service model PER CLASS — each class with its own SystemConfig gets
 * its own tagged calibration cluster ("<isa>@<class>" cache keys via
 * ClusterConfig::classTag), and every attempt replays the calibrated
 * cold/warm times of the class of the node it actually landed on.
 * calibrationClusters() below is the single source of that mapping;
 * a class-less scenario calibrates exactly the one legacy cluster.
 */

#ifndef SVB_LOAD_LOAD_RUNNER_HH
#define SVB_LOAD_LOAD_RUNNER_HH

#include <string>
#include <vector>

#include "arrival.hh"
#include "core/result_cache.hh"
#include "fault.hh"
#include "fleet.hh"
#include "histogram.hh"
#include "instance_pool.hh"

namespace svb::load
{

/**
 * Registry of the Rng::split substream ids claimed off a scenario's
 * master seed (LoadScenario::seed / WorkflowScenario::seed).
 *
 * Every engine on the load timeline derives ALL of its randomness
 * from `Rng master(seed)` via `master.split(id)`, one dedicated id
 * per concern, so enabling one subsystem can never perturb another's
 * draw sequence (the byte-identity contracts depend on it). This
 * enum is the single claim table — add new subsystems HERE so two
 * engines can't silently collide on a stream id:
 *
 *   id | claimed by      | drawn for
 *   ---+-----------------+------------------------------------------
 *    0 | arrival.hh      | arrival-process inter-arrival times
 *    1 | load_runner.cc  | traffic-mix function choice per invocation
 *    2 | load_runner.cc / workflow.cc | warm-path service samples
 *    3 | fault.hh        | fault-injection dice (per attempt)
 *    4 | load_runner.cc / workflow.cc | retry-backoff jitter
 *    5 | fleet.hh        | routing draws (random / power-of-two)
 *    6 | workflow.cc     | workflow engine (reserved for randomised
 *      |                 | per-stage placement; the current policies
 *      |                 | draw nothing from it)
 */
enum StreamId : uint64_t
{
    kStreamArrival = 0,
    kStreamMix = 1,
    kStreamWarm = 2,
    kStreamFault = 3,
    kStreamRetry = 4,
    kStreamRoute = 5,
    kStreamWorkflow = 6,
};

/**
 * Enforce the scenario-name contract shared by LoadScenario and
 * WorkflowScenario: the name is a CSV row-key component, so the
 * cache metacharacters (',', '|', '=') would silently corrupt
 * build/svbench_results.csv rows. Fatal on violation.
 */
void validateScenarioName(const std::string &name);

/** One function of a scenario's traffic mix. */
struct LoadMixEntry
{
    FunctionSpec spec;
    const WorkloadImpl *impl = nullptr;
    double weight = 1.0;
};

/** A complete load-scenario description. */
struct LoadScenario
{
    /** Row-key component; no ',', '|' or '=' characters (enforced by
     *  LoadRunner::run and loadSweep — a bad name would corrupt the
     *  backing CSV's rows). The cache keys scenario rows by (cluster,
     *  name) alone, so the name must encode every knob below that
     *  varies within a sweep — fault rates, retry/breaker settings
     *  and fleet/routing/autoscaler knobs included. */
    std::string name;
    ClusterConfig cluster;
    std::vector<LoadMixEntry> mix;
    ArrivalConfig arrival;
    PoolConfig pool;
    /** Fault model; all-zero rates (the default) are byte-identical
     *  to a build without the fault layer. */
    FaultConfig fault;
    /** Client-side retry/timeout behaviour (default: no retries). */
    RetryPolicy retry;
    /** Per-function circuit breaker (default: disabled). */
    BreakerConfig breaker;
    /** Fleet shape, routing policy, autoscaler and node faults; the
     *  default (one node, least-loaded router) is byte-identical to
     *  the pre-fleet single-pool engine. `pool` above configures each
     *  node's InstancePool. */
    FleetConfig fleet;
    uint64_t invocations = 2000;
    uint64_t seed = 0x10adULL;
};

/**
 * The calibration platform of one node class over a scenario's base
 * cluster: the base cluster itself when the class carries no system
 * of its own, otherwise the base with the class's SystemConfig and a
 * classTag naming it (so its cache/checkpoint keys are namespaced
 * "<isa>@<class>").
 */
ClusterConfig classCluster(const NodeClass &klass,
                           const ClusterConfig &base);

/**
 * Every calibration platform a scenario needs, one per fleet class
 * group in group order — the [group] axis of the calibration matrix
 * the engines consume. A class-less fleet yields exactly {base}.
 */
std::vector<ClusterConfig> calibrationClusters(const ClusterConfig &base,
                                               const FleetConfig &fleet);

/** @return completions per second over @p span_ns, 0 when the span
 *  is zero (a single-invocation scenario must not report inf/nan). */
double safeRatePerSec(uint64_t events, uint64_t span_ns);

/** @return part/whole as a fraction in [0, 1], 0 when @p whole_ns is
 *  zero; used for the per-node utilisation figures. */
double safeShare(uint64_t part_ns, uint64_t whole_ns);

/** Scenario outcome: pool stats plus the latency distributions. */
struct LoadResult
{
    std::string scenario;
    uint64_t invocations = 0;
    uint64_t coldStarts = 0;
    uint64_t warmHits = 0;
    uint64_t evictions = 0;
    /** Percentiles of the overall (success + error) distribution. */
    uint64_t p50Ns = 0;
    uint64_t p90Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t p999Ns = 0;
    uint64_t maxNs = 0;
    /** Completed invocations per second of simulated load time. */
    double throughputRps = 0.0;
    uint64_t histoFingerprint = 0;

    // --- resilience outcomes (all zero when faults are disabled) ---
    /** Invocations that eventually returned a good response. */
    uint64_t succeeded = 0;
    /** Invocations whose attempts were exhausted without success. */
    uint64_t failedInvocations = 0;
    /** Invocations shed to the degraded fast path (breaker open). */
    uint64_t sheds = 0;
    /** Retry attempts issued (attempts beyond each first one). */
    uint64_t retries = 0;
    /** Injected mid-request instance crashes. */
    uint64_t crashes = 0;
    /** Attempts abandoned by the client-side timeout. */
    uint64_t timeouts = 0;
    /** Injected failed cold starts. */
    uint64_t coldStartFailures = 0;
    /** Cold starts that restored a corrupt checkpoint and re-booted. */
    uint64_t corruptRestores = 0;
    /** Injected straggler slowdowns. */
    uint64_t stragglers = 0;
    /** Circuit-breaker open transitions across the scenario's mix. */
    uint64_t breakerOpens = 0;
    /** Goodput (successful-response) latency percentiles. */
    uint64_t goodP50Ns = 0;
    uint64_t goodP99Ns = 0;
    /** Error-response (failed / shed) latency percentile. */
    uint64_t errP99Ns = 0;
    uint64_t goodFingerprint = 0;

    // --- fleet outcomes (single-node defaults when not scaled out) ---
    /** Fleet size of the scenario. */
    uint64_t nodes = 1;
    /** Routing policy (numeric RoutingPolicy value, for the cache). */
    uint64_t policyId = 0;
    /** Peak concurrently-activated nodes (== nodes without the
     *  autoscaler). */
    uint64_t maxActiveNodes = 1;
    /** Attempts rejected by the per-function concurrency limit (each
     *  also counted as a shed). */
    uint64_t throttles = 0;
    /** Node-level crash/partition events applied. */
    uint64_t nodeFaults = 0;
    /** Fleet-wide utilisation: occupied slot-time over the whole
     *  fleet's wall time (idle capacity counts in the denominator). */
    double fleetUtilisation = 0.0;
    /** Node-class groups of the fleet (1 for a class-less fleet). */
    uint64_t classes = 1;
    /** Provisioned fleet power in milliwatts (sum of count x watts
     *  over the class groups; nodes x 1000 for default 1 W classes). */
    uint64_t fleetPowerMw = 1000;
    /** Provisioned fleet cost in milli-$/h (same shape). */
    uint64_t fleetCostMilli = 1000;
    /** Per-node utilisation shares; empty when the result came from
     *  the CSV cache (like the histograms below). */
    std::vector<double> nodeUtilisation;
    /** Per-class routed-attempt counts and class names, in group
     *  order; empty when cached or class-less (fresh-only detail). */
    std::vector<uint64_t> classRouted;
    std::vector<std::string> classNames;

    /** Successful invocations as a share of all, in percent. */
    double availabilityPct() const
    {
        return invocations
                   ? 100.0 * double(succeeded) / double(invocations)
                   : 0.0;
    }

    /** Full distributions; empty when the result came from the CSV
     *  cache (summary fields are always populated). `latency` holds
     *  every client-visible completion, `goodLatency` successes only,
     *  `errorLatency` failures and sheds. */
    LatencyHistogram latency;
    LatencyHistogram goodLatency;
    LatencyHistogram errorLatency;
    bool ok = false;
};

/**
 * Runs one scenario at a time against a shared ResultCache.
 */
class LoadRunner
{
  public:
    explicit LoadRunner(ResultCache &cache_arg) : cache(cache_arg) {}

    /**
     * Calibrate (through the cache) and simulate @p scenario. Always
     * simulates the stream — only calibration is memoised — so the
     * full histogram is populated.
     */
    LoadResult run(const LoadScenario &scenario);

  private:
    ResultCache &cache;
};

/**
 * Run every scenario, fanned out across SVBENCH_JOBS workers.
 *
 * Phase 1 calibrates every distinct (cluster, function) of the
 * scenario mixes — concurrently, but recorded in submission order.
 * Phase 2 simulates the scenarios concurrently; cached scenario rows
 * are answered inline, fresh summaries are recorded in submission
 * order. The CSV backing file ends up byte-identical to a serial
 * sweep of the same scenario list.
 */
std::vector<LoadResult> loadSweep(ResultCache &cache,
                                  const std::vector<LoadScenario> &scenarios,
                                  unsigned jobs_override = 0);

} // namespace svb::load

#endif // SVB_LOAD_LOAD_RUNNER_HH
