/**
 * @file
 * Reactive autoscaling policy for the multi-node fleet simulation.
 *
 * Commodity FaaS platforms ("Characterizing Commodity Serverless
 * Computing Platforms", PAPERS.md) scale instances and hosts on
 * observed concurrency, not on a schedule: capacity follows demand
 * with a measurable reaction lag, and idle capacity is reclaimed —
 * down to zero for cold deployments. This header models that control
 * loop at node granularity:
 *
 *  - the scaler is evaluated on fixed simulated-time boundaries
 *    (evalPeriodNs), never on wall clocks, so decisions are a pure
 *    function of the event timeline;
 *  - the desired node count tracks client-visible in-flight requests
 *    against a per-node concurrency target (the Knative/KPA-style
 *    "concurrency autoscaler" shape);
 *  - newly activated nodes only become routable after scaleUpLagNs
 *    (host provisioning + image pull), which is what makes bursts
 *    pay a scale-up penalty;
 *  - nodes idle for scaleDownIdleNs are eligible for deactivation,
 *    down to minNodes — with minNodes = 0 the whole fleet scales to
 *    zero and the next arrival pays the full scale-up lag.
 *
 * The class only computes *desired* counts; the Fleet (fleet.hh)
 * applies them — it owns the per-node idle/ready bookkeeping that
 * decides which concrete node to activate or retire.
 *
 * Class-structured fleets (fleet.hh FleetSpec) run one Autoscaler
 * instance PER CLASS GROUP on a shared evaluation clock: each group
 * is sized against its own in-flight demand (with this config's
 * floor/ceiling applied per group), so a quiet class scales to zero
 * while a loaded one holds capacity. A class-less fleet owns exactly
 * one instance — the legacy whole-fleet loop.
 */

#ifndef SVB_LOAD_AUTOSCALER_HH
#define SVB_LOAD_AUTOSCALER_HH

#include <cstdint>

namespace svb::load
{

/** Autoscaler parameters (disabled by default: a fixed fleet). */
struct AutoscalerConfig
{
    bool enabled = false;
    /** Floor of active nodes; 0 allows scale-to-zero. */
    unsigned minNodes = 1;
    /** Ceiling of active nodes; 0 means the whole fleet. */
    unsigned maxNodes = 0;
    /** Simulated time between scaler evaluations. */
    uint64_t evalPeriodNs = 100'000'000; // 100 ms
    /** Client-visible in-flight requests one node is sized for. */
    double targetInFlightPerNode = 2.0;
    /** Activation-to-routable lag of a scaled-up node. */
    uint64_t scaleUpLagNs = 250'000'000; // 250 ms
    /** Idle time after which an active node may be retired. */
    uint64_t scaleDownIdleNs = 1'000'000'000; // 1 s
};

/**
 * The reactive control loop: fixed-period evaluations mapping the
 * observed in-flight concurrency to a desired active-node count.
 *
 * Deterministic by construction — the only inputs are the scenario
 * config, the evaluation boundary times and the in-flight counts the
 * engine feeds in, all of which live on the simulated timeline.
 */
class Autoscaler
{
  public:
    /** @param fleet_size total nodes the fleet owns (the hard cap). */
    Autoscaler(const AutoscalerConfig &config, unsigned fleet_size);

    bool enabled() const { return cfg.enabled; }

    /** @return true while evaluation boundaries <= @p now_ns remain. */
    bool due(uint64_t now_ns) const
    {
        return cfg.enabled && nextEvalAtNs <= now_ns;
    }

    /** The next evaluation boundary (valid while enabled). */
    uint64_t nextEvalNs() const { return nextEvalAtNs; }

    /**
     * Consume one evaluation boundary: advance the evaluation clock
     * and return the desired active-node count for @p in_flight
     * client-visible requests.
     */
    unsigned evaluate(unsigned in_flight);

    /** The desired node count for @p in_flight, without advancing the
     *  clock (pure; exposed for tests). */
    unsigned desiredFor(unsigned in_flight) const;

    /** Effective floor / ceiling after clamping to the fleet size. */
    unsigned minNodes() const { return floorNodes; }
    unsigned maxNodes() const { return capNodes; }

    /** Evaluation boundaries consumed so far. */
    uint64_t evaluations() const { return evals; }

  private:
    AutoscalerConfig cfg;
    unsigned floorNodes = 1;
    unsigned capNodes = 1;
    uint64_t nextEvalAtNs = 0;
    uint64_t evals = 0;
};

} // namespace svb::load

#endif // SVB_LOAD_AUTOSCALER_HH
