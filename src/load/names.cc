#include "names.hh"

namespace svb::load
{

namespace
{

/** Match @p name against name_fn over the enum values [0, count). */
template <typename E, typename NameFn>
bool
parseByName(const std::string &name, unsigned count, NameFn name_fn,
            E &out)
{
    for (unsigned v = 0; v < count; ++v) {
        if (name == name_fn(E(v))) {
            out = E(v);
            return true;
        }
    }
    return false;
}

} // namespace

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::LeastLoaded: return "least-loaded";
      case RoutingPolicy::Random: return "random";
      case RoutingPolicy::PowerOfTwo: return "p2c";
      case RoutingPolicy::Affinity: return "affinity";
      case RoutingPolicy::CostWeighted: return "cost";
      case RoutingPolicy::PowerWeighted: return "power";
    }
    return "?";
}

bool
parseRoutingPolicy(const std::string &name, RoutingPolicy &out)
{
    return parseByName(name, 6, routingPolicyName, out);
}

const char *
keepAlivePolicyName(KeepAlivePolicy policy)
{
    switch (policy) {
      case KeepAlivePolicy::AlwaysCold: return "always-cold";
      case KeepAlivePolicy::AlwaysWarm: return "always-warm";
      case KeepAlivePolicy::FixedTtl: return "fixed-ttl";
      case KeepAlivePolicy::Lru: return "lru";
    }
    return "?";
}

bool
parseKeepAlivePolicy(const std::string &name, KeepAlivePolicy &out)
{
    return parseByName(name, 4, keepAlivePolicyName, out);
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Uniform: return "uniform";
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Burst: return "burst";
    }
    return "?";
}

bool
parseArrivalKind(const std::string &name, ArrivalKind &out)
{
    return parseByName(name, 3, arrivalKindName, out);
}

const char *
nodeFaultKindName(NodeFaultEvent::Kind kind)
{
    switch (kind) {
      case NodeFaultEvent::Kind::Crash: return "crash";
      case NodeFaultEvent::Kind::Partition: return "partition";
    }
    return "?";
}

bool
parseNodeFaultKind(const std::string &name, NodeFaultEvent::Kind &out)
{
    return parseByName(name, 2, nodeFaultKindName, out);
}

const char *
stagePlacementName(StagePlacement placement)
{
    switch (placement) {
      case StagePlacement::Inherit: return "inherit";
      case StagePlacement::PayloadAffinity: return "payload-affinity";
    }
    return "?";
}

bool
parseStagePlacement(const std::string &name, StagePlacement &out)
{
    return parseByName(name, 2, stagePlacementName, out);
}

} // namespace svb::load
