/**
 * @file
 * Open-loop inter-arrival generators for the invocation-load
 * subsystem.
 *
 * Open loop means arrivals are generated independently of completions
 * (the SeBS/serverless-benchmarking convention): a slow platform does
 * not slow the request stream down, it builds a queue — which is
 * exactly how tail latency degrades in production.
 *
 * Determinism contract: a process is a pure function of its
 * ArrivalConfig and the Rng substream it is constructed with.
 * Substreams come from Rng::split(), so the sequence is identical
 * regardless of SVBENCH_JOBS worker count or scheduling.
 */

#ifndef SVB_LOAD_ARRIVAL_HH
#define SVB_LOAD_ARRIVAL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace svb::load
{

/** Shape of the inter-arrival distribution. */
enum class ArrivalKind
{
    Uniform, ///< constant gap 1/rate (closed-form pacing)
    Poisson, ///< exponential gaps (memoryless arrivals)
    Burst,   ///< square-wave modulated Poisson (on/off phases)
};

/** Arrival-process parameters. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Long-run average arrival rate (requests per second). */
    double ratePerSec = 100.0;
    /** Burst only: on-phase rate multiplier. */
    double burstFactor = 8.0;
    /** Burst only: on+off period. */
    uint64_t burstPeriodNs = 1'000'000'000;
    /** Burst only: fraction of the period spent at the burst rate. */
    double burstDuty = 0.1;
};

/**
 * A stream of monotonically increasing arrival timestamps.
 */
class ArrivalProcess
{
  public:
    /** @param rng substream dedicated to this process (Rng::split). */
    ArrivalProcess(const ArrivalConfig &config, Rng rng);

    /** @return the next arrival time (ns); strictly increasing. */
    uint64_t nextArrivalNs();

    /** Generate the first @p n arrival times of a fresh process. */
    static std::vector<uint64_t> generate(const ArrivalConfig &config,
                                          Rng rng, size_t n);

  private:
    /** Draw one inter-arrival gap at the current simulated time. */
    uint64_t gapNs();

    ArrivalConfig cfg;
    Rng rng;
    uint64_t nowNs = 0;
};

} // namespace svb::load

#endif // SVB_LOAD_ARRIVAL_HH
