#include "dag.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace svb::load
{

void
WorkflowSpec::validate(size_t num_fns) const
{
    if (stages.empty())
        svb_fatal("workflow '", name, "': empty DAG (no stages)");

    std::set<std::string> names;
    for (const StageSpec &st : stages) {
        if (st.name.empty())
            svb_fatal("workflow '", name, "': stage with an empty name");
        if (st.name.find_first_of(",|=") != std::string::npos)
            svb_fatal("workflow '", name, "': stage name '", st.name,
                      "' contains a cache metacharacter (',', '|' or '=')");
        if (!names.insert(st.name).second)
            svb_fatal("workflow '", name, "': duplicate stage name '",
                      st.name, "'");
        if (st.parallelism == 0)
            svb_fatal("workflow '", name, "': stage '", st.name,
                      "' has zero parallelism");
        if (st.fn >= num_fns)
            svb_fatal("workflow '", name, "': stage '", st.name,
                      "' names unknown function index ", st.fn, " (have ",
                      num_fns, ")");
    }

    std::set<std::pair<unsigned, unsigned>> seen;
    for (const auto &[from, to] : edges) {
        if (from >= stages.size() || to >= stages.size())
            svb_fatal("workflow '", name, "': edge ", from, "->", to,
                      " names an unknown stage (have ", stages.size(),
                      " stages)");
        if (from == to)
            svb_fatal("workflow '", name, "': self-edge on stage '",
                      stages[from].name, "'");
        if (!seen.insert({from, to}).second)
            svb_fatal("workflow '", name, "': duplicate edge ",
                      stages[from].name, "->", stages[to].name);
    }

    // Cycle detection rides on the topological sort below; a spec
    // that fails to order every stage is cyclic.
    topoOrder(*this);
}

uint64_t
WorkflowSpec::totalTasks() const
{
    uint64_t n = 0;
    for (const StageSpec &st : stages)
        n += st.parallelism;
    return n;
}

std::vector<std::vector<unsigned>>
stagePredecessors(const WorkflowSpec &spec)
{
    std::vector<std::vector<unsigned>> preds(spec.stages.size());
    for (const auto &[from, to] : spec.edges)
        preds[to].push_back(from);
    for (std::vector<unsigned> &p : preds)
        std::sort(p.begin(), p.end());
    return preds;
}

std::vector<std::vector<unsigned>>
stageSuccessors(const WorkflowSpec &spec)
{
    std::vector<std::vector<unsigned>> succs(spec.stages.size());
    for (const auto &[from, to] : spec.edges)
        succs[from].push_back(to);
    for (std::vector<unsigned> &s : succs)
        std::sort(s.begin(), s.end());
    return succs;
}

std::vector<unsigned>
topoOrder(const WorkflowSpec &spec)
{
    std::vector<unsigned> indeg(spec.stages.size(), 0);
    for (const auto &edge : spec.edges)
        ++indeg[edge.second];

    // Kahn's algorithm with an ordered ready set: the emitted order
    // is a pure function of the spec, independent of edge order.
    std::set<unsigned> ready;
    for (unsigned i = 0; i < spec.stages.size(); ++i) {
        if (indeg[i] == 0)
            ready.insert(i);
    }
    const auto succs = stageSuccessors(spec);
    std::vector<unsigned> order;
    order.reserve(spec.stages.size());
    while (!ready.empty()) {
        const unsigned s = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(s);
        for (const unsigned t : succs[s]) {
            if (--indeg[t] == 0)
                ready.insert(t);
        }
    }
    if (order.size() != spec.stages.size())
        svb_fatal("workflow '", spec.name, "': cycle through ",
                  spec.stages.size() - order.size(), " stage(s)");
    return order;
}

namespace
{

uint32_t
fnAt(const std::vector<uint32_t> &fns, size_t i)
{
    svb_assert(!fns.empty(), "workflow shape with no functions");
    return fns[i % fns.size()];
}

} // namespace

WorkflowSpec
chainSpec(const std::string &name, unsigned length,
          const std::vector<uint32_t> &fns, uint64_t payload_bytes)
{
    svb_assert(length >= 1, "chain needs at least one stage");
    WorkflowSpec spec;
    spec.name = name;
    for (unsigned i = 0; i < length; ++i) {
        spec.stages.push_back({"s" + std::to_string(i), fnAt(fns, i), 1,
                               payload_bytes, StagePlacement::Inherit});
        if (i > 0)
            spec.edges.push_back({i - 1, i});
    }
    return spec;
}

WorkflowSpec
fanOutSpec(const std::string &name, unsigned width,
           const std::vector<uint32_t> &fns, uint64_t payload_bytes)
{
    svb_assert(width >= 1, "fan-out needs at least one worker");
    WorkflowSpec spec;
    spec.name = name;
    spec.stages.push_back({"split", fnAt(fns, 0), 1, payload_bytes,
                           StagePlacement::Inherit});
    spec.stages.push_back({"work", fnAt(fns, 1), width, payload_bytes,
                           StagePlacement::Inherit});
    spec.stages.push_back({"join", fnAt(fns, 2), 1, payload_bytes,
                           StagePlacement::Inherit});
    spec.edges = {{0, 1}, {1, 2}};
    return spec;
}

WorkflowSpec
mapReduceSpec(const std::string &name, unsigned mappers, unsigned reducers,
              const std::vector<uint32_t> &fns, uint64_t payload_bytes)
{
    svb_assert(mappers >= 1 && reducers >= 1,
               "map-reduce needs at least one mapper and one reducer");
    WorkflowSpec spec;
    spec.name = name;
    spec.stages.push_back({"ingest", fnAt(fns, 0), 1, payload_bytes,
                           StagePlacement::Inherit});
    spec.stages.push_back({"map", fnAt(fns, 1), mappers, payload_bytes,
                           StagePlacement::Inherit});
    spec.stages.push_back({"reduce", fnAt(fns, 2), reducers,
                           payload_bytes, StagePlacement::Inherit});
    spec.stages.push_back({"merge", fnAt(fns, 3), 1, payload_bytes,
                           StagePlacement::Inherit});
    spec.edges = {{0, 1}, {1, 2}, {2, 3}};
    return spec;
}

} // namespace svb::load
