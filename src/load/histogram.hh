/**
 * @file
 * Log-bucketed latency histogram for the invocation-load subsystem.
 *
 * Tail percentiles (p99, p99.9) are the quantities that matter under
 * sustained load, and they must survive two constraints: (1) millions
 * of samples at nanosecond resolution cannot be kept individually, and
 * (2) the parallel scheduler merges per-worker partials, so the data
 * structure has to be exactly mergeable — merge(a, b) must equal the
 * histogram a single pass over both sample sets would have produced
 * (tests/test_property_sweeps.cc enforces this).
 *
 * The bucket layout is HdrHistogram-style: values below 2^kSubBits
 * are exact (one bucket per value); above that, each power-of-two
 * octave is divided into 2^kSubBits sub-buckets, bounding the relative
 * quantisation error of any percentile at 1/2^kSubBits (~3.1%).
 */

#ifndef SVB_LOAD_HISTOGRAM_HH
#define SVB_LOAD_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svb::load
{

/**
 * Fixed-layout histogram of uint64 latency samples (nanoseconds).
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits buckets per octave. */
    static constexpr unsigned kSubBits = 5;
    static constexpr uint64_t kSubBuckets = 1ull << kSubBits;

    LatencyHistogram();

    /** Add one sample. */
    void record(uint64_t ns);

    /** Add every bucket of @p other; exact (no re-quantisation). */
    void merge(const LatencyHistogram &other);

    /** Total recorded samples. */
    uint64_t count() const { return total; }

    /** Exact smallest / largest recorded sample (0 when empty). */
    uint64_t minValue() const { return total ? minNs : 0; }
    uint64_t maxValue() const { return total ? maxNs : 0; }

    /** Mean of all samples (exact sum / count). */
    double mean() const;

    /**
     * The value at percentile @p p in [0, 100]: the inclusive upper
     * bound of the bucket holding the ceil(p/100 * count)-th smallest
     * sample. Guaranteed >= the true order statistic and within one
     * bucket width (relative error <= 1/kSubBuckets) above it. When
     * that bound saturated to UINT64_MAX (top-octave buckets), the
     * exact recorded maxValue() is reported instead.
     */
    uint64_t percentile(double p) const;

    /** FNV-1a hash over (bucket counts, total): byte-identity probe
     *  for the determinism contract of bench/load_tail_latency. */
    uint64_t fingerprint() const;

    /** Bucket index a value lands in (exposed for tests). */
    static size_t bucketIndex(uint64_t ns);
    /** Inclusive [low, high] value range of bucket @p index. */
    static uint64_t bucketLow(size_t index);
    static uint64_t bucketHigh(size_t index);
    /** Number of buckets in the fixed layout. */
    static size_t numBuckets();

    bool operator==(const LatencyHistogram &other) const;

  private:
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    uint64_t sumNs = 0;
    uint64_t minNs = ~uint64_t(0);
    uint64_t maxNs = 0;
};

} // namespace svb::load

#endif // SVB_LOAD_HISTOGRAM_HH
