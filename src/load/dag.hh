/**
 * @file
 * Workflow DAG model for the invocation-load subsystem.
 *
 * Production serverless traffic is dominated by *compositions* of
 * functions — chains, fan-out/fan-in and map-reduce pipelines — and
 * SeBS-Flow (PAPERS.md) shows end-to-end workflow latency is governed
 * by inter-function transfer and stage scheduling, not just per-stage
 * service time. This header is the shape layer of that extension: a
 * WorkflowSpec is a DAG of stages, each naming a calibrated function,
 * a parallelism degree (fan-out / map stages spawn that many tasks)
 * and the payload each task hands to every consumer task downstream.
 *
 * The graph is validated eagerly and loudly: empty DAGs, duplicate
 * stage names, edges naming unknown stages, self-edges, duplicate
 * edges and cycles are all configuration errors (svb_fatal with a
 * named message), never silent misbehaviour inside the engine.
 *
 * Everything here is plain data plus pure graph algorithms; the
 * engine that schedules a WorkflowSpec onto the fleet lives in
 * workflow.hh.
 */

#ifndef SVB_LOAD_DAG_HH
#define SVB_LOAD_DAG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace svb::load
{

/** How a stage's tasks are placed onto the fleet. */
enum class StagePlacement
{
    /** Use the scenario fleet's routing policy unchanged. */
    Inherit,
    /** Co-locate each task with the node of its largest-payload
     *  producer task (warm-cache hand-off instead of a cross-node
     *  copy); falls back to the fleet policy when that node is not
     *  routable or the stage has no producers. */
    PayloadAffinity,
};

/** One stage of a workflow. */
struct StageSpec
{
    /** Stage label; must be unique within the spec and free of the
     *  result-cache metacharacters (',', '|', '='). */
    std::string name;
    /** Index into the scenario's calibrated function list. */
    uint32_t fn = 0;
    /** Tasks spawned when the stage fires (fan-out / map width). */
    unsigned parallelism = 1;
    /** Bytes each task of this stage hands to EACH task of every
     *  consumer stage (the inter-stage transfer the engine prices). */
    uint64_t payloadBytes = 0;
    /** Placement of this stage's tasks. */
    StagePlacement placement = StagePlacement::Inherit;
};

/**
 * A workflow: stages plus producer->consumer edges between them.
 *
 * Task-level dataflow is all-to-all across an edge: every task of the
 * producer stage feeds every task of the consumer stage (the shuffle
 * of a map-reduce, the gather of a fan-in). A consumer task becomes
 * ready only when every task of every producer stage has completed.
 */
struct WorkflowSpec
{
    std::string name;
    std::vector<StageSpec> stages;
    /** (producer stage index, consumer stage index) pairs. */
    std::vector<std::pair<unsigned, unsigned>> edges;

    /**
     * Reject malformed specs with a named fatal error: empty DAG,
     * duplicate or metacharacter-bearing stage names, zero
     * parallelism, function index >= @p num_fns, edges naming
     * unknown stages, self-edges, duplicate edges, cycles.
     */
    void validate(size_t num_fns) const;

    /** Total tasks one workflow instance executes. */
    uint64_t totalTasks() const;
};

/**
 * Deterministic topological order of @p spec's stages: Kahn's
 * algorithm, always consuming the smallest ready stage index first.
 * Calls validate-grade cycle detection implicitly — a cyclic spec is
 * a fatal error here too.
 */
std::vector<unsigned> topoOrder(const WorkflowSpec &spec);

/** Predecessor stage lists, indexed by consumer stage. */
std::vector<std::vector<unsigned>> stagePredecessors(const WorkflowSpec &spec);

/** Successor stage lists, indexed by producer stage. */
std::vector<std::vector<unsigned>> stageSuccessors(const WorkflowSpec &spec);

// --- canonical shapes -----------------------------------------------------
// The three workflow families the SeBS-Flow literature benchmarks,
// parameterised over the scenario's function list. @p fns is cycled
// when shorter than the stage count.

/** length-stage linear chain: s0 -> s1 -> ... */
WorkflowSpec chainSpec(const std::string &name, unsigned length,
                       const std::vector<uint32_t> &fns,
                       uint64_t payload_bytes);

/** split -> width parallel workers -> join. */
WorkflowSpec fanOutSpec(const std::string &name, unsigned width,
                        const std::vector<uint32_t> &fns,
                        uint64_t payload_bytes);

/** ingest -> map (mappers wide) -> reduce (reducers wide) -> merge,
 *  with the all-to-all map->reduce shuffle edge. */
WorkflowSpec mapReduceSpec(const std::string &name, unsigned mappers,
                           unsigned reducers,
                           const std::vector<uint32_t> &fns,
                           uint64_t payload_bytes);

} // namespace svb::load

#endif // SVB_LOAD_DAG_HH
