#include "load_runner.hh"

#include <cmath>
#include <map>
#include <sstream>

#include "core/parallel.hh"
#include "isa/isa_info.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace svb::load
{

namespace
{

std::map<std::string, uint64_t>
packLoadResult(const LoadResult &res)
{
    return {
        {"invocations", res.invocations},
        {"coldStarts", res.coldStarts},
        {"warmHits", res.warmHits},
        {"evictions", res.evictions},
        {"p50Ns", res.p50Ns},
        {"p90Ns", res.p90Ns},
        {"p99Ns", res.p99Ns},
        {"p999Ns", res.p999Ns},
        {"maxNs", res.maxNs},
        {"throughputMrps",
         uint64_t(std::llround(res.throughputRps * 1000.0))},
        {"histoFp", res.histoFingerprint},
        {"ok", res.ok ? 1u : 0u},
    };
}

LoadResult
unpackLoadResult(const std::string &scenario,
                 const std::map<std::string, uint64_t> &fields)
{
    LoadResult res;
    res.scenario = scenario;
    res.invocations = fields.at("invocations");
    res.coldStarts = fields.at("coldStarts");
    res.warmHits = fields.at("warmHits");
    res.evictions = fields.at("evictions");
    res.p50Ns = fields.at("p50Ns");
    res.p90Ns = fields.at("p90Ns");
    res.p99Ns = fields.at("p99Ns");
    res.p999Ns = fields.at("p999Ns");
    res.maxNs = fields.at("maxNs");
    res.throughputRps = double(fields.at("throughputMrps")) / 1000.0;
    res.histoFingerprint = fields.at("histoFp");
    res.ok = fields.at("ok") != 0;
    return res;
}

/**
 * The pure load simulation: replay calibrated service times through
 * the arrival process and instance pool. Deterministic in (scenario,
 * calibrations) alone — all randomness comes from seed-derived
 * substreams, never from threads or wall clocks.
 */
LoadResult
simulateStream(const LoadScenario &s,
               const std::vector<LoadCalibration> &cals)
{
    LoadResult res;
    res.scenario = s.name;
    res.invocations = s.invocations;

    const Rng master(s.seed);
    ArrivalProcess arrivals(s.arrival, master.split(0));
    Rng mixRng = master.split(1);
    Rng warmRng = master.split(2);
    InstancePool pool(s.pool);

    // Per-scenario trace track (simulated nanoseconds): queue spans
    // when an invocation waits for a slot, plus one cold/warm span
    // per invocation. All times come from the load timeline, so the
    // track is deterministic in (scenario, calibrations).
    obs::Tracer &tracer = obs::Tracer::global();
    obs::TrackId track = obs::badTrack;
    if (tracer.enabled()) {
        std::ostringstream os;
        os << isaName(s.cluster.system.isa) << "/"
           << db::dbKindName(s.cluster.dbKind)
           << (s.cluster.startDb ? 1 : 0)
           << (s.cluster.startMemcached ? 1 : 0) << "/" << s.name
           << "/load";
        track = tracer.track(os.str());
    }

    double totalWeight = 0.0;
    for (const LoadMixEntry &entry : s.mix)
        totalWeight += entry.weight;
    svb_assert(totalWeight > 0.0, "load mix has no weight");

    uint64_t lastEndNs = 0;
    for (uint64_t i = 0; i < s.invocations; ++i) {
        const uint64_t arrival = arrivals.nextArrivalNs();

        uint32_t fn = 0;
        double u = mixRng.nextDouble() * totalWeight;
        for (size_t m = 0; m + 1 < s.mix.size(); ++m) {
            u -= s.mix[m].weight;
            if (u < 0.0)
                break;
            fn = uint32_t(m + 1);
        }

        const InstancePool::Placement pl = pool.acquire(fn, arrival);
        const LoadCalibration &cal = cals[fn];
        const uint64_t service =
            pl.cold ? cal.coldNs
                    : cal.warmNs[warmRng.nextBounded(loadWarmSamples)];
        const uint64_t end = pl.startNs + std::max<uint64_t>(1, service);
        pool.release(pl.slot, end);

        if (track != obs::badTrack) {
            if (pl.startNs > arrival)
                tracer.record(track, "queue#" + std::to_string(i), "queue",
                              arrival, pl.startNs - arrival);
            tracer.record(track,
                          (pl.cold ? "cold#" : "warm#") + std::to_string(i),
                          pl.cold ? "cold" : "warm", pl.startNs,
                          end - pl.startNs);
        }

        res.latency.record(end - arrival);
        if (end > lastEndNs)
            lastEndNs = end;
    }

    res.coldStarts = pool.stats().coldStarts;
    res.warmHits = pool.stats().warmHits;
    res.evictions = pool.stats().evictions;
    res.p50Ns = res.latency.percentile(50.0);
    res.p90Ns = res.latency.percentile(90.0);
    res.p99Ns = res.latency.percentile(99.0);
    res.p999Ns = res.latency.percentile(99.9);
    res.maxNs = res.latency.maxValue();
    res.throughputRps =
        lastEndNs ? double(s.invocations) * 1e9 / double(lastEndNs) : 0.0;
    res.histoFingerprint = res.latency.fingerprint();
    res.ok = true;
    return res;
}

} // namespace

LoadResult
LoadRunner::run(const LoadScenario &scenario)
{
    svb_assert(!scenario.mix.empty(), "load scenario with empty mix");
    svb_assert(scenario.invocations > 0, "load scenario with no traffic");

    std::vector<LoadCalibration> cals;
    cals.reserve(scenario.mix.size());
    for (const LoadMixEntry &entry : scenario.mix) {
        svb_assert(entry.impl != nullptr, "mix entry without workload");
        cals.push_back(cache.loadCalibration(scenario.cluster, entry.spec,
                                             *entry.impl));
        if (!cals.back().ok) {
            warn(scenario.name, ": calibration of ", entry.spec.name,
                 " failed; scenario skipped");
            LoadResult res;
            res.scenario = scenario.name;
            return res;
        }
    }
    return simulateStream(scenario, cals);
}

std::vector<LoadResult>
loadSweep(ResultCache &cache, const std::vector<LoadScenario> &scenarios,
          unsigned jobs_override)
{
    // --- Phase 1: calibrate every distinct (cluster, function) ----------
    // Concurrent compute, submission-order record: ldcal CSV rows are
    // identical to a serial sweep's at any worker count.
    struct CalJob
    {
        const ClusterConfig *cfg;
        const FunctionSpec *spec;
        const WorkloadImpl *impl;
    };
    std::vector<CalJob> calJobs;
    std::map<std::string, char> seenCal;
    for (const LoadScenario &s : scenarios) {
        for (const LoadMixEntry &entry : s.mix) {
            const std::string key =
                cache.loadCalKey(s.cluster, entry.spec);
            if (!seenCal.emplace(key, 1).second)
                continue;
            LoadCalibration cached;
            if (!cache.lookupLoadCal(s.cluster, entry.spec, cached))
                calJobs.push_back({&s.cluster, &entry.spec, entry.impl});
        }
    }
    if (!calJobs.empty()) {
        const auto cals = parallelIndexed<LoadCalibration>(
            calJobs.size(),
            [&](size_t i) {
                return cache.computeLoadCal(*calJobs[i].cfg,
                                            *calJobs[i].spec,
                                            *calJobs[i].impl);
            },
            jobs_override);
        for (size_t i = 0; i < calJobs.size(); ++i)
            cache.recordLoadCal(*calJobs[i].cfg, *calJobs[i].spec,
                                cals[i]);
    }

    // --- Phase 2: simulate the scenarios --------------------------------
    std::vector<LoadResult> results(scenarios.size());
    std::map<std::string, size_t> primaryForKey;
    std::vector<size_t> primaries;
    std::vector<char> isHit(scenarios.size(), 0);
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const std::string key =
            cache.loadKey(scenarios[i].cluster, scenarios[i].name);
        std::map<std::string, uint64_t> row;
        if (cache.lookupLoadRow(key, row)) {
            results[i] = unpackLoadResult(scenarios[i].name, row);
            isHit[i] = 1;
            continue;
        }
        if (primaryForKey.emplace(key, i).second)
            primaries.push_back(i);
    }
    if (!primaries.empty()) {
        const auto fresh = parallelIndexed<LoadResult>(
            primaries.size(),
            [&](size_t k) {
                return LoadRunner(cache).run(scenarios[primaries[k]]);
            },
            jobs_override);
        for (size_t k = 0; k < primaries.size(); ++k) {
            const size_t idx = primaries[k];
            results[idx] = fresh[k];
            cache.recordLoadRow(
                cache.loadKey(scenarios[idx].cluster, scenarios[idx].name),
                packLoadResult(fresh[k]));
        }
    }
    for (size_t i = 0; i < scenarios.size(); ++i) {
        if (isHit[i])
            continue;
        const size_t primary = primaryForKey.at(
            cache.loadKey(scenarios[i].cluster, scenarios[i].name));
        if (primary != i)
            results[i] = results[primary];
    }
    return results;
}

} // namespace svb::load
