#include "load_runner.hh"

#include <cmath>
#include <map>
#include <queue>
#include <sstream>

#include "core/parallel.hh"
#include "isa/isa_info.hh"
#include "names.hh"
#include "obs/stat_export.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace svb::load
{

namespace
{

std::map<std::string, uint64_t>
packLoadResult(const LoadResult &res)
{
    return {
        {"invocations", res.invocations},
        {"coldStarts", res.coldStarts},
        {"warmHits", res.warmHits},
        {"evictions", res.evictions},
        {"p50Ns", res.p50Ns},
        {"p90Ns", res.p90Ns},
        {"p99Ns", res.p99Ns},
        {"p999Ns", res.p999Ns},
        {"maxNs", res.maxNs},
        {"throughputMrps",
         uint64_t(std::llround(res.throughputRps * 1000.0))},
        {"histoFp", res.histoFingerprint},
        {"succeeded", res.succeeded},
        {"failedInv", res.failedInvocations},
        {"sheds", res.sheds},
        {"retries", res.retries},
        {"crashes", res.crashes},
        {"timeouts", res.timeouts},
        {"coldFails", res.coldStartFailures},
        {"corruptRestores", res.corruptRestores},
        {"stragglers", res.stragglers},
        {"breakerOpens", res.breakerOpens},
        {"goodP50Ns", res.goodP50Ns},
        {"goodP99Ns", res.goodP99Ns},
        {"errP99Ns", res.errP99Ns},
        {"goodFp", res.goodFingerprint},
        {"nodes", res.nodes},
        {"policy", res.policyId},
        {"maxActive", res.maxActiveNodes},
        {"throttles", res.throttles},
        {"nodeFaults", res.nodeFaults},
        {"utilPermil",
         uint64_t(std::llround(res.fleetUtilisation * 1000.0))},
        {"classes", res.classes},
        {"powerMw", res.fleetPowerMw},
        {"costMilli", res.fleetCostMilli},
        {"ok", res.ok ? 1u : 0u},
    };
}

LoadResult
unpackLoadResult(const std::string &scenario,
                 const std::map<std::string, uint64_t> &fields)
{
    LoadResult res;
    res.scenario = scenario;
    res.invocations = fields.at("invocations");
    res.coldStarts = fields.at("coldStarts");
    res.warmHits = fields.at("warmHits");
    res.evictions = fields.at("evictions");
    res.p50Ns = fields.at("p50Ns");
    res.p90Ns = fields.at("p90Ns");
    res.p99Ns = fields.at("p99Ns");
    res.p999Ns = fields.at("p999Ns");
    res.maxNs = fields.at("maxNs");
    res.throughputRps = double(fields.at("throughputMrps")) / 1000.0;
    res.histoFingerprint = fields.at("histoFp");
    res.succeeded = fields.at("succeeded");
    res.failedInvocations = fields.at("failedInv");
    res.sheds = fields.at("sheds");
    res.retries = fields.at("retries");
    res.crashes = fields.at("crashes");
    res.timeouts = fields.at("timeouts");
    res.coldStartFailures = fields.at("coldFails");
    res.corruptRestores = fields.at("corruptRestores");
    res.stragglers = fields.at("stragglers");
    res.breakerOpens = fields.at("breakerOpens");
    res.goodP50Ns = fields.at("goodP50Ns");
    res.goodP99Ns = fields.at("goodP99Ns");
    res.errP99Ns = fields.at("errP99Ns");
    res.goodFingerprint = fields.at("goodFp");
    res.nodes = fields.at("nodes");
    res.policyId = fields.at("policy");
    res.maxActiveNodes = fields.at("maxActive");
    res.throttles = fields.at("throttles");
    res.nodeFaults = fields.at("nodeFaults");
    res.fleetUtilisation = double(fields.at("utilPermil")) / 1000.0;
    res.classes = fields.at("classes");
    res.fleetPowerMw = fields.at("powerMw");
    res.fleetCostMilli = fields.at("costMilli");
    res.ok = fields.at("ok") != 0;
    return res;
}

/** Client-visible outcome of one attempt. */
enum class AttemptOutcome
{
    Success,
    ColdFail, ///< injected failed cold start
    Crash,    ///< instance crash (injected, or a node-level crash)
    Timeout,  ///< client abandoned the attempt (per-attempt timeout)
};

/** What a timeline event is. */
enum class EvKind : uint8_t
{
    /** Admit through the breaker, route across the fleet, place on
     *  the node's pool, roll the fault dice. */
    AttemptStart,
    /** Apply the client-visible outcome to the breaker and either
     *  finish the invocation or schedule its retry. */
    AttemptEnd,
    /** Apply a scheduled node-level crash/partition. */
    NodeFault,
};

/**
 * One timeline event of the stream engine. Events are processed in
 * (time, seq) order — seq is the push order, so ties resolve
 * deterministically at any SVBENCH_JOBS value. Attempt events carry
 * the node the attempt runs on; NodeFault events reuse `inv` as the
 * index into the scenario's nodeFaults list.
 */
struct StreamEvent
{
    uint64_t timeNs = 0;
    uint64_t seq = 0;
    uint32_t inv = 0;
    unsigned attempt = 0;
    EvKind kind = EvKind::AttemptStart;
    AttemptOutcome outcome = AttemptOutcome::Success;
    /** Node of an attempt event (unused for NodeFault events). */
    unsigned node = 0;
    /** An AttemptEnd synthesised by a node crash, replacing the
     *  cancelled original end of the same attempt. */
    bool synthetic = false;
};

struct StreamEventLater
{
    bool operator()(const StreamEvent &a, const StreamEvent &b) const
    {
        if (a.timeNs != b.timeNs)
            return a.timeNs > b.timeNs;
        return a.seq > b.seq;
    }
};

/**
 * The pure load simulation: replay calibrated service times through
 * the arrival process, instance pool, fault model, retry policy and
 * circuit breakers on one event-driven simulated timeline.
 * Deterministic in (scenario, calibrations) alone — all randomness
 * comes from seed-derived substreams, never from threads or wall
 * clocks. With every fault rate zero and retries/breaker at their
 * defaults, the engine performs the identical sequence of pool
 * operations and RNG draws as the pre-fault single-pass loop, so the
 * histograms and fingerprints are byte-identical to it.
 */
LoadResult
simulateStream(const LoadScenario &s,
               const std::vector<std::vector<LoadCalibration>> &cals)
{
    LoadResult res;
    res.scenario = s.name;
    res.invocations = s.invocations;
    res.policyId = uint64_t(s.fleet.routing);

    // Substream ids come from the StreamId claim table (load_runner.hh).
    const Rng master(s.seed);
    ArrivalProcess arrivals(s.arrival, master.split(kStreamArrival));
    Rng mixRng = master.split(kStreamMix);
    Rng warmRng = master.split(kStreamWarm);
    // Fault and retry randomness lives on streams of its own: runs
    // with faults disabled never touch them, and enabling faults
    // never perturbs the arrival / mix / warm-sample sequences.
    FaultInjector faults(s.fault, master.split(kStreamFault));
    Rng retryRng = master.split(kStreamRetry);
    // Routing randomness gets the same treatment, and the scheduler
    // never draws when only one node is routable — the default
    // single-node fleet replays the exact pre-fleet byte stream.
    Rng routeRng = master.split(kStreamRoute);
    Fleet fleet(s.fleet, s.pool, unsigned(s.mix.size()));
    const bool fleetOn = s.fleet.engaged();
    svb_assert(cals.size() == fleet.groupCount(),
               "calibration matrix does not match the fleet's classes");
    res.nodes = fleet.nodeCount();
    res.classes = fleet.groupCount();
    res.fleetPowerMw = fleet.fleetPowerMw();
    res.fleetCostMilli = fleet.fleetCostMilli();
    std::vector<CircuitBreaker> breakers(s.mix.size(),
                                         CircuitBreaker(s.breaker));

    // Per-scenario trace track (simulated nanoseconds): queue spans
    // when an invocation waits for a slot, one cold/warm span per
    // attempt, plus retry / timeout / breaker-open spans from the
    // fault layer. All times come from the load timeline, so the
    // track is deterministic in (scenario, calibrations).
    obs::Tracer &tracer = obs::Tracer::global();
    obs::TrackId track = obs::badTrack;
    if (tracer.enabled()) {
        std::ostringstream os;
        os << isaName(s.cluster.system.isa) << "/"
           << db::dbKindName(s.cluster.dbKind)
           << (s.cluster.startDb ? 1 : 0)
           << (s.cluster.startMemcached ? 1 : 0) << "/" << s.name
           << "/load";
        track = tracer.track(os.str());
    }

    double totalWeight = 0.0;
    for (const LoadMixEntry &entry : s.mix)
        totalWeight += entry.weight;
    svb_assert(totalWeight > 0.0, "load mix has no weight");
    svb_assert(s.retry.maxAttempts >= 1, "retry policy needs >= 1 attempt");

    // Arrival times and function choices are drawn up front in
    // arrival order — the exact draw sequence of the legacy
    // single-pass loop (each stream is independent, so interleaving
    // relative to other streams is irrelevant).
    struct Invocation
    {
        uint64_t arrivalNs = 0;
        uint32_t fn = 0;
        BackoffSchedule backoff;
    };
    std::vector<Invocation> invs;
    invs.reserve(s.invocations);
    for (uint64_t i = 0; i < s.invocations; ++i) {
        Invocation iv{0, 0, BackoffSchedule(s.retry)};
        iv.arrivalNs = arrivals.nextArrivalNs();
        double u = mixRng.nextDouble() * totalWeight;
        for (size_t m = 0; m + 1 < s.mix.size(); ++m) {
            u -= s.mix[m].weight;
            if (u < 0.0)
                break;
            iv.fn = uint32_t(m + 1);
        }
        invs.push_back(std::move(iv));
    }

    std::priority_queue<StreamEvent, std::vector<StreamEvent>,
                        StreamEventLater>
        events;
    uint64_t seq = 0;
    for (uint32_t i = 0; i < s.invocations; ++i)
        events.push({invs[i].arrivalNs, seq++, i, 0,
                     EvKind::AttemptStart, AttemptOutcome::Success, 0,
                     false});
    for (size_t f = 0; f < s.fleet.nodeFaults.size(); ++f)
        events.push({s.fleet.nodeFaults[f].atNs, seq++, uint32_t(f), 0,
                     EvKind::NodeFault, AttemptOutcome::Success,
                     s.fleet.nodeFaults[f].node, false});

    // A node crash cancels the original AttemptEnd of every attempt
    // in flight on the node and replaces it with a synthetic Crash
    // end at the crash instant. The flag is keyed by (invocation,
    // attempt); the synthetic replacement shares the key, so only
    // non-synthetic ends consult it.
    std::vector<uint8_t> cancelled(
        size_t(s.invocations) * s.retry.maxAttempts, 0);
    auto cancelKey = [&](uint32_t inv, unsigned attempt) {
        return size_t(inv) * s.retry.maxAttempts + attempt;
    };
    // Client-side in-flight attempts per node: what a crash cancels.
    struct Pending
    {
        uint32_t inv;
        unsigned attempt;
        uint64_t serverEndNs;
    };
    std::vector<std::vector<Pending>> pending(fleet.nodeCount());

    // A label suffix only retry attempts carry, so fault-free traces
    // keep the legacy "cold#i"/"warm#i"/"queue#i" span names.
    auto attemptTag = [](uint32_t inv, unsigned attempt) {
        std::string t = std::to_string(inv);
        if (attempt > 0)
            t += "." + std::to_string(attempt);
        return t;
    };

    uint64_t lastEndNs = 0;
    auto finish = [&](uint64_t end_ns, uint64_t arrival_ns, bool good) {
        res.latency.record(end_ns - arrival_ns);
        (good ? res.goodLatency : res.errorLatency)
            .record(end_ns - arrival_ns);
        if (end_ns > lastEndNs)
            lastEndNs = end_ns;
    };

    while (!events.empty()) {
        const StreamEvent ev = events.top();
        events.pop();

        if (ev.kind == EvKind::NodeFault) {
            // ---- node-level fault at ev.timeNs -----------------------
            const NodeFaultEvent &nf = s.fleet.nodeFaults[ev.inv];
            ++res.nodeFaults;
            fleet.applyNodeFault(nf);
            if (track != obs::badTrack)
                tracer.record(track,
                              std::string("node-") +
                                  nodeFaultKindName(nf.kind) + "#" +
                                  std::to_string(ev.inv) + "@n" +
                                  std::to_string(nf.node),
                              "node", ev.timeNs, nf.durationNs);
            if (nf.kind == NodeFaultEvent::Kind::Crash) {
                // Every attempt in flight on the node dies with it:
                // cancel the scheduled end, hand back the busy time
                // the node will no longer serve, and let the client
                // learn of the crash right now via the retry path.
                for (const Pending &p : pending[nf.node]) {
                    cancelled[cancelKey(p.inv, p.attempt)] = 1;
                    if (p.serverEndNs > ev.timeNs)
                        fleet.truncateBusy(nf.node,
                                           p.serverEndNs - ev.timeNs);
                    fleet.onAttemptEnd(nf.node, invs[p.inv].fn);
                    ++res.crashes;
                    events.push({ev.timeNs, seq++, p.inv, p.attempt,
                                 EvKind::AttemptEnd,
                                 AttemptOutcome::Crash, nf.node, true});
                }
                pending[nf.node].clear();
            }
            continue;
        }

        Invocation &iv = invs[ev.inv];
        CircuitBreaker &breaker = breakers[iv.fn];

        if (ev.kind == EvKind::AttemptStart) {
            // ---- attempt start at ev.timeNs --------------------------
            if (!breaker.admit(ev.timeNs)) {
                // Shed: the open breaker answers with the degraded
                // fast path; terminal, but not a good response.
                ++res.sheds;
                const uint64_t end = ev.timeNs + s.breaker.degradedNs;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "shed#" + attemptTag(ev.inv, ev.attempt),
                                  "breaker", ev.timeNs,
                                  s.breaker.degradedNs);
                finish(end, iv.arrivalNs, false);
                continue;
            }

            const Fleet::Route rt =
                fleet.route(iv.fn, ev.timeNs, routeRng);
            if (rt.throttled) {
                // Per-function concurrency limit: the platform answers
                // with a fast 429-style response — terminal, shed-like
                // (counted in both sheds and throttles).
                ++res.throttles;
                ++res.sheds;
                const uint64_t end = ev.timeNs + s.fleet.throttleNs;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "throttle#" +
                                      attemptTag(ev.inv, ev.attempt),
                                  "throttle", ev.timeNs,
                                  s.fleet.throttleNs);
                finish(end, iv.arrivalNs, false);
                continue;
            }
            if (rt.node == Fleet::badNode) {
                // No routable node yet (scale-up lag, or every node in
                // a fault window): the attempt re-enters the timeline
                // once capacity can exist. Progress is guaranteed —
                // either the retry time is strictly later, or a
                // zero-lag activation just made a node routable.
                svb_assert(rt.retryAtNs >= ev.timeNs,
                           "unroutable attempt scheduled into the past");
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "scale-wait#" +
                                      attemptTag(ev.inv, ev.attempt),
                                  "scale", ev.timeNs,
                                  rt.retryAtNs - ev.timeNs);
                events.push({rt.retryAtNs, seq++, ev.inv, ev.attempt,
                             EvKind::AttemptStart,
                             AttemptOutcome::Success, 0, false});
                continue;
            }

            InstancePool &pool = fleet.pool(rt.node);
            const InstancePool::Placement pl =
                pool.acquire(iv.fn, ev.timeNs);
            // The node's CLASS picks the calibrated service model:
            // on a mixed-ISA fleet the same function replays different
            // measured cold/warm times depending on where it landed.
            const LoadCalibration &cal =
                cals[fleet.groupOf(rt.node)][iv.fn];
            const FaultInjector::Draw dice = faults.draw(pl.cold);

            uint64_t service =
                pl.cold ? cal.coldNs
                        : cal.warmNs[warmRng.nextBounded(loadWarmSamples)];
            if (pl.cold && dice.restoreCorrupt) {
                // The restored snapshot came up corrupt: the platform
                // falls back to booting from scratch — the start still
                // succeeds but pays the boot penalty.
                service = uint64_t(double(service) *
                                   s.fault.restoreBootFactor);
                ++res.corruptRestores;
            }
            if (dice.straggler) {
                service =
                    uint64_t(double(service) * s.fault.stragglerFactor);
                ++res.stragglers;
            }
            // Heterogeneous fleets scale the calibrated service time
            // by the node's speed factor; exactly 1.0 (the homogeneous
            // default) leaves the value bit-untouched.
            const double speed = fleet.speedFactor(rt.node);
            if (speed != 1.0)
                service = uint64_t(double(service) * speed);
            service = std::max<uint64_t>(1, service);
            const uint64_t end = pl.startNs + service;

            if (track != obs::badTrack) {
                const std::string tag = attemptTag(ev.inv, ev.attempt);
                // Class-structured fleets tag the route span with the
                // node's class so mixed-ISA placement is visible in
                // the trace; class-less traces keep the legacy spans
                // byte-for-byte.
                if (fleetOn && fleet.classed())
                    tracer.record(
                        track,
                        "route#" + tag + "@n" + std::to_string(rt.node),
                        "route", ev.timeNs, 0,
                        {{"class",
                          fleet.nodeClass(fleet.groupOf(rt.node)).name}});
                else if (fleetOn)
                    tracer.record(track,
                                  "route#" + tag + "@n" +
                                      std::to_string(rt.node),
                                  "route", ev.timeNs, 0);
                if (pl.startNs > ev.timeNs)
                    tracer.record(track, "queue#" + tag, "queue",
                                  ev.timeNs, pl.startNs - ev.timeNs);
                tracer.record(track, (pl.cold ? "cold#" : "warm#") + tag,
                              pl.cold ? "cold" : "warm", pl.startNs,
                              end - pl.startNs);
            }

            AttemptOutcome outcome = AttemptOutcome::Success;
            uint64_t clientEnd = end;
            uint64_t serverEnd = end;
            if (pl.cold && dice.coldFail) {
                // The instance never comes up; the client learns at
                // the point the cold path would have completed.
                outcome = AttemptOutcome::ColdFail;
                pool.kill(pl.slot, end);
                ++res.coldStartFailures;
            } else if (dice.crash) {
                const uint64_t crashAt =
                    pl.startNs +
                    std::max<uint64_t>(
                        1, uint64_t(double(service) * dice.crashFrac));
                outcome = AttemptOutcome::Crash;
                clientEnd = crashAt;
                serverEnd = crashAt;
                pool.kill(pl.slot, crashAt);
                ++res.crashes;
            } else {
                pool.release(pl.slot, end);
            }
            // The client-side timeout wins over any later outcome;
            // the instance still finishes (or crashes) server-side —
            // abandoned work stays on the slot's timeline.
            if (s.retry.timeoutNs > 0 &&
                clientEnd > ev.timeNs + s.retry.timeoutNs) {
                outcome = AttemptOutcome::Timeout;
                clientEnd = ev.timeNs + s.retry.timeoutNs;
                ++res.timeouts;
                if (track != obs::badTrack)
                    tracer.record(track,
                                  "timeout#" + attemptTag(ev.inv,
                                                          ev.attempt),
                                  "timeout", ev.timeNs, s.retry.timeoutNs);
            }
            fleet.onAttemptStart(rt.node, iv.fn, pl.startNs, serverEnd);
            pending[rt.node].push_back({ev.inv, ev.attempt, serverEnd});
            events.push({clientEnd, seq++, ev.inv, ev.attempt,
                         EvKind::AttemptEnd, outcome, rt.node, false});
        } else {
            // ---- attempt end at ev.timeNs ----------------------------
            if (!ev.synthetic) {
                if (cancelled[cancelKey(ev.inv, ev.attempt)])
                    continue; // superseded by a node-crash end
                std::vector<Pending> &inflight = pending[ev.node];
                for (auto it = inflight.begin(); it != inflight.end();
                     ++it) {
                    if (it->inv == ev.inv && it->attempt == ev.attempt) {
                        inflight.erase(it);
                        break;
                    }
                }
                fleet.onAttemptEnd(ev.node, iv.fn);
            }
            if (ev.outcome == AttemptOutcome::Success) {
                breaker.onSuccess(ev.timeNs);
                ++res.succeeded;
                finish(ev.timeNs, iv.arrivalNs, true);
                continue;
            }
            const uint64_t opensBefore = breaker.timesOpened();
            breaker.onFailure(ev.timeNs);
            if (track != obs::badTrack &&
                breaker.timesOpened() > opensBefore)
                tracer.record(track,
                              "breaker-open#" +
                                  std::to_string(breaker.timesOpened()),
                              "breaker", ev.timeNs,
                              s.breaker.openCooldownNs);
            if (ev.attempt + 1 < s.retry.maxAttempts) {
                const uint64_t delay = iv.backoff.nextDelayNs(retryRng);
                ++res.retries;
                if (track != obs::badTrack)
                    tracer.record(
                        track,
                        "retry#" + attemptTag(ev.inv, ev.attempt + 1),
                        "retry", ev.timeNs, delay);
                events.push({ev.timeNs + delay, seq++, ev.inv,
                             ev.attempt + 1, EvKind::AttemptStart,
                             AttemptOutcome::Success, 0, false});
            } else {
                ++res.failedInvocations;
                finish(ev.timeNs, iv.arrivalNs, false);
            }
        }
    }

    // Pool counters aggregate across the fleet (a single-node fleet
    // reads the one pool, exactly as the pre-fleet engine did).
    uint64_t fleetBusyNs = 0;
    res.nodeUtilisation.assign(fleet.nodeCount(), 0.0);
    for (unsigned n = 0; n < fleet.nodeCount(); ++n) {
        const PoolStats &ps = fleet.pool(n).stats();
        res.coldStarts += ps.coldStarts;
        res.warmHits += ps.warmHits;
        res.evictions += ps.evictions;
        fleetBusyNs += fleet.nodeStats(n).busyNs;
    }
    for (const CircuitBreaker &breaker : breakers)
        res.breakerOpens += breaker.timesOpened();
    res.p50Ns = res.latency.percentile(50.0);
    res.p90Ns = res.latency.percentile(90.0);
    res.p99Ns = res.latency.percentile(99.0);
    res.p999Ns = res.latency.percentile(99.9);
    res.maxNs = res.latency.maxValue();
    res.goodP50Ns = res.goodLatency.percentile(50.0);
    res.goodP99Ns = res.goodLatency.percentile(99.0);
    res.errP99Ns = res.errorLatency.percentile(99.0);
    res.throughputRps = safeRatePerSec(s.invocations, lastEndNs);
    res.histoFingerprint = res.latency.fingerprint();
    res.goodFingerprint = res.goodLatency.fingerprint();
    res.maxActiveNodes = fleet.maxActiveNodes();
    // Utilisation: occupied slot-time over the run's span, normalised
    // by each node's slot count (so 1.0 = every slot busy throughout).
    const uint64_t nodeCapacityNs = lastEndNs * s.pool.maxInstances;
    for (unsigned n = 0; n < fleet.nodeCount(); ++n)
        res.nodeUtilisation[n] =
            safeShare(fleet.nodeStats(n).busyNs, nodeCapacityNs);
    res.fleetUtilisation =
        safeShare(fleetBusyNs, nodeCapacityNs * fleet.nodeCount());
    if (fleet.classed()) {
        res.classRouted.assign(fleet.groupCount(), 0);
        res.classNames.resize(fleet.groupCount());
        for (unsigned g = 0; g < fleet.groupCount(); ++g)
            res.classNames[g] = fleet.nodeClass(g).name;
        for (unsigned n = 0; n < fleet.nodeCount(); ++n)
            res.classRouted[fleet.groupOf(n)] += fleet.nodeStats(n).routed;
    }
    res.ok = true;

    // fault.* StatGroup counters through the observability layer: a
    // per-scenario stat tree, dumped wherever SVBENCH_STATDUMP points
    // (only when the resilience machinery is actually engaged, so
    // fault-free runs emit exactly the legacy file set).
    if ((faults.enabled() || s.breaker.enabled) &&
        !obs::statDumpDir().empty()) {
        StatGroup fstats("fault");
        auto set = [&fstats](const char *name, const char *desc,
                             uint64_t v) {
            fstats.addScalar(name, desc) += v;
        };
        set("injected.coldFail", "injected failed cold starts",
            res.coldStartFailures);
        set("injected.crash", "injected instance crashes", res.crashes);
        set("injected.straggler", "injected straggler slowdowns",
            res.stragglers);
        set("injected.corruptRestore", "injected corrupt restores",
            res.corruptRestores);
        set("retry.retries", "retry attempts issued", res.retries);
        set("retry.timeouts", "client-side attempt timeouts",
            res.timeouts);
        set("breaker.opens", "circuit-breaker open transitions",
            res.breakerOpens);
        set("breaker.sheds", "requests shed to the degraded path",
            res.sheds);
        set("outcome.succeeded", "invocations answered successfully",
            res.succeeded);
        set("outcome.failed", "invocations exhausted without success",
            res.failedInvocations);
        obs::dumpRequestStats("load_" + s.name + "_fault",
                              obs::snapshot(fstats));
    }

    // fleet.* StatGroup counters, same discipline: only emitted when
    // the fleet machinery is engaged, so plain single-node scenarios
    // keep the legacy stat-file set byte-for-byte.
    if (fleetOn && !obs::statDumpDir().empty()) {
        StatGroup fstats("fleet");
        auto set = [&fstats](const std::string &name,
                             const std::string &desc, uint64_t v) {
            fstats.addScalar(name, desc) += v;
        };
        set("sched.policy", "routing policy id", res.policyId);
        set("sched.throttles", "attempts rejected by the concurrency limit",
            res.throttles);
        set("sched.nodeFaults", "node fault events applied",
            res.nodeFaults);
        set("sched.maxActive", "peak concurrently active nodes",
            fleet.maxActiveNodes());
        set("sched.activations", "node scale-up activations",
            fleet.activations());
        set("sched.deactivations", "node scale-down retirements",
            fleet.deactivations());
        set("sched.evaluations", "autoscaler evaluation rounds",
            fleet.autoscaleEvaluations());
        set("sched.prefHits", "placement hints honoured",
            fleet.preferredHits());
        set("sched.prefMisses", "placement hints that fell back",
            fleet.preferredMisses());
        if (fleet.classed()) {
            for (unsigned g = 0; g < fleet.groupCount(); ++g) {
                const std::string p =
                    "class." + fleet.nodeClass(g).name + ".";
                set(p + "nodes", "provisioned nodes of the class",
                    fleet.config().spec.groups[g].count);
                set(p + "active", "active nodes of the class at the end",
                    fleet.groupActiveNodes(g));
                set(p + "routed", "attempts routed to the class",
                    res.classRouted.empty() ? 0 : res.classRouted[g]);
            }
        }
        for (unsigned n = 0; n < fleet.nodeCount(); ++n) {
            const std::string p = "node" + std::to_string(n) + ".";
            const NodeStats &nst = fleet.nodeStats(n);
            const PoolStats &ps = fleet.pool(n).stats();
            set(p + "routed", "attempts routed to the node", nst.routed);
            set(p + "busyNs", "occupied slot-time on the node",
                nst.busyNs);
            set(p + "crashEvents", "node-level crashes applied",
                nst.crashEvents);
            set(p + "coldStarts", "cold starts on the node",
                ps.coldStarts);
            set(p + "warmHits", "warm hits on the node", ps.warmHits);
            set(p + "evictions", "instance evictions on the node",
                ps.evictions);
        }
        obs::dumpRequestStats("load_" + s.name + "_fleet",
                              obs::snapshot(fstats));
    }
    return res;
}

} // namespace

void
validateScenarioName(const std::string &name)
{
    svb_assert(!name.empty(), "load scenario with an empty name");
    svb_assert(name.find_first_of(",|=") == std::string::npos,
               "load scenario name '", name,
               "' contains a cache metacharacter (',', '|' or '=')");
}

double
safeRatePerSec(uint64_t events, uint64_t span_ns)
{
    return span_ns ? double(events) * 1e9 / double(span_ns) : 0.0;
}

double
safeShare(uint64_t part_ns, uint64_t whole_ns)
{
    return whole_ns ? double(part_ns) / double(whole_ns) : 0.0;
}

ClusterConfig
classCluster(const NodeClass &klass, const ClusterConfig &base)
{
    if (!klass.ownSystem)
        return base;
    ClusterConfig c = base;
    c.system = klass.system;
    c.classTag = klass.name;
    return c;
}

std::vector<ClusterConfig>
calibrationClusters(const ClusterConfig &base, const FleetConfig &fleet)
{
    std::vector<ClusterConfig> clusters;
    if (fleet.spec.empty()) {
        clusters.push_back(base);
        return clusters;
    }
    clusters.reserve(fleet.spec.groups.size());
    for (const FleetGroup &g : fleet.spec.groups)
        clusters.push_back(classCluster(g.klass, base));
    return clusters;
}

LoadResult
LoadRunner::run(const LoadScenario &scenario)
{
    validateScenarioName(scenario.name);
    svb_assert(!scenario.mix.empty(), "load scenario with empty mix");
    svb_assert(scenario.invocations > 0, "load scenario with no traffic");

    // One calibration pass per fleet class (class-less scenarios have
    // exactly one, the legacy cluster): the [group][fn] matrix the
    // stream engine indexes by the class of the routed node.
    const std::vector<ClusterConfig> clusters =
        calibrationClusters(scenario.cluster, scenario.fleet);
    std::vector<std::vector<LoadCalibration>> cals(clusters.size());
    for (size_t g = 0; g < clusters.size(); ++g) {
        cals[g].reserve(scenario.mix.size());
        for (const LoadMixEntry &entry : scenario.mix) {
            svb_assert(entry.impl != nullptr, "mix entry without workload");
            cals[g].push_back(cache.loadCalibration(clusters[g],
                                                    entry.spec,
                                                    *entry.impl));
            if (!cals[g].back().ok) {
                warn(scenario.name, ": calibration of ", entry.spec.name,
                     " failed; scenario skipped");
                LoadResult res;
                res.scenario = scenario.name;
                return res;
            }
        }
    }
    return simulateStream(scenario, cals);
}

std::vector<LoadResult>
loadSweep(ResultCache &cache, const std::vector<LoadScenario> &scenarios,
          unsigned jobs_override)
{
    for (const LoadScenario &s : scenarios)
        validateScenarioName(s.name);

    // --- Phase 1: calibrate every distinct (cluster, function) ----------
    // Concurrent compute, submission-order record: ldcal CSV rows are
    // identical to a serial sweep's at any worker count. Class-
    // structured fleets contribute one cluster per class here (the
    // clusters are synthesised per scenario, so the job stores its
    // config by value).
    struct CalJob
    {
        ClusterConfig cfg;
        const FunctionSpec *spec;
        const WorkloadImpl *impl;
    };
    std::vector<CalJob> calJobs;
    std::map<std::string, char> seenCal;
    for (const LoadScenario &s : scenarios) {
        for (const ClusterConfig &cluster :
             calibrationClusters(s.cluster, s.fleet)) {
            for (const LoadMixEntry &entry : s.mix) {
                const std::string key =
                    cache.loadCalKey(cluster, entry.spec);
                if (!seenCal.emplace(key, 1).second)
                    continue;
                LoadCalibration cached;
                if (!cache.lookupLoadCal(cluster, entry.spec, cached))
                    calJobs.push_back({cluster, &entry.spec, entry.impl});
            }
        }
    }
    if (!calJobs.empty()) {
        const auto cals = parallelIndexed<LoadCalibration>(
            calJobs.size(),
            [&](size_t i) {
                return cache.computeLoadCal(calJobs[i].cfg,
                                            *calJobs[i].spec,
                                            *calJobs[i].impl);
            },
            jobs_override);
        for (size_t i = 0; i < calJobs.size(); ++i)
            cache.recordLoadCal(calJobs[i].cfg, *calJobs[i].spec,
                                cals[i]);
    }

    // --- Phase 2: simulate the scenarios --------------------------------
    std::vector<LoadResult> results(scenarios.size());
    std::map<std::string, size_t> primaryForKey;
    std::vector<size_t> primaries;
    std::vector<char> isHit(scenarios.size(), 0);
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const std::string key =
            cache.loadKey(scenarios[i].cluster, scenarios[i].name);
        std::map<std::string, uint64_t> row;
        if (cache.lookupLoadRow(key, row)) {
            results[i] = unpackLoadResult(scenarios[i].name, row);
            isHit[i] = 1;
            continue;
        }
        if (primaryForKey.emplace(key, i).second)
            primaries.push_back(i);
    }
    if (!primaries.empty()) {
        const auto fresh = parallelIndexed<LoadResult>(
            primaries.size(),
            [&](size_t k) {
                return LoadRunner(cache).run(scenarios[primaries[k]]);
            },
            jobs_override);
        for (size_t k = 0; k < primaries.size(); ++k) {
            const size_t idx = primaries[k];
            results[idx] = fresh[k];
            cache.recordLoadRow(
                cache.loadKey(scenarios[idx].cluster, scenarios[idx].name),
                packLoadResult(fresh[k]));
        }
    }
    for (size_t i = 0; i < scenarios.size(); ++i) {
        if (isHit[i])
            continue;
        const size_t primary = primaryForKey.at(
            cache.loadKey(scenarios[i].cluster, scenarios[i].name));
        if (primary != i)
            results[i] = results[primary];
    }
    return results;
}

} // namespace svb::load
