#include "histogram.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace svb::load
{

namespace
{

/** Octave groups above the exact region: exponents kSubBits..63. */
constexpr size_t numGroups = 64 - LatencyHistogram::kSubBits;

} // namespace

size_t
LatencyHistogram::numBuckets()
{
    // Exact region (one bucket per value < 2^kSubBits) is group 0;
    // every higher octave contributes kSubBuckets sub-buckets.
    return (numGroups + 1) * kSubBuckets;
}

LatencyHistogram::LatencyHistogram() : counts(numBuckets(), 0) {}

size_t
LatencyHistogram::bucketIndex(uint64_t ns)
{
    if (ns < kSubBuckets)
        return size_t(ns);
    const unsigned e = 63 - unsigned(std::countl_zero(ns));
    const unsigned group = e - kSubBits + 1;
    const uint64_t sub = (ns >> (e - kSubBits)) & (kSubBuckets - 1);
    return size_t(group) * kSubBuckets + size_t(sub);
}

uint64_t
LatencyHistogram::bucketLow(size_t index)
{
    if (index < kSubBuckets)
        return uint64_t(index);
    const size_t group = index / kSubBuckets;
    const uint64_t sub = index % kSubBuckets;
    const uint64_t base = kSubBuckets + sub;
    const unsigned shift = unsigned(group - 1);
    // A shift that pushes the sub-bucket base past 2^64 would wrap to
    // a tiny value and make percentile() report a bogus low latency
    // for the top octave; saturate to UINT64_MAX instead so bucket
    // bounds stay monotone for any index (and any future kSubBits).
    if (shift >= 64 || (shift != 0 && (base >> (64 - shift)) != 0))
        return ~uint64_t(0);
    return base << shift;
}

uint64_t
LatencyHistogram::bucketHigh(size_t index)
{
    if (index < kSubBuckets)
        return uint64_t(index);
    const uint64_t low = bucketLow(index);
    if (low == ~uint64_t(0))
        return low;
    const size_t group = index / kSubBuckets;
    const unsigned shift = unsigned(group - 1);
    const uint64_t width = shift >= 64 ? ~uint64_t(0) : uint64_t(1) << shift;
    const uint64_t high = low + (width - 1);
    return high < low ? ~uint64_t(0) : high; // saturate, never wrap
}

void
LatencyHistogram::record(uint64_t ns)
{
    ++counts[bucketIndex(ns)];
    ++total;
    sumNs += ns;
    if (ns < minNs)
        minNs = ns;
    if (ns > maxNs)
        maxNs = ns;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sumNs += other.sumNs;
    if (other.total > 0) {
        if (other.minNs < minNs)
            minNs = other.minNs;
        if (other.maxNs > maxNs)
            maxNs = other.maxNs;
    }
}

double
LatencyHistogram::mean() const
{
    return total ? double(sumNs) / double(total) : 0.0;
}

uint64_t
LatencyHistogram::percentile(double p) const
{
    svb_assert(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
    if (total == 0)
        return 0;
    const uint64_t target =
        std::max<uint64_t>(1, uint64_t(std::ceil(p / 100.0 *
                                                 double(total))));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen < target)
            continue;
        // A saturated bound means the true bucket top is not
        // representable; report the exact recorded maximum instead of
        // a meaningless UINT64_MAX.
        const uint64_t high = bucketHigh(i);
        return high == ~uint64_t(0) ? maxNs : high;
    }
    return maxNs; // unreachable with a consistent total
}

uint64_t
LatencyHistogram::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (uint64_t c : counts)
        mix(c);
    mix(total);
    return h;
}

bool
LatencyHistogram::operator==(const LatencyHistogram &other) const
{
    return counts == other.counts && total == other.total &&
           sumNs == other.sumNs &&
           minValue() == other.minValue() && maxValue() == other.maxValue();
}

} // namespace svb::load
