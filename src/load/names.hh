/**
 * @file
 * Enum <-> name round-trips for the load subsystem's configuration
 * enums, in one place.
 *
 * Every scenario knob that lands in a result-cache row key or a bench
 * table needs a stable printable name, and benches that take knobs
 * from the environment need the reverse direction. The name functions
 * are the single source of truth; each parse function simply walks
 * the enum's values through its name function, so the two directions
 * can never drift apart (tests/test_fleet.cc pins the round-trips).
 *
 * Parse functions return false (leaving @p out untouched) on an
 * unknown name rather than dying: the callers own the error message
 * and the context (usually an environment variable name).
 */

#ifndef SVB_LOAD_NAMES_HH
#define SVB_LOAD_NAMES_HH

#include <string>

#include "arrival.hh"
#include "dag.hh"
#include "fleet.hh"
#include "instance_pool.hh"

namespace svb::load
{

const char *routingPolicyName(RoutingPolicy policy);
bool parseRoutingPolicy(const std::string &name, RoutingPolicy &out);

const char *keepAlivePolicyName(KeepAlivePolicy policy);
bool parseKeepAlivePolicy(const std::string &name, KeepAlivePolicy &out);

const char *arrivalKindName(ArrivalKind kind);
bool parseArrivalKind(const std::string &name, ArrivalKind &out);

const char *nodeFaultKindName(NodeFaultEvent::Kind kind);
bool parseNodeFaultKind(const std::string &name, NodeFaultEvent::Kind &out);

const char *stagePlacementName(StagePlacement placement);
bool parseStagePlacement(const std::string &name, StagePlacement &out);

} // namespace svb::load

#endif // SVB_LOAD_NAMES_HH
