#include "fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace svb::load
{

namespace
{

double
clampProb(double p)
{
    return std::min(1.0, std::max(0.0, p));
}

} // namespace

FaultConfig
FaultConfig::scaled(double scale) const
{
    FaultConfig out = *this;
    out.coldStartFailProb = clampProb(coldStartFailProb * scale);
    out.crashProb = clampProb(crashProb * scale);
    out.stragglerProb = clampProb(stragglerProb * scale);
    out.restoreCorruptProb = clampProb(restoreCorruptProb * scale);
    return out;
}

FaultConfig
defaultFaultPreset()
{
    FaultConfig cfg;
    cfg.coldStartFailProb = 0.05;
    cfg.crashProb = 0.02;
    cfg.stragglerProb = 0.05;
    cfg.restoreCorruptProb = 0.02;
    return cfg;
}

FaultConfig
faultsFromEnv()
{
    const char *env = std::getenv("SVBENCH_FAULTS");
    if (env == nullptr || env[0] == '\0' ||
        (env[0] == '0' && env[1] == '\0'))
        return FaultConfig{};
    if (env[0] == '1' && env[1] == '\0')
        return defaultFaultPreset();

    FaultConfig cfg;
    std::istringstream is(env);
    std::string item;
    while (std::getline(is, item, ',')) {
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            warn("SVBENCH_FAULTS: ignoring malformed entry '", item, "'");
            continue;
        }
        const std::string key = item.substr(0, eq);
        const double val = std::atof(item.c_str() + eq + 1);
        if (key == "cold")
            cfg.coldStartFailProb = clampProb(val);
        else if (key == "crash")
            cfg.crashProb = clampProb(val);
        else if (key == "straggler")
            cfg.stragglerProb = clampProb(val);
        else if (key == "straggler-factor")
            cfg.stragglerFactor = std::max(1.0, val);
        else if (key == "restore")
            cfg.restoreCorruptProb = clampProb(val);
        else if (key == "restore-boot")
            cfg.restoreBootFactor = std::max(1.0, val);
        else
            warn("SVBENCH_FAULTS: ignoring unknown key '", key, "'");
    }
    return cfg;
}

uint64_t
BackoffSchedule::nextDelayNs(Rng &rng)
{
    const uint64_t base = pol.backoffBaseNs;
    if (base == 0)
        return 0;
    const uint64_t cap = std::max(pol.backoffCapNs, base);
    uint64_t delay;
    if (prevNs == 0) {
        // First retry: exactly the base — pins the schedule's origin
        // so golden tests can anchor the whole sequence.
        delay = base;
    } else {
        // Decorrelated jitter: uniform in [base, 3 * prev], clamped.
        // Saturate the multiply so a huge cap cannot wrap the bound.
        const uint64_t hi = prevNs > cap / 3 ? cap : std::min(cap, 3 * prevNs);
        delay = hi <= base ? base : base + rng.nextBounded(hi - base + 1);
    }
    delay = std::min(delay, cap);
    prevNs = delay;
    return delay;
}

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half-open";
    }
    return "?";
}

void
CircuitBreaker::open(uint64_t now_ns)
{
    st = State::Open;
    openedAtNs = now_ns;
    probeSuccesses = 0;
    probeInFlight = false;
    ++opens;
}

bool
CircuitBreaker::admit(uint64_t now_ns)
{
    if (!cfg.enabled)
        return true;
    switch (st) {
      case State::Closed:
        return true;
      case State::Open:
        if (now_ns - openedAtNs < cfg.openCooldownNs)
            return false;
        // Cooldown elapsed: this request becomes the half-open probe.
        st = State::HalfOpen;
        probeSuccesses = 0;
        probeInFlight = true;
        return true;
      case State::HalfOpen:
        if (probeInFlight)
            return false; // one probe at a time; the rest shed
        probeInFlight = true;
        return true;
    }
    return true;
}

void
CircuitBreaker::onSuccess(uint64_t now_ns)
{
    if (!cfg.enabled)
        return;
    consecFailures = 0;
    if (st == State::HalfOpen) {
        probeInFlight = false;
        if (++probeSuccesses >= cfg.halfOpenSuccesses) {
            st = State::Closed;
            probeSuccesses = 0;
        }
    }
    (void)now_ns;
}

void
CircuitBreaker::onFailure(uint64_t now_ns)
{
    if (!cfg.enabled)
        return;
    if (st == State::HalfOpen) {
        // A failed probe re-opens immediately with a fresh cooldown.
        open(now_ns);
        return;
    }
    if (st == State::Closed && ++consecFailures >= cfg.failureThreshold) {
        consecFailures = 0;
        open(now_ns);
    }
}

FaultInjector::Draw
FaultInjector::draw(bool cold)
{
    Draw d;
    if (!cfg.any())
        return d; // zero-rate config: the substream is never touched
    if (cold) {
        d.restoreCorrupt = rng.nextDouble() < cfg.restoreCorruptProb;
        d.coldFail = rng.nextDouble() < cfg.coldStartFailProb;
    }
    d.straggler = rng.nextDouble() < cfg.stragglerProb;
    d.crash = rng.nextDouble() < cfg.crashProb;
    d.crashFrac = 0.1 + 0.8 * rng.nextDouble();
    return d;
}

} // namespace svb::load
