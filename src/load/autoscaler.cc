#include "autoscaler.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace svb::load
{

Autoscaler::Autoscaler(const AutoscalerConfig &config, unsigned fleet_size)
    : cfg(config)
{
    svb_assert(fleet_size > 0, "autoscaler over an empty fleet");
    capNodes = cfg.maxNodes == 0 ? fleet_size
                                 : std::min(cfg.maxNodes, fleet_size);
    floorNodes = std::min(cfg.minNodes, capNodes);
    if (cfg.enabled) {
        svb_assert(cfg.evalPeriodNs > 0, "autoscaler eval period is zero");
        svb_assert(cfg.targetInFlightPerNode > 0.0,
                   "autoscaler per-node concurrency target is zero");
        nextEvalAtNs = cfg.evalPeriodNs;
    }
}

unsigned
Autoscaler::desiredFor(unsigned in_flight) const
{
    unsigned want = 0;
    if (in_flight > 0) {
        want = unsigned(
            std::ceil(double(in_flight) / cfg.targetInFlightPerNode));
    }
    return std::clamp(want, floorNodes, capNodes);
}

unsigned
Autoscaler::evaluate(unsigned in_flight)
{
    svb_assert(cfg.enabled, "evaluate() on a disabled autoscaler");
    nextEvalAtNs += cfg.evalPeriodNs;
    ++evals;
    return desiredFor(in_flight);
}

} // namespace svb::load
