#include "fleet.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace svb::load
{

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::LeastLoaded: return "least-loaded";
      case RoutingPolicy::Random: return "random";
      case RoutingPolicy::PowerOfTwo: return "p2c";
      case RoutingPolicy::Affinity: return "affinity";
    }
    return "?";
}

const char *
nodeFaultKindName(NodeFaultEvent::Kind kind)
{
    switch (kind) {
      case NodeFaultEvent::Kind::Crash: return "crash";
      case NodeFaultEvent::Kind::Partition: return "partition";
    }
    return "?";
}

namespace
{

/** The home node a function sticks to under Affinity routing:
 *  a SplitMix64-style avalanche so consecutive fn ids spread. */
unsigned
affinityHome(uint32_t fn, unsigned num_nodes)
{
    uint64_t h = uint64_t(fn) + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    return unsigned(h % num_nodes);
}

} // namespace

Fleet::Fleet(const FleetConfig &config, const PoolConfig &node_pool,
             unsigned num_fns)
    : cfg(config), scaler(config.autoscaler, std::max(1u, config.nodes))
{
    svb_assert(cfg.nodes >= 1, "fleet needs at least one node");
    svb_assert(cfg.nodeSpeed.empty() || cfg.nodeSpeed.size() == cfg.nodes,
               "fleet nodeSpeed must be empty or one factor per node");
    for (const double f : cfg.nodeSpeed)
        svb_assert(f > 0.0, "fleet node speed factor must be positive");
    for (const NodeFaultEvent &ev : cfg.nodeFaults) {
        svb_assert(ev.node < cfg.nodes, "node fault on unknown node ",
                   ev.node);
        svb_assert(ev.durationNs > 0, "node fault with zero duration");
    }

    nodes.reserve(cfg.nodes);
    for (unsigned i = 0; i < cfg.nodes; ++i)
        nodes.emplace_back(node_pool);
    fnInFlight.assign(std::max(1u, num_fns), 0);

    if (scaler.enabled()) {
        // Start at the autoscaler floor; the rest of the fleet waits
        // inactive until demand (or an evaluation) activates it. A
        // zero floor is scale-to-zero: the first arrival pays the
        // scale-up lag.
        for (unsigned i = 0; i < cfg.nodes; ++i)
            nodes[i].active = i < scaler.minNodes();
    }
    maxActive = activeNodes();
}

unsigned
Fleet::activeNodes() const
{
    unsigned n = 0;
    for (const Node &node : nodes)
        n += node.active ? 1 : 0;
    return n;
}

const NodeStats &
Fleet::nodeStats(unsigned node) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].stats;
}

InstancePool &
Fleet::pool(unsigned node)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].pool;
}

double
Fleet::speedFactor(unsigned node) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return cfg.nodeSpeed.empty() ? 1.0 : cfg.nodeSpeed[node];
}

bool
Fleet::routable(unsigned node, uint64_t now_ns) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    const Node &n = nodes[node];
    return n.active && n.readyAtNs <= now_ns && n.downUntilNs <= now_ns;
}

uint64_t
Fleet::backlogNs(unsigned node, uint64_t now_ns) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].pool.backlogNs(now_ns);
}

void
Fleet::advance(uint64_t now_ns)
{
    while (scaler.due(now_ns)) {
        const uint64_t t = scaler.nextEvalNs();
        applyDesired(scaler.evaluate(totalInFlight), t);
    }
}

void
Fleet::activateOne(uint64_t t_ns)
{
    for (unsigned i = 0; i < nodes.size(); ++i) {
        Node &n = nodes[i];
        if (n.active)
            continue;
        n.active = true;
        n.readyAtNs = t_ns + cfg.autoscaler.scaleUpLagNs;
        // The idle-retire clock starts when the node becomes
        // routable, so a freshly scaled-up node is never torn down
        // before it had a chance to serve.
        n.lastBusyNs = n.readyAtNs;
        ++numActivations;
        maxActive = std::max(maxActive, activeNodes());
        return;
    }
    svb_panic("activateOne() with no inactive node");
}

void
Fleet::applyDesired(unsigned desired, uint64_t t_ns)
{
    unsigned active = activeNodes();
    while (active < desired && active < nodes.size()) {
        activateOne(t_ns);
        ++active;
    }
    if (active <= desired || active <= scaler.minNodes())
        return;

    // Scale down: retire the most-idle eligible nodes. Eligible means
    // routable (past its own lag), empty (no in-flight work, no busy
    // slot) and idle at least scaleDownIdleNs. Ties break on the node
    // index, so the retire order is deterministic.
    while (active > desired && active > scaler.minNodes()) {
        int victim = -1;
        for (unsigned i = 0; i < nodes.size(); ++i) {
            const Node &n = nodes[i];
            if (!n.active || n.readyAtNs > t_ns || n.inFlight > 0 ||
                n.pool.busySlots(t_ns) > 0)
                continue;
            if (t_ns - n.lastBusyNs < cfg.autoscaler.scaleDownIdleNs)
                continue;
            if (victim < 0 ||
                n.lastBusyNs < nodes[unsigned(victim)].lastBusyNs)
                victim = int(i);
        }
        if (victim < 0)
            return; // nothing idle enough yet; try next evaluation
        Node &n = nodes[unsigned(victim)];
        n.active = false;
        // Scale-to-zero semantics: retiring the node tears its warm
        // instances down, so traffic landing here later is cold.
        n.pool.evictAll(t_ns);
        ++numDeactivations;
        --active;
    }
}

uint64_t
Fleet::ensureCapacity(uint64_t now_ns)
{
    // Earliest point an already-activated node becomes routable:
    // a pending scale-up completing or a fault window closing.
    uint64_t earliest = ~uint64_t(0);
    for (const Node &n : nodes) {
        if (!n.active)
            continue;
        earliest =
            std::min(earliest, std::max(n.readyAtNs, n.downUntilNs));
    }
    // Demand-driven scale-up: a request arrived and nothing can take
    // it — activate a node now (even between autoscaler evaluations)
    // when the scaler's ceiling allows it.
    if (scaler.enabled() && activeNodes() < scaler.maxNodes()) {
        bool anyInactive = false;
        for (const Node &n : nodes)
            anyInactive = anyInactive || !n.active;
        if (anyInactive) {
            activateOne(now_ns);
            earliest =
                std::min(earliest, now_ns + cfg.autoscaler.scaleUpLagNs);
        }
    }
    svb_assert(earliest != ~uint64_t(0),
               "fleet has no node that can ever become routable");
    return std::max(earliest, now_ns);
}

Fleet::Route
Fleet::route(uint32_t fn, uint64_t now_ns, Rng &rng,
             unsigned preferred_node)
{
    advance(now_ns);

    svb_assert(fn < fnInFlight.size(), "route() of unknown function");
    if (cfg.fnConcurrencyLimit > 0 &&
        fnInFlight[fn] >= cfg.fnConcurrencyLimit) {
        ++numThrottles;
        return {badNode, 0, true};
    }

    cands.clear();
    for (unsigned i = 0; i < nodes.size(); ++i) {
        if (routable(i, now_ns))
            cands.push_back(i);
    }
    if (cands.empty())
        return {badNode, ensureCapacity(now_ns), false};

    // A routable placement hint short-circuits the policy without
    // touching the routing substream (the caller's affinity decision
    // must not shift the draws of unrelated attempts).
    if (preferred_node < nodes.size() && routable(preferred_node, now_ns))
        return {preferred_node, 0, false};

    // One routable node: every policy picks it, and no randomness is
    // drawn — the single-node byte-identity contract.
    unsigned chosen = cands[0];
    if (cands.size() > 1) {
        auto leastLoaded = [&]() {
            unsigned best = cands[0];
            uint64_t bestLoad = backlogNs(best, now_ns);
            for (size_t k = 1; k < cands.size(); ++k) {
                const uint64_t load = backlogNs(cands[k], now_ns);
                if (load < bestLoad) {
                    best = cands[k];
                    bestLoad = load;
                }
            }
            return best;
        };
        switch (cfg.routing) {
          case RoutingPolicy::LeastLoaded:
            chosen = leastLoaded();
            break;
          case RoutingPolicy::Random:
            chosen = cands[rng.nextBounded(cands.size())];
            break;
          case RoutingPolicy::PowerOfTwo: {
            const unsigned a = cands[rng.nextBounded(cands.size())];
            const unsigned b = cands[rng.nextBounded(cands.size())];
            const uint64_t la = backlogNs(a, now_ns);
            const uint64_t lb = backlogNs(b, now_ns);
            // Ties (including a == b) break on the node index.
            chosen = lb < la ? b : la < lb ? a : std::min(a, b);
            break;
          }
          case RoutingPolicy::Affinity: {
            const unsigned home = affinityHome(fn, cfg.nodes);
            chosen = badNode;
            for (const unsigned c : cands) {
                if (c == home) {
                    chosen = home;
                    break;
                }
            }
            if (chosen == badNode)
                chosen = leastLoaded();
            break;
          }
        }
    }
    return {chosen, 0, false};
}

void
Fleet::onAttemptStart(unsigned node, uint32_t fn, uint64_t start_ns,
                      uint64_t server_end_ns)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    svb_assert(fn < fnInFlight.size(), "attempt of unknown function");
    svb_assert(server_end_ns >= start_ns, "attempt ends before it starts");
    Node &n = nodes[node];
    ++n.stats.routed;
    n.stats.busyNs += server_end_ns - start_ns;
    n.lastBusyNs = std::max(n.lastBusyNs, server_end_ns);
    ++n.inFlight;
    ++fnInFlight[fn];
    ++totalInFlight;
}

void
Fleet::onAttemptEnd(unsigned node, uint32_t fn)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    svb_assert(fn < fnInFlight.size(), "attempt of unknown function");
    Node &n = nodes[node];
    svb_assert(n.inFlight > 0 && fnInFlight[fn] > 0 && totalInFlight > 0,
               "attempt end without a matching start");
    --n.inFlight;
    --fnInFlight[fn];
    --totalInFlight;
}

void
Fleet::applyNodeFault(const NodeFaultEvent &ev)
{
    svb_assert(ev.node < nodes.size(), "node fault on unknown node");
    Node &n = nodes[ev.node];
    n.downUntilNs = std::max(n.downUntilNs, ev.atNs + ev.durationNs);
    if (ev.kind == NodeFaultEvent::Kind::Crash) {
        ++n.stats.crashEvents;
        n.pool.crashAll(ev.atNs);
    }
}

void
Fleet::truncateBusy(unsigned node, uint64_t ns)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    Node &n = nodes[node];
    n.stats.busyNs -= std::min(n.stats.busyNs, ns);
}

} // namespace svb::load
