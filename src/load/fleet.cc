#include "fleet.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace svb::load
{

namespace
{

/** The home node a function sticks to under Affinity routing:
 *  a SplitMix64-style avalanche so consecutive fn ids spread. */
unsigned
affinityHome(uint32_t fn, unsigned num_nodes)
{
    uint64_t h = uint64_t(fn) + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    return unsigned(h % num_nodes);
}

void
validateClass(const NodeClass &k)
{
    svb_assert(!k.name.empty(), "FleetSpec class with an empty name");
    svb_assert(k.name.find_first_of(",|= \t") == std::string::npos,
               "FleetSpec class name '", k.name,
               "' contains a cache metacharacter or whitespace");
    svb_assert(k.speedFactor > 0.0, "node class '", k.name,
               "' needs a positive speed factor");
    svb_assert(k.costPerHour > 0.0, "node class '", k.name,
               "' needs a positive cost weight");
    svb_assert(k.watts > 0.0, "node class '", k.name,
               "' needs a positive power weight");
}

} // namespace

NodeClass
NodeClass::forIsa(const std::string &name_arg, IsaId isa)
{
    NodeClass k;
    k.name = name_arg;
    k.system = SystemConfig::paperConfig(isa);
    k.ownSystem = true;
    return k;
}

Fleet::Fleet(const FleetConfig &config, const PoolConfig &node_pool,
             unsigned num_fns)
    : cfg(config)
{
    if (!cfg.spec.empty()) {
        svb_assert(cfg.nodeSpeed.empty(),
                   "FleetSpec and nodeSpeed are mutually exclusive "
                   "(classes carry their own speed factor)");
        unsigned first = 0;
        for (const FleetGroup &g : cfg.spec.groups) {
            validateClass(g.klass);
            svb_assert(g.count >= 1, "FleetSpec group '", g.klass.name,
                       "' with zero nodes");
            groups.push_back({g.klass, first, g.count});
            first += g.count;
        }
        // Derive the scalar node count so downstream validation (and
        // the affinity hash) see the true fleet size.
        cfg.nodes = first;
    } else {
        // Legacy scalar adapter: one synthetic default-class group
        // spanning the fleet. Every group-ranged loop below then
        // degenerates to exactly the pre-class behaviour.
        svb_assert(cfg.nodes >= 1, "fleet needs at least one node");
        groups.push_back({NodeClass{}, 0, cfg.nodes});
    }
    svb_assert(cfg.nodeSpeed.empty() || cfg.nodeSpeed.size() == cfg.nodes,
               "fleet nodeSpeed must be empty or one factor per node");
    for (const double f : cfg.nodeSpeed)
        svb_assert(f > 0.0, "fleet node speed factor must be positive");
    for (const NodeFaultEvent &ev : cfg.nodeFaults) {
        svb_assert(ev.node < cfg.nodes, "node fault on unknown node ",
                   ev.node);
        svb_assert(ev.durationNs > 0, "node fault with zero duration");
    }

    nodes.reserve(cfg.nodes);
    scalers.reserve(groups.size());
    for (const Group &g : groups) {
        const PoolConfig &pool_cfg =
            g.klass.ownPool ? g.klass.pool : node_pool;
        for (unsigned i = 0; i < g.count; ++i)
            nodes.emplace_back(pool_cfg);
        scalers.emplace_back(cfg.autoscaler, g.count);
    }
    fnInFlight.assign(std::max(1u, num_fns), 0);

    if (scalers.front().enabled()) {
        // Start each group at its autoscaler floor; the rest of the
        // fleet waits inactive until demand (or an evaluation)
        // activates it. A zero floor is scale-to-zero: the first
        // arrival pays the scale-up lag.
        for (unsigned g = 0; g < groups.size(); ++g) {
            for (unsigned i = 0; i < groups[g].count; ++i)
                nodes[groups[g].first + i].active = i < scalers[g].minNodes();
        }
    }
    maxActive = activeNodes();
}

unsigned
Fleet::activeNodes() const
{
    unsigned n = 0;
    for (const Node &node : nodes)
        n += node.active ? 1 : 0;
    return n;
}

unsigned
Fleet::groupOf(unsigned node) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    for (unsigned g = 0; g < groups.size(); ++g) {
        if (node < groups[g].first + groups[g].count)
            return g;
    }
    svb_panic("node outside every fleet group");
}

const NodeClass &
Fleet::nodeClass(unsigned g) const
{
    svb_assert(g < groups.size(), "unknown fleet group");
    return groups[g].klass;
}

unsigned
Fleet::groupActiveNodes(unsigned g) const
{
    svb_assert(g < groups.size(), "unknown fleet group");
    unsigned n = 0;
    for (unsigned i = 0; i < groups[g].count; ++i)
        n += nodes[groups[g].first + i].active ? 1 : 0;
    return n;
}

unsigned
Fleet::groupInFlight(unsigned g) const
{
    unsigned n = 0;
    for (unsigned i = 0; i < groups[g].count; ++i)
        n += nodes[groups[g].first + i].inFlight;
    return n;
}

uint64_t
Fleet::fleetPowerMw() const
{
    double mw = 0.0;
    for (const Group &g : groups)
        mw += double(g.count) * g.klass.watts * 1000.0;
    return uint64_t(std::llround(mw));
}

uint64_t
Fleet::fleetCostMilli() const
{
    double milli = 0.0;
    for (const Group &g : groups)
        milli += double(g.count) * g.klass.costPerHour * 1000.0;
    return uint64_t(std::llround(milli));
}

const NodeStats &
Fleet::nodeStats(unsigned node) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].stats;
}

InstancePool &
Fleet::pool(unsigned node)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].pool;
}

double
Fleet::speedFactor(unsigned node) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    if (!cfg.nodeSpeed.empty())
        return cfg.nodeSpeed[node];
    return groups[groupOf(node)].klass.speedFactor;
}

bool
Fleet::routable(unsigned node, uint64_t now_ns) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    const Node &n = nodes[node];
    return n.active && n.readyAtNs <= now_ns && n.downUntilNs <= now_ns;
}

uint64_t
Fleet::backlogNs(unsigned node, uint64_t now_ns) const
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    return nodes[node].pool.backlogNs(now_ns);
}

void
Fleet::advance(uint64_t now_ns)
{
    // All group scalers share one evaluation clock (identical config),
    // so scalers[0] paces the loop and each group is sized against its
    // own in-flight demand at every boundary.
    while (scalers.front().due(now_ns)) {
        const uint64_t t = scalers.front().nextEvalNs();
        for (unsigned g = 0; g < groups.size(); ++g)
            applyDesired(g, scalers[g].evaluate(groupInFlight(g)), t);
    }
}

void
Fleet::activateOne(unsigned g, uint64_t t_ns)
{
    for (unsigned i = 0; i < groups[g].count; ++i) {
        Node &n = nodes[groups[g].first + i];
        if (n.active)
            continue;
        n.active = true;
        n.readyAtNs = t_ns + cfg.autoscaler.scaleUpLagNs;
        // The idle-retire clock starts when the node becomes
        // routable, so a freshly scaled-up node is never torn down
        // before it had a chance to serve.
        n.lastBusyNs = n.readyAtNs;
        ++numActivations;
        maxActive = std::max(maxActive, activeNodes());
        return;
    }
    svb_panic("activateOne() with no inactive node in group");
}

void
Fleet::applyDesired(unsigned g, unsigned desired, uint64_t t_ns)
{
    unsigned active = groupActiveNodes(g);
    while (active < desired && active < groups[g].count) {
        activateOne(g, t_ns);
        ++active;
    }
    if (active <= desired || active <= scalers[g].minNodes())
        return;

    // Scale down: retire the group's most-idle eligible nodes.
    // Eligible means routable (past its own lag), empty (no in-flight
    // work, no busy slot) and idle at least scaleDownIdleNs. Ties
    // break on the node index, so the retire order is deterministic.
    while (active > desired && active > scalers[g].minNodes()) {
        int victim = -1;
        for (unsigned i = 0; i < groups[g].count; ++i) {
            const unsigned id = groups[g].first + i;
            const Node &n = nodes[id];
            if (!n.active || n.readyAtNs > t_ns || n.inFlight > 0 ||
                n.pool.busySlots(t_ns) > 0)
                continue;
            if (t_ns - n.lastBusyNs < cfg.autoscaler.scaleDownIdleNs)
                continue;
            if (victim < 0 ||
                n.lastBusyNs < nodes[unsigned(victim)].lastBusyNs)
                victim = int(id);
        }
        if (victim < 0)
            return; // nothing idle enough yet; try next evaluation
        Node &n = nodes[unsigned(victim)];
        n.active = false;
        // Scale-to-zero semantics: retiring the node tears its warm
        // instances down, so traffic landing here later is cold.
        n.pool.evictAll(t_ns);
        ++numDeactivations;
        --active;
    }
}

uint64_t
Fleet::ensureCapacity(uint64_t now_ns)
{
    // Earliest point an already-activated node becomes routable:
    // a pending scale-up completing or a fault window closing.
    uint64_t earliest = ~uint64_t(0);
    for (const Node &n : nodes) {
        if (!n.active)
            continue;
        earliest =
            std::min(earliest, std::max(n.readyAtNs, n.downUntilNs));
    }
    // Demand-driven scale-up: a request arrived and nothing can take
    // it — activate a node now (even between autoscaler evaluations)
    // when a group's scaler ceiling allows it. The first group with
    // headroom wins, which for a single group is the legacy rule.
    if (scalers.front().enabled()) {
        for (unsigned g = 0; g < groups.size(); ++g) {
            if (groupActiveNodes(g) >= scalers[g].maxNodes())
                continue;
            bool anyInactive = false;
            for (unsigned i = 0; i < groups[g].count; ++i)
                anyInactive =
                    anyInactive || !nodes[groups[g].first + i].active;
            if (!anyInactive)
                continue;
            activateOne(g, now_ns);
            earliest =
                std::min(earliest, now_ns + cfg.autoscaler.scaleUpLagNs);
            break;
        }
    }
    svb_assert(earliest != ~uint64_t(0),
               "fleet has no node that can ever become routable");
    return std::max(earliest, now_ns);
}

Fleet::Route
Fleet::route(uint32_t fn, uint64_t now_ns, Rng &rng,
             unsigned preferred_node)
{
    advance(now_ns);

    svb_assert(fn < fnInFlight.size(), "route() of unknown function");
    if (cfg.fnConcurrencyLimit > 0 &&
        fnInFlight[fn] >= cfg.fnConcurrencyLimit) {
        ++numThrottles;
        return {badNode, 0, true};
    }

    cands.clear();
    for (unsigned i = 0; i < nodes.size(); ++i) {
        if (routable(i, now_ns))
            cands.push_back(i);
    }
    if (cands.empty())
        return {badNode, ensureCapacity(now_ns), false};

    // A routable placement hint short-circuits the policy without
    // touching the routing substream (the caller's affinity decision
    // must not shift the draws of unrelated attempts). A hint that is
    // NOT routable falls back to the policy — counted so payload
    // affinity misses are observable, not silent.
    if (preferred_node < nodes.size()) {
        if (routable(preferred_node, now_ns)) {
            ++numPreferredHits;
            return {preferred_node, 0, false};
        }
        ++numPreferredMisses;
    }

    // One routable node: every policy picks it, and no randomness is
    // drawn — the single-node byte-identity contract.
    unsigned chosen = cands[0];
    if (cands.size() > 1) {
        auto leastLoaded = [&]() {
            unsigned best = cands[0];
            uint64_t bestLoad = backlogNs(best, now_ns);
            for (size_t k = 1; k < cands.size(); ++k) {
                const uint64_t load = backlogNs(cands[k], now_ns);
                if (load < bestLoad) {
                    best = cands[k];
                    bestLoad = load;
                }
            }
            return best;
        };
        // Weighted variants of the same argmin: scale each candidate's
        // backlog by a per-class weight so at equal load the cheapest
        // (or most power-efficient) class wins. +1 keeps an idle
        // expensive node distinguishable from an idle cheap one.
        // Strict < keeps the lowest node index on exact ties —
        // deterministic, and zero draws from the routing substream.
        auto weightedArgmin = [&](auto weight_of) {
            unsigned best = cands[0];
            double bestScore = weight_of(groups[groupOf(best)].klass) *
                               double(backlogNs(best, now_ns) + 1);
            for (size_t k = 1; k < cands.size(); ++k) {
                const unsigned c = cands[k];
                const double score =
                    weight_of(groups[groupOf(c)].klass) *
                    double(backlogNs(c, now_ns) + 1);
                if (score < bestScore) {
                    best = c;
                    bestScore = score;
                }
            }
            return best;
        };
        switch (cfg.routing) {
          case RoutingPolicy::LeastLoaded:
            chosen = leastLoaded();
            break;
          case RoutingPolicy::Random:
            chosen = cands[rng.nextBounded(cands.size())];
            break;
          case RoutingPolicy::PowerOfTwo: {
            const unsigned a = cands[rng.nextBounded(cands.size())];
            const unsigned b = cands[rng.nextBounded(cands.size())];
            const uint64_t la = backlogNs(a, now_ns);
            const uint64_t lb = backlogNs(b, now_ns);
            // Ties (including a == b) break on the node index.
            chosen = lb < la ? b : la < lb ? a : std::min(a, b);
            break;
          }
          case RoutingPolicy::Affinity: {
            const unsigned home = affinityHome(fn, cfg.nodes);
            chosen = badNode;
            for (const unsigned c : cands) {
                if (c == home) {
                    chosen = home;
                    break;
                }
            }
            if (chosen == badNode)
                chosen = leastLoaded();
            break;
          }
          case RoutingPolicy::CostWeighted:
            chosen = weightedArgmin(
                [](const NodeClass &k) { return k.costPerHour; });
            break;
          case RoutingPolicy::PowerWeighted:
            chosen = weightedArgmin(
                [](const NodeClass &k) { return k.watts; });
            break;
        }
    }
    return {chosen, 0, false};
}

void
Fleet::onAttemptStart(unsigned node, uint32_t fn, uint64_t start_ns,
                      uint64_t server_end_ns)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    svb_assert(fn < fnInFlight.size(), "attempt of unknown function");
    svb_assert(server_end_ns >= start_ns, "attempt ends before it starts");
    Node &n = nodes[node];
    ++n.stats.routed;
    n.stats.busyNs += server_end_ns - start_ns;
    n.lastBusyNs = std::max(n.lastBusyNs, server_end_ns);
    ++n.inFlight;
    ++fnInFlight[fn];
    ++totalInFlight;
}

void
Fleet::onAttemptEnd(unsigned node, uint32_t fn)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    svb_assert(fn < fnInFlight.size(), "attempt of unknown function");
    Node &n = nodes[node];
    svb_assert(n.inFlight > 0 && fnInFlight[fn] > 0 && totalInFlight > 0,
               "attempt end without a matching start");
    --n.inFlight;
    --fnInFlight[fn];
    --totalInFlight;
}

void
Fleet::applyNodeFault(const NodeFaultEvent &ev)
{
    svb_assert(ev.node < nodes.size(), "node fault on unknown node");
    Node &n = nodes[ev.node];
    n.downUntilNs = std::max(n.downUntilNs, ev.atNs + ev.durationNs);
    if (ev.kind == NodeFaultEvent::Kind::Crash) {
        ++n.stats.crashEvents;
        n.pool.crashAll(ev.atNs);
    }
}

void
Fleet::truncateBusy(unsigned node, uint64_t ns)
{
    svb_assert(node < nodes.size(), "unknown fleet node");
    Node &n = nodes[node];
    n.stats.busyNs -= std::min(n.stats.busyNs, ns);
}

} // namespace svb::load
