/**
 * @file
 * Multi-node fleet simulation for the invocation-load subsystem.
 *
 * A single InstancePool models one serverless host; production
 * platforms route every invocation across a *fleet* of hosts behind a
 * cluster-level scheduler ("Characterizing Commodity Serverless
 * Computing Platforms", PAPERS.md, measures exactly this layer on
 * AWS/Azure/GCP). This header scales the load engine out:
 *
 *  - NodeClass / FleetSpec: the class-structured fleet API. A
 *    NodeClass bundles one hardware/pricing tier of node — its own
 *    calibration platform (ISA + cache/DRAM budget, so a mixed
 *    RISC-V + x86 cluster calibrates each tier on its own simulated
 *    host), per-class keep-alive defaults, a residual speed factor,
 *    and cost/power weights. A FleetSpec is an ordered list of
 *    {class, count} groups; the legacy scalar fields (nodes +
 *    nodeSpeed) remain as a thin single-class adapter and stay
 *    byte-identical.
 *  - Fleet: N simulated nodes, each owning its own InstancePool (the
 *    per-node keep-alive state and concurrency limit) plus the
 *    class-derived service model over the calibrated cold/warm times;
 *  - ClusterScheduler routing policies: random, power-of-two-choices,
 *    least-loaded (by queued-backlog nanoseconds), session/locality
 *    affinity, and the class-aware cost- and power-weighted argmins
 *    (backlog scaled by the candidate's class weight — carbon/price
 *    aware placement over heterogeneous classes);
 *  - per-function fleet-wide concurrency limits: excess client-visible
 *    in-flight requests are throttled with a fast 429-style response;
 *  - scale-to-zero and scale-up lag through the reactive Autoscaler
 *    (autoscaler.hh), evaluated PER CLASS GROUP (each group tracks
 *    its own in-flight demand against the shared autoscaler config),
 *    plus demand-driven activation when a request arrives and no node
 *    is routable;
 *  - node-level faults that compose with the request-level fault layer
 *    (fault.hh): a crash kills every slot on the node (in-flight
 *    attempts fail, warm instances are lost), a partition makes the
 *    node unroutable for its duration (in-flight work completes).
 *
 * Determinism contract: routing draws come from a dedicated
 * Rng::split substream and are skipped entirely when only one node is
 * routable, so a single-node fleet with the default router performs
 * exactly the pool-operation and RNG-draw sequence of the pre-fleet
 * engine — byte-identical histograms, fingerprints and CSV rows. A
 * FleetSpec with one default-constructed class is the same adapter:
 * it degenerates to one group spanning the whole fleet and replays
 * the legacy byte stream exactly (tests/test_fleet.cc pins it). The
 * cost/power-weighted policies are deterministic argmins and draw
 * nothing from the routing substream.
 */

#ifndef SVB_LOAD_FLEET_HH
#define SVB_LOAD_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "autoscaler.hh"
#include "core/system_config.hh"
#include "instance_pool.hh"
#include "sim/rng.hh"

namespace svb::load
{

/** Cluster-scheduler routing policy. */
enum class RoutingPolicy
{
    /** Deterministic argmin of queued-backlog ns (the default; draws
     *  no randomness, so it is the byte-identity baseline). */
    LeastLoaded,
    /** Uniformly random routable node. */
    Random,
    /** Power-of-two-choices: two uniform draws, keep the less loaded. */
    PowerOfTwo,
    /** Session/locality affinity: fn hashes to a home node; falls back
     *  to least-loaded when the home node is unroutable. */
    Affinity,
    /** Class-aware cost-weighted argmin: minimise (backlog ns + 1) x
     *  the node class's costPerHour. Deterministic, zero draws; with
     *  equal backlogs the cheapest class wins. */
    CostWeighted,
    /** Class-aware power/carbon-weighted argmin: minimise (backlog ns
     *  + 1) x the node class's watts. Deterministic, zero draws. */
    PowerWeighted,
};

/** One scheduled node-level fault. */
struct NodeFaultEvent
{
    enum class Kind
    {
        /** All slots killed at atNs (in-flight attempts fail, warm
         *  instances lost); unroutable until atNs + durationNs. */
        Crash,
        /** Unroutable (route-around) for the duration; in-flight work
         *  still completes. */
        Partition,
    };
    Kind kind = Kind::Crash;
    unsigned node = 0;
    uint64_t atNs = 0;
    uint64_t durationNs = 500'000'000; // 500 ms
};

/**
 * One hardware/pricing class of fleet node: the unit of calibration,
 * keep-alive defaults and cost/power accounting in a heterogeneous
 * (e.g. mixed RISC-V + x86) cluster.
 */
struct NodeClass
{
    /** Class tag. Required non-empty for every class of a FleetSpec;
     *  must be free of the result-cache metacharacters (',', '|',
     *  '='). When the class carries its own calibration platform the
     *  tag namespaces the cache keys and checkpoint fingerprints
     *  ("<isa>@<tag>") away from the plain per-ISA rows. */
    std::string name;
    /** Per-class calibration platform (ISA, cores, clock, cache/DRAM
     *  budget). Only read when ownSystem is true; otherwise the class
     *  calibrates on the scenario's own cluster — the legacy shared
     *  service model. */
    SystemConfig system;
    bool ownSystem = false;
    /** Per-class InstancePool defaults (slots, keep-alive policy).
     *  Only read when ownPool is true; otherwise the scenario's
     *  PoolConfig applies, as it always did. */
    PoolConfig pool;
    bool ownPool = false;
    /** Residual service-time multiplier over the class's calibrated
     *  model; exactly 1.0 (the default) leaves service times
     *  bit-untouched. */
    double speedFactor = 1.0;
    /** Cost weight of one node of this class (arbitrary $/h units);
     *  the CostWeighted router and the capacity-per-dollar figures
     *  read it. */
    double costPerHour = 1.0;
    /** Power/carbon weight of one provisioned node, in watts; the
     *  PowerWeighted router and the capacity-per-watt figures read
     *  it. */
    double watts = 1.0;

    /** A class calibrated on the stock Chapter-4 platform of @p isa
     *  (SystemConfig::paperConfig), tagged @p name_arg. */
    static NodeClass forIsa(const std::string &name_arg, IsaId isa);
};

/** One {class, count} group of a FleetSpec. */
struct FleetGroup
{
    NodeClass klass;
    unsigned count = 1;
};

/**
 * The class-structured fleet shape: an ordered list of {class, count}
 * groups. Node ids are assigned group-major (group 0's nodes first),
 * so a single-group spec numbers its nodes exactly like the legacy
 * scalar API.
 */
struct FleetSpec
{
    std::vector<FleetGroup> groups;

    bool empty() const { return groups.empty(); }
    unsigned nodeCount() const
    {
        unsigned n = 0;
        for (const FleetGroup &g : groups)
            n += g.count;
        return n;
    }
};

/** Fleet shape and scheduler parameters. */
struct FleetConfig
{
    /** Simulated hosts; 1 reproduces the single-pool engine. Ignored
     *  (derived from the group counts) when `spec` is non-empty. */
    unsigned nodes = 1;
    RoutingPolicy routing = RoutingPolicy::LeastLoaded;
    /** Fleet-wide cap on client-visible in-flight requests per
     *  function; 0 = unlimited. Excess attempts are throttled. */
    unsigned fnConcurrencyLimit = 0;
    /** Latency of the 429-style response a throttled request gets. */
    uint64_t throttleNs = 50'000; // 50 us
    /** Per-node service-time multiplier (empty = all 1.0). Factors of
     *  exactly 1.0 leave service times bit-untouched. Legacy adapter:
     *  mutually exclusive with `spec` (classes carry speedFactor). */
    std::vector<double> nodeSpeed;
    AutoscalerConfig autoscaler;
    /** Scheduled node crashes / partitions, applied on the engine's
     *  event timeline. */
    std::vector<NodeFaultEvent> nodeFaults;
    /** Class-structured fleet shape. When non-empty it replaces
     *  `nodes` (sum of group counts) and `nodeSpeed` (per-class
     *  speedFactor); a spec of one default class is byte-identical
     *  to the legacy scalar fields. */
    FleetSpec spec;

    /** Total nodes, whichever API described the fleet. */
    unsigned nodeCount() const
    {
        return spec.empty() ? nodes : spec.nodeCount();
    }

    /** @return true when any fleet machinery beyond the single-pool
     *  engine is engaged (used to keep legacy trace/stat surfaces
     *  byte-identical for plain scenarios). */
    bool engaged() const
    {
        return nodeCount() > 1 || autoscaler.enabled ||
               !nodeFaults.empty() || fnConcurrencyLimit > 0 ||
               !nodeSpeed.empty() || !spec.empty();
    }
};

/** Per-node outcome counters over a run. */
struct NodeStats
{
    /** Attempts routed (and started) on this node. */
    uint64_t routed = 0;
    /** Accumulated slot-occupancy time (service ns actually held). */
    uint64_t busyNs = 0;
    /** Node-level crash events applied to this node. */
    uint64_t crashEvents = 0;
};

/**
 * The fleet of nodes plus the cluster scheduler over them.
 *
 * The load engine drives it per attempt: route() picks (or defers)
 * the node, pool(node) serves the usual acquire/release/kill
 * sequence, and onAttemptStart/onAttemptEnd keep the in-flight and
 * utilisation accounting that routing, throttling and autoscaling
 * read. All state changes happen at simulated-time points the engine
 * supplies; nothing here reads clocks or global state.
 *
 * Class structure: nodes are grouped by NodeClass (a legacy scalar
 * config becomes one synthetic default group spanning the fleet), and
 * the autoscaler runs one evaluation loop per group on a shared
 * clock, sizing each group against its own in-flight demand — so a
 * quiet class scales to zero while a loaded one holds its ceiling.
 */
class Fleet
{
  public:
    static constexpr unsigned badNode = ~0u;

    /**
     * @param config    fleet shape and scheduler parameters
     * @param node_pool per-node InstancePool configuration (the
     *                  default for classes without their own pool)
     * @param num_fns   functions in the scenario mix (fn ids < this)
     */
    Fleet(const FleetConfig &config, const PoolConfig &node_pool,
          unsigned num_fns);

    /** route()'s decision for one attempt. */
    struct Route
    {
        /** Chosen node, or badNode when no node is routable yet. */
        unsigned node = badNode;
        /** When node == badNode and !throttled: earliest time a node
         *  can serve (scale-up lag / fault recovery); the attempt
         *  re-enters the timeline then. */
        uint64_t retryAtNs = 0;
        /** The per-function concurrency limit rejected the attempt. */
        bool throttled = false;
    };

    /**
     * Advance the autoscaler to @p now_ns and route one attempt of
     * function @p fn. @p rng is the dedicated routing substream; it
     * is only drawn from when the policy is randomised AND more than
     * one node is routable.
     *
     * @p preferred_node (badNode = none) is a placement hint from the
     * caller — the workflow engine's payload-affinity policy names
     * the producer's node here. A routable preferred node is chosen
     * directly, with no policy evaluation and no routing draws (the
     * hint must not perturb the routing substream of co-scheduled
     * attempts); an unroutable one falls back to the configured
     * policy, counted in preferredMisses() so affinity misses are
     * observable. Throttling applies either way.
     */
    Route route(uint32_t fn, uint64_t now_ns, Rng &rng,
                unsigned preferred_node = badNode);

    /** The instance pool of @p node. */
    InstancePool &pool(unsigned node);

    /**
     * An attempt was placed on @p node: runs from @p start_ns to
     * @p server_end_ns server-side. Updates in-flight counts (client
     * concurrency), busy-time and idle bookkeeping.
     */
    void onAttemptStart(unsigned node, uint32_t fn, uint64_t start_ns,
                        uint64_t server_end_ns);

    /** The client-visible side of an attempt on @p node ended. */
    void onAttemptEnd(unsigned node, uint32_t fn);

    /**
     * Apply @p ev at its scheduled time: mark the node unroutable
     * for the duration; a crash additionally kills every slot of its
     * pool. The engine converts the node's in-flight attempts itself
     * (it owns the event timeline).
     */
    void applyNodeFault(const NodeFaultEvent &ev);

    /** Give back @p ns of accounted busy time on @p node (an attempt
     *  a node crash truncated). */
    void truncateBusy(unsigned node, uint64_t ns);

    /** @return true when @p node can take traffic at @p now_ns. */
    bool routable(unsigned node, uint64_t now_ns) const;

    /** Queued-backlog load metric of @p node (routing order key). */
    uint64_t backlogNs(unsigned node, uint64_t now_ns) const;

    /** Residual service-time multiplier of @p node: the legacy
     *  per-node factor, or the node's class speedFactor (1.0 when
     *  homogeneous). */
    double speedFactor(unsigned node) const;

    unsigned nodeCount() const { return unsigned(nodes.size()); }

    // --- class structure -------------------------------------------------
    /** Was the fleet described through a FleetSpec (>= 1 explicit
     *  class)? False for the legacy scalar adapter. */
    bool classed() const { return !cfg.spec.empty(); }
    /** Class groups (1 for a legacy scalar fleet). */
    unsigned groupCount() const { return unsigned(groups.size()); }
    /** The group (== class index) @p node belongs to. */
    unsigned groupOf(unsigned node) const;
    /** The class of group @p g. */
    const NodeClass &nodeClass(unsigned g) const;
    /** Currently-activated nodes of group @p g. */
    unsigned groupActiveNodes(unsigned g) const;
    /** Provisioned fleet power, in milliwatts (count x watts over all
     *  groups; nodes x 1000 for a legacy fleet of 1 W defaults). */
    uint64_t fleetPowerMw() const;
    /** Provisioned fleet cost, in milli-$/h (same shape). */
    uint64_t fleetCostMilli() const;

    /** Nodes currently activated (including ones still in their
     *  scale-up lag window). */
    unsigned activeNodes() const;
    /** Peak concurrently-activated nodes over the run. */
    unsigned maxActiveNodes() const { return maxActive; }
    /** Scale-up activations performed (autoscaler or demand-driven). */
    uint64_t activations() const { return numActivations; }
    /** Scale-downs performed. */
    uint64_t deactivations() const { return numDeactivations; }
    /** Autoscaler evaluation boundaries consumed (per-group loops
     *  share one clock, so this counts boundaries, not groups). */
    uint64_t autoscaleEvaluations() const
    {
        return scalers.front().evaluations();
    }
    /** Attempts rejected by the per-function concurrency limit. */
    uint64_t throttles() const { return numThrottles; }
    /** Placement hints honoured (preferred node was routable). */
    uint64_t preferredHits() const { return numPreferredHits; }
    /** Placement hints that fell back to the routing policy (the
     *  preferred node was unroutable at route time). */
    uint64_t preferredMisses() const { return numPreferredMisses; }

    const NodeStats &nodeStats(unsigned node) const;
    const FleetConfig &config() const { return cfg; }

  private:
    struct Node
    {
        InstancePool pool;
        NodeStats stats;
        /** Activated (routable once readyAtNs passes). */
        bool active = true;
        /** Activation lag end; 0 for initially-active nodes. */
        uint64_t readyAtNs = 0;
        /** Crash/partition route-around window end. */
        uint64_t downUntilNs = 0;
        /** Client-visible in-flight attempts on this node. */
        unsigned inFlight = 0;
        /** Last time the node was known busy (idle-retire clock). */
        uint64_t lastBusyNs = 0;

        explicit Node(const PoolConfig &pool_cfg) : pool(pool_cfg) {}
    };

    /** One contiguous run of same-class nodes. */
    struct Group
    {
        NodeClass klass;
        unsigned first = 0;
        unsigned count = 0;
    };

    /** Consume autoscaler evaluation boundaries up to @p now_ns. */
    void advance(uint64_t now_ns);
    /** Activate/retire group @p g's nodes toward @p desired at @p t_ns. */
    void applyDesired(unsigned g, unsigned desired, uint64_t t_ns);
    /** Activate group @p g's lowest-index inactive node at @p t_ns. */
    void activateOne(unsigned g, uint64_t t_ns);
    /** Client-visible in-flight attempts across group @p g. */
    unsigned groupInFlight(unsigned g) const;
    /**
     * No node is routable at @p now_ns: trigger demand-driven
     * activation if possible and @return the earliest time any node
     * becomes routable (> now_ns unless an activation completes
     * instantly under a zero scale-up lag).
     */
    uint64_t ensureCapacity(uint64_t now_ns);

    FleetConfig cfg;
    std::vector<Group> groups;
    /** One autoscaler loop per group, on a shared evaluation clock. */
    std::vector<Autoscaler> scalers;
    std::vector<Node> nodes;
    /** Client-visible in-flight per function (throttle limit). */
    std::vector<unsigned> fnInFlight;
    unsigned totalInFlight = 0;
    unsigned maxActive = 0;
    uint64_t numActivations = 0;
    uint64_t numDeactivations = 0;
    uint64_t numThrottles = 0;
    uint64_t numPreferredHits = 0;
    uint64_t numPreferredMisses = 0;
    /** Scratch candidate list (avoids per-route allocation). */
    std::vector<unsigned> cands;
};

} // namespace svb::load

#endif // SVB_LOAD_FLEET_HH
