#include "instance_pool.hh"

#include "sim/logging.hh"

namespace svb::load
{

InstancePool::InstancePool(const PoolConfig &config) : cfg(config)
{
    svb_assert(cfg.maxInstances > 0, "pool needs at least one slot");
    slots.resize(cfg.maxInstances);
}

void
InstancePool::expireIdle(uint64_t now_ns)
{
    if (cfg.policy != KeepAlivePolicy::FixedTtl)
        return;
    for (Instance &inst : slots) {
        // The TTL is inclusive: an instance whose idle time has
        // *reached* keepAliveNs is gone, so a request arriving exactly
        // at the boundary pays the cold path (the platform tears the
        // container down at the deadline, not one tick later).
        if (inst.live && !inst.reserved && inst.busyUntilNs <= now_ns &&
            now_ns - inst.lastUsedNs >= cfg.keepAliveNs) {
            inst.live = false;
            inst.lease.reset();
            ++poolStats.evictions;
        }
    }
}

InstancePool::Placement
InstancePool::acquire(uint32_t fn_id, uint64_t now_ns)
{
    expireIdle(now_ns);

    const bool reuse_allowed = cfg.policy != KeepAlivePolicy::AlwaysCold;
    const bool provisioned = cfg.policy == KeepAlivePolicy::AlwaysWarm;

    // 1. A warm idle instance of this function: reuse the most
    //    recently used one (lets the others age toward eviction).
    //    Reserved slots are invisible to every step: an acquire whose
    //    release has not happened yet holds its slot, so two arrivals
    //    at the same timestamp can never double-book one instance.
    if (reuse_allowed) {
        int best = -1;
        for (unsigned i = 0; i < slots.size(); ++i) {
            const Instance &inst = slots[i];
            if (inst.live && !inst.reserved && inst.fnId == fn_id &&
                inst.busyUntilNs <= now_ns &&
                (best < 0 ||
                 inst.lastUsedNs > slots[unsigned(best)].lastUsedNs))
                best = int(i);
        }
        if (best >= 0) {
            Instance &inst = slots[unsigned(best)];
            inst.reserved = true;
            ++poolStats.warmHits;
            return {unsigned(best), false, now_ns};
        }
    }

    // 2. A free (dead) slot: start a new instance there.
    for (unsigned i = 0; i < slots.size(); ++i) {
        if (!slots[i].live && !slots[i].reserved &&
            slots[i].busyUntilNs <= now_ns) {
            slots[i].fnId = fn_id;
            slots[i].reserved = true;
            if (provisioned)
                ++poolStats.warmHits;
            else
                ++poolStats.coldStarts;
            return {i, !provisioned, now_ns};
        }
    }

    // 3. Evict the least recently used idle instance (of any
    //    function; same-function idles were caught in step 1).
    int victim = -1;
    for (unsigned i = 0; i < slots.size(); ++i) {
        const Instance &inst = slots[i];
        if (inst.live && !inst.reserved && inst.busyUntilNs <= now_ns &&
            (victim < 0 ||
             inst.lastUsedNs < slots[unsigned(victim)].lastUsedNs))
            victim = int(i);
    }
    if (victim >= 0) {
        Instance &inst = slots[unsigned(victim)];
        inst.fnId = fn_id;
        inst.live = false;
        inst.lease.reset();
        inst.reserved = true;
        // Recycled slot: the victim's usage history must not leak
        // into the new instance's FixedTtl age, so restart its clock
        // at the takeover time.
        inst.lastUsedNs = now_ns;
        inst.busyUntilNs = now_ns;
        ++poolStats.evictions;
        if (provisioned)
            ++poolStats.warmHits;
        else
            ++poolStats.coldStarts;
        return {unsigned(victim), !provisioned, now_ns};
    }

    // 4. Every slot is busy: queue behind the earliest-free one. If
    //    it is running this same function, the follow-up request is a
    //    warm hit (the instance stays resident); otherwise the slot
    //    is recycled for us — an eviction plus a fresh start.
    //    A reserved slot's busyUntilNs is not final until its release,
    //    so only released (busy) slots can be queued behind.
    int qi = -1;
    for (unsigned i = 0; i < slots.size(); ++i) {
        if (slots[i].reserved)
            continue;
        if (qi < 0 || slots[i].busyUntilNs < slots[unsigned(qi)].busyUntilNs)
            qi = int(i);
    }
    svb_assert(qi >= 0, "acquire with every slot reserved: the pool is "
               "oversubscribed beyond its release discipline");
    const unsigned q = unsigned(qi);
    const uint64_t start = slots[q].busyUntilNs;
    const bool same_fn =
        reuse_allowed && slots[q].live && slots[q].fnId == fn_id;
    if (same_fn) {
        slots[q].reserved = true;
        ++poolStats.warmHits;
        return {q, false, start};
    }
    if (slots[q].live)
        ++poolStats.evictions;
    slots[q].live = false;
    slots[q].lease.reset();
    slots[q].fnId = fn_id;
    slots[q].reserved = true;
    // Same recycle reset as step 3: the new instance's age starts at
    // its (queued) service start, not at the victim's last use.
    slots[q].lastUsedNs = start;
    slots[q].busyUntilNs = start;
    if (provisioned)
        ++poolStats.warmHits;
    else
        ++poolStats.coldStarts;
    return {q, !provisioned, start};
}

void
InstancePool::release(unsigned slot, uint64_t end_ns)
{
    svb_assert(slot < slots.size(), "release of unknown slot");
    Instance &inst = slots[slot];
    svb_assert(inst.reserved, "release of a slot that was not acquired");
    inst.reserved = false;
    inst.busyUntilNs = end_ns;
    inst.lastUsedNs = end_ns;
    // AlwaysCold tears the instance down with the request; every
    // other policy keeps it resident (until TTL/LRU eviction).
    inst.live = cfg.policy != KeepAlivePolicy::AlwaysCold;
    if (!inst.live)
        inst.lease.reset();
}

void
InstancePool::kill(unsigned slot, uint64_t at_ns)
{
    svb_assert(slot < slots.size(), "kill of unknown slot");
    Instance &inst = slots[slot];
    svb_assert(inst.reserved, "kill of a slot that was not acquired");
    inst.reserved = false;
    inst.live = false;
    inst.lease.reset();
    inst.busyUntilNs = at_ns;
    inst.lastUsedNs = at_ns;
    ++poolStats.crashes;
    ++poolStats.evictions;
}

unsigned
InstancePool::crashAll(uint64_t at_ns)
{
    unsigned killed = 0;
    for (Instance &inst : slots) {
        const bool busy = inst.reserved || inst.busyUntilNs > at_ns;
        if (busy) {
            // In-flight work dies with the node: same accounting as a
            // per-slot kill().
            ++poolStats.crashes;
            ++poolStats.evictions;
            ++killed;
        } else if (inst.live) {
            // Idle warm instances are lost too, but nothing was
            // running on them — an eviction, not a crash.
            ++poolStats.evictions;
        }
        inst.live = false;
        inst.reserved = false;
        inst.lease.reset();
        inst.busyUntilNs = at_ns;
        inst.lastUsedNs = at_ns;
    }
    return killed;
}

void
InstancePool::evictAll(uint64_t at_ns)
{
    for (Instance &inst : slots) {
        svb_assert(!inst.reserved && inst.busyUntilNs <= at_ns,
                   "evictAll() of a pool that is not quiescent");
        if (inst.live) {
            inst.live = false;
            ++poolStats.evictions;
        }
        inst.lease.reset();
        inst.busyUntilNs = at_ns;
        inst.lastUsedNs = at_ns;
    }
}

uint64_t
InstancePool::slotLastUsedNs(unsigned slot) const
{
    svb_assert(slot < slots.size(), "unknown slot");
    return slots[slot].lastUsedNs;
}

uint64_t
InstancePool::slotBusyUntilNs(unsigned slot) const
{
    svb_assert(slot < slots.size(), "unknown slot");
    return slots[slot].busyUntilNs;
}

void
InstancePool::setLease(unsigned slot, std::shared_ptr<const void> lease)
{
    svb_assert(slot < slots.size(), "setLease of unknown slot");
    slots[slot].lease = std::move(lease);
}

bool
InstancePool::slotHasLease(unsigned slot) const
{
    svb_assert(slot < slots.size(), "unknown slot");
    return slots[slot].lease != nullptr;
}

unsigned
InstancePool::liveInstances() const
{
    unsigned n = 0;
    for (const Instance &inst : slots)
        n += inst.live ? 1 : 0;
    return n;
}

unsigned
InstancePool::busySlots(uint64_t now_ns) const
{
    unsigned n = 0;
    for (const Instance &inst : slots)
        n += (inst.reserved || inst.busyUntilNs > now_ns) ? 1 : 0;
    return n;
}

uint64_t
InstancePool::backlogNs(uint64_t now_ns) const
{
    uint64_t backlog = 0;
    for (const Instance &inst : slots) {
        if (inst.busyUntilNs > now_ns)
            backlog += inst.busyUntilNs - now_ns;
    }
    return backlog;
}

} // namespace svb::load
