#include "arrival.hh"

#include <cmath>

#include "sim/logging.hh"

namespace svb::load
{

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config, Rng rng_arg)
    : cfg(config), rng(rng_arg)
{
    svb_assert(cfg.ratePerSec > 0.0, "arrival rate must be positive");
    if (cfg.kind == ArrivalKind::Burst) {
        svb_assert(cfg.burstFactor >= 1.0, "burstFactor < 1");
        svb_assert(cfg.burstDuty > 0.0 && cfg.burstDuty < 1.0,
                   "burstDuty outside (0,1)");
        svb_assert(cfg.burstPeriodNs > 0, "burstPeriodNs == 0");
    }
}

uint64_t
ArrivalProcess::gapNs()
{
    double rate = cfg.ratePerSec;
    if (cfg.kind == ArrivalKind::Uniform) {
        const double gap = 1e9 / rate;
        return std::max<uint64_t>(1, uint64_t(std::llround(gap)));
    }
    if (cfg.kind == ArrivalKind::Burst) {
        // Square-wave modulated Poisson via time rescaling: draw a
        // unit-rate exponential and advance through the integrated
        // intensity, switching rates exactly at phase boundaries.
        // (Drawing one gap at the phase's instantaneous rate would
        // let long off-phase gaps overshoot the short on-phase and
        // bias the long-run rate low.) The on-phase runs at
        // burstFactor * rate; the off-phase absorbs the remainder,
        // floored so the stream never fully stops.
        double need = -std::log(1.0 - rng.nextDouble());
        const double off = (1.0 - cfg.burstDuty * cfg.burstFactor) /
                           (1.0 - cfg.burstDuty);
        const double onRate = rate * cfg.burstFactor * 1e-9;
        const double offRate = rate * std::max(off, 0.02) * 1e-9;
        const uint64_t onLen =
            uint64_t(double(cfg.burstPeriodNs) * cfg.burstDuty);
        double t = double(nowNs);
        for (;;) {
            const uint64_t pos = uint64_t(t) % cfg.burstPeriodNs;
            const bool on = pos < onLen;
            const double r = on ? onRate : offRate;
            const double dt = double((on ? onLen : cfg.burstPeriodNs) - pos);
            if (r * dt >= need) {
                t += need / r;
                break;
            }
            need -= r * dt;
            t += dt;
        }
        return std::max<uint64_t>(1, uint64_t(t) - nowNs);
    }
    // Exponential gap via inverse transform; 1-u keeps log() finite.
    const double u = rng.nextDouble();
    const double gap = -std::log(1.0 - u) / rate * 1e9;
    return std::max<uint64_t>(1, uint64_t(std::llround(gap)));
}

uint64_t
ArrivalProcess::nextArrivalNs()
{
    nowNs += gapNs();
    return nowNs;
}

std::vector<uint64_t>
ArrivalProcess::generate(const ArrivalConfig &config, Rng rng, size_t n)
{
    ArrivalProcess ap(config, rng);
    std::vector<uint64_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(ap.nextArrivalNs());
    return out;
}

} // namespace svb::load
