#include "ir.hh"

#include "sim/logging.hh"

namespace svb::gen
{

int
Program::findFunction(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name)
            return int(i);
    }
    return -1;
}

// --------------------------------------------------------------------------
// FunctionBuilder
// --------------------------------------------------------------------------

void
FunctionBuilder::movi(int dst, int64_t imm_val)
{
    IrInst inst;
    inst.op = IrOp::MovImm;
    inst.dst = dst;
    inst.imm = imm_val;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::mov(int dst, int a)
{
    IrInst inst;
    inst.op = IrOp::Mov;
    inst.dst = dst;
    inst.a = a;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::bin(BinOp op, int dst, int a, int b)
{
    IrInst inst;
    inst.op = IrOp::Bin;
    inst.bop = op;
    inst.dst = dst;
    inst.a = a;
    inst.b = b;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::bini(BinOp op, int dst, int a, int64_t imm_val)
{
    IrInst inst;
    inst.op = IrOp::BinImm;
    inst.bop = op;
    inst.dst = dst;
    inst.a = a;
    inst.imm = imm_val;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::load(int dst, int base, int64_t off, uint8_t size,
                      bool sgn)
{
    IrInst inst;
    inst.op = IrOp::Load;
    inst.dst = dst;
    inst.a = base;
    inst.imm = off;
    inst.size = size;
    inst.sgn = sgn;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::store(int base, int64_t off, int src, uint8_t size)
{
    IrInst inst;
    inst.op = IrOp::Store;
    inst.a = base;
    inst.b = src;
    inst.imm = off;
    inst.size = size;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::lea(int dst, Addr absolute)
{
    IrInst inst;
    inst.op = IrOp::Lea;
    inst.dst = dst;
    inst.imm = int64_t(absolute);
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::leaLocal(int dst, int64_t frame_off)
{
    IrInst inst;
    inst.op = IrOp::LeaLocal;
    inst.dst = dst;
    inst.imm = frame_off;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::br(int label_id)
{
    IrInst inst;
    inst.op = IrOp::Br;
    inst.label = label_id;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::brcond(CondOp cond, int a, int b, int label_id)
{
    IrInst inst;
    inst.op = IrOp::BrCond;
    inst.cond = cond;
    inst.a = a;
    inst.b = b;
    inst.label = label_id;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::brcondi(CondOp cond, int a, int64_t imm_val, int label_id)
{
    IrInst inst;
    inst.op = IrOp::BrCondImm;
    inst.cond = cond;
    inst.a = a;
    inst.imm = imm_val;
    inst.label = label_id;
    fn.insts.push_back(std::move(inst));
}

int
FunctionBuilder::call(int callee, std::initializer_list<int> args)
{
    svb_assert(args.size() <= 4, "too many call arguments");
    IrInst inst;
    inst.op = IrOp::Call;
    inst.callee = callee;
    inst.dst = newVreg();
    inst.args.assign(args.begin(), args.end());
    const int dst = inst.dst;
    fn.insts.push_back(std::move(inst));
    return dst;
}

void
FunctionBuilder::callVoid(int callee, std::initializer_list<int> args)
{
    svb_assert(args.size() <= 4, "too many call arguments");
    IrInst inst;
    inst.op = IrOp::Call;
    inst.callee = callee;
    inst.args.assign(args.begin(), args.end());
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::ret(int a)
{
    IrInst inst;
    inst.op = IrOp::Ret;
    inst.a = a;
    fn.insts.push_back(std::move(inst));
}

int
FunctionBuilder::syscall(uint64_t number, std::initializer_list<int> args)
{
    svb_assert(args.size() <= 3, "too many syscall arguments");
    IrInst inst;
    inst.op = IrOp::Syscall;
    inst.imm = int64_t(number);
    inst.dst = newVreg();
    inst.args.assign(args.begin(), args.end());
    const int dst = inst.dst;
    fn.insts.push_back(std::move(inst));
    return dst;
}

void
FunctionBuilder::halt()
{
    IrInst inst;
    inst.op = IrOp::Halt;
    fn.insts.push_back(std::move(inst));
}

void
FunctionBuilder::label(int l)
{
    IrInst inst;
    inst.op = IrOp::Label;
    inst.label = l;
    fn.insts.push_back(std::move(inst));
}

int
FunctionBuilder::imm(int64_t value)
{
    const int v = newVreg();
    movi(v, value);
    return v;
}

// --------------------------------------------------------------------------
// ProgramBuilder
// --------------------------------------------------------------------------

Addr
ProgramBuilder::addData(const void *bytes, size_t len)
{
    while (prog.data.size() % 8 != 0)
        prog.data.push_back(0);
    const Addr addr = layout::dataBase + prog.data.size();
    const auto *p = static_cast<const uint8_t *>(bytes);
    prog.data.insert(prog.data.end(), p, p + len);
    return addr;
}

Addr
ProgramBuilder::addZeroData(size_t len)
{
    while (prog.data.size() % 8 != 0)
        prog.data.push_back(0);
    const Addr addr = layout::dataBase + prog.data.size();
    prog.data.insert(prog.data.end(), len, 0);
    return addr;
}

FunctionBuilder
ProgramBuilder::beginFunction(const std::string &name, unsigned num_args)
{
    svb_assert(prog.findFunction(name) < 0, "duplicate function '", name,
               "'");
    prog.functions.emplace_back();
    IrFunction &fn = prog.functions.back();
    fn.name = name;
    fn.numArgs = num_args;
    fn.numVregs = int(num_args);
    return FunctionBuilder(fn);
}

int
ProgramBuilder::functionIndex(const std::string &name) const
{
    const int idx = prog.findFunction(name);
    svb_assert(idx >= 0, "unknown function '", name, "'");
    return idx;
}

void
ProgramBuilder::setEntry(const std::string &name)
{
    prog.entryFunction = functionIndex(name);
}

Program
ProgramBuilder::take()
{
    svb_assert(prog.entryFunction >= 0, "program has no entry function");
    return std::move(prog);
}

} // namespace svb::gen
