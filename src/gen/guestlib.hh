/**
 * @file
 * The guest-side support library.
 *
 * A small set of IR functions linked into every guest program: memory
 * copy/zero, the shared-ring RPC primitives (the gRPC-over-loopback
 * substitute), FNV hashing, and working-set touch loops used by the
 * runtime bootstrap models. All of this executes as real simulated
 * guest code, so its loads/stores/branches show up in the cache and
 * branch-predictor statistics.
 */

#ifndef SVB_GEN_GUESTLIB_HH
#define SVB_GEN_GUESTLIB_HH

#include "ir.hh"

namespace svb::gen
{

/**
 * Number of slots in every RPC ring. 8 slots of 256 bytes plus the
 * 16-byte header keeps a whole ring within one 4 KiB page.
 */
constexpr int64_t ringSlots = 8;

/** Function indices of the library routines within one program. */
struct GuestLib
{
    int memCopy = -1;   ///< memCopy(dst, src, len)
    int memZero = -1;   ///< memZero(dst, len)
    int ringSend = -1;  ///< ringSend(ring, buf, len); blocks via yield
    int ringRecv = -1;  ///< len = ringRecv(ring, buf); blocks via yield
    int ringPoll = -1;  ///< pending = ringPoll(ring); non-blocking
    int fnvHash = -1;   ///< h = fnvHash(buf, len)
    int touchRead = -1; ///< sum = touchRead(ptr, len, stride)
    int touchWrite = -1;///< touchWrite(ptr, len, stride)
    int burnAlu = -1;   ///< x = burnAlu(iters) — pure compute loop

    /** Emit the library into @p pb and return the indices. */
    static GuestLib addTo(ProgramBuilder &pb);
};

} // namespace svb::gen

#endif // SVB_GEN_GUESTLIB_HH
