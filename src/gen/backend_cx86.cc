/**
 * @file
 * CX86 backend: lowers the IR to the synthetic CISC encoding.
 *
 * Register pool: rbp, r10-r15 (only 7 vregs live in registers — the
 * CISC stand-in spills earlier than RV64, as real x86-64 does
 * relative to 31 GPR RISC-V). Scratch: r0/r7/r8. Arguments:
 * r1/r2/r3/r6. Syscall number: r9.
 */

#include "ir.hh"
#include "isa/cx86/assembler.hh"
#include "sim/logging.hh"

namespace svb::gen
{

namespace
{

using cx86::Assembler;
using Reg = uint8_t;

constexpr Reg pool[7] = {cx::rbp, cx::r10, cx::r11, cx::r12, cx::r13,
                         cx::r14, cx::r15};
constexpr unsigned poolSize = 7;
constexpr Reg argRegs[4] = {cx::r1, cx::r2, cx::r3, cx::r6};
constexpr Reg scratchA = cx::r7;
constexpr Reg scratchB = cx::r8;
constexpr Reg scratchC = cx::r0;

class FuncLowering
{
  public:
    FuncLowering(Assembler &as, const IrFunction &fn,
                 const std::vector<AsmLabel> &func_labels, size_t fn_idx)
        : as(as), fn(fn), funcLabels(func_labels), fnIdx(fn_idx)
    {
        spillCount =
            fn.numVregs > int(poolSize) ? fn.numVregs - int(poolSize) : 0;
        savedCount = std::min<unsigned>(unsigned(fn.numVregs), poolSize);
        frameBytes = fn.localBytes + Addr(spillCount) * 8;
        frameBytes = (frameBytes + 15) & ~Addr(15);
        for (int i = 0; i < fn.numLabels; ++i)
            labels.push_back(as.newLabel());
        epilogue = as.newLabel();
    }

    void
    lower()
    {
        prologue();
        for (const IrInst &inst : fn.insts)
            lowerInst(inst);
        emitEpilogue();
    }

  private:
    bool isPool(int v) const { return v < int(poolSize); }
    Reg poolReg(int v) const { return pool[v]; }

    int32_t
    spillOff(int v) const
    {
        return int32_t(fn.localBytes) + int32_t(v - int(poolSize)) * 8;
    }

    Reg
    useSrc(int v, Reg scratch)
    {
        svb_assert(v >= 0 && v < fn.numVregs, fn.name, ": bad vreg ", v);
        if (isPool(v))
            return poolReg(v);
        as.load(scratch, cx::rsp, spillOff(v), 8, false);
        return scratch;
    }

    Reg
    defDst(int v, Reg scratch)
    {
        return isPool(v) ? poolReg(v) : scratch;
    }

    void
    sealDst(int v, Reg r)
    {
        if (!isPool(v))
            as.store(r, cx::rsp, spillOff(v), 8);
    }

    void
    prologue()
    {
        as.bind(funcLabels[fnIdx]);
        for (unsigned i = 0; i < savedCount; ++i)
            as.push(pool[i]);
        if (frameBytes > 0)
            as.subImm(cx::rsp, int32_t(frameBytes));
        for (unsigned i = 0; i < fn.numArgs && i < 4; ++i) {
            if (isPool(int(i)))
                as.mov(poolReg(int(i)), argRegs[i]);
            else
                as.store(argRegs[i], cx::rsp, spillOff(int(i)), 8);
        }
    }

    void
    emitEpilogue()
    {
        as.bind(epilogue);
        if (frameBytes > 0)
            as.addImm(cx::rsp, int32_t(frameBytes));
        for (unsigned i = savedCount; i-- > 0;)
            as.pop(pool[i]);
        as.ret();
    }

    void
    emitBinOp(BinOp op, Reg rd, Reg rb)
    {
        switch (op) {
          case BinOp::Add: as.add(rd, rb); break;
          case BinOp::Sub: as.sub(rd, rb); break;
          case BinOp::Mul: as.imul(rd, rb); break;
          case BinOp::Div: as.idiv(rd, rb); break;
          case BinOp::Rem: as.irem(rd, rb); break;
          case BinOp::Udiv: as.divu(rd, rb); break;
          case BinOp::Urem: as.remu(rd, rb); break;
          case BinOp::And: as.and_(rd, rb); break;
          case BinOp::Or: as.or_(rd, rb); break;
          case BinOp::Xor: as.xor_(rd, rb); break;
          case BinOp::Shl: as.shlr(rd, rb); break;
          case BinOp::Shr: as.shrr(rd, rb); break;
          case BinOp::Sar: as.sarr(rd, rb); break;
        }
    }

    static FlagCond
    flagCondOf(CondOp cond)
    {
        switch (cond) {
          case CondOp::Eq: return FlagCond::Eq;
          case CondOp::Ne: return FlagCond::Ne;
          case CondOp::Lt: return FlagCond::Lt;
          case CondOp::Ge: return FlagCond::Ge;
          case CondOp::Le: return FlagCond::Le;
          case CondOp::Gt: return FlagCond::Gt;
          case CondOp::LtU: return FlagCond::Ltu;
          case CondOp::GeU: return FlagCond::Geu;
        }
        return FlagCond::Eq;
    }

    void
    lowerInst(const IrInst &inst)
    {
        switch (inst.op) {
          case IrOp::MovImm: {
            Reg rd = defDst(inst.dst, scratchA);
            as.movImm(rd, inst.imm);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Mov: {
            Reg ra = useSrc(inst.a, scratchA);
            Reg rd = defDst(inst.dst, scratchA);
            if (rd != ra)
                as.mov(rd, ra);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Bin: {
            Reg ra = useSrc(inst.a, scratchA);
            Reg rb = useSrc(inst.b, scratchB);
            Reg rd = defDst(inst.dst, scratchA);
            if (rd == ra) {
                emitBinOp(inst.bop, rd, rb);
            } else if (rd != rb) {
                as.mov(rd, ra);
                emitBinOp(inst.bop, rd, rb);
            } else {
                as.mov(scratchC, ra);
                emitBinOp(inst.bop, scratchC, rb);
                as.mov(rd, scratchC);
            }
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::BinImm: {
            Reg ra = useSrc(inst.a, scratchA);
            Reg rd = defDst(inst.dst, scratchA);
            if (rd != ra)
                as.mov(rd, ra);
            svb_assert(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX,
                       "cx86 BinImm out of imm32 range");
            const auto imm = int32_t(inst.imm);
            switch (inst.bop) {
              case BinOp::Add: as.addImm(rd, imm); break;
              case BinOp::Sub: as.subImm(rd, imm); break;
              case BinOp::And: as.andImm(rd, imm); break;
              case BinOp::Or: as.orImm(rd, imm); break;
              case BinOp::Xor: as.xorImm(rd, imm); break;
              case BinOp::Mul: as.imulImm(rd, imm); break;
              case BinOp::Shl: as.shl(rd, uint8_t(imm & 63)); break;
              case BinOp::Shr: as.shr(rd, uint8_t(imm & 63)); break;
              case BinOp::Sar: as.sar(rd, uint8_t(imm & 63)); break;
              default:
                as.movImm(scratchB, inst.imm);
                emitBinOp(inst.bop, rd, scratchB);
                break;
            }
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Load: {
            Reg base = useSrc(inst.a, scratchA);
            Reg rd = defDst(inst.dst, scratchA);
            as.load(rd, base, int32_t(inst.imm), inst.size, inst.sgn);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Store: {
            Reg base = useSrc(inst.a, scratchA);
            Reg src = useSrc(inst.b, scratchB);
            as.store(src, base, int32_t(inst.imm), inst.size);
            break;
          }
          case IrOp::Lea: {
            Reg rd = defDst(inst.dst, scratchA);
            as.movImm(rd, inst.imm);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::LeaLocal: {
            Reg rd = defDst(inst.dst, scratchA);
            as.lea(rd, cx::rsp, int32_t(inst.imm));
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Br:
            as.jmp(labels[size_t(inst.label)]);
            break;
          case IrOp::BrCond: {
            Reg ra = useSrc(inst.a, scratchA);
            Reg rb = useSrc(inst.b, scratchB);
            as.cmp(ra, rb);
            as.jcc(flagCondOf(inst.cond), labels[size_t(inst.label)]);
            break;
          }
          case IrOp::BrCondImm: {
            Reg ra = useSrc(inst.a, scratchA);
            svb_assert(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX,
                       "cx86 BrCondImm out of imm32 range");
            as.cmpImm(ra, int32_t(inst.imm));
            as.jcc(flagCondOf(inst.cond), labels[size_t(inst.label)]);
            break;
          }
          case IrOp::Call: {
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int v = inst.args[i];
                if (isPool(v))
                    as.mov(argRegs[i], poolReg(v));
                else
                    as.load(argRegs[i], cx::rsp, spillOff(v), 8, false);
            }
            as.call(funcLabels[size_t(inst.callee)]);
            if (inst.dst >= 0) {
                if (isPool(inst.dst))
                    as.mov(poolReg(inst.dst), cx::r0);
                else
                    as.store(cx::r0, cx::rsp, spillOff(inst.dst), 8);
            }
            break;
          }
          case IrOp::Ret:
            if (inst.a >= 0) {
                Reg ra = useSrc(inst.a, scratchA);
                if (ra != cx::r0)
                    as.mov(cx::r0, ra);
            }
            as.jmp(epilogue);
            break;
          case IrOp::Syscall: {
            static constexpr Reg sysArgs[3] = {cx::r1, cx::r2, cx::r3};
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int v = inst.args[i];
                if (isPool(v))
                    as.mov(sysArgs[i], poolReg(v));
                else
                    as.load(sysArgs[i], cx::rsp, spillOff(v), 8, false);
            }
            as.movImm(cx::r9, inst.imm);
            as.syscall();
            if (inst.dst >= 0) {
                if (isPool(inst.dst))
                    as.mov(poolReg(inst.dst), cx::r0);
                else
                    as.store(cx::r0, cx::rsp, spillOff(inst.dst), 8);
            }
            break;
          }
          case IrOp::Halt:
            as.hlt();
            break;
          case IrOp::Label:
            as.bind(labels[size_t(inst.label)]);
            break;
        }
    }

    Assembler &as;
    const IrFunction &fn;
    const std::vector<AsmLabel> &funcLabels;
    size_t fnIdx;
    std::vector<AsmLabel> labels;
    AsmLabel epilogue;
    unsigned spillCount = 0;
    unsigned savedCount = 0;
    Addr frameBytes = 0;
};

} // namespace

LoadableImage
compileProgramCx86(const Program &program)
{
    Assembler as;

    std::vector<AsmLabel> func_labels;
    for (size_t i = 0; i < program.functions.size(); ++i)
        func_labels.push_back(as.newLabel());

    as.call(func_labels[size_t(program.entryFunction)]);
    as.movImm(cx::r9, 0 /*sysExit*/);
    as.syscall();
    as.hlt(); // unreachable

    std::vector<std::pair<std::string, Addr>> symbols;
    symbols.emplace_back("_start", 0);
    for (size_t i = 0; i < program.functions.size(); ++i) {
        symbols.emplace_back(program.functions[i].name, as.here());
        FuncLowering lowering(as, program.functions[i], func_labels, i);
        lowering.lower();
    }

    LoadableImage image;
    image.symbols = std::move(symbols);
    image.code = as.finish();
    image.rodata = program.data;
    image.heapBytes = program.heapBytes;
    image.stackBytes = program.stackBytes;
    image.entryOffset = 0;
    return image;
}

LoadableImage compileProgramRiscv(const Program &program);

LoadableImage
compileProgram(const Program &program, IsaId isa)
{
    return isa == IsaId::Riscv ? compileProgramRiscv(program)
                               : compileProgramCx86(program);
}

} // namespace svb::gen
