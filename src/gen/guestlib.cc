#include "guestlib.hh"

#include "guest/ring.hh"
#include "guest/syscall_abi.hh"

namespace svb::gen
{

namespace
{

/** memCopy(dst, src, len): 8-byte chunks plus a byte tail. */
void
emitMemCopy(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.memCopy", 3);
    const int dst = f.arg(0), src = f.arg(1), len = f.arg(2);
    const int i = f.newVreg();
    const int tmp = f.newVreg();
    const int addr = f.newVreg();
    const int rem = f.newVreg();
    const int l8 = f.newLabel(), lbyte = f.newLabel(),
              lbloop = f.newLabel(), lend = f.newLabel();

    f.movi(i, 0);
    f.label(l8);
    f.bin(BinOp::Sub, rem, len, i);
    f.brcondi(CondOp::Lt, rem, 8, lbyte);
    f.bin(BinOp::Add, addr, src, i);
    f.load(tmp, addr, 0, 8, false);
    f.bin(BinOp::Add, addr, dst, i);
    f.store(addr, 0, tmp, 8);
    f.addi(i, i, 8);
    f.br(l8);

    f.label(lbyte);
    f.label(lbloop);
    f.brcond(CondOp::GeU, i, len, lend);
    f.bin(BinOp::Add, addr, src, i);
    f.load(tmp, addr, 0, 1, false);
    f.bin(BinOp::Add, addr, dst, i);
    f.store(addr, 0, tmp, 1);
    f.addi(i, i, 1);
    f.br(lbloop);

    f.label(lend);
    f.ret();
}

/** memZero(dst, len): 8-byte stores (len rounded up by the caller). */
void
emitMemZero(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.memZero", 2);
    const int dst = f.arg(0), len = f.arg(1);
    const int i = f.newVreg();
    const int addr = f.newVreg();
    const int zero = f.newVreg();
    const int loop = f.newLabel(), lend = f.newLabel();

    f.movi(i, 0);
    f.movi(zero, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, len, lend);
    f.bin(BinOp::Add, addr, dst, i);
    f.store(addr, 0, zero, 8);
    f.addi(i, i, 8);
    f.br(loop);
    f.label(lend);
    f.ret();
}

/** ringSend(ring, buf, len): blocking producer. */
void
emitRingSend(ProgramBuilder &pb, int mem_copy)
{
    auto f = pb.beginFunction("lib.ringSend", 3);
    const int rg = f.arg(0), buf = f.arg(1), len = f.arg(2);
    const int head = f.newVreg(), tail = f.newVreg(), used = f.newVreg();
    const int slot = f.newVreg(), tmp = f.newVreg();
    const int wait = f.newLabel(), ok = f.newLabel();

    f.label(wait);
    f.load(head, rg, 0, 8, false);
    f.load(tail, rg, 8, 8, false);
    f.bin(BinOp::Sub, used, tail, head);
    f.brcondi(CondOp::Lt, used, ringSlots, ok);
    f.syscall(sys::sysYield, {});
    f.br(wait);

    f.label(ok);
    f.bini(BinOp::And, tmp, tail, ringSlots - 1);
    f.bini(BinOp::Shl, tmp, tmp, 8); // * ring::slotSize (256)
    f.bin(BinOp::Add, slot, rg, tmp);
    f.store(slot, int64_t(ring::headerBytes), len, 8);
    f.bini(BinOp::Add, tmp, slot, int64_t(ring::headerBytes) + 8);
    f.callVoid(mem_copy, {tmp, buf, len});
    f.bini(BinOp::Add, tail, tail, 1);
    f.store(rg, 8, tail, 8);
    f.ret();
}

/** ringRecv(ring, buf) -> len: blocking consumer. */
void
emitRingRecv(ProgramBuilder &pb, int mem_copy)
{
    auto f = pb.beginFunction("lib.ringRecv", 2);
    const int rg = f.arg(0), buf = f.arg(1);
    const int head = f.newVreg(), tail = f.newVreg();
    const int slot = f.newVreg(), tmp = f.newVreg(), len = f.newVreg();
    const int wait = f.newLabel(), ok = f.newLabel();

    f.label(wait);
    f.load(head, rg, 0, 8, false);
    f.load(tail, rg, 8, 8, false);
    f.brcond(CondOp::Ne, head, tail, ok);
    f.syscall(sys::sysYield, {});
    f.br(wait);

    f.label(ok);
    f.bini(BinOp::And, tmp, head, ringSlots - 1);
    f.bini(BinOp::Shl, tmp, tmp, 8);
    f.bin(BinOp::Add, slot, rg, tmp);
    f.load(len, slot, int64_t(ring::headerBytes), 8, false);
    f.bini(BinOp::Add, tmp, slot, int64_t(ring::headerBytes) + 8);
    f.callVoid(mem_copy, {buf, tmp, len});
    f.bini(BinOp::Add, head, head, 1);
    f.store(rg, 0, head, 8);
    f.ret(len);
}

/** ringPoll(ring) -> pending messages (non-blocking). */
void
emitRingPoll(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.ringPoll", 1);
    const int rg = f.arg(0);
    const int head = f.newVreg(), tail = f.newVreg(), n = f.newVreg();
    f.load(head, rg, 0, 8, false);
    f.load(tail, rg, 8, 8, false);
    f.bin(BinOp::Sub, n, tail, head);
    f.ret(n);
}

/** fnvHash(buf, len) -> 64-bit FNV-1a. */
void
emitFnvHash(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.fnvHash", 2);
    const int buf = f.arg(0), len = f.arg(1);
    const int h = f.newVreg(), i = f.newVreg(), c = f.newVreg(),
              addr = f.newVreg(), prime = f.newVreg();
    const int loop = f.newLabel(), lend = f.newLabel();

    f.movi(h, int64_t(0xcbf29ce484222325ULL));
    f.movi(prime, int64_t(0x100000001b3ULL));
    f.movi(i, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, len, lend);
    f.bin(BinOp::Add, addr, buf, i);
    f.load(c, addr, 0, 1, false);
    f.bin(BinOp::Xor, h, h, c);
    f.bin(BinOp::Mul, h, h, prime);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(lend);
    f.ret(h);
}

/** touchRead(ptr, len, stride) -> sum of 8-byte loads. */
void
emitTouchRead(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.touchRead", 3);
    const int ptr = f.arg(0), len = f.arg(1), stride = f.arg(2);
    const int i = f.newVreg(), sum = f.newVreg(), addr = f.newVreg(),
              v = f.newVreg();
    const int loop = f.newLabel(), lend = f.newLabel();

    f.movi(i, 0);
    f.movi(sum, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, len, lend);
    f.bin(BinOp::Add, addr, ptr, i);
    f.load(v, addr, 0, 8, false);
    f.bin(BinOp::Add, sum, sum, v);
    f.bin(BinOp::Add, i, i, stride);
    f.br(loop);
    f.label(lend);
    f.ret(sum);
}

/** touchWrite(ptr, len, stride): 8-byte stores across a region. */
void
emitTouchWrite(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.touchWrite", 3);
    const int ptr = f.arg(0), len = f.arg(1), stride = f.arg(2);
    const int i = f.newVreg(), addr = f.newVreg();
    const int loop = f.newLabel(), lend = f.newLabel();

    f.movi(i, 0);
    f.label(loop);
    f.brcond(CondOp::GeU, i, len, lend);
    f.bin(BinOp::Add, addr, ptr, i);
    f.store(addr, 0, i, 8);
    f.bin(BinOp::Add, i, i, stride);
    f.br(loop);
    f.label(lend);
    f.ret();
}

/** burnAlu(iters) -> x: dependent integer work, no memory. */
void
emitBurnAlu(ProgramBuilder &pb)
{
    auto f = pb.beginFunction("lib.burnAlu", 1);
    const int iters = f.arg(0);
    const int i = f.newVreg(), x = f.newVreg(), m = f.newVreg();
    const int loop = f.newLabel(), lend = f.newLabel();

    f.movi(i, 0);
    f.movi(x, 0x9e3779b9);
    f.movi(m, 6364136223846793005LL);
    f.label(loop);
    f.brcond(CondOp::GeU, i, iters, lend);
    f.bin(BinOp::Mul, x, x, m);
    f.bini(BinOp::Add, x, x, 1442695040888963407LL & 0x7fffffff);
    f.bini(BinOp::Xor, x, x, 0x5deece66);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(lend);
    f.ret(x);
}

} // namespace

GuestLib
GuestLib::addTo(ProgramBuilder &pb)
{
    GuestLib lib;
    emitMemCopy(pb);
    lib.memCopy = pb.functionIndex("lib.memCopy");
    emitMemZero(pb);
    lib.memZero = pb.functionIndex("lib.memZero");
    emitRingSend(pb, lib.memCopy);
    lib.ringSend = pb.functionIndex("lib.ringSend");
    emitRingRecv(pb, lib.memCopy);
    lib.ringRecv = pb.functionIndex("lib.ringRecv");
    emitRingPoll(pb);
    lib.ringPoll = pb.functionIndex("lib.ringPoll");
    emitFnvHash(pb);
    lib.fnvHash = pb.functionIndex("lib.fnvHash");
    emitTouchRead(pb);
    lib.touchRead = pb.functionIndex("lib.touchRead");
    emitTouchWrite(pb);
    lib.touchWrite = pb.functionIndex("lib.touchWrite");
    emitBurnAlu(pb);
    lib.burnAlu = pb.functionIndex("lib.burnAlu");
    return lib;
}

} // namespace svb::gen
