/**
 * @file
 * RV64IM backend: lowers the IR to real RISC-V machine code.
 *
 * Register pool: s0-s11 plus t3-t6 (16 vregs live in registers, the
 * rest spill to the frame). a4-a7 are deliberately NOT pooled: a7
 * carries the syscall number and would be clobbered by any trap.
 * Scratch: t0/t1/t2. Arguments: a0-a3.
 */

#include "ir.hh"
#include "isa/riscv/assembler.hh"
#include "sim/logging.hh"

namespace svb::gen
{

namespace
{

using riscv::Assembler;
using Reg = uint8_t;

constexpr Reg pool[16] = {rv::s0, rv::s1, rv::s2, rv::s3, rv::s4,
                          rv::s5, rv::s6, rv::s7, rv::s8, rv::s9,
                          rv::s10, rv::s11, rv::t3, rv::t4, rv::t5,
                          rv::t6};
constexpr unsigned poolSize = 16;
constexpr Reg argRegs[4] = {rv::a0, rv::a1, rv::a2, rv::a3};

/** Per-function lowering state. */
class FuncLowering
{
  public:
    FuncLowering(Assembler &as, const IrFunction &fn,
                 const std::vector<AsmLabel> &func_labels)
        : as(as), fn(fn), funcLabels(func_labels)
    {
        // Record each label's IR position for branch-range estimation.
        labelIrIndex.assign(size_t(fn.numLabels), 0);
        for (size_t i = 0; i < fn.insts.size(); ++i) {
            if (fn.insts[i].op == IrOp::Label)
                labelIrIndex[size_t(fn.insts[i].label)] = i;
        }
        spillCount =
            fn.numVregs > int(poolSize) ? fn.numVregs - int(poolSize) : 0;
        savedCount = std::min<unsigned>(unsigned(fn.numVregs), poolSize);
        frameTotal = fn.localBytes + Addr(spillCount) * 8 +
                     Addr(savedCount) * 8 + 8 /*ra*/;
        frameTotal = (frameTotal + 15) & ~Addr(15);
        for (int i = 0; i < fn.numLabels; ++i)
            labels.push_back(as.newLabel());
        epilogue = as.newLabel();
    }

    void
    lower()
    {
        prologue();
        for (size_t i = 0; i < fn.insts.size(); ++i) {
            curIrIndex = i;
            lowerInst(fn.insts[i]);
        }
        // Fall off the end == return void.
        emitEpilogue();
    }

  private:
    bool isPool(int v) const { return v < int(poolSize); }
    Reg poolReg(int v) const { return pool[v]; }

    int64_t
    spillOff(int v) const
    {
        return int64_t(fn.localBytes) + int64_t(v - int(poolSize)) * 8;
    }

    int64_t savedOff(unsigned i) const
    {
        return int64_t(fn.localBytes) + spillCount * 8 + int64_t(i) * 8;
    }

    /** sp-relative load/store that tolerates large offsets. */
    void
    ldSp(Reg rd, int64_t off)
    {
        if (off >= -2048 && off < 2048) {
            as.ld(rd, rv::sp, int32_t(off));
        } else {
            as.li(rv::t2, off);
            as.add(rv::t2, rv::sp, rv::t2);
            as.ld(rd, rv::t2, 0);
        }
    }

    void
    sdSp(Reg rs, int64_t off)
    {
        if (off >= -2048 && off < 2048) {
            as.sd(rs, rv::sp, int32_t(off));
        } else {
            as.li(rv::t2, off);
            as.add(rv::t2, rv::sp, rv::t2);
            as.sd(rs, rv::t2, 0);
        }
    }

    /** Materialise a source vreg; spilled vregs land in @p scratch. */
    Reg
    useSrc(int v, Reg scratch)
    {
        svb_assert(v >= 0 && v < fn.numVregs, fn.name, ": bad vreg ", v);
        if (isPool(v))
            return poolReg(v);
        ldSp(scratch, spillOff(v));
        return scratch;
    }

    Reg
    defDst(int v, Reg scratch)
    {
        return isPool(v) ? poolReg(v) : scratch;
    }

    void
    sealDst(int v, Reg r)
    {
        if (!isPool(v))
            sdSp(r, spillOff(v));
    }

    void
    prologue()
    {
        as.bind(funcLabels[size_t(fnIndex())]);
        if (frameTotal < 2048) {
            as.addi(rv::sp, rv::sp, -int32_t(frameTotal));
        } else {
            as.li(rv::t2, -int64_t(frameTotal));
            as.add(rv::sp, rv::sp, rv::t2);
        }
        sdSp(rv::ra, int64_t(frameTotal) - 8);
        for (unsigned i = 0; i < savedCount; ++i)
            sdSp(pool[i], savedOff(i));
        for (unsigned i = 0; i < fn.numArgs && i < 4; ++i) {
            if (isPool(int(i)))
                as.mv(poolReg(int(i)), argRegs[i]);
            else
                sdSp(argRegs[i], spillOff(int(i)));
        }
    }

    void
    emitEpilogue()
    {
        as.bind(epilogue);
        for (unsigned i = 0; i < savedCount; ++i)
            ldSp(pool[i], savedOff(i));
        ldSp(rv::ra, int64_t(frameTotal) - 8);
        if (frameTotal < 2048) {
            as.addi(rv::sp, rv::sp, int32_t(frameTotal));
        } else {
            as.li(rv::t2, int64_t(frameTotal));
            as.add(rv::sp, rv::sp, rv::t2);
        }
        as.ret();
    }

    void
    emitBin(BinOp op, Reg rd, Reg ra, Reg rb)
    {
        switch (op) {
          case BinOp::Add: as.add(rd, ra, rb); break;
          case BinOp::Sub: as.sub(rd, ra, rb); break;
          case BinOp::Mul: as.mul(rd, ra, rb); break;
          case BinOp::Div: as.div(rd, ra, rb); break;
          case BinOp::Rem: as.rem(rd, ra, rb); break;
          case BinOp::Udiv: as.divu(rd, ra, rb); break;
          case BinOp::Urem: as.remu(rd, ra, rb); break;
          case BinOp::And: as.and_(rd, ra, rb); break;
          case BinOp::Or: as.or_(rd, ra, rb); break;
          case BinOp::Xor: as.xor_(rd, ra, rb); break;
          case BinOp::Shl: as.sll(rd, ra, rb); break;
          case BinOp::Shr: as.srl(rd, ra, rb); break;
          case BinOp::Sar: as.sra(rd, ra, rb); break;
        }
    }

    void
    emitLoad(Reg rd, Reg base, int64_t off, uint8_t size, bool sgn)
    {
        if (off < -2048 || off >= 2048) {
            as.li(rv::t2, off);
            as.add(rv::t2, base, rv::t2);
            base = rv::t2;
            off = 0;
        }
        const auto o = int32_t(off);
        switch (size) {
          case 1: sgn ? as.lb(rd, base, o) : as.lbu(rd, base, o); break;
          case 2: sgn ? as.lh(rd, base, o) : as.lhu(rd, base, o); break;
          case 4: sgn ? as.lw(rd, base, o) : as.lwu(rd, base, o); break;
          case 8: as.ld(rd, base, o); break;
          default: svb_panic("bad load size");
        }
    }

    void
    emitStore(Reg src, Reg base, int64_t off, uint8_t size)
    {
        if (off < -2048 || off >= 2048) {
            as.li(rv::t2, off);
            as.add(rv::t2, base, rv::t2);
            base = rv::t2;
            off = 0;
        }
        const auto o = int32_t(off);
        switch (size) {
          case 1: as.sb(src, base, o); break;
          case 2: as.sh(src, base, o); break;
          case 4: as.sw(src, base, o); break;
          case 8: as.sd(src, base, o); break;
          default: svb_panic("bad store size");
        }
    }

    /**
     * Conservative worst-case expansion of one IR instruction in
     * bytes, used to decide whether a B-type branch provably reaches.
     */
    static constexpr int64_t maxBytesPerIrInst = 64;

    bool
    branchReaches(int label) const
    {
        const int64_t dist =
            (int64_t(labelIrIndex[size_t(label)]) - int64_t(curIrIndex));
        const int64_t bytes = (dist < 0 ? -dist : dist) *
                              maxBytesPerIrInst;
        return bytes < 3500; // B-type reaches +-4 KiB; keep margin
    }

    void
    emitShortCondBranch(CondOp cond, Reg ra, Reg rb, AsmLabel l)
    {
        switch (cond) {
          case CondOp::Eq: as.beq(ra, rb, l); break;
          case CondOp::Ne: as.bne(ra, rb, l); break;
          case CondOp::Lt: as.blt(ra, rb, l); break;
          case CondOp::Ge: as.bge(ra, rb, l); break;
          case CondOp::Le: as.bge(rb, ra, l); break;
          case CondOp::Gt: as.blt(rb, ra, l); break;
          case CondOp::LtU: as.bltu(ra, rb, l); break;
          case CondOp::GeU: as.bgeu(ra, rb, l); break;
        }
    }

    static CondOp
    invertCond(CondOp cond)
    {
        switch (cond) {
          case CondOp::Eq: return CondOp::Ne;
          case CondOp::Ne: return CondOp::Eq;
          case CondOp::Lt: return CondOp::Ge;
          case CondOp::Ge: return CondOp::Lt;
          case CondOp::Le: return CondOp::Gt;
          case CondOp::Gt: return CondOp::Le;
          case CondOp::LtU: return CondOp::GeU;
          case CondOp::GeU: return CondOp::LtU;
        }
        return CondOp::Eq;
    }

    /** Relaxing form: branch-over-jump when the target may be far. */
    void
    emitCondBranch(CondOp cond, Reg ra, Reg rb, int ir_label)
    {
        AsmLabel l = labels[size_t(ir_label)];
        if (branchReaches(ir_label)) {
            emitShortCondBranch(cond, ra, rb, l);
        } else {
            AsmLabel skip = as.newLabel();
            emitShortCondBranch(invertCond(cond), ra, rb, skip);
            as.j(l);
            as.bind(skip);
        }
    }

    void
    lowerInst(const IrInst &inst)
    {
        switch (inst.op) {
          case IrOp::MovImm: {
            Reg rd = defDst(inst.dst, rv::t0);
            as.li(rd, inst.imm);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Mov: {
            Reg ra = useSrc(inst.a, rv::t0);
            Reg rd = defDst(inst.dst, rv::t0);
            if (rd != ra)
                as.mv(rd, ra);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Bin: {
            Reg ra = useSrc(inst.a, rv::t0);
            Reg rb = useSrc(inst.b, rv::t1);
            Reg rd = defDst(inst.dst, rv::t0);
            emitBin(inst.bop, rd, ra, rb);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::BinImm: {
            Reg ra = useSrc(inst.a, rv::t0);
            Reg rd = defDst(inst.dst, rv::t0);
            const int64_t imm = inst.imm;
            const bool fits = imm >= -2048 && imm < 2048;
            switch (inst.bop) {
              case BinOp::Add:
                if (fits) {
                    as.addi(rd, ra, int32_t(imm));
                } else {
                    as.li(rv::t1, imm);
                    as.add(rd, ra, rv::t1);
                }
                break;
              case BinOp::Sub:
                if (imm > -2048 && imm <= 2048) {
                    as.addi(rd, ra, int32_t(-imm));
                } else {
                    as.li(rv::t1, imm);
                    as.sub(rd, ra, rv::t1);
                }
                break;
              case BinOp::And:
                if (fits) {
                    as.andi(rd, ra, int32_t(imm));
                } else {
                    as.li(rv::t1, imm);
                    as.and_(rd, ra, rv::t1);
                }
                break;
              case BinOp::Or:
                if (fits) {
                    as.ori(rd, ra, int32_t(imm));
                } else {
                    as.li(rv::t1, imm);
                    as.or_(rd, ra, rv::t1);
                }
                break;
              case BinOp::Xor:
                if (fits) {
                    as.xori(rd, ra, int32_t(imm));
                } else {
                    as.li(rv::t1, imm);
                    as.xor_(rd, ra, rv::t1);
                }
                break;
              case BinOp::Shl: as.slli(rd, ra, unsigned(imm) & 63); break;
              case BinOp::Shr: as.srli(rd, ra, unsigned(imm) & 63); break;
              case BinOp::Sar: as.srai(rd, ra, unsigned(imm) & 63); break;
              default:
                as.li(rv::t1, imm);
                emitBin(inst.bop, rd, ra, rv::t1);
                break;
            }
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Load: {
            Reg base = useSrc(inst.a, rv::t0);
            Reg rd = defDst(inst.dst, rv::t0);
            emitLoad(rd, base, inst.imm, inst.size, inst.sgn);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Store: {
            Reg base = useSrc(inst.a, rv::t0);
            Reg src = useSrc(inst.b, rv::t1);
            emitStore(src, base, inst.imm, inst.size);
            break;
          }
          case IrOp::Lea: {
            Reg rd = defDst(inst.dst, rv::t0);
            as.li(rd, inst.imm);
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::LeaLocal: {
            Reg rd = defDst(inst.dst, rv::t0);
            if (inst.imm >= -2048 && inst.imm < 2048) {
                as.addi(rd, rv::sp, int32_t(inst.imm));
            } else {
                as.li(rd, inst.imm);
                as.add(rd, rv::sp, rd);
            }
            sealDst(inst.dst, rd);
            break;
          }
          case IrOp::Br:
            as.j(labels[size_t(inst.label)]);
            break;
          case IrOp::BrCond: {
            Reg ra = useSrc(inst.a, rv::t0);
            Reg rb = useSrc(inst.b, rv::t1);
            emitCondBranch(inst.cond, ra, rb, inst.label);
            break;
          }
          case IrOp::BrCondImm: {
            Reg ra = useSrc(inst.a, rv::t0);
            Reg rb = 0; // x0
            if (inst.imm != 0) {
                as.li(rv::t1, inst.imm);
                rb = rv::t1;
            }
            emitCondBranch(inst.cond, ra, rb, inst.label);
            break;
          }
          case IrOp::Call: {
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int v = inst.args[i];
                if (isPool(v))
                    as.mv(argRegs[i], poolReg(v));
                else
                    ldSp(argRegs[i], spillOff(v));
            }
            as.callFar(funcLabels[size_t(inst.callee)]);
            if (inst.dst >= 0) {
                if (isPool(inst.dst))
                    as.mv(poolReg(inst.dst), rv::a0);
                else
                    sdSp(rv::a0, spillOff(inst.dst));
            }
            break;
          }
          case IrOp::Ret:
            if (inst.a >= 0) {
                Reg ra = useSrc(inst.a, rv::t0);
                if (ra != rv::a0)
                    as.mv(rv::a0, ra);
            }
            as.j(epilogue);
            break;
          case IrOp::Syscall: {
            static constexpr Reg sysArgs[3] = {rv::a0, rv::a1, rv::a2};
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int v = inst.args[i];
                if (isPool(v))
                    as.mv(sysArgs[i], poolReg(v));
                else
                    ldSp(sysArgs[i], spillOff(v));
            }
            as.li(rv::a7, inst.imm);
            as.ecall();
            if (inst.dst >= 0) {
                if (isPool(inst.dst))
                    as.mv(poolReg(inst.dst), rv::a0);
                else
                    sdSp(rv::a0, spillOff(inst.dst));
            }
            break;
          }
          case IrOp::Halt:
            as.ebreak();
            break;
          case IrOp::Label:
            as.bind(labels[size_t(inst.label)]);
            break;
        }
    }

    size_t
    fnIndex() const
    {
        return fnIdx;
    }

  public:
    size_t fnIdx = 0;

  private:
    Assembler &as;
    const IrFunction &fn;
    const std::vector<AsmLabel> &funcLabels;
    std::vector<size_t> labelIrIndex;
    size_t curIrIndex = 0;
    std::vector<AsmLabel> labels;
    AsmLabel epilogue;
    unsigned spillCount = 0;
    unsigned savedCount = 0;
    Addr frameTotal = 0;
};

} // namespace

LoadableImage
compileProgramRiscv(const Program &program)
{
    Assembler as;

    std::vector<AsmLabel> func_labels;
    for (size_t i = 0; i < program.functions.size(); ++i)
        func_labels.push_back(as.newLabel());

    // _start: call the entry function, then exit(0).
    as.callFar(func_labels[size_t(program.entryFunction)]);
    as.li(rv::a7, 0 /*sysExit*/);
    as.ecall();
    as.ebreak(); // unreachable

    std::vector<std::pair<std::string, Addr>> symbols;
    symbols.emplace_back("_start", 0);
    for (size_t i = 0; i < program.functions.size(); ++i) {
        symbols.emplace_back(program.functions[i].name, as.here());
        FuncLowering lowering(as, program.functions[i], func_labels);
        lowering.fnIdx = i;
        lowering.lower();
    }

    LoadableImage image;
    image.symbols = std::move(symbols);
    image.code = as.finish();
    image.rodata = program.data;
    image.heapBytes = program.heapBytes;
    image.stackBytes = program.stackBytes;
    image.entryOffset = 0;
    return image;
}

} // namespace svb::gen
