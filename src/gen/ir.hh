/**
 * @file
 * The portable guest-code intermediate representation.
 *
 * Every guest program (serverless runtimes, workloads, databases) is
 * authored against this IR and lowered to real machine code by the
 * RV64 and CX86 backends (backend_*.cc). Virtual registers are
 * unlimited; each backend maps the first N onto its register pool and
 * spills the rest to the stack frame, so ISAs with fewer registers
 * naturally generate more memory traffic.
 */

#ifndef SVB_GEN_IR_HH
#define SVB_GEN_IR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "guest/loader.hh"
#include "isa/isa_info.hh"
#include "sim/types.hh"

namespace svb::gen
{

/** IR opcodes. */
enum class IrOp : uint8_t
{
    MovImm,   ///< dst = imm64
    Mov,      ///< dst = a
    Bin,      ///< dst = a <bop> b
    BinImm,   ///< dst = a <bop> imm
    Load,     ///< dst = mem[a + imm] (size/sgn)
    Store,    ///< mem[a + imm] = b (size)
    Lea,      ///< dst = absolute address imm (data symbol)
    LeaLocal, ///< dst = sp-relative local at frame offset imm
    Br,       ///< goto label
    BrCond,   ///< if (a <cond> b) goto label
    BrCondImm,///< if (a <cond> imm) goto label
    Call,     ///< dst = callee(args...)
    Ret,      ///< return a (or nothing when a < 0)
    Syscall,  ///< dst = syscall(imm, args...)
    Halt,     ///< stop the core
    Label,    ///< bind label
};

/** Binary ALU operations. */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, Rem, Udiv, Urem,
    And, Or, Xor, Shl, Shr, Sar,
};

/** Branch conditions (signed unless suffixed U). */
enum class CondOp : uint8_t
{
    Eq, Ne, Lt, Ge, Le, Gt, LtU, GeU,
};

/** One IR instruction. */
struct IrInst
{
    IrOp op;
    BinOp bop = BinOp::Add;
    CondOp cond = CondOp::Eq;
    int dst = -1;
    int a = -1;
    int b = -1;
    int64_t imm = 0;
    uint8_t size = 8;
    bool sgn = false;
    int label = -1;
    int callee = -1;
    std::vector<int> args;
};

/** One IR function. */
struct IrFunction
{
    std::string name;
    unsigned numArgs = 0;
    int numVregs = 0;
    int numLabels = 0;
    Addr localBytes = 0; ///< reserved sp-relative scratch area
    std::vector<IrInst> insts;
};

/** A whole program: data segment + functions + entry. */
struct Program
{
    std::deque<IrFunction> functions; // deque: stable refs for builders
    std::vector<uint8_t> data;
    Addr heapBytes = 64 * 1024;
    Addr stackBytes = 64 * 1024;
    int entryFunction = -1;

    /** Find a function index by name; -1 when absent. */
    int findFunction(const std::string &name) const;
};

class ProgramBuilder;

/**
 * Fluent emitter for one function's body.
 */
class FunctionBuilder
{
  public:
    /** Allocate a fresh virtual register. */
    int newVreg() { return fn.numVregs++; }

    /** @return the vreg holding argument @p i. */
    int
    arg(unsigned i) const
    {
        return int(i); // arguments occupy v0..v(numArgs-1)
    }

    /** Allocate a fresh label id. */
    int newLabel() { return fn.numLabels++; }

    /**
     * Reserve @p bytes of per-call stack scratch; @return the frame
     * offset to pass to leaLocal.
     */
    int64_t
    localBytes(Addr bytes)
    {
        const int64_t off = int64_t(fn.localBytes);
        fn.localBytes += (bytes + 7) & ~Addr(7);
        return off;
    }

    // --- emission helpers ------------------------------------------------
    void movi(int dst, int64_t imm);
    void mov(int dst, int a);
    void bin(BinOp op, int dst, int a, int b);
    void bini(BinOp op, int dst, int a, int64_t imm);
    void load(int dst, int base, int64_t off, uint8_t size, bool sgn);
    void store(int base, int64_t off, int src, uint8_t size);
    void lea(int dst, Addr absolute);
    void leaLocal(int dst, int64_t frame_off);
    void br(int label);
    void brcond(CondOp cond, int a, int b, int label);
    void brcondi(CondOp cond, int a, int64_t imm, int label);
    int call(int callee, std::initializer_list<int> args); ///< returns vreg
    void callVoid(int callee, std::initializer_list<int> args);
    void ret(int a = -1);
    int syscall(uint64_t number, std::initializer_list<int> args);
    void halt();
    void label(int l);

    // Common shorthands.
    void addi(int dst, int a, int64_t imm) { bini(BinOp::Add, dst, a, imm); }
    int imm(int64_t value); ///< fresh vreg holding a constant

    IrFunction &fn;

  private:
    friend class ProgramBuilder;
    explicit FunctionBuilder(IrFunction &f) : fn(f) {}
};

/**
 * Builds a Program: data symbols, functions and the entry point.
 */
class ProgramBuilder
{
  public:
    /**
     * Append a data blob; @return its absolute virtual address.
     */
    Addr addData(const void *bytes, size_t len);

    /** Append @p len zero bytes (aligned to 8). */
    Addr addZeroData(size_t len);

    /**
     * Begin a function; the returned builder stays valid until the
     * next beginFunction call.
     */
    FunctionBuilder beginFunction(const std::string &name,
                                  unsigned num_args);

    /** @return the index of a previously created function. */
    int functionIndex(const std::string &name) const;

    /** Designate the program entry (a 0-argument function). */
    void setEntry(const std::string &name);

    void setHeapBytes(Addr bytes) { prog.heapBytes = bytes; }
    void setStackBytes(Addr bytes) { prog.stackBytes = bytes; }

    /** Finish and take the program. */
    Program take();

    Program &program() { return prog; }

  private:
    Program prog;
};

/**
 * Lower @p program to machine code for @p isa.
 */
LoadableImage compileProgram(const Program &program, IsaId isa);

} // namespace svb::gen

#endif // SVB_GEN_IR_HH
