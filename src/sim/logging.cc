#include "logging.hh"

#include <cstdlib>
#include <iostream>

namespace svb
{

namespace
{
bool informOn = true;
}

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    switch (level) {
      case LogLevel::Inform:
        std::cout << "info: " << msg << "\n";
        break;
      case LogLevel::Warn:
        std::cerr << "warn: " << msg << "\n";
        break;
      case LogLevel::Fatal:
        std::cerr << "fatal: " << msg << "\n";
        break;
      case LogLevel::Panic:
        std::cerr << "panic: " << msg << "\n";
        break;
    }
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " @ " << file << ":" << line;
    logMessage(LogLevel::Panic, os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " @ " << file << ":" << line;
    logMessage(LogLevel::Fatal, os.str());
    std::exit(1);
}

} // namespace detail

} // namespace svb
