#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace svb
{

namespace
{
std::atomic<bool> informOn{true};
/** Serialises sink writes so concurrent workers never tear lines. */
std::mutex sinkMtx;
}

void
setInformEnabled(bool enabled)
{
    informOn.store(enabled, std::memory_order_relaxed);
}

bool
informEnabled()
{
    return informOn.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lk(sinkMtx);
    switch (level) {
      case LogLevel::Inform:
        std::cout << "info: " << msg << "\n";
        break;
      case LogLevel::Warn:
        std::cerr << "warn: " << msg << "\n";
        break;
      case LogLevel::Fatal:
        std::cerr << "fatal: " << msg << "\n";
        break;
      case LogLevel::Panic:
        std::cerr << "panic: " << msg << "\n";
        break;
    }
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " @ " << file << ":" << line;
    logMessage(LogLevel::Panic, os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " @ " << file << ":" << line;
    logMessage(LogLevel::Fatal, os.str());
    std::exit(1);
}

} // namespace detail

} // namespace svb
