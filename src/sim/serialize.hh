/**
 * @file
 * Checkpoint support.
 *
 * A Checkpoint is a named collection of scalar key/value entries plus
 * binary blobs (e.g. guest physical memory). It mirrors gem5's
 * checkpointing workflow: the harness boots the system in setup mode,
 * serialises the full state, and each experiment restores from that
 * snapshot before switching to the detailed CPU.
 */

#ifndef SVB_SIM_SERIALIZE_HH
#define SVB_SIM_SERIALIZE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace svb
{

/**
 * A serialised system snapshot.
 */
class Checkpoint
{
  public:
    /** Store a scalar value under a dotted key. */
    void setScalar(const std::string &key, uint64_t value);

    /** Store a string value under a dotted key. */
    void setString(const std::string &key, const std::string &value);

    /** Store a binary blob under a dotted key. */
    void setBlob(const std::string &key, std::vector<uint8_t> data);

    /** @return the scalar stored under @p key; fatal if missing. */
    uint64_t getScalar(const std::string &key) const;

    /** @return the string stored under @p key; fatal if missing. */
    const std::string &getString(const std::string &key) const;

    /** @return the blob stored under @p key; fatal if missing. */
    const std::vector<uint8_t> &getBlob(const std::string &key) const;

    /** @return true when a scalar exists under @p key. */
    bool hasScalar(const std::string &key) const;

    /** @return true when a string exists under @p key. */
    bool hasString(const std::string &key) const;

    /** @return true when a blob exists under @p key. */
    bool hasBlob(const std::string &key) const;

    /**
     * Drop every scalar, string and blob whose key starts with
     * @p prefix. Used by the checkpoint store to strip host-side
     * acceleration state (e.g. "superblock.") before an image is
     * published for sharing.
     */
    void erasePrefix(const std::string &prefix);

    /**
     * Write the checkpoint to a file (simple tagged binary format).
     * The write goes to a uniquely named temporary sibling first and
     * is atomically renamed into place, so neither a crash mid-write
     * nor a concurrent writer of the same path can ever leave a
     * truncated or interleaved checkpoint under @p path.
     */
    void saveToFile(const std::string &path) const;

    /** Read a checkpoint previously written by saveToFile(); fatal on
     *  a missing, corrupt or truncated file. */
    static Checkpoint loadFromFile(const std::string &path);

    /**
     * Non-fatal variant of loadFromFile(): validates the magic tag,
     * bounds every length field against the bytes remaining in the
     * file, and rejects trailing garbage. On failure returns
     * std::nullopt and, when @p err is non-null, stores a message
     * naming the offending key.
     */
    static std::optional<Checkpoint>
    tryLoadFromFile(const std::string &path, std::string *err = nullptr);

    size_t numScalars() const { return scalars.size(); }
    size_t numBlobs() const { return blobs.size(); }

  private:
    std::map<std::string, uint64_t> scalars;
    std::map<std::string, std::string> strings;
    std::map<std::string, std::vector<uint8_t>> blobs;
};

/** Interface for objects that participate in checkpointing. */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Record this object's state into @p cp under @p prefix. */
    virtual void serializeState(const std::string &prefix,
                                Checkpoint &cp) const = 0;

    /** Restore this object's state from @p cp under @p prefix. */
    virtual void unserializeState(const std::string &prefix,
                                  const Checkpoint &cp) = 0;
};

/**
 * Little-endian encoder for packing structured component state
 * (cache line arrays, TLB entries, ...) into one checkpoint blob
 * instead of thousands of scalar entries.
 */
class BlobWriter
{
  public:
    void
    putU8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    putU64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(uint8_t(v >> (8 * i)));
    }

    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    std::vector<uint8_t> buf;
};

/** Bounds-checked reader matching BlobWriter's encoding. */
class BlobReader
{
  public:
    explicit BlobReader(const std::vector<uint8_t> &data) : data(data) {}

    uint8_t getU8();
    uint64_t getU64();
    bool done() const { return pos == data.size(); }
    size_t remaining() const { return data.size() - pos; }

  private:
    const std::vector<uint8_t> &data;
    size_t pos = 0;
};

} // namespace svb

#endif // SVB_SIM_SERIALIZE_HH
