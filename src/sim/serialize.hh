/**
 * @file
 * Checkpoint support.
 *
 * A Checkpoint is a named collection of scalar key/value entries plus
 * binary blobs (e.g. guest physical memory). It mirrors gem5's
 * checkpointing workflow: the harness boots the system in setup mode,
 * serialises the full state, and each experiment restores from that
 * snapshot before switching to the detailed CPU.
 */

#ifndef SVB_SIM_SERIALIZE_HH
#define SVB_SIM_SERIALIZE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace svb
{

/**
 * A serialised system snapshot.
 */
class Checkpoint
{
  public:
    /** Store a scalar value under a dotted key. */
    void setScalar(const std::string &key, uint64_t value);

    /** Store a string value under a dotted key. */
    void setString(const std::string &key, const std::string &value);

    /** Store a binary blob under a dotted key. */
    void setBlob(const std::string &key, std::vector<uint8_t> data);

    /** @return the scalar stored under @p key; fatal if missing. */
    uint64_t getScalar(const std::string &key) const;

    /** @return the string stored under @p key; fatal if missing. */
    const std::string &getString(const std::string &key) const;

    /** @return the blob stored under @p key; fatal if missing. */
    const std::vector<uint8_t> &getBlob(const std::string &key) const;

    /** @return true when a scalar exists under @p key. */
    bool hasScalar(const std::string &key) const;

    /** Write the checkpoint to a file (simple tagged binary format). */
    void saveToFile(const std::string &path) const;

    /** Read a checkpoint previously written by saveToFile(). */
    static Checkpoint loadFromFile(const std::string &path);

    size_t numScalars() const { return scalars.size(); }
    size_t numBlobs() const { return blobs.size(); }

  private:
    std::map<std::string, uint64_t> scalars;
    std::map<std::string, std::string> strings;
    std::map<std::string, std::vector<uint8_t>> blobs;
};

/** Interface for objects that participate in checkpointing. */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Record this object's state into @p cp under @p prefix. */
    virtual void serializeState(const std::string &prefix,
                                Checkpoint &cp) const = 0;

    /** Restore this object's state from @p cp under @p prefix. */
    virtual void unserializeState(const std::string &prefix,
                                  const Checkpoint &cp) = 0;
};

} // namespace svb

#endif // SVB_SIM_SERIALIZE_HH
