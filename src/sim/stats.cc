#include "stats.hh"

#include <iomanip>

#include "logging.hh"

namespace svb
{

void
Scalar::snapshot(const std::string &prefix,
                 std::map<std::string, double> &out) const
{
    out[prefix + name()] = double(val);
}

void
Scalar::print(const std::string &prefix, std::ostream &os) const
{
    os << std::left << std::setw(48) << (prefix + name())
       << std::right << std::setw(16) << val << "  # " << desc() << "\n";
}

void
Formula::snapshot(const std::string &prefix,
                  std::map<std::string, double> &out) const
{
    out[prefix + name()] = value();
}

void
Formula::print(const std::string &prefix, std::ostream &os) const
{
    os << std::left << std::setw(48) << (prefix + name())
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << value() << "  # " << desc() << "\n";
    os.unsetf(std::ios::fixed);
}

Distribution::Distribution(std::string name, std::string desc,
                           uint64_t min, uint64_t max, uint64_t bucket_size)
    : Stat(std::move(name), std::move(desc)), min(min), max(max),
      bucketSize(bucket_size)
{
    svb_assert(max > min && bucket_size > 0, "bad distribution params");
    buckets.assign((max - min + bucket_size - 1) / bucket_size, 0);
}

void
Distribution::sample(uint64_t value)
{
    ++count;
    sum += value;
    if (value < min) {
        ++underflow;
    } else if (value >= max) {
        ++overflow;
    } else {
        ++buckets[(value - min) / bucketSize];
    }
}

void
Distribution::reset()
{
    underflow = overflow = sum = count = 0;
    std::fill(buckets.begin(), buckets.end(), 0);
}

void
Distribution::snapshot(const std::string &prefix,
                       std::map<std::string, double> &out) const
{
    out[prefix + name() + ".samples"] = double(count);
    out[prefix + name() + ".mean"] = mean();
}

void
Distribution::print(const std::string &prefix, std::ostream &os) const
{
    os << std::left << std::setw(48) << (prefix + name())
       << "  samples=" << count << " mean=" << mean()
       << "  # " << desc() << "\n";
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    stats.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(name, desc, std::move(fn));
    Formula &ref = *stat;
    stats.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           uint64_t min, uint64_t max, uint64_t bucket_size)
{
    auto stat =
        std::make_unique<Distribution>(name, desc, min, max, bucket_size);
    Distribution &ref = *stat;
    stats.push_back(std::move(stat));
    return ref;
}

StatGroup &
StatGroup::childGroup(const std::string &name)
{
    for (auto &child : children) {
        if (child->name() == name)
            return *child;
    }
    children.push_back(std::make_unique<StatGroup>(name));
    return *children.back();
}

void
StatGroup::resetAll()
{
    for (auto &stat : stats)
        stat->reset();
    for (auto &child : children)
        child->resetAll();
}

std::map<std::string, double>
StatGroup::snapshotAll() const
{
    std::map<std::string, double> out;
    snapshotInto(_name.empty() ? "" : _name + ".", out);
    return out;
}

void
StatGroup::snapshotInto(const std::string &prefix,
                        std::map<std::string, double> &out) const
{
    for (const auto &stat : stats)
        stat->snapshot(prefix, out);
    for (const auto &child : children) {
        if (child->hostOnly())
            continue;
        child->snapshotInto(prefix + child->name() + ".", out);
    }
}

void
StatGroup::printAll(std::ostream &os) const
{
    printInto(_name.empty() ? "" : _name + ".", os);
}

void
StatGroup::printInto(const std::string &prefix, std::ostream &os) const
{
    for (const auto &stat : stats)
        stat->print(prefix, os);
    for (const auto &child : children)
        child->printInto(prefix + child->name() + ".", os);
}

} // namespace svb
