/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  — a simulator bug; aborts.
 * fatal()  — a user/configuration error; exits with status 1.
 * warn()   — functionality that might not be modelled exactly.
 * inform() — plain status output.
 *
 * This is the one sink shared by every simulation thread, so
 * logMessage() serialises writes under a mutex (whole lines, never
 * torn) and the inform() gate is an atomic. Everything else in
 * sim/ (EventQueue, StatGroup, Rng, serialization) is instance-scoped
 * state owned by a single System and needs no locking.
 */

#ifndef SVB_SIM_LOGGING_HH
#define SVB_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace svb
{

/** Severity levels understood by the logging sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the logging sink.
 *
 * @param level severity of the message
 * @param msg   fully formatted message text
 */
void logMessage(LogLevel level, const std::string &msg);

/** Enable/disable Inform-level output (benches silence it). */
void setInformEnabled(bool enabled);

/** @return true when Inform-level output is currently enabled. */
bool informEnabled();

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning about imperfectly modelled behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn,
               detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (informEnabled()) {
        logMessage(LogLevel::Inform,
                   detail::concat(std::forward<Args>(args)...));
    }
}

#define svb_panic(...) ::svb::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define svb_fatal(...) ::svb::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an invariant that indicates a simulator bug when violated. */
#define svb_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::svb::panicAt(__FILE__, __LINE__, "assertion '" #cond         \
                           "' failed: ", ##__VA_ARGS__);                   \
        }                                                                  \
    } while (0)

} // namespace svb

#endif // SVB_SIM_LOGGING_HH
