#include "rng.hh"

#include "logging.hh"

namespace svb
{

namespace
{

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    seed0 = seed;
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

Rng
Rng::split(uint64_t stream_id) const
{
    // Mix the stream id into the original seed through two SplitMix64
    // rounds; the +1 keeps split(0) distinct from the parent stream.
    uint64_t sm = seed0;
    uint64_t derived = splitMix64(sm);
    sm = derived ^ ((stream_id + 1) * 0x9e3779b97f4a7c15ULL);
    derived = splitMix64(sm);
    return Rng(derived);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    svb_assert(bound > 0, "nextBounded(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    svb_assert(lo <= hi, "bad range");
    return lo + int64_t(nextBounded(uint64_t(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace svb
