/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 */

#ifndef SVB_SIM_TYPES_HH
#define SVB_SIM_TYPES_HH

#include <cstdint>

namespace svb
{

/** Absolute simulated time, in ticks. One tick == one picosecond. */
using Tick = uint64_t;

/** A relative cycle count (clock-domain local). */
using Cycles = uint64_t;

/** A guest memory address (virtual or physical depending on context). */
using Addr = uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per second: 1 THz tick rate, i.e. 1 tick == 1 ps. */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/**
 * A clock period helper: converts a frequency in MHz to the tick period
 * of one cycle.
 */
constexpr Tick
clockPeriodFromMHz(uint64_t mhz)
{
    return ticksPerSecond / (mhz * 1'000'000ULL);
}

} // namespace svb

#endif // SVB_SIM_TYPES_HH
