/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (workload payloads, key
 * selection, hash salts) draws from an explicitly seeded Rng so that
 * simulations are bit-reproducible across runs and hosts.
 */

#ifndef SVB_SIM_RNG_HH
#define SVB_SIM_RNG_HH

#include <cstdint>

namespace svb
{

/**
 * xoshiro256** generator seeded through SplitMix64.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay. */
    explicit Rng(uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

    /** Re-initialise the state from a seed. */
    void reseed(uint64_t seed);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a value uniformly distributed in [0, bound). */
    uint64_t nextBounded(uint64_t bound);

    /** @return a value uniformly distributed in [lo, hi]. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return a double uniformly distributed in [0, 1). */
    double nextDouble();

    /**
     * Derive an independent, deterministic substream.
     *
     * The derived generator is a pure function of (constructing seed,
     * @p stream_id) — it does NOT depend on how many values have been
     * drawn from this generator, nor on which thread calls it. Work
     * split across SVBENCH_JOBS workers therefore sees identical
     * substreams regardless of worker count or scheduling order.
     *
     * Stream ids are a shared namespace per master generator: two
     * subsystems splitting the same master with the same id would
     * silently replay each other's draws. Any engine splitting a
     * scenario's master seed must claim its id in the StreamId
     * registry table in load/load_runner.hh (arrival=0, mix=1,
     * warm=2, fault=3, retry=4, fleet routing=5, workflow=6) instead
     * of hard-coding a literal.
     */
    Rng split(uint64_t stream_id) const;

  private:
    uint64_t state[4];
    uint64_t seed0 = 0; ///< the seed reseed() was last given
};

} // namespace svb

#endif // SVB_SIM_RNG_HH
