#include "eventq.hh"

#include "logging.hh"

namespace svb
{

void
EventQueue::schedule(Tick when, const char *name, Callback cb)
{
    svb_assert(when >= _curTick, "scheduling event '", name,
               "' in the past: ", when, " < ", _curTick);
    events.push({when, nextSeq++, name, std::move(cb)});
}

size_t
EventQueue::serviceUpTo(Tick now)
{
    svb_assert(now >= _curTick, "time moving backwards");
    size_t serviced = 0;
    while (!events.empty() && events.top().when <= now) {
        // Copy out before popping: the callback may schedule new events.
        ScheduledEvent ev = events.top();
        events.pop();
        _curTick = ev.when;
        ev.cb();
        ++serviced;
    }
    _curTick = now;
    return serviced;
}

Tick
EventQueue::nextEventTick() const
{
    return events.empty() ? maxTick : events.top().when;
}

void
EventQueue::clear()
{
    while (!events.empty())
        events.pop();
}

} // namespace svb
