#include "serialize.hh"

#include <fstream>

#include "logging.hh"

namespace svb
{

namespace
{

void
writeU64(std::ostream &os, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        os.put(char((v >> (8 * i)) & 0xff));
}

uint64_t
readU64(std::istream &is)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        int c = is.get();
        svb_assert(c != EOF, "truncated checkpoint");
        v |= uint64_t(uint8_t(c)) << (8 * i);
    }
    return v;
}

void
writeStr(std::ostream &os, const std::string &s)
{
    writeU64(os, s.size());
    os.write(s.data(), std::streamsize(s.size()));
}

std::string
readStr(std::istream &is)
{
    uint64_t n = readU64(is);
    std::string s(n, '\0');
    is.read(s.data(), std::streamsize(n));
    svb_assert(is.good(), "truncated checkpoint string");
    return s;
}

} // namespace

void
Checkpoint::setScalar(const std::string &key, uint64_t value)
{
    scalars[key] = value;
}

void
Checkpoint::setString(const std::string &key, const std::string &value)
{
    strings[key] = value;
}

void
Checkpoint::setBlob(const std::string &key, std::vector<uint8_t> data)
{
    blobs[key] = std::move(data);
}

uint64_t
Checkpoint::getScalar(const std::string &key) const
{
    auto it = scalars.find(key);
    if (it == scalars.end())
        svb_fatal("checkpoint missing scalar '", key, "'");
    return it->second;
}

const std::string &
Checkpoint::getString(const std::string &key) const
{
    auto it = strings.find(key);
    if (it == strings.end())
        svb_fatal("checkpoint missing string '", key, "'");
    return it->second;
}

const std::vector<uint8_t> &
Checkpoint::getBlob(const std::string &key) const
{
    auto it = blobs.find(key);
    if (it == blobs.end())
        svb_fatal("checkpoint missing blob '", key, "'");
    return it->second;
}

bool
Checkpoint::hasScalar(const std::string &key) const
{
    return scalars.count(key) != 0;
}

void
Checkpoint::saveToFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        svb_fatal("cannot open checkpoint file '", path, "' for writing");
    os.write("SVBCKPT1", 8);
    writeU64(os, scalars.size());
    for (const auto &[k, v] : scalars) {
        writeStr(os, k);
        writeU64(os, v);
    }
    writeU64(os, strings.size());
    for (const auto &[k, v] : strings) {
        writeStr(os, k);
        writeStr(os, v);
    }
    writeU64(os, blobs.size());
    for (const auto &[k, v] : blobs) {
        writeStr(os, k);
        writeU64(os, v.size());
        os.write(reinterpret_cast<const char *>(v.data()),
                 std::streamsize(v.size()));
    }
}

Checkpoint
Checkpoint::loadFromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        svb_fatal("cannot open checkpoint file '", path, "'");
    char magic[8];
    is.read(magic, 8);
    if (!is.good() || std::string(magic, 8) != "SVBCKPT1")
        svb_fatal("'", path, "' is not an svbench checkpoint");

    Checkpoint cp;
    uint64_t n = readU64(is);
    for (uint64_t i = 0; i < n; ++i) {
        std::string k = readStr(is);
        cp.scalars[k] = readU64(is);
    }
    n = readU64(is);
    for (uint64_t i = 0; i < n; ++i) {
        std::string k = readStr(is);
        cp.strings[k] = readStr(is);
    }
    n = readU64(is);
    for (uint64_t i = 0; i < n; ++i) {
        std::string k = readStr(is);
        uint64_t len = readU64(is);
        std::vector<uint8_t> data(len);
        is.read(reinterpret_cast<char *>(data.data()),
                std::streamsize(len));
        svb_assert(is.good(), "truncated checkpoint blob");
        cp.blobs[k] = std::move(data);
    }
    return cp;
}

} // namespace svb
