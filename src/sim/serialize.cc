#include "serialize.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <unistd.h>

#include "logging.hh"

namespace svb
{

namespace
{

constexpr char ckptMagic[8] = {'S', 'V', 'B', 'C', 'K', 'P', 'T', '1'};

void
writeU64(std::ostream &os, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        os.put(char((v >> (8 * i)) & 0xff));
}

void
writeStr(std::ostream &os, const std::string &s)
{
    writeU64(os, s.size());
    os.write(s.data(), std::streamsize(s.size()));
}

/**
 * Bounds-checked cursor over the fully-read file contents. Every
 * length field is validated against the bytes actually remaining, so
 * a corrupt length can never trigger a huge allocation or a read past
 * the end of the buffer.
 */
struct FileParser
{
    const std::vector<uint8_t> &data;
    size_t pos = 0;
    std::string error;      ///< first failure, empty while good
    std::string context;    ///< key currently being read, for messages

    explicit FileParser(const std::vector<uint8_t> &data) : data(data) {}

    bool failed() const { return !error.empty(); }
    size_t remaining() const { return data.size() - pos; }

    void
    fail(const std::string &what)
    {
        if (!error.empty())
            return;
        error = what;
        if (!context.empty())
            error += " (while reading '" + context + "')";
        error += " at offset " + std::to_string(pos);
    }

    uint64_t
    getU64()
    {
        if (failed())
            return 0;
        if (remaining() < 8) {
            fail("truncated checkpoint: expected 8-byte value");
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(data[pos + size_t(i)]) << (8 * i);
        pos += 8;
        return v;
    }

    std::string
    getStr()
    {
        const uint64_t n = getU64();
        if (failed())
            return {};
        if (n > remaining()) {
            fail("corrupt checkpoint: string length " + std::to_string(n) +
                 " exceeds " + std::to_string(remaining()) +
                 " remaining bytes");
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data.data() + pos),
                      size_t(n));
        pos += size_t(n);
        return s;
    }

    std::vector<uint8_t>
    getBlob()
    {
        const uint64_t n = getU64();
        if (failed())
            return {};
        if (n > remaining()) {
            fail("corrupt checkpoint: blob length " + std::to_string(n) +
                 " exceeds " + std::to_string(remaining()) +
                 " remaining bytes");
            return {};
        }
        std::vector<uint8_t> out(data.begin() + std::ptrdiff_t(pos),
                                 data.begin() + std::ptrdiff_t(pos + n));
        pos += size_t(n);
        return out;
    }
};

} // namespace

void
Checkpoint::setScalar(const std::string &key, uint64_t value)
{
    scalars[key] = value;
}

void
Checkpoint::setString(const std::string &key, const std::string &value)
{
    strings[key] = value;
}

void
Checkpoint::setBlob(const std::string &key, std::vector<uint8_t> data)
{
    blobs[key] = std::move(data);
}

uint64_t
Checkpoint::getScalar(const std::string &key) const
{
    auto it = scalars.find(key);
    if (it == scalars.end())
        svb_fatal("checkpoint missing scalar '", key, "'");
    return it->second;
}

const std::string &
Checkpoint::getString(const std::string &key) const
{
    auto it = strings.find(key);
    if (it == strings.end())
        svb_fatal("checkpoint missing string '", key, "'");
    return it->second;
}

const std::vector<uint8_t> &
Checkpoint::getBlob(const std::string &key) const
{
    auto it = blobs.find(key);
    if (it == blobs.end())
        svb_fatal("checkpoint missing blob '", key, "'");
    return it->second;
}

bool
Checkpoint::hasScalar(const std::string &key) const
{
    return scalars.count(key) != 0;
}

bool
Checkpoint::hasString(const std::string &key) const
{
    return strings.count(key) != 0;
}

bool
Checkpoint::hasBlob(const std::string &key) const
{
    return blobs.count(key) != 0;
}

void
Checkpoint::erasePrefix(const std::string &prefix)
{
    // std::map keys are ordered: every key with this prefix forms one
    // contiguous range starting at lower_bound(prefix).
    const auto erase_range = [&prefix](auto &m) {
        auto it = m.lower_bound(prefix);
        while (it != m.end() && it->first.compare(0, prefix.size(),
                                                  prefix) == 0) {
            it = m.erase(it);
        }
    };
    erase_range(scalars);
    erase_range(strings);
    erase_range(blobs);
}

void
Checkpoint::saveToFile(const std::string &path) const
{
    // Write-then-rename: readers either see the previous complete file
    // or the new complete file, never a half-written one. The
    // temporary sibling carries a per-process, per-call unique suffix:
    // with a fixed ".tmp" name, two concurrent writers of the same
    // path would interleave into one temporary file and a corrupt mix
    // could be renamed into place.
    static std::atomic<uint64_t> tmpCounter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid())) + "." +
        std::to_string(tmpCounter.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            svb_fatal("cannot open checkpoint file '", tmp,
                      "' for writing");
        os.write(ckptMagic, sizeof(ckptMagic));
        writeU64(os, scalars.size());
        for (const auto &[k, v] : scalars) {
            writeStr(os, k);
            writeU64(os, v);
        }
        writeU64(os, strings.size());
        for (const auto &[k, v] : strings) {
            writeStr(os, k);
            writeStr(os, v);
        }
        writeU64(os, blobs.size());
        for (const auto &[k, v] : blobs) {
            writeStr(os, k);
            writeU64(os, v.size());
            os.write(reinterpret_cast<const char *>(v.data()),
                     std::streamsize(v.size()));
        }
        os.flush();
        if (!os.good())
            svb_fatal("short write to checkpoint file '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        svb_fatal("cannot rename '", tmp, "' to '", path, "'");
}

Checkpoint
Checkpoint::loadFromFile(const std::string &path)
{
    std::string err;
    std::optional<Checkpoint> cp = tryLoadFromFile(path, &err);
    if (!cp)
        svb_fatal("loading checkpoint '", path, "': ", err);
    return std::move(*cp);
}

std::optional<Checkpoint>
Checkpoint::tryLoadFromFile(const std::string &path, std::string *err)
{
    auto failWith = [&](const std::string &message) {
        if (err != nullptr)
            *err = message;
        return std::nullopt;
    };

    std::ifstream is(path, std::ios::binary);
    if (!is)
        return failWith("cannot open file");
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                               std::istreambuf_iterator<char>());
    if (bytes.size() < sizeof(ckptMagic) ||
        !std::equal(ckptMagic, ckptMagic + sizeof(ckptMagic),
                    bytes.begin())) {
        return failWith("not an svbench checkpoint (bad magic/version)");
    }

    FileParser p(bytes);
    p.pos = sizeof(ckptMagic);
    Checkpoint cp;

    p.context = "scalar count";
    uint64_t n = p.getU64();
    for (uint64_t i = 0; i < n && !p.failed(); ++i) {
        p.context = "scalar key #" + std::to_string(i);
        std::string k = p.getStr();
        p.context = k;
        cp.scalars[k] = p.getU64();
    }
    p.context = "string count";
    n = p.getU64();
    for (uint64_t i = 0; i < n && !p.failed(); ++i) {
        p.context = "string key #" + std::to_string(i);
        std::string k = p.getStr();
        p.context = k;
        cp.strings[k] = p.getStr();
    }
    p.context = "blob count";
    n = p.getU64();
    for (uint64_t i = 0; i < n && !p.failed(); ++i) {
        p.context = "blob key #" + std::to_string(i);
        std::string k = p.getStr();
        p.context = k;
        cp.blobs[k] = p.getBlob();
    }
    if (p.failed())
        return failWith(p.error);
    if (p.remaining() != 0) {
        return failWith("corrupt checkpoint: " +
                        std::to_string(p.remaining()) +
                        " bytes of trailing garbage");
    }
    return cp;
}

uint8_t
BlobReader::getU8()
{
    svb_assert(pos < data.size(), "blob reader overrun");
    return data[pos++];
}

uint64_t
BlobReader::getU64()
{
    svb_assert(pos + 8 <= data.size(), "blob reader overrun");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(data[pos + size_t(i)]) << (8 * i);
    pos += 8;
    return v;
}

} // namespace svb
