/**
 * @file
 * A minimal deterministic event queue.
 *
 * The CPU models are cycle-driven, but system-level activity
 * (container lifecycle timers, scheduler quanta, deferred work) is
 * scheduled here. Events firing at the same tick are serviced in
 * insertion order so simulation is bit-reproducible.
 *
 * Thread-safety: instance-scoped, no synchronisation. Each System
 * owns exactly one EventQueue and a System is only ever driven by one
 * thread (the parallel experiment scheduler gives every worker its
 * own cluster — see core/parallel.hh).
 */

#ifndef SVB_SIM_EVENTQ_HH
#define SVB_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace svb
{

/**
 * Global ordered queue of timed callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule a callback.
     *
     * @param when absolute tick at which to fire; must not be in the
     *             past relative to the queue's current time
     * @param name debugging label; must point at storage that outlives
     *             the event (in practice a string literal). Stored as
     *             a bare pointer so the hot path never allocates.
     * @param cb   the work to run
     */
    void schedule(Tick when, const char *name, Callback cb);

    /**
     * Service every event with firing time <= now, in order.
     *
     * @param now the new current time of the queue
     * @return the number of events serviced
     */
    size_t serviceUpTo(Tick now);

    /** @return tick of the earliest pending event, or maxTick. */
    Tick nextEventTick() const;

    /** @return the queue's notion of current time. */
    Tick curTick() const { return _curTick; }

    /** @return number of events still pending. */
    size_t pending() const { return events.size(); }

    /** Drop all pending events (used on checkpoint restore). */
    void clear();

  private:
    struct ScheduledEvent
    {
        Tick when;
        uint64_t seq;
        const char *name;
        Callback cb;

        bool
        operator>(const ScheduledEvent &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                        std::greater<>> events;
    Tick _curTick = 0;
    uint64_t nextSeq = 0;
};

} // namespace svb

#endif // SVB_SIM_EVENTQ_HH
