/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own a StatGroup; they register named Scalar counters,
 * Formula (derived) values and Distributions inside it. The
 * experiment harness resets the whole tree at region-of-interest
 * start and snapshots it at region end, exactly like gem5's stat
 * reset / stat dump magic operations.
 *
 * Thread-safety: none, by design. There is no global stat registry —
 * every StatGroup tree is rooted in exactly one System (StatGroup is
 * non-copyable and owned via unique_ptr), so concurrent experiments
 * on worker threads touch disjoint trees. Audited for the parallel
 * scheduler (core/parallel.hh).
 */

#ifndef SVB_SIM_STATS_HH
#define SVB_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace svb
{

class StatGroup;

/** Base class for every named statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Reset the statistic to its initial value. */
    virtual void reset() = 0;

    /** Append (leafName -> value) pairs to a flat snapshot. */
    virtual void snapshot(const std::string &prefix,
                          std::map<std::string, double> &out) const = 0;

    /** Pretty-print one or more lines describing the current value. */
    virtual void print(const std::string &prefix,
                       std::ostream &os) const = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically adjustable 64-bit counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(uint64_t n) { val += n; return *this; }
    uint64_t value() const { return val; }

    void reset() override { val = 0; }
    void snapshot(const std::string &prefix,
                  std::map<std::string, double> &out) const override;
    void print(const std::string &prefix, std::ostream &os) const override;

  private:
    uint64_t val = 0;
};

/** A value derived on demand from other statistics. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn(std::move(fn))
    {}

    double value() const { return fn(); }

    void reset() override {}
    void snapshot(const std::string &prefix,
                  std::map<std::string, double> &out) const override;
    void print(const std::string &prefix, std::ostream &os) const override;

  private:
    std::function<double()> fn;
};

/**
 * A fixed-bucket histogram over [min, max) plus underflow/overflow,
 * with running sum for mean computation.
 */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc, uint64_t min,
                 uint64_t max, uint64_t bucketSize);

    /** Record one sample. */
    void sample(uint64_t value);

    uint64_t samples() const { return count; }
    double mean() const { return count ? double(sum) / count : 0.0; }
    uint64_t bucketCount(size_t i) const { return buckets.at(i); }
    size_t numBuckets() const { return buckets.size(); }
    uint64_t underflows() const { return underflow; }
    uint64_t overflows() const { return overflow; }

    void reset() override;
    void snapshot(const std::string &prefix,
                  std::map<std::string, double> &out) const override;
    void print(const std::string &prefix, std::ostream &os) const override;

  private:
    uint64_t min;
    uint64_t max;
    uint64_t bucketSize;
    std::vector<uint64_t> buckets;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    uint64_t sum = 0;
    uint64_t count = 0;
};

/**
 * A named tree node owning statistics and child groups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a counter. */
    Scalar &addScalar(const std::string &name, const std::string &desc);

    /** Create and register a derived value. */
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Create and register a histogram. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc, uint64_t min,
                                  uint64_t max, uint64_t bucketSize);

    /** Create (or fetch an existing) child group. */
    StatGroup &childGroup(const std::string &name);

    const std::string &name() const { return _name; }

    /**
     * Mark this group as host-observability only: its statistics
     * measure simulator work (decode-cache lookups, superblock
     * formation), not guest events, so they are excluded from
     * snapshotAll() — the surface on which experiments assert
     * byte-identity across emulation tiers and checkpoint restores.
     * printAll() still lists them.
     */
    void markHostOnly() { _hostOnly = true; }
    bool hostOnly() const { return _hostOnly; }

    /** Recursively reset every statistic under this group. */
    void resetAll();

    /** Flatten the tree into dotted-name -> value pairs, skipping
     *  host-only subtrees. */
    std::map<std::string, double> snapshotAll() const;

    /** Pretty-print the whole tree. */
    void printAll(std::ostream &os) const;

  private:
    void snapshotInto(const std::string &prefix,
                      std::map<std::string, double> &out) const;
    void printInto(const std::string &prefix, std::ostream &os) const;

    std::string _name;
    bool _hostOnly = false;
    std::vector<std::unique_ptr<Stat>> stats;
    std::vector<std::unique_ptr<StatGroup>> children;
};

} // namespace svb

#endif // SVB_SIM_STATS_HH
