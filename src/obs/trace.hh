/**
 * @file
 * Request-scoped tracing: deterministic, simulated-time span buffers
 * exported as Chrome trace-event JSON.
 *
 * Spans record *simulated* time (cycles on the detailed cluster
 * timeline, nanoseconds on the load timeline), never wall-clock, so a
 * trace is a pure function of the experiment inputs. Each concurrent
 * experiment records onto its own named track; the exporter sorts
 * tracks by name and keeps each track's spans in append order, so the
 * emitted JSON is byte-identical at any SVBENCH_JOBS worker count.
 *
 * Enable with SVBENCH_TRACE=<path> (the file is written when the
 * process exits, or on an explicit flush()) or programmatically via
 * Tracer::global().enable(path). When disabled, record() is a cheap
 * early-out, so instrumentation stays in place at zero cost.
 *
 * Thread-safety: every public member may be called concurrently; one
 * mutex guards the track table and all span buffers. Spans are
 * coarse (per phase / per request, never per cycle), so the lock is
 * far off any hot path.
 */

#ifndef SVB_OBS_TRACE_HH
#define SVB_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace svb::obs
{

/** Opaque handle to one trace track (badTrack when tracing is off). */
using TrackId = int;
constexpr TrackId badTrack = -1;

/** One complete span on a track's simulated timeline. */
struct TraceEvent
{
    std::string name; ///< e.g. "cold", "request#10", "boot"
    std::string cat;  ///< phase taxonomy: "phase", "request", "queue"...
    uint64_t start = 0; ///< simulated start time (track time unit)
    uint64_t dur = 0;   ///< simulated duration (track time unit)
    /** Optional key-value annotations, rendered as the span's "args"
     *  object (viewers show them in the selection pane). Left empty
     *  (the common case) the span renders exactly as it did before
     *  args existed — the byte-identity goldens depend on that. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * The process-wide span collector.
 */
class Tracer
{
  public:
    /** The singleton; reads SVBENCH_TRACE once on first use. */
    static Tracer &global();

    /** @return true when spans are being collected. */
    bool enabled() const { return isEnabled.load(std::memory_order_relaxed); }

    /** Start collecting; the JSON lands at @p path on flush/exit. */
    void enable(const std::string &path);

    /** Stop collecting and drop every buffered span (for tests). */
    void reset();

    /**
     * Find or create the track named @p name. Track names must be
     * unique per concurrently running experiment (embed the platform
     * and mode); reusing a name appends to the existing track.
     * @return badTrack when tracing is disabled
     */
    TrackId track(const std::string &name);

    /** Append a completed span to @p track; no-op when disabled. */
    void record(TrackId track, const std::string &name,
                const std::string &cat, uint64_t start, uint64_t dur);

    /** Append a completed span carrying key-value args (rendered as
     *  the trace-event "args" object); no-op when disabled. */
    void record(TrackId track, const std::string &name,
                const std::string &cat, uint64_t start, uint64_t dur,
                std::vector<std::pair<std::string, std::string>> args);

    /** Serialise every track as Chrome trace-event JSON. */
    void render(std::ostream &os) const;

    /** Write the JSON to the configured path (no-op when disabled). */
    void flush() const;

    ~Tracer();

  private:
    Tracer();

    struct Track
    {
        std::string name;
        std::vector<TraceEvent> events;
    };

    std::atomic<bool> isEnabled{false};
    mutable std::mutex mtx;
    std::string outPath;
    std::vector<Track> tracks;
};

} // namespace svb::obs

#endif // SVB_OBS_TRACE_HH
