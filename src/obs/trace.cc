#include "trace.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "sim/logging.hh"

namespace svb::obs
{

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer()
{
    const char *env = std::getenv("SVBENCH_TRACE");
    if (env != nullptr && env[0] != '\0')
        enable(env);
}

Tracer::~Tracer()
{
    flush();
}

void
Tracer::enable(const std::string &path)
{
    std::lock_guard<std::mutex> lk(mtx);
    outPath = path;
    isEnabled.store(true, std::memory_order_relaxed);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lk(mtx);
    isEnabled.store(false, std::memory_order_relaxed);
    outPath.clear();
    tracks.clear();
}

TrackId
Tracer::track(const std::string &name)
{
    if (!enabled())
        return badTrack;
    std::lock_guard<std::mutex> lk(mtx);
    for (size_t i = 0; i < tracks.size(); ++i) {
        if (tracks[i].name == name)
            return TrackId(i);
    }
    tracks.push_back({name, {}});
    return TrackId(tracks.size() - 1);
}

void
Tracer::record(TrackId track_id, const std::string &name,
               const std::string &cat, uint64_t start, uint64_t dur)
{
    if (!enabled() || track_id == badTrack)
        return;
    std::lock_guard<std::mutex> lk(mtx);
    tracks.at(size_t(track_id)).events.push_back(
        {name, cat, start, dur, {}});
}

void
Tracer::record(TrackId track_id, const std::string &name,
               const std::string &cat, uint64_t start, uint64_t dur,
               std::vector<std::pair<std::string, std::string>> args)
{
    if (!enabled() || track_id == badTrack)
        return;
    std::lock_guard<std::mutex> lk(mtx);
    tracks.at(size_t(track_id))
        .events.push_back({name, cat, start, dur, std::move(args)});
}

namespace
{

/** JSON string escaping: the span vocabulary is plain ASCII, but a
 *  function or scenario name must never be able to break the file. */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
Tracer::render(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(mtx);

    // Track creation order depends on worker scheduling; the on-disk
    // tid assignment must not. Sort an index by track name (names are
    // unique) and emit in that order.
    std::vector<size_t> order(tracks.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return tracks[a].name < tracks[b].name;
    });

    os << "{\"traceEvents\":[";
    bool first = true;
    for (size_t tid = 0; tid < order.size(); ++tid) {
        const Track &track = tracks[order[tid]];
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":";
        writeJsonString(os, track.name);
        os << "}}";
        for (const TraceEvent &ev : track.events) {
            os << ",\n{\"name\":";
            writeJsonString(os, ev.name);
            os << ",\"cat\":";
            writeJsonString(os, ev.cat);
            os << ",\"ph\":\"X\",\"ts\":" << ev.start
               << ",\"dur\":" << ev.dur << ",\"pid\":0,\"tid\":" << tid;
            // Args only render when present, so spans without them
            // keep their pre-args byte layout (the goldens in
            // tests/test_obs.cc pin it).
            if (!ev.args.empty()) {
                os << ",\"args\":{";
                bool firstArg = true;
                for (const auto &[k, v] : ev.args) {
                    if (!firstArg)
                        os << ",";
                    firstArg = false;
                    writeJsonString(os, k);
                    os << ":";
                    writeJsonString(os, v);
                }
                os << "}";
            }
            os << "}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
Tracer::flush() const
{
    std::string path;
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (!isEnabled.load(std::memory_order_relaxed) || outPath.empty())
            return;
        path = outPath;
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn("SVBENCH_TRACE: cannot write ", path);
        return;
    }
    render(os);
}

} // namespace svb::obs
