/**
 * @file
 * StatGroup snapshot/delta export: the measurement side of the
 * observability layer.
 *
 * A StatSnapshot is a flat dotted-name -> value map taken from a
 * StatGroup tree (StatGroup::snapshotAll()). delta() subtracts two
 * snapshots name-by-name, which is exact for Scalar counters — the
 * only stat kind RequestStats reads. Formula values (cpi, rates) are
 * not additive; a delta consumer recomputes them from the scalar
 * deltas, exactly as RequestStats does.
 *
 * writeJson() re-nests the dotted names into a hierarchical object
 * (system.cpu1.o3.numCycles -> {"system":{"cpu1":{"o3":{...}}}});
 * writeCsv() emits one "name,value" line per stat. Both orderings
 * come from the snapshot's sorted map, so the bytes are deterministic
 * for a given tree state.
 *
 * SVBENCH_STATDUMP=<dir> makes the experiment runner write one
 * JSON+CSV pair per measured request into <dir>; the load engine
 * additionally writes one "load_<scenario>_fault" pair of fault.*
 * counters per scenario whose fault/breaker machinery is engaged.
 */

#ifndef SVB_OBS_STAT_EXPORT_HH
#define SVB_OBS_STAT_EXPORT_HH

#include <map>
#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace svb::obs
{

/** Flat dotted-name -> value view of a StatGroup tree. */
using StatSnapshot = std::map<std::string, double>;

/** Capture the current values of every stat under @p group. */
StatSnapshot snapshot(const StatGroup &group);

/**
 * @return after - before, name by name. Names missing from @p before
 * count as 0 (stats created between the snapshots); names missing
 * from @p after are dropped (the tree never loses stats in practice).
 */
StatSnapshot delta(const StatSnapshot &before, const StatSnapshot &after);

/** Look @p name up in @p snap; 0.0 when absent. */
double statValue(const StatSnapshot &snap, const std::string &name);

/** Write @p snap as a hierarchical JSON object (trailing newline). */
void writeJson(std::ostream &os, const StatSnapshot &snap);

/** Write @p snap as "name,value" CSV lines with a header. */
void writeCsv(std::ostream &os, const StatSnapshot &snap);

/**
 * The per-request stat-dump directory: SVBENCH_STATDUMP when set and
 * non-empty, else the empty string (dumping disabled). Read once.
 */
const std::string &statDumpDir();

/**
 * Write @p snap to "<dir>/<stem>.json" and "<dir>/<stem>.csv" under
 * statDumpDir(); @p stem is sanitised ('/' and spaces -> '_'). No-op
 * when dumping is disabled.
 */
void dumpRequestStats(const std::string &stem, const StatSnapshot &snap);

} // namespace svb::obs

#endif // SVB_OBS_STAT_EXPORT_HH
