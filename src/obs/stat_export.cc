#include "stat_export.hh"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace svb::obs
{

StatSnapshot
snapshot(const StatGroup &group)
{
    return group.snapshotAll();
}

StatSnapshot
delta(const StatSnapshot &before, const StatSnapshot &after)
{
    StatSnapshot out;
    for (const auto &[name, value] : after) {
        auto it = before.find(name);
        out[name] = value - (it == before.end() ? 0.0 : it->second);
    }
    return out;
}

double
statValue(const StatSnapshot &snap, const std::string &name)
{
    auto it = snap.find(name);
    return it == snap.end() ? 0.0 : it->second;
}

namespace
{

/**
 * Deterministic number formatting: counters print as integers,
 * everything else with up to six significant digits. Avoids
 * locale-dependent ostream state entirely.
 */
std::string
formatValue(double v)
{
    char buf[64];
    if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
}

std::vector<std::string>
splitPath(const std::string &name)
{
    std::vector<std::string> parts;
    size_t begin = 0;
    for (;;) {
        const size_t dot = name.find('.', begin);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(begin));
            return parts;
        }
        parts.push_back(name.substr(begin, dot - begin));
        begin = dot + 1;
    }
}

void
writeJsonKey(std::ostream &os, int depth, const std::string &key)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
    os << '"' << key << "\": ";
}

} // namespace

void
writeJson(std::ostream &os, const StatSnapshot &snap)
{
    // The snapshot map is sorted, so siblings of one subtree are
    // contiguous: a single pass with an open-path stack re-nests the
    // dotted names without building an intermediate tree.
    std::vector<std::string> open;
    os << "{";
    bool first = true;
    for (const auto &[name, value] : snap) {
        const std::vector<std::string> parts = splitPath(name);
        size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common])
            ++common;
        for (size_t i = open.size(); i > common; --i) {
            os << "\n";
            for (size_t k = 0; k < i; ++k)
                os << "  ";
            os << "}";
        }
        open.resize(common);
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        for (size_t i = common + 1; i < parts.size(); ++i) {
            writeJsonKey(os, int(open.size() + 1), parts[i - 1]);
            os << "{\n";
            open.push_back(parts[i - 1]);
        }
        writeJsonKey(os, int(open.size() + 1), parts.back());
        os << formatValue(value);
    }
    for (size_t i = open.size(); i > 0; --i) {
        os << "\n";
        for (size_t k = 0; k < i; ++k)
            os << "  ";
        os << "}";
    }
    os << "\n}\n";
}

void
writeCsv(std::ostream &os, const StatSnapshot &snap)
{
    os << "stat,value\n";
    for (const auto &[name, value] : snap)
        os << name << "," << formatValue(value) << "\n";
}

const std::string &
statDumpDir()
{
    static const std::string dir = [] {
        const char *env = std::getenv("SVBENCH_STATDUMP");
        return std::string(env != nullptr ? env : "");
    }();
    return dir;
}

void
dumpRequestStats(const std::string &stem, const StatSnapshot &snap)
{
    const std::string &dir = statDumpDir();
    if (dir.empty())
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("SVBENCH_STATDUMP: cannot create ", dir, ": ", ec.message());
        return;
    }

    std::string safe = stem;
    for (char &c : safe) {
        if (c == '/' || c == ' ' || c == '\\')
            c = '_';
    }
    const std::string base = dir + "/" + safe;
    {
        std::ofstream os(base + ".json", std::ios::binary | std::ios::trunc);
        if (os)
            writeJson(os, snap);
        else
            warn("SVBENCH_STATDUMP: cannot write ", base, ".json");
    }
    {
        std::ofstream os(base + ".csv", std::ios::binary | std::ios::trunc);
        if (os)
            writeCsv(os, snap);
        else
            warn("SVBENCH_STATDUMP: cannot write ", base, ".csv");
    }
}

} // namespace svb::obs
