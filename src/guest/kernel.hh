/**
 * @file
 * The lightweight guest kernel.
 *
 * Stands in for the Linux layer of the paper's stack: it owns the
 * process table, runs a cooperative per-core round-robin scheduler,
 * and implements the syscall ABI (exit/yield/m5/log). Context switches
 * charge a fixed trap cost and, via ptRoot changes, flush the TLBs.
 *
 * Thread-safety: instance-scoped, like all of guest/ (kernel, address
 * spaces, loader, rings). One GuestKernel per System, driven by that
 * System's single experiment thread (core/parallel.hh).
 */

#ifndef SVB_GUEST_KERNEL_HH
#define SVB_GUEST_KERNEL_HH

#include <deque>
#include <memory>
#include <vector>

#include "isa/isa_info.hh"
#include "process.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "syscall_abi.hh"

namespace svb
{

/** Receiver of guest magic (M5) operations. */
class M5Listener
{
  public:
    virtual ~M5Listener() = default;

    /** Called when a guest issues sysM5. */
    virtual void m5Op(int core_id, uint64_t op, uint64_t arg) = 0;
};

/**
 * The guest kernel; implements the CPUs' TrapHandler.
 */
class GuestKernel : public TrapHandler, public Serializable
{
  public:
    /** Trap/scheduling costs, in cycles. */
    struct Costs
    {
        Cycles syscall = 60;        ///< kernel entry/exit
        Cycles contextSwitch = 350; ///< save/restore + scheduler
        Cycles m5 = 1;              ///< magic ops are nearly free
    };

    GuestKernel(PhysMemory &phys, FrameAllocator &frames, IsaId isa,
                int num_cores, StatGroup &stats);

    // --- process management ---------------------------------------------
    /** Create a process (empty address space) pinned to @p core. */
    Process &createProcess(const std::string &name, int core);

    /** Mark a created process runnable at @p entry with @p stack_top. */
    void startProcess(int pid, Addr entry, Addr stack_top);

    Process &process(int pid);
    const Process &process(int pid) const;
    size_t numProcesses() const { return procs.size(); }

    /** Find a live process by name; -1 when absent. */
    int findProcess(const std::string &name) const;

    /**
     * Load the next runnable process onto an idle core.
     * @return true when a context was installed into @p ctx
     */
    bool scheduleCore(int core_id, HwContext &ctx);

    // --- TrapHandler -------------------------------------------------------
    Cycles handleSyscall(int core_id, HwContext &ctx) override;
    Cycles handleHalt(int core_id, HwContext &ctx) override;

    void setM5Listener(M5Listener *listener) { m5 = listener; }
    const Costs &costs() const { return cost; }

    void serializeState(const std::string &prefix,
                        Checkpoint &cp) const override;
    void unserializeState(const std::string &prefix,
                          const Checkpoint &cp) override;

  private:
    /** Read the syscall number/args from @p ctx per the ISA ABI. */
    uint64_t sysReg(const HwContext &ctx, int which) const;
    void setResult(HwContext &ctx, uint64_t value) const;

    /** Save @p ctx into the running process and run the next one. */
    Cycles switchTo(int core_id, HwContext &ctx, bool requeue_current);

    PhysMemory &phys;
    FrameAllocator &frames;
    IsaId isa;
    Costs cost;
    M5Listener *m5 = nullptr;

    std::vector<std::unique_ptr<Process>> procs;
    std::vector<std::deque<int>> runQueues; ///< per core
    std::vector<int> runningPid;            ///< per core, -1 if idle
    uint64_t trapCounter = 0;

    Scalar &statSyscalls;
    Scalar &statYields;
    Scalar &statSwitches;
    Scalar &statExits;
};

} // namespace svb

#endif // SVB_GUEST_KERNEL_HH
