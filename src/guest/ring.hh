/**
 * @file
 * Shared-memory ring channels (the RPC transport).
 *
 * Layout in guest memory, physically contiguous:
 *   +0   head (u64)  — consumer cursor (slot sequence number)
 *   +8   tail (u64)  — producer cursor
 *   +16  slots[numSlots] of slotSize bytes; each slot starts with a
 *        u64 payload length followed by the payload bytes.
 *
 * Guest code implements send/recv directly with loads and stores (see
 * gen/runtime_lib); the helpers here are the host-side functional view
 * used by tests and the experiment harness.
 */

#ifndef SVB_GUEST_RING_HH
#define SVB_GUEST_RING_HH

#include <cstdint>
#include <vector>

#include "mem/phys_memory.hh"

namespace svb::ring
{

constexpr uint32_t slotSize = 256;
constexpr uint32_t headerBytes = 16;
constexpr uint32_t maxPayload = slotSize - 8;

/** @return the byte footprint of a ring with @p num_slots slots. */
inline Addr
byteSize(uint32_t num_slots)
{
    return headerBytes + Addr(num_slots) * slotSize;
}

/** Host-side descriptor of one ring. */
struct Ring
{
    Addr phys = 0;       ///< physical base
    Addr vaddr = 0;      ///< virtual base (same in all mapping processes)
    uint32_t numSlots = 16;
};

/** @return number of queued messages. */
uint64_t pending(const PhysMemory &mem, const Ring &ring);

/**
 * Host-side push (used by tests/harness).
 * @return false when the ring is full
 */
bool tryPush(PhysMemory &mem, const Ring &ring, const void *payload,
             uint64_t len);

/**
 * Host-side pop.
 * @return false when the ring is empty
 */
bool tryPop(PhysMemory &mem, const Ring &ring,
            std::vector<uint8_t> &payload_out);

} // namespace svb::ring

#endif // SVB_GUEST_RING_HH
