/**
 * @file
 * Guest physical frame allocation and per-process address spaces.
 */

#ifndef SVB_GUEST_ADDRESS_SPACE_HH
#define SVB_GUEST_ADDRESS_SPACE_HH

#include "cpu/paging.hh"
#include "mem/phys_memory.hh"
#include "sim/serialize.hh"

namespace svb
{

/**
 * Bump allocator handing out 4 KiB physical frames.
 */
class FrameAllocator : public Serializable
{
  public:
    /**
     * @param base  first allocatable physical address (page aligned)
     * @param limit end of the allocatable range
     */
    FrameAllocator(Addr base, Addr limit) : next(base), limit(limit) {}

    /** Allocate @p count contiguous frames; fatal on exhaustion. */
    Addr allocFrames(size_t count);

    Addr allocatedUpTo() const { return next; }

    void serializeState(const std::string &prefix,
                        Checkpoint &cp) const override;
    void unserializeState(const std::string &prefix,
                          const Checkpoint &cp) override;

  private:
    Addr next;
    Addr limit;
};

/**
 * One process's virtual address space: a two-level page table living
 * in guest physical memory.
 */
class AddressSpace
{
  public:
    /**
     * Create an empty address space whose tables are allocated from
     * @p frames and stored in @p phys.
     */
    AddressSpace(PhysMemory &phys, FrameAllocator &frames);

    /** @return the page-table root physical address (for ptRoot). */
    Addr root() const { return rootTable; }

    /** Map one virtual page to an existing physical frame. */
    void mapPage(Addr vaddr, Addr paddr);

    /**
     * Allocate frames and map @p bytes of virtual space at @p vaddr.
     * @return the physical address backing the first page
     */
    Addr allocRegion(Addr vaddr, Addr bytes);

    /**
     * Map an existing physical range (shared memory) at @p vaddr.
     */
    void mapShared(Addr vaddr, Addr paddr, Addr bytes);

    /** Translate functionally; fatal when unmapped. */
    Addr translate(Addr vaddr) const;

    /** @return true when @p vaddr is mapped. */
    bool isMapped(Addr vaddr) const;

    // Convenience functional accessors through the translation.
    uint64_t read(Addr vaddr, unsigned len) const;
    void write(Addr vaddr, uint64_t value, unsigned len);
    void writeBytes(Addr vaddr, const void *src, size_t len);
    void readBytes(Addr vaddr, void *dst, size_t len) const;

  private:
    PhysMemory &phys;
    FrameAllocator &frames;
    Addr rootTable;
};

} // namespace svb

#endif // SVB_GUEST_ADDRESS_SPACE_HH
