#include "kernel.hh"

#include "sim/logging.hh"

namespace svb
{

GuestKernel::GuestKernel(PhysMemory &phys_mem, FrameAllocator &frame_alloc,
                         IsaId isa_id, int num_cores, StatGroup &stats)
    : phys(phys_mem), frames(frame_alloc), isa(isa_id),
      runQueues(size_t(num_cores)), runningPid(size_t(num_cores), -1),
      statSyscalls(stats.childGroup("kernel").addScalar(
          "syscalls", "syscalls handled")),
      statYields(stats.childGroup("kernel").addScalar("yields",
                                                      "yield syscalls")),
      statSwitches(stats.childGroup("kernel").addScalar(
          "contextSwitches", "process context switches")),
      statExits(stats.childGroup("kernel").addScalar("exits",
                                                     "process exits"))
{
}

Process &
GuestKernel::createProcess(const std::string &name, int core)
{
    auto proc = std::make_unique<Process>();
    proc->pid = int(procs.size());
    proc->name = name;
    proc->core = core;
    proc->space = std::make_unique<AddressSpace>(phys, frames);
    procs.push_back(std::move(proc));
    return *procs.back();
}

void
GuestKernel::startProcess(int pid, Addr entry, Addr stack_top)
{
    Process &proc = process(pid);
    proc.saved = HwContext{};
    proc.saved.pc = entry;
    proc.saved.ptRoot = proc.space->root();
    proc.saved.processId = pid;
    proc.saved.halted = false;
    const IsaInfo &info = isaInfo(isa);
    const unsigned sp =
        info.id == IsaId::Riscv ? rv::sp : unsigned(cx::rsp);
    proc.saved.regs[sp] = stack_top;
    proc.state = ProcState::Ready;
    runQueues[size_t(proc.core)].push_back(pid);
}

Process &
GuestKernel::process(int pid)
{
    svb_assert(pid >= 0 && size_t(pid) < procs.size(), "bad pid ", pid);
    return *procs[size_t(pid)];
}

const Process &
GuestKernel::process(int pid) const
{
    svb_assert(pid >= 0 && size_t(pid) < procs.size(), "bad pid ", pid);
    return *procs[size_t(pid)];
}

int
GuestKernel::findProcess(const std::string &name) const
{
    for (const auto &proc : procs) {
        if (proc->name == name && proc->state != ProcState::Exited)
            return proc->pid;
    }
    return -1;
}

bool
GuestKernel::scheduleCore(int core_id, HwContext &ctx)
{
    auto &queue = runQueues[size_t(core_id)];
    if (queue.empty())
        return false;
    const int pid = queue.front();
    queue.pop_front();
    Process &proc = process(pid);
    proc.state = ProcState::Running;
    runningPid[size_t(core_id)] = pid;
    ctx = proc.saved;
    ctx.halted = false;
    return true;
}

uint64_t
GuestKernel::sysReg(const HwContext &ctx, int which) const
{
    // which: -1 = syscall number, 0..2 = arguments.
    if (isa == IsaId::Riscv)
        return which < 0 ? ctx.regs[rv::a7] : ctx.regs[rv::a0 + which];
    return which < 0 ? ctx.regs[cx::r9] : ctx.regs[cx::r1 + which];
}

void
GuestKernel::setResult(HwContext &ctx, uint64_t value) const
{
    if (isa == IsaId::Riscv)
        ctx.regs[rv::a0] = value;
    else
        ctx.regs[cx::r0] = value;
}

Cycles
GuestKernel::switchTo(int core_id, HwContext &ctx, bool requeue_current)
{
    auto &queue = runQueues[size_t(core_id)];
    const int cur = runningPid[size_t(core_id)];

    if (cur >= 0) {
        Process &proc = process(cur);
        if (requeue_current) {
            proc.saved = ctx;
            proc.state = ProcState::Ready;
            queue.push_back(cur);
        }
    }

    if (queue.empty()) {
        runningPid[size_t(core_id)] = -1;
        ctx.halted = true;
        ctx.processId = -1;
        return cost.contextSwitch;
    }

    const int next = queue.front();
    queue.pop_front();
    Process &proc = process(next);
    proc.state = ProcState::Running;
    runningPid[size_t(core_id)] = next;
    ctx = proc.saved;
    ctx.halted = false;
    ++statSwitches;
    return cost.contextSwitch;
}

Cycles
GuestKernel::handleSyscall(int core_id, HwContext &ctx)
{
    ++statSyscalls;
    ++trapCounter;
    const uint64_t number = sysReg(ctx, -1);

    switch (number) {
      case sys::sysExit: {
        ++statExits;
        const int cur = runningPid[size_t(core_id)];
        if (cur >= 0)
            process(cur).state = ProcState::Exited;
        return switchTo(core_id, ctx, /*requeue_current=*/false);
      }
      case sys::sysYield: {
        ++statYields;
        auto &queue = runQueues[size_t(core_id)];
        if (queue.empty())
            return cost.syscall; // nothing else to run: cheap return
        return switchTo(core_id, ctx, /*requeue_current=*/true);
      }
      case sys::sysM5: {
        if (m5 != nullptr)
            m5->m5Op(core_id, sysReg(ctx, 0), sysReg(ctx, 1));
        return cost.m5;
      }
      case sys::sysLog: {
        const int cur = runningPid[size_t(core_id)];
        const Addr vaddr = sysReg(ctx, 0);
        const uint64_t len = std::min<uint64_t>(sysReg(ctx, 1), 256);
        std::string text(len, '\0');
        if (cur >= 0)
            process(cur).space->readBytes(vaddr, text.data(), len);
        inform("[guest core", core_id, " ",
               cur >= 0 ? process(cur).name : "?", "] ", text);
        return cost.syscall;
      }
      case sys::sysNow:
        setResult(ctx, trapCounter);
        return cost.syscall;
      default:
        svb_fatal("unknown syscall ", number, " on core ", core_id);
    }
}

Cycles
GuestKernel::handleHalt(int core_id, HwContext &ctx)
{
    // A halt instruction is process exit without the syscall dance.
    ++statExits;
    ++trapCounter;
    const int cur = runningPid[size_t(core_id)];
    if (cur >= 0)
        process(cur).state = ProcState::Exited;
    return switchTo(core_id, ctx, /*requeue_current=*/false);
}

void
GuestKernel::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    cp.setScalar(prefix + "numProcs", procs.size());
    cp.setScalar(prefix + "trapCounter", trapCounter);
    for (const auto &proc : procs) {
        const std::string pp =
            prefix + "proc" + std::to_string(proc->pid) + ".";
        cp.setString(pp + "name", proc->name);
        cp.setScalar(pp + "core", uint64_t(proc->core));
        cp.setScalar(pp + "state", uint64_t(proc->state));
        cp.setScalar(pp + "pc", proc->saved.pc);
        cp.setScalar(pp + "ptRoot", proc->saved.ptRoot);
        cp.setScalar(pp + "halted", proc->saved.halted ? 1 : 0);
        for (unsigned r = 0; r < maxArchRegs; ++r)
            cp.setScalar(pp + "reg" + std::to_string(r),
                         proc->saved.regs[r]);
    }
    for (size_t c = 0; c < runQueues.size(); ++c) {
        const std::string cpfx = prefix + "core" + std::to_string(c) + ".";
        cp.setScalar(cpfx + "running", uint64_t(int64_t(runningPid[c])));
        cp.setScalar(cpfx + "queueLen", runQueues[c].size());
        for (size_t i = 0; i < runQueues[c].size(); ++i) {
            cp.setScalar(cpfx + "queue" + std::to_string(i),
                         uint64_t(runQueues[c][i]));
        }
    }
}

void
GuestKernel::unserializeState(const std::string &prefix,
                              const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "numProcs") == procs.size(),
               "checkpoint process-table mismatch");
    trapCounter = cp.getScalar(prefix + "trapCounter");
    for (auto &proc : procs) {
        const std::string pp =
            prefix + "proc" + std::to_string(proc->pid) + ".";
        svb_assert(cp.getString(pp + "name") == proc->name,
                   "checkpoint process name mismatch");
        proc->core = int(cp.getScalar(pp + "core"));
        proc->state = ProcState(cp.getScalar(pp + "state"));
        proc->saved.pc = cp.getScalar(pp + "pc");
        proc->saved.ptRoot = cp.getScalar(pp + "ptRoot");
        proc->saved.halted = cp.getScalar(pp + "halted") != 0;
        proc->saved.processId = proc->pid;
        for (unsigned r = 0; r < maxArchRegs; ++r)
            proc->saved.regs[r] =
                cp.getScalar(pp + "reg" + std::to_string(r));
    }
    for (size_t c = 0; c < runQueues.size(); ++c) {
        const std::string cpfx = prefix + "core" + std::to_string(c) + ".";
        runningPid[c] = int(int64_t(cp.getScalar(cpfx + "running")));
        runQueues[c].clear();
        const uint64_t len = cp.getScalar(cpfx + "queueLen");
        for (uint64_t i = 0; i < len; ++i) {
            runQueues[c].push_back(
                int(cp.getScalar(cpfx + "queue" + std::to_string(i))));
        }
    }
}

} // namespace svb
