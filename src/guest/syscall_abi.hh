/**
 * @file
 * The guest kernel's syscall ABI, shared between the kernel and the
 * code generator.
 *
 * RISC-V: number in a7, args in a0..a2, result in a0.
 * CX86:   number in r9, args in r1..r3, result in r0.
 */

#ifndef SVB_GUEST_SYSCALL_ABI_HH
#define SVB_GUEST_SYSCALL_ABI_HH

#include <cstdint>

namespace svb::sys
{

enum Number : uint64_t
{
    sysExit = 0,  ///< terminate the calling process
    sysYield = 1, ///< cooperative reschedule on this core
    sysM5 = 2,    ///< magic simulation op (arg0 = M5Op, arg1 = payload)
    sysLog = 3,   ///< debug print (arg0 = vaddr, arg1 = length)
    sysNow = 4,   ///< returns the kernel's trap counter (coarse clock)
};

/** Magic simulation operations (the M5-instruction equivalents). */
enum M5Op : uint64_t
{
    m5WorkBegin = 1,
    m5WorkEnd = 2,
    m5ResetStats = 3,
    m5DumpStats = 4,
    m5ExitSim = 5,
    m5Event = 6,
};

} // namespace svb::sys

#endif // SVB_GUEST_SYSCALL_ABI_HH
