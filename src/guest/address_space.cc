#include "address_space.hh"

#include "sim/logging.hh"

namespace svb
{

Addr
FrameAllocator::allocFrames(size_t count)
{
    const Addr addr = next;
    next += Addr(count) * paging::pageSize;
    if (next > limit)
        svb_fatal("guest physical memory exhausted (", next, " > ", limit,
                  ")");
    return addr;
}

void
FrameAllocator::serializeState(const std::string &prefix,
                               Checkpoint &cp) const
{
    cp.setScalar(prefix + "next", next);
    cp.setScalar(prefix + "limit", limit);
}

void
FrameAllocator::unserializeState(const std::string &prefix,
                                 const Checkpoint &cp)
{
    next = cp.getScalar(prefix + "next");
    svb_assert(cp.getScalar(prefix + "limit") == limit,
               "frame allocator limit mismatch");
}

AddressSpace::AddressSpace(PhysMemory &phys_mem, FrameAllocator &frame_alloc)
    : phys(phys_mem), frames(frame_alloc)
{
    rootTable = frames.allocFrames(paging::tableBytes / paging::pageSize);
    phys.clearRange(rootTable, paging::tableBytes);
}

void
AddressSpace::mapPage(Addr vaddr, Addr paddr)
{
    svb_assert(paging::pageOffset(vaddr) == 0 &&
               paging::pageOffset(paddr) == 0, "unaligned mapping");
    const Addr pte1Addr = rootTable + paging::vpn1(vaddr) * 8;
    uint64_t pte1 = phys.read64(pte1Addr);
    Addr level0;
    if (!paging::pteIsValid(pte1)) {
        level0 = frames.allocFrames(paging::tableBytes / paging::pageSize);
        phys.clearRange(level0, paging::tableBytes);
        phys.write64(pte1Addr, paging::makePte(level0));
    } else {
        level0 = paging::pteFrame(pte1);
    }
    phys.write64(level0 + paging::vpn0(vaddr) * 8, paging::makePte(paddr));
}

Addr
AddressSpace::allocRegion(Addr vaddr, Addr bytes)
{
    const Addr pages = paging::roundUpPage(bytes) / paging::pageSize;
    const Addr base = frames.allocFrames(pages);
    for (Addr i = 0; i < pages; ++i) {
        mapPage(vaddr + i * paging::pageSize,
                base + i * paging::pageSize);
    }
    phys.clearRange(base, pages * paging::pageSize);
    return base;
}

void
AddressSpace::mapShared(Addr vaddr, Addr paddr, Addr bytes)
{
    const Addr pages = paging::roundUpPage(bytes) / paging::pageSize;
    for (Addr i = 0; i < pages; ++i) {
        mapPage(vaddr + i * paging::pageSize,
                paddr + i * paging::pageSize);
    }
}

Addr
AddressSpace::translate(Addr vaddr) const
{
    const uint64_t pte1 =
        phys.read64(rootTable + paging::vpn1(vaddr) * 8);
    svb_assert(paging::pteIsValid(pte1), "unmapped vaddr ", vaddr,
               " (level 1)");
    const uint64_t pte0 = phys.read64(paging::pteFrame(pte1) +
                                      paging::vpn0(vaddr) * 8);
    svb_assert(paging::pteIsValid(pte0), "unmapped vaddr ", vaddr,
               " (level 0)");
    return paging::pteFrame(pte0) | paging::pageOffset(vaddr);
}

bool
AddressSpace::isMapped(Addr vaddr) const
{
    const uint64_t pte1 =
        phys.read64(rootTable + paging::vpn1(vaddr) * 8);
    if (!paging::pteIsValid(pte1))
        return false;
    const uint64_t pte0 = phys.read64(paging::pteFrame(pte1) +
                                      paging::vpn0(vaddr) * 8);
    return paging::pteIsValid(pte0);
}

uint64_t
AddressSpace::read(Addr vaddr, unsigned len) const
{
    return phys.read(translate(vaddr), len);
}

void
AddressSpace::write(Addr vaddr, uint64_t value, unsigned len)
{
    phys.write(translate(vaddr), value, len);
}

void
AddressSpace::writeBytes(Addr vaddr, const void *src, size_t len)
{
    // Page-by-page: virtual contiguity does not imply physical.
    const auto *p = static_cast<const uint8_t *>(src);
    while (len > 0) {
        const size_t in_page =
            std::min<size_t>(len, paging::pageSize -
                                      paging::pageOffset(vaddr));
        phys.writeBytes(translate(vaddr), p, in_page);
        vaddr += in_page;
        p += in_page;
        len -= in_page;
    }
}

void
AddressSpace::readBytes(Addr vaddr, void *dst, size_t len) const
{
    auto *p = static_cast<uint8_t *>(dst);
    while (len > 0) {
        const size_t in_page =
            std::min<size_t>(len, paging::pageSize -
                                      paging::pageOffset(vaddr));
        phys.readBytes(translate(vaddr), p, in_page);
        vaddr += in_page;
        p += in_page;
        len -= in_page;
    }
}

} // namespace svb
