/**
 * @file
 * Guest process model.
 */

#ifndef SVB_GUEST_PROCESS_HH
#define SVB_GUEST_PROCESS_HH

#include <memory>
#include <string>

#include "address_space.hh"
#include "cpu/hw_context.hh"

namespace svb
{

/** Lifecycle states of a guest process. */
enum class ProcState
{
    Ready,   ///< runnable, waiting for its core
    Running, ///< currently on a core
    Exited,  ///< finished
};

/**
 * One guest process: an address space plus a saved hardware context.
 */
struct Process
{
    int pid = -1;
    std::string name;
    int core = 0;                    ///< core this process is pinned to
    ProcState state = ProcState::Ready;
    std::unique_ptr<AddressSpace> space;
    HwContext saved;                 ///< context while not running
};

} // namespace svb

#endif // SVB_GUEST_PROCESS_HH
