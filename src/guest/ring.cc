#include "ring.hh"

#include "sim/logging.hh"

namespace svb::ring
{

uint64_t
pending(const PhysMemory &mem, const Ring &ring)
{
    const uint64_t head = mem.read64(ring.phys + 0);
    const uint64_t tail = mem.read64(ring.phys + 8);
    return tail - head;
}

bool
tryPush(PhysMemory &mem, const Ring &ring, const void *payload,
        uint64_t len)
{
    svb_assert(len <= maxPayload, "ring payload too large: ", len);
    const uint64_t head = mem.read64(ring.phys + 0);
    const uint64_t tail = mem.read64(ring.phys + 8);
    if (tail - head >= ring.numSlots)
        return false;
    const Addr slot = ring.phys + headerBytes +
                      Addr(tail % ring.numSlots) * slotSize;
    mem.write64(slot, len);
    mem.writeBytes(slot + 8, payload, len);
    mem.write64(ring.phys + 8, tail + 1);
    return true;
}

bool
tryPop(PhysMemory &mem, const Ring &ring, std::vector<uint8_t> &payload_out)
{
    const uint64_t head = mem.read64(ring.phys + 0);
    const uint64_t tail = mem.read64(ring.phys + 8);
    if (head == tail)
        return false;
    const Addr slot = ring.phys + headerBytes +
                      Addr(head % ring.numSlots) * slotSize;
    const uint64_t len = mem.read64(slot);
    svb_assert(len <= maxPayload, "corrupt ring slot length ", len);
    payload_out.resize(len);
    mem.readBytes(slot + 8, payload_out.data(), len);
    mem.write64(ring.phys + 0, head + 1);
    return true;
}

} // namespace svb::ring
