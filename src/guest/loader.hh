/**
 * @file
 * Program image layout and the process loader.
 */

#ifndef SVB_GUEST_LOADER_HH
#define SVB_GUEST_LOADER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernel.hh"

namespace svb
{

/** Standard virtual-memory layout of every guest process. */
namespace layout
{
constexpr Addr codeBase = 0x00010000;
constexpr Addr dataBase = 0x10000000;
constexpr Addr heapBase = 0x20000000;
constexpr Addr stackTop = 0x30000000;
constexpr Addr sharedBase = 0x70000000; ///< shared rings region
} // namespace layout

/**
 * A linked guest program ready to load: machine code, initialised
 * data, a zeroed heap request and the entry offset.
 */
struct LoadableImage
{
    std::vector<uint8_t> code;
    std::vector<uint8_t> rodata;
    Addr heapBytes = 64 * 1024;
    Addr entryOffset = 0;
    Addr stackBytes = 64 * 1024;
    /** (function name, code offset) pairs, in layout order. */
    std::vector<std::pair<std::string, Addr>> symbols;

    /** @return the symbol covering code offset @p off, or "?". */
    std::string symbolAt(Addr off) const;
};

/** Result of loading an image into a new process. */
struct LoadedProgram
{
    int pid = -1;
    Addr entry = 0;
    Addr stackTop = 0;
};

/**
 * Create a process from @p image, pinned to @p core, and mark it
 * runnable.
 */
LoadedProgram loadProcess(GuestKernel &kernel, const LoadableImage &image,
                          const std::string &name, int core);

/**
 * Map a shared physical range into an existing process at the given
 * virtual address (used for the RPC rings).
 */
void mapSharedInto(GuestKernel &kernel, int pid, Addr vaddr, Addr paddr,
                   Addr bytes);

} // namespace svb

#endif // SVB_GUEST_LOADER_HH
