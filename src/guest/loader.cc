#include "loader.hh"

#include "sim/logging.hh"

namespace svb
{

std::string
LoadableImage::symbolAt(Addr off) const
{
    std::string best = "?";
    for (const auto &[name, sym_off] : symbols) {
        if (sym_off <= off)
            best = name;
        else
            break;
    }
    return best;
}


LoadedProgram
loadProcess(GuestKernel &kernel, const LoadableImage &image,
            const std::string &name, int core)
{
    Process &proc = kernel.createProcess(name, core);
    AddressSpace &as = *proc.space;

    svb_assert(!image.code.empty(), "loading empty image '", name, "'");

    as.allocRegion(layout::codeBase, image.code.size());
    as.writeBytes(layout::codeBase, image.code.data(), image.code.size());

    if (!image.rodata.empty()) {
        as.allocRegion(layout::dataBase, image.rodata.size());
        as.writeBytes(layout::dataBase, image.rodata.data(),
                      image.rodata.size());
    }

    if (image.heapBytes > 0)
        as.allocRegion(layout::heapBase, image.heapBytes);

    as.allocRegion(layout::stackTop - image.stackBytes, image.stackBytes);

    LoadedProgram out;
    out.pid = proc.pid;
    out.entry = layout::codeBase + image.entryOffset;
    out.stackTop = layout::stackTop - 64; // small red zone
    kernel.startProcess(proc.pid, out.entry, out.stackTop);
    return out;
}

void
mapSharedInto(GuestKernel &kernel, int pid, Addr vaddr, Addr paddr,
              Addr bytes)
{
    kernel.process(pid).space->mapShared(vaddr, paddr, bytes);
}

} // namespace svb
