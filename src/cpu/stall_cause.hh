/**
 * @file
 * The O3 per-cycle stall-cause taxonomy.
 *
 * Every non-halted cycle of the detailed core is attributed to
 * exactly ONE cause, so the cause vector always sums to numCycles —
 * the invariant the observability tests assert on every measured
 * request. Attribution is commit-centric with explicit backend
 * pressure: a cycle that retires work is Retiring; otherwise the
 * cause is why the pipeline made no forward progress, checked in this
 * priority order:
 *
 *   Trap          commit is serialised behind a syscall/halt cost
 *   FetchStarved  ROB empty, nothing in flight in the frontend
 *                 (I-cache/ITLB stall, redirect shadow, halted fetch)
 *   Decode        ROB empty, instructions in the frontend-delay pipe
 *   RobFull       rename blocked: no ROB entry for the next macro-op
 *   IqFull        rename blocked: no issue-queue entry
 *   LsqFull       rename blocked: no LQ/SQ entry
 *   RenameBlocked rename blocked: free list out of physical registers
 *   Memory        ROB head is an unfinished load/store
 *   IssueWait     ROB head waits for operands, a unit, or exec latency
 */

#ifndef SVB_CPU_STALL_CAUSE_HH
#define SVB_CPU_STALL_CAUSE_HH

namespace svb
{

enum class StallCause : unsigned
{
    Retiring = 0,
    Trap,
    FetchStarved,
    Decode,
    RobFull,
    IqFull,
    LsqFull,
    RenameBlocked,
    Memory,
    IssueWait,
};

constexpr unsigned numStallCauses = 10;

/** Stable stat/CSV field name of @p cause ("retiring", "robFull"...). */
inline const char *
stallCauseName(unsigned cause)
{
    static const char *names[numStallCauses] = {
        "retiring",   "trap",    "fetchStarved",  "decode", "robFull",
        "iqFull",     "lsqFull", "renameBlocked", "memory", "issueWait",
    };
    return cause < numStallCauses ? names[cause] : "?";
}

} // namespace svb

#endif // SVB_CPU_STALL_CAUSE_HH
