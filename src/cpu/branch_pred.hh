/**
 * @file
 * Front-end branch prediction: gshare direction predictor, a
 * direct-mapped BTB for indirect targets, and a return-address stack.
 */

#ifndef SVB_CPU_BRANCH_PRED_HH
#define SVB_CPU_BRANCH_PRED_HH

#include <vector>

#include "isa/static_inst.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace svb
{

/** Direction-predictor organisations (design-space axis). */
enum class BpKind
{
    Bimodal,    ///< per-pc 2-bit counters, no history
    GShare,     ///< pc xor global history
    Tournament, ///< bimodal + gshare + chooser (Alpha 21264 style)
};

/** Branch predictor geometry. */
struct BranchPredParams
{
    BpKind kind = BpKind::GShare;
    uint32_t tableEntries = 4096; ///< 2-bit counters per component
    uint32_t btbEntries = 4096;
    uint32_t rasEntries = 16;
    uint32_t historyBits = 12;
};

/** @return printable name of a predictor kind. */
const char *bpKindName(BpKind kind);

/** The front-end's prediction for one control instruction. */
struct BranchPrediction
{
    bool taken = false;
    Addr nextPc = 0; ///< predicted pc of the next instruction
};

/**
 * Combined direction/target predictor.
 */
class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredParams &params, StatGroup &stats);

    /**
     * Predict the next pc after a control instruction.
     *
     * @param pc       pc of the control instruction
     * @param inst     decoded instruction (supplies direct target)
     * @param fall_through pc + inst.length
     */
    BranchPrediction predict(Addr pc, const StaticInst &inst,
                             Addr fall_through);

    /**
     * Train the predictor with the committed outcome.
     *
     * @param pc     pc of the control instruction
     * @param inst   decoded instruction
     * @param taken  actual direction
     * @param target actual next pc when taken
     */
    void update(Addr pc, const StaticInst &inst, bool taken, Addr target);

    /** Clear all prediction state (cold start / context switch). */
    void reset();

    /**
     * @return true when every table is in its reset() state. Used by
     * checkpointing: setup mode runs the Atomic CPU, which never
     * trains the predictor, so settle-point snapshots can record "BP
     * is cold" instead of geometry-specific zero tables — keeping a
     * snapshot shareable across BP-geometry ablation points.
     */
    bool isReset() const;

    /** Serialize trained state (tables, BTB, RAS, history). */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Restore state saved on a predictor of identical geometry. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

  private:
    size_t bimodalIndex(Addr pc) const;
    size_t gshareIndex(Addr pc) const;
    size_t btbIndex(Addr pc) const { return (pc >> 1) & (p.btbEntries - 1); }
    bool directionOf(Addr pc) const;

    BranchPredParams p;
    std::vector<uint8_t> bimodal;  ///< 2-bit saturating, pc-indexed
    std::vector<uint8_t> gshare;   ///< 2-bit saturating, history-hashed
    std::vector<uint8_t> chooser;  ///< 2-bit: >=2 prefers gshare
    struct BtbEntry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;
    size_t rasTop = 0;
    uint64_t history = 0;

    Scalar &statLookups;
    Scalar &statBtbMisses;
    Scalar &statRasPushes;
    Scalar &statRasPops;
};

} // namespace svb

#endif // SVB_CPU_BRANCH_PRED_HH
