/**
 * @file
 * Atomic (functional) CPU model.
 *
 * One macro instruction per cycle, instantaneous memory. Used for
 * system boot, functional cache warming between the measured requests
 * (vSwarm-u "setup mode"), and QEMU-style emulation studies.
 *
 * Two execution engines share the architectural semantics:
 *  - tick(): the per-instruction oracle (fetch, translate, decode
 *    cache lookup, uop interpretation) — one cycle per call.
 *  - runFast()/tickFast(): the superblock fast path, a
 *    threaded-dispatch interpreter over pre-lowered uop arrays
 *    (cpu/superblock.hh) that caches the instruction-page translation
 *    and batches statistic updates. Architectural state, warming
 *    traffic, TLB/trap behavior and every StatGroup value stay
 *    byte-identical to tick(); only host speed differs.
 */

#ifndef SVB_CPU_ATOMIC_CPU_HH
#define SVB_CPU_ATOMIC_CPU_HH

#include <array>
#include <functional>

#include "base_cpu.hh"

namespace svb
{

class SuperblockCache;
struct Superblock;

/**
 * The AtomicSimpleCPU-equivalent model.
 */
class AtomicCpu : public BaseCpu
{
  public:
    AtomicCpu(int core_id, IsaId isa, PhysMemory &phys, CoreMemSystem &mem,
              DecodeCache &decoder, TrapHandler &trap, StatGroup &stats,
              SuperblockCache *sblocks = nullptr);

    void tick() override;

    /**
     * One cycle through the superblock engine. Byte-identical to
     * tick(); statistics are flushed before returning, so callers may
     * interleave it freely with tick() and with other cores.
     */
    void tickFast();

    /**
     * Invoked just before a trap handler runs inside a chained batch,
     * with the number of cycles consumed so far (including the
     * trapping one). The system uses it to bring the global cycle and
     * the other cores' idle statistics up to date, because trap
     * handlers can observe both (m5 stat dumps, work-begin/end marks).
     */
    using PreTrap = std::function<void(uint64_t batch_cycles)>;

    /**
     * Chained superblock execution: run up to @p budget cycles without
     * returning to the event loop, ending early at any trap (syscall /
     * halt, after whose handler the caller must re-evaluate scheduling
     * and events) or when the core is halted. Nothing executed here
     * schedules events, so the caller bounds @p budget by the next
     * pending event tick.
     *
     * @return cycles consumed (>= 1 when budget >= 1)
     */
    uint64_t runFast(uint64_t budget, const PreTrap *pre_trap);

    /** When false, skip cache/TLB warming entirely (fast boot). */
    void setWarmingEnabled(bool enabled) { warming = enabled; }

    uint64_t instCount() const { return statInsts.value(); }
    uint64_t cycleCount() const { return statCycles.value(); }

    /** Dump the recent pc history (fault diagnostics). */
    void dumpHistory() const;

    /** Trap-cost cycles still to burn — checkpointed so a restored run
     *  resumes mid-stall exactly like the uninterrupted one. */
    Cycles stallCycles() const { return pendingStall; }
    void setStallCycles(Cycles c) { pendingStall = c; }

    /** Import state and drop the superblock cursor (the cached
     *  instruction-page translation is no longer valid). */
    void
    setContext(const HwContext &new_ctx) override
    {
        BaseCpu::setContext(new_ctx);
        resetFastPath();
    }

    /**
     * Invalidate the superblock cursor. Must be called whenever the
     * iTLB is flushed behind the engine's back (microarch flush): the
     * fast path credits guaranteed same-page hits mid-block, which is
     * only equivalent to per-instruction translation while the
     * block-entry fill is still resident.
     */
    void
    resetFastPath()
    {
        curBlock = nullptr;
        curInst = 0;
        curFrame = 0;
        curVpage = 0;
    }

    /** Credit @p n halted cycles (batched idle accounting while
     *  another core runs a chained batch). */
    void addIdleCycles(uint64_t n) { statIdleCycles += n; }

  private:
    void recordPc(Addr pc);

    SuperblockCache *sblocks;

    bool warming = true;
    Cycles pendingStall = 0; ///< trap-cost cycles still to burn
    std::array<Addr, 64> pcHistory{};
    size_t pcHistoryPos = 0;  ///< next slot to write (oldest entry)
    bool pcHistoryFull = false;

    // Superblock cursor: position of the next instruction inside the
    // current block, valid across calls until a control transfer, a
    // trap, a block end, or a context import.
    const Superblock *curBlock = nullptr;
    uint32_t curInst = 0;
    Addr curFrame = 0; ///< physical page base of the block's code page
    Addr curVpage = 0; ///< virtual page base backing the cursor

    Scalar &statCycles;
    Scalar &statInsts;
    Scalar &statUops;
    Scalar &statBranches;
    Scalar &statLoads;
    Scalar &statStores;
    Scalar &statIdleCycles;
};

} // namespace svb

#endif // SVB_CPU_ATOMIC_CPU_HH
