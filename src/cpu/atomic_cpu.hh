/**
 * @file
 * Atomic (functional) CPU model.
 *
 * One macro instruction per cycle, instantaneous memory. Used for
 * system boot, functional cache warming between the measured requests
 * (vSwarm-u "setup mode"), and QEMU-style emulation studies.
 */

#ifndef SVB_CPU_ATOMIC_CPU_HH
#define SVB_CPU_ATOMIC_CPU_HH

#include <array>

#include "base_cpu.hh"

namespace svb
{

/**
 * The AtomicSimpleCPU-equivalent model.
 */
class AtomicCpu : public BaseCpu
{
  public:
    AtomicCpu(int core_id, IsaId isa, PhysMemory &phys, CoreMemSystem &mem,
              DecodeCache &decoder, TrapHandler &trap, StatGroup &stats);

    void tick() override;

    /** When false, skip cache/TLB warming entirely (fast boot). */
    void setWarmingEnabled(bool enabled) { warming = enabled; }

    uint64_t instCount() const { return statInsts.value(); }
    uint64_t cycleCount() const { return statCycles.value(); }

    /** Dump the recent pc history (fault diagnostics). */
    void dumpHistory() const;

    /** Trap-cost cycles still to burn — checkpointed so a restored run
     *  resumes mid-stall exactly like the uninterrupted one. */
    Cycles stallCycles() const { return pendingStall; }
    void setStallCycles(Cycles c) { pendingStall = c; }

  private:
    bool warming = true;
    Cycles pendingStall = 0; ///< trap-cost cycles still to burn
    std::array<Addr, 64> pcHistory{};
    size_t pcHistoryPos = 0;

    Scalar &statCycles;
    Scalar &statInsts;
    Scalar &statUops;
    Scalar &statBranches;
    Scalar &statLoads;
    Scalar &statStores;
    Scalar &statIdleCycles;
};

} // namespace svb

#endif // SVB_CPU_ATOMIC_CPU_HH
