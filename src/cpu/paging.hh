/**
 * @file
 * Guest page-table format.
 *
 * Both ISAs use the same two-level layout (an Sv39/x86-64-lite):
 * 4 KiB pages, 10-bit level-1 and level-0 indices, 4 GiB virtual
 * space. Each table is 1024 entries of 8 bytes. Entries hold a valid
 * bit and a 4 KiB-aligned frame address.
 */

#ifndef SVB_CPU_PAGING_HH
#define SVB_CPU_PAGING_HH

#include "sim/types.hh"

namespace svb::paging
{

constexpr unsigned pageBits = 12;
constexpr Addr pageSize = 1u << pageBits;
constexpr unsigned levelBits = 10;
constexpr unsigned entriesPerTable = 1u << levelBits;
constexpr Addr tableBytes = entriesPerTable * 8;

constexpr uint64_t pteValid = 1;

inline Addr vpn1(Addr va) { return (va >> 22) & 0x3ff; }
inline Addr vpn0(Addr va) { return (va >> 12) & 0x3ff; }
inline Addr pageOffset(Addr va) { return va & (pageSize - 1); }
inline Addr pageBase(Addr va) { return va & ~(pageSize - 1); }

inline bool pteIsValid(uint64_t pte) { return pte & pteValid; }
inline Addr pteFrame(uint64_t pte) { return pte & ~Addr(pageSize - 1); }
inline uint64_t makePte(Addr frame) { return frame | pteValid; }

/** Round @p bytes up to whole pages. */
inline Addr
roundUpPage(Addr bytes)
{
    return (bytes + pageSize - 1) & ~Addr(pageSize - 1);
}

} // namespace svb::paging

#endif // SVB_CPU_PAGING_HH
