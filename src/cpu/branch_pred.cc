#include "branch_pred.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace svb
{

const char *
bpKindName(BpKind kind)
{
    switch (kind) {
      case BpKind::Bimodal: return "bimodal";
      case BpKind::GShare: return "gshare";
      case BpKind::Tournament: return "tournament";
    }
    return "?";
}

BranchPredictor::BranchPredictor(const BranchPredParams &params,
                                 StatGroup &stats)
    : p(params), bimodal(params.tableEntries, 1),
      gshare(params.tableEntries, 1), chooser(params.tableEntries, 2),
      btb(params.btbEntries), ras(params.rasEntries, 0),
      statLookups(stats.childGroup("bp").addScalar("lookups",
                                                   "prediction lookups")),
      statBtbMisses(stats.childGroup("bp").addScalar(
          "btbMisses", "indirect targets not in the BTB")),
      statRasPushes(
          stats.childGroup("bp").addScalar("rasPushes", "RAS pushes")),
      statRasPops(stats.childGroup("bp").addScalar("rasPops", "RAS pops"))
{
    svb_assert((p.tableEntries & (p.tableEntries - 1)) == 0 &&
               (p.btbEntries & (p.btbEntries - 1)) == 0,
               "predictor tables must be powers of two");
}

size_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return size_t((pc >> 1) & (p.tableEntries - 1));
}

size_t
BranchPredictor::gshareIndex(Addr pc) const
{
    const uint64_t mask = (uint64_t(1) << p.historyBits) - 1;
    return size_t(((pc >> 1) ^ (history & mask)) & (p.tableEntries - 1));
}

bool
BranchPredictor::directionOf(Addr pc) const
{
    const bool bi = bimodal[bimodalIndex(pc)] >= 2;
    const bool gs = gshare[gshareIndex(pc)] >= 2;
    switch (p.kind) {
      case BpKind::Bimodal: return bi;
      case BpKind::GShare: return gs;
      case BpKind::Tournament:
        return chooser[bimodalIndex(pc)] >= 2 ? gs : bi;
    }
    return gs;
}

BranchPrediction
BranchPredictor::predict(Addr pc, const StaticInst &inst, Addr fall_through)
{
    ++statLookups;
    BranchPrediction pred;

    if (inst.isReturn) {
        ++statRasPops;
        pred.taken = true;
        pred.nextPc = ras[(rasTop + p.rasEntries - 1) % p.rasEntries];
        rasTop = (rasTop + p.rasEntries - 1) % p.rasEntries;
        if (pred.nextPc == 0) {
            // Empty RAS: fall back on the BTB.
            const BtbEntry &e = btb[btbIndex(pc)];
            pred.nextPc = (e.valid && e.tag == pc) ? e.target : fall_through;
        }
        return pred;
    }

    if (inst.isCall) {
        ++statRasPushes;
        ras[rasTop] = fall_through;
        rasTop = (rasTop + 1) % p.rasEntries;
    }

    if (!inst.isCondCtrl) {
        // Unconditional: direction is known, only the target can miss.
        pred.taken = true;
        if (inst.isDirectCtrl) {
            pred.nextPc = inst.directTarget(pc);
        } else {
            const BtbEntry &e = btb[btbIndex(pc)];
            if (e.valid && e.tag == pc) {
                pred.nextPc = e.target;
            } else {
                ++statBtbMisses;
                pred.nextPc = fall_through; // will mispredict
            }
        }
        return pred;
    }

    // Conditional: component-selected direction, decode-supplied target.
    pred.taken = directionOf(pc);
    pred.nextPc = pred.taken ? inst.directTarget(pc) : fall_through;
    return pred;
}

void
BranchPredictor::update(Addr pc, const StaticInst &inst, bool taken,
                        Addr target)
{
    if (inst.isCondCtrl) {
        const bool bi_correct = (bimodal[bimodalIndex(pc)] >= 2) == taken;
        const bool gs_correct = (gshare[gshareIndex(pc)] >= 2) == taken;
        auto bump = [taken](uint8_t &ctr) {
            if (taken && ctr < 3)
                ++ctr;
            else if (!taken && ctr > 0)
                --ctr;
        };
        bump(bimodal[bimodalIndex(pc)]);
        bump(gshare[gshareIndex(pc)]);
        // The chooser learns which component was right when they differ.
        if (p.kind == BpKind::Tournament && bi_correct != gs_correct) {
            uint8_t &ch = chooser[bimodalIndex(pc)];
            if (gs_correct && ch < 3)
                ++ch;
            else if (bi_correct && ch > 0)
                --ch;
        }
        history = (history << 1) | (taken ? 1 : 0);
    }
    if (taken && (!inst.isDirectCtrl || inst.isReturn)) {
        BtbEntry &e = btb[btbIndex(pc)];
        e.tag = pc;
        e.target = target;
        e.valid = true;
    }
}

bool
BranchPredictor::isReset() const
{
    auto all = [](const std::vector<uint8_t> &v, uint8_t x) {
        return std::all_of(v.begin(), v.end(),
                           [x](uint8_t c) { return c == x; });
    };
    if (!all(bimodal, 1) || !all(gshare, 1) || !all(chooser, 2))
        return false;
    for (const auto &e : btb)
        if (e.valid)
            return false;
    for (Addr a : ras)
        if (a != 0)
            return false;
    return rasTop == 0 && history == 0;
}

void
BranchPredictor::serializeState(const std::string &prefix,
                                Checkpoint &cp) const
{
    cp.setScalar(prefix + "tableEntries", p.tableEntries);
    cp.setScalar(prefix + "btbEntries", p.btbEntries);
    cp.setScalar(prefix + "rasEntries", p.rasEntries);
    cp.setScalar(prefix + "rasTop", rasTop);
    cp.setScalar(prefix + "history", history);
    BlobWriter w;
    for (uint8_t c : bimodal)
        w.putU8(c);
    for (uint8_t c : gshare)
        w.putU8(c);
    for (uint8_t c : chooser)
        w.putU8(c);
    for (const BtbEntry &e : btb) {
        w.putU64(e.tag);
        w.putU64(e.target);
        w.putU8(e.valid ? 1 : 0);
    }
    for (Addr a : ras)
        w.putU64(a);
    cp.setBlob(prefix + "state", w.take());
}

void
BranchPredictor::unserializeState(const std::string &prefix,
                                  const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "tableEntries") == p.tableEntries &&
                   cp.getScalar(prefix + "btbEntries") == p.btbEntries &&
                   cp.getScalar(prefix + "rasEntries") == p.rasEntries,
               "checkpoint branch-predictor geometry mismatch");
    rasTop = size_t(cp.getScalar(prefix + "rasTop"));
    history = cp.getScalar(prefix + "history");
    BlobReader r(cp.getBlob(prefix + "state"));
    for (uint8_t &c : bimodal)
        c = r.getU8();
    for (uint8_t &c : gshare)
        c = r.getU8();
    for (uint8_t &c : chooser)
        c = r.getU8();
    for (BtbEntry &e : btb) {
        e.tag = r.getU64();
        e.target = r.getU64();
        e.valid = r.getU8() != 0;
    }
    for (Addr &a : ras)
        a = r.getU64();
    svb_assert(r.done(), "checkpoint branch-predictor blob has trailing bytes");
}

void
BranchPredictor::reset()
{
    std::fill(bimodal.begin(), bimodal.end(), 1);
    std::fill(gshare.begin(), gshare.end(), 1);
    std::fill(chooser.begin(), chooser.end(), 2);
    for (auto &e : btb)
        e.valid = false;
    std::fill(ras.begin(), ras.end(), 0);
    rasTop = 0;
    history = 0;
}

} // namespace svb
