#include "atomic_cpu.hh"

#include <sstream>

#include "sim/logging.hh"

namespace svb
{

AtomicCpu::AtomicCpu(int core_id, IsaId isa_id, PhysMemory &phys_mem,
                     CoreMemSystem &mem_sys, DecodeCache &decode,
                     TrapHandler &trap_handler, StatGroup &stats)
    : BaseCpu(core_id, isa_id, phys_mem, mem_sys, decode, trap_handler,
              stats, "atomic"),
      statCycles(group.addScalar("numCycles", "cycles simulated")),
      statInsts(group.addScalar("numInsts", "macro instructions executed")),
      statUops(group.addScalar("numUops", "micro-ops executed")),
      statBranches(group.addScalar("numBranches", "control instructions")),
      statLoads(group.addScalar("numLoads", "load micro-ops")),
      statStores(group.addScalar("numStores", "store micro-ops")),
      statIdleCycles(group.addScalar("idleCycles", "cycles halted"))
{
    group.addFormula("cpi", "cycles per instruction", [this]() {
        return statInsts.value()
                   ? double(statCycles.value()) / double(statInsts.value())
                   : 0.0;
    });
}

void
AtomicCpu::dumpHistory() const
{
    std::ostringstream os;
    os << "recent pcs (core " << coreId << "):";
    for (size_t i = 0; i < pcHistory.size(); ++i) {
        const size_t idx = (pcHistoryPos + i) % pcHistory.size();
        os << " " << pcHistory[idx];
    }
    os << " | regs:";
    for (unsigned r = 0; r < 32; ++r)
        os << " r" << r << "=" << ctx.regs[r];
    warn(os.str());
}

void
AtomicCpu::tick()
{
    if (ctx.halted) {
        ++statIdleCycles;
        return;
    }
    ++statCycles;
    if (pendingStall > 0) {
        --pendingStall;
        return;
    }

    // --- Fetch & decode ---------------------------------------------------
    TranslateResult itr =
        itlbUnit.translate(ctx.pc, ctx.ptRoot, phys, nullptr, 0);
    svb_assert(!itr.fault, "instruction page fault at pc=", ctx.pc,
               " core=", coreId);
    pcHistory[pcHistoryPos++ % pcHistory.size()] = ctx.pc;
    const StaticInst &inst = decoder.decodeAt(itr.paddr);
    if (!inst.valid) {
        dumpHistory();
        svb_panic("illegal instruction at pc=", ctx.pc, " (",
                  isaDesc.name, ")");
    }
    if (warming)
        mem.warmFetch(itr.paddr, inst.length);

    ++statInsts;
    if (traceSink)
        traceSink(ctx.pc, inst);
    const Addr next_pc = ctx.pc + inst.length;
    Addr redirect = 0;
    bool redirected = false;

    auto reg = [this](uint8_t r) -> uint64_t {
        return r == invalidReg ? 0 : ctx.regs[r];
    };

    for (unsigned i = 0; i < inst.numUops; ++i) {
        const MicroOp &uop = inst.uops[i];
        ++statUops;

        if (uop.isMem()) {
            const Addr vaddr = memEffAddr(uop, reg(uop.rs1));
            TranslateResult dtr =
                dtlbUnit.translate(vaddr, ctx.ptRoot, phys, nullptr, 0);
            if (dtr.fault) {
                dumpHistory();
                svb_panic("data page fault at vaddr=", vaddr,
                          " pc=", ctx.pc, " core=", coreId, " proc=",
                          ctx.processId);
            }
            if (uop.isLoad()) {
                ++statLoads;
                if (warming)
                    mem.warmData(dtr.paddr, uop.memSize, false);
                const uint64_t raw = phys.read(dtr.paddr, uop.memSize);
                if (uop.rd != invalidReg) {
                    ctx.regs[uop.rd] =
                        loadExtend(raw, uop.memSize, uop.memSigned);
                }
            } else {
                ++statStores;
                if (warming)
                    mem.warmData(dtr.paddr, uop.memSize, true);
                phys.write(dtr.paddr, reg(uop.rs2), uop.memSize);
            }
        } else if (uop.isControl()) {
            ++statBranches;
            BranchEval ev =
                branchEval(uop, reg(uop.rs1), reg(uop.rs2), ctx.pc);
            if (uop.rd != invalidReg)
                ctx.regs[uop.rd] = next_pc; // link register
            if (ev.taken) {
                redirected = true;
                redirect = ev.target;
            }
        } else if (uop.isSyscall()) {
            ctx.pc = next_pc;
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleSyscall(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return;
        } else if (uop.isHalt()) {
            ctx.pc = next_pc;
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleHalt(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return;
        } else if (uop.op == UopOp::Nop) {
            // nothing
        } else {
            const uint64_t value =
                aluCompute(uop, reg(uop.rs1), reg(uop.rs2), ctx.pc);
            if (uop.rd != invalidReg)
                ctx.regs[uop.rd] = value;
        }
    }

    ctx.pc = redirected ? redirect : next_pc;
}

} // namespace svb
