#include "atomic_cpu.hh"

#include <algorithm>
#include <sstream>

#include "paging.hh"
#include "sim/logging.hh"
#include "superblock.hh"

// Threaded dispatch via computed goto (GCC/Clang extension). Define
// SVB_NO_COMPUTED_GOTO to force the portable switch fallback; CI's
// UBSan job does, so both engines stay exercised.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SVB_NO_COMPUTED_GOTO)
#define SVB_THREADED_DISPATCH 1
#else
#define SVB_THREADED_DISPATCH 0
#endif

namespace svb
{

AtomicCpu::AtomicCpu(int core_id, IsaId isa_id, PhysMemory &phys_mem,
                     CoreMemSystem &mem_sys, DecodeCache &decode,
                     TrapHandler &trap_handler, StatGroup &stats,
                     SuperblockCache *sblocks)
    : BaseCpu(core_id, isa_id, phys_mem, mem_sys, decode, trap_handler,
              stats, "atomic"),
      sblocks(sblocks),
      statCycles(group.addScalar("numCycles", "cycles simulated")),
      statInsts(group.addScalar("numInsts", "macro instructions executed")),
      statUops(group.addScalar("numUops", "micro-ops executed")),
      statBranches(group.addScalar("numBranches", "control instructions")),
      statLoads(group.addScalar("numLoads", "load micro-ops")),
      statStores(group.addScalar("numStores", "store micro-ops")),
      statIdleCycles(group.addScalar("idleCycles", "cycles halted"))
{
    group.addFormula("cpi", "cycles per instruction", [this]() {
        return statInsts.value()
                   ? double(statCycles.value()) / double(statInsts.value())
                   : 0.0;
    });
}

void
AtomicCpu::recordPc(Addr pc)
{
    pcHistory[pcHistoryPos] = pc;
    if (++pcHistoryPos == pcHistory.size()) {
        pcHistoryPos = 0;
        pcHistoryFull = true;
    }
}

void
AtomicCpu::dumpHistory() const
{
    // pcHistoryPos is the next slot to overwrite, i.e. the oldest
    // entry once the ring has wrapped; before that, valid entries
    // start at slot 0.
    const size_t count = pcHistoryFull ? pcHistory.size() : pcHistoryPos;
    const size_t start = pcHistoryFull ? pcHistoryPos : 0;
    std::ostringstream os;
    os << "recent pcs (core " << coreId << ", oldest first):";
    for (size_t i = 0; i < count; ++i) {
        const size_t idx = (start + i) % pcHistory.size();
        os << " " << pcHistory[idx];
    }
    os << " | regs:";
    for (unsigned r = 0; r < 32; ++r)
        os << " r" << r << "=" << ctx.regs[r];
    warn(os.str());
}

void
AtomicCpu::tick()
{
    if (ctx.halted) {
        ++statIdleCycles;
        return;
    }
    ++statCycles;
    if (pendingStall > 0) {
        --pendingStall;
        return;
    }

    // --- Fetch & decode ---------------------------------------------------
    TranslateResult itr =
        itlbUnit.translate(ctx.pc, ctx.ptRoot, phys, nullptr, 0);
    svb_assert(!itr.fault, "instruction page fault at pc=", ctx.pc,
               " core=", coreId);
    recordPc(ctx.pc);
    const StaticInst &inst = decoder.decodeAt(itr.paddr);
    if (!inst.valid) {
        dumpHistory();
        svb_panic("illegal instruction at pc=", ctx.pc, " (",
                  isaDesc.name, ")");
    }
    if (warming)
        mem.warmFetch(itr.paddr, inst.length);

    ++statInsts;
    if (traceSink)
        traceSink(ctx.pc, inst);
    const Addr next_pc = ctx.pc + inst.length;
    Addr redirect = 0;
    bool redirected = false;

    auto reg = [this](uint8_t r) -> uint64_t {
        return r == invalidReg ? 0 : ctx.regs[r];
    };

    for (unsigned i = 0; i < inst.numUops; ++i) {
        const MicroOp &uop = inst.uops[i];
        ++statUops;

        if (uop.isMem()) {
            const Addr vaddr = memEffAddr(uop, reg(uop.rs1));
            TranslateResult dtr =
                dtlbUnit.translate(vaddr, ctx.ptRoot, phys, nullptr, 0);
            if (dtr.fault) {
                dumpHistory();
                svb_panic("data page fault at vaddr=", vaddr,
                          " pc=", ctx.pc, " core=", coreId, " proc=",
                          ctx.processId);
            }
            if (uop.isLoad()) {
                ++statLoads;
                if (warming)
                    mem.warmData(dtr.paddr, uop.memSize, false);
                const uint64_t raw = phys.read(dtr.paddr, uop.memSize);
                if (uop.rd != invalidReg) {
                    ctx.regs[uop.rd] =
                        loadExtend(raw, uop.memSize, uop.memSigned);
                }
            } else {
                ++statStores;
                if (warming)
                    mem.warmData(dtr.paddr, uop.memSize, true);
                phys.write(dtr.paddr, reg(uop.rs2), uop.memSize);
            }
        } else if (uop.isControl()) {
            ++statBranches;
            BranchEval ev =
                branchEval(uop, reg(uop.rs1), reg(uop.rs2), ctx.pc);
            if (uop.rd != invalidReg)
                ctx.regs[uop.rd] = next_pc; // link register
            if (ev.taken) {
                redirected = true;
                redirect = ev.target;
            }
        } else if (uop.isSyscall()) {
            ctx.pc = next_pc;
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleSyscall(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return;
        } else if (uop.isHalt()) {
            ctx.pc = next_pc;
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleHalt(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return;
        } else if (uop.op == UopOp::Nop) {
            // nothing
        } else {
            const uint64_t value =
                aluCompute(uop, reg(uop.rs1), reg(uop.rs2), ctx.pc);
            if (uop.rd != invalidReg)
                ctx.regs[uop.rd] = value;
        }
    }

    ctx.pc = redirected ? redirect : next_pc;
}

void
AtomicCpu::tickFast()
{
    runFast(1, nullptr);
}

/*
 * The superblock engine. Every architectural effect, every statistic
 * and every trap interaction below replicates tick() exactly — tick()
 * is the oracle, enforced by the fast-vs-slow lockstep differential
 * test and by CI's SVBENCH_FASTWARM stdout diff. What differs is host
 * work only: one iTLB lookup and zero decode-cache probes per block
 * instead of one of each per instruction, stat updates batched into
 * local accumulators, and uop dispatch through a computed-goto table
 * (or the portable switch below) over pre-classified SbKinds.
 */
uint64_t
AtomicCpu::runFast(uint64_t budget, const PreTrap *pre_trap)
{
    svb_assert(sblocks != nullptr,
               "runFast() needs a SuperblockCache (core ", coreId, ")");
    svb_assert(!traceSink,
               "runFast() cannot deliver trace callbacks (core ", coreId,
               ")");
    if (ctx.halted) {
        // Reached from the per-cycle path only: burn one idle cycle,
        // exactly like tick().
        ++statIdleCycles;
        return 1;
    }
    uint64_t consumed = 0;
    if (pendingStall > 0) {
        const uint64_t burn = std::min<uint64_t>(pendingStall, budget);
        pendingStall -= Cycles(burn);
        statCycles += burn;
        consumed = burn;
        if (consumed == budget)
            return consumed;
    }

    // Per-batch accumulators. Flushed before any trap handler runs and
    // on every return, so the StatGroup tree is never stale at a point
    // where guest or host code could observe it (m5 stat dumps fire
    // inside syscalls, possibly on another core).
    uint64_t d_cycles = 0, d_insts = 0, d_uops = 0, d_branches = 0;
    uint64_t d_loads = 0, d_stores = 0, d_itlb_hits = 0;
    const auto flush_stats = [&] {
        statCycles += d_cycles;
        statInsts += d_insts;
        statUops += d_uops;
        statBranches += d_branches;
        statLoads += d_loads;
        statStores += d_stores;
        itlbUnit.creditHits(d_itlb_hits);
        d_cycles = d_insts = d_uops = d_branches = 0;
        d_loads = d_stores = d_itlb_hits = 0;
    };
    const auto reg = [this](uint8_t r) -> uint64_t {
        return r == invalidReg ? 0 : ctx.regs[r];
    };

    while (consumed < budget) {
        ++consumed;
        ++d_cycles;
        if (curBlock == nullptr) {
            const TranslateResult itr =
                itlbUnit.translate(ctx.pc, ctx.ptRoot, phys, nullptr, 0);
            svb_assert(!itr.fault, "instruction page fault at pc=",
                       ctx.pc, " core=", coreId);
            curBlock = &sblocks->at(itr.paddr);
            curInst = 0;
            curFrame = paging::pageBase(itr.paddr);
            curVpage = paging::pageBase(ctx.pc);
        } else {
            // Same code page as the previous instruction: the entry
            // (re)filled by the block-entry translate() is still
            // resident — nothing else touches this core's iTLB
            // mid-block — so the slow path's per-instruction lookup
            // would hit with certainty. Take it as a batched credit.
            ++d_itlb_hits;
        }
        recordPc(ctx.pc);
        const SbInst &bi = curBlock->insts[curInst];
        if (!bi.valid) {
            flush_stats();
            dumpHistory();
            svb_panic("illegal instruction at pc=", ctx.pc, " (",
                      isaDesc.name, ")");
        }
        if (warming)
            mem.warmFetch(curFrame | Addr(bi.pcOff), bi.length);
        ++d_insts;

        const Addr next_pc = ctx.pc + bi.length;
        Addr redirect = 0;
        bool redirected = false;
        const SbUop *const ubase = curBlock->uops.data() + bi.uopBase;
        const SbUop *u = ubase;
        const SbUop *const uend = ubase + bi.numUops;

// One handler body per SbKind, shared verbatim between the threaded
// and the switch engine via SVB_CASE/SVB_NEXT.
#if SVB_THREADED_DISPATCH
        static const void *const kinds[numSbKinds] = {
            &&h_Add, &&h_Sub, &&h_And, &&h_Or, &&h_Xor, &&h_Sll,
            &&h_Srl, &&h_Sra, &&h_Slt, &&h_Sltu, &&h_Mul, &&h_MovImm,
            &&h_Auipc, &&h_CmpFlags, &&h_AluMisc, &&h_Load, &&h_Store,
            &&h_Control, &&h_Syscall, &&h_Halt, &&h_Nop,
        };
#define SVB_CASE(k) h_##k:
#define SVB_NEXT()                                                      \
        do {                                                            \
            if (++u == uend)                                            \
                goto inst_done;                                         \
            goto *kinds[size_t(u->kind)];                               \
        } while (0)
        if (u == uend)
            goto inst_done;
        goto *kinds[size_t(u->kind)];
#else
#define SVB_CASE(k) case SbKind::k:
#define SVB_NEXT() break
        for (; u != uend; ++u)
        switch (u->kind) {
#endif

// Simple two-source ALU body; mirrors aluCompute()'s operand rules
// (useImm substitutes the second source).
#define SVB_ALU(expr)                                                   \
        {                                                               \
            const MicroOp &mo = u->uop;                                 \
            const uint64_t a = reg(mo.rs1);                             \
            const uint64_t b =                                          \
                mo.useImm ? uint64_t(mo.imm) : reg(mo.rs2);             \
            (void)a;                                                    \
            const uint64_t v = (expr);                                  \
            if (mo.rd != invalidReg)                                    \
                ctx.regs[mo.rd] = v;                                    \
        }

        SVB_CASE(Add) SVB_ALU(a + b) SVB_NEXT();
        SVB_CASE(Sub) SVB_ALU(a - b) SVB_NEXT();
        SVB_CASE(And) SVB_ALU(a & b) SVB_NEXT();
        SVB_CASE(Or) SVB_ALU(a | b) SVB_NEXT();
        SVB_CASE(Xor) SVB_ALU(a ^ b) SVB_NEXT();
        SVB_CASE(Sll) SVB_ALU(a << (b & 63)) SVB_NEXT();
        SVB_CASE(Srl) SVB_ALU(a >> (b & 63)) SVB_NEXT();
        SVB_CASE(Sra) SVB_ALU(uint64_t(int64_t(a) >> (b & 63))) SVB_NEXT();
        SVB_CASE(Slt) SVB_ALU(int64_t(a) < int64_t(b) ? 1 : 0) SVB_NEXT();
        SVB_CASE(Sltu) SVB_ALU(a < b ? 1 : 0) SVB_NEXT();
        SVB_CASE(Mul) SVB_ALU(a * b) SVB_NEXT();
        SVB_CASE(CmpFlags) SVB_ALU(computeCmpFlags(a, b)) SVB_NEXT();

        SVB_CASE(MovImm)
        {
            const MicroOp &mo = u->uop;
            if (mo.rd != invalidReg)
                ctx.regs[mo.rd] = uint64_t(mo.imm);
        }
        SVB_NEXT();

        SVB_CASE(Auipc)
        {
            const MicroOp &mo = u->uop;
            if (mo.rd != invalidReg)
                ctx.regs[mo.rd] = ctx.pc + uint64_t(mo.imm);
        }
        SVB_NEXT();

        SVB_CASE(AluMisc)
        {
            // Rare compute ops (mul/div, W-forms, TestFlags): share
            // aluCompute() so semantics can never diverge. It applies
            // useImm itself, so pass the raw rs2 value.
            const MicroOp &mo = u->uop;
            const uint64_t v =
                aluCompute(mo, reg(mo.rs1), reg(mo.rs2), ctx.pc);
            if (mo.rd != invalidReg)
                ctx.regs[mo.rd] = v;
        }
        SVB_NEXT();

        SVB_CASE(Load)
        {
            const MicroOp &mo = u->uop;
            const Addr vaddr = memEffAddr(mo, reg(mo.rs1));
            const TranslateResult dtr =
                dtlbUnit.translate(vaddr, ctx.ptRoot, phys, nullptr, 0);
            if (dtr.fault) {
                d_uops += uint64_t(u - ubase) + 1;
                flush_stats();
                dumpHistory();
                svb_panic("data page fault at vaddr=", vaddr,
                          " pc=", ctx.pc, " core=", coreId, " proc=",
                          ctx.processId);
            }
            ++d_loads;
            if (warming)
                mem.warmData(dtr.paddr, mo.memSize, false);
            const uint64_t raw = phys.read(dtr.paddr, mo.memSize);
            if (mo.rd != invalidReg) {
                ctx.regs[mo.rd] =
                    loadExtend(raw, mo.memSize, mo.memSigned);
            }
        }
        SVB_NEXT();

        SVB_CASE(Store)
        {
            const MicroOp &mo = u->uop;
            const Addr vaddr = memEffAddr(mo, reg(mo.rs1));
            const TranslateResult dtr =
                dtlbUnit.translate(vaddr, ctx.ptRoot, phys, nullptr, 0);
            if (dtr.fault) {
                d_uops += uint64_t(u - ubase) + 1;
                flush_stats();
                dumpHistory();
                svb_panic("data page fault at vaddr=", vaddr,
                          " pc=", ctx.pc, " core=", coreId, " proc=",
                          ctx.processId);
            }
            ++d_stores;
            if (warming)
                mem.warmData(dtr.paddr, mo.memSize, true);
            phys.write(dtr.paddr, reg(mo.rs2), mo.memSize);
        }
        SVB_NEXT();

        SVB_CASE(Control)
        {
            const MicroOp &mo = u->uop;
            ++d_branches;
            // Inline copy of branchEval() — a cross-TU call per branch
            // is hot-loop tax the fast tier exists to cut. Kept in
            // lockstep with the original by the fast-vs-slow
            // differential test.
            const uint64_t a = reg(mo.rs1);
            bool taken = false;
            Addr target = ctx.pc + uint64_t(mo.imm);
            switch (mo.op) {
              case UopOp::BranchEq: taken = a == reg(mo.rs2); break;
              case UopOp::BranchNe: taken = a != reg(mo.rs2); break;
              case UopOp::BranchLt:
                taken = int64_t(a) < int64_t(reg(mo.rs2));
                break;
              case UopOp::BranchGe:
                taken = int64_t(a) >= int64_t(reg(mo.rs2));
                break;
              case UopOp::BranchLtu: taken = a < reg(mo.rs2); break;
              case UopOp::BranchGeu: taken = a >= reg(mo.rs2); break;
              case UopOp::BranchFlags:
                taken = flagCondTaken(mo.cond, a);
                break;
              case UopOp::Jump: taken = true; break;
              case UopOp::JumpReg:
                taken = true;
                target = a + uint64_t(mo.imm);
                break;
              default:
                svb_panic("branchEval on non-control uop ", int(mo.op));
            }
            if (mo.rd != invalidReg)
                ctx.regs[mo.rd] = next_pc; // link register
            if (taken) {
                redirected = true;
                redirect = target;
            }
        }
        SVB_NEXT();

        SVB_CASE(Syscall)
        {
            d_uops += uint64_t(u - ubase) + 1;
            ctx.pc = next_pc;
            resetFastPath();
            flush_stats();
            if (pre_trap != nullptr)
                (*pre_trap)(consumed);
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleSyscall(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return consumed;
        }

        SVB_CASE(Halt)
        {
            d_uops += uint64_t(u - ubase) + 1;
            ctx.pc = next_pc;
            resetFastPath();
            flush_stats();
            if (pre_trap != nullptr)
                (*pre_trap)(consumed);
            const Addr old_root = ctx.ptRoot;
            pendingStall += trap.handleHalt(coreId, ctx);
            if (ctx.ptRoot != old_root) {
                itlbUnit.flush();
                dtlbUnit.flush();
            }
            return consumed;
        }

        SVB_CASE(Nop)
        {
            // nothing
        }
        SVB_NEXT();

#undef SVB_ALU
#undef SVB_CASE
#undef SVB_NEXT
#if !SVB_THREADED_DISPATCH
        }
        // The threaded engine arrives here by goto; jump explicitly so
        // the label is used in both configurations.
        goto inst_done;
#endif

inst_done:
        d_uops += bi.numUops;
        if (redirected) {
            ctx.pc = redirect;
        } else {
            ctx.pc = next_pc;
            if (++curInst < uint32_t(curBlock->insts.size()))
                continue; // still inside the block
        }
        // Block boundary (taken control transfer or fall-off). A
        // target on the same virtual code page is a guaranteed iTLB
        // hit — the entry the cursor rests on is untouched since the
        // block-entry fill — so chain straight into the next block;
        // the loop head batches the hit credit. Anything else re-walks
        // through the real translate() above.
        if (paging::pageBase(ctx.pc) == curVpage) {
            const Addr next_anchor =
                curFrame | paging::pageOffset(ctx.pc);
            const Superblock *prev = curBlock;
            if (prev->succ != nullptr && prev->succAnchor == next_anchor) {
                curBlock = prev->succ;
            } else {
                curBlock = &sblocks->at(next_anchor);
                prev->succAnchor = next_anchor;
                prev->succ = curBlock;
            }
            curInst = 0;
        } else {
            curBlock = nullptr;
        }
    }

    flush_stats();
    return consumed;
}

} // namespace svb
