/**
 * @file
 * Physical-address-indexed decoded-instruction cache.
 *
 * Guest code is decoded once per physical address and reused; the
 * workloads never modify code, so no invalidation path is needed
 * (asserted by the loader).
 */

#ifndef SVB_CPU_DECODE_CACHE_HH
#define SVB_CPU_DECODE_CACHE_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "isa/cx86/decoder.hh"
#include "isa/isa_info.hh"
#include "isa/riscv/decoder.hh"
#include "isa/static_inst.hh"
#include "mem/phys_memory.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"

namespace svb
{

/**
 * Shared decode service for one ISA over one physical memory.
 *
 * Thread-safety: instance-scoped (one per System); no locking needed
 * because a System is only ever driven by a single thread.
 */
class DecodeCache
{
  public:
    DecodeCache(IsaId isa, PhysMemory &phys) : isa(isa), phys(phys)
    {
        // Sized for the full guest software stack so the map does not
        // rehash while the container boots (~tens of thousands of
        // distinct instruction addresses).
        cache.reserve(1 << 16);
    }

    /**
     * Decode the instruction whose first byte is at physical @p paddr.
     * The returned reference stays valid for the cache's lifetime.
     */
    const StaticInst &
    decodeAt(Addr paddr)
    {
        // One-entry MRU fast path: fetch/issue re-decode the same
        // address many times in a row (O3 refetch, atomic stepping
        // through tight loops), so skip the hash lookup when the
        // address repeats.
        if (mru && paddr == mruPaddr) {
            ++nMruHits;
            return *mru;
        }

        auto it = cache.find(paddr);
        if (it == cache.end()) {
            ++nMisses;
            it = cache.emplace(paddr, decodeMiss(paddr)).first;
        } else {
            ++nHits;
        }
        // unordered_map is node-based: &it->second survives rehash.
        mruPaddr = paddr;
        mru = &it->second;
        return *mru;
    }

    size_t size() const { return cache.size(); }

    /**
     * Host-side lookup counters. These measure simulator work (e.g.
     * how much fetching the superblock tier absorbs), not guest
     * events, so they are outside the fast/slow byte-identity
     * contract and a fast-path run legitimately shows fewer lookups.
     */
    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }
    uint64_t mruHits() const { return nMruHits; }

    /** Register the lookup counters as derived stats under @p g. */
    void
    attachStats(StatGroup &g)
    {
        g.addFormula("hits", "decode cache hash hits (host work)",
                     [this] { return double(nHits); });
        g.addFormula("misses", "decode cache misses (host work)",
                     [this] { return double(nMisses); });
        g.addFormula("mruHits", "decode cache MRU hits (host work)",
                     [this] { return double(nMruHits); });
        g.addFormula("entries", "distinct instruction addresses decoded",
                     [this] { return double(cache.size()); });
    }

    /**
     * Serialize the set of decoded addresses (sorted, for a stable
     * on-disk image). The decoded bytes themselves are not stored:
     * code is immutable, so re-decoding from restored physical memory
     * reproduces identical entries.
     */
    void
    serializeState(const std::string &prefix, Checkpoint &cp) const
    {
        std::vector<Addr> addrs;
        addrs.reserve(cache.size());
        for (const auto &kv : cache)
            addrs.push_back(kv.first);
        std::sort(addrs.begin(), addrs.end());
        BlobWriter w;
        for (Addr a : addrs)
            w.putU64(a);
        cp.setBlob(prefix + "paddrs", w.take());
    }

    /** Rebuild the cache by decoding every checkpointed address.
     *  Physical memory must already be restored. */
    void
    unserializeState(const std::string &prefix, const Checkpoint &cp)
    {
        cache.clear();
        mru = nullptr;
        mruPaddr = 0;
        BlobReader r(cp.getBlob(prefix + "paddrs"));
        while (!r.done())
            decodeAt(r.getU64());
        mru = nullptr;
        mruPaddr = 0;
    }

  private:
    /** Decode the raw bytes at @p paddr (the shared miss path). */
    StaticInst
    decodeMiss(Addr paddr) const
    {
        if (isa == IsaId::Riscv)
            return riscv::decode(phys.read32(paddr));
        uint8_t window[16];
        // A wild fetch past the end of physical memory must not
        // underflow the window size; decode(nullptr-ish, 0) yields an
        // invalid instruction the CPU traps on.
        const size_t avail =
            paddr < phys.size()
                ? std::min<size_t>(sizeof(window), phys.size() - paddr)
                : 0;
        if (avail)
            phys.readBytes(paddr, window, avail);
        return cx86::decode(window, avail);
    }

    IsaId isa;
    PhysMemory &phys;
    std::unordered_map<Addr, StaticInst> cache;
    Addr mruPaddr = 0;
    const StaticInst *mru = nullptr;

    uint64_t nHits = 0;
    uint64_t nMisses = 0;
    uint64_t nMruHits = 0;
};

} // namespace svb

#endif // SVB_CPU_DECODE_CACHE_HH
