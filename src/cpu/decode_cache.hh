/**
 * @file
 * Physical-address-indexed decoded-instruction cache.
 *
 * Guest code is decoded once per physical address and reused; the
 * workloads never modify code, so no invalidation path is needed
 * (asserted by the loader).
 */

#ifndef SVB_CPU_DECODE_CACHE_HH
#define SVB_CPU_DECODE_CACHE_HH

#include <unordered_map>

#include "isa/cx86/decoder.hh"
#include "isa/isa_info.hh"
#include "isa/riscv/decoder.hh"
#include "isa/static_inst.hh"
#include "mem/phys_memory.hh"

namespace svb
{

/**
 * Shared decode service for one ISA over one physical memory.
 */
class DecodeCache
{
  public:
    DecodeCache(IsaId isa, PhysMemory &phys) : isa(isa), phys(phys) {}

    /**
     * Decode the instruction whose first byte is at physical @p paddr.
     * The returned reference stays valid for the cache's lifetime.
     */
    const StaticInst &
    decodeAt(Addr paddr)
    {
        auto it = cache.find(paddr);
        if (it != cache.end())
            return it->second;

        StaticInst inst;
        if (isa == IsaId::Riscv) {
            inst = riscv::decode(phys.read32(paddr));
        } else {
            uint8_t window[16];
            const size_t avail =
                std::min<size_t>(sizeof(window), phys.size() - paddr);
            phys.readBytes(paddr, window, avail);
            inst = cx86::decode(window, avail);
        }
        return cache.emplace(paddr, std::move(inst)).first->second;
    }

    size_t size() const { return cache.size(); }

  private:
    IsaId isa;
    PhysMemory &phys;
    std::unordered_map<Addr, StaticInst> cache;
};

} // namespace svb

#endif // SVB_CPU_DECODE_CACHE_HH
