/**
 * @file
 * Architectural hardware-thread state and the guest-kernel hooks.
 */

#ifndef SVB_CPU_HW_CONTEXT_HH
#define SVB_CPU_HW_CONTEXT_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace svb
{

/** Maximum architectural integer registers across ISAs. */
constexpr unsigned maxArchRegs = 32;

/**
 * The architectural state of one hardware context: everything that is
 * saved/restored on a context switch or mode switch.
 */
struct HwContext
{
    Addr pc = 0;
    std::array<uint64_t, maxArchRegs> regs{};
    Addr ptRoot = 0;     ///< page-table root of the current address space
    int processId = -1;  ///< guest-kernel bookkeeping
    bool halted = true;
};

/**
 * Interface through which the CPUs deliver traps to the guest kernel.
 *
 * The handler mutates the context: a plain syscall advances nothing
 * (the CPU already stepped pc past the trap instruction); a scheduler
 * switch replaces the whole context. The returned cycle count is
 * charged to the core as trap overhead.
 */
class TrapHandler
{
  public:
    virtual ~TrapHandler() = default;

    /** Handle an environment call on @p core_id. */
    virtual Cycles handleSyscall(int core_id, HwContext &ctx) = 0;

    /**
     * Handle a halt instruction (process exit / core park).
     * May switch in another runnable context.
     */
    virtual Cycles handleHalt(int core_id, HwContext &ctx) = 0;
};

} // namespace svb

#endif // SVB_CPU_HW_CONTEXT_HH
