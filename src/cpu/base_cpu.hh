/**
 * @file
 * Common base of the CPU models.
 *
 * Thread-safety: instance-scoped, like all of cpu/ (CPUs, TLBs,
 * branch predictors, the DecodeCache). Every object hangs off one
 * System and is driven by the single thread running that System's
 * experiment (core/parallel.hh); there is no cross-instance state.
 */

#ifndef SVB_CPU_BASE_CPU_HH
#define SVB_CPU_BASE_CPU_HH

#include <functional>

#include "decode_cache.hh"
#include "hw_context.hh"
#include "isa/isa_info.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_memory.hh"
#include "sim/stats.hh"
#include "tlb.hh"

namespace svb
{

/**
 * Base CPU: owns the architectural context, the TLBs and the ties to
 * the memory system and the guest kernel.
 */
class BaseCpu
{
  public:
    /**
     * @param core_id core index in the system
     * @param isa     guest ISA executed by this core
     * @param phys    functional memory
     * @param mem     this core's cache hierarchy
     * @param decoder shared decode cache for this ISA
     * @param trap    the guest kernel's trap interface
     * @param stats   parent stat group
     * @param name    stat subgroup name (e.g. "o3cpu0")
     */
    BaseCpu(int core_id, IsaId isa, PhysMemory &phys, CoreMemSystem &mem,
            DecodeCache &decoder, TrapHandler &trap, StatGroup &stats,
            const std::string &name)
        : coreId(core_id), isa(isa), isaDesc(isaInfo(isa)), phys(phys),
          mem(mem), decoder(decoder), trap(trap),
          group(stats.childGroup(name)),
          itlbUnit(TlbParams{"itlb", 64, 1024}, group),
          dtlbUnit(TlbParams{"dtlb", 64, 1024}, group)
    {}

    virtual ~BaseCpu() = default;

    /** Advance the core by one clock cycle. */
    virtual void tick() = 0;

    /** Import architectural state (mode switch / scheduler). */
    virtual void setContext(const HwContext &new_ctx)
    {
        ctx = new_ctx;
        itlbUnit.flush();
        dtlbUnit.flush();
    }

    /** Export the committed architectural state. */
    virtual HwContext getContext() const { return ctx; }

    bool halted() const { return ctx.halted; }
    int id() const { return coreId; }
    Tlb &itlb() { return itlbUnit; }
    Tlb &dtlb() { return dtlbUnit; }
    StatGroup &statGroup() { return group; }

    /**
     * Committed-instruction trace callback (gem5's Exec trace
     * equivalent): invoked once per retired macro instruction with its
     * pc. Pass nullptr to disable. Tracing is expensive; leave off in
     * measurement runs.
     */
    using TraceSink = std::function<void(Addr pc, const StaticInst &)>;
    void setTraceSink(TraceSink sink) { traceSink = std::move(sink); }

    /** @return true while a trace sink is installed (the superblock
     *  fast path is bypassed so every retirement is observed). */
    bool tracing() const { return static_cast<bool>(traceSink); }

  protected:
    int coreId;
    IsaId isa;
    const IsaInfo &isaDesc;
    PhysMemory &phys;
    CoreMemSystem &mem;
    DecodeCache &decoder;
    TrapHandler &trap;
    StatGroup &group;
    Tlb itlbUnit;
    Tlb dtlbUnit;
    HwContext ctx;
    TraceSink traceSink;
};

} // namespace svb

#endif // SVB_CPU_BASE_CPU_HH
