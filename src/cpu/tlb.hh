/**
 * @file
 * TLB with a hardware page-table walker and a page-walk cache.
 */

#ifndef SVB_CPU_TLB_HH
#define SVB_CPU_TLB_HH

#include <vector>

#include "mem/hierarchy.hh"
#include "mem/phys_memory.hh"
#include "paging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace svb
{

/** Result of an address translation. */
struct TranslateResult
{
    Addr paddr = 0;
    Cycles latency = 0; ///< extra cycles beyond a TLB hit
    bool fault = false;
};

/** TLB geometry. */
struct TlbParams
{
    std::string name = "tlb";
    uint32_t entries = 64;          ///< direct-mapped translation entries
    uint32_t walkCacheEntries = 1024; ///< 8 KiB of level-1 entries
};

/**
 * A direct-mapped TLB. Misses trigger a two-level walk whose memory
 * reads go through the core's data cache; the walk cache short-cuts
 * the level-1 read.
 */
class Tlb
{
  public:
    Tlb(const TlbParams &params, StatGroup &stats);

    /**
     * Translate @p vaddr under page table @p pt_root.
     *
     * @param timing the core's hierarchy for timed walks, or nullptr
     *               for functional-warming translation
     */
    TranslateResult translate(Addr vaddr, Addr pt_root, PhysMemory &phys,
                              CoreMemSystem *timing, Cycles now);

    /** Drop all cached translations (context switch). */
    void flush();

    /**
     * Account @p n guaranteed hits without performing lookups. Used by
     * the superblock fast path for same-page instruction fetches: the
     * entry was (re)filled by the block-entry translate() and nothing
     * else can evict or flush it mid-block, so each fetch the slow
     * path would perform is a certain hit. Keeps the hit statistic
     * byte-identical to per-instruction execution.
     */
    void creditHits(uint64_t n) { statHits += n; }

    /** Serialize translation + walk-cache warm state (checkpointing).
     *  Note: does NOT bump the flush statistic. */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Restore warm state saved on a TLB of identical geometry. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

    uint64_t hits() const { return statHits.value(); }
    uint64_t misses() const { return statMisses.value(); }

  private:
    struct Entry
    {
        Addr vpn = 0;
        Addr frame = 0;
        bool valid = false;
    };

    struct WalkEntry
    {
        Addr key = 0;    ///< vpn1
        Addr table = 0;  ///< level-0 table base
        bool valid = false;
    };

    TlbParams p;
    std::vector<Entry> entries;
    std::vector<WalkEntry> walkCache;

    Scalar &statHits;
    Scalar &statMisses;
    Scalar &statWalkCycles;
    Scalar &statWalkCacheHits;
    Scalar &statFlushes;
};

} // namespace svb

#endif // SVB_CPU_TLB_HH
