/**
 * @file
 * Superblock translation layer for the Atomic CPU fast path.
 *
 * A superblock lowers a straight-line run of already-decoded macro
 * instructions into one flat, pre-classified micro-op array the
 * threaded-dispatch interpreter in AtomicCpu::runFast() can execute
 * without per-instruction decode-cache lookups. A block is a classic
 * superblock: single entry, multiple exits. Conditional branches stay
 * mid-block (the engine falls through while they are not taken and
 * side-exits when one is); formation stops at anything that always
 * transfers control (unconditional jump, syscall, halt), at an
 * undecodable instruction, when the next instruction's first byte
 * would leave the anchor's 4 KiB page (the slow path only translates
 * the first byte of each instruction, so a block never spans an iTLB
 * translation), or at a length cap.
 *
 * Blocks are keyed by the physical address of their first instruction,
 * so they are shared across virtual mappings of the same code page.
 * Guest code is immutable (asserted by the loader), so blocks are
 * never invalidated; across checkpoint restore only the anchor
 * addresses are serialized and every block is re-formed from restored
 * physical memory.
 *
 * Thread-safety: instance-scoped, like the DecodeCache it wraps.
 */

#ifndef SVB_CPU_SUPERBLOCK_HH
#define SVB_CPU_SUPERBLOCK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "decode_cache.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace svb
{

/**
 * Dispatch class of one lowered micro-op. The hot ALU operations get
 * their own interpreter handler; everything else funnels through the
 * shared aluCompute()/branchEval() semantics so the fast path can
 * never drift from the slow path on the rare operations.
 */
enum class SbKind : uint8_t
{
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul,
    MovImm, Auipc, CmpFlags,
    AluMisc,      ///< any other non-memory, non-control compute uop
    Load, Store,
    Control,      ///< all branch / jump uops
    Syscall, Halt, Nop,
};

/** Number of SbKind dispatch classes (table size for computed goto). */
constexpr size_t numSbKinds = size_t(SbKind::Nop) + 1;

/** One lowered micro-op: the original plus its dispatch class. */
struct SbUop
{
    MicroOp uop;
    SbKind kind = SbKind::Nop;
};

/** Per-instruction metadata inside a superblock. */
struct SbInst
{
    uint16_t pcOff = 0;   ///< first byte's offset inside the code page
    uint8_t length = 0;   ///< encoded length in bytes
    uint8_t numUops = 0;
    uint32_t uopBase = 0; ///< index of the first uop in Superblock::uops
    bool valid = false;   ///< decoded successfully (else: trap on fetch)
};

/**
 * One translated straight-line run. All instructions live on the same
 * physical page; pc-relative state (Auipc, branch targets, links) is
 * computed from the executing context's pc, so one block serves every
 * virtual mapping of its code page.
 */
struct Superblock
{
    Addr anchor = 0; ///< physical address of the first instruction
    std::vector<SbInst> insts;
    std::vector<SbUop> uops;

    /**
     * Last-used successor link (host-side memoisation, mutable by the
     * engine): lets loop iterations chain block-to-block without even
     * the MRU probe. Blocks are only destroyed all at once (clear()),
     * and the map is node-based, so a link can never dangle.
     */
    mutable Addr succAnchor = 0;
    mutable const Superblock *succ = nullptr;
};

/**
 * Cache of formed superblocks, keyed by anchor physical address.
 * Lookup-or-build; entries are stable for the cache's lifetime
 * (node-based map) so the CPU may hold a cursor into a block across
 * run() boundaries.
 */
class SuperblockCache
{
  public:
    /** Longest run lowered into one block, in macro instructions. */
    static constexpr unsigned maxInsts = 64;

    explicit SuperblockCache(DecodeCache &decoder) : decoder(decoder) {}

    /** @return the block anchored at @p paddr, forming it on miss. */
    const Superblock &
    at(Addr paddr)
    {
        ++nLookups;
        if (mruBlock && paddr == mruAnchor)
            return *mruBlock;
        auto it = blocks.find(paddr);
        if (it == blocks.end())
            it = blocks.emplace(paddr, build(paddr)).first;
        mruAnchor = paddr;
        mruBlock = &it->second;
        return *mruBlock;
    }

    size_t size() const { return blocks.size(); }

    /** Drop every block (checkpoint restore onto new memory contents). */
    void
    clear()
    {
        blocks.clear();
        mruBlock = nullptr;
        mruAnchor = 0;
    }

    /**
     * Serialize only the sorted anchor addresses; the lowered form is
     * derived state and is re-built from restored physical memory.
     */
    void serializeState(const std::string &prefix, Checkpoint &cp) const;

    /** Re-form every checkpointed anchor. Physical memory (and hence
     *  the decode cache's backing bytes) must already be restored. */
    void unserializeState(const std::string &prefix, const Checkpoint &cp);

    /**
     * Host-side observability counters (how much execution the fast
     * tier covers). These count host work, not guest events, so they
     * are intentionally outside the fast/slow byte-identity contract.
     */
    uint64_t lookups() const { return nLookups; }
    uint64_t blocksFormed() const { return nBlocks; }
    uint64_t instsLowered() const { return nInsts; }

    /** Register the coverage counters as derived stats under @p g. */
    void attachStats(StatGroup &g);

    /** @return false iff SVBENCH_FASTWARM=0 disables the fast tier. */
    static bool envEnabled();

  private:
    Superblock build(Addr anchor);

    DecodeCache &decoder;
    std::unordered_map<Addr, Superblock> blocks;
    Addr mruAnchor = 0;
    const Superblock *mruBlock = nullptr;

    uint64_t nLookups = 0;
    uint64_t nBlocks = 0;
    uint64_t nInsts = 0;
};

} // namespace svb

#endif // SVB_CPU_SUPERBLOCK_HH
