#include "tlb.hh"

#include "sim/logging.hh"

namespace svb
{

Tlb::Tlb(const TlbParams &params, StatGroup &stats)
    : p(params), entries(params.entries), walkCache(params.walkCacheEntries),
      statHits(stats.childGroup(p.name).addScalar("hits", "TLB hits")),
      statMisses(stats.childGroup(p.name).addScalar("misses", "TLB misses")),
      statWalkCycles(stats.childGroup(p.name).addScalar(
          "walkCycles", "cycles spent in page walks")),
      statWalkCacheHits(stats.childGroup(p.name).addScalar(
          "walkCacheHits", "level-1 reads skipped by the walk cache")),
      statFlushes(stats.childGroup(p.name).addScalar(
          "flushes", "full TLB flushes (context switches)"))
{
    svb_assert((p.entries & (p.entries - 1)) == 0,
               "TLB entries must be a power of two");
    svb_assert((p.walkCacheEntries & (p.walkCacheEntries - 1)) == 0,
               "walk cache entries must be a power of two");
}

TranslateResult
Tlb::translate(Addr vaddr, Addr pt_root, PhysMemory &phys,
               CoreMemSystem *timing, Cycles now)
{
    const Addr vpn = vaddr >> paging::pageBits;
    Entry &e = entries[vpn & (p.entries - 1)];
    if (e.valid && e.vpn == vpn) {
        ++statHits;
        return {e.frame | paging::pageOffset(vaddr), 0, false};
    }

    ++statMisses;
    Cycles latency = 0;

    // Level-1 lookup, possibly served by the page-walk cache.
    const Addr idx1 = paging::vpn1(vaddr);
    WalkEntry &we = walkCache[idx1 & (p.walkCacheEntries - 1)];
    Addr level0;
    if (we.valid && we.key == idx1) {
        ++statWalkCacheHits;
        level0 = we.table;
        latency += 1;
    } else {
        const Addr pte1Addr = pt_root + idx1 * 8;
        if (timing)
            latency += timing->dataAccess(pte1Addr, 8, false, now);
        const uint64_t pte1 = phys.read64(pte1Addr);
        if (!paging::pteIsValid(pte1))
            return {0, latency, true};
        level0 = paging::pteFrame(pte1);
        we = {idx1, level0, true};
    }

    const Addr pte0Addr = level0 + paging::vpn0(vaddr) * 8;
    if (timing)
        latency += timing->dataAccess(pte0Addr, 8, false, now);
    const uint64_t pte0 = phys.read64(pte0Addr);
    if (!paging::pteIsValid(pte0))
        return {0, latency, true};

    e = {vpn, paging::pteFrame(pte0), true};
    statWalkCycles += latency;
    return {e.frame | paging::pageOffset(vaddr), latency, false};
}

void
Tlb::flush()
{
    ++statFlushes;
    for (auto &e : entries)
        e.valid = false;
    for (auto &we : walkCache)
        we.valid = false;
}

void
Tlb::serializeState(const std::string &prefix, Checkpoint &cp) const
{
    cp.setScalar(prefix + "entries", entries.size());
    cp.setScalar(prefix + "walkEntries", walkCache.size());
    BlobWriter w;
    for (const Entry &e : entries) {
        w.putU64(e.vpn);
        w.putU64(e.frame);
        w.putU8(e.valid ? 1 : 0);
    }
    for (const WalkEntry &we : walkCache) {
        w.putU64(we.key);
        w.putU64(we.table);
        w.putU8(we.valid ? 1 : 0);
    }
    cp.setBlob(prefix + "state", w.take());
}

void
Tlb::unserializeState(const std::string &prefix, const Checkpoint &cp)
{
    svb_assert(cp.getScalar(prefix + "entries") == entries.size() &&
                   cp.getScalar(prefix + "walkEntries") == walkCache.size(),
               "checkpoint TLB geometry mismatch (", p.name, ")");
    BlobReader r(cp.getBlob(prefix + "state"));
    for (Entry &e : entries) {
        e.vpn = r.getU64();
        e.frame = r.getU64();
        e.valid = r.getU8() != 0;
    }
    for (WalkEntry &we : walkCache) {
        we.key = r.getU64();
        we.table = r.getU64();
        we.valid = r.getU8() != 0;
    }
    svb_assert(r.done(), "checkpoint TLB blob has trailing bytes");
}

} // namespace svb
