#include "o3_cpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace svb
{

O3Cpu::O3Cpu(const O3Params &params, int core_id, IsaId isa_id,
             PhysMemory &phys_mem, CoreMemSystem &mem_sys,
             DecodeCache &decode, TrapHandler &trap_handler,
             StatGroup &stats)
    : BaseCpu(core_id, isa_id, phys_mem, mem_sys, decode, trap_handler,
              stats, "o3"),
      p(params), bp(params.bp, group),
      statCycles(group.addScalar("numCycles", "active cycles simulated")),
      statIdleCycles(group.addScalar("idleCycles", "cycles halted")),
      statInsts(group.addScalar("numInsts",
                                "macro instructions committed")),
      statUops(group.addScalar("numUops", "micro-ops committed")),
      statLoads(group.addScalar("numLoads", "loads committed")),
      statStores(group.addScalar("numStores", "stores committed")),
      statBranches(group.addScalar("numBranches",
                                   "control instructions committed")),
      statCondBranches(group.addScalar("numCondBranches",
                                       "conditional branches committed")),
      statMispredicts(group.addScalar("branchMispredicts",
                                      "mispredicted control instructions")),
      statSquashedUops(group.addScalar("squashedUops",
                                       "micro-ops squashed")),
      statRobFullStalls(group.addScalar("robFullStalls",
                                        "rename stalls: ROB full")),
      statIqFullStalls(group.addScalar("iqFullStalls",
                                       "rename stalls: IQ full")),
      statLsqFullStalls(group.addScalar("lsqFullStalls",
                                        "rename stalls: LQ/SQ full")),
      statFwdLoads(group.addScalar("forwardedLoads",
                                   "loads served by store forwarding"))
{
    svb_assert(p.numPhysIntRegs > isaDesc.numIntRegs + 8,
               "too few physical registers");
    // The per-cycle attribution vector (see cpu/stall_cause.hh): one
    // counter per cause in its own child group, so the flattened stat
    // names read system.cpuN.o3.stall.<cause>.
    StatGroup &stall_group = group.childGroup("stall");
    for (unsigned c = 0; c < numStallCauses; ++c) {
        statStallCycles[c] = &stall_group.addScalar(
            stallCauseName(c), "cycles attributed to this stall cause");
    }
    group.addFormula("cpi", "cycles per committed instruction", [this]() {
        return statInsts.value()
                   ? double(statCycles.value()) / double(statInsts.value())
                   : 0.0;
    });
    group.addFormula("branchMispredictRate", "mispredicts per branch",
                     [this]() {
                         return statBranches.value()
                                    ? double(statMispredicts.value()) /
                                          double(statBranches.value())
                                    : 0.0;
                     });
    setContext(HwContext{});
}

void
O3Cpu::setContext(const HwContext &new_ctx)
{
    BaseCpu::setContext(new_ctx);

    rob.clear();
    iq.clear();
    loadQueue.clear();
    storeQueue.clear();
    fetchQueue.clear();

    const unsigned nArch = maxArchRegs;
    renameMap.assign(nArch, 0);
    committedMap.assign(nArch, 0);
    physRegs.assign(p.numPhysIntRegs, 0);
    regReadyAt.assign(p.numPhysIntRegs, 0);
    freeList.clear();
    for (unsigned i = 0; i < nArch; ++i) {
        renameMap[i] = int(i);
        committedMap[i] = int(i);
        physRegs[i] = ctx.regs[i];
    }
    for (unsigned i = nArch; i < p.numPhysIntRegs; ++i)
        freeList.push_back(int(i));

    fetchPc = ctx.pc;
    fetchEnabled = !ctx.halted;
    fetchStallUntil = 0;
    lastFetchLine = ~Addr(0);
    divBusyUntil = 0;
    commitStallUntil = 0;
}

HwContext
O3Cpu::getContext() const
{
    HwContext out = ctx;
    for (unsigned i = 0; i < maxArchRegs; ++i)
        out.regs[i] = physRegs[size_t(committedMap[i])];
    // The committed pc is the oldest unretired instruction: in-flight
    // work has not touched committed state, so resuming there is exact.
    if (!rob.empty())
        out.pc = rob.front().pc;
    else if (!fetchQueue.empty())
        out.pc = fetchQueue.front().pc;
    else
        out.pc = fetchPc;
    return out;
}

void
O3Cpu::tick()
{
    if (ctx.halted) {
        ++statIdleCycles;
        return;
    }
    ++cycle;
    ++statCycles;

    commitsThisCycle = 0;
    commitBlock = CommitBlock::None;
    renameStall = RenameStall::None;
    frontendInFlight = false;

    commitStage();
    if (ctx.halted) {
        accountCycle();
        return;
    }
    issueStage();
    renameStage();
    fetchStage();
    accountCycle();
}

void
O3Cpu::accountCycle()
{
    // Exactly one cause per counted cycle; cpu/stall_cause.hh
    // documents the priority order. Backend structure pressure
    // (observed at rename) outranks the head's own block so that
    // window-full cycles stay distinguishable from plain miss
    // latency.
    StallCause cause;
    if (commitsThisCycle > 0)
        cause = StallCause::Retiring;
    else if (commitBlock == CommitBlock::Trap)
        cause = StallCause::Trap;
    else if (commitBlock == CommitBlock::RobEmpty)
        cause = frontendInFlight ? StallCause::Decode
                                 : StallCause::FetchStarved;
    else if (renameStall == RenameStall::Rob)
        cause = StallCause::RobFull;
    else if (renameStall == RenameStall::Iq)
        cause = StallCause::IqFull;
    else if (renameStall == RenameStall::Lsq)
        cause = StallCause::LsqFull;
    else if (renameStall == RenameStall::Regs)
        cause = StallCause::RenameBlocked;
    else if (commitBlock == CommitBlock::HeadMem)
        cause = StallCause::Memory;
    else
        cause = StallCause::IssueWait;
    ++*statStallCycles[unsigned(cause)];
}

// --------------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------------

void
O3Cpu::fetchStage()
{
    if (!fetchEnabled || cycle < fetchStallUntil)
        return;

    for (unsigned n = 0; n < p.fetchWidth; ++n) {
        if (fetchQueue.size() >= p.fetchBufferEntries)
            return;

        TranslateResult tr =
            itlbUnit.translate(fetchPc, ctx.ptRoot, phys, &mem, cycle);
        if (tr.fault) {
            // Only reachable on a mispredicted (wrong) path: stall and
            // wait for the squash that must be coming. A fault with an
            // empty pipeline is a real bug.
            svb_assert(!rob.empty() || !fetchQueue.empty(),
                       "instruction page fault on the correct path pc=",
                       fetchPc);
            fetchStallUntil = cycle + 1;
            return;
        }
        if (tr.latency > 0) {
            // ITLB miss: stall for the walk; the entry is now cached.
            fetchStallUntil = cycle + tr.latency;
            return;
        }

        const StaticInst &inst = decoder.decodeAt(tr.paddr);
        if (!inst.valid) {
            svb_assert(!rob.empty() || !fetchQueue.empty(),
                       "illegal instruction on the correct path pc=",
                       fetchPc);
            fetchStallUntil = cycle + 1;
            return;
        }

        const Addr line = (tr.paddr + inst.length - 1) & ~Addr(63);
        if ((tr.paddr & ~Addr(63)) != lastFetchLine || line != lastFetchLine) {
            const Cycles lat = mem.fetchAccess(tr.paddr, inst.length, cycle);
            lastFetchLine = line;
            if (lat > 2) { // beyond L1I hit: stall, retry after fill
                fetchStallUntil = cycle + lat;
                return;
            }
        }

        FetchEntry fe;
        fe.pc = fetchPc;
        fe.inst = &inst;
        fe.readyAt = cycle + p.frontendDelay;

        const Addr fall_through = fetchPc + inst.length;
        if (inst.isControl) {
            BranchPrediction pred = bp.predict(fetchPc, inst, fall_through);
            fe.hasPred = true;
            fe.predNext = pred.nextPc;
            fetchQueue.push_back(fe);
            fetchPc = pred.nextPc;
            if (pred.taken) {
                lastFetchLine = ~Addr(0);
                return; // taken branch ends the fetch group
            }
            continue;
        }

        fetchQueue.push_back(fe);
        fetchPc = fall_through;

        if (inst.isSyscall || inst.isHalt) {
            // Stop fetching until the trap commits and redirects.
            fetchEnabled = false;
            return;
        }
    }
}

// --------------------------------------------------------------------------
// Rename / dispatch
// --------------------------------------------------------------------------

void
O3Cpu::renameStage()
{
    for (unsigned n = 0; n < p.renameWidth; ++n) {
        if (fetchQueue.empty() || fetchQueue.front().readyAt > cycle)
            return;

        const FetchEntry &fe = fetchQueue.front();
        const StaticInst &inst = *fe.inst;

        // Resource check across the whole macro instruction.
        if (rob.size() + inst.numUops > p.robEntries) {
            ++statRobFullStalls;
            renameStall = RenameStall::Rob;
            return;
        }
        unsigned need_iq = 0, need_regs = 0, need_lq = 0, need_sq = 0;
        for (unsigned i = 0; i < inst.numUops; ++i) {
            const MicroOp &u = inst.uops[i];
            const bool trap_or_nop =
                u.isSyscall() || u.isHalt() || u.op == UopOp::Nop;
            if (!trap_or_nop)
                ++need_iq;
            if (u.rd != invalidReg)
                ++need_regs;
            if (u.isLoad())
                ++need_lq;
            if (u.isStore())
                ++need_sq;
        }
        if (iq.size() + need_iq > p.iqEntries) {
            ++statIqFullStalls;
            renameStall = RenameStall::Iq;
            return;
        }
        if (loadQueue.size() + need_lq > p.lqEntries ||
            storeQueue.size() + need_sq > p.sqEntries) {
            ++statLsqFullStalls;
            renameStall = RenameStall::Lsq;
            return;
        }
        if (freeList.size() < need_regs) {
            renameStall = RenameStall::Regs;
            return;
        }

        for (unsigned i = 0; i < inst.numUops; ++i) {
            const MicroOp &u = inst.uops[i];
            rob.emplace_back();
            DynInst &d = rob.back();
            d.seq = nextSeq++;
            d.uop = u;
            d.sinst = &inst;
            d.pc = fe.pc;
            d.instLen = inst.length;
            d.lastUop = (i + 1 == inst.numUops);
            if (d.lastUop && fe.hasPred) {
                d.hasPred = true;
                d.predNext = fe.predNext;
            }

            d.psrc1 = (u.rs1 == invalidReg) ? -1 : renameMap[u.rs1];
            d.psrc2 = (u.rs2 == invalidReg || u.useImm)
                          ? -1
                          : renameMap[u.rs2];
            if (u.rd != invalidReg) {
                d.archDst = u.rd;
                d.oldPdst = renameMap[u.rd];
                d.pdst = freeList.back();
                freeList.pop_back();
                renameMap[u.rd] = d.pdst;
                regReadyAt[size_t(d.pdst)] = maxTick;
            }

            if (u.isSyscall() || u.isHalt() || u.op == UopOp::Nop) {
                d.executed = (u.op == UopOp::Nop);
                d.completeAt = cycle;
            } else {
                d.inIq = true;
                iq.push_back(&d);
            }
            if (u.isLoad())
                loadQueue.push_back(&d);
            if (u.isStore())
                storeQueue.push_back(&d);
        }
        fetchQueue.pop_front();
    }
}

// --------------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------------

void
O3Cpu::issueStage()
{
    unsigned issued = 0, alu_used = 0, mult_used = 0, mem_used = 0;
    uint64_t squash_seq = 0;
    Addr redirect_to = 0;
    bool mispredict = false;

    for (auto it = iq.begin(); it != iq.end() && issued < p.issueWidth;) {
        DynInst &d = **it;
        if (!srcReady(d.psrc1) || !srcReady(d.psrc2)) {
            ++it;
            continue;
        }
        if (!tryIssue(d, alu_used, mult_used, mem_used)) {
            ++it;
            continue;
        }

        ++issued;
        d.inIq = false;
        it = iq.erase(it);

        if (d.uop.isControl() && d.executed) {
            const Addr expected =
                d.hasPred ? d.predNext : (d.pc + d.instLen);
            if (d.actualNext != expected) {
                mispredict = true;
                squash_seq = d.seq;
                redirect_to = d.actualNext;
                ++statMispredicts;
                break;
            }
        }
    }

    if (mispredict) {
        squashAfter(squash_seq);
        redirectFetch(redirect_to, p.frontendDelay);
    }
}

bool
O3Cpu::tryIssue(DynInst &d, unsigned &alu_used, unsigned &mult_used,
                unsigned &mem_used)
{
    const MicroOp &u = d.uop;

    switch (u.cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        if (alu_used >= p.intAluUnits)
            return false;
        ++alu_used;
        executeUop(d, p.intAluLat);
        return true;
      case OpClass::IntMult:
        if (mult_used >= p.intMultUnits)
            return false;
        ++mult_used;
        executeUop(d, p.intMultLat);
        return true;
      case OpClass::IntDiv:
        if (cycle < divBusyUntil)
            return false;
        divBusyUntil = cycle + p.intDivLat; // unpipelined
        executeUop(d, p.intDivLat);
        return true;
      case OpClass::MemRead: {
        if (mem_used >= p.memPorts)
            return false;
        if (!issueLoad(d))
            return false;
        ++mem_used;
        return true;
      }
      case OpClass::MemWrite: {
        if (mem_used >= p.memPorts)
            return false;
        ++mem_used;
        // Address generation + data capture; the write happens at commit.
        const Addr vaddr = memEffAddr(u, readPhys(d.psrc1));
        TranslateResult tr =
            dtlbUnit.translate(vaddr, ctx.ptRoot, phys, &mem, cycle);
        if (tr.fault) {
            // Wrong-path store with a garbage address: park it as
            // executed-but-faulted; commit panics if it survives.
            d.faulted = true;
            d.addrReady = true;
            d.executed = true;
            d.completeAt = cycle + 1;
            return true;
        }
        d.effPaddr = tr.paddr;
        d.storeData = d.psrc2 >= 0 ? readPhys(d.psrc2) : 0;
        d.addrReady = true;
        d.executed = true;
        d.completeAt = cycle + 1 + tr.latency;
        return true;
      }
      default:
        // Should not reach the IQ.
        d.executed = true;
        d.completeAt = cycle;
        return true;
    }
}

void
O3Cpu::executeUop(DynInst &d, Cycles lat)
{
    const MicroOp &u = d.uop;
    const uint64_t a = d.psrc1 >= 0 ? readPhys(d.psrc1) : 0;
    const uint64_t b = d.psrc2 >= 0 ? readPhys(d.psrc2) : 0;

    if (u.isControl()) {
        const Addr next_pc = d.pc + d.instLen;
        BranchEval ev = branchEval(u, a, b, d.pc);
        d.actualTaken = ev.taken;
        d.actualNext = ev.taken ? ev.target : next_pc;
        if (d.pdst >= 0) {
            physRegs[size_t(d.pdst)] = next_pc; // link value
            regReadyAt[size_t(d.pdst)] = cycle + lat;
        }
    } else {
        const uint64_t value = aluCompute(u, a, b, d.pc);
        if (d.pdst >= 0) {
            physRegs[size_t(d.pdst)] = value;
            regReadyAt[size_t(d.pdst)] = cycle + lat;
        }
    }
    d.executed = true;
    d.completeAt = cycle + lat;
}

bool
O3Cpu::issueLoad(DynInst &d)
{
    const MicroOp &u = d.uop;
    const Addr vaddr = memEffAddr(u, readPhys(d.psrc1));

    // Conservative memory ordering: wait until every older store knows
    // its address; forward when fully covered; stall on partial overlap.
    const DynInst *fwd = nullptr;
    for (const DynInst *st : storeQueue) {
        if (st->seq >= d.seq)
            break;
        if (!st->addrReady)
            return false;
    }

    TranslateResult tr =
        dtlbUnit.translate(vaddr, ctx.ptRoot, phys, &mem, cycle);
    if (tr.fault) {
        // Wrong-path load: complete with a dummy value.
        d.faulted = true;
        d.executed = true;
        d.completeAt = cycle + 1;
        if (d.pdst >= 0) {
            physRegs[size_t(d.pdst)] = 0;
            regReadyAt[size_t(d.pdst)] = cycle + 1;
        }
        return true;
    }
    d.effPaddr = tr.paddr;

    const Addr lo = tr.paddr;
    const Addr hi = tr.paddr + u.memSize;
    for (const DynInst *st : storeQueue) {
        if (st->seq >= d.seq)
            break;
        const Addr slo = st->effPaddr;
        const Addr shi = st->effPaddr + st->uop.memSize;
        if (hi <= slo || lo >= shi)
            continue; // disjoint
        if (slo <= lo && hi <= shi) {
            fwd = st; // fully covered; youngest older wins (keep scanning)
        } else {
            return false; // partial overlap: wait for the store to retire
        }
    }

    uint64_t raw;
    Cycles lat;
    if (fwd) {
        ++statFwdLoads;
        const unsigned shift =
            unsigned(lo - fwd->effPaddr) * 8;
        raw = fwd->storeData >> shift;
        lat = p.forwardLat + tr.latency;
    } else {
        raw = phys.read(tr.paddr, u.memSize);
        lat = mem.dataAccess(tr.paddr, u.memSize, false, cycle) +
              tr.latency;
    }

    if (d.pdst >= 0) {
        physRegs[size_t(d.pdst)] =
            loadExtend(raw, u.memSize, u.memSigned);
        regReadyAt[size_t(d.pdst)] = cycle + lat;
    }
    d.executed = true;
    d.completeAt = cycle + lat;
    return true;
}

// --------------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------------

void
O3Cpu::commitStage()
{
    if (cycle < commitStallUntil) {
        commitBlock = CommitBlock::Trap;
        return;
    }

    for (unsigned n = 0; n < p.commitWidth; ++n) {
        if (rob.empty()) {
            commitBlock = CommitBlock::RobEmpty;
            // Sampled before this cycle's rename/fetch run: entries
            // still in the frontend-delay pipe mean decode transit,
            // a drained frontend means fetch starvation.
            frontendInFlight = !fetchQueue.empty();
            return;
        }
        DynInst &d = rob.front();

        if (d.uop.isSyscall() || d.uop.isHalt()) {
            deliverTrap(d);
            return;
        }

        if (!d.executed || cycle < d.completeAt) {
            commitBlock = d.uop.isLoad() || d.uop.isStore()
                              ? CommitBlock::HeadMem
                              : CommitBlock::HeadExec;
            return;
        }
        svb_assert(!d.faulted, "faulted memory access reached commit, pc=",
                   d.pc, " core=", coreId, " isLoad=", d.uop.isLoad(),
                   " base reg r", int(d.uop.rs1), " seq=", d.seq);

        if (d.uop.isStore()) {
            svb_assert(!storeQueue.empty() &&
                       storeQueue.front() == &d, "SQ out of order");
            phys.write(d.effPaddr, d.storeData, d.uop.memSize);
            mem.dataAccess(d.effPaddr, d.uop.memSize, true, cycle);
            storeQueue.pop_front();
            ++statStores;
        }
        if (d.uop.isLoad()) {
            svb_assert(!loadQueue.empty() && loadQueue.front() == &d,
                       "LQ out of order");
            loadQueue.pop_front();
            ++statLoads;
        }

        if (d.archDst >= 0) {
            // The previous committed mapping is dead once this commits:
            // all of its readers are older and have already executed.
            const int prev = committedMap[d.archDst];
            committedMap[d.archDst] = d.pdst;
            freeList.push_back(prev);
        }

        ++statUops;
        ++commitsThisCycle;
        if (d.lastUop) {
            ++statInsts;
            if (traceSink)
                traceSink(d.pc, *d.sinst);
            if (d.uop.isControl()) {
                ++statBranches;
                if (d.uop.isCondCtrl())
                    ++statCondBranches;
                bp.update(d.pc, *d.sinst, d.actualTaken, d.actualNext);
            }
        }
        rob.pop_front();
    }
}

void
O3Cpu::deliverTrap(DynInst &d)
{
    // The trap must be the oldest instruction; squash everything younger
    // and hand the committed architectural state to the kernel.
    squashAfter(d.seq);

    HwContext trap_ctx = ctx;
    trap_ctx.pc = d.pc + d.instLen;
    for (unsigned i = 0; i < maxArchRegs; ++i)
        trap_ctx.regs[i] = physRegs[size_t(committedMap[i])];

    const Addr old_root = trap_ctx.ptRoot;
    const Cycles cost = d.uop.isSyscall()
                            ? trap.handleSyscall(coreId, trap_ctx)
                            : trap.handleHalt(coreId, trap_ctx);

    ++statUops;
    ++statInsts;
    ++commitsThisCycle;
    svb_assert(!rob.empty() && &rob.front() == &d, "trap not at ROB head");
    rob.pop_front();

    // Apply the (possibly switched) context back onto the committed
    // register state.
    ctx.processId = trap_ctx.processId;
    ctx.ptRoot = trap_ctx.ptRoot;
    ctx.halted = trap_ctx.halted;
    for (unsigned i = 0; i < maxArchRegs; ++i) {
        const size_t preg = size_t(committedMap[i]);
        physRegs[preg] = trap_ctx.regs[i];
        regReadyAt[preg] = 0;
    }
    if (trap_ctx.ptRoot != old_root) {
        itlbUnit.flush();
        dtlbUnit.flush();
    }

    commitStallUntil = cycle + cost;
    if (!ctx.halted)
        redirectFetch(trap_ctx.pc, cost);
}

// --------------------------------------------------------------------------
// Squash / redirect
// --------------------------------------------------------------------------

void
O3Cpu::squashAfter(uint64_t seq)
{
    while (!rob.empty() && rob.back().seq > seq) {
        DynInst &d = rob.back();
        ++statSquashedUops;
        if (d.archDst >= 0) {
            renameMap[d.archDst] = d.oldPdst;
            freeList.push_back(d.pdst);
        }
        if (d.uop.isLoad()) {
            svb_assert(!loadQueue.empty() && loadQueue.back() == &d,
                       "LQ squash mismatch");
            loadQueue.pop_back();
        }
        if (d.uop.isStore()) {
            svb_assert(!storeQueue.empty() && storeQueue.back() == &d,
                       "SQ squash mismatch");
            storeQueue.pop_back();
        }
        rob.pop_back();
    }
    // Filter the issue queue down to surviving entries.
    iq.erase(std::remove_if(iq.begin(), iq.end(),
                            [seq](DynInst *d) { return d->seq > seq; }),
             iq.end());
    fetchQueue.clear();
}

void
O3Cpu::redirectFetch(Addr new_pc, Cycles delay)
{
    fetchPc = new_pc;
    fetchEnabled = true;
    fetchStallUntil = cycle + delay;
    lastFetchLine = ~Addr(0);
}

} // namespace svb
