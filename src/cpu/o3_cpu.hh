/**
 * @file
 * Detailed out-of-order CPU model (the DerivO3CPU equivalent).
 *
 * Pipeline: fetch (with branch prediction and timed I-cache/ITLB) ->
 * decode/rename (explicit register renaming onto a physical register
 * file with a free list) -> issue (issue queue, FU pool, LSQ with
 * store-to-load forwarding) -> commit (in-order, trains the branch
 * predictor, retires stores to memory, delivers traps).
 *
 * Configuration defaults mirror Table 4.1 of the paper: 192-entry
 * ROB, 32+32 LSQ, 256 physical integer registers.
 */

#ifndef SVB_CPU_O3_CPU_HH
#define SVB_CPU_O3_CPU_HH

#include <deque>
#include <vector>

#include "base_cpu.hh"
#include "branch_pred.hh"
#include "stall_cause.hh"

namespace svb
{

/** O3 pipeline geometry. */
struct O3Params
{
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 192;
    unsigned iqEntries = 64;
    unsigned lqEntries = 32;
    unsigned sqEntries = 32;
    unsigned numPhysIntRegs = 256;
    unsigned fetchBufferEntries = 16;
    Cycles frontendDelay = 4;   ///< fetch-to-rename depth
    unsigned intAluUnits = 3;
    unsigned intMultUnits = 1;
    unsigned intDivUnits = 1;
    unsigned memPorts = 2;
    Cycles intAluLat = 1;
    Cycles intMultLat = 3;
    Cycles intDivLat = 20;
    Cycles forwardLat = 2;      ///< store-to-load forwarding latency
    BranchPredParams bp;
};

/**
 * The out-of-order core.
 */
class O3Cpu : public BaseCpu
{
  public:
    O3Cpu(const O3Params &params, int core_id, IsaId isa, PhysMemory &phys,
          CoreMemSystem &mem, DecodeCache &decoder, TrapHandler &trap,
          StatGroup &stats);

    void tick() override;

    void setContext(const HwContext &new_ctx) override;
    HwContext getContext() const override;

    uint64_t cycleCount() const { return statCycles.value(); }
    uint64_t instCount() const { return statInsts.value(); }
    BranchPredictor &branchPredictor() { return bp; }

  private:
    /** One in-flight micro-op. */
    struct DynInst
    {
        uint64_t seq = 0;
        MicroOp uop;
        const StaticInst *sinst = nullptr;
        Addr pc = 0;
        uint8_t instLen = 0;
        bool lastUop = false;

        // Rename.
        int pdst = -1;
        int psrc1 = -1;
        int psrc2 = -1;
        int oldPdst = -1;
        int archDst = -1;

        // Status.
        bool executed = false;
        bool inIq = false;
        Cycles completeAt = 0;

        // Memory.
        bool faulted = false;
        bool addrReady = false;
        Addr effPaddr = 0;
        uint64_t storeData = 0;

        // Control.
        bool hasPred = false;
        Addr predNext = 0;
        bool actualTaken = false;
        Addr actualNext = 0;
    };

    struct FetchEntry
    {
        Addr pc = 0;
        const StaticInst *inst = nullptr;
        bool hasPred = false;
        Addr predNext = 0;
        Cycles readyAt = 0;
    };

    // --- pipeline stages (called youngest-last each tick) ---------------
    void commitStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    /** Book the finished cycle onto exactly one stall-cause counter. */
    void accountCycle();

    // --- helpers ---------------------------------------------------------
    bool tryIssue(DynInst &d, unsigned &alu_used, unsigned &mult_used,
                  unsigned &mem_used);
    void executeUop(DynInst &d, Cycles lat);
    bool issueLoad(DynInst &d);
    void squashAfter(uint64_t seq);
    void redirectFetch(Addr new_pc, Cycles delay);
    void deliverTrap(DynInst &d);
    uint64_t readPhys(int preg) const { return physRegs[size_t(preg)]; }
    bool
    srcReady(int preg) const
    {
        return preg < 0 || regReadyAt[size_t(preg)] <= cycle;
    }

    O3Params p;
    BranchPredictor bp;

    // Rename state.
    std::vector<int> renameMap;
    std::vector<int> committedMap;
    std::vector<int> freeList;
    std::vector<uint64_t> physRegs;
    std::vector<Cycles> regReadyAt;

    // Windows.
    std::deque<DynInst> rob;
    std::vector<DynInst *> iq;
    std::deque<DynInst *> loadQueue;
    std::deque<DynInst *> storeQueue;
    std::deque<FetchEntry> fetchQueue;

    // Fetch state.
    Addr fetchPc = 0;
    bool fetchEnabled = false;
    Cycles fetchStallUntil = 0;
    Addr lastFetchLine = ~Addr(0);

    Cycles cycle = 0;
    uint64_t nextSeq = 1;
    Cycles divBusyUntil = 0;
    Cycles commitStallUntil = 0;

    // Per-cycle stall attribution scratch state (reset every tick).
    /** Why commit made no progress this cycle, observed at its head. */
    enum class CommitBlock { None, Trap, RobEmpty, HeadMem, HeadExec };
    /** Which resource blocked rename this cycle, if any. */
    enum class RenameStall { None, Rob, Iq, Lsq, Regs };
    unsigned commitsThisCycle = 0;
    CommitBlock commitBlock = CommitBlock::None;
    RenameStall renameStall = RenameStall::None;
    /** At the (empty-ROB) commit attempt, was the frontend in flight? */
    bool frontendInFlight = false;

    // Statistics.
    Scalar &statCycles;
    Scalar &statIdleCycles;
    Scalar &statInsts;
    Scalar &statUops;
    Scalar &statLoads;
    Scalar &statStores;
    Scalar &statBranches;
    Scalar &statCondBranches;
    Scalar &statMispredicts;
    Scalar &statSquashedUops;
    Scalar &statRobFullStalls;
    Scalar &statIqFullStalls;
    Scalar &statLsqFullStalls;
    Scalar &statFwdLoads;
    /** Per-cycle attribution vector; sums to statCycles by design. */
    Scalar *statStallCycles[numStallCauses];
};

} // namespace svb

#endif // SVB_CPU_O3_CPU_HH
