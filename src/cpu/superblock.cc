#include "superblock.hh"

#include <algorithm>
#include <cstdlib>

#include "paging.hh"

namespace svb
{

namespace
{

/** Classify one micro-op for threaded dispatch. */
SbKind
kindOf(const MicroOp &uop)
{
    if (uop.isControl())
        return SbKind::Control;
    switch (uop.op) {
      case UopOp::Add: return SbKind::Add;
      case UopOp::Sub: return SbKind::Sub;
      case UopOp::And: return SbKind::And;
      case UopOp::Or: return SbKind::Or;
      case UopOp::Xor: return SbKind::Xor;
      case UopOp::Sll: return SbKind::Sll;
      case UopOp::Srl: return SbKind::Srl;
      case UopOp::Sra: return SbKind::Sra;
      case UopOp::Slt: return SbKind::Slt;
      case UopOp::Sltu: return SbKind::Sltu;
      case UopOp::Mul: return SbKind::Mul;
      case UopOp::MovImm: return SbKind::MovImm;
      case UopOp::Auipc: return SbKind::Auipc;
      case UopOp::CmpFlags: return SbKind::CmpFlags;
      case UopOp::Load: return SbKind::Load;
      case UopOp::Store: return SbKind::Store;
      case UopOp::Syscall: return SbKind::Syscall;
      case UopOp::Halt: return SbKind::Halt;
      case UopOp::Nop: return SbKind::Nop;
      default: return SbKind::AluMisc;
    }
}

} // namespace

Superblock
SuperblockCache::build(Addr anchor)
{
    Superblock sb;
    sb.anchor = anchor;
    Addr off = paging::pageOffset(anchor);
    Addr p = anchor;
    while (sb.insts.size() < maxInsts) {
        const StaticInst &si = decoder.decodeAt(p);
        if (!si.valid) {
            // Keep an undecodable first instruction as an explicit
            // trap marker so the engine reproduces the slow path's
            // illegal-instruction panic; otherwise end the block just
            // before it.
            if (sb.insts.empty()) {
                SbInst bi;
                bi.pcOff = uint16_t(off);
                sb.insts.push_back(bi);
            }
            break;
        }
        SbInst bi;
        bi.pcOff = uint16_t(off);
        bi.length = si.length;
        bi.numUops = si.numUops;
        bi.uopBase = uint32_t(sb.uops.size());
        bi.valid = true;
        bool terminal = false;
        for (unsigned i = 0; i < si.numUops; ++i) {
            const MicroOp &uop = si.uops[i];
            SbUop su;
            su.uop = uop;
            su.kind = kindOf(uop);
            sb.uops.push_back(su);
            // Conditional branches stay mid-block (side exits); only
            // uops that always transfer control end the run.
            terminal |= uop.isSyscall() || uop.isHalt() ||
                        (uop.isControl() && !uop.isCondCtrl());
        }
        sb.insts.push_back(bi);
        if (terminal)
            break;
        off += si.length;
        p += si.length;
        // The slow path translates only the first byte of every
        // instruction, so a block must not carry execution onto the
        // next virtual page without a fresh iTLB translation.
        if (off >= paging::pageSize)
            break;
    }
    ++nBlocks;
    nInsts += sb.insts.size();
    return sb;
}

void
SuperblockCache::serializeState(const std::string &prefix,
                                Checkpoint &cp) const
{
    std::vector<Addr> anchors;
    anchors.reserve(blocks.size());
    for (const auto &kv : blocks)
        anchors.push_back(kv.first);
    std::sort(anchors.begin(), anchors.end());
    BlobWriter w;
    for (Addr a : anchors)
        w.putU64(a);
    cp.setBlob(prefix + "paddrs", w.take());
}

void
SuperblockCache::unserializeState(const std::string &prefix,
                                  const Checkpoint &cp)
{
    clear();
    BlobReader r(cp.getBlob(prefix + "paddrs"));
    while (!r.done())
        at(r.getU64());
    mruBlock = nullptr;
    mruAnchor = 0;
}

void
SuperblockCache::attachStats(StatGroup &g)
{
    g.addFormula("lookups", "superblock cache lookups (host work)",
                 [this] { return double(nLookups); });
    g.addFormula("blocks", "superblocks formed (host work)",
                 [this] { return double(nBlocks); });
    g.addFormula("instsLowered", "macro instructions lowered (host work)",
                 [this] { return double(nInsts); });
    g.addFormula("avgBlockInsts", "mean instructions per superblock",
                 [this] {
                     return nBlocks ? double(nInsts) / double(nBlocks)
                                    : 0.0;
                 });
}

bool
SuperblockCache::envEnabled()
{
    const char *v = std::getenv("SVBENCH_FASTWARM");
    return v == nullptr || v[0] != '0';
}

} // namespace svb
